// Benchmarks: one per reproduced table/figure (see DESIGN.md §4 and
// EXPERIMENTS.md), plus the ablations DESIGN.md calls out. Each benchmark
// runs its experiment end-to-end and reports the headline metric through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the paper's
// numbers alongside the runtime costs.
//
// Benchmarks default to the scaled-down configuration; set
// P2PSHARE_BENCH_SCALE=paper in the environment to run the paper's full
// §4.4 scale (200 000 documents, 20 000 nodes).
package p2pshare_test

import (
	"os"
	"testing"

	"p2pshare/internal/core"
	"p2pshare/internal/experiments"
	"p2pshare/internal/model"
)

func benchScale() experiments.Scale {
	if os.Getenv("P2PSHARE_BENCH_SCALE") == "paper" {
		return experiments.ScalePaper
	}
	return experiments.ScaleSmall
}

// BenchmarkFigure2 regenerates Figure 2: MaxFair normalized cluster
// popularities under Zipf-like (θ=0.7) category popularities. Paper:
// achieved fairness 0.981903.
func BenchmarkFigure2(b *testing.B) {
	var fair float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.Figure2(benchScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		fair = s.Fairness
	}
	b.ReportMetric(fair, "fairness")
}

// BenchmarkFigure3 regenerates Figure 3: random document→category
// assignment. Paper: achieved fairness 0.974958.
func BenchmarkFigure3(b *testing.B) {
	var fair float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.Figure3(benchScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		fair = s.Fairness
	}
	b.ReportMetric(fair, "fairness")
}

// BenchmarkFigure4 regenerates Figure 4: fairness before/after the +30%
// popularity-mass perturbation across θ. Paper: worst case ≈ 0.78.
func BenchmarkFigure4(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure4(benchScale(), nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		worst = 1
		for _, p := range pts {
			if p.Final < worst {
				worst = p.Final
			}
		}
	}
	b.ReportMetric(worst, "worst-final-fairness")
}

// BenchmarkFigure5 regenerates Figure 5: MaxFair_Reassign trajectories.
// Paper: 7–8 category reassignments reach the 0.92 target.
func BenchmarkFigure5(b *testing.B) {
	var maxMoves float64
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Figure5(benchScale(), 5, 1)
		if err != nil {
			b.Fatal(err)
		}
		maxMoves = 0
		for _, r := range runs {
			if float64(r.Moves) > maxMoves {
				maxMoves = float64(r.Moves)
			}
		}
	}
	b.ReportMetric(maxMoves, "max-moves")
}

// BenchmarkScalingTable regenerates the §4.4 in-text scaling study.
// Paper: > 0.90 even at 50 clusters / 200 categories.
func BenchmarkScalingTable(b *testing.B) {
	var min float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ScalingTable(benchScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		min = 1
		for _, r := range rows {
			if r.Fairness < min {
				min = r.Fairness
			}
		}
	}
	b.ReportMetric(min, "min-fairness")
}

// BenchmarkStorageExample recomputes the §4.3.3 worked example.
// Paper: 500 MB per node per category, ≈2 GB total.
func BenchmarkStorageExample(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total = float64(experiments.StorageExample().TotalPerNode) / (1 << 20)
	}
	b.ReportMetric(total, "MB-per-node")
}

// BenchmarkTransferExample recomputes the §6.1.3 worked example.
// Paper: 16 MB per node pair, 2.5% of nodes engaged.
func BenchmarkTransferExample(b *testing.B) {
	var perPair float64
	for i := 0; i < b.N; i++ {
		perPair = float64(experiments.TransferExample().BytesPerPair) / (1 << 20)
	}
	b.ReportMetric(perPair, "MB-per-pair")
}

// BenchmarkMassCoverage verifies the §4.3.3 claim that <10% of documents
// cover 35% of the probability mass for realistic Zipf skews.
func BenchmarkMassCoverage(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, r := range experiments.MassCoverage() {
			if r.Theta <= 0.85 && r.TopFraction > worst {
				worst = r.TopFraction
			}
		}
	}
	b.ReportMetric(worst*100, "worst-top-%")
}

// BenchmarkQueryHops regenerates the §3.3 response-time experiment over
// the live overlay. Paper: a few hops in the common case, cluster-size
// worst case.
func BenchmarkQueryHops(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.QueryHops(benchScale(), 1000, 1)
		if err != nil {
			b.Fatal(err)
		}
		mean = r.MeanHops
	}
	b.ReportMetric(mean, "mean-hops")
}

// BenchmarkBaselineComparison regenerates the assigner comparison
// (MaxFair vs hash/random/round-robin/LPT) — §2's load-balancing argument.
func BenchmarkBaselineComparison(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AssignerComparison(benchScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		var mf, hash float64
		for _, r := range rows {
			switch r.Name {
			case "maxfair":
				mf = r.Fairness
			case "hash":
				hash = r.Fairness
			}
		}
		gap = mf - hash
	}
	b.ReportMetric(gap, "maxfair-minus-hash")
}

// BenchmarkRoutingComparison regenerates the object-location comparison
// (ours vs Chord vs Gnutella) — §2's response-time argument.
func BenchmarkRoutingComparison(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RoutingComparison(benchScale(), 600, 1)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].MeanHops > 0 {
			ratio = rows[1].MeanHops / rows[0].MeanHops
		}
	}
	b.ReportMetric(ratio, "chord-hops-over-ours")
}

// BenchmarkReplicaBalance regenerates the §4.3.3 intra-cluster placement
// sweep.
func BenchmarkReplicaBalance(b *testing.B) {
	var fair float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ReplicaBalance(benchScale(), nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.HotMass == 0.35 {
				fair = r.MeanIntraFairness
			}
		}
	}
	b.ReportMetric(fair, "intra-fairness@0.35")
}

// BenchmarkDynamicAdaptation regenerates the §6 end-to-end dynamic run
// with adaptation enabled.
func BenchmarkDynamicAdaptation(b *testing.B) {
	var min float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.DynamicAdaptation(benchScale(), 3, 600, true, 1)
		if err != nil {
			b.Fatal(err)
		}
		min = r.MinMeasured
	}
	b.ReportMetric(min, "min-measured-fairness")
}

// BenchmarkRebalanceCost measures the lazy rebalancing protocol's transfer
// traffic in the live overlay (§6.1.3's simulated counterpart).
func BenchmarkRebalanceCost(b *testing.B) {
	var mb float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RebalanceCost(benchScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		mb = r.TransferMB
	}
	b.ReportMetric(mb, "transfer-MB")
}

// BenchmarkOptimalityGap regenerates the MaxFair-vs-exact comparison
// (§4.2 NP-completeness context).
func BenchmarkOptimalityGap(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OptimalityGap(3, 1)
		if err != nil {
			b.Fatal(err)
		}
		gap = 0
		for _, r := range rows {
			if g := r.Exact - r.Greedy; g > gap {
				gap = g
			}
		}
	}
	b.ReportMetric(gap, "max-gap")
}

// BenchmarkModeComparison regenerates the §3.1 intra-cluster design
// comparison (flood vs super-peer vs routing-index).
func BenchmarkModeComparison(b *testing.B) {
	var spShare float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ModeComparison(benchScale(), 600, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mode.String() == "super-peer" {
				spShare = r.TopServedShare
			}
		}
	}
	b.ReportMetric(spShare*100, "superpeer-top-share-%")
}

// BenchmarkConfigSweep regenerates the §7(ii) extension: cluster count vs
// fairness/hops/storage.
func BenchmarkConfigSweep(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ConfigSweep(benchScale(), nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		spread = rows[0].MeanHops - rows[len(rows)-1].MeanHops
	}
	b.ReportMetric(spread, "hops-saved-by-more-clusters")
}

// BenchmarkPlacementComparison regenerates the §7(vii) extension: hot-set
// vs proportional replica placement.
func BenchmarkPlacementComparison(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PlacementComparison(benchScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].TotalReplicas > 0 {
			saving = 1 - float64(rows[1].TotalReplicas)/float64(rows[0].TotalReplicas)
		}
	}
	b.ReportMetric(saving*100, "replica-saving-%")
}

// BenchmarkGranularityStudy regenerates the §7(vi) extension: fairness
// recovered by splitting a flash-topic category.
func BenchmarkGranularityStudy(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.GranularityStudy(benchScale(), 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		gain = rows[len(rows)-1].Fairness - rows[0].Fairness
	}
	b.ReportMetric(gain, "fairness-gain-from-splitting")
}

// BenchmarkCacheEffect regenerates the §7(viii) extension study: per-peer
// result caches under Zipf demand.
func BenchmarkCacheEffect(b *testing.B) {
	var hit float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CacheEffect(benchScale(), 1500, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.CacheMB == 256 && r.Policy.String() == "lru" {
				hit = r.HitRatio
			}
		}
	}
	b.ReportMetric(hit, "hit-ratio@256MB")
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationOrdering compares MaxFair's category consideration
// orders.
func BenchmarkAblationOrdering(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OrderingAblation(benchScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		min, max := 1.0, 0.0
		for _, r := range rows {
			if r.Fairness < min {
				min = r.Fairness
			}
			if r.Fairness > max {
				max = r.Fairness
			}
		}
		spread = max - min
	}
	b.ReportMetric(spread, "fairness-spread")
}

// BenchmarkAblationIncrementalFairness measures the O(1) incremental
// candidate evaluation against the paper's O(|C|) naive recomputation
// (identical results; see core.Options.Naive).
func BenchmarkAblationIncrementalFairness(b *testing.B) {
	inst := benchInstance(b)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MaxFair(inst, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MaxFair(inst, core.Options{Naive: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchInstance(b *testing.B) *model.Instance {
	b.Helper()
	cfg := benchScale().Config()
	inst, err := model.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkMaxFairCore isolates the assignment algorithm itself (no
// instance generation) for throughput measurement.
func BenchmarkMaxFairCore(b *testing.B) {
	inst := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MaxFair(inst, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
