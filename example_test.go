package p2pshare_test

import (
	"fmt"
	"log"

	"p2pshare"
)

// ExampleNew builds a small community and reports its load balance.
func ExampleNew() {
	cfg := p2pshare.DefaultConfig()
	cfg.Documents = 2000
	cfg.Categories = 40
	cfg.Nodes = 200
	cfg.Clusters = 10

	sys, err := p2pshare.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bal, err := sys.PlannedBalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peers: %d\n", sys.NumNodes())
	fmt.Printf("balanced: %v\n", bal.Fairness > 0.95)
	// Output:
	// peers: 200
	// balanced: true
}

// ExampleSystem_Query searches by keyword: keywords resolve to a semantic
// category, the category routes to its serving cluster, and results come
// back within a few hops.
func ExampleSystem_Query() {
	cfg := p2pshare.DefaultConfig()
	cfg.Documents = 2000
	cfg.Categories = 40
	cfg.Nodes = 200
	cfg.Clusters = 10

	sys, err := p2pshare.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	keywords := sys.CategoryKeywords(0)[:1]
	res, err := sys.Query(17, keywords, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %v, results: %d, few hops: %v\n",
		res.Done, res.Results, res.Hops <= 3)
	// Output:
	// done: true, results: 3, few hops: true
}

// ExampleSystem_Adapt runs one decentralized adaptation round (§6.1 of
// the paper): leader election, cluster monitoring, leader communication,
// fairness evaluation, and — only if the measured load is unfair —
// rebalancing with lazy transfers.
func ExampleSystem_Adapt() {
	cfg := p2pshare.DefaultConfig()
	cfg.Documents = 2000
	cfg.Categories = 40
	cfg.Nodes = 200
	cfg.Clusters = 10

	sys, err := p2pshare.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// A balanced workload measures fair, so the round takes no action.
	if _, err := sys.RunWorkload(500); err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Adapt()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leaders elected: %v\n", len(rep.Leaders) > 0)
	fmt.Printf("rebalanced: %v\n", rep.Rebalanced)
	// Output:
	// leaders elected: true
	// rebalanced: false
}
