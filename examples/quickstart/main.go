// Quickstart: build a small sharing community, ask it for content, and
// inspect the load balance. This walks the three ideas of the paper in
// ~40 lines: category/cluster structure (built by New), constant-hop
// keyword queries, and the fairness index as the balance metric.
package main

import (
	"fmt"
	"log"

	"p2pshare"
)

func main() {
	// A community of 300 peers sharing 3000 documents in 60 semantic
	// categories, organized into 12 peer clusters. New generates the
	// content and peers, balances categories across clusters with
	// MaxFair, places replicas, and boots the overlay.
	cfg := p2pshare.DefaultConfig()
	cfg.Documents = 3000
	cfg.Categories = 60
	cfg.Nodes = 300
	cfg.Clusters = 12

	sys, err := p2pshare.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	bal, err := sys.PlannedBalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community up: %d peers, %d documents, fairness %.4f\n",
		sys.NumNodes(), sys.NumDocuments(), bal.Fairness)

	// Ask for content by keyword. Keywords resolve to a semantic
	// category, the category routes to its cluster in one hop, and the
	// query floods only within that cluster.
	keywords := sys.CategoryKeywords(3)[:1]
	res, err := sys.Query(42, keywords, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %v from peer 42: %d results in %d hop(s), %v\n",
		keywords, res.Results, res.Hops, res.ResponseTime)

	// Publish a new document from peer 7 and watch it become available.
	doc, err := sys.PublishNew(7, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peer 7 published document %d\n", doc)

	// A new peer joins through peer 0 (the §6.3 join protocol).
	id, err := sys.Join(4, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peer %d joined the community (now %d peers)\n", id, sys.NumNodes())
}
