// Musicshare: the paper's motivating scenario — an MP3 sharing community
// in the style of Napster/Gnutella. 4 MB "songs" in genre categories,
// Zipf-popular (chart-toppers dominate), served by a heterogeneous peer
// population. The example runs a listening session workload and reports
// what a user cares about (how fast songs are found) and what the system
// cares about (how evenly peers share the work).
package main

import (
	"fmt"
	"log"
	"sort"

	"p2pshare"
)

func main() {
	// The paper's running example uses 3-minute MP3s (4 MB each) with
	// chart-driven Zipf popularity (θ=0.8 for documents, θ=0.7 across
	// genres).
	cfg := p2pshare.DefaultConfig()
	cfg.Documents = 8000 // songs
	cfg.Categories = 150 // genres
	cfg.Nodes = 800      // listeners sharing their libraries
	cfg.Clusters = 30
	cfg.Seed = 2026

	sys, err := p2pshare.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bal, err := sys.PlannedBalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("music community: %d songs, %d genres, %d peers, %d clusters\n",
		sys.NumDocuments(), sys.NumCategories(), sys.NumNodes(), cfg.Clusters)
	fmt.Printf("inter-cluster fairness after MaxFair: %.4f\n\n", bal.Fairness)

	// A listening session: 2000 searches, drawn from song popularity
	// (everyone wants the hits).
	rate, err := sys.RunWorkload(2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: 2000 searches, %.1f%% found their %d results\n", rate*100, 3)

	// Individual searches: hot genre vs niche genre.
	hot := sys.CategoryKeywords(0)[:1] // most popular genre
	niche := sys.CategoryKeywords(140)[:1]
	for _, q := range []struct {
		label string
		kws   []string
	}{{"hot genre", hot}, {"niche genre", niche}} {
		res, err := sys.Query(11, q.kws, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %d results, %d hop(s), %v\n",
			q.label, res.Results, res.Hops, res.ResponseTime)
	}

	// Who did the work? Top-5 busiest peers vs the median — with random
	// target selection plus replica placement the spread stays modest.
	loads := sys.ServedLoads()
	sorted := append([]float64(nil), loads...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	fmt.Printf("\nwork distribution: busiest peers %v..., median %.0f requests\n",
		sorted[:5], sorted[len(sorted)/2])
	fmt.Printf("measured per-cluster fairness: %.4f\n", sys.MeasuredBalance().Fairness)
}
