// Musicshare: the paper's motivating scenario — an MP3 sharing community
// in the style of Napster/Gnutella. 4 MB "songs" in genre categories,
// Zipf-popular (chart-toppers dominate), served by a heterogeneous peer
// population. The example runs a listening session workload and reports
// what a user cares about (how fast songs are found) and what the system
// cares about (how evenly peers share the work).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"p2pshare"
	"p2pshare/internal/catalog"
	"p2pshare/internal/livenet"
)

func main() {
	// The paper's running example uses 3-minute MP3s (4 MB each) with
	// chart-driven Zipf popularity (θ=0.8 for documents, θ=0.7 across
	// genres).
	cfg := p2pshare.DefaultConfig()
	cfg.Documents = 8000 // songs
	cfg.Categories = 150 // genres
	cfg.Nodes = 800      // listeners sharing their libraries
	cfg.Clusters = 30
	cfg.Seed = 2026

	sys, err := p2pshare.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bal, err := sys.PlannedBalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("music community: %d songs, %d genres, %d peers, %d clusters\n",
		sys.NumDocuments(), sys.NumCategories(), sys.NumNodes(), cfg.Clusters)
	fmt.Printf("inter-cluster fairness after MaxFair: %.4f\n\n", bal.Fairness)

	// A listening session: 2000 searches, drawn from song popularity
	// (everyone wants the hits).
	rate, err := sys.RunWorkload(2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: 2000 searches, %.1f%% found their %d results\n", rate*100, 3)

	// Individual searches: hot genre vs niche genre.
	hot := sys.CategoryKeywords(0)[:1] // most popular genre
	niche := sys.CategoryKeywords(140)[:1]
	for _, q := range []struct {
		label string
		kws   []string
	}{{"hot genre", hot}, {"niche genre", niche}} {
		res, err := sys.Query(11, q.kws, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %d results, %d hop(s), %v\n",
			q.label, res.Results, res.Hops, res.ResponseTime)
	}

	// Who did the work? Top-5 busiest peers vs the median — with random
	// target selection plus replica placement the spread stays modest.
	loads := sys.ServedLoads()
	sorted := append([]float64(nil), loads...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	fmt.Printf("\nwork distribution: busiest peers %v..., median %.0f requests\n",
		sorted[:5], sorted[len(sorted)/2])
	fmt.Printf("measured per-cluster fairness: %.4f\n", sys.MeasuredBalance().Fairness)

	liveBytes()
}

// liveBytes is the end-to-end data plane: a small live deployment with
// the content plane on, actual song bytes moving peer to peer —
// chunked, SHA-256-verified against the holder's manifest, flow-
// controlled. Search finds WHERE a song lives; Fetch brings it home.
func liveBytes() {
	fmt.Println("\n--- live bytes: fetching songs over TCP ---")

	// A small live community; 256 KB "songs" keep the example quick
	// (the protocol is the same at the paper's 4 MB).
	sh := livenet.Shape{
		Documents: 400, Categories: 12, Nodes: 24, Clusters: 4,
		Seed: 2026, DocBytes: 256 << 10,
	}
	inst, assign, place, err := sh.Build()
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := livenet.Launch(inst, assign, place, livenet.Options{
		Seed:    1,
		Content: &livenet.ContentConfig{},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Download a chart-topper from a peer that does not hold it: the
	// fetcher floods a manifest request toward the serving cluster,
	// picks the first replica holder that answers, and pulls chunks
	// under a sliding credit window, verifying each against the
	// manifest's hash table.
	// (The biggest hits are replicated onto every peer, so walk down the
	// chart until some peer is missing the song.)
	var hit *catalog.Document
	var listener *livenet.Node
search:
	for i := range inst.Catalog.Docs {
		for _, n := range cluster.Nodes {
			if !n.ContentStore().Has(inst.Catalog.Docs[i].ID) {
				hit, listener = &inst.Catalog.Docs[i], n
				break search
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	data, err := listener.Fetch(ctx, hit.ID)
	if err != nil {
		log.Fatalf("fetch doc %d: %v", hit.ID, err)
	}
	fmt.Printf("peer %d fetched song %d: %d KB verified in %v\n",
		listener.ID(), hit.ID, len(data)>>10, time.Since(start).Round(time.Millisecond))

	// Share a NEW recording: real bytes, not the synthetic stand-in.
	// Put installs the bytes and builds the manifest; Publish announces
	// the song to its genre's serving cluster; any peer can then Fetch
	// it and verify it is bit-for-bit the original.
	ids, err := inst.Catalog.AddDocuments(1, 0.03, 0.8, rand.New(rand.NewSource(99)))
	if err != nil {
		log.Fatal(err)
	}
	song := ids[0]
	if err := inst.AttachDocument(song, 7); err != nil {
		log.Fatal(err)
	}
	recording := make([]byte, 192<<10)
	rand.New(rand.NewSource(77)).Read(recording)
	publisher := cluster.Nodes[7]
	publisher.ContentStore().Put(song, recording)
	if err := publisher.Publish(song); err != nil {
		log.Fatal(err)
	}

	// The publish ack propagates the publisher into the serving
	// cluster's routing; retry briefly while that gossip settles.
	fan := cluster.Nodes[19]
	var got []byte
	for attempt := 0; ; attempt++ {
		fctx, fcancel := context.WithTimeout(context.Background(), 10*time.Second)
		got, err = fan.Fetch(fctx, song)
		fcancel()
		if err == nil || attempt >= 9 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if err != nil {
		log.Fatalf("fetch published song %d: %v", song, err)
	}
	if !bytes.Equal(got, recording) {
		log.Fatalf("published song %d: fetched bytes differ from the original", song)
	}
	fmt.Printf("peer 7 published a new %d KB recording; peer %d fetched it bit-for-bit\n",
		len(recording)>>10, fan.ID())

	// What the data plane did, fleet-wide.
	var in, out, resumes int64
	for _, n := range cluster.Nodes {
		s := n.Stats()
		in += s["transfer_bytes_in"]
		out += s["transfer_bytes_out"]
		resumes += s["transfer_resumes"]
	}
	fmt.Printf("fleet transfer totals: %d KB in, %d KB out, %d resumes\n",
		in>>10, out>>10, resumes)
}
