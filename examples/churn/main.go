// Churn: peers enter and leave at will (§6.3). Leavers announce their
// departure so cluster metadata reorganizes and orphaned documents are
// re-adopted; joiners bootstrap from any member, copy its DCRT/NRT, and
// publish their contributions (or dummy-publish as free riders). The
// example measures content availability across heavy churn.
package main

import (
	"fmt"
	"log"

	"p2pshare"
)

func main() {
	cfg := p2pshare.DefaultConfig()
	cfg.Documents = 5000
	cfg.Categories = 100
	cfg.Nodes = 500
	cfg.Clusters = 20
	cfg.Seed = 11

	sys, err := p2pshare.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community: %d peers\n", sys.NumNodes())

	check := func(label string) {
		rate, err := sys.RunWorkload(600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %.1f%% of 600 queries completed\n", label, rate*100)
		sys.ResetLoadCounters()
	}
	check("baseline:")

	// Wave 1: 10% of peers leave (politely, with leave messages).
	leavers := sys.NumNodes() / 10
	for i := 0; i < leavers; i++ {
		victim := p2pshare.NodeID(1 + i*7) // spread over the id space
		if err := sys.Leave(victim); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\n-- %d peers left --\n", leavers)
	check("after departures:")

	// Wave 2: newcomers join through peer 0 — some contribute fresh
	// content, some are free riders.
	joined := 0
	for i := 0; i < 30; i++ {
		id, err := sys.Join(float64(1+i%5), 0)
		if err != nil {
			log.Fatal(err)
		}
		joined++
		if i%3 == 0 { // every third newcomer contributes a new document
			if _, err := sys.PublishNew(id, 0.002); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\n-- %d peers joined (every 3rd contributed content) --\n", joined)
	check("after arrivals:")

	// Wave 3: simultaneous churn with drifting tastes.
	if err := sys.ShiftPopularity(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := sys.Leave(p2pshare.NodeID(3 + i*11)); err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Join(3, 0); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\n-- 20 leave + 20 join under popularity drift --")
	check("after combined churn:")

	// One more workload so the adaptation has fresh hit counters to
	// measure, then let the system decide whether to rebalance.
	if _, err := sys.RunWorkload(800); err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Adapt()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptation: measured fairness %.4f, rebalanced=%v (%d moves)\n",
		rep.MeasuredFairness, rep.Rebalanced, len(rep.Moves))
}
