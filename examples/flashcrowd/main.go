// Flashcrowd: the paper's §5 stress test, live. New viral content appears
// (5% new documents carrying 30% of all request popularity), the old
// category→cluster assignment degrades, and the §6 adaptation mechanism —
// leader election, cluster monitoring, leader communication, fairness
// evaluation, MaxFair_Reassign, lazy transfers — pulls fairness back up
// without any central coordinator.
package main

import (
	"fmt"
	"log"

	"p2pshare"
)

func main() {
	cfg := p2pshare.DefaultConfig()
	cfg.Documents = 6000
	cfg.Categories = 120
	cfg.Nodes = 600
	cfg.Clusters = 24
	cfg.Seed = 7

	sys, err := p2pshare.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bal, err := sys.PlannedBalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady state: fairness %.4f\n", bal.Fairness)

	// The flash crowd: a burst of new, instantly-popular documents
	// published by random peers (think a leaked album), on top of a
	// system-wide shift in tastes. Each publish runs the full §6.2
	// protocol.
	fmt.Println("\n-- tastes shift, and 30 new documents grab 40% of all demand --")
	if err := sys.ShiftPopularity(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		publisher := p2pshare.NodeID((i * 13) % sys.NumNodes())
		if _, err := sys.PublishNew(publisher, 0.40/30); err != nil {
			log.Fatal(err)
		}
	}
	bal, err = sys.PlannedBalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned fairness after the crowd (old assignment): %.4f\n", bal.Fairness)

	// Users chase the new content; measured load skews.
	if _, err := sys.RunWorkload(1500); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured fairness under the new demand: %.4f\n", sys.MeasuredBalance().Fairness)

	// Adaptation: the clusters notice, leaders confer, categories move.
	rep, err := sys.Adapt()
	if err != nil {
		log.Fatal(err)
	}
	if rep.Rebalanced {
		fmt.Printf("\nadaptation round: measured %.4f -> %.4f\n",
			rep.MeasuredFairness, rep.FairnessAfter)
		fmt.Printf("  %d categories reassigned, %d paired transfers, %.1f MB moved lazily\n",
			len(rep.Moves), rep.TransferCount, float64(rep.TransferBytes)/(1<<20))
	} else {
		fmt.Printf("\nadaptation round: measured %.4f — within thresholds, no action\n",
			rep.MeasuredFairness)
	}

	// Queries for the moved categories still succeed mid-transfer: the
	// lazy protocol forwards requests and fetches documents on demand.
	sys.ResetLoadCounters()
	rate, err := sys.RunWorkload(1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npost-adaptation session: %.1f%% of queries completed, measured fairness %.4f\n",
		rate*100, sys.MeasuredBalance().Fairness)
}
