// Livewire: the same architecture over real TCP sockets. Every peer is a
// goroutine-driven process with its own listener; queries and publishes
// travel as gob-encoded messages on the loopback network — no simulator
// involved. This is the bridge from the reproducible simulation to an
// actual deployment.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"p2pshare/internal/core"
	"p2pshare/internal/livenet"
	"p2pshare/internal/model"
	"p2pshare/internal/replica"
)

func main() {
	// A small community: 40 live TCP peers, 800 documents, 16 categories,
	// 5 clusters.
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 800
	cfg.Catalog.NumCats = 16
	cfg.NumNodes = 40
	cfg.NumClusters = 5
	cfg.Seed = 2026

	inst, err := model.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := livenet.Launch(inst, res.Assignment, place, livenet.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("%d live peers listening (e.g. node 0 at %s)\n",
		len(cluster.Nodes), cluster.Nodes[0].Addr())
	fmt.Printf("MaxFair fairness of the deployment: %.4f\n\n", res.Fairness)

	// Real queries over real sockets.
	for _, q := range []struct {
		origin int
		cat    int
		m      int
	}{{3, 0, 5}, {17, 4, 3}, {29, 9, 2}} {
		start := time.Now()
		out, err := cluster.Nodes[q.origin].Query(
			inst.Catalog.Cats[q.cat].ID, q.m, 5*time.Second)
		if err != nil {
			log.Fatalf("query from node %d: %v", q.origin, err)
		}
		fmt.Printf("node %2d asks category %2d for %d docs: got %d in %d hop(s), %v wall-clock\n",
			q.origin, q.cat, q.m, len(out.Docs), out.Hops, time.Since(start).Round(time.Millisecond))
	}

	// Publish a new document from node 7 and find it from node 22.
	ids, err := inst.Catalog.AddDocuments(1, 0.03, 0.8, rand.New(rand.NewSource(99)))
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.AttachDocument(ids[0], 7); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Nodes[7].Publish(ids[0]); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the publish propagate
	cat := inst.Catalog.Doc(ids[0]).Categories[0]
	out, err := cluster.Nodes[22].Query(cat, len(inst.Catalog.Cats[cat].Docs), 5*time.Second)
	if err != nil && len(out.Docs) == 0 {
		log.Fatal(err)
	}
	found := false
	for _, d := range out.Docs {
		if d == ids[0] {
			found = true
		}
	}
	fmt.Printf("\nnode 7 published doc %d; node 22's broad query %s it among %d results\n",
		ids[0], map[bool]string{true: "found", false: "did not find"}[found], len(out.Docs))

	// The serving load spread across live peers.
	var total int64
	busiest := int64(0)
	for _, n := range cluster.Nodes {
		s := n.Served()
		total += s
		if s > busiest {
			busiest = s
		}
	}
	fmt.Printf("served %d requests total; busiest peer handled %d\n", total, busiest)
}
