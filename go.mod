module p2pshare

go 1.22
