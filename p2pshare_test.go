package p2pshare_test

import (
	"errors"
	"testing"

	"p2pshare"
	"p2pshare/internal/livenet"
	"p2pshare/internal/query"
)

func smallConfig() p2pshare.Config {
	cfg := p2pshare.DefaultConfig()
	cfg.Documents = 3000
	cfg.Categories = 60
	cfg.Nodes = 300
	cfg.Clusters = 12
	return cfg
}

func TestNewAndBalance(t *testing.T) {
	sys, err := p2pshare.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumNodes() != 300 || sys.NumCategories() != 60 || sys.NumDocuments() != 3000 {
		t.Fatalf("sizes: %d nodes %d cats %d docs",
			sys.NumNodes(), sys.NumCategories(), sys.NumDocuments())
	}
	bal, err := sys.PlannedBalance()
	if err != nil {
		t.Fatal(err)
	}
	if bal.Fairness < 0.95 {
		t.Errorf("planned fairness %g < 0.95", bal.Fairness)
	}
	if len(bal.NormalizedPopularities) != 12 {
		t.Errorf("norm pops cover %d clusters", len(bal.NormalizedPopularities))
	}
}

func TestKeywordQuery(t *testing.T) {
	sys, err := p2pshare.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	kws := sys.CategoryKeywords(0)
	if len(kws) == 0 {
		t.Fatal("no keywords for category 0")
	}
	res, err := sys.Query(5, kws[:1], 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Results < 2 {
		t.Errorf("query result %+v", res)
	}
	if res.ResponseTime <= 0 || res.Hops < 1 {
		t.Errorf("query metrics %+v", res)
	}
}

func TestQueryErrors(t *testing.T) {
	sys, err := p2pshare.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(5, []string{"nonsense-keyword"}, 1); err == nil {
		t.Error("unmatched keywords should error")
	}
	if _, err := sys.Query(p2pshare.NodeID(99999), sys.CategoryKeywords(0)[:1], 1); err == nil {
		t.Error("unknown origin should error")
	}
	if _, err := sys.QueryCategory(0, p2pshare.CategoryID(9999), 1); err == nil {
		t.Error("unknown category should error")
	}
	if _, err := sys.QueryCategory(p2pshare.NodeID(99999), 0, 1); err == nil {
		t.Error("unknown origin should error")
	}
}

// TestUnifiedResultTypeAndErrors pins the API unification: the facade's
// QueryResult is the same type the live engine returns, and the sentinel
// errors re-exported at the root match livenet's with errors.Is.
func TestUnifiedResultTypeAndErrors(t *testing.T) {
	var r p2pshare.QueryResult
	var _ query.Result = r         // compile-time: facade result is the shared type
	var _ livenet.QueryOutcome = r // compile-time: live outcome is the same type
	if !errors.Is(livenet.ErrTimeout, p2pshare.ErrTimeout) ||
		!errors.Is(livenet.ErrNoRoute, p2pshare.ErrNoRoute) ||
		!errors.Is(livenet.ErrClosed, p2pshare.ErrClosed) ||
		!errors.Is(livenet.ErrOverloaded, p2pshare.ErrOverloaded) {
		t.Error("root sentinels do not match livenet sentinels")
	}
}

func TestRunWorkload(t *testing.T) {
	sys, err := p2pshare.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rate, err := sys.RunWorkload(200)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.9 {
		t.Errorf("completion rate %g < 0.9", rate)
	}
	loads := sys.ServedLoads()
	var total float64
	for _, l := range loads {
		total += l
	}
	if total == 0 {
		t.Error("no load recorded")
	}
	sys.ResetLoadCounters()
	if sys.MeasuredBalance().NormalizedPopularities == nil {
		t.Error("measured balance should exist")
	}
}

func TestPublishNewAndQuery(t *testing.T) {
	sys, err := p2pshare.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.PublishNew(7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Error("expected a fresh doc id")
	}
	if _, err := sys.PlannedBalance(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinAndLeave(t *testing.T) {
	sys, err := p2pshare.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := sys.NumNodes()
	id, err := sys.Join(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumNodes() != before+1 {
		t.Errorf("nodes = %d, want %d", sys.NumNodes(), before+1)
	}
	if err := sys.Leave(id); err != nil {
		t.Fatal(err)
	}
	if err := sys.Leave(p2pshare.NodeID(99999)); err == nil {
		t.Error("leaving unknown node should error")
	}
}

func TestShiftAndAdapt(t *testing.T) {
	sys, err := p2pshare.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ShiftPopularity(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWorkload(400); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Adapt()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Leaders) == 0 {
		t.Error("adaptation elected no leaders")
	}
	if rep.MeasuredFairness < 0 || rep.MeasuredFairness > 1 {
		t.Errorf("measured fairness %g out of range", rep.MeasuredFairness)
	}
}

func TestDeterministicSystems(t *testing.T) {
	a, err := p2pshare.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := p2pshare.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Query(3, a.CategoryKeywords(1)[:1], 2)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Query(3, b.CategoryKeywords(1)[:1], 2)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Done != rb.Done || ra.Results != rb.Results ||
		ra.Hops != rb.Hops || ra.ResponseTime != rb.ResponseTime {
		t.Errorf("same seed produced %+v vs %+v", ra, rb)
	}
}
