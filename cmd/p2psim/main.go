// Command p2psim runs a configurable end-to-end simulation of the sharing
// community: generate, balance, serve a query workload, optionally churn
// and drift, and adapt — printing load-balance and response-time reports.
//
// Usage:
//
//	p2psim [-docs N] [-cats N] [-nodes N] [-clusters N] [-seed N]
//	       [-queries N] [-epochs N] [-drift] [-churn F] [-adapt]
package main

import (
	"flag"
	"fmt"
	"os"

	"p2pshare"
)

func main() {
	docs := flag.Int("docs", 6000, "number of documents")
	cats := flag.Int("cats", 120, "number of categories")
	nodes := flag.Int("nodes", 600, "number of nodes")
	clusters := flag.Int("clusters", 24, "number of clusters")
	seed := flag.Int64("seed", 1, "random seed")
	queries := flag.Int("queries", 1000, "queries per epoch")
	epochs := flag.Int("epochs", 3, "number of workload epochs")
	drift := flag.Bool("drift", true, "shift content popularity between epochs")
	churn := flag.Float64("churn", 0, "fraction of nodes leaving per epoch (0..0.2)")
	adapt := flag.Bool("adapt", true, "run the adaptation mechanism each epoch")
	mode := flag.String("mode", "flood", "intra-cluster design: flood, super-peer, routing-index")
	flag.Parse()

	if *churn < 0 || *churn > 0.2 {
		fatal(fmt.Errorf("churn %g out of [0, 0.2]", *churn))
	}

	cfg := p2pshare.DefaultConfig()
	cfg.Documents = *docs
	cfg.Categories = *cats
	cfg.Nodes = *nodes
	cfg.Clusters = *clusters
	cfg.Seed = *seed
	switch *mode {
	case "flood":
		cfg.Mode = p2pshare.ModeFlood
	case "super-peer":
		cfg.Mode = p2pshare.ModeSuperPeer
	case "routing-index":
		cfg.Mode = p2pshare.ModeRoutingIndex
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	sys, err := p2pshare.New(cfg)
	if err != nil {
		fatal(err)
	}
	bal, err := sys.PlannedBalance()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("community: %d docs, %d categories, %d nodes, %d clusters\n",
		*docs, *cats, *nodes, *clusters)
	fmt.Printf("initial MaxFair fairness: %.5f\n\n", bal.Fairness)

	leftSoFar := 0
	for e := 0; e < *epochs; e++ {
		if e > 0 && *drift {
			if err := sys.ShiftPopularity(); err != nil {
				fatal(err)
			}
		}
		if *churn > 0 {
			n := int(*churn * float64(sys.NumNodes()))
			for i := 0; i < n; i++ {
				// Spread departures over the id space, skipping node 0
				// (our bootstrap for joins).
				victim := p2pshare.NodeID(1 + (leftSoFar*37)%(sys.NumNodes()-1))
				leftSoFar++
				if err := sys.Leave(victim); err != nil {
					fatal(err)
				}
			}
			for i := 0; i < n/2; i++ {
				if _, err := sys.Join(3, 0); err != nil {
					fatal(err)
				}
			}
		}
		rate, err := sys.RunWorkload(*queries)
		if err != nil {
			fatal(err)
		}
		measured := sys.MeasuredBalance()
		fmt.Printf("epoch %d: %d queries, %.1f%% completed, measured fairness %.5f\n",
			e, *queries, rate*100, measured.Fairness)
		if *adapt {
			rep, err := sys.Adapt()
			if err != nil {
				fatal(err)
			}
			if rep.Rebalanced {
				fmt.Printf("  adaptation: fairness %.5f -> %.5f with %d moves, %.1f MB transferred\n",
					rep.MeasuredFairness, rep.FairnessAfter, len(rep.Moves),
					float64(rep.TransferBytes)/(1<<20))
			} else {
				fmt.Printf("  adaptation: measured %.5f, above threshold — no rebalancing\n",
					rep.MeasuredFairness)
			}
		}
		sys.ResetLoadCounters()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p2psim:", err)
	os.Exit(1)
}
