// Machine mode: p2pnode -harness turns the process into one
// orchestrated peer of a harness plan (internal/harness). The contract
// is internal/harness/proto — JSON commands on stdin, one JSON response
// per command on stdout, plus the unsolicited ready line first. stdout
// carries protocol only; anything meant for humans goes to stderr.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/chaos"
	"p2pshare/internal/harness"
	"p2pshare/internal/harness/proto"
	"p2pshare/internal/livenet"
	"p2pshare/internal/workload"
)

// statsReport snapshots the node in the machine-protocol schema (also
// the -stats-json output format).
func statsReport(node *livenet.Node) *proto.StatsReport {
	lat := node.QueryLatency()
	alive, susp := node.MembershipCounts()
	r := &proto.StatsReport{
		NodeID:        int(node.ID()),
		Counters:      node.Stats(),
		LatCount:      lat.Count(),
		FairnessX1000: node.Fairness(),
		MembersAlive:  alive,
		MembersSusp:   susp,
	}
	if r.LatCount > 0 {
		r.LatP50 = lat.Quantile(0.5)
		r.LatP95 = lat.Quantile(0.95)
		r.LatP99 = lat.Quantile(0.99)
	}
	if tput := node.TransferThroughput(); tput.Count() > 0 {
		r.XferCount = tput.Count()
		r.XferP50KBps = tput.Quantile(0.5)
		r.XferP95KBps = tput.Quantile(0.95)
		r.XferP99KBps = tput.Quantile(0.99)
	}
	return r
}

// printStatsJSON is the -stats-json replacement for printStats: one
// machine-readable line instead of the human block.
func printStatsJSON(node *livenet.Node) {
	json.NewEncoder(os.Stdout).Encode(proto.Response{
		Op: proto.OpStats, OK: true, Stats: statsReport(node),
	})
}

// machineLoad runs one LoadSpec to completion (it is started on a
// background goroutine; OpWait collects the report).
func machineLoad(node *livenet.Node, spec proto.LoadSpec) (*proto.LoadReport, error) {
	var gen *workload.Generator
	var err error
	if spec.ZipfS > 0 {
		gen, err = workload.NewZipfGenerator(node.Instance(), spec.M, spec.ZipfS, spec.Seed)
	} else {
		gen, err = workload.NewGenerator(node.Instance(), spec.M, spec.Seed)
	}
	if err != nil {
		return nil, err
	}
	if spec.Repeat > 0 {
		gen.WithRepeat(spec.Repeat, 32)
	}
	var genMu sync.Mutex
	timeout := 5 * time.Second
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	workers := spec.Concurrency
	if workers < 1 {
		workers = 1
	}

	rep := &proto.LoadReport{}
	var repMu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup

	// The bulk workload rides alongside the queries on its own workers:
	// whole-document fetches with rank-Zipf document sampling. The two
	// streams sharing every link is the point — the harness measures
	// query latency while the bulk lane is saturated.
	if spec.Fetches > 0 {
		fworkers := spec.FetchConcurrency
		if fworkers < 1 {
			fworkers = 1
		}
		ftimeout := 60 * time.Second
		if spec.FetchTimeoutMS > 0 {
			ftimeout = time.Duration(spec.FetchTimeoutMS) * time.Millisecond
		}
		docs := node.Instance().Catalog.Docs
		for w := 0; w < fworkers; w++ {
			quota := spec.Fetches / fworkers
			if w < spec.Fetches%fworkers {
				quota++
			}
			wg.Add(1)
			go func(w, quota int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(spec.Seed + 104729 + int64(w)*7919))
				var zipf *rand.Zipf
				if spec.FetchZipfS > 1 {
					zipf = rand.NewZipf(rng, spec.FetchZipfS, 1, uint64(len(docs)-1))
				}
				for i := 0; i < quota; i++ {
					var d catalog.DocID
					switch {
					case spec.FetchHotFraction > 0 && rng.Float64() < spec.FetchHotFraction:
						// The flash-crowd spike: the whole fleet chases
						// one document.
						d = docs[spec.FetchHotDoc%len(docs)].ID
					case zipf != nil:
						d = docs[zipf.Uint64()].ID
					default:
						d = docs[rng.Intn(len(docs))].ID
					}
					fctx, cancel := context.WithTimeout(context.Background(), ftimeout)
					t0 := time.Now()
					data, err := node.Fetch(fctx, d)
					cancel()
					repMu.Lock()
					if err != nil {
						rep.FetchFailed++
					} else {
						rep.FetchOK++
						rep.FetchBytes += int64(len(data))
						rep.FetchLatencyMS = append(rep.FetchLatencyMS, float64(time.Since(t0))/float64(time.Millisecond))
					}
					repMu.Unlock()
				}
			}(w, quota)
		}
	}

	for w := 0; w < workers; w++ {
		// Each worker gets its own count slice and pacing/skew rng so the
		// stream is deterministic regardless of scheduling.
		quota := spec.Queries / workers
		if w < spec.Queries%workers {
			quota++
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(w)*7919))
			for i := 0; i < quota; i++ {
				if spec.IntervalMS > 0 {
					time.Sleep(time.Duration(rng.ExpFloat64() * float64(spec.IntervalMS) * float64(time.Millisecond)))
				}
				genMu.Lock()
				q := gen.Next()
				genMu.Unlock()
				cat := q.Category
				if spec.HotCategory >= 0 && rng.Float64() < spec.HotFraction {
					cat = catalog.CategoryID(spec.HotCategory)
				}
				qctx, cancel := context.WithTimeout(context.Background(), timeout)
				out, err := node.QueryContext(qctx, cat, q.M)
				cancel()
				repMu.Lock()
				rep.Issued++
				switch {
				case err == nil:
					rep.OK++
					rep.LatencyMS = append(rep.LatencyMS, float64(out.ResponseTime)/float64(time.Millisecond))
				case errors.Is(err, livenet.ErrTimeout):
					rep.Timeouts++
				case errors.Is(err, livenet.ErrOverloaded):
					rep.Rejected++
				case errors.Is(err, livenet.ErrNoRoute):
					rep.NoRoute++
				default:
					rep.Failed++
				}
				repMu.Unlock()
			}
		}(w, quota)
	}
	wg.Wait()
	rep.Seconds = time.Since(start).Seconds()
	if len(rep.LatencyMS) > proto.MaxLatencySamples {
		// Deterministic every-kth downsample keeps the payload bounded
		// without biasing the distribution.
		k := (len(rep.LatencyMS) + proto.MaxLatencySamples - 1) / proto.MaxLatencySamples
		kept := rep.LatencyMS[:0]
		for i := 0; i < len(rep.LatencyMS); i += k {
			kept = append(kept, rep.LatencyMS[i])
		}
		rep.LatencyMS = kept
	}
	return rep, nil
}

// runMachine is the harness-mode main: announce readiness, clear the
// warm-up barrier, then serve the command loop until quit/EOF.
func runMachine(node *livenet.Node, cn *chaos.Net, syncAddr string) error {
	enc := json.NewEncoder(os.Stdout)
	reply := func(r proto.Response) {
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, "p2pnode: machine reply:", err)
		}
	}
	fail := func(op string, err error) {
		reply(proto.Response{Op: op, Err: err.Error()})
	}

	reply(proto.Response{Op: proto.OpReady, OK: true, Ready: &proto.ReadyInfo{
		ID: int(node.ID()), Addr: node.Addr(), Peers: node.KnownPeers(),
	}})
	if syncAddr != "" {
		if err := harness.SyncEnter(syncAddr, "warmup", 60*time.Second); err != nil {
			return err
		}
	}

	// One background load at a time: OpLoad starts it, OpWait joins it.
	var loadDone chan struct{}
	var loadRep *proto.LoadReport
	var loadErr error

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var cmd proto.Command
		if err := json.Unmarshal(line, &cmd); err != nil {
			fail("?", fmt.Errorf("bad command: %w", err))
			continue
		}
		switch cmd.Op {
		case proto.OpLoad:
			if cmd.Load == nil {
				fail(cmd.Op, errors.New("load: missing spec"))
				continue
			}
			if loadDone != nil {
				fail(cmd.Op, errors.New("load: already running"))
				continue
			}
			spec := *cmd.Load
			loadDone = make(chan struct{})
			go func() {
				defer close(loadDone)
				loadRep, loadErr = machineLoad(node, spec)
			}()
			reply(proto.Response{Op: cmd.Op, OK: true})
		case proto.OpWait:
			if loadDone == nil {
				fail(cmd.Op, errors.New("wait: no load running"))
				continue
			}
			<-loadDone
			rep, err := loadRep, loadErr
			loadDone, loadRep, loadErr = nil, nil, nil
			if err != nil {
				fail(cmd.Op, err)
				continue
			}
			reply(proto.Response{Op: cmd.Op, OK: true, Load: rep})
		case proto.OpStats:
			rep := statsReport(node)
			if loadDone != nil {
				select {
				case <-loadDone:
				default:
					rep.LoadRunning = true
				}
			}
			reply(proto.Response{Op: cmd.Op, OK: true, Stats: rep})
		case proto.OpChaos:
			if cmd.Chaos == nil {
				fail(cmd.Op, errors.New("chaos: missing spec"))
				continue
			}
			// Register the current book first: links are attributed by
			// destination address, and peers may have joined since launch.
			for id, addr := range node.Peers() {
				cn.Register(id, addr)
			}
			if cmd.Chaos.Clear {
				cn.Clear()
			} else {
				cn.SetDefault(chaos.Faults{
					Drop:      cmd.Chaos.Drop,
					Corrupt:   cmd.Chaos.Corrupt,
					Duplicate: cmd.Chaos.Duplicate,
					Delay:     time.Duration(cmd.Chaos.DelayMS) * time.Millisecond,
					Jitter:    time.Duration(cmd.Chaos.JitterMS) * time.Millisecond,
				})
			}
			reply(proto.Response{Op: cmd.Op, OK: true})
		case proto.OpQuery:
			if cmd.Query == nil {
				fail(cmd.Op, errors.New("query: missing spec"))
				continue
			}
			timeout := 5 * time.Second
			if cmd.Query.TimeoutMS > 0 {
				timeout = time.Duration(cmd.Query.TimeoutMS) * time.Millisecond
			}
			_, err := node.Query(catalog.CategoryID(cmd.Query.Category), cmd.Query.M, timeout)
			if err != nil {
				fail(cmd.Op, err)
				continue
			}
			reply(proto.Response{Op: cmd.Op, OK: true})
		case proto.OpQuit:
			reply(proto.Response{Op: cmd.Op, OK: true})
			return nil
		default:
			fail(cmd.Op, fmt.Errorf("unknown op %q", cmd.Op))
		}
	}
	return sc.Err()
}
