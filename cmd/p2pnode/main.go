// Command p2pnode runs ONE live peer of a multi-process deployment.
//
// Every process of a deployment is started with the same shape flags
// (-docs -cats -nodes -clusters -seed); deterministic generation then
// reconstructs the identical catalog, MaxFair assignment, and replica
// placement in each process, so only the address book needs exchanging.
// The first process is the seed; later ones join through any running
// peer's address:
//
//	p2pnode -id 0 -listen 127.0.0.1:7000
//	p2pnode -id 1 -listen 127.0.0.1:7001 -bootstrap 127.0.0.1:7000
//	p2pnode -id 2 -listen 127.0.0.1:7002 -bootstrap 127.0.0.1:7000 \
//	        -query 3 -every 2s
//
// With -query, the node issues keyword queries against the given category
// on an interval and prints the outcomes; otherwise it serves silently
// until interrupted.
//
// With -loadgen, the node becomes a load generator: -concurrency worker
// goroutines drive the deployment with the Zipf workload of
// internal/workload (temporal locality tunable with -repeat) for
// -duration, then print a latency histogram with p50/p95/p99 and the
// requester-cache hit share:
//
//	p2pnode -id 3 -bootstrap 127.0.0.1:7000 -loadgen \
//	        -concurrency 32 -duration 30s -repeat 0.4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on -pprof
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/chaos"
	"p2pshare/internal/livenet"
	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
	"p2pshare/internal/workload"
)

// printStats dumps the node's transport/protocol counters and its query
// latency histogram in a stable order.
func printStats(node *livenet.Node) {
	s := node.Stats()
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Print("stats:")
	for _, k := range keys {
		fmt.Printf(" %s=%d", k, s[k])
	}
	fmt.Println()
	if alive, suspect := node.MembershipCounts(); alive > 0 {
		line := fmt.Sprintf("membership: %d alive, %d suspect", alive, suspect)
		if f := node.Fairness(); f >= 0 {
			line += fmt.Sprintf("; measured fairness %.3f", float64(f)/1000)
		}
		fmt.Println(line)
	}
	if lat := node.QueryLatency(); lat.Count() > 0 {
		fmt.Printf("query latency (ms): %s\n", lat.PercentileSummary())
	}
	if batches := node.BatchSizes(); batches.Count() > 0 {
		fmt.Printf("write batches (msgs/flush): %s\n", batches.Summary())
	}
	if tput := node.TransferThroughput(); tput.Count() > 0 {
		fmt.Printf("transfer throughput (KB/s, %d transfers): p50 %.0f p95 %.0f p99 %.0f\n",
			tput.Count(), tput.Quantile(0.5), tput.Quantile(0.95), tput.Quantile(0.99))
	}
}

// runLoadgen drives the deployment from this node with concurrent
// workers issuing popularity-faithful queries, then reports latency
// percentiles, a latency distribution, and the cache's contribution.
func runLoadgen(node *livenet.Node, concurrency int, duration, qtimeout time.Duration, m int, repeatP float64, seed int64, stop <-chan os.Signal) error {
	gen, err := workload.NewGenerator(node.Instance(), m, seed+99)
	if err != nil {
		return err
	}
	gen.WithRepeat(repeatP, 32)
	var genMu sync.Mutex // Generator is not safe for concurrent use

	// Zero-hop (cache) answers and network answers are tracked apart so
	// the cache's latency effect is visible, not averaged away.
	all := &metrics.SyncHistogram{}
	network := &metrics.SyncHistogram{}
	local := &metrics.SyncHistogram{}
	var issued, ok, timeouts, rejected, failed atomic.Int64

	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	fmt.Printf("loadgen: %d workers for %v (m=%d, repeat=%.2f)\n",
		concurrency, duration, m, repeatP)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				genMu.Lock()
				q := gen.Next()
				genMu.Unlock()
				qctx, qcancel := context.WithTimeout(ctx, qtimeout)
				out, err := node.QueryContext(qctx, q.Category, q.M)
				qcancel()
				if ctx.Err() != nil && err != nil {
					return // run over; a cut-short query is not a data point
				}
				issued.Add(1)
				switch {
				case err == nil:
					ok.Add(1)
					all.ObserveDuration(out.ResponseTime)
					if out.Hops == 0 {
						local.ObserveDuration(out.ResponseTime)
					} else {
						network.ObserveDuration(out.ResponseTime)
					}
				case errors.Is(err, livenet.ErrTimeout):
					timeouts.Add(1)
				case errors.Is(err, livenet.ErrOverloaded):
					rejected.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := issued.Load()
	fmt.Printf("\nloadgen: %d queries in %v (%.1f qps): %d ok, %d timeout, %d rejected, %d failed\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		ok.Load(), timeouts.Load(), rejected.Load(), failed.Load())
	if all.Count() > 0 {
		fmt.Printf("latency (ms): %s\n", all.PercentileSummary())
		fmt.Print(all.Distribution(12, 40))
	}
	s := node.Stats()
	hits, misses := s["cache_hit"], s["cache_miss"]
	if hits+misses > 0 {
		fmt.Printf("requester cache: %d hits / %d lookups (%.1f%%)\n",
			hits, hits+misses, 100*float64(hits)/float64(hits+misses))
	}
	if local.Count() > 0 && network.Count() > 0 {
		fmt.Printf("zero-hop (cache) p50 %.2fms vs network p50 %.2fms over %d / %d answers\n",
			local.Quantile(0.5), network.Quantile(0.5), local.Count(), network.Count())
	}
	return nil
}

func main() {
	id := flag.Int("id", 0, "this process's node id within the shape")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	bootstrap := flag.String("bootstrap", "", "address of any running peer (empty = seed node)")
	docs := flag.Int("docs", 800, "shape: number of documents")
	cats := flag.Int("cats", 16, "shape: number of categories")
	nodes := flag.Int("nodes", 40, "shape: number of nodes")
	clusters := flag.Int("clusters", 5, "shape: number of clusters")
	seed := flag.Int64("seed", 1, "shape: deterministic-generation seed")
	query := flag.Int("query", -1, "category id to query periodically (-1 = serve only)")
	every := flag.Duration("every", 2*time.Second, "query interval")
	m := flag.Int("m", 3, "results per query")
	statsEvery := flag.Duration("stats", 0, "print transport counters on this interval (0 = only at exit)")
	cacheMB := flag.Int64("cachemb", 64, "requester-cache capacity in MB (0 = disable caching)")
	loadgen := flag.Bool("loadgen", false, "drive the deployment with the Zipf workload, then print a latency histogram")
	concurrency := flag.Int("concurrency", 8, "loadgen: concurrent query workers")
	duration := flag.Duration("duration", 10*time.Second, "loadgen: how long to generate load")
	qtimeout := flag.Duration("qtimeout", 5*time.Second, "loadgen: per-query deadline")
	repeat := flag.Float64("repeat", 0.3, "loadgen: probability of re-issuing a recent query (temporal locality)")
	adaptEvery := flag.Duration("adapt-interval", 0, "online rebalancing epoch length (0 = adaptation off)")
	fairThresh := flag.Float64("fairness-threshold", 0.83, "fairness index below which the chosen leader rebalances")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	contentOn := flag.Bool("content", false, "enable the content data plane (chunk store, Fetch, byte-shipping moves)")
	contentCacheMB := flag.Int64("content-cachemb", 0, "demand-driven replica cache budget in MB (0 = off; requires -content)")
	cacheAdmit := flag.Int("cache-admit", 0, "demand hits before a fetched doc earns a cache slot (0 = default, 2)")
	docBytes := flag.Int64("docbytes", 0, "shape: bytes per document (0 = catalog default, 4 MB)")
	shards := flag.Int("shards", 0, "engine shards (parallel query loops; 0 = GOMAXPROCS, min 2, max 64)")
	maxInFlight := flag.Int("maxinflight", 0, "admission bound on concurrently served queries (0 = default)")
	harnessMode := flag.Bool("harness", false, "machine mode: speak the harness JSON protocol on stdin/stdout")
	syncAddr := flag.String("sync", "", "harness barrier service address (machine mode)")
	statsJSON := flag.Bool("stats-json", false, "print stats as one JSON line (harness schema) instead of text")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "p2pnode: pprof:", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	shape := livenet.Shape{
		Documents: *docs, Categories: *cats, Nodes: *nodes,
		Clusters: *clusters, Seed: *seed, DocBytes: *docBytes,
	}
	// The whole birth configuration is one Options struct; only runtime
	// re-tuning still goes through setters.
	opts := livenet.Options{
		Shards:      *shards,
		MaxInFlight: *maxInFlight,
		CacheBytes:  *cacheMB << 20,
	}
	if *cacheMB == 0 {
		opts.CacheBytes = -1 // historical flag meaning: 0 MB disables caching
	}
	if *adaptEvery > 0 {
		opts.Adaptation = &livenet.AdaptConfig{
			Interval:     *adaptEvery,
			LowThreshold: *fairThresh,
		}
	}
	if *contentOn {
		opts.Content = &livenet.ContentConfig{
			CacheBytes:     *contentCacheMB << 20,
			CacheAdmitHits: *cacheAdmit,
		}
	}
	// Machine mode runs every link through a chaos controller so the
	// orchestrator can inject faults mid-act. Seeded per process: each
	// node owns only its outbound links, so streams never overlap.
	var cn *chaos.Net
	if *harnessMode {
		cn = chaos.New(*seed*1000003 + int64(*id))
		opts.Hooks = livenet.NetHooks{
			Listen: func(nid model.NodeID, addr string) (net.Listener, error) {
				ln, err := net.Listen("tcp", addr)
				if err == nil {
					cn.Register(nid, ln.Addr().String())
				}
				return ln, err
			},
			Dial: cn.DialFrom,
		}
	}
	node, err := livenet.StartNode(shape, model.NodeID(*id), *listen, *bootstrap, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2pnode:", err)
		os.Exit(1)
	}
	// Leave (not just Close) on the way out: peers evict this node
	// immediately instead of waiting out a suspicion timeout.
	defer node.Leave()

	if *harnessMode {
		if err := runMachine(node, cn, *syncAddr); err != nil {
			fmt.Fprintln(os.Stderr, "p2pnode: machine:", err)
			node.Leave()
			os.Exit(1)
		}
		return
	}

	if *adaptEvery > 0 {
		fmt.Printf("adaptation on: %v epochs, rebalance below fairness %.2f\n",
			*adaptEvery, *fairThresh)
	}
	fmt.Printf("node %d listening on %s (knows %d peers, %d engine shards)\n",
		node.ID(), node.Addr(), node.KnownPeers(), node.Shards())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	dump := printStats
	if *statsJSON {
		dump = printStatsJSON
	}
	defer dump(node)

	if *loadgen {
		if err := runLoadgen(node, *concurrency, *duration, *qtimeout, *m, *repeat, *seed, stop); err != nil {
			fmt.Fprintln(os.Stderr, "p2pnode: loadgen:", err)
			os.Exit(1)
		}
		return
	}

	var statsTick <-chan time.Time
	if *statsEvery > 0 {
		st := time.NewTicker(*statsEvery)
		defer st.Stop()
		statsTick = st.C
	}

	if *query < 0 {
		fmt.Println("serving; ctrl-c to exit")
		for {
			select {
			case <-statsTick:
				dump(node)
			case <-stop:
				return
			}
		}
	}

	cat := catalog.CategoryID(*query)
	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			out, err := node.Query(cat, *m, 5*time.Second)
			if err != nil {
				fmt.Printf("query category %d: %v (%d partial results)\n", cat, err, len(out.Docs))
				continue
			}
			fmt.Printf("query category %d: %d results in %d hop(s)\n", cat, len(out.Docs), out.Hops)
		case <-statsTick:
			dump(node)
		case <-stop:
			return
		}
	}
}
