// Command p2pnode runs ONE live peer of a multi-process deployment.
//
// Every process of a deployment is started with the same shape flags
// (-docs -cats -nodes -clusters -seed); deterministic generation then
// reconstructs the identical catalog, MaxFair assignment, and replica
// placement in each process, so only the address book needs exchanging.
// The first process is the seed; later ones join through any running
// peer's address:
//
//	p2pnode -id 0 -listen 127.0.0.1:7000
//	p2pnode -id 1 -listen 127.0.0.1:7001 -bootstrap 127.0.0.1:7000
//	p2pnode -id 2 -listen 127.0.0.1:7002 -bootstrap 127.0.0.1:7000 \
//	        -query 3 -every 2s
//
// With -query, the node issues keyword queries against the given category
// on an interval and prints the outcomes; otherwise it serves silently
// until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/livenet"
	"p2pshare/internal/model"
)

// printStats dumps the node's transport/protocol counters and its query
// latency histogram in a stable order.
func printStats(node *livenet.Node) {
	s := node.Stats()
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Print("stats:")
	for _, k := range keys {
		fmt.Printf(" %s=%d", k, s[k])
	}
	fmt.Println()
	if lat := node.QueryLatency(); lat.Count() > 0 {
		fmt.Printf("query latency (ms): %s\n", lat.Summary())
	}
}

func main() {
	id := flag.Int("id", 0, "this process's node id within the shape")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	bootstrap := flag.String("bootstrap", "", "address of any running peer (empty = seed node)")
	docs := flag.Int("docs", 800, "shape: number of documents")
	cats := flag.Int("cats", 16, "shape: number of categories")
	nodes := flag.Int("nodes", 40, "shape: number of nodes")
	clusters := flag.Int("clusters", 5, "shape: number of clusters")
	seed := flag.Int64("seed", 1, "shape: deterministic-generation seed")
	query := flag.Int("query", -1, "category id to query periodically (-1 = serve only)")
	every := flag.Duration("every", 2*time.Second, "query interval")
	m := flag.Int("m", 3, "results per query")
	statsEvery := flag.Duration("stats", 0, "print transport counters on this interval (0 = only at exit)")
	flag.Parse()

	shape := livenet.Shape{
		Documents: *docs, Categories: *cats, Nodes: *nodes,
		Clusters: *clusters, Seed: *seed,
	}
	node, err := livenet.StartNode(shape, model.NodeID(*id), *listen, *bootstrap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2pnode:", err)
		os.Exit(1)
	}
	defer node.Close()
	fmt.Printf("node %d listening on %s (knows %d peers)\n",
		node.ID(), node.Addr(), node.KnownPeers())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	defer printStats(node)

	var statsTick <-chan time.Time
	if *statsEvery > 0 {
		st := time.NewTicker(*statsEvery)
		defer st.Stop()
		statsTick = st.C
	}

	if *query < 0 {
		fmt.Println("serving; ctrl-c to exit")
		for {
			select {
			case <-statsTick:
				printStats(node)
			case <-stop:
				return
			}
		}
	}

	cat := catalog.CategoryID(*query)
	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			out, err := node.Query(cat, *m, 5*time.Second)
			if err != nil {
				fmt.Printf("query category %d: %v (%d partial results)\n", cat, err, len(out.Docs))
				continue
			}
			fmt.Printf("query category %d: %d results in %d hop(s)\n", cat, len(out.Docs), out.Hops)
		case <-statsTick:
			printStats(node)
		case <-stop:
			return
		}
	}
}
