// Command benchcluster boots paper-scale LIVE clusters — real nodes,
// real listeners, real protocol traffic — over the in-process memnet
// fabric and measures what a node costs and what the cluster serves.
// It is the tracked entry point of the cluster-scale perf trajectory
// (ROADMAP item 2: the simulator reached 10k nodes long ago; this is
// the same scale with every node actually running).
//
//	go run ./cmd/benchcluster -out BENCH_cluster.json
//	go run ./cmd/benchcluster -nodes 1000 -queries 500   # CI smoke
//
// Per scale it reports startup time, resident memory per node, goroutine
// count per node (after boot, i.e. the idle cost — transport writers
// park, timers ride the shared wheel), and Zipf-workload throughput with
// driver-side latency percentiles. The requester cache is disabled so
// throughput is an engine+transport property, not a cache property.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2pshare/internal/livenet"
	"p2pshare/internal/memnet"
	"p2pshare/internal/model"
)

// run is one cluster scale's measurement.
type run struct {
	Nodes          int     `json:"nodes"`
	Clusters       int     `json:"clusters"`
	Shards         int     `json:"shards"`
	StartupSeconds float64 `json:"startup_seconds"`
	// HeapBytesPerNode is the Go-heap growth of booting the cluster
	// (HeapAlloc delta across the launch, both sides GC'd) divided by the
	// node count — the per-node footprint. RSSBytes is the absolute
	// process resident set after boot for context; it is NOT per-node
	// (the process reuses freed heap across runs, so deltas of RSS
	// mislead).
	HeapBytesPerNode  float64 `json:"heap_bytes_per_node"`
	RSSBytes          int64   `json:"rss_bytes"`
	GoroutinesTotal   int     `json:"goroutines_total"`
	GoroutinesPerNode float64 `json:"goroutines_per_node"`
	Queries           int     `json:"queries"`
	Errors            int     `json:"errors"`
	Seconds           float64 `json:"seconds"`
	QPS               float64 `json:"qps"`
	P50Ms             float64 `json:"p50_ms"`
	P95Ms             float64 `json:"p95_ms"`
	P99Ms             float64 `json:"p99_ms"`
}

// report is the whole artifact.
type report struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	GoVersion  string  `json:"go_version"`
	Seed       int64   `json:"seed"`
	Workers    int     `json:"workers"`
	Zipf       float64 `json:"zipf_s"`
	Runs       []run   `json:"runs"`
}

// rssBytes reads the process's resident set from /proc/self/status
// (VmRSS); 0 on platforms without procfs.
func rssBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// shapeFor picks a deployment geometry for a node count: clusters scale
// with the population (the paper's 20k-node runs used 100 clusters), and
// the catalog provides two documents per node so every node stores
// something.
func shapeFor(nodes int, seed int64) livenet.Shape {
	clusters := nodes / 100
	if clusters < 4 {
		clusters = 4
	}
	if clusters > 100 {
		clusters = 100
	}
	cats := 5 * clusters
	return livenet.Shape{
		Documents:  2 * nodes,
		Categories: cats,
		Nodes:      nodes,
		Clusters:   clusters,
		Seed:       seed,
	}
}

func bench(nodes, queries, workers, origins, shards int, zipfS float64, seed int64) (run, error) {
	sh := shapeFor(nodes, seed)
	inst, assign, place, err := sh.Build()
	if err != nil {
		return run{}, err
	}

	nw := memnet.New()
	hooks := livenet.NetHooks{
		Listen: func(_ model.NodeID, addr string) (net.Listener, error) { return nw.Listen(addr) },
		Dial:   func(_ model.NodeID, addr string) (net.Conn, error) { return nw.Dial(addr) },
	}

	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	bootStart := time.Now()
	c, err := livenet.Launch(inst, assign, place, livenet.Options{
		Seed:   seed,
		Shards: shards,
		Hooks:  hooks,
		// Full engine+transport path on every query; no requester cache.
		CacheBytes: -1,
		// Park quickly: idle cost should reflect steady state, not the
		// 45s default tail.
		WriterIdle: 2 * time.Second,
	})
	if err != nil {
		return run{}, err
	}
	defer c.Close()
	startup := time.Since(bootStart)
	runtime.GC()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	goroutines := runtime.NumGoroutine()

	// Requesters are a fixed pool of origin nodes, warmed with one query
	// each before timing starts: the measured numbers are the cluster's
	// steady-state serving behavior, not a cold-dial storm from 10k
	// distinct origins at once.
	rng := rand.New(rand.NewSource(seed))
	if origins > nodes {
		origins = nodes
	}
	pool := make([]*livenet.Node, origins)
	for i, k := range rng.Perm(nodes)[:origins] {
		pool[i] = c.Nodes[k]
	}
	cats := inst.Catalog.Cats
	for _, origin := range pool {
		cat := cats[rng.Intn(len(cats))].ID
		origin.Query(cat, 1, 10*time.Second)
	}

	// Zipf workload over categories. Latency is measured around each
	// Query call in the driver, so the percentiles are exact over the
	// run, not histogram-bucketed.
	var next, errs atomic.Int64
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	loadStart := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1299721))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(cats)-1))
			lats := make([]time.Duration, 0, queries/workers+1)
			for next.Add(1) <= int64(queries) {
				origin := pool[rng.Intn(len(pool))]
				cat := cats[int(zipf.Uint64())].ID
				t0 := time.Now()
				if _, err := origin.Query(cat, 1, 10*time.Second); err != nil {
					errs.Add(1)
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(loadStart)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}

	heapDelta := float64(msAfter.HeapAlloc) - float64(msBefore.HeapAlloc)
	return run{
		Nodes:             nodes,
		Clusters:          sh.Clusters,
		Shards:            c.Nodes[0].Shards(),
		StartupSeconds:    startup.Seconds(),
		HeapBytesPerNode:  heapDelta / float64(nodes),
		RSSBytes:          rssBytes(),
		GoroutinesTotal:   goroutines,
		GoroutinesPerNode: float64(goroutines) / float64(nodes),
		Queries:           queries,
		Errors:            int(errs.Load()),
		Seconds:           elapsed.Seconds(),
		QPS:               float64(queries) / elapsed.Seconds(),
		P50Ms:             q(0.50),
		P95Ms:             q(0.95),
		P99Ms:             q(0.99),
	}, nil
}

func main() {
	var (
		out        = flag.String("out", "BENCH_cluster.json", "output path (- = stdout)")
		nodeList   = flag.String("nodes", "1000,5000,10000", "comma-separated cluster sizes")
		queries    = flag.Int("queries", 2000, "queries per scale")
		workers    = flag.Int("workers", 16, "concurrent query workers")
		origins    = flag.Int("origins", 256, "size of the requester pool queries originate from")
		shards     = flag.Int("shards", 0, "engine shards per node (0 = default)")
		zipfS      = flag.Float64("zipf", 1.2, "Zipf skew parameter s for category popularity")
		seed       = flag.Int64("seed", 51, "deployment seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile to this path on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcluster:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchcluster:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var sizes []int
	for _, s := range strings.Split(*nodeList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 4 {
			fmt.Fprintf(os.Stderr, "benchcluster: bad -nodes entry %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}

	rep := report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Seed:       *seed,
		Workers:    *workers,
		Zipf:       *zipfS,
	}
	for _, n := range sizes {
		fmt.Fprintf(os.Stderr, "benchcluster: booting %d live nodes over memnet...\n", n)
		r, err := bench(n, *queries, *workers, *origins, *shards, *zipfS, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcluster:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr,
			"benchcluster: nodes=%d startup=%.1fs heap/node=%.0fKB goroutines/node=%.2f qps=%.0f p50=%.2fms p95=%.2fms p99=%.2fms errors=%d\n",
			r.Nodes, r.StartupSeconds, r.HeapBytesPerNode/1024, r.GoroutinesPerNode,
			r.QPS, r.P50Ms, r.P95Ms, r.P99Ms, r.Errors)
		rep.Runs = append(rep.Runs, r)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcluster:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchcluster:", err)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcluster:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcluster:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchcluster: wrote", *out)
}
