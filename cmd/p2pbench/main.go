// Command p2pbench runs harness plans — scripted multi-process
// scenarios with a tracked perf trajectory — and gates them against
// committed baselines.
//
//	p2pbench -list                         # what plans exist
//	p2pbench -plan smoke                   # run one plan → BENCH_smoke.json
//	p2pbench -plan smoke -baseline bench/BENCH_smoke.baseline.json
//	p2pbench -all                          # run the whole suite
//
// Every run writes BENCH_<plan>.json (see -out): the plan's declared
// objectives plus per-act and run-level data points. With -baseline,
// the run is compared metric by metric under the plan's tolerances and
// the process exits 1 on any regression — that is the CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"p2pshare/internal/harness"
)

func main() {
	// Indirection so the profile-flushing defers in run still execute on
	// a failing exit code.
	os.Exit(run())
}

func run() int {
	plan := flag.String("plan", "", "plan name to run (see -list)")
	all := flag.Bool("all", false, "run every built-in plan")
	list := flag.Bool("list", false, "list plans and exit")
	out := flag.String("out", ".", "directory for BENCH_<plan>.json artifacts")
	baseline := flag.String("baseline", "", "baseline BENCH json (or directory of them) to gate against")
	seed := flag.Int64("seed", 0, "override the plan seed (0 = plan default)")
	actTimeout := flag.Duration("act-timeout", 3*time.Minute, "per-act wait bound")
	cpuprofile := flag.String("cpuprofile", "", "write the driver's CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write the driver's heap profile to this path on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p2pbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "p2pbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p2pbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "p2pbench:", err)
			}
		}()
	}

	if *list {
		for _, p := range harness.Plans() {
			fmt.Printf("%-22s %s\n", p.Name, p.Overview)
		}
		return 0
	}

	var plans []harness.Plan
	switch {
	case *all:
		plans = harness.Plans()
	case *plan != "":
		p, err := harness.LookupPlan(*plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p2pbench:", err)
			return 2
		}
		plans = []harness.Plan{p}
	default:
		fmt.Fprintln(os.Stderr, "p2pbench: pass -plan <name>, -all, or -list")
		return 2
	}

	// One shared build across the suite.
	binDir, err := os.MkdirTemp("", "p2pbench-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2pbench:", err)
		return 1
	}
	defer os.RemoveAll(binDir)

	failed := false
	for _, p := range plans {
		started := time.Now()
		res, err := harness.Run(p, harness.RunConfig{
			Out: os.Stdout, Seed: *seed, ActTimeout: *actTimeout, BinDir: binDir,
		})
		res.Started = started.UTC().Format(time.RFC3339)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p2pbench: plan %s: %v\n", p.Name, err)
			failed = true
		}
		if res.Totals != nil {
			path := filepath.Join(*out, "BENCH_"+p.Name+".json")
			if werr := res.WriteFile(path); werr != nil {
				fmt.Fprintln(os.Stderr, "p2pbench:", werr)
				failed = true
			} else {
				fmt.Printf("%s\nwrote %s\n", res.Summary(), path)
			}
		}
		if err != nil {
			continue
		}
		if *baseline != "" {
			base, ok := loadBaseline(*baseline, p.Name)
			if !ok {
				fmt.Printf("plan %s: no baseline yet; skipping gate\n", p.Name)
				continue
			}
			regs := harness.Compare(p.Optimized, base, res)
			if len(regs) == 0 {
				fmt.Printf("plan %s: within tolerance of baseline\n", p.Name)
				continue
			}
			failed = true
			fmt.Fprintf(os.Stderr, "plan %s: %d regression(s) vs baseline:\n", p.Name, len(regs))
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

// loadBaseline resolves -baseline: a file gates the plan directly; a
// directory is searched for BENCH_<plan>.baseline.json.
func loadBaseline(path, plan string) (harness.Result, bool) {
	fi, err := os.Stat(path)
	if err != nil {
		return harness.Result{}, false
	}
	if fi.IsDir() {
		path = filepath.Join(path, "BENCH_"+plan+".baseline.json")
	}
	res, err := harness.ReadResult(path)
	if err != nil {
		return harness.Result{}, false
	}
	return res, true
}
