// Command maxfair runs the inter-cluster load balancer standalone on a
// synthetic instance and prints the assignment quality — handy for
// exploring how fairness behaves across system shapes.
//
// Usage:
//
//	maxfair [-docs N] [-cats N] [-nodes N] [-clusters N]
//	        [-theta-docs F] [-theta-cats F] [-uniform] [-seed N]
//	        [-order desc|asc|random|given] [-compare]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"p2pshare/internal/baseline"
	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
)

func main() {
	docs := flag.Int("docs", 20000, "number of documents")
	cats := flag.Int("cats", 500, "number of categories")
	nodes := flag.Int("nodes", 2000, "number of nodes")
	clusters := flag.Int("clusters", 100, "number of clusters")
	thetaDocs := flag.Float64("theta-docs", 0.8, "Zipf skew of document popularity")
	thetaCats := flag.Float64("theta-cats", 0.7, "Zipf skew of category assignment")
	uniform := flag.Bool("uniform", false, "assign documents to categories uniformly")
	seed := flag.Int64("seed", 1, "random seed")
	order := flag.String("order", "desc", "category order: desc, asc, random, given")
	compare := flag.Bool("compare", false, "also run the baseline assigners")
	flag.Parse()

	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = *docs
	cfg.Catalog.NumCats = *cats
	cfg.Catalog.ThetaDocs = *thetaDocs
	cfg.Catalog.ThetaCats = *thetaCats
	if *uniform {
		cfg.Catalog.CatAssign = catalog.AssignUniform
	}
	cfg.NumNodes = *nodes
	cfg.NumClusters = *clusters
	cfg.Seed = *seed

	inst, err := model.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	opts := core.Options{Rng: rand.New(rand.NewSource(*seed))}
	switch *order {
	case "desc":
		opts.Order = core.OrderPopularityDesc
	case "asc":
		opts.Order = core.OrderPopularityAsc
	case "random":
		opts.Order = core.OrderRandom
	case "given":
		opts.Order = core.OrderGiven
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}

	res, err := core.MaxFair(inst, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: %d docs, %d categories, %d nodes, %d clusters (seed %d)\n",
		*docs, *cats, *nodes, *clusters, *seed)
	fmt.Printf("maxfair (%s): fairness = %.6f  CoV = %.4f  min/max = %.4f\n",
		opts.Order, res.Fairness,
		fairness.CoV(res.NormalizedPopularities),
		fairness.MinMaxRatio(res.NormalizedPopularities))

	if *compare {
		rng := rand.New(rand.NewSource(*seed))
		for _, name := range []baseline.Name{
			baseline.NameLPT, baseline.NameHash, baseline.NameRandom, baseline.NameRoundRobin,
		} {
			r, err := baseline.Run(name, inst, rng)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-12s fairness = %.6f\n", name, r.Fairness)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maxfair:", err)
	os.Exit(1)
}
