// Command benchengine measures one node's query throughput and latency
// against a live loopback cluster at several engine shard counts and
// writes the result as machine-readable JSON — the artifact CI's
// bench-smoke job archives so engine regressions show up as numbers,
// not vibes.
//
//	go run ./cmd/benchengine -out BENCH_engine.json
//	go run ./cmd/benchengine -queries 2000 -workers 16 -shards 1,8
//
// The requester cache is disabled so every query runs the full engine +
// transport path; throughput is therefore a property of the sharded
// engine, not the cache.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/harness"
	"p2pshare/internal/livenet"
)

// run is one shard count's measurement.
type run struct {
	Shards     int     `json:"shards"`
	Queries    int     `json:"queries"`
	Errors     int     `json:"errors"`
	Seconds    float64 `json:"seconds"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// report is the whole artifact: environment, then one run per shard
// count so dashboards can plot scaling.
type report struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	Seed       int64  `json:"seed"`
	Workers    int    `json:"workers"`
	Runs       []run  `json:"runs"`
}

func bench(shards, queries, workers int, seed int64) (run, error) {
	sh := livenet.Shape{Documents: 400, Categories: 12, Nodes: 24, Clusters: 4, Seed: seed}
	inst, assign, place, err := sh.Build()
	if err != nil {
		return run{}, err
	}
	// CacheBytes < 0: every query runs the full engine + transport path.
	c, err := livenet.Launch(inst, assign, place,
		livenet.Options{Seed: seed, Shards: shards, CacheBytes: -1})
	if err != nil {
		return run{}, err
	}
	defer c.Close()
	n := c.Nodes[0]

	// The busiest category keeps every query satisfiable with want=1.
	var cat catalog.CategoryID
	best := -1
	for i := range inst.Catalog.Cats {
		if d := len(inst.Catalog.Cats[i].Docs); d > best {
			cat, best = inst.Catalog.Cats[i].ID, d
		}
	}

	// Warm the peer streams so the measurement excludes connection setup.
	if _, err := n.Query(cat, 1, 5*time.Second); err != nil {
		return run{}, fmt.Errorf("warmup query: %w", err)
	}

	var next, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(queries) {
				if _, err := n.Query(cat, 1, 5*time.Second); err != nil {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	h := n.QueryLatency()
	return run{
		Shards:     shards,
		Queries:    queries,
		Errors:     int(errs.Load()),
		Seconds:    elapsed,
		MsgsPerSec: float64(queries) / elapsed,
		P50Ms:      h.Quantile(0.50),
		P95Ms:      h.Quantile(0.95),
		P99Ms:      h.Quantile(0.99),
	}, nil
}

// gateObjectives are the regression gates applied under -baseline,
// evaluated with harness.Compare — the same slack arithmetic
// (slack = base*RelTol + AbsTol, direction by Goal) p2pbench uses.
// Latency gets wide tolerances because CI machines vary; throughput is
// tracked but not gated, matching the harness smoke plan's convention.
func gateObjectives() []harness.Objective {
	return []harness.Objective{
		{Metric: "errors", Goal: "min", RelTol: 1.0, AbsTol: 5},
		{Metric: "p95_ms", Goal: "min", RelTol: 2.0, AbsTol: 100},
		{Metric: "p99_ms", Goal: "min", RelTol: 3.0, AbsTol: 250},
		{Metric: "msgs_per_sec", Goal: "max"}, // report-only
	}
}

// totals adapts one run to the metric map harness.Compare consumes.
func totals(r run) map[string]float64 {
	return map[string]float64{
		"errors":       float64(r.Errors),
		"p95_ms":       r.P95Ms,
		"p99_ms":       r.P99Ms,
		"msgs_per_sec": r.MsgsPerSec,
	}
}

// gate compares each current run against the baseline run with the same
// shard count and reports regressions; shard counts missing from the
// baseline are skipped so new sweep points don't fail until a baseline
// catches up.
func gate(baseline report, rep report) bool {
	byShards := make(map[int]run, len(baseline.Runs))
	for _, r := range baseline.Runs {
		byShards[r.Shards] = r
	}
	failed := false
	for _, cur := range rep.Runs {
		base, ok := byShards[cur.Shards]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchengine: shards=%d: no baseline run; skipping gate\n", cur.Shards)
			continue
		}
		regs := harness.Compare(gateObjectives(),
			harness.Result{Totals: totals(base)},
			harness.Result{Totals: totals(cur)})
		if len(regs) == 0 {
			fmt.Fprintf(os.Stderr, "benchengine: shards=%d within tolerance of baseline\n", cur.Shards)
			continue
		}
		failed = true
		fmt.Fprintf(os.Stderr, "benchengine: shards=%d: %d regression(s) vs baseline:\n", cur.Shards, len(regs))
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
	}
	return failed
}

func main() {
	var (
		out        = flag.String("out", "BENCH_engine.json", "output path (- = stdout)")
		queries    = flag.Int("queries", 1000, "queries per shard-count run")
		workers    = flag.Int("workers", 8, "concurrent query workers")
		seed       = flag.Int64("seed", 51, "deployment seed")
		shards     = flag.String("shards", "", "comma-separated shard counts (default \"1,<gomaxprocs>\")")
		baseline   = flag.String("baseline", "", "baseline BENCH_engine json (or directory holding BENCH_engine.baseline.json) to gate against; exits 1 on regression")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile to this path on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchengine:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchengine:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	counts := []int{1, runtime.GOMAXPROCS(0)}
	if counts[1] == 1 {
		counts[1] = 2 // exercise the sharded path even on one core
	}
	if *shards != "" {
		counts = counts[:0]
		for _, s := range strings.Split(*shards, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "benchengine: bad -shards entry %q\n", s)
				os.Exit(2)
			}
			counts = append(counts, v)
		}
	}

	rep := report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Seed:       *seed,
		Workers:    *workers,
	}
	for _, sc := range counts {
		fmt.Fprintf(os.Stderr, "benchengine: %d queries at %d shard(s), %d workers...\n",
			*queries, sc, *workers)
		r, err := bench(sc, *queries, *workers, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchengine:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchengine: shards=%d %.0f msgs/sec p50=%.2fms p95=%.2fms p99=%.2fms\n",
			r.Shards, r.MsgsPerSec, r.P50Ms, r.P95Ms, r.P99Ms)
		rep.Runs = append(rep.Runs, r)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchengine:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchengine:", err)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchengine:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchengine: wrote", *out)
	}

	if *baseline != "" {
		path := *baseline
		if fi, err := os.Stat(path); err == nil && fi.IsDir() {
			path = path + string(os.PathSeparator) + "BENCH_engine.baseline.json"
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchengine: no baseline at %s; skipping gate\n", path)
			return
		}
		var base report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchengine: bad baseline:", err)
			os.Exit(1)
		}
		if gate(base, rep) {
			os.Exit(1)
		}
	}
}
