// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md for the index).
//
// Usage:
//
//	experiments [-scale small|paper] [-seed N] [-only name[,name...]] [-csv dir]
//
// Experiment names: figure2 figure3 figure4 figure5 scaling storage
// transfer coverage assigners hops routing replica dynamic rebalance gap
// ordering modes configs placement granularity metrics cache. Default is all of them. With -csv, each experiment also
// writes its data series as dir/<name>.csv for external plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"p2pshare/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or paper")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "comma-separated experiment names (default: all)")
	csvDir := flag.String("csv", "", "directory to also write per-experiment CSV files into")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv dir: %v\n", err)
			os.Exit(1)
		}
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "small":
		scale = experiments.ScaleSmall
	case "paper":
		scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or paper)\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }

	w := os.Stdout
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	section := func(name string) {
		fmt.Fprintf(w, "\n==== %s (scale=%s, seed=%d) ====\n", name, scale, *seed)
	}
	saveCSV := func(name string, write func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fail(name, err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fail(name, err)
		}
		fmt.Fprintf(w, "(csv: %s)\n", path)
	}

	if run("figure2") {
		section("figure2")
		s, err := experiments.Figure2(scale, *seed)
		if err != nil {
			fail("figure2", err)
		}
		experiments.RenderClusterSeries(w, s)
		saveCSV("figure2", func(out io.Writer) error { return experiments.ClusterSeriesCSV(out, s) })
	}
	if run("figure3") {
		section("figure3")
		s, err := experiments.Figure3(scale, *seed)
		if err != nil {
			fail("figure3", err)
		}
		experiments.RenderClusterSeries(w, s)
		saveCSV("figure3", func(out io.Writer) error { return experiments.ClusterSeriesCSV(out, s) })
	}
	if run("figure4") {
		section("figure4")
		pts, err := experiments.Figure4(scale, nil, *seed)
		if err != nil {
			fail("figure4", err)
		}
		experiments.RenderFigure4(w, pts)
		saveCSV("figure4", func(out io.Writer) error { return experiments.Figure4CSV(out, pts) })
	}
	if run("figure5") {
		section("figure5")
		runs, err := experiments.Figure5(scale, 5, *seed)
		if err != nil {
			fail("figure5", err)
		}
		experiments.RenderFigure5(w, runs)
		saveCSV("figure5", func(out io.Writer) error { return experiments.Figure5CSV(out, runs) })
	}
	if run("scaling") {
		section("scaling")
		rows, err := experiments.ScalingTable(scale, *seed)
		if err != nil {
			fail("scaling", err)
		}
		experiments.RenderScaling(w, rows)
		saveCSV("scaling", func(out io.Writer) error { return experiments.ScalingCSV(out, rows) })
	}
	if run("storage") {
		section("storage")
		experiments.RenderStorageExample(w, experiments.StorageExample())
	}
	if run("transfer") {
		section("transfer")
		experiments.RenderTransferExample(w, experiments.TransferExample())
	}
	if run("coverage") {
		section("coverage")
		rows := experiments.MassCoverage()
		experiments.RenderCoverage(w, rows)
		saveCSV("coverage", func(out io.Writer) error { return experiments.CoverageCSV(out, rows) })
	}
	if run("assigners") {
		section("assigners")
		rows, err := experiments.AssignerComparison(scale, *seed)
		if err != nil {
			fail("assigners", err)
		}
		experiments.RenderAssigners(w, rows)
		saveCSV("assigners", func(out io.Writer) error { return experiments.AssignersCSV(out, rows) })
	}
	if run("hops") {
		section("hops")
		r, err := experiments.QueryHops(scale, 0, *seed)
		if err != nil {
			fail("hops", err)
		}
		experiments.RenderQueryHops(w, r)
	}
	if run("routing") {
		section("routing")
		rows, err := experiments.RoutingComparison(scale, 0, *seed)
		if err != nil {
			fail("routing", err)
		}
		experiments.RenderRouting(w, rows)
		saveCSV("routing", func(out io.Writer) error { return experiments.RoutingCSV(out, rows) })
	}
	if run("replica") {
		section("replica")
		rows, err := experiments.ReplicaBalance(scale, nil, *seed)
		if err != nil {
			fail("replica", err)
		}
		experiments.RenderReplica(w, rows)
		saveCSV("replica", func(out io.Writer) error { return experiments.ReplicaCSV(out, rows) })
	}
	if run("dynamic") {
		section("dynamic")
		with, err := experiments.DynamicAdaptation(scale, 4, 0, true, *seed)
		if err != nil {
			fail("dynamic", err)
		}
		without, err := experiments.DynamicAdaptation(scale, 4, 0, false, *seed)
		if err != nil {
			fail("dynamic", err)
		}
		experiments.RenderDynamic(w, with, without)
		saveCSV("dynamic", func(out io.Writer) error { return experiments.DynamicCSV(out, with, without) })
	}
	if run("rebalance") {
		section("rebalance")
		r, err := experiments.RebalanceCost(scale, *seed)
		if err != nil {
			fail("rebalance", err)
		}
		experiments.RenderRebalanceCost(w, r)
	}
	if run("gap") {
		section("gap")
		rows, err := experiments.OptimalityGap(5, *seed)
		if err != nil {
			fail("gap", err)
		}
		experiments.RenderGap(w, rows)
		saveCSV("gap", func(out io.Writer) error { return experiments.GapCSV(out, rows) })
	}
	if run("ordering") {
		section("ordering")
		rows, err := experiments.OrderingAblation(scale, *seed)
		if err != nil {
			fail("ordering", err)
		}
		experiments.RenderOrdering(w, rows)
		saveCSV("ordering", func(out io.Writer) error { return experiments.OrderingCSV(out, rows) })
	}
	if run("modes") {
		section("modes")
		rows, err := experiments.ModeComparison(scale, 0, *seed)
		if err != nil {
			fail("modes", err)
		}
		experiments.RenderModes(w, rows)
		saveCSV("modes", func(out io.Writer) error { return experiments.ModesCSV(out, rows) })
	}
	if run("configs") {
		section("configs")
		rows, err := experiments.ConfigSweep(scale, nil, *seed)
		if err != nil {
			fail("configs", err)
		}
		experiments.RenderConfigSweep(w, rows)
	}
	if run("placement") {
		section("placement")
		rows, err := experiments.PlacementComparison(scale, *seed)
		if err != nil {
			fail("placement", err)
		}
		experiments.RenderPlacement(w, rows)
	}
	if run("metrics") {
		section("metrics")
		r, err := experiments.MetricAgreement(scale, *seed)
		if err != nil {
			fail("metrics", err)
		}
		experiments.RenderMetricAgreement(w, r)
	}
	if run("granularity") {
		section("granularity")
		rows, err := experiments.GranularityStudy(scale, 8, *seed)
		if err != nil {
			fail("granularity", err)
		}
		experiments.RenderGranularity(w, rows)
	}
	if run("cache") {
		section("cache")
		rows, err := experiments.CacheEffect(scale, 0, *seed)
		if err != nil {
			fail("cache", err)
		}
		experiments.RenderCache(w, rows)
		saveCSV("cache", func(out io.Writer) error { return experiments.CacheCSV(out, rows) })
	}
}
