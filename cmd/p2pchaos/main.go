// Command p2pchaos runs seeded chaos scenarios against a live loopback
// cluster and checks the livenet invariants (responsive event loops, no
// stuck queries, bounded tables, post-heal recovery).
//
// A failing run prints its seed and the exact command that replays the
// same fault pattern:
//
//	go run ./cmd/p2pchaos -scenario flappy -seed 42
//	go run ./cmd/p2pchaos -all -seed 7 -nodes 16
//	go run ./cmd/p2pchaos -list
//
// With -out DIR, each scenario additionally writes a
// BENCH_soak-<name>.json data point in the harness trajectory format
// (internal/harness), so soak outcomes land in the same artifact stream
// the p2pbench plans feed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"p2pshare/internal/chaos/soak"
)

// benchResult mirrors harness.Result enough to emit the same artifact
// schema without importing the orchestrator into this small CLI.
type benchResult struct {
	Plan    string             `json:"plan"`
	Seed    int64              `json:"seed"`
	Nodes   int                `json:"nodes"`
	Seconds float64            `json:"seconds"`
	Totals  map[string]float64 `json:"totals"`
}

func writeBench(dir string, rep soak.Report, nodes int) error {
	rate := func(num, den int) float64 {
		if den == 0 {
			return 1
		}
		return float64(num) / float64(den)
	}
	res := benchResult{
		Plan: "soak-" + rep.Scenario, Seed: rep.Seed, Nodes: nodes,
		Seconds: rep.Elapsed.Seconds(),
		Totals: map[string]float64{
			"queries":        float64(rep.Queries),
			"ok":             float64(rep.Succeeded),
			"violations":     float64(len(rep.Violations)),
			"probe_ok_rate":  rate(rep.ProbeOK, rep.ProbeTotal),
			"success_rate":   rate(rep.Succeeded, rep.Queries),
			"nodes_launched": float64(nodes),
		},
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+res.Plan+".json")
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario name (see -list)")
		all      = flag.Bool("all", false, "run every built-in scenario")
		list     = flag.Bool("list", false, "list built-in scenarios and exit")
		seed     = flag.Int64("seed", 1, "chaos seed; a failing run replays exactly from its seed")
		nodes    = flag.Int("nodes", 12, "number of live nodes")
		clusters = flag.Int("clusters", 3, "number of node clusters")
		quiet    = flag.Bool("q", false, "suppress progress output")
		outDir   = flag.String("out", "", "also write BENCH_soak-<scenario>.json artifacts into this directory")
	)
	flag.Parse()

	if *list {
		for _, sc := range soak.Scenarios() {
			fmt.Printf("%-16s %s\n", sc.Name, sc.Desc)
		}
		return
	}

	var run []soak.Scenario
	switch {
	case *all:
		run = soak.Scenarios()
	case *scenario != "":
		sc, err := soak.Lookup(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "use -list to see the built-in scenarios")
			os.Exit(2)
		}
		run = []soak.Scenario{sc}
	default:
		fmt.Fprintln(os.Stderr, "pick a scenario with -scenario <name> or run -all (see -list)")
		os.Exit(2)
	}

	cfg := soak.Config{Seed: *seed, Nodes: *nodes, Clusters: *clusters, Out: os.Stdout}
	if *quiet {
		cfg.Out = nil
	}

	failed := false
	for _, sc := range run {
		rep, err := soak.RunScenario(sc, cfg)
		if *outDir != "" && rep.Scenario != "" {
			if werr := writeBench(*outDir, rep, *nodes); werr != nil {
				fmt.Fprintf(os.Stderr, "write bench artifact: %v\n", werr)
				failed = true
			}
		}
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "FAIL %s (seed %d): %v\n", sc.Name, rep.Seed, err)
			continue
		}
		fmt.Printf("PASS %s (seed %d): %d/%d workload, %d/%d probes, %s\n",
			sc.Name, rep.Seed, rep.Succeeded, rep.Queries,
			rep.ProbeOK, rep.ProbeTotal, rep.Elapsed.Round(10_000_000))
	}
	if failed {
		os.Exit(1)
	}
}
