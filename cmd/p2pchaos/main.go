// Command p2pchaos runs seeded chaos scenarios against a live loopback
// cluster and checks the livenet invariants (responsive event loops, no
// stuck queries, bounded tables, post-heal recovery).
//
// A failing run prints its seed and the exact command that replays the
// same fault pattern:
//
//	go run ./cmd/p2pchaos -scenario flappy -seed 42
//	go run ./cmd/p2pchaos -all -seed 7 -nodes 16
//	go run ./cmd/p2pchaos -list
package main

import (
	"flag"
	"fmt"
	"os"

	"p2pshare/internal/chaos/soak"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario name (see -list)")
		all      = flag.Bool("all", false, "run every built-in scenario")
		list     = flag.Bool("list", false, "list built-in scenarios and exit")
		seed     = flag.Int64("seed", 1, "chaos seed; a failing run replays exactly from its seed")
		nodes    = flag.Int("nodes", 12, "number of live nodes")
		clusters = flag.Int("clusters", 3, "number of node clusters")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *list {
		for _, sc := range soak.Scenarios() {
			fmt.Printf("%-16s %s\n", sc.Name, sc.Desc)
		}
		return
	}

	var run []soak.Scenario
	switch {
	case *all:
		run = soak.Scenarios()
	case *scenario != "":
		sc, err := soak.Lookup(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "use -list to see the built-in scenarios")
			os.Exit(2)
		}
		run = []soak.Scenario{sc}
	default:
		fmt.Fprintln(os.Stderr, "pick a scenario with -scenario <name> or run -all (see -list)")
		os.Exit(2)
	}

	cfg := soak.Config{Seed: *seed, Nodes: *nodes, Clusters: *clusters, Out: os.Stdout}
	if *quiet {
		cfg.Out = nil
	}

	failed := false
	for _, sc := range run {
		rep, err := soak.RunScenario(sc, cfg)
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "FAIL %s (seed %d): %v\n", sc.Name, rep.Seed, err)
			continue
		}
		fmt.Printf("PASS %s (seed %d): %d/%d workload, %d/%d probes, %s\n",
			sc.Name, rep.Seed, rep.Succeeded, rep.Queries,
			rep.ProbeOK, rep.ProbeTotal, rep.Elapsed.Round(10_000_000))
	}
	if failed {
		os.Exit(1)
	}
}
