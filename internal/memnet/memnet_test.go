package memnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// pair dials a fresh listener on nw and returns both ends.
func pair(t *testing.T, nw *Network) (client, server net.Conn) {
	t.Helper()
	ln, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	c, err := nw.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

// TestRoundTrip moves data both directions through one connection,
// crossing the ring-wrap boundary many times.
func TestRoundTrip(t *testing.T) {
	nw := New()
	c, s := pair(t, nw)
	defer c.Close()
	defer s.Close()

	var wg sync.WaitGroup
	payload := make([]byte, 1<<20) // 1MB: forces growth, wrap, and backpressure
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Write(payload); err != nil {
			t.Errorf("write: %v", err)
		}
		c.Close()
	}()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted in transit: %d bytes in, %d out", len(payload), len(got))
	}
}

// TestAutoAssignAddrsUnique checks ":0" listens get distinct addresses.
func TestAutoAssignAddrsUnique(t *testing.T) {
	nw := New()
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		ln, err := nw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addr := ln.Addr().String()
		if seen[addr] {
			t.Fatalf("address %s assigned twice", addr)
		}
		seen[addr] = true
	}
}

// TestDialUnknownRefused checks dials to unbound addresses fail fast.
func TestDialUnknownRefused(t *testing.T) {
	nw := New()
	if _, err := nw.Dial("mem:404"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
	ln, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := nw.Dial(addr); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
}

// TestReadDeadline checks an armed deadline unblocks a pending read
// with a net.Error whose Timeout() is true, and that clearing it works.
func TestReadDeadline(t *testing.T) {
	nw := New()
	c, s := pair(t, nw)
	defer c.Close()
	defer s.Close()

	s.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 8)
	_, err := s.Read(buf)
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("deadline read returned %v, want net.Error timeout", err)
	}

	// Cleared deadline: the read must block until data arrives.
	s.SetReadDeadline(time.Time{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		c.Write([]byte("late"))
	}()
	n, err := s.Read(buf)
	if err != nil || string(buf[:n]) != "late" {
		t.Fatalf("post-clear read = %q, %v", buf[:n], err)
	}
}

// TestWriteDeadlineUnderBackpressure fills the peer's ring until the
// writer blocks, then expects the write deadline to fire.
func TestWriteDeadlineUnderBackpressure(t *testing.T) {
	nw := New()
	c, s := pair(t, nw)
	defer c.Close()
	defer s.Close()

	c.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
	junk := make([]byte, 32<<10)
	var err error
	for i := 0; i < 64; i++ { // 2MB >> ringMaxBytes with nobody reading
		if _, err = c.Write(junk); err != nil {
			break
		}
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("blocked write returned %v, want timeout", err)
	}
}

// TestCloseSemantics pins TCP-like teardown: the peer of a closed conn
// drains buffered data, then reads EOF; writes toward the closed side
// fail.
func TestCloseSemantics(t *testing.T) {
	nw := New()
	c, s := pair(t, nw)
	defer s.Close()

	if _, err := c.Write([]byte("parting gift")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("drain after close: %v", err)
	}
	if string(got) != "parting gift" {
		t.Fatalf("drained %q", got)
	}
	if _, err := s.Write([]byte("into the void")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

// TestNoGoroutinesPerConn pins the package's scaling property: a
// thousand established idle connections add no goroutines.
func TestNoGoroutinesPerConn(t *testing.T) {
	nw := New()
	before := runtime.NumGoroutine()
	conns := make([]net.Conn, 0, 2000)
	ln, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	for i := 0; i < 1000; i++ {
		c, err := nw.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		s, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c, s)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("1000 idle conns grew goroutines %d -> %d", before, after)
	}
	for _, c := range conns {
		c.Close()
	}
}

// TestConcurrentConns hammers many connections at once under the race
// detector.
func TestConcurrentConns(t *testing.T) {
	nw := New()
	ln, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const conns = 32
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := nw.Dial(ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := bytes.Repeat([]byte{byte(i)}, 4096)
			if _, err := c.Write(msg); err != nil {
				t.Errorf("conn %d write: %v", i, err)
			}
		}(i)
	}
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := ln.Accept()
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			buf := make([]byte, 4096)
			if _, err := io.ReadFull(s, buf); err != nil {
				t.Errorf("accept read: %v", err)
				return
			}
			for _, b := range buf {
				if b != buf[0] {
					t.Error("interleaved bytes across conns")
					return
				}
			}
		}()
	}
	wg.Wait()
}
