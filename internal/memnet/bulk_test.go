package memnet

import (
	"crypto/sha256"
	"io"
	"testing"
	"time"
)

// TestSizedRingCap pins NewSized's knob: a sized fabric's rings grow to
// the requested cap, the default fabric keeps the historical 128 KB.
func TestSizedRingCap(t *testing.T) {
	for _, tc := range []struct {
		name string
		nw   *Network
		want int
	}{
		{"default", New(), ringMaxBytes},
		{"sized-1MB", NewSized(1 << 20), 1 << 20},
		{"below-start-clamped", NewSized(1), ringStartBytes},
	} {
		client, server := pair(t, tc.nw)
		// Fill without a reader: writes must accept exactly the ring cap
		// before blocking.
		done := make(chan int, 1)
		go func() {
			client.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
			total := 0
			buf := make([]byte, 8<<10)
			for {
				n, err := client.Write(buf)
				total += n
				if err != nil {
					done <- total
					return
				}
			}
		}()
		got := <-done
		if got != tc.want {
			t.Errorf("%s: buffered %d bytes before blocking, want %d", tc.name, got, tc.want)
		}
		client.Close()
		server.Close()
	}
}

// TestBulkThroughput streams a multi-MB payload through one sized conn
// — the shape of a chunk transfer — and checks integrity end to end.
// The assertion is correctness plus forward progress (a generous wall
// clock bound), not a benchmark number.
func TestBulkThroughput(t *testing.T) {
	const total = 64 << 20
	nw := NewSized(2 << 20)
	client, server := pair(t, nw)
	defer client.Close()
	defer server.Close()

	start := time.Now()
	errc := make(chan error, 1)
	sum := make(chan [32]byte, 1)
	go func() {
		h := sha256.New()
		n, err := io.CopyN(h, server, total)
		if err != nil || n != total {
			errc <- err
			return
		}
		var out [32]byte
		h.Sum(out[:0])
		sum <- out
	}()

	h := sha256.New()
	buf := make([]byte, 256<<10)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	sent := 0
	for sent < total {
		n := len(buf)
		if total-sent < n {
			n = total - sent
		}
		h.Write(buf[:n])
		if _, err := client.Write(buf[:n]); err != nil {
			t.Fatalf("write after %d bytes: %v", sent, err)
		}
		sent += n
	}
	var want [32]byte
	h.Sum(want[:0])

	select {
	case got := <-sum:
		if got != want {
			t.Fatal("bulk stream corrupted in transit")
		}
	case err := <-errc:
		t.Fatalf("reader: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("bulk stream made no progress")
	}
	elapsed := time.Since(start)
	t.Logf("moved %d MB in %v (%.0f MB/s)", total>>20, elapsed,
		float64(total)/(1<<20)/elapsed.Seconds())
}
