// Package memnet is an in-process network fabric: net.Listener and
// net.Conn implementations backed by in-memory ring buffers instead of
// kernel sockets. It exists so one process can run paper-scale live
// clusters — ten thousand livenet nodes and their peer links — without
// hitting file-descriptor limits or paying kernel socket overhead, while
// keeping the exact net interfaces the transport, the read loops, and
// the chaos fault layer are written against.
//
// Design constraints, in order:
//
//   - Zero goroutines and zero file descriptors per connection. A
//     memnet conn is two ring buffers and some channels; a listener is
//     a registry entry plus an accept queue. Ten thousand idle nodes
//     cost ten thousand registry entries, not ten thousand OS objects.
//   - Deadline-capable. livenet sets read deadlines (idle reaping) and
//     write deadlines (batch timeouts) on every stream; net.Pipe's
//     deadline discipline is reproduced here over buffered pipes.
//   - Buffered with backpressure. Unlike net.Pipe, writes complete
//     without a reader in rendezvous — they fill a bounded ring (which
//     grows on demand up to ringMaxBytes) and block only when it is
//     full, mirroring a kernel socket buffer. That is what lets the
//     transport's batch writer coalesce frames exactly as it does over
//     TCP.
//   - Composable with fault injection. Conns are plain net.Conn values,
//     so chaos.Net wraps them unchanged (chaos.Net.SetDial(nw.Dial));
//     seeded replays stay byte-identical off-kernel.
//
// Address model: Listen("host:0") auto-assigns a unique "mem:<n>"
// address; any other address string is taken verbatim. Dial resolves
// addresses against the fabric's registry only — two fabrics are fully
// isolated network universes.
package memnet

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

const (
	// ringStartBytes is a ring's initial capacity; rings grow by
	// doubling as writes demand, so short-lived control streams stay
	// tiny.
	ringStartBytes = 4 << 10
	// ringMaxBytes caps one direction's buffering — the "kernel socket
	// buffer" a writer can fill before blocking. Sized to hold one
	// maximal transport batch (64KB buffered writer flush) plus slack.
	ringMaxBytes = 128 << 10
	// backlog bounds un-accepted connections per listener, after which
	// dials are refused (ECONNREFUSED-like), as with a SYN backlog.
	backlog = 512
)

// Network is one in-process address universe. The zero value is not
// usable; call New.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*listener
	next      int
	ringMax   int // per-direction buffer cap for new conns
}

// New builds an empty fabric with the default per-direction ring cap.
func New() *Network {
	return NewSized(0)
}

// NewSized builds a fabric whose connections buffer up to ringMax bytes
// per direction before writes block (0 → the 128 KB default). Bulk
// chunk streams want megabyte rings so a multi-MB transfer doesn't
// serialize on the "kernel buffer"; control-plane tests keep the small
// default.
func NewSized(ringMax int) *Network {
	if ringMax <= 0 {
		ringMax = ringMaxBytes
	}
	if ringMax < ringStartBytes {
		ringMax = ringStartBytes
	}
	return &Network{listeners: make(map[string]*listener), ringMax: ringMax}
}

// Addr is a memnet endpoint address.
type Addr string

// Network returns "mem".
func (a Addr) Network() string { return "mem" }
func (a Addr) String() string  { return string(a) }

// Listen opens a listener. An address ending in ":0" (any host) gets a
// unique auto-assigned "mem:<n>" address, mirroring the kernel's
// ephemeral-port behavior that livenet's Launch relies on; any other
// address registers verbatim and fails if already bound.
func (nw *Network) Listen(addr string) (net.Listener, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if len(addr) >= 2 && addr[len(addr)-2:] == ":0" {
		nw.next++
		addr = fmt.Sprintf("mem:%d", nw.next)
	} else if _, taken := nw.listeners[addr]; taken {
		return nil, fmt.Errorf("memnet: address %s already bound", addr)
	}
	l := &listener{
		nw:   nw,
		addr: Addr(addr),
		pend: make(chan net.Conn, backlog),
		done: make(chan struct{}),
	}
	nw.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening address. There is no handshake latency:
// the connection exists as soon as it is queued on the listener's
// backlog, exactly like a TCP dial completing against the SYN queue
// before the application calls Accept.
func (nw *Network) Dial(addr string) (net.Conn, error) {
	nw.mu.Lock()
	l := nw.listeners[addr]
	nw.mu.Unlock()
	if l == nil {
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: Addr(addr),
			Err: fmt.Errorf("connection refused")}
	}
	c2s := newRing(nw.ringMax) // client writes, server reads
	s2c := newRing(nw.ringMax) // server writes, client reads
	client := &conn{rd: s2c, wr: c2s, local: "mem:dial", remote: l.addr}
	server := &conn{rd: c2s, wr: s2c, local: l.addr, remote: "mem:dial"}
	select {
	case l.pend <- server:
		return client, nil
	case <-l.done:
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: Addr(addr),
			Err: fmt.Errorf("connection refused")}
	default:
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: Addr(addr),
			Err: fmt.Errorf("connection refused: backlog full")}
	}
}

// listener implements net.Listener over the fabric registry.
type listener struct {
	nw   *Network
	addr Addr
	pend chan net.Conn
	done chan struct{}
	once sync.Once
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.pend:
		return c, nil
	case <-l.done:
		return nil, &net.OpError{Op: "accept", Net: "mem", Addr: l.addr,
			Err: fmt.Errorf("use of closed network connection")}
	}
}

func (l *listener) Close() error {
	l.once.Do(func() {
		l.nw.mu.Lock()
		if l.nw.listeners[string(l.addr)] == l {
			delete(l.nw.listeners, string(l.addr))
		}
		l.nw.mu.Unlock()
		close(l.done)
		// Connections already queued but never accepted are dead: close
		// them so their dialers see EOF/reset instead of hanging.
		for {
			select {
			case c := <-l.pend:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *listener) Addr() net.Addr { return l.addr }

// ring is one direction's byte buffer: a growable circular buffer with
// close flags for each side and broadcast wakeups for blocked readers
// and writers. No goroutines; waiting is done by the calling goroutine
// selecting on a wakeup channel and a deadline.
type ring struct {
	mu   sync.Mutex
	buf  []byte
	r    int  // read offset
	n    int  // bytes buffered
	max  int  // growth cap for this ring
	werr bool // write side closed: readers drain then EOF
	rerr bool // read side closed: writes fail immediately
	// dataWake is non-nil while readers wait for bytes; spaceWake while
	// writers wait for room. Closing the channel is the broadcast.
	dataWake  chan struct{}
	spaceWake chan struct{}
}

func newRing(max int) *ring {
	if max <= 0 {
		max = ringMaxBytes
	}
	start := ringStartBytes
	if start > max {
		start = max
	}
	return &ring{buf: make([]byte, start), max: max}
}

// wakeReaders/wakeWriters broadcast to the corresponding waiters.
// Caller holds mu.
func (rg *ring) wakeReaders() {
	if rg.dataWake != nil {
		close(rg.dataWake)
		rg.dataWake = nil
	}
}

func (rg *ring) wakeWriters() {
	if rg.spaceWake != nil {
		close(rg.spaceWake)
		rg.spaceWake = nil
	}
}

// grow doubles the ring up to its cap, linearizing content.
// Caller holds mu; returns free space after growing.
func (rg *ring) grow() int {
	if len(rg.buf) >= rg.max {
		return len(rg.buf) - rg.n
	}
	size := len(rg.buf) * 2
	if size > rg.max {
		size = rg.max
	}
	nb := make([]byte, size)
	rg.copyOut(nb[:rg.n])
	rg.buf, rg.r = nb, 0
	return len(rg.buf) - rg.n
}

// copyOut copies the first len(p) buffered bytes into p without
// consuming them. Caller holds mu and guarantees len(p) <= rg.n.
func (rg *ring) copyOut(p []byte) {
	first := len(rg.buf) - rg.r
	if first > len(p) {
		first = len(p)
	}
	copy(p[:first], rg.buf[rg.r:rg.r+first])
	copy(p[first:], rg.buf[:len(p)-first])
}

// write appends as much of p as fits, returning bytes consumed and
// whether the read side is gone. Caller holds mu.
func (rg *ring) write(p []byte) int {
	free := len(rg.buf) - rg.n
	if free < len(p) {
		free = rg.grow()
	}
	w := (rg.r + rg.n) % len(rg.buf)
	take := len(p)
	if take > free {
		take = free
	}
	first := len(rg.buf) - w
	if first > take {
		first = take
	}
	copy(rg.buf[w:w+first], p[:first])
	copy(rg.buf[:take-first], p[first:take])
	rg.n += take
	if take > 0 {
		rg.wakeReaders()
	}
	return take
}

// read consumes up to len(p) buffered bytes. Caller holds mu.
func (rg *ring) read(p []byte) int {
	take := rg.n
	if take > len(p) {
		take = len(p)
	}
	if take == 0 {
		return 0
	}
	rg.copyOut(p[:take])
	rg.r = (rg.r + take) % len(rg.buf)
	rg.n -= take
	rg.wakeWriters()
	return take
}

// closeWrite marks the producer gone (readers drain then EOF);
// closeRead marks the consumer gone (writes fail, buffered data is
// dropped). Both wake everyone.
func (rg *ring) closeWrite() {
	rg.mu.Lock()
	rg.werr = true
	rg.wakeReaders()
	rg.wakeWriters()
	rg.mu.Unlock()
}

func (rg *ring) closeRead() {
	rg.mu.Lock()
	rg.rerr = true
	rg.n = 0
	rg.wakeReaders()
	rg.wakeWriters()
	rg.mu.Unlock()
}

// deadline manages one direction's deadline as net.Pipe does: a timer
// that closes a channel when the deadline passes, recreated on reset.
type deadline struct {
	mu     sync.Mutex
	timer  *time.Timer
	cancel chan struct{} // closed when the deadline fires; nil = none set
}

// set arms (or clears, for the zero time) the deadline.
func (d *deadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.timer != nil {
		d.timer.Stop()
		d.timer = nil
	}
	fired := false
	if d.cancel != nil {
		select {
		case <-d.cancel:
			fired = true
		default:
		}
	}
	if t.IsZero() {
		// Cleared. Waiters holding an un-fired channel keep blocking on
		// it (it will never fire now); future waits see no deadline.
		d.cancel = nil
		return
	}
	if d.cancel == nil || fired {
		d.cancel = make(chan struct{})
	}
	dur := time.Until(t)
	if dur <= 0 {
		close(d.cancel)
		return
	}
	cancel := d.cancel
	d.timer = time.AfterFunc(dur, func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		select {
		case <-cancel:
		default:
			close(cancel)
		}
	})
}

// wait returns the channel closed when the deadline fires (nil when no
// deadline is set — a nil channel blocks forever in select, which is
// exactly right).
func (d *deadline) wait() chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cancel
}

// expired reports whether a set deadline has already fired.
func (d *deadline) expired() bool {
	ch := d.wait()
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// conn is one endpoint of a memnet connection.
type conn struct {
	rd, wr        *ring
	local, remote Addr
	rdead, wdead  deadline
	closed        sync.Once
}

func (c *conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		if c.rdead.expired() {
			return 0, timeoutError("read", c.remote)
		}
		rg := c.rd
		rg.mu.Lock()
		if rg.rerr {
			rg.mu.Unlock()
			return 0, &net.OpError{Op: "read", Net: "mem", Addr: c.local,
				Err: fmt.Errorf("use of closed network connection")}
		}
		if n := rg.read(p); n > 0 {
			rg.mu.Unlock()
			return n, nil
		}
		if rg.werr {
			rg.mu.Unlock()
			// The real io.EOF, not a lookalike: bufio.Peek, io.ReadFull,
			// and the transport's legacy-peer classification all match on
			// identity.
			return 0, io.EOF
		}
		if rg.dataWake == nil {
			rg.dataWake = make(chan struct{})
		}
		wake := rg.dataWake
		rg.mu.Unlock()
		select {
		case <-wake:
		case <-c.rdead.wait():
			return 0, timeoutError("read", c.remote)
		}
	}
}

func (c *conn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		if c.wdead.expired() {
			return written, timeoutError("write", c.remote)
		}
		rg := c.wr
		rg.mu.Lock()
		if rg.rerr || rg.werr {
			rg.mu.Unlock()
			return written, &net.OpError{Op: "write", Net: "mem", Addr: c.remote,
				Err: fmt.Errorf("connection reset by peer")}
		}
		if n := rg.write(p[written:]); n > 0 {
			written += n
			rg.mu.Unlock()
			continue
		}
		if rg.spaceWake == nil {
			rg.spaceWake = make(chan struct{})
		}
		wake := rg.spaceWake
		rg.mu.Unlock()
		select {
		case <-wake:
		case <-c.wdead.wait():
			return written, timeoutError("write", c.remote)
		}
	}
	return written, nil
}

// Close tears down both directions: our outstanding writes are
// delivered (the peer drains, then reads EOF), our read side drops
// undelivered bytes and fails the peer's future writes — TCP close
// semantics, minus the RST subtleties.
func (c *conn) Close() error {
	c.closed.Do(func() {
		c.wr.closeWrite()
		c.rd.closeRead()
	})
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) SetDeadline(t time.Time) error {
	c.rdead.set(t)
	c.wdead.set(t)
	return nil
}

func (c *conn) SetReadDeadline(t time.Time) error  { c.rdead.set(t); return nil }
func (c *conn) SetWriteDeadline(t time.Time) error { c.wdead.set(t); return nil }

// timeoutError matches net package behavior: a deadline expiry is a
// net.Error with Timeout() true, which is what the transport's
// negotiate/classify logic keys on.
func timeoutError(op string, addr Addr) error {
	return &net.OpError{Op: op, Net: "mem", Addr: addr, Err: timeoutErr{}}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }
