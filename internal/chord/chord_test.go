package chord

import (
	"math"
	"math/rand"
	"testing"

	"p2pshare/internal/fairness"
	"p2pshare/internal/zipf"
)

func TestNewRejectsBadSizes(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := New(-5); err == nil {
		t.Error("n<0 should fail")
	}
}

func TestOwnerIsSuccessor(t *testing.T) {
	r, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 1000; trial++ {
		key := rand.New(rand.NewSource(int64(trial))).Uint64()
		o := r.Owner(key)
		// Owner's id must be >= key, and the preceding node's id < key
		// (with wraparound at position 0).
		if r.ID(o) < key && o != 0 {
			t.Fatalf("owner id %d < key %d", r.ID(o), key)
		}
		prev := (o - 1 + r.N()) % r.N()
		if o != 0 && r.ID(prev) >= key {
			t.Fatalf("predecessor %d also covers key %d", r.ID(prev), key)
		}
	}
}

func TestLookupFindsOwner(t *testing.T) {
	r, err := New(128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		key := rng.Uint64()
		start := rng.Intn(r.N())
		owner, hops := r.Lookup(key, start)
		if owner != r.Owner(key) {
			t.Fatalf("lookup found %d, owner is %d", owner, r.Owner(key))
		}
		if hops < 0 || hops > r.N() {
			t.Fatalf("hops = %d", hops)
		}
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	r, err := New(1024)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var total int
	const trials = 5000
	for i := 0; i < trials; i++ {
		_, hops := r.Lookup(rng.Uint64(), rng.Intn(r.N()))
		total += hops
	}
	mean := float64(total) / trials
	// Chord's expected path length is ~0.5·log2(N) = 5; allow generous
	// slack but catch linear scans.
	if mean > 2*math.Log2(1024) {
		t.Errorf("mean hops %g too high for N=1024 (log2=10)", mean)
	}
	if mean < 1 {
		t.Errorf("mean hops %g suspiciously low", mean)
	}
}

func TestLookupFromOwnerIsCheap(t *testing.T) {
	r, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	key := DocKey(42)
	owner := r.Owner(key)
	// Starting adjacent to the owner: at most a couple of hops.
	prev := (owner - 1 + r.N()) % r.N()
	_, hops := r.Lookup(key, prev)
	if hops > 1 {
		t.Errorf("lookup from predecessor took %d hops", hops)
	}
}

func TestPlaceDocumentsConservesPopularity(t *testing.T) {
	r, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	pops := zipf.Popularities(5000, 0.8)
	load := r.PlaceDocuments(pops)
	var sum float64
	for _, l := range load {
		sum += l
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("placed popularity sums to %g", sum)
	}
}

func TestHashPlacementIsUnfairUnderSkew(t *testing.T) {
	// The paper's §2 argument: hash uniformity balances document *counts*,
	// not popularity-weighted load. Under Zipf(0.8) popularity the load
	// fairness over nodes must be clearly below MaxFair territory (>0.95).
	r, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	load := r.PlaceDocuments(zipf.Popularities(5000, 0.8))
	if f := fairness.Jain(load); f > 0.9 {
		t.Errorf("hash placement fairness %g unexpectedly high", f)
	}
}

func TestDeterministicKeys(t *testing.T) {
	if NodeKey(5) != NodeKey(5) || DocKey(7) != DocKey(7) {
		t.Error("keys not deterministic")
	}
	if NodeKey(5) == DocKey(5) {
		t.Error("node and doc key spaces should differ")
	}
}
