// Package chord is a minimal Chord distributed hash table (Stoica et al.,
// SIGCOMM 2001), built as the comparison point the paper argues against
// (§2): DHT overlays locate objects in O(log N) hops and balance load only
// through hash uniformity, ignoring document popularity. The experiments
// use this package to show (i) lookup hop counts versus the paper's
// constant-hop routing and (ii) popularity-skewed load under uniform hash
// placement versus MaxFair.
package chord

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a complete, stable Chord ring (no churn — the comparison needs
// steady-state behaviour only).
type Ring struct {
	// ids are the node identifiers, sorted ascending on the ring.
	ids []uint64
	// fingers[i][k] is the index (into ids) of the successor of
	// ids[i] + 2^k.
	fingers [][]int
}

// hashBits is the identifier space width. 64-bit ids keep the arithmetic
// in native integers.
const hashBits = 64

// hash64 maps arbitrary bytes onto the identifier ring.
func hash64(data []byte) uint64 {
	sum := sha1.Sum(data)
	return binary.BigEndian.Uint64(sum[:8])
}

// NodeKey hashes a node's index (stand-in for its IP) onto the ring.
func NodeKey(node int) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(node))
	return hash64(append([]byte("node:"), buf[:]...))
}

// DocKey hashes a document id onto the ring.
func DocKey(doc int) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(doc))
	return hash64(append([]byte("doc:"), buf[:]...))
}

// New builds a ring of n nodes with hashed identifiers and full finger
// tables.
func New(n int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chord: need at least one node, got %d", n)
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = NodeKey(i)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i := 1; i < n; i++ {
		if ids[i] == ids[i-1] {
			return nil, fmt.Errorf("chord: node id collision at %d", i)
		}
	}
	r := &Ring{ids: ids, fingers: make([][]int, n)}
	for i := range ids {
		f := make([]int, hashBits)
		for k := 0; k < hashBits; k++ {
			f[k] = r.successorIndex(ids[i] + (1 << uint(k)))
		}
		r.fingers[i] = f
	}
	return r, nil
}

// N returns the node count.
func (r *Ring) N() int { return len(r.ids) }

// ID returns the ring identifier of ring position i.
func (r *Ring) ID(i int) uint64 { return r.ids[i] }

// successorIndex returns the index of the first node with id >= key
// (wrapping).
func (r *Ring) successorIndex(key uint64) int {
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= key })
	if i == len(r.ids) {
		return 0
	}
	return i
}

// Owner returns the ring position responsible for a key (its successor).
func (r *Ring) Owner(key uint64) int { return r.successorIndex(key) }

// inInterval reports whether x ∈ (a, b] on the ring.
func inInterval(x, a, b uint64) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b
}

// Lookup routes from the node at ring position start to the owner of key
// using finger tables, returning the owner's position and the hop count.
// Hops follow the classic iterative closest-preceding-finger algorithm and
// are O(log N) with high probability.
func (r *Ring) Lookup(key uint64, start int) (owner, hops int) {
	cur := start
	for {
		succ := (cur + 1) % len(r.ids)
		if inInterval(key, r.ids[cur], r.ids[succ]) {
			if succ != cur {
				hops++
			}
			return succ, hops
		}
		next := r.closestPrecedingFinger(cur, key)
		if next == cur {
			// Fingers gave nothing closer; step to the successor.
			next = succ
		}
		cur = next
		hops++
		if hops > len(r.ids) {
			// Defensive: a correct ring never routes longer than N.
			panic("chord: lookup did not converge")
		}
	}
}

// closestPrecedingFinger returns the finger of cur that most closely
// precedes key.
func (r *Ring) closestPrecedingFinger(cur int, key uint64) int {
	for k := hashBits - 1; k >= 0; k-- {
		f := r.fingers[cur][k]
		if f != cur && inInterval(r.ids[f], r.ids[cur], key-1) && r.ids[f] != key {
			return f
		}
	}
	return cur
}

// PlaceDocuments assigns each document (by hashed key) to its owner node
// and returns the per-node stored popularity — the DHT's load distribution
// under uniform hashing, which the experiments compare against MaxFair's.
func (r *Ring) PlaceDocuments(popularities []float64) []float64 {
	load := make([]float64, len(r.ids))
	for d, p := range popularities {
		load[r.Owner(DocKey(d))] += p
	}
	return load
}
