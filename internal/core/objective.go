package core

import (
	"fmt"
	"math"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
)

// Objective selects what the greedy assigner optimizes per step.
//
// A note on the coefficient of variation: the paper chooses Jain's index
// among the fairness metrics surveyed in [24]. Minimizing the CoV is not
// actually an alternative — CoV² = 1/Jain − 1, a strictly decreasing
// function of the index, so both objectives rank every candidate
// identically (TestCoVEquivalentToJain verifies this). The genuinely
// different greedy objective is min-max: minimize the highest normalized
// cluster popularity, the classic makespan view of load balancing.
type Objective int

const (
	// ObjectiveJain maximizes Jain's fairness index (the paper's
	// MaxFair).
	ObjectiveJain Objective = iota
	// ObjectiveMinMax minimizes the maximum normalized cluster
	// popularity.
	ObjectiveMinMax
)

func (o Objective) String() string {
	switch o {
	case ObjectiveJain:
		return "jain"
	case ObjectiveMinMax:
		return "min-max"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// MaxFairWithObjective runs the greedy assignment loop under the chosen
// per-step objective. ObjectiveJain reproduces MaxFair exactly.
func MaxFairWithObjective(inst *model.Instance, obj Objective, opts Options) (*Result, error) {
	if obj == ObjectiveJain {
		return MaxFair(inst, opts)
	}
	if obj != ObjectiveMinMax {
		return nil, fmt.Errorf("core: unknown objective %d", obj)
	}
	st, err := NewState(inst)
	if err != nil {
		return nil, err
	}
	order, err := categoryOrder(st, opts)
	if err != nil {
		return nil, err
	}
	for _, cat := range order {
		// Place on the cluster whose resulting normalized popularity is
		// smallest — equivalently, the cluster where this category's
		// marginal x lands lowest (all other clusters are unaffected).
		best := model.ClusterID(0)
		bestX := math.Inf(1)
		for cl := 0; cl < st.NumClusters(); cl++ {
			x := probeClusterX(st, cat, model.ClusterID(cl))
			if x < bestX {
				best, bestX = model.ClusterID(cl), x
			}
		}
		if err := st.Assign(cat, best); err != nil {
			return nil, err
		}
	}
	return &Result{
		Assignment:             st.Assignment(),
		Fairness:               st.Fairness(),
		NormalizedPopularities: st.NormalizedPopularities(),
		State:                  st,
	}, nil
}

// probeClusterX returns the normalized popularity cluster cl would have
// after receiving the category.
func probeClusterX(st *State, cat catalog.CategoryID, cl model.ClusterID) float64 {
	return normPop(st.clPop[cl]+st.catPop[cat], st.clUnits[cl]+st.catUnits[cat])
}
