package core

import (
	"math"
	"math/rand"
	"testing"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
)

func TestMaxFairAssignsEveryCategoryOnce(t *testing.T) {
	inst := testInstance(t, 20)
	res, err := MaxFair(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != inst.CatCount() {
		t.Fatalf("assignment covers %d of %d categories", len(res.Assignment), inst.CatCount())
	}
	for c, cl := range res.Assignment {
		if cl == model.NoCluster {
			t.Fatalf("category %d unassigned", c)
		}
		if int(cl) < 0 || int(cl) >= inst.NumClusters {
			t.Fatalf("category %d on invalid cluster %d", c, cl)
		}
	}
}

func TestMaxFairAchievesHighFairness(t *testing.T) {
	// Paper §4.4: "for all the tested cases the fairness achieved by
	// MaxFair is greater than 95%."
	inst := testInstance(t, 21)
	res, err := MaxFair(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fairness < 0.95 {
		t.Errorf("MaxFair fairness = %g, paper reports > 0.95", res.Fairness)
	}
}

func TestMaxFairBeatsRandomAssignment(t *testing.T) {
	inst := testInstance(t, 22)
	res, err := MaxFair(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	st, _ := NewState(inst)
	for c := 0; c < st.NumCategories(); c++ {
		st.Assign(catalog.CategoryID(c), model.ClusterID(rng.Intn(inst.NumClusters)))
	}
	if res.Fairness <= st.Fairness() {
		t.Errorf("MaxFair %g should beat random %g", res.Fairness, st.Fairness())
	}
}

func TestMaxFairNaiveMatchesIncremental(t *testing.T) {
	inst := testInstance(t, 23)
	fast, err := MaxFair(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := MaxFair(inst, Options{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.Fairness-slow.Fairness) > 1e-9 {
		t.Fatalf("incremental fairness %g != naive %g", fast.Fairness, slow.Fairness)
	}
	for c := range fast.Assignment {
		if fast.Assignment[c] != slow.Assignment[c] {
			t.Fatalf("category %d: incremental -> %d, naive -> %d", c, fast.Assignment[c], slow.Assignment[c])
		}
	}
}

func TestMaxFairOrders(t *testing.T) {
	inst := testInstance(t, 24)
	rng := rand.New(rand.NewSource(24))
	for _, o := range []Order{OrderPopularityDesc, OrderPopularityAsc, OrderRandom, OrderGiven} {
		res, err := MaxFair(inst, Options{Order: o, Rng: rng})
		if err != nil {
			t.Fatalf("order %v: %v", o, err)
		}
		if res.Fairness <= 0 || res.Fairness > 1 {
			t.Errorf("order %v: fairness %g out of range", o, res.Fairness)
		}
	}
	if _, err := MaxFair(inst, Options{Order: OrderRandom}); err == nil {
		t.Error("OrderRandom without rng should fail")
	}
	if _, err := MaxFair(inst, Options{Order: Order(42)}); err == nil {
		t.Error("unknown order should fail")
	}
}

func TestMaxFairDeterministic(t *testing.T) {
	inst := testInstance(t, 25)
	a, _ := MaxFair(inst, Options{})
	b, _ := MaxFair(inst, Options{})
	for c := range a.Assignment {
		if a.Assignment[c] != b.Assignment[c] {
			t.Fatal("MaxFair is not deterministic")
		}
	}
}

func TestMaxFairReassignImprovesFairness(t *testing.T) {
	inst := testInstance(t, 26)
	// Start from a poor assignment: everything on cluster 0 is extreme;
	// use round-robin by popularity rank which is mediocre.
	st, _ := NewState(inst)
	for c := 0; c < st.NumCategories(); c++ {
		st.Assign(catalog.CategoryID(c), model.ClusterID(c%3)) // only 3 of 12 clusters used
	}
	before := st.Fairness()
	moves, err := MaxFairReassign(st, ReassignOptions{TargetFairness: 0.92, MaxMoves: 200})
	if err != nil {
		t.Fatal(err)
	}
	after := st.Fairness()
	if after < before {
		t.Fatalf("reassign decreased fairness %g -> %g", before, after)
	}
	if after < 0.92 && len(moves) < 200 {
		t.Errorf("stopped below target with budget left: fairness %g after %d moves", after, len(moves))
	}
	// Trajectory is monotonically non-decreasing.
	prev := before
	for i, m := range moves {
		if m.FairnessAfter < prev-1e-12 {
			t.Fatalf("move %d decreased fairness %g -> %g", i, prev, m.FairnessAfter)
		}
		prev = m.FairnessAfter
	}
}

func TestMaxFairReassignRespectsMaxMoves(t *testing.T) {
	inst := testInstance(t, 27)
	st, _ := NewState(inst)
	for c := 0; c < st.NumCategories(); c++ {
		st.Assign(catalog.CategoryID(c), 0)
	}
	moves, err := MaxFairReassign(st, ReassignOptions{TargetFairness: 0.99, MaxMoves: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) > 3 {
		t.Errorf("made %d moves, budget was 3", len(moves))
	}
}

func TestMaxFairReassignNoopWhenAboveTarget(t *testing.T) {
	inst := testInstance(t, 28)
	res, err := MaxFair(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fairness < 0.9 {
		t.Skip("instance unexpectedly hard")
	}
	moves, err := MaxFairReassign(res.State, ReassignOptions{TargetFairness: res.Fairness - 0.01, MaxMoves: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("reassign made %d moves although already above target", len(moves))
	}
}

func TestMaxFairReassignOptionErrors(t *testing.T) {
	inst := testInstance(t, 29)
	st, _ := NewState(inst)
	if _, err := MaxFairReassign(st, ReassignOptions{TargetFairness: 0.9, MaxMoves: 0}); err == nil {
		t.Error("MaxMoves=0 should fail")
	}
	if _, err := MaxFairReassign(st, ReassignOptions{TargetFairness: 0, MaxMoves: 5}); err == nil {
		t.Error("TargetFairness=0 should fail")
	}
	if _, err := MaxFairReassign(st, ReassignOptions{TargetFairness: 1.5, MaxMoves: 5}); err == nil {
		t.Error("TargetFairness>1 should fail")
	}
}

func TestMaxFairReassignMoveRecords(t *testing.T) {
	inst := testInstance(t, 30)
	st, _ := NewState(inst)
	for c := 0; c < st.NumCategories(); c++ {
		st.Assign(catalog.CategoryID(c), model.ClusterID(c%2))
	}
	moves, err := MaxFairReassign(st, ReassignOptions{TargetFairness: 0.95, MaxMoves: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range moves {
		if m.From == m.To {
			t.Errorf("move %d: from == to == %d", i, m.From)
		}
	}
	// Final assignment reflects the last move of each category.
	last := make(map[catalog.CategoryID]model.ClusterID)
	for _, m := range moves {
		last[m.Category] = m.To
	}
	for cat, to := range last {
		if got := st.ClusterOf(cat); got != to {
			t.Errorf("category %d on cluster %d, last move says %d", cat, got, to)
		}
	}
}

func TestExactMaxFairOptimalOnTinyInstance(t *testing.T) {
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 60
	cfg.Catalog.NumCats = 8
	cfg.NumNodes = 20
	cfg.NumClusters = 3
	cfg.Seed = 31
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactMaxFair(inst)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := MaxFair(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Fairness > exact.Fairness+1e-9 {
		t.Fatalf("greedy %g beats exact %g — exact solver is broken", greedy.Fairness, exact.Fairness)
	}
	// Every category assigned in the exact solution too.
	for c, cl := range exact.Assignment {
		if cl == model.NoCluster {
			t.Fatalf("exact left category %d unassigned", c)
		}
	}
}

func TestExactMaxFairRejectsLargeSpace(t *testing.T) {
	inst := testInstance(t, 32) // 60 categories × 12 clusters — way over
	if _, err := ExactMaxFair(inst); err == nil {
		t.Error("exact solver should reject a huge search space")
	}
}

func TestOrderString(t *testing.T) {
	for _, c := range []struct {
		o    Order
		want string
	}{
		{OrderPopularityDesc, "popularity-desc"},
		{OrderPopularityAsc, "popularity-asc"},
		{OrderRandom, "random"},
		{OrderGiven, "given"},
		{Order(9), "Order(9)"},
	} {
		if got := c.o.String(); got != c.want {
			t.Errorf("Order(%d).String() = %q, want %q", c.o, got, c.want)
		}
	}
}

// TestExtremesCacheMatchesScan drives the state through assigns, moves,
// popularity drift, and unassigns, checking after every mutation that the
// cached hottest/coldest clusters agree with a fresh linear scan.
func TestExtremesCacheMatchesScan(t *testing.T) {
	inst := testInstance(t, 44)
	st, err := NewState(inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	scan := func() (hot, cold model.ClusterID) {
		hotX, coldX := st.x(0), st.x(0)
		for c := 1; c < st.NumClusters(); c++ {
			x := st.x(model.ClusterID(c))
			if x > hotX {
				hot, hotX = model.ClusterID(c), x
			}
			if x < coldX {
				cold, coldX = model.ClusterID(c), x
			}
		}
		return hot, cold
	}
	check := func(step string) {
		t.Helper()
		wantHot, wantCold := scan()
		if got := st.MostLoadedCluster(); got != wantHot {
			t.Fatalf("%s: MostLoadedCluster = %d, scan says %d", step, got, wantHot)
		}
		if got := st.ColdestCluster(); got != wantCold {
			t.Fatalf("%s: ColdestCluster = %d, scan says %d", step, got, wantCold)
		}
	}
	for c := 0; c < st.NumCategories(); c++ {
		if err := st.Assign(catalog.CategoryID(c), model.ClusterID(rng.Intn(st.NumClusters()))); err != nil {
			t.Fatal(err)
		}
		check("assign")
	}
	for i := 0; i < 200; i++ {
		cat := catalog.CategoryID(rng.Intn(st.NumCategories()))
		switch rng.Intn(3) {
		case 0:
			if err := st.Move(cat, model.ClusterID(rng.Intn(st.NumClusters()))); err != nil {
				t.Fatal(err)
			}
			check("move")
		case 1:
			if err := st.SetCategoryPopularity(cat, rng.Float64()); err != nil {
				t.Fatal(err)
			}
			check("drift")
		case 2:
			if st.ClusterOf(cat) != model.NoCluster {
				if err := st.Unassign(cat); err != nil {
					t.Fatal(err)
				}
				check("unassign")
				if err := st.Assign(cat, model.ClusterID(rng.Intn(st.NumClusters()))); err != nil {
					t.Fatal(err)
				}
				check("reassign")
			}
		}
	}
}

// BenchmarkMaxFairPaperScale times the full §4.4 pipeline at the paper's
// scale (500 categories × 100 clusters): the greedy assignment, then a
// popularity-drift perturbation followed by MaxFair_Reassign — the two
// hot paths the cached cluster extremes and explicit target lists speed
// up.
func BenchmarkMaxFairPaperScale(b *testing.B) {
	inst, err := model.Generate(model.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("assign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := MaxFair(inst, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reassign-after-drift", func(b *testing.B) {
		res, err := MaxFair(inst, Options{})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st := res.State.Clone()
			// Concentrate popularity on a few categories so the index
			// genuinely degrades and Reassign has work to do.
			for j := 0; j < 50; j++ {
				cat := catalog.CategoryID(rng.Intn(st.NumCategories()))
				if err := st.SetCategoryPopularity(cat, st.CategoryPopularity(cat)*10); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if _, err := MaxFairReassign(st, ReassignOptions{TargetFairness: 0.98, MaxMoves: 200}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
