// Package core implements the paper's primary contribution: the
// inter-cluster load-balancing (ICLB) problem state, the greedy MaxFair
// assignment algorithm (§4.4), the MaxFair_Reassign rebalancing algorithm
// (§6.1.2), and an exact solver for small instances (ICLB is NP-complete,
// §4.2).
//
// # Formulation
//
// Clusters are scored by their normalized popularity
//
//	x_i = p(S_i) / Σ_{k∈N_i} u_k · p(D_i(k)) / p(D(k))
//
// (paper §4.3.3), where p(S_i) is the summed popularity of the categories
// assigned to cluster i and the denominator is the effective compute the
// cluster's nodes dedicate to it. Because p(D(k)) is fixed by node k's
// contributions, every category s carries a precomputable unit mass
//
//	U(s) = Σ_k u_k · p(D_s(k)) / p(D(k))
//
// so that assigning s to cluster c is two additions, and Jain's fairness
// index over the x_i updates in O(1) through fairness.Tracker. This exactly
// recovers the paper's special cases: homogeneous single-category nodes
// give x_i = p(S_i)/|N_i| (§4.2), heterogeneous units give §4.3.1, and
// multi-category contributors give the popularity-proportional split of
// §4.3.2.
package core

import (
	"fmt"
	"math"

	"p2pshare/internal/catalog"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
)

// State tracks a (partial) assignment of categories to clusters along with
// the normalized cluster popularities and their fairness index, supporting
// O(1) candidate probes and assignment updates.
type State struct {
	numClusters int

	// Per category, indexed by catalog.CategoryID.
	catPop   []float64
	catUnits []float64
	assign   []model.ClusterID

	// Per cluster.
	clPop   []float64
	clUnits []float64

	tracker *fairness.Tracker

	// Cached hottest/coldest cluster ids, refreshed in one shared scan
	// and invalidated by any mutation of the cluster totals. The MaxFair
	// rebalancing loop asks for both every iteration; without the cache
	// each query re-scans all clusters.
	extremesOK       bool
	hottest, coldest model.ClusterID
}

// NewState builds the ICLB state for an instance with no categories
// assigned yet.
func NewState(inst *model.Instance) (*State, error) {
	if inst.NumClusters <= 0 {
		return nil, fmt.Errorf("core: instance has %d clusters", inst.NumClusters)
	}
	s := &State{
		numClusters: inst.NumClusters,
		catPop:      make([]float64, len(inst.Catalog.Cats)),
		catUnits:    make([]float64, len(inst.Catalog.Cats)),
		assign:      make([]model.ClusterID, len(inst.Catalog.Cats)),
		clPop:       make([]float64, inst.NumClusters),
		clUnits:     make([]float64, inst.NumClusters),
		tracker:     fairness.NewTracker(inst.NumClusters),
	}
	for i := range s.assign {
		s.assign[i] = model.NoCluster
	}
	for i := range inst.Catalog.Cats {
		s.catPop[i] = inst.Catalog.Cats[i].Popularity
	}
	// U(s) = Σ_k u_k · p(D_s(k)) / p(D(k)): accumulate per contributing
	// node, walking each node's contributions once.
	for k := range inst.Nodes {
		node := &inst.Nodes[k]
		pDk := inst.ContributedPopularity(node.ID)
		if pDk <= 0 {
			continue
		}
		for _, di := range node.Contributed {
			d := &inst.Catalog.Docs[di]
			share := d.PopularityShare()
			for _, cid := range d.Categories {
				s.catUnits[cid] += node.Units * share / pDk
			}
		}
	}
	return s, nil
}

// NewStateFromMeasurements builds an ICLB state directly from measured
// quantities instead of a model instance: per-category popularities (e.g.
// normalized hit counters from the §6.1.2 monitoring phase), per-category
// unit masses, and the current assignment. This is what a cluster leader
// uses during adaptation — it has no global instance, only aggregated
// measurements.
func NewStateFromMeasurements(numClusters int, catPop, catUnits []float64, assign []model.ClusterID) (*State, error) {
	if numClusters <= 0 {
		return nil, fmt.Errorf("core: numClusters must be positive, got %d", numClusters)
	}
	if len(catPop) != len(catUnits) || len(catPop) != len(assign) {
		return nil, fmt.Errorf("core: measurement lengths disagree (%d pop, %d units, %d assign)",
			len(catPop), len(catUnits), len(assign))
	}
	s := &State{
		numClusters: numClusters,
		catPop:      append([]float64(nil), catPop...),
		catUnits:    append([]float64(nil), catUnits...),
		assign:      make([]model.ClusterID, len(assign)),
		clPop:       make([]float64, numClusters),
		clUnits:     make([]float64, numClusters),
		tracker:     fairness.NewTracker(numClusters),
	}
	for i := range s.assign {
		s.assign[i] = model.NoCluster
	}
	for c, cl := range assign {
		if cl == model.NoCluster {
			continue
		}
		if err := s.Assign(catalog.CategoryID(c), cl); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// NumClusters returns the number of clusters in the instance.
func (s *State) NumClusters() int { return s.numClusters }

// NumCategories returns the number of categories in the instance.
func (s *State) NumCategories() int { return len(s.catPop) }

// CategoryPopularity returns p(s) for the category.
func (s *State) CategoryPopularity(c catalog.CategoryID) float64 { return s.catPop[c] }

// CategoryUnits returns the unit mass U(s) for the category.
func (s *State) CategoryUnits(c catalog.CategoryID) float64 { return s.catUnits[c] }

// ClusterOf returns the cluster a category is assigned to, or
// model.NoCluster.
func (s *State) ClusterOf(c catalog.CategoryID) model.ClusterID { return s.assign[c] }

// Assignment returns a copy of the category→cluster assignment.
func (s *State) Assignment() []model.ClusterID {
	return append([]model.ClusterID(nil), s.assign...)
}

// normPop returns the normalized popularity a cluster would have with the
// given totals: pop/units with the 0/0 convention of an empty cluster
// scoring 0.
func normPop(pop, units float64) float64 {
	if units == 0 {
		if pop == 0 {
			return 0
		}
		// Popularity with no compute behind it: infinitely overloaded.
		return math.Inf(1)
	}
	return pop / units
}

// x returns the current normalized popularity of cluster c.
func (s *State) x(c model.ClusterID) float64 {
	return normPop(s.clPop[c], s.clUnits[c])
}

// NormalizedPopularities returns the x_i vector (one entry per cluster).
func (s *State) NormalizedPopularities() []float64 {
	out := make([]float64, s.numClusters)
	for c := range out {
		out[c] = s.x(model.ClusterID(c))
	}
	return out
}

// Fairness returns Jain's index over the current normalized popularities.
func (s *State) Fairness() float64 { return s.tracker.Index() }

// Assign places category cat on cluster cl. It returns an error if the
// category is already assigned or either id is out of range.
func (s *State) Assign(cat catalog.CategoryID, cl model.ClusterID) error {
	if err := s.checkIDs(cat, cl); err != nil {
		return err
	}
	if s.assign[cat] != model.NoCluster {
		return fmt.Errorf("core: category %d already assigned to cluster %d", cat, s.assign[cat])
	}
	old := s.x(cl)
	s.clPop[cl] += s.catPop[cat]
	s.clUnits[cl] += s.catUnits[cat]
	s.assign[cat] = cl
	s.extremesOK = false
	s.tracker.Update(old, s.x(cl))
	return nil
}

// Unassign removes category cat from its cluster.
func (s *State) Unassign(cat catalog.CategoryID) error {
	if int(cat) < 0 || int(cat) >= len(s.assign) {
		return fmt.Errorf("core: unknown category %d", cat)
	}
	cl := s.assign[cat]
	if cl == model.NoCluster {
		return fmt.Errorf("core: category %d is not assigned", cat)
	}
	old := s.x(cl)
	s.clPop[cl] = sub(s.clPop[cl], s.catPop[cat])
	s.clUnits[cl] = sub(s.clUnits[cl], s.catUnits[cat])
	s.assign[cat] = model.NoCluster
	s.extremesOK = false
	s.tracker.Update(old, s.x(cl))
	return nil
}

// Move reassigns category cat to cluster to (a no-op if it is already
// there).
func (s *State) Move(cat catalog.CategoryID, to model.ClusterID) error {
	if err := s.checkIDs(cat, to); err != nil {
		return err
	}
	from := s.assign[cat]
	if from == model.NoCluster {
		return s.Assign(cat, to)
	}
	if from == to {
		return nil
	}
	oldFrom, oldTo := s.x(from), s.x(to)
	s.clPop[from] = sub(s.clPop[from], s.catPop[cat])
	s.clUnits[from] = sub(s.clUnits[from], s.catUnits[cat])
	s.clPop[to] += s.catPop[cat]
	s.clUnits[to] += s.catUnits[cat]
	s.assign[cat] = to
	s.extremesOK = false
	s.tracker.Update(oldFrom, s.x(from))
	s.tracker.Update(oldTo, s.x(to))
	return nil
}

// ProbeAssign returns the fairness index that would result from assigning
// the (unassigned) category to the cluster, without mutating state.
func (s *State) ProbeAssign(cat catalog.CategoryID, cl model.ClusterID) float64 {
	old := s.x(cl)
	new := normPop(s.clPop[cl]+s.catPop[cat], s.clUnits[cl]+s.catUnits[cat])
	return s.tracker.Probe(old, new)
}

// ProbeMove returns the fairness index that would result from moving the
// category from its current cluster to the given one, without mutating
// state. Probing a move to the category's current cluster returns the
// current fairness.
func (s *State) ProbeMove(cat catalog.CategoryID, to model.ClusterID) float64 {
	from := s.assign[cat]
	if from == model.NoCluster {
		return s.ProbeAssign(cat, to)
	}
	if from == to {
		return s.Fairness()
	}
	oldFrom, oldTo := s.x(from), s.x(to)
	newFrom := normPop(sub(s.clPop[from], s.catPop[cat]), sub(s.clUnits[from], s.catUnits[cat]))
	newTo := normPop(s.clPop[to]+s.catPop[cat], s.clUnits[to]+s.catUnits[cat])
	return s.tracker.Probe2(oldFrom, newFrom, oldTo, newTo)
}

// refreshExtremes rescans the clusters once to locate both extremes;
// between mutations the answers are served from the cache.
func (s *State) refreshExtremes() {
	if s.extremesOK {
		return
	}
	s.hottest, s.coldest = 0, 0
	hotX, coldX := s.x(0), s.x(0)
	for c := 1; c < s.numClusters; c++ {
		x := s.x(model.ClusterID(c))
		if x > hotX {
			s.hottest, hotX = model.ClusterID(c), x
		}
		if x < coldX {
			s.coldest, coldX = model.ClusterID(c), x
		}
	}
	s.extremesOK = true
}

// MostLoadedCluster returns the cluster with the highest normalized
// popularity (lowest id on ties).
func (s *State) MostLoadedCluster() model.ClusterID {
	s.refreshExtremes()
	return s.hottest
}

// ColdestCluster returns the cluster with the lowest normalized
// popularity (lowest id on ties).
func (s *State) ColdestCluster() model.ClusterID {
	s.refreshExtremes()
	return s.coldest
}

// CategoriesIn returns the categories currently assigned to cluster cl.
func (s *State) CategoriesIn(cl model.ClusterID) []catalog.CategoryID {
	var out []catalog.CategoryID
	for c, a := range s.assign {
		if a == cl {
			out = append(out, catalog.CategoryID(c))
		}
	}
	return out
}

// SetCategoryPopularity updates p(s) for a category in place (content
// popularity drift, §6.1), keeping cluster totals and fairness consistent.
func (s *State) SetCategoryPopularity(cat catalog.CategoryID, pop float64) error {
	if int(cat) < 0 || int(cat) >= len(s.catPop) {
		return fmt.Errorf("core: unknown category %d", cat)
	}
	if pop < 0 {
		return fmt.Errorf("core: negative popularity %g", pop)
	}
	cl := s.assign[cat]
	if cl == model.NoCluster {
		s.catPop[cat] = pop
		return nil
	}
	old := s.x(cl)
	s.clPop[cl] = sub(s.clPop[cl], s.catPop[cat]-pop)
	s.catPop[cat] = pop
	s.extremesOK = false
	s.tracker.Update(old, s.x(cl))
	return nil
}

// Rebuild reconstructs the state from the instance's current catalog and
// node population while preserving the existing assignment. Use it after
// perturbing the catalog (added documents, shifted popularities) to
// evaluate the old assignment against the new world — the paper's
// robustness experiment (§5) does exactly this.
func (s *State) Rebuild(inst *model.Instance) error {
	fresh, err := NewState(inst)
	if err != nil {
		return err
	}
	for c, cl := range s.assign {
		if c < fresh.NumCategories() && cl != model.NoCluster {
			if err := fresh.Assign(catalog.CategoryID(c), cl); err != nil {
				return err
			}
		}
	}
	*s = *fresh
	return nil
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	c := &State{
		numClusters: s.numClusters,
		catPop:      append([]float64(nil), s.catPop...),
		catUnits:    append([]float64(nil), s.catUnits...),
		assign:      append([]model.ClusterID(nil), s.assign...),
		clPop:       append([]float64(nil), s.clPop...),
		clUnits:     append([]float64(nil), s.clUnits...),
		tracker:     fairness.NewTrackerFrom(s.NormalizedPopularities()),
	}
	return c
}

func (s *State) checkIDs(cat catalog.CategoryID, cl model.ClusterID) error {
	if int(cat) < 0 || int(cat) >= len(s.assign) {
		return fmt.Errorf("core: unknown category %d", cat)
	}
	if int(cl) < 0 || int(cl) >= s.numClusters {
		return fmt.Errorf("core: unknown cluster %d", cl)
	}
	return nil
}

// sub subtracts b from a, squashing floating-point residue so an emptied
// cluster reads exactly zero. Without this, probing a move that empties a
// cluster would divide two subtraction residues and report an arbitrary
// normalized popularity.
func sub(a, b float64) float64 {
	d := a - b
	if math.Abs(d) < 1e-12 {
		return 0
	}
	return d
}
