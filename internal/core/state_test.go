package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2pshare/internal/catalog"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
)

func testInstance(t testing.TB, seed int64) *model.Instance {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 3000
	cfg.Catalog.NumCats = 60
	cfg.NumNodes = 300
	cfg.NumClusters = 12
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// naiveNormPops recomputes normalized cluster popularities from first
// principles (paper §4.3.3 formula with D_i(k) = contributed docs of k in
// cluster i), independent of the incremental engine.
func naiveNormPops(inst *model.Instance, assign []model.ClusterID) []float64 {
	pop := make([]float64, inst.NumClusters)
	units := make([]float64, inst.NumClusters)
	for c := range inst.Catalog.Cats {
		if cl := assign[c]; cl != model.NoCluster {
			pop[cl] += inst.Catalog.Cats[c].Popularity
		}
	}
	for k := range inst.Nodes {
		node := &inst.Nodes[k]
		pDk := inst.ContributedPopularity(node.ID)
		if pDk <= 0 {
			continue
		}
		// p(D_i(k)) per cluster for this node.
		perCluster := make(map[model.ClusterID]float64)
		for _, di := range node.Contributed {
			d := &inst.Catalog.Docs[di]
			share := d.PopularityShare()
			for _, cid := range d.Categories {
				if cl := assign[cid]; cl != model.NoCluster {
					perCluster[cl] += share
				}
			}
		}
		for cl, pDik := range perCluster {
			units[cl] += node.Units * pDik / pDk
		}
	}
	out := make([]float64, inst.NumClusters)
	for c := range out {
		switch {
		case units[c] == 0 && pop[c] == 0:
			out[c] = 0
		case units[c] == 0:
			out[c] = math.Inf(1)
		default:
			out[c] = pop[c] / units[c]
		}
	}
	return out
}

func TestStateMatchesNaiveRecomputation(t *testing.T) {
	inst := testInstance(t, 1)
	st, err := NewState(inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Random assignment, then compare against the from-scratch formula.
	for c := 0; c < st.NumCategories(); c++ {
		if err := st.Assign(catalog.CategoryID(c), model.ClusterID(rng.Intn(inst.NumClusters))); err != nil {
			t.Fatal(err)
		}
	}
	got := st.NormalizedPopularities()
	want := naiveNormPops(inst, st.Assignment())
	for c := range want {
		if math.Abs(got[c]-want[c]) > 1e-9*math.Max(1, math.Abs(want[c])) {
			t.Fatalf("cluster %d: engine x=%g, naive x=%g", c, got[c], want[c])
		}
	}
	if f, fn := st.Fairness(), fairness.Jain(want); math.Abs(f-fn) > 1e-9 {
		t.Fatalf("engine fairness %g != naive %g", f, fn)
	}
}

func TestStateMatchesNaiveAfterMovesProperty(t *testing.T) {
	inst := testInstance(t, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, err := NewState(inst)
		if err != nil {
			return false
		}
		for c := 0; c < st.NumCategories(); c++ {
			if err := st.Assign(catalog.CategoryID(c), model.ClusterID(rng.Intn(inst.NumClusters))); err != nil {
				return false
			}
		}
		// Random walk of moves and unassign/assign pairs.
		for i := 0; i < 40; i++ {
			cat := catalog.CategoryID(rng.Intn(st.NumCategories()))
			switch rng.Intn(3) {
			case 0:
				if err := st.Move(cat, model.ClusterID(rng.Intn(inst.NumClusters))); err != nil {
					return false
				}
			case 1:
				if st.ClusterOf(cat) != model.NoCluster {
					if err := st.Unassign(cat); err != nil {
						return false
					}
				}
			case 2:
				if st.ClusterOf(cat) == model.NoCluster {
					if err := st.Assign(cat, model.ClusterID(rng.Intn(inst.NumClusters))); err != nil {
						return false
					}
				}
			}
		}
		got := st.NormalizedPopularities()
		want := naiveNormPops(inst, st.Assignment())
		for c := range want {
			if math.Abs(got[c]-want[c]) > 1e-9*math.Max(1, math.Abs(want[c])) {
				return false
			}
		}
		return math.Abs(st.Fairness()-fairness.Jain(want)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestProbeAssignMatchesApply(t *testing.T) {
	inst := testInstance(t, 3)
	st, _ := NewState(inst)
	rng := rand.New(rand.NewSource(3))
	for c := 0; c < st.NumCategories(); c++ {
		cl := model.ClusterID(rng.Intn(inst.NumClusters))
		probed := st.ProbeAssign(catalog.CategoryID(c), cl)
		if err := st.Assign(catalog.CategoryID(c), cl); err != nil {
			t.Fatal(err)
		}
		if got := st.Fairness(); math.Abs(probed-got) > 1e-9 {
			t.Fatalf("cat %d: probe %g != applied %g", c, probed, got)
		}
	}
}

func TestProbeMoveMatchesApply(t *testing.T) {
	inst := testInstance(t, 4)
	st, _ := NewState(inst)
	rng := rand.New(rand.NewSource(4))
	for c := 0; c < st.NumCategories(); c++ {
		st.Assign(catalog.CategoryID(c), model.ClusterID(rng.Intn(inst.NumClusters)))
	}
	for i := 0; i < 100; i++ {
		cat := catalog.CategoryID(rng.Intn(st.NumCategories()))
		to := model.ClusterID(rng.Intn(inst.NumClusters))
		probed := st.ProbeMove(cat, to)
		if err := st.Move(cat, to); err != nil {
			t.Fatal(err)
		}
		if got := st.Fairness(); math.Abs(probed-got) > 1e-9 {
			t.Fatalf("move %d: probe %g != applied %g", i, probed, got)
		}
	}
}

func TestProbeMoveSameClusterIsIdentity(t *testing.T) {
	inst := testInstance(t, 5)
	st, _ := NewState(inst)
	st.Assign(0, 3)
	if got, want := st.ProbeMove(0, 3), st.Fairness(); got != want {
		t.Errorf("ProbeMove to same cluster = %g, want current %g", got, want)
	}
}

func TestAssignErrors(t *testing.T) {
	inst := testInstance(t, 6)
	st, _ := NewState(inst)
	if err := st.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Assign(0, 1); err == nil {
		t.Error("double assign should fail")
	}
	if err := st.Assign(catalog.CategoryID(st.NumCategories()), 0); err == nil {
		t.Error("unknown category should fail")
	}
	if err := st.Assign(1, model.ClusterID(inst.NumClusters)); err == nil {
		t.Error("unknown cluster should fail")
	}
	if err := st.Unassign(1); err == nil {
		t.Error("unassign of unassigned should fail")
	}
	if err := st.Unassign(0); err != nil {
		t.Fatal(err)
	}
	if st.ClusterOf(0) != model.NoCluster {
		t.Error("unassign did not clear assignment")
	}
}

func TestUnassignRestoresFairness(t *testing.T) {
	inst := testInstance(t, 7)
	st, _ := NewState(inst)
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < st.NumCategories()/2; c++ {
		st.Assign(catalog.CategoryID(c), model.ClusterID(rng.Intn(inst.NumClusters)))
	}
	before := st.Fairness()
	cat := catalog.CategoryID(st.NumCategories() / 2)
	st.Assign(cat, 0)
	st.Unassign(cat)
	if after := st.Fairness(); math.Abs(before-after) > 1e-9 {
		t.Errorf("assign+unassign changed fairness %g -> %g", before, after)
	}
}

func TestMostLoadedCluster(t *testing.T) {
	inst := testInstance(t, 8)
	st, _ := NewState(inst)
	rng := rand.New(rand.NewSource(8))
	for c := 0; c < st.NumCategories(); c++ {
		st.Assign(catalog.CategoryID(c), model.ClusterID(rng.Intn(inst.NumClusters)))
	}
	hot := st.MostLoadedCluster()
	xs := st.NormalizedPopularities()
	for c, x := range xs {
		if x > xs[hot] {
			t.Fatalf("cluster %d (x=%g) hotter than reported %d (x=%g)", c, x, hot, xs[hot])
		}
	}
}

func TestCategoriesIn(t *testing.T) {
	inst := testInstance(t, 9)
	st, _ := NewState(inst)
	st.Assign(3, 5)
	st.Assign(7, 5)
	st.Assign(1, 2)
	got := st.CategoriesIn(5)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("CategoriesIn(5) = %v, want [3 7]", got)
	}
	if len(st.CategoriesIn(9)) != 0 {
		t.Error("empty cluster should list no categories")
	}
}

func TestSetCategoryPopularity(t *testing.T) {
	inst := testInstance(t, 10)
	st, _ := NewState(inst)
	st.Assign(0, 0)
	st.Assign(1, 1)
	st.SetCategoryPopularity(0, 0.5)
	if got := st.CategoryPopularity(0); got != 0.5 {
		t.Fatalf("CategoryPopularity = %g, want 0.5", got)
	}
	// Engine must stay consistent with naive recomputation through the
	// changed popularity: check cluster x directly.
	xs := st.NormalizedPopularities()
	wantX := 0.5 / st.CategoryUnits(0)
	if math.Abs(xs[0]-wantX) > 1e-9 {
		t.Errorf("x[0] = %g, want %g", xs[0], wantX)
	}
	if err := st.SetCategoryPopularity(0, -1); err == nil {
		t.Error("negative popularity should fail")
	}
	if err := st.SetCategoryPopularity(catalog.CategoryID(st.NumCategories()), 0.1); err == nil {
		t.Error("unknown category should fail")
	}
	// Unassigned categories update silently.
	if err := st.SetCategoryPopularity(5, 0.25); err != nil {
		t.Fatal(err)
	}
	if st.CategoryPopularity(5) != 0.25 {
		t.Error("unassigned category popularity not updated")
	}
}

func TestCloneIndependence(t *testing.T) {
	inst := testInstance(t, 11)
	st, _ := NewState(inst)
	st.Assign(0, 0)
	cl := st.Clone()
	cl.Assign(1, 1)
	if st.ClusterOf(1) != model.NoCluster {
		t.Error("clone mutation leaked into original")
	}
	if math.Abs(st.Fairness()-fairness.Jain(st.NormalizedPopularities())) > 1e-9 {
		t.Error("original fairness inconsistent after clone")
	}
	if math.Abs(cl.Fairness()-fairness.Jain(cl.NormalizedPopularities())) > 1e-9 {
		t.Error("clone fairness inconsistent")
	}
}

func TestRebuildPreservesAssignment(t *testing.T) {
	inst := testInstance(t, 12)
	st, _ := NewState(inst)
	rng := rand.New(rand.NewSource(12))
	for c := 0; c < st.NumCategories(); c++ {
		st.Assign(catalog.CategoryID(c), model.ClusterID(rng.Intn(inst.NumClusters)))
	}
	before := st.Assignment()
	// Perturb the catalog, then rebuild.
	if _, err := inst.Catalog.AddDocuments(100, 0.3, 0.8, rng); err != nil {
		t.Fatal(err)
	}
	for _, d := range inst.Catalog.Docs[len(inst.Catalog.Docs)-100:] {
		if err := inst.AttachDocument(d.ID, model.NodeID(rng.Intn(len(inst.Nodes)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Rebuild(inst); err != nil {
		t.Fatal(err)
	}
	after := st.Assignment()
	for c := range before {
		if before[c] != after[c] {
			t.Fatalf("category %d reassigned by Rebuild: %d -> %d", c, before[c], after[c])
		}
	}
	// Fairness must equal the naive evaluation of the old assignment on
	// the new catalog.
	want := fairness.Jain(naiveNormPops(inst, after))
	if got := st.Fairness(); math.Abs(got-want) > 1e-9 {
		t.Errorf("rebuilt fairness %g != naive %g", got, want)
	}
}
