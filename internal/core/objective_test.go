package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2pshare/internal/catalog"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
)

func TestCoVEquivalentToJain(t *testing.T) {
	// CoV² = 1/Jain − 1 for any non-degenerate allocation, so the two
	// rank all allocations identically and "minimize CoV" is not a
	// distinct objective.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() + 0.001
		}
		j := fairness.Jain(xs)
		cov := fairness.CoV(xs)
		return math.Abs(cov*cov-(1/j-1)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestObjectiveMinMaxAssignsEverything(t *testing.T) {
	inst := testInstance(t, 60)
	res, err := MaxFairWithObjective(inst, ObjectiveMinMax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c, cl := range res.Assignment {
		if int(cl) < 0 || int(cl) >= inst.NumClusters {
			t.Fatalf("category %d on cluster %d", c, cl)
		}
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Errorf("fairness %g out of range", res.Fairness)
	}
}

func TestObjectiveJainDelegates(t *testing.T) {
	inst := testInstance(t, 61)
	a, err := MaxFairWithObjective(inst, ObjectiveJain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaxFair(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fairness != b.Fairness {
		t.Errorf("ObjectiveJain diverged from MaxFair: %g vs %g", a.Fairness, b.Fairness)
	}
}

func TestObjectiveMinMaxLowersPeak(t *testing.T) {
	// Min-max should produce a peak normalized popularity no worse than
	// random placement's.
	inst := testInstance(t, 62)
	res, err := MaxFairWithObjective(inst, ObjectiveMinMax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	peak := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	rng := rand.New(rand.NewSource(62))
	st, _ := NewState(inst)
	for c := 0; c < st.NumCategories(); c++ {
		st.Assign(catalog.CategoryID(c), model.ClusterID(rng.Intn(inst.NumClusters)))
	}
	if peak(res.NormalizedPopularities) > peak(st.NormalizedPopularities()) {
		t.Errorf("min-max peak %g worse than random %g",
			peak(res.NormalizedPopularities), peak(st.NormalizedPopularities()))
	}
}

func TestObjectiveErrorsAndStrings(t *testing.T) {
	inst := testInstance(t, 63)
	if _, err := MaxFairWithObjective(inst, Objective(9), Options{}); err == nil {
		t.Error("unknown objective should fail")
	}
	if ObjectiveJain.String() != "jain" || ObjectiveMinMax.String() != "min-max" {
		t.Error("objective strings wrong")
	}
	if Objective(9).String() != "Objective(9)" {
		t.Error("unknown objective string wrong")
	}
}
