package core

import (
	"fmt"
	"math/rand"
	"sort"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
)

// Order selects the sequence in which MaxFair considers categories.
type Order int

const (
	// OrderPopularityDesc considers the most popular categories first —
	// the default; greedy partitioners place big items first.
	OrderPopularityDesc Order = iota
	// OrderPopularityAsc considers the least popular categories first
	// (ablation).
	OrderPopularityAsc
	// OrderRandom shuffles the categories (ablation; requires Options.Rng).
	OrderRandom
	// OrderGiven uses catalog id order.
	OrderGiven
)

func (o Order) String() string {
	switch o {
	case OrderPopularityDesc:
		return "popularity-desc"
	case OrderPopularityAsc:
		return "popularity-asc"
	case OrderRandom:
		return "random"
	case OrderGiven:
		return "given"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Options configures MaxFair.
type Options struct {
	Order Order
	// Rng is required for OrderRandom and ignored otherwise.
	Rng *rand.Rand
	// Naive forces full O(|C|) fairness recomputation per candidate
	// instead of the O(1) incremental probe, reproducing the paper's
	// stated O(|S|·|C|²) complexity. Results are identical; this exists
	// for the ablation benchmark.
	Naive bool
}

// Result is the outcome of a MaxFair run.
type Result struct {
	// Assignment maps each category to its cluster.
	Assignment []model.ClusterID
	// Fairness is Jain's index over the final normalized cluster
	// popularities.
	Fairness float64
	// NormalizedPopularities is the final x_i vector.
	NormalizedPopularities []float64
	// State is the live state, usable for subsequent rebalancing.
	State *State
}

// MaxFair runs the paper's greedy inter-cluster load-balancing algorithm
// (§4.4): categories are considered in turn and each is assigned to the
// cluster that yields the maximum fairness index over the normalized
// cluster popularities.
func MaxFair(inst *model.Instance, opts Options) (*Result, error) {
	st, err := NewState(inst)
	if err != nil {
		return nil, err
	}
	order, err := categoryOrder(st, opts)
	if err != nil {
		return nil, err
	}
	for _, cat := range order {
		best := model.ClusterID(0)
		bestF := -1.0
		for cl := 0; cl < st.NumClusters(); cl++ {
			var f float64
			if opts.Naive {
				f = naiveProbeAssign(st, cat, model.ClusterID(cl))
			} else {
				f = st.ProbeAssign(cat, model.ClusterID(cl))
			}
			if f > bestF {
				best, bestF = model.ClusterID(cl), f
			}
		}
		if err := st.Assign(cat, best); err != nil {
			return nil, err
		}
	}
	return &Result{
		Assignment:             st.Assignment(),
		Fairness:               st.Fairness(),
		NormalizedPopularities: st.NormalizedPopularities(),
		State:                  st,
	}, nil
}

// naiveProbeAssign recomputes the full fairness index for a candidate
// assignment by temporarily applying it — the paper's O(|C|)-per-candidate
// evaluation, kept for the ablation benchmark.
func naiveProbeAssign(st *State, cat catalog.CategoryID, cl model.ClusterID) float64 {
	if err := st.Assign(cat, cl); err != nil {
		return -1
	}
	xs := st.NormalizedPopularities()
	var sum, sum2 float64
	for _, x := range xs {
		sum += x
		sum2 += x * x
	}
	_ = st.Unassign(cat)
	if sum2 == 0 {
		return 1
	}
	f := sum * sum / (float64(len(xs)) * sum2)
	if f > 1 {
		f = 1
	}
	return f
}

func categoryOrder(st *State, opts Options) ([]catalog.CategoryID, error) {
	n := st.NumCategories()
	order := make([]catalog.CategoryID, n)
	for i := range order {
		order[i] = catalog.CategoryID(i)
	}
	switch opts.Order {
	case OrderPopularityDesc:
		sort.SliceStable(order, func(i, j int) bool {
			return st.CategoryPopularity(order[i]) > st.CategoryPopularity(order[j])
		})
	case OrderPopularityAsc:
		sort.SliceStable(order, func(i, j int) bool {
			return st.CategoryPopularity(order[i]) < st.CategoryPopularity(order[j])
		})
	case OrderRandom:
		if opts.Rng == nil {
			return nil, fmt.Errorf("core: OrderRandom requires Options.Rng")
		}
		opts.Rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	case OrderGiven:
		// Catalog id order as built.
	default:
		return nil, fmt.Errorf("core: unknown order %d", opts.Order)
	}
	return order, nil
}

// Move records one MaxFair_Reassign step.
type Move struct {
	Category catalog.CategoryID
	From, To model.ClusterID
	// FairnessAfter is the fairness index after applying this move.
	FairnessAfter float64
}

// ReassignOptions configures MaxFairReassign.
type ReassignOptions struct {
	// TargetFairness stops rebalancing once the index reaches this value
	// (the paper's upper threshold, e.g. 0.92).
	TargetFairness float64
	// MaxMoves caps the number of category reassignments (the paper's
	// max_moves).
	MaxMoves int
}

// MaxFairReassign runs the paper's rebalancing algorithm (§6.1.2): while
// fairness is below the target and the move budget remains, take the
// cluster with the highest normalized popularity, dummy-test reassigning
// each of its categories to every other cluster, and apply the single best
// improving move. It mutates st and returns the applied moves in order.
//
// One extension beyond the paper's pseudocode: when no move out of the
// hottest cluster improves fairness (which happens when the imbalance is
// driven by an underloaded cluster rather than an overloaded one), the
// algorithm also tries moving the best category from any cluster into the
// coldest cluster before giving up. Either way every applied move strictly
// improves fairness, so the trajectory is monotone and the loop terminates.
func MaxFairReassign(st *State, opts ReassignOptions) ([]Move, error) {
	if opts.MaxMoves <= 0 {
		return nil, fmt.Errorf("core: MaxMoves must be positive, got %d", opts.MaxMoves)
	}
	if opts.TargetFairness <= 0 || opts.TargetFairness > 1 {
		return nil, fmt.Errorf("core: TargetFairness %g out of (0,1]", opts.TargetFairness)
	}
	allClusters := make([]model.ClusterID, st.NumClusters())
	for c := range allClusters {
		allClusters[c] = model.ClusterID(c)
	}
	var moves []Move
	for len(moves) < opts.MaxMoves && st.Fairness() < opts.TargetFairness {
		// One cached scan serves both extremes per iteration.
		hot := st.MostLoadedCluster()
		best, found := bestMoveFrom(st, st.CategoriesIn(hot), allClusters)
		if !found {
			// Fallback: feed the coldest cluster from anywhere — a single
			// explicit target, so the probe loop is O(categories) instead
			// of O(categories × clusters).
			cold := st.ColdestCluster()
			all := make([]catalog.CategoryID, 0, st.NumCategories())
			for c := 0; c < st.NumCategories(); c++ {
				cat := catalog.CategoryID(c)
				if cl := st.ClusterOf(cat); cl != model.NoCluster && cl != cold {
					all = append(all, cat)
				}
			}
			best, found = bestMoveFrom(st, all, []model.ClusterID{cold})
		}
		if !found {
			break // no improving move exists
		}
		from := st.ClusterOf(best.Category)
		if err := st.Move(best.Category, best.To); err != nil {
			return moves, err
		}
		moves = append(moves, Move{
			Category:      best.Category,
			From:          from,
			To:            best.To,
			FairnessAfter: st.Fairness(),
		})
	}
	return moves, nil
}

// candidateMove is an internal best-move record.
type candidateMove struct {
	Category catalog.CategoryID
	To       model.ClusterID
}

// bestMoveFrom probes moving each of cats to every target cluster and
// returns the strictly-improving move with the highest resulting fairness.
// Targets must be in ascending cluster order to keep tie-breaking (first
// probe wins on equal fairness) deterministic.
func bestMoveFrom(st *State, cats []catalog.CategoryID, targets []model.ClusterID) (candidateMove, bool) {
	var (
		best  candidateMove
		bestF = st.Fairness()
		found bool
	)
	for _, cat := range cats {
		from := st.ClusterOf(cat)
		for _, to := range targets {
			if to == from {
				continue
			}
			if f := st.ProbeMove(cat, to); f > bestF {
				best, bestF, found = candidateMove{cat, to}, f, true
			}
		}
	}
	return best, found
}
