package core

import (
	"fmt"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
)

// ExactLimit bounds the search space ExactMaxFair will accept
// (|C|^|S| assignments). ICLB is NP-complete (paper §4.2, by reduction
// from BALANCED PARTITION), so the exact solver exists only to measure
// MaxFair's optimality gap on tiny instances.
const ExactLimit = 5_000_000

// ExactMaxFair exhaustively searches every category→cluster assignment and
// returns the one maximizing the fairness index. It returns an error when
// the search space exceeds ExactLimit.
func ExactMaxFair(inst *model.Instance) (*Result, error) {
	st, err := NewState(inst)
	if err != nil {
		return nil, err
	}
	nCats, nCls := st.NumCategories(), st.NumClusters()
	space := 1.0
	for i := 0; i < nCats; i++ {
		space *= float64(nCls)
		if space > ExactLimit {
			return nil, fmt.Errorf("core: exact search space %d^%d exceeds limit %d", nCls, nCats, ExactLimit)
		}
	}

	var (
		bestF      = -1.0
		bestAssign []model.ClusterID
	)
	var rec func(cat int)
	rec = func(cat int) {
		if cat == nCats {
			if f := st.Fairness(); f > bestF {
				bestF = f
				bestAssign = st.Assignment()
			}
			return
		}
		// Symmetry breaking: the first category can go to cluster 0
		// without loss of generality only when clusters are
		// interchangeable; they are (all start empty), so restrict the
		// first category to cluster 0.
		limit := nCls
		if cat == 0 {
			limit = 1
		}
		for cl := 0; cl < limit; cl++ {
			if err := st.Assign(catalog.CategoryID(cat), model.ClusterID(cl)); err != nil {
				panic(err) // unreachable: ids are in range and unassigned
			}
			rec(cat + 1)
			if err := st.Unassign(catalog.CategoryID(cat)); err != nil {
				panic(err)
			}
		}
	}
	rec(0)

	final, err := NewState(inst)
	if err != nil {
		return nil, err
	}
	for c, cl := range bestAssign {
		if cl == model.NoCluster {
			continue
		}
		if err := final.Assign(catalog.CategoryID(c), cl); err != nil {
			return nil, err
		}
	}
	return &Result{
		Assignment:             final.Assignment(),
		Fairness:               final.Fairness(),
		NormalizedPopularities: final.NormalizedPopularities(),
		State:                  final,
	}, nil
}
