package harness

import (
	"sync"
	"testing"
	"time"
)

// TestBarrierReleasesTogether: n ENTERs plus one AWAIT(n) all unblock,
// and none unblocks before the count is reached.
func TestBarrierReleasesTogether(t *testing.T) {
	s, err := NewSyncServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 5
	var wg sync.WaitGroup
	released := make(chan int, n)
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := SyncEnter(s.Addr(), "act1", 5*time.Second); err != nil {
				t.Error(err)
			}
			released <- i
		}(i)
	}
	// With only n-1 entrants, the AWAIT must still be blocked.
	time.Sleep(100 * time.Millisecond)
	select {
	case i := <-released:
		t.Fatalf("entrant %d released before the barrier count was met", i)
	default:
	}

	awaitDone := make(chan error, 1)
	go func() { awaitDone <- SyncAwait(s.Addr(), "act1", n, 5*time.Second) }()
	if err := SyncEnter(s.Addr(), "act1", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := <-awaitDone; err != nil {
		t.Fatal(err)
	}
}

// TestBarrierLateEnter: a released barrier answers late entrants
// immediately (the restarted-node case).
func TestBarrierLateEnter(t *testing.T) {
	s, err := NewSyncServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	done := make(chan error, 1)
	go func() { done <- SyncAwait(s.Addr(), "warmup", 1, 5*time.Second) }()
	if err := SyncEnter(s.Addr(), "warmup", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Barrier already fired; a latecomer must not block.
	start := time.Now()
	if err := SyncEnter(s.Addr(), "warmup", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("late enter took %v, want immediate", d)
	}
}

// TestBarrierIndependence: barriers are independent by name.
func TestBarrierIndependence(t *testing.T) {
	s, err := NewSyncServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	aDone := make(chan error, 1)
	go func() { aDone <- SyncAwait(s.Addr(), "a", 1, 5*time.Second) }()
	// Entering b must not release a.
	bDone := make(chan error, 1)
	go func() { bDone <- SyncEnter(s.Addr(), "b", 5*time.Second) }()
	time.Sleep(100 * time.Millisecond)
	select {
	case <-aDone:
		t.Fatal("barrier a released by an enter on b")
	case <-bDone:
		t.Fatal("barrier b released with no await")
	default:
	}
	if err := SyncEnter(s.Addr(), "a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-aDone; err != nil {
		t.Fatal(err)
	}
	go SyncAwait(s.Addr(), "b", 1, 5*time.Second)
	if err := <-bDone; err != nil {
		t.Fatal(err)
	}
}
