package harness

import (
	"os/exec"
	"testing"
	"time"
)

// TestTinyPlanEndToEnd drives a miniature plan through the real
// machinery: builds the p2pnode binary, launches real processes, clears
// the warm-up barrier, runs a steady act and a kill/restart act, and
// checks the Result carries the promised data points. Small on purpose
// (5 processes, tens of queries) so tier-1 `go test ./...` stays quick;
// -short skips it, as does a missing `go` on PATH.
func TestTinyPlanEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	p := Plan{
		Name: "tiny", Overview: "e2e test plan",
		Optimized: []Objective{
			{Metric: "error_rate", Goal: "min", RelTol: 1, AbsTol: 0.2},
			{Metric: "p95_ms", Goal: "min"},
		},
		Nodes: 5, Clusters: 2, Docs: 160, Cats: 6, Seed: 33,
		Shards: 2, CacheMB: 4, Warmup: 5,
		Acts: []Act{
			{Name: "steady", QueriesPerNode: 12, Concurrency: 3, M: 2,
				HotCategory: -1, TimeoutMS: 5000},
			{Name: "churn", QueriesPerNode: 10, Concurrency: 3, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
				KillNodes: []int{4}},
		},
	}
	res, err := Run(p, RunConfig{Out: testLogWriter{t}, ActTimeout: 90 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	if got := res.Totals["nodes_launched"]; got != 5 {
		t.Errorf("nodes_launched = %v, want 5", got)
	}
	wantQ := float64(5*12 + 4*10) // act 2 runs on 4 survivors
	if res.Totals["queries"] != wantQ {
		t.Errorf("queries = %v, want %v (count-based acts must be exact)", res.Totals["queries"], wantQ)
	}
	if res.Totals["ok"] == 0 {
		t.Error("no query succeeded across the whole run")
	}
	if res.Totals["error_rate"] > 0.5 {
		t.Errorf("error_rate = %v — loopback fleet should mostly succeed", res.Totals["error_rate"])
	}
	for _, k := range []string{"p50_ms", "p95_ms", "p99_ms", "fairness_jain_served",
		"wire_bytes_in", "wire_bytes_out", "wire_bytes_per_query"} {
		if v, ok := res.Totals[k]; !ok || v <= 0 {
			t.Errorf("totals[%q] = %v, want > 0", k, v)
		}
	}
	if f := res.Totals["fairness_jain_served"]; f > 1.0001 {
		t.Errorf("Jain fairness %v > 1", f)
	}
	if len(res.Acts) != 2 {
		t.Fatalf("acts = %d, want 2", len(res.Acts))
	}
	if res.Acts[0].Metrics["queries"] != 60 || res.Acts[1].Metrics["queries"] != 40 {
		t.Errorf("per-act query counts: %v / %v, want 60 / 40",
			res.Acts[0].Metrics["queries"], res.Acts[1].Metrics["queries"])
	}
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
