// The built-in plan registry: every scenario the perf trajectory
// tracks, each declaring up front what it measures and which data
// points gate against the committed baseline. Tolerances are sized for
// shared CI runners — latency gates are loose (machine noise), count
// and rate gates tight (they are scheduling-independent by the
// count-based act design).
package harness

import (
	"fmt"
	"sort"

	"p2pshare/internal/chaos/soak"
)

// smokeObjectives gate the per-PR smoke run.
func smokeObjectives() []Objective {
	return []Objective{
		{Metric: "error_rate", Goal: "min", RelTol: 1.0, AbsTol: 0.05},
		{Metric: "p95_ms", Goal: "min", RelTol: 2.0, AbsTol: 100},
		{Metric: "p99_ms", Goal: "min", RelTol: 3.0, AbsTol: 250},
		{Metric: "fairness_jain_served", Goal: "max", RelTol: 0.25},
		{Metric: "wire_bytes_per_query", Goal: "min", RelTol: 1.5, AbsTol: 50_000},
		{Metric: "adapt_convergence_s", Goal: "min", RelTol: 2.0, AbsTol: 15},
		// Tracked but not gated: too machine-dependent to block a PR.
		{Metric: "qps", Goal: "max"},
		{Metric: "p50_ms", Goal: "min"},
		{Metric: "cache_hit_rate", Goal: "max"},
	}
}

// Smoke is the per-PR plan: small enough for CI, big enough to exercise
// every layer — 20+ real processes, warm-up, a steady act, and a skewed
// act paced across adaptation epochs so convergence is a data point.
func Smoke() Plan {
	return Plan{
		Name: "smoke",
		Overview: "Per-PR canary: 22 processes, steady load then Zipf skew " +
			"with adaptation on; optimizes tail latency, fairness, wire cost, " +
			"and adaptation convergence.",
		Optimized: smokeObjectives(),
		Nodes:     22, Clusters: 4, Docs: 600, Cats: 12, Seed: 7,
		Shards: 2, CacheMB: 8,
		AdaptEveryMS: 1000, FairnessThreshold: 0.83,
		ConvergeTarget: 830,
		Warmup:         20,
		Acts: []Act{
			{
				Name: "steady", QueriesPerNode: 50, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
			},
			{
				Name: "skew", QueriesPerNode: 60, Concurrency: 4, M: 2,
				ZipfS: 1.1, HotCategory: 2, HotFraction: 0.5,
				IntervalMS: 20, TimeoutMS: 5000, TrackConvergence: true,
			},
		},
	}
}

// Zipf sweeps the demand-skew knob: the same deployment under
// near-uniform, classic, and extreme Zipf exponents. The trajectory of
// interest is how tail latency and fairness hold as load concentrates.
func Zipf() Plan {
	p := Plan{
		Name: "zipf",
		Overview: "Demand-skew sweep: s=0.4 → 1.0 → 1.4 over one deployment; " +
			"tracks tail latency and serving fairness as load concentrates.",
		Optimized: []Objective{
			{Metric: "error_rate", Goal: "min", RelTol: 1.0, AbsTol: 0.05},
			{Metric: "p95_ms", Goal: "min", RelTol: 2.0, AbsTol: 100},
			{Metric: "fairness_jain_served", Goal: "max", RelTol: 0.25},
			{Metric: "qps", Goal: "max"},
		},
		Nodes: 24, Clusters: 4, Docs: 800, Cats: 16, Seed: 11,
		Shards: 2, CacheMB: 16,
		AdaptEveryMS: 1000, FairnessThreshold: 0.83,
		Warmup: 20,
	}
	for _, s := range []float64{0.4, 1.0, 1.4} {
		p.Acts = append(p.Acts, Act{
			Name: fmt.Sprintf("zipf-%.1f", s), QueriesPerNode: 60,
			Concurrency: 4, M: 2, ZipfS: s, HotCategory: -1, TimeoutMS: 5000,
		})
	}
	return p
}

// FlashCrowd is the §5 stress: steady state, then a crowd chasing one
// category, with convergence tracked while the adaptation layer chases
// the moved demand.
func FlashCrowd() Plan {
	return Plan{
		Name: "flashcrowd",
		Overview: "Flash crowd: steady load, then 70% of demand slams one " +
			"category; tracks how fast adaptation restores fairness.",
		Optimized: []Objective{
			{Metric: "error_rate", Goal: "min", RelTol: 1.0, AbsTol: 0.05},
			{Metric: "p95_ms", Goal: "min", RelTol: 2.0, AbsTol: 100},
			{Metric: "adapt_convergence_s", Goal: "min", RelTol: 2.0, AbsTol: 15},
			{Metric: "fairness_jain_served", Goal: "max", RelTol: 0.25},
		},
		Nodes: 24, Clusters: 4, Docs: 800, Cats: 16, Seed: 13,
		Shards: 2, CacheMB: 16,
		AdaptEveryMS: 1000, FairnessThreshold: 0.83, ConvergeTarget: 830,
		Warmup: 20,
		Acts: []Act{
			{
				Name: "steady", QueriesPerNode: 50, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
			},
			{
				Name: "crowd", QueriesPerNode: 80, Concurrency: 4, M: 2,
				HotCategory: 3, HotFraction: 0.7, IntervalMS: 20,
				TimeoutMS: 5000, TrackConvergence: true,
			},
		},
	}
}

// Churn kills a quarter of the fleet mid-run, then brings it back: the
// data points are service quality through the failures and after the
// rejoin.
func Churn() Plan {
	return Plan{
		Name: "churn",
		Overview: "Churn: steady load, then 6 of 24 nodes hard-killed under " +
			"load, then restarted; tracks error rate and tail latency through " +
			"failure and recovery.",
		Optimized: []Objective{
			{Metric: "error_rate", Goal: "min", RelTol: 1.0, AbsTol: 0.10},
			{Metric: "p95_ms", Goal: "min", RelTol: 2.0, AbsTol: 200},
			{Metric: "fairness_jain_served", Goal: "max", RelTol: 0.3},
		},
		Nodes: 24, Clusters: 4, Docs: 800, Cats: 16, Seed: 17,
		Shards: 2, CacheMB: 16,
		Warmup: 20,
		Acts: []Act{
			{
				Name: "steady", QueriesPerNode: 40, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
			},
			{
				Name: "failures", QueriesPerNode: 50, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
				KillNodes: []int{19, 20, 21, 22, 23, 18},
			},
			{
				Name: "recovery", QueriesPerNode: 40, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
				RestartNodes: []int{18, 19, 20, 21, 22, 23},
			},
		},
	}
}

// Lossy runs the steady workload over a degraded network (drop +
// corruption + jitter everywhere) — the wire protocol's resilience as a
// tracked data point instead of a pass/fail test.
func Lossy() Plan {
	return Plan{
		Name: "lossy",
		Overview: "Degraded network: 3% drop, 0.5% corruption, 5±10ms jitter " +
			"on every link during the second act; tracks how much service " +
			"quality survives.",
		Optimized: []Objective{
			{Metric: "error_rate", Goal: "min", RelTol: 1.0, AbsTol: 0.10},
			{Metric: "p95_ms", Goal: "min", RelTol: 2.0, AbsTol: 300},
		},
		Nodes: 20, Clusters: 4, Docs: 600, Cats: 12, Seed: 19,
		Shards: 2, CacheMB: 8,
		Warmup: 20,
		Acts: []Act{
			{
				Name: "clean", QueriesPerNode: 40, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
			},
			{
				Name: "lossy", QueriesPerNode: 50, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 8000,
				Chaos: &ActChaos{Drop: 0.03, Corrupt: 0.005, DelayMS: 5, JitterMS: 10},
			},
		},
	}
}

// Bulkmix is the content-plane stress: whole-document fetches under
// Zipf skew running alongside the query workload. The data points of
// interest are fetch completion (manifest-verified) and whether query
// tail latency survives megabytes of bulk frames on the same links —
// the priority-lane separation in the batch writer is what's on trial.
func Bulkmix() Plan {
	return Plan{
		Name: "bulkmix",
		Overview: "Content data plane under load: 20 processes, a query-only " +
			"baseline act, then Zipf-skewed whole-document fetches concurrent " +
			"with queries; tracks fetch tail latency, fetch failure rate, and " +
			"query p95 under bulk traffic.",
		Optimized: []Objective{
			{Metric: "error_rate", Goal: "min", RelTol: 1.0, AbsTol: 0.05},
			{Metric: "fetch_fail_rate", Goal: "min", RelTol: 1.0, AbsTol: 0.05},
			{Metric: "fetch_p95_ms", Goal: "min", RelTol: 2.0, AbsTol: 2000},
			{Metric: "bulk_query_p95_ms", Goal: "min", RelTol: 2.0, AbsTol: 250},
			// Tracked but not gated: throughput is machine-dependent.
			{Metric: "fetch_p50_ms", Goal: "min"},
			{Metric: "fetch_bytes", Goal: "max"},
			{Metric: "chunk_hash_fail", Goal: "min"},
		},
		Nodes: 20, Clusters: 4, Docs: 400, Cats: 12, Seed: 23,
		Shards: 2, CacheMB: 8,
		Content: true, DocBytes: 128 << 10,
		Warmup: 20,
		Acts: []Act{
			{
				Name: "baseline", QueriesPerNode: 50, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
			},
			{
				Name: "bulk", QueriesPerNode: 50, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
				FetchesPerNode: 6, FetchConcurrency: 2, FetchZipfS: 1.2,
				FetchTimeoutMS: 30000,
			},
		},
	}
}

// Flashbulk is the content-plane flash crowd: a steady fetch mix, then
// nearly every fetch in the fleet slams ONE document (a ~100x jump in
// that document's demand). With demand-driven replication on, repeat
// requesters cache the document and overloaded holders push it at
// under-loaded members, so the spike's tail latency must stay within a
// small factor of steady state and the origin holder's share of served
// bytes must flatten instead of absorbing the whole crowd.
func Flashbulk() Plan {
	return Plan{
		Name: "flashbulk",
		Overview: "Single-document flash crowd on the content plane: steady " +
			"Zipf fetches, then 95% of all fetches hit one document; " +
			"demand-driven replica caching and holder push-replication are " +
			"what keep the spike's fetch p99 near steady state and spread " +
			"the served bytes off the origin holders.",
		Optimized: []Objective{
			{Metric: "error_rate", Goal: "min", RelTol: 1.0, AbsTol: 0.05},
			{Metric: "fetch_fail_rate", Goal: "min", RelTol: 1.0, AbsTol: 0.05},
			// The tentpole gates: spike fetch p99 relative to steady state,
			// and how concentrated the spike's bytes were on one origin.
			{Metric: "spike_p99_over_steady", Goal: "min", RelTol: 1.0, AbsTol: 1.0},
			{Metric: "spike_origin_share", Goal: "min", RelTol: 0.5, AbsTol: 0.15},
			{Metric: "fetch_p95_ms", Goal: "min", RelTol: 2.0, AbsTol: 2000},
			// Tracked but not gated: absolute latencies are machine noise;
			// the replication counters prove the machinery engaged.
			{Metric: "spike_fetch_p99_ms", Goal: "min"},
			{Metric: "steady_fetch_p99_ms", Goal: "min"},
			{Metric: "content_cache_installs", Goal: "max"},
			{Metric: "replicate_installs", Goal: "max"},
			{Metric: "chunk_hash_fail", Goal: "min"},
		},
		Nodes: 20, Clusters: 4, Docs: 400, Cats: 12, Seed: 29,
		Shards: 2, CacheMB: 8,
		Content: true, DocBytes: 128 << 10, ContentCacheMB: 16,
		AdaptEveryMS: 500, FairnessThreshold: 0.83,
		Warmup: 20,
		Acts: []Act{
			{
				Name: "steady", QueriesPerNode: 30, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
				FetchesPerNode: 6, FetchConcurrency: 2, FetchZipfS: 1.2,
				FetchTimeoutMS: 30000,
			},
			{
				Name: "spike", QueriesPerNode: 30, Concurrency: 4, M: 2,
				HotCategory: -1, TimeoutMS: 5000,
				FetchesPerNode: 12, FetchConcurrency: 2,
				FetchHotDoc: 333, FetchHotFraction: 0.95,
				FetchTimeoutMS: 30000,
			},
		},
	}
}

// soakPlans bridges every scripted chaos-soak scenario into the plan
// registry, so `p2pbench -plan soak-partition-adapt` runs the same
// invariant-checked scenario the chaos CI job runs, with its report
// folded into the trajectory format.
func soakPlans() []Plan {
	var out []Plan
	for _, sc := range soak.Scenarios() {
		out = append(out, Plan{
			Name:     "soak-" + sc.Name,
			Overview: "Chaos soak bridge: " + sc.Desc,
			Optimized: []Objective{
				{Metric: "violations", Goal: "min", AbsTol: 0.5}, // any violation fails
				{Metric: "probe_ok_rate", Goal: "max", RelTol: 0.5},
				{Metric: "success_rate", Goal: "max"},
			},
			Nodes: 12, Clusters: 3, Docs: 360, Cats: 9, Seed: 21,
			Soak:  sc.Name,
		})
	}
	return out
}

// Plans returns every built-in plan, smoke first.
func Plans() []Plan {
	ps := []Plan{Smoke(), Zipf(), FlashCrowd(), Churn(), Lossy(), Bulkmix(), Flashbulk()}
	ps = append(ps, soakPlans()...)
	return ps
}

// LookupPlan finds a plan by name.
func LookupPlan(name string) (Plan, error) {
	var names []string
	for _, p := range Plans() {
		if p.Name == name {
			return p, nil
		}
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Plan{}, fmt.Errorf("harness: unknown plan %q (have %v)", name, names)
}
