// The local-exec runner: builds the p2pnode binary once per run and
// manages a fleet of real node processes speaking the machine protocol
// (internal/harness/proto) over their stdin/stdout. This is the
// Testground "local:exec" idea scaled down to one machine — real
// processes, real sockets, no shared memory with the system under test.
package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"p2pshare/internal/harness/proto"
)

// ModuleRoot walks up from the working directory to the go.mod, which is
// where `go build ./cmd/p2pnode` must run.
func ModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("harness: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// BuildNodeBinary compiles cmd/p2pnode into dir and returns the binary
// path. One build serves every process of the run.
func BuildNodeBinary(dir string) (string, error) {
	root, err := ModuleRoot()
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "p2pnode")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/p2pnode")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("harness: build p2pnode: %w\n%s", err, out)
	}
	return bin, nil
}

// stderrTail keeps the last chunk of a process's stderr for error
// reports without letting a chatty node grow memory unboundedly.
type stderrTail struct {
	mu  sync.Mutex
	buf []byte
}

const stderrTailMax = 4096

func (t *stderrTail) Write(p []byte) (int, error) {
	t.mu.Lock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > stderrTailMax {
		t.buf = t.buf[len(t.buf)-stderrTailMax:]
	}
	t.mu.Unlock()
	return len(p), nil
}

func (t *stderrTail) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// NodeProc is one running machine-mode p2pnode.
type NodeProc struct {
	ID    int
	Addr  string // bound listen address, learned from the ready line
	Alive bool   // false after Kill until Restart

	cmd    *exec.Cmd
	stdin  io.WriteCloser
	resp   chan proto.Response
	stderr *stderrTail
	args   []string // full argv minus the -listen value, for Restart
}

// Runner owns the fleet for one plan run.
type Runner struct {
	Bin      string
	SyncAddr string
	Procs    []*NodeProc
}

// nodeArgs renders the common shape/config argv for node id.
func nodeArgs(id int, bootstrap string, p Plan, sync string) []string {
	args := []string{
		"-harness",
		"-id", strconv.Itoa(id),
		"-listen", "127.0.0.1:0",
		"-docs", strconv.Itoa(p.Docs),
		"-cats", strconv.Itoa(p.Cats),
		"-nodes", strconv.Itoa(p.Nodes),
		"-clusters", strconv.Itoa(p.Clusters),
		"-seed", strconv.FormatInt(p.Seed, 10),
	}
	if sync != "" {
		args = append(args, "-sync", sync)
	}
	if bootstrap != "" {
		args = append(args, "-bootstrap", bootstrap)
	}
	if p.Content {
		args = append(args, "-content")
		if p.ContentCacheMB > 0 {
			args = append(args, "-content-cachemb", strconv.FormatInt(p.ContentCacheMB, 10))
		}
	}
	if p.DocBytes > 0 {
		args = append(args, "-docbytes", strconv.FormatInt(p.DocBytes, 10))
	}
	if p.Shards > 0 {
		args = append(args, "-shards", strconv.Itoa(p.Shards))
	}
	if p.MaxInFlight > 0 {
		args = append(args, "-maxinflight", strconv.Itoa(p.MaxInFlight))
	}
	if p.CacheMB != 0 {
		mb := p.CacheMB
		if mb < 0 {
			mb = 0 // flag meaning: 0 disables
		}
		args = append(args, "-cachemb", strconv.FormatInt(mb, 10))
	}
	if p.AdaptEveryMS > 0 {
		args = append(args, "-adapt-interval", fmt.Sprintf("%dms", p.AdaptEveryMS))
		if p.FairnessThreshold > 0 {
			args = append(args, "-fairness-threshold", fmt.Sprintf("%g", p.FairnessThreshold))
		}
	}
	return args
}

// Spawn launches one node process and waits for its ready line.
func (r *Runner) Spawn(id int, bootstrap string, p Plan, timeout time.Duration) (*NodeProc, error) {
	np := &NodeProc{ID: id, args: nodeArgs(id, bootstrap, p, r.SyncAddr)}
	if err := np.start(r.Bin, timeout); err != nil {
		return nil, err
	}
	return np, nil
}

func (np *NodeProc) start(bin string, timeout time.Duration) error {
	cmd := exec.Command(bin, np.args...)
	np.stderr = &stderrTail{}
	cmd.Stderr = np.stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("harness: start node %d: %w", np.ID, err)
	}
	np.cmd = cmd
	np.stdin = stdin
	np.resp = make(chan proto.Response, 8)
	go np.readLoop(stdout)

	select {
	case rsp, ok := <-np.resp:
		if !ok || rsp.Op != proto.OpReady || rsp.Ready == nil {
			np.Kill()
			return fmt.Errorf("harness: node %d: no ready line (got %+v)\nstderr: %s", np.ID, rsp, np.stderr)
		}
		np.Addr = rsp.Ready.Addr
		np.Alive = true
		return nil
	case <-time.After(timeout):
		np.Kill()
		return fmt.Errorf("harness: node %d: timeout waiting for ready\nstderr: %s", np.ID, np.stderr)
	}
}

func (np *NodeProc) readLoop(stdout io.Reader) {
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<20), 4<<20)
	for sc.Scan() {
		var rsp proto.Response
		if err := json.Unmarshal(sc.Bytes(), &rsp); err != nil {
			continue // stray non-protocol line; machine mode shouldn't emit any
		}
		np.resp <- rsp
	}
	close(np.resp)
}

// Call sends one command and waits for its response (the protocol is
// FIFO, so the next response answers this command).
func (np *NodeProc) Call(cmd proto.Command, timeout time.Duration) (proto.Response, error) {
	line, err := json.Marshal(cmd)
	if err != nil {
		return proto.Response{}, err
	}
	line = append(line, '\n')
	if _, err := np.stdin.Write(line); err != nil {
		return proto.Response{}, fmt.Errorf("harness: node %d send %s: %w\nstderr: %s", np.ID, cmd.Op, err, np.stderr)
	}
	select {
	case rsp, ok := <-np.resp:
		if !ok {
			return proto.Response{}, fmt.Errorf("harness: node %d exited during %s\nstderr: %s", np.ID, cmd.Op, np.stderr)
		}
		if !rsp.OK {
			return rsp, fmt.Errorf("harness: node %d %s: %s", np.ID, cmd.Op, rsp.Err)
		}
		return rsp, nil
	case <-time.After(timeout):
		return proto.Response{}, fmt.Errorf("harness: node %d: %s timed out after %v", np.ID, cmd.Op, timeout)
	}
}

// Quit asks the node to leave cleanly and waits for the process to exit.
func (np *NodeProc) Quit(timeout time.Duration) error {
	if !np.Alive {
		return nil
	}
	_, err := np.Call(proto.Command{Op: proto.OpQuit}, timeout)
	np.stdin.Close()
	done := make(chan error, 1)
	go func() { done <- np.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(timeout):
		np.cmd.Process.Kill()
		<-done
	}
	np.Alive = false
	return err
}

// Kill hard-kills the process (SIGKILL) — the churn primitive: no
// goodbye, peers must detect the failure.
func (np *NodeProc) Kill() {
	if np.cmd != nil && np.cmd.Process != nil {
		np.cmd.Process.Kill()
		np.cmd.Wait()
	}
	np.Alive = false
}

// Restart relaunches a killed node with its original argv (same id,
// fresh ephemeral port) and waits for its ready line. The bootstrap
// address may have to change if the original bootstrap died; pass the
// address of any live peer.
func (np *NodeProc) Restart(bin, bootstrap string, timeout time.Duration) error {
	if np.Alive {
		return fmt.Errorf("harness: node %d still alive", np.ID)
	}
	if bootstrap != "" {
		args := make([]string, 0, len(np.args)+2)
		skip := false
		for _, a := range np.args {
			if skip {
				skip = false
				continue
			}
			if a == "-bootstrap" {
				skip = true
				continue
			}
			args = append(args, a)
		}
		np.args = append(args, "-bootstrap", bootstrap)
	}
	return np.start(bin, timeout)
}

// KillAll tears the whole fleet down (cleanup path).
func (r *Runner) KillAll() {
	for _, np := range r.Procs {
		np.Kill()
	}
}

// Live returns the currently alive processes.
func (r *Runner) Live() []*NodeProc {
	live := make([]*NodeProc, 0, len(r.Procs))
	for _, np := range r.Procs {
		if np.Alive {
			live = append(live, np)
		}
	}
	return live
}
