// The sync service: a Testground-style barrier coordinator for
// multi-process plans. Node processes ENTER a named barrier and block;
// the orchestrator AWAITs the barrier with a participant count and
// everyone is released together when the count is reached. The protocol
// is one line each way over TCP:
//
//	client:       ENTER <barrier>\n        → blocks → GO <barrier>\n
//	orchestrator: AWAIT <barrier> <n>\n    → blocks → GO <barrier>\n
//
// A barrier, once released, stays open: a late ENTER (a restarted node
// rejoining after churn) gets its GO immediately instead of deadlocking
// a barrier that already fired.
package harness

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncServer coordinates named barriers for one plan run.
type SyncServer struct {
	ln net.Listener
	wg sync.WaitGroup

	mu       sync.Mutex
	barriers map[string]*syncBarrier
	closed   bool
}

type syncBarrier struct {
	entered  int
	want     int // 0 until an AWAIT names the count
	released bool
	waiters  []chan struct{} // ENTERers and AWAITers alike
}

// NewSyncServer starts the barrier service on a loopback port.
func NewSyncServer() (*SyncServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("harness: sync listen: %w", err)
	}
	s := &SyncServer{ln: ln, barriers: make(map[string]*syncBarrier)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr is the service address node processes are pointed at (-sync).
func (s *SyncServer) Addr() string { return s.ln.Addr().String() }

// Close stops the service and releases every waiter with an error.
func (s *SyncServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *SyncServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *SyncServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		fmt.Fprintf(conn, "ERR malformed\n")
		return
	}
	verb, name := fields[0], fields[1]
	var release <-chan struct{}
	switch verb {
	case "ENTER":
		release = s.enter(name)
	case "AWAIT":
		if len(fields) != 3 {
			fmt.Fprintf(conn, "ERR malformed\n")
			return
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 1 {
			fmt.Fprintf(conn, "ERR bad count\n")
			return
		}
		release = s.await(name, n)
	default:
		fmt.Fprintf(conn, "ERR unknown verb %s\n", verb)
		return
	}
	<-release
	fmt.Fprintf(conn, "GO %s\n", name)
}

func (s *SyncServer) barrier(name string) *syncBarrier {
	b, ok := s.barriers[name]
	if !ok {
		b = &syncBarrier{}
		s.barriers[name] = b
	}
	return b
}

// enter registers one arrival; the returned channel closes when the
// barrier releases (immediately, if it already did).
func (s *SyncServer) enter(name string) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.barrier(name)
	ch := make(chan struct{})
	if b.released {
		close(ch)
		return ch
	}
	b.entered++
	b.waiters = append(b.waiters, ch)
	s.maybeRelease(b)
	return ch
}

// await sets the barrier's participant count and waits for it.
func (s *SyncServer) await(name string, n int) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.barrier(name)
	ch := make(chan struct{})
	if b.released {
		close(ch)
		return ch
	}
	b.want = n
	b.waiters = append(b.waiters, ch)
	s.maybeRelease(b)
	return ch
}

// maybeRelease fires the barrier once the awaited count has arrived.
// Caller holds mu.
func (s *SyncServer) maybeRelease(b *syncBarrier) {
	if b.released || b.want == 0 || b.entered < b.want {
		return
	}
	b.released = true
	for _, ch := range b.waiters {
		close(ch)
	}
	b.waiters = nil
}

// SyncEnter joins a barrier from a node process and blocks until it
// releases (or the timeout / a server failure).
func SyncEnter(addr, name string, timeout time.Duration) error {
	return syncCall(addr, fmt.Sprintf("ENTER %s\n", name), name, timeout)
}

// SyncAwait opens a barrier for n participants from the orchestrator
// and blocks until all have entered.
func SyncAwait(addr, name string, n int, timeout time.Duration) error {
	return syncCall(addr, fmt.Sprintf("AWAIT %s %d\n", name, n), name, timeout)
}

func syncCall(addr, req, name string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("harness: sync dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	if _, err := conn.Write([]byte(req)); err != nil {
		return fmt.Errorf("harness: sync send: %w", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("harness: sync barrier %q: %w", name, err)
	}
	if !strings.HasPrefix(line, "GO ") {
		return fmt.Errorf("harness: sync barrier %q: unexpected reply %q", name, strings.TrimSpace(line))
	}
	return nil
}
