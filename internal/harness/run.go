// The orchestrator: runs one Plan end to end against a fleet of real
// p2pnode processes — build, spawn, warm-up barrier, act sequence with
// churn/chaos/convergence tracking, stats scraping, and the BENCH
// artifact. Latency percentiles are computed from the merged raw
// samples of every node (exact cluster-wide quantiles, never averages
// of per-node averages).
package harness

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"p2pshare/internal/chaos/soak"
	"p2pshare/internal/fairness"
	"p2pshare/internal/harness/proto"
	"p2pshare/internal/metrics"
)

// RunConfig tunes one Run invocation (not the plan itself).
type RunConfig struct {
	// Out receives progress lines; nil discards them.
	Out io.Writer
	// Seed overrides the plan's seed when non-zero (replay knob).
	Seed int64
	// SpawnTimeout bounds each process launch (build excluded).
	SpawnTimeout time.Duration
	// ActTimeout bounds each act's wait phase per node.
	ActTimeout time.Duration
	// BinDir, when set, reuses a prebuilt p2pnode binary directory.
	BinDir string
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.SpawnTimeout <= 0 {
		c.SpawnTimeout = 30 * time.Second
	}
	if c.ActTimeout <= 0 {
		c.ActTimeout = 3 * time.Minute
	}
	return c
}

// Run executes one plan and returns its Result. Soak-bridge plans
// (Plan.Soak set) run the scripted chaos scenario in-process; all
// others drive the multi-process orchestration.
func Run(p Plan, cfg RunConfig) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Seed != 0 {
		p.Seed = cfg.Seed
	}
	if p.Soak != "" {
		return runSoakPlan(p, cfg)
	}
	return runProcessPlan(p, cfg)
}

// runSoakPlan bridges a plan to internal/chaos/soak: the scenario's
// invariant checking is the point; the report becomes the Result.
func runSoakPlan(p Plan, cfg RunConfig) (Result, error) {
	sc, err := soak.Lookup(p.Soak)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(cfg.Out, "plan %s: soak scenario %s (seed %d)\n", p.Name, sc.Name, p.Seed)
	rep, err := soak.RunScenario(sc, soak.Config{
		Seed: p.Seed, Nodes: p.Nodes, Clusters: p.Clusters,
		Docs: p.Docs, Cats: p.Cats, Out: cfg.Out,
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Plan: p.Name, Overview: p.Overview, Seed: p.Seed, Nodes: p.Nodes,
		Optimized: p.Optimized,
		Seconds:   rep.Elapsed.Seconds(),
		Totals: map[string]float64{
			"queries":        float64(rep.Queries),
			"ok":             float64(rep.Succeeded),
			"violations":     float64(len(rep.Violations)),
			"probe_ok_rate":  rate(rep.ProbeOK, rep.ProbeTotal),
			"success_rate":   rate(rep.Succeeded, rep.Queries),
			"nodes_launched": float64(p.Nodes),
		},
	}
	if len(rep.Violations) > 0 {
		return res, fmt.Errorf("plan %s: %d invariant violations (seed %d): %v",
			p.Name, len(rep.Violations), rep.Seed, rep.Violations)
	}
	return res, nil
}

func rate(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// scrape pulls a stats snapshot from every live node.
func scrape(live []*NodeProc, timeout time.Duration) (map[int]*proto.StatsReport, error) {
	out := make(map[int]*proto.StatsReport, len(live))
	for _, np := range live {
		rsp, err := np.Call(proto.Command{Op: proto.OpStats}, timeout)
		if err != nil {
			return nil, err
		}
		out[np.ID] = rsp.Stats
	}
	return out, nil
}

// counterDelta sums a counter across nodes in `cur` minus the same sum
// in `prev` (nodes missing from prev — restarts — count from zero).
func counterDelta(prev, cur map[int]*proto.StatsReport, key string) float64 {
	var d int64
	for id, s := range cur {
		d += s.Counters[key]
		if ps, ok := prev[id]; ok {
			d -= ps.Counters[key]
		}
	}
	return float64(d)
}

// maxCounterDelta is the largest single-node delta of a counter — the
// hottest node's share of the fleet-wide movement.
func maxCounterDelta(prev, cur map[int]*proto.StatsReport, key string) float64 {
	var best int64
	for id, s := range cur {
		d := s.Counters[key]
		if ps, ok := prev[id]; ok {
			d -= ps.Counters[key]
		}
		if d > best {
			best = d
		}
	}
	return float64(best)
}

// maxFairness is the fleet's best fairness reading (only the current
// leader of an epoch evaluates; everyone else reports -1).
func maxFairness(stats map[int]*proto.StatsReport) int64 {
	best := int64(-1)
	for _, s := range stats {
		if s.FairnessX1000 > best {
			best = s.FairnessX1000
		}
	}
	return best
}

func runProcessPlan(p Plan, cfg RunConfig) (Result, error) {
	start := time.Now()
	binDir := cfg.BinDir
	if binDir == "" {
		dir, err := os.MkdirTemp("", "harness-*")
		if err != nil {
			return Result{}, err
		}
		defer os.RemoveAll(dir)
		binDir = dir
	}
	fmt.Fprintf(cfg.Out, "plan %s: building p2pnode...\n", p.Name)
	bin, err := BuildNodeBinary(binDir)
	if err != nil {
		return Result{}, err
	}

	sync, err := NewSyncServer()
	if err != nil {
		return Result{}, err
	}
	defer sync.Close()

	r := &Runner{Bin: bin, SyncAddr: sync.Addr()}
	defer r.KillAll()

	// The seed process first (its address bootstraps everyone else),
	// then the rest concurrently.
	fmt.Fprintf(cfg.Out, "plan %s: launching %d node processes...\n", p.Name, p.Nodes)
	seedProc, err := r.Spawn(0, "", p, cfg.SpawnTimeout)
	if err != nil {
		return Result{}, err
	}
	r.Procs = append(r.Procs, seedProc)
	type spawned struct {
		np  *NodeProc
		err error
	}
	ch := make(chan spawned, p.Nodes-1)
	for id := 1; id < p.Nodes; id++ {
		go func(id int) {
			np, err := r.Spawn(id, seedProc.Addr, p, cfg.SpawnTimeout)
			ch <- spawned{np, err}
		}(id)
	}
	for i := 1; i < p.Nodes; i++ {
		s := <-ch
		if s.err != nil {
			for j := 0; i+j < p.Nodes-1; j++ {
				if late := <-ch; late.np != nil {
					late.np.Kill()
				}
			}
			return Result{}, s.err
		}
		r.Procs = append(r.Procs, s.np)
	}
	sort.Slice(r.Procs, func(i, j int) bool { return r.Procs[i].ID < r.Procs[j].ID })

	// Everyone (including the seed) enters the warm-up barrier after
	// announcing; release it only when the full fleet is present.
	if err := SyncAwait(sync.Addr(), "warmup", p.Nodes, cfg.SpawnTimeout); err != nil {
		return Result{}, err
	}
	fmt.Fprintf(cfg.Out, "plan %s: fleet up, warm-up barrier cleared\n", p.Name)

	// Uncounted warm-up load: primes connections, caches, and the
	// adaptation monitors; its data points are discarded.
	warm := p.Warmup
	if warm <= 0 {
		warm = 20
	}
	warmSpec := proto.LoadSpec{
		Queries: warm, Concurrency: 4, M: 2, HotCategory: -1,
		TimeoutMS: 5000, Seed: p.Seed + 1,
	}
	if err := loadAll(r.Live(), warmSpec, p.Seed, cfg.ActTimeout); err != nil {
		return Result{}, fmt.Errorf("warm-up: %w", err)
	}

	prev, err := scrape(r.Live(), 30*time.Second)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Plan: p.Name, Overview: p.Overview, Seed: p.Seed, Nodes: p.Nodes,
		Optimized: p.Optimized,
		Totals:    map[string]float64{"nodes_launched": float64(p.Nodes)},
	}
	allLat := &metrics.SyncHistogram{}
	allFetchLat := &metrics.SyncHistogram{}
	bulkLat := &metrics.SyncHistogram{}
	var totQ, totOK, totErr float64
	var totFetch, totFetchOK, totFetchBytes float64
	var totLoadSec float64
	convergeBest := -1.0

	target := p.ConvergeTarget
	if target == 0 && p.FairnessThreshold > 0 {
		target = int64(p.FairnessThreshold * 1000)
	}

	for ai, act := range p.Acts {
		am, lat, flat, convergeS, err := runAct(r, p, act, target, prev, cfg)
		if err != nil {
			return res, fmt.Errorf("act %q: %w", act.Name, err)
		}
		res.Acts = append(res.Acts, ActResult{Name: act.Name, Metrics: am})
		for _, v := range lat {
			allLat.Observe(v)
			if act.FetchesPerNode > 0 {
				// Query latency while bulk transfers compete for the
				// links — the priority-lane data point.
				bulkLat.Observe(v)
			}
		}
		for _, v := range flat {
			allFetchLat.Observe(v)
		}
		totQ += am["queries"]
		totOK += am["ok"]
		totErr += am["errors"]
		totFetch += am["fetch_ok"] + am["fetch_failed"]
		totFetchOK += am["fetch_ok"]
		totFetchBytes += am["fetch_bytes"]
		totLoadSec += am["seconds"]
		if act.TrackConvergence && convergeS >= 0 {
			if convergeBest < 0 || convergeS < convergeBest {
				convergeBest = convergeS
			}
		}
		// The next act's deltas start from this act's end state.
		prev, err = scrape(r.Live(), 30*time.Second)
		if err != nil {
			return res, err
		}
		fmt.Fprintf(cfg.Out, "plan %s: act %d/%d %q: %d queries, p95 %.1fms\n",
			p.Name, ai+1, len(p.Acts), act.Name, int(am["queries"]), am["p95_ms"])
	}

	// Run-level totals from the final fleet state.
	final, err := scrape(r.Live(), 30*time.Second)
	if err != nil {
		return res, err
	}
	var served []float64
	var wireIn, wireOut, hits, misses float64
	var xferIn, xferOut, hashFail float64
	var cacheInstalls, pushInstalls, pushes float64
	for _, s := range final {
		served = append(served, float64(s.Counters["served"]))
		wireIn += float64(s.Counters["wire_bytes_in"])
		wireOut += float64(s.Counters["wire_bytes_out"])
		hits += float64(s.Counters["cache_hit"])
		misses += float64(s.Counters["cache_miss"])
		xferIn += float64(s.Counters["transfer_bytes_in"])
		xferOut += float64(s.Counters["transfer_bytes_out"])
		hashFail += float64(s.Counters["chunk_hash_fail"])
		cacheInstalls += float64(s.Counters["content_cache_installs"])
		pushInstalls += float64(s.Counters["replicate_installs"])
		pushes += float64(s.Counters["replicate_pushes"])
	}
	res.Totals["queries"] = totQ
	res.Totals["ok"] = totOK
	res.Totals["errors"] = totErr
	if totQ > 0 {
		res.Totals["error_rate"] = totErr / totQ
	}
	if totLoadSec > 0 {
		res.Totals["qps"] = totQ / totLoadSec
	}
	if allLat.Count() > 0 {
		res.Totals["p50_ms"] = allLat.Quantile(0.5)
		res.Totals["p95_ms"] = allLat.Quantile(0.95)
		res.Totals["p99_ms"] = allLat.Quantile(0.99)
	}
	res.Totals["fairness_jain_served"] = fairness.Jain(served)
	res.Totals["wire_bytes_in"] = wireIn
	res.Totals["wire_bytes_out"] = wireOut
	if totQ > 0 {
		res.Totals["wire_bytes_per_query"] = (wireIn + wireOut) / totQ
	}
	if hits+misses > 0 {
		res.Totals["cache_hit_rate"] = hits / (hits + misses)
	}
	if totFetch > 0 {
		res.Totals["fetches"] = totFetch
		res.Totals["fetch_ok"] = totFetchOK
		res.Totals["fetch_fail_rate"] = (totFetch - totFetchOK) / totFetch
		res.Totals["fetch_bytes"] = totFetchBytes
		res.Totals["transfer_bytes_in"] = xferIn
		res.Totals["transfer_bytes_out"] = xferOut
		res.Totals["chunk_hash_fail"] = hashFail
		if allFetchLat.Count() > 0 {
			res.Totals["fetch_p50_ms"] = allFetchLat.Quantile(0.5)
			res.Totals["fetch_p95_ms"] = allFetchLat.Quantile(0.95)
			res.Totals["fetch_p99_ms"] = allFetchLat.Quantile(0.99)
		}
		if bulkLat.Count() > 0 {
			// Query p95 restricted to acts that ran bulk fetches
			// alongside — the "queries stay fast under bulk" gate.
			res.Totals["bulk_query_p95_ms"] = bulkLat.Quantile(0.95)
		}
		res.Totals["content_cache_installs"] = cacheInstalls
		res.Totals["replicate_installs"] = pushInstalls
		res.Totals["replicate_pushes"] = pushes
	}
	// Flash-crowd trajectory: a plan with a "steady" and a "spike" act
	// (both fetching) gates on how much the spike degrades fetch tail
	// latency over steady state, and on how concentrated the spike's
	// served bytes were on the hottest origin.
	var steadyP99, spikeP99 float64
	for _, ar := range res.Acts {
		switch ar.Name {
		case "steady":
			steadyP99 = ar.Metrics["fetch_p99_ms"]
		case "spike":
			spikeP99 = ar.Metrics["fetch_p99_ms"]
			if share, ok := ar.Metrics["origin_share"]; ok {
				res.Totals["spike_origin_share"] = share
			}
		}
	}
	if steadyP99 > 0 && spikeP99 > 0 {
		res.Totals["steady_fetch_p99_ms"] = steadyP99
		res.Totals["spike_fetch_p99_ms"] = spikeP99
		res.Totals["spike_p99_over_steady"] = spikeP99 / steadyP99
	}
	res.Totals["adapt_convergence_s"] = convergeBest

	// Clean shutdown; a node that wedged on quit is killed by KillAll.
	for _, np := range r.Live() {
		np.Quit(10 * time.Second)
	}
	res.Seconds = time.Since(start).Seconds()
	return res, nil
}

// loadAll starts the same load shape on every node (per-node seeds) and
// waits for all reports; used for the uncounted warm-up.
func loadAll(live []*NodeProc, spec proto.LoadSpec, seedBase int64, timeout time.Duration) error {
	for _, np := range live {
		s := spec
		s.Seed = seedBase + int64(np.ID)*101
		if _, err := np.Call(proto.Command{Op: proto.OpLoad, Load: &s}, 30*time.Second); err != nil {
			return err
		}
	}
	for _, np := range live {
		if _, err := np.Call(proto.Command{Op: proto.OpWait}, timeout); err != nil {
			return err
		}
	}
	return nil
}

// runAct drives one act: churn, chaos, load on every live node, the
// convergence watch, then the merged data points. Returns the act's
// metrics, the raw query and fetch latency samples (for run-level
// percentiles), and the convergence seconds (-1 = not tracked / not
// reached).
func runAct(r *Runner, p Plan, act Act, target int64, prev map[int]*proto.StatsReport, cfg RunConfig) (map[string]float64, []float64, []float64, float64, error) {
	// Churn first: kills are abrupt (the point), restarts re-announce.
	for _, id := range act.KillNodes {
		if id >= 0 && id < len(r.Procs) && r.Procs[id].Alive {
			fmt.Fprintf(cfg.Out, "  act %s: killing node %d\n", act.Name, id)
			r.Procs[id].Kill()
		}
	}
	for _, id := range act.RestartNodes {
		if id >= 0 && id < len(r.Procs) && !r.Procs[id].Alive {
			boot := ""
			for _, np := range r.Live() {
				boot = np.Addr
				break
			}
			fmt.Fprintf(cfg.Out, "  act %s: restarting node %d\n", act.Name, id)
			if err := r.Procs[id].Restart(r.Bin, boot, cfg.SpawnTimeout); err != nil {
				return nil, nil, nil, -1, err
			}
		}
	}
	live := r.Live()
	if len(live) == 0 {
		return nil, nil, nil, -1, fmt.Errorf("no live nodes")
	}

	chaosTargets := live
	if len(act.ChaosNodes) > 0 {
		chaosTargets = nil
		for _, id := range act.ChaosNodes {
			if id >= 0 && id < len(r.Procs) && r.Procs[id].Alive {
				chaosTargets = append(chaosTargets, r.Procs[id])
			}
		}
	}
	if act.Chaos != nil {
		spec := &proto.ChaosSpec{
			Drop: act.Chaos.Drop, Corrupt: act.Chaos.Corrupt,
			Duplicate: act.Chaos.Duplicate,
			DelayMS:   act.Chaos.DelayMS, JitterMS: act.Chaos.JitterMS,
		}
		for _, np := range chaosTargets {
			if _, err := np.Call(proto.Command{Op: proto.OpChaos, Chaos: spec}, 30*time.Second); err != nil {
				return nil, nil, nil, -1, err
			}
		}
	}

	spec := proto.LoadSpec{
		Queries: act.QueriesPerNode, Concurrency: act.Concurrency,
		M: act.M, ZipfS: act.ZipfS, Repeat: act.Repeat,
		HotCategory: act.HotCategory, HotFraction: act.HotFraction,
		IntervalMS: act.IntervalMS, TimeoutMS: act.TimeoutMS,
		Fetches: act.FetchesPerNode, FetchConcurrency: act.FetchConcurrency,
		FetchZipfS: act.FetchZipfS, FetchTimeoutMS: act.FetchTimeoutMS,
		FetchHotDoc: act.FetchHotDoc, FetchHotFraction: act.FetchHotFraction,
	}
	if spec.Concurrency <= 0 {
		spec.Concurrency = 4
	}
	if spec.M <= 0 {
		spec.M = 2
	}
	if spec.TimeoutMS <= 0 {
		spec.TimeoutMS = 5000
	}
	loadStart := time.Now()
	for _, np := range live {
		s := spec
		s.Seed = p.Seed + 1000 + int64(np.ID)*101
		if _, err := np.Call(proto.Command{Op: proto.OpLoad, Load: &s}, 30*time.Second); err != nil {
			return nil, nil, nil, -1, err
		}
	}

	// Convergence watch: poll fairness while the load runs. The reading
	// is the time from load start until the fleet's best fairness
	// crosses the target (the leader's post-rebalance evaluation).
	convergeS := -1.0
	if act.TrackConvergence && target > 0 {
		deadline := time.Now().Add(cfg.ActTimeout)
		for time.Now().Before(deadline) {
			time.Sleep(500 * time.Millisecond)
			stats, err := scrape(r.Live(), 15*time.Second)
			if err != nil {
				break // node busy finishing the act; the wait below reports real errors
			}
			if maxFairness(stats) >= target {
				convergeS = time.Since(loadStart).Seconds()
				break
			}
			running := false
			for _, s := range stats {
				if s.LoadRunning {
					running = true
					break
				}
			}
			if !running {
				break // act load drained without crossing the target
			}
		}
	}

	var lat, fetchLat []float64
	m := map[string]float64{}
	for _, np := range live {
		rsp, err := np.Call(proto.Command{Op: proto.OpWait}, cfg.ActTimeout)
		if err != nil {
			return nil, nil, nil, -1, err
		}
		rep := rsp.Load
		m["queries"] += float64(rep.Issued)
		m["ok"] += float64(rep.OK)
		m["errors"] += float64(rep.Timeouts + rep.Rejected + rep.NoRoute + rep.Failed)
		m["timeouts"] += float64(rep.Timeouts)
		m["rejected"] += float64(rep.Rejected)
		if rep.Seconds > m["seconds"] {
			m["seconds"] = rep.Seconds // acts run concurrently across nodes
		}
		lat = append(lat, rep.LatencyMS...)
		m["fetch_ok"] += float64(rep.FetchOK)
		m["fetch_failed"] += float64(rep.FetchFailed)
		m["fetch_bytes"] += float64(rep.FetchBytes)
		fetchLat = append(fetchLat, rep.FetchLatencyMS...)
	}
	if act.Chaos != nil {
		for _, np := range chaosTargets {
			if !np.Alive {
				continue
			}
			np.Call(proto.Command{Op: proto.OpChaos, Chaos: &proto.ChaosSpec{Clear: true}}, 30*time.Second)
		}
	}

	sort.Float64s(lat)
	if len(lat) > 0 {
		m["p50_ms"] = quantileSorted(lat, 0.5)
		m["p95_ms"] = quantileSorted(lat, 0.95)
		m["p99_ms"] = quantileSorted(lat, 0.99)
	}
	sort.Float64s(fetchLat)
	if len(fetchLat) > 0 {
		m["fetch_p50_ms"] = quantileSorted(fetchLat, 0.5)
		m["fetch_p95_ms"] = quantileSorted(fetchLat, 0.95)
		m["fetch_p99_ms"] = quantileSorted(fetchLat, 0.99)
	}
	if m["seconds"] > 0 {
		m["qps"] = m["queries"] / m["seconds"]
		if m["fetch_bytes"] > 0 {
			m["fetch_mbps"] = m["fetch_bytes"] / (1 << 20) / m["seconds"]
		}
	}
	cur, err := scrape(r.Live(), 30*time.Second)
	if err == nil {
		m["wire_bytes_in"] = counterDelta(prev, cur, "wire_bytes_in")
		m["wire_bytes_out"] = counterDelta(prev, cur, "wire_bytes_out")
		hits := counterDelta(prev, cur, "cache_hit")
		lookups := hits + counterDelta(prev, cur, "cache_miss")
		if lookups > 0 {
			m["cache_hit_rate"] = hits / lookups
		}
		m["fairness_x1000"] = float64(maxFairness(cur))
		if act.FetchesPerNode > 0 {
			// Origin concentration: the busiest holder's share of the
			// act's served transfer bytes. 1/N is perfectly spread; near
			// 1.0 means one origin served the whole crowd — the reading
			// demand-driven replication is meant to push down.
			total := counterDelta(prev, cur, "transfer_bytes_out")
			m["transfer_bytes_out"] = total
			if total > 0 {
				m["origin_share"] = maxCounterDelta(prev, cur, "transfer_bytes_out") / total
			}
			m["cache_installs"] = counterDelta(prev, cur, "content_cache_installs")
			m["replicate_installs"] = counterDelta(prev, cur, "replicate_installs")
		}
	}
	if act.TrackConvergence {
		m["converge_s"] = convergeS
	}
	return m, lat, fetchLat, convergeS, nil
}

// quantileSorted reads a quantile off an ascending sample slice.
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
