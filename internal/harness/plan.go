// Plan, Act, Result, and the baseline comparison: the declarative side
// of the harness. A plan states up front what it measures and which of
// those data points it is optimizing (with tolerances), so every run —
// local or CI — produces the same machine-readable BENCH_<plan>.json
// and regressions are a diff, not an opinion.
package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Objective is one tracked data point of a plan. Goal says which
// direction is better; the tolerances say how much worse than the
// committed baseline a run may be before it fails. Zero tolerances make
// the metric report-only (tracked in the artifact, never gating).
type Objective struct {
	// Metric is a key of Result.Totals.
	Metric string `json:"metric"`
	// Goal is "min" (smaller is better: latency, bytes) or "max"
	// (bigger is better: fairness, hit rate, qps).
	Goal string `json:"goal"`
	// RelTol is the allowed relative slack (0.25 = 25% worse than
	// baseline passes); AbsTol is added on top, in the metric's unit —
	// it keeps near-zero baselines from rejecting noise.
	RelTol float64 `json:"rel_tol,omitempty"`
	AbsTol float64 `json:"abs_tol,omitempty"`
}

// Act is one named phase of load after warm-up. Counts, not durations,
// size it (see proto.LoadSpec). Zero-valued fault/churn fields make it
// a plain load act.
type Act struct {
	Name string `json:"name"`
	// QueriesPerNode and Concurrency shape each node's LoadSpec.
	QueriesPerNode int `json:"queries_per_node"`
	Concurrency    int `json:"concurrency"`
	// M, ZipfS, Repeat, HotCategory, HotFraction, IntervalMS, TimeoutMS
	// pass through to the LoadSpec (HotCategory -1 = off).
	M           int     `json:"m"`
	ZipfS       float64 `json:"zipf_s,omitempty"`
	Repeat      float64 `json:"repeat,omitempty"`
	HotCategory int     `json:"hot_category"`
	HotFraction float64 `json:"hot_fraction,omitempty"`
	IntervalMS  int     `json:"interval_ms,omitempty"`
	TimeoutMS   int     `json:"timeout_ms,omitempty"`
	// FetchesPerNode adds a bulk workload alongside the queries: each
	// node runs this many whole-document fetches on FetchConcurrency
	// workers, documents sampled rank-Zipf with FetchZipfS (> 1; lower
	// means uniform). Requires Plan.Content.
	FetchesPerNode   int     `json:"fetches_per_node,omitempty"`
	FetchConcurrency int     `json:"fetch_concurrency,omitempty"`
	FetchZipfS       float64 `json:"fetch_zipf_s,omitempty"`
	FetchTimeoutMS   int     `json:"fetch_timeout_ms,omitempty"`
	// FetchHotDoc + FetchHotFraction aim that fraction of the fetches at
	// one document — the single-document flash crowd (FetchHotFraction 0
	// disables; see proto.LoadSpec).
	FetchHotDoc      int     `json:"fetch_hot_doc,omitempty"`
	FetchHotFraction float64 `json:"fetch_hot_fraction,omitempty"`
	// KillNodes are hard-killed before the act's load; RestartNodes are
	// brought back (same id, fresh port) before it.
	KillNodes    []int `json:"kill_nodes,omitempty"`
	RestartNodes []int `json:"restart_nodes,omitempty"`
	// Chaos, when non-nil, is applied on ChaosNodes (all live nodes if
	// empty) before the load and cleared after the act.
	Chaos      *ActChaos `json:"chaos,omitempty"`
	ChaosNodes []int     `json:"chaos_nodes,omitempty"`
	// TrackConvergence watches the fleet's fairness during this act and
	// records how long the leader takes to push it over the plan's
	// ConvergeTarget (the §6.1 adaptation-convergence data point).
	TrackConvergence bool `json:"track_convergence,omitempty"`
}

// ActChaos mirrors proto.ChaosSpec in plan JSON.
type ActChaos struct {
	Drop      float64 `json:"drop,omitempty"`
	Corrupt   float64 `json:"corrupt,omitempty"`
	Duplicate float64 `json:"duplicate,omitempty"`
	DelayMS   int     `json:"delay_ms,omitempty"`
	JitterMS  int     `json:"jitter_ms,omitempty"`
}

// Plan is one scenario: a deployment shape, per-node configuration, the
// act sequence, and the declared objectives.
type Plan struct {
	Name     string `json:"name"`
	Overview string `json:"overview"`
	// Optimized declares the tracked data points and their gates.
	Optimized []Objective `json:"optimized"`

	// Deployment shape (every process must agree on these).
	Nodes    int   `json:"nodes"`
	Clusters int   `json:"clusters"`
	Docs     int   `json:"docs"`
	Cats     int   `json:"cats"`
	Seed     int64 `json:"seed"`

	// Content enables the content data plane on every node (chunk
	// store, Fetch, byte-shipping moves); DocBytes sizes each document
	// (0 = the catalog default, 4 MB — oversized for harness runs).
	Content  bool  `json:"content,omitempty"`
	DocBytes int64 `json:"doc_bytes,omitempty"`
	// ContentCacheMB budgets each node's demand-driven replica cache
	// (livenet.ContentConfig.CacheBytes); 0 leaves caching off. Only
	// meaningful with Content.
	ContentCacheMB int64 `json:"content_cache_mb,omitempty"`

	// Per-node configuration (0 = the node's default).
	Shards            int     `json:"shards,omitempty"`
	MaxInFlight       int     `json:"max_inflight,omitempty"`
	CacheMB           int64   `json:"cache_mb,omitempty"` // <0 disables caching
	AdaptEveryMS      int     `json:"adapt_every_ms,omitempty"`
	FairnessThreshold float64 `json:"fairness_threshold,omitempty"`
	// ConvergeTarget is the fairness (×1000) a TrackConvergence act
	// waits for; 0 means the plan's FairnessThreshold.
	ConvergeTarget int64 `json:"converge_target,omitempty"`

	// Warmup sizes the uncounted warm-up load per node (0 = a small
	// default); its data points are discarded.
	Warmup int `json:"warmup,omitempty"`

	Acts []Act `json:"acts"`

	// Soak, when set, bridges the plan to a chaos soak scenario
	// (internal/chaos/soak) instead of the process orchestrator: the
	// scenario runs in-process and its report becomes the Result.
	Soak string `json:"soak,omitempty"`
}

// ActResult is one act's data points.
type ActResult struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// Result is one plan run: the per-act trajectory plus the run-level
// totals the objectives gate on.
type Result struct {
	Plan     string             `json:"plan"`
	Overview string             `json:"overview,omitempty"`
	Seed     int64              `json:"seed"`
	Nodes    int                `json:"nodes"`
	Started  string             `json:"started,omitempty"`
	Seconds  float64            `json:"seconds"`
	Optimized []Objective       `json:"optimized,omitempty"`
	Acts     []ActResult        `json:"acts,omitempty"`
	Totals   map[string]float64 `json:"totals"`
}

// WriteFile writes the result as indented JSON (the BENCH artifact).
func (r Result) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadResult loads a BENCH artifact (run or committed baseline).
func ReadResult(path string) (Result, error) {
	var r Result
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("harness: parse %s: %w", path, err)
	}
	return r, nil
}

// Regression is one objective the current run failed against baseline.
type Regression struct {
	Metric   string
	Goal     string
	Baseline float64
	Current  float64
	Allowed  float64 // the gate value the current reading crossed
}

func (r Regression) String() string {
	return fmt.Sprintf("%s (%s): baseline %.4g, current %.4g, allowed %.4g",
		r.Metric, r.Goal, r.Baseline, r.Current, r.Allowed)
}

// Compare gates the current run against a committed baseline using the
// plan's objectives. A metric missing from either side is skipped (the
// trajectory may grow new data points before baselines catch up), as is
// an unset convergence reading (-1) in the baseline — but a run that
// STOPS converging while the baseline did converge is a regression.
func Compare(objectives []Objective, baseline, current Result) []Regression {
	var regs []Regression
	for _, o := range objectives {
		if o.RelTol == 0 && o.AbsTol == 0 {
			continue // report-only
		}
		base, okB := baseline.Totals[o.Metric]
		cur, okC := current.Totals[o.Metric]
		if !okB || !okC {
			continue
		}
		// Convergence sentinel: -1 means "not measured / did not
		// converge". Baseline -1 gates nothing; current -1 against a
		// measured baseline is the worst possible reading.
		if base < 0 {
			continue
		}
		if cur < 0 {
			regs = append(regs, Regression{o.Metric, o.Goal, base, cur, base})
			continue
		}
		slack := base*o.RelTol + o.AbsTol
		switch o.Goal {
		case "max":
			if allowed := base - slack; cur < allowed {
				regs = append(regs, Regression{o.Metric, o.Goal, base, cur, allowed})
			}
		default: // "min"
			if allowed := base + slack; cur > allowed {
				regs = append(regs, Regression{o.Metric, o.Goal, base, cur, allowed})
			}
		}
	}
	return regs
}

// Summary renders the run-level totals in a stable order (for logs).
func (r Result) Summary() string {
	keys := make([]string, 0, len(r.Totals))
	for k := range r.Totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := fmt.Sprintf("plan %s (%d nodes, seed %d, %.1fs):", r.Plan, r.Nodes, r.Seed, r.Seconds)
	for _, k := range keys {
		out += fmt.Sprintf("\n  %-24s %.4g", k, r.Totals[k])
	}
	return out
}
