package harness

import (
	"path/filepath"
	"testing"
)

func res(totals map[string]float64) Result {
	return Result{Plan: "t", Totals: totals}
}

// TestCompareGates pins the gate arithmetic: slack = base*RelTol+AbsTol,
// direction by Goal, report-only when both tolerances are zero.
func TestCompareGates(t *testing.T) {
	objs := []Objective{
		{Metric: "p95_ms", Goal: "min", RelTol: 0.5, AbsTol: 10},
		{Metric: "fairness", Goal: "max", RelTol: 0.1},
		{Metric: "qps", Goal: "max"}, // report-only
	}
	base := res(map[string]float64{"p95_ms": 100, "fairness": 0.9, "qps": 500})

	cases := []struct {
		name string
		cur  map[string]float64
		want int
	}{
		{"within", map[string]float64{"p95_ms": 155, "fairness": 0.85, "qps": 1}, 0},
		{"latency over", map[string]float64{"p95_ms": 161, "fairness": 0.9, "qps": 1}, 1},
		{"fairness under", map[string]float64{"p95_ms": 100, "fairness": 0.80, "qps": 1}, 1},
		{"both", map[string]float64{"p95_ms": 300, "fairness": 0.5, "qps": 1}, 2},
		{"report-only never gates", map[string]float64{"p95_ms": 100, "fairness": 0.9, "qps": 0}, 0},
		{"missing metric skipped", map[string]float64{"fairness": 0.9}, 0},
	}
	for _, tc := range cases {
		regs := Compare(objs, base, res(tc.cur))
		if len(regs) != tc.want {
			t.Errorf("%s: got %d regressions %v, want %d", tc.name, len(regs), regs, tc.want)
		}
	}
}

// TestCompareConvergenceSentinel: -1 means "did not converge". A -1
// baseline gates nothing; a -1 current against a measured baseline is a
// regression regardless of slack.
func TestCompareConvergenceSentinel(t *testing.T) {
	objs := []Objective{{Metric: "adapt_convergence_s", Goal: "min", RelTol: 2.0, AbsTol: 15}}

	if regs := Compare(objs,
		res(map[string]float64{"adapt_convergence_s": -1}),
		res(map[string]float64{"adapt_convergence_s": 40})); len(regs) != 0 {
		t.Errorf("unmeasured baseline must not gate: %v", regs)
	}
	if regs := Compare(objs,
		res(map[string]float64{"adapt_convergence_s": 5}),
		res(map[string]float64{"adapt_convergence_s": -1})); len(regs) != 1 {
		t.Errorf("losing convergence must regress: %v", regs)
	}
	if regs := Compare(objs,
		res(map[string]float64{"adapt_convergence_s": 5}),
		res(map[string]float64{"adapt_convergence_s": 24})); len(regs) != 0 {
		t.Errorf("5*3+15=30 ≥ 24 must pass: %v", regs)
	}
}

// TestResultRoundtrip: the BENCH artifact survives write → read with
// objectives and act trajectory intact.
func TestResultRoundtrip(t *testing.T) {
	r := Result{
		Plan: "smoke", Seed: 7, Nodes: 22, Seconds: 12.5,
		Optimized: []Objective{{Metric: "p95_ms", Goal: "min", RelTol: 2}},
		Acts: []ActResult{
			{Name: "steady", Metrics: map[string]float64{"queries": 1100, "p95_ms": 8.25}},
		},
		Totals: map[string]float64{"queries": 1100, "p95_ms": 8.25, "adapt_convergence_s": -1},
	}
	path := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Plan != r.Plan || got.Seed != r.Seed || got.Nodes != r.Nodes {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Totals["p95_ms"] != 8.25 || got.Totals["adapt_convergence_s"] != -1 {
		t.Fatalf("totals mismatch: %v", got.Totals)
	}
	if len(got.Acts) != 1 || got.Acts[0].Metrics["queries"] != 1100 {
		t.Fatalf("acts mismatch: %+v", got.Acts)
	}
	if len(got.Optimized) != 1 || got.Optimized[0].Metric != "p95_ms" {
		t.Fatalf("objectives mismatch: %+v", got.Optimized)
	}
}

// TestPlanRegistry: every plan is well-formed — resolvable by name,
// shaped sanely, objectives pointing at gateable directions, and the
// smoke plan honoring the ≥20-process floor.
func TestPlanRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Plans() {
		if p.Name == "" || seen[p.Name] {
			t.Fatalf("plan name empty or duplicated: %q", p.Name)
		}
		seen[p.Name] = true
		back, err := LookupPlan(p.Name)
		if err != nil || back.Name != p.Name {
			t.Fatalf("LookupPlan(%q): %v", p.Name, err)
		}
		if p.Nodes <= 0 || p.Clusters <= 0 || p.Docs <= 0 || p.Cats <= 0 {
			t.Fatalf("plan %s: degenerate shape %+v", p.Name, p)
		}
		if len(p.Optimized) == 0 {
			t.Fatalf("plan %s declares no objectives", p.Name)
		}
		for _, o := range p.Optimized {
			if o.Goal != "min" && o.Goal != "max" {
				t.Fatalf("plan %s objective %s: goal %q", p.Name, o.Metric, o.Goal)
			}
		}
		if p.Soak == "" && len(p.Acts) == 0 {
			t.Fatalf("plan %s has neither acts nor a soak scenario", p.Name)
		}
	}
	if _, err := LookupPlan("no-such-plan"); err == nil {
		t.Fatal("LookupPlan must fail on unknown names")
	}
	if smoke, _ := LookupPlan("smoke"); smoke.Nodes < 20 {
		t.Fatalf("smoke plan launches %d processes, want >= 20", smoke.Nodes)
	}
}
