// Package proto defines the machine protocol between the scenario
// harness (internal/harness) and a p2pnode process running in machine
// mode (p2pnode -harness): newline-delimited JSON, commands on the
// node's stdin, responses on its stdout. The exchange is strictly FIFO —
// the node's command loop handles one command at a time and every
// command gets exactly one response — with a single exception: the very
// first stdout line is an unsolicited Ready announcement carrying the
// node's bound listen address, which the orchestrator needs before it
// can bootstrap the rest of the deployment.
//
// The same structures double as the p2pnode -stats-json output format,
// so scripts scraping a non-harness node parse the identical schema.
package proto

// Op names. A response echoes the op of the command it answers.
const (
	OpReady = "ready" // unsolicited first line of a machine-mode node
	OpLoad  = "load"  // start a workload run in the background
	OpWait  = "wait"  // block until the running load finishes; returns its report
	OpStats = "stats" // snapshot the node's counters and latency percentiles
	OpChaos = "chaos" // apply (or clear) a fault profile on this node's links
	OpQuery = "query" // issue one probe query
	OpQuit  = "quit"  // leave the deployment and exit 0
)

// Command is one orchestrator→node instruction.
type Command struct {
	Op    string     `json:"op"`
	Load  *LoadSpec  `json:"load,omitempty"`
	Chaos *ChaosSpec `json:"chaos,omitempty"`
	Query *QuerySpec `json:"query,omitempty"`
}

// Response is one node→orchestrator answer.
type Response struct {
	Op    string       `json:"op"`
	OK    bool         `json:"ok"`
	Err   string       `json:"err,omitempty"`
	Ready *ReadyInfo   `json:"ready,omitempty"`
	Load  *LoadReport  `json:"load,omitempty"`
	Stats *StatsReport `json:"stats,omitempty"`
}

// ReadyInfo is the payload of the unsolicited first line.
type ReadyInfo struct {
	ID    int    `json:"id"`
	Addr  string `json:"addr"`
	Peers int    `json:"peers"`
}

// LoadSpec parameterizes one act's workload on one node. Counts, not
// durations, size the run: a plan that asks every node for Q queries
// produces the same traffic volume on a fast and a slow machine, which
// keeps count-derived data points comparable across runs.
type LoadSpec struct {
	// Queries is how many queries this node must issue in total.
	Queries int `json:"queries"`
	// Concurrency is how many worker goroutines issue them.
	Concurrency int `json:"concurrency"`
	// M asks for this many distinct documents per query.
	M int `json:"m"`
	// ZipfS, when > 0, replaces catalog-popularity sampling with a
	// rank-based Zipf of this exponent (workload.NewZipfGenerator).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Repeat re-issues a recent query with this probability.
	Repeat float64 `json:"repeat,omitempty"`
	// HotCategory (≥ 0) redirects HotFraction of the queries to one
	// category — the flash-crowd skew. -1 disables.
	HotCategory int     `json:"hot_category"`
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// IntervalMS paces each worker: mean exponential think time between
	// queries (0 = issue back to back). Pacing stretches an act across
	// adaptation epochs so convergence is observable.
	IntervalMS int `json:"interval_ms,omitempty"`
	// TimeoutMS bounds each query.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Fetches, when > 0, runs a bulk workload alongside the queries:
	// this many whole-document fetches (Node.Fetch, manifest-verified)
	// issued by FetchConcurrency extra workers. Documents are sampled by
	// rank-Zipf of exponent FetchZipfS (must be > 1; anything lower
	// means uniform). Requires the node to run with -content.
	Fetches          int     `json:"fetches,omitempty"`
	FetchConcurrency int     `json:"fetch_concurrency,omitempty"`
	FetchZipfS       float64 `json:"fetch_zipf_s,omitempty"`
	// FetchTimeoutMS bounds each fetch (0 = 60s).
	FetchTimeoutMS int `json:"fetch_timeout_ms,omitempty"`
	// FetchHotFraction redirects this fraction of the fetches at the
	// single document FetchHotDoc — the flash-crowd spike on the content
	// plane. 0 disables (and FetchHotDoc is then ignored).
	FetchHotDoc      int     `json:"fetch_hot_doc,omitempty"`
	FetchHotFraction float64 `json:"fetch_hot_fraction,omitempty"`
	// Seed makes the node's workload stream deterministic.
	Seed int64 `json:"seed"`
}

// LoadReport is the outcome of one finished LoadSpec.
type LoadReport struct {
	Issued   int     `json:"issued"`
	OK       int     `json:"ok"`
	Timeouts int     `json:"timeouts"`
	Rejected int     `json:"rejected"`
	NoRoute  int     `json:"no_route"`
	Failed   int     `json:"failed"`
	Seconds  float64 `json:"seconds"`
	// LatencyMS lists the response time of every successful query (the
	// orchestrator merges samples across nodes, so cluster-wide
	// percentiles are exact, not averages of averages). Downsampled
	// deterministically past MaxLatencySamples.
	LatencyMS []float64 `json:"latency_ms"`
	// Bulk-workload outcome (LoadSpec.Fetches > 0). FetchBytes counts
	// only bytes of completed, manifest-verified fetches;
	// FetchLatencyMS is one whole-document completion time per fetch.
	FetchOK        int       `json:"fetch_ok,omitempty"`
	FetchFailed    int       `json:"fetch_failed,omitempty"`
	FetchBytes     int64     `json:"fetch_bytes,omitempty"`
	FetchLatencyMS []float64 `json:"fetch_latency_ms,omitempty"`
}

// MaxLatencySamples bounds one report's sample payload; a longer run is
// downsampled every-kth so the report stays a few hundred KB at worst.
const MaxLatencySamples = 20000

// ChaosSpec is a blanket fault profile for the node's outbound links
// (applied through internal/chaos as the default on every link).
type ChaosSpec struct {
	// Clear removes all faults instead of applying the profile.
	Clear bool `json:"clear,omitempty"`
	// Drop/Corrupt/Duplicate are per-write probabilities in [0,1).
	Drop      float64 `json:"drop,omitempty"`
	Corrupt   float64 `json:"corrupt,omitempty"`
	Duplicate float64 `json:"duplicate,omitempty"`
	// DelayMS adds fixed latency per write; JitterMS adds uniform extra.
	DelayMS  int `json:"delay_ms,omitempty"`
	JitterMS int `json:"jitter_ms,omitempty"`
}

// QuerySpec is one probe query.
type QuerySpec struct {
	Category  int `json:"category"`
	M         int `json:"m"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// StatsReport snapshots one node: raw counters plus the derived
// readings scripts always end up wanting (percentiles, fairness,
// membership). Counters is Node.Stats() verbatim.
type StatsReport struct {
	NodeID   int              `json:"node_id"`
	Counters map[string]int64 `json:"counters"`
	// Latency percentiles of the node's lifetime query latency
	// histogram, in milliseconds.
	LatCount int     `json:"lat_count"`
	LatP50   float64 `json:"lat_p50_ms"`
	LatP95   float64 `json:"lat_p95_ms"`
	LatP99   float64 `json:"lat_p99_ms"`
	// FairnessX1000 is the node's last measured fairness index in
	// thousandths; -1 when this node has not evaluated an epoch.
	FairnessX1000 int64 `json:"fairness_x1000"`
	MembersAlive  int   `json:"members_alive"`
	MembersSusp   int   `json:"members_suspect"`
	// Per-transfer throughput percentiles (KB/s) of the node's completed
	// remote fetches; zero-valued when the content plane is off or no
	// transfer has finished. Raw transfer_* counters ride in Counters.
	XferCount   int     `json:"xfer_count,omitempty"`
	XferP50KBps float64 `json:"xfer_p50_kbps,omitempty"`
	XferP95KBps float64 `json:"xfer_p95_kbps,omitempty"`
	XferP99KBps float64 `json:"xfer_p99_kbps,omitempty"`
	// LoadRunning reports an OpLoad still in flight — the orchestrator's
	// convergence poll uses it to stop polling once an act's load drains.
	LoadRunning bool `json:"load_running,omitempty"`
}
