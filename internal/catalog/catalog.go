// Package catalog models the shared content of the system: documents,
// document categories (the paper's "semantic categories"), and their
// popularity accounting.
//
// Every document has a popularity p(d) ∈ [0,1], the probability a user
// request targets it. A category's popularity is the sum of its documents'
// popularities; a document belonging to several categories splits its
// popularity evenly among them (paper §4.1).
package catalog

import (
	"fmt"
	"math/rand"

	"p2pshare/internal/zipf"
)

// DocID identifies a document.
type DocID int32

// CategoryID identifies a document category.
type CategoryID int32

// NoCategory marks an unset category reference.
const NoCategory CategoryID = -1

// Document is one sharable content item.
type Document struct {
	ID DocID
	// Categories the document belongs to; usually one. Popularity is
	// split evenly across them.
	Categories []CategoryID
	// Popularity is p(d), the probability a request targets this document.
	Popularity float64
	// Size in bytes (the paper's examples use 4 MB MP3 files).
	Size int64
}

// Category is a group of documents (e.g. a semantic category such as
// "Heavy Metal" in the paper's Figure 1).
type Category struct {
	ID   CategoryID
	Name string
	// Docs holds the documents mapped to this category.
	Docs []DocID
	// Popularity is p(s) = Σ p(d)/|categories(d)| over its documents.
	Popularity float64
	// Keywords characterize the category's semantic content; the
	// classifier maps query keywords onto categories through them.
	Keywords []string
}

// Catalog is the full content inventory.
type Catalog struct {
	Docs []Document
	Cats []Category
}

// Config controls synthetic catalog generation.
type Config struct {
	NumDocs int
	NumCats int
	// ThetaDocs is the Zipf parameter of document popularity by rank
	// (paper: 0.8).
	ThetaDocs float64
	// CatAssign picks how documents map to categories.
	CatAssign CatAssignMode
	// ThetaCats is the Zipf parameter for category popularity under
	// AssignZipf (paper: 0.7).
	ThetaCats float64
	// DocSize is the size of every document in bytes. Zero means the
	// paper's 4 MB MP3 default.
	DocSize int64
	// MultiCatFraction is the fraction of documents assigned to two
	// categories instead of one (popularity split evenly). Zero by
	// default, matching the paper's simplifying assumption.
	MultiCatFraction float64
}

// CatAssignMode selects the document→category assignment policy.
type CatAssignMode int

const (
	// AssignZipf samples each document's category from a Zipf pmf over
	// categories — the paper's first, "worst case" scenario (§4.4): the
	// resulting category popularities are Zipf-like with spikes.
	AssignZipf CatAssignMode = iota
	// AssignUniform samples categories uniformly — the paper's second
	// scenario, yielding near-uniform category popularities.
	AssignUniform
)

// DefaultDocSize is the paper's running example: a 3-minute MP3.
const DefaultDocSize = 4 << 20

func (m CatAssignMode) String() string {
	switch m {
	case AssignZipf:
		return "zipf"
	case AssignUniform:
		return "uniform"
	default:
		return fmt.Sprintf("CatAssignMode(%d)", int(m))
	}
}

// Generate builds a synthetic catalog: NumDocs documents with ranked-Zipf
// popularities (document i has popularity rank i), each assigned to
// categories per cfg. Category popularities are accumulated from their
// documents. All randomness comes from rng.
func Generate(cfg Config, rng *rand.Rand) (*Catalog, error) {
	if cfg.NumDocs <= 0 {
		return nil, fmt.Errorf("catalog: NumDocs must be positive, got %d", cfg.NumDocs)
	}
	if cfg.NumCats <= 0 {
		return nil, fmt.Errorf("catalog: NumCats must be positive, got %d", cfg.NumCats)
	}
	if cfg.MultiCatFraction < 0 || cfg.MultiCatFraction > 1 {
		return nil, fmt.Errorf("catalog: MultiCatFraction %g out of [0,1]", cfg.MultiCatFraction)
	}
	size := cfg.DocSize
	if size == 0 {
		size = DefaultDocSize
	}

	c := &Catalog{
		Docs: make([]Document, cfg.NumDocs),
		Cats: make([]Category, cfg.NumCats),
	}
	for i := range c.Cats {
		c.Cats[i] = Category{
			ID:       CategoryID(i),
			Name:     fmt.Sprintf("category-%04d", i),
			Keywords: categoryKeywords(i),
		}
	}

	docPop := zipf.Popularities(cfg.NumDocs, cfg.ThetaDocs)

	var catSampler *zipf.Sampler
	switch cfg.CatAssign {
	case AssignZipf:
		catSampler = zipf.NewSampler(zipf.Popularities(cfg.NumCats, cfg.ThetaCats))
	case AssignUniform:
		catSampler = zipf.NewSampler(zipf.Uniform(cfg.NumCats))
	default:
		return nil, fmt.Errorf("catalog: unknown CatAssign mode %d", cfg.CatAssign)
	}

	for i := range c.Docs {
		d := &c.Docs[i]
		d.ID = DocID(i)
		d.Popularity = docPop[i]
		d.Size = size
		d.Categories = []CategoryID{CategoryID(catSampler.Sample(rng))}
		if cfg.MultiCatFraction > 0 && rng.Float64() < cfg.MultiCatFraction {
			second := CategoryID(catSampler.Sample(rng))
			if second != d.Categories[0] {
				d.Categories = append(d.Categories, second)
			}
		}
		share := d.Popularity / float64(len(d.Categories))
		for _, cid := range d.Categories {
			cat := &c.Cats[cid]
			cat.Docs = append(cat.Docs, d.ID)
			cat.Popularity += share
		}
	}
	return c, nil
}

// categoryKeywords derives a small deterministic keyword vocabulary for a
// category; the classifier package matches query keywords against these.
func categoryKeywords(i int) []string {
	return []string{
		fmt.Sprintf("kw%d", i),
		fmt.Sprintf("topic%d", i),
		fmt.Sprintf("genre%d", i/10),
	}
}

// Doc returns the document with the given id, or nil if out of range.
func (c *Catalog) Doc(id DocID) *Document {
	if id < 0 || int(id) >= len(c.Docs) {
		return nil
	}
	return &c.Docs[id]
}

// Cat returns the category with the given id, or nil if out of range.
func (c *Catalog) Cat(id CategoryID) *Category {
	if id < 0 || int(id) >= len(c.Cats) {
		return nil
	}
	return &c.Cats[id]
}

// CategoryPopularities returns p(s) for every category, indexed by id.
func (c *Catalog) CategoryPopularities() []float64 {
	out := make([]float64, len(c.Cats))
	for i := range c.Cats {
		out[i] = c.Cats[i].Popularity
	}
	return out
}

// TotalPopularity returns the summed popularity of all documents. For a
// freshly generated catalog this is 1; perturbations (AddDocuments) keep
// it normalized.
func (c *Catalog) TotalPopularity() float64 {
	var sum float64
	for i := range c.Docs {
		sum += c.Docs[i].Popularity
	}
	return sum
}

// PopularityShare returns the slice of a document's popularity attributed
// to one of its categories (even split across its categories).
func (d *Document) PopularityShare() float64 {
	return d.Popularity / float64(len(d.Categories))
}

// AddDocuments models the paper's robustness stress test (§5): n new
// documents join carrying a combined popularity of mass (e.g. 0.30),
// becoming the most popular documents in the system. Existing document
// popularities are scaled by (1-mass) so the total stays normalized; the
// new documents share mass among themselves by ranked Zipf (thetaNew) and
// are assigned to uniformly random existing categories. It returns the ids
// of the new documents.
func (c *Catalog) AddDocuments(n int, mass, thetaNew float64, rng *rand.Rand) ([]DocID, error) {
	return c.AddDocumentsIn(n, mass, thetaNew, nil, rng)
}

// AddDocumentsIn is AddDocuments with the new documents restricted to the
// given target categories (nil means all categories). Concentrating the
// new mass in few categories models a flash crowd that hits a handful of
// topics rather than the whole catalog.
func (c *Catalog) AddDocumentsIn(n int, mass, thetaNew float64, cats []CategoryID, rng *rand.Rand) ([]DocID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("catalog: AddDocuments n must be positive, got %d", n)
	}
	if mass <= 0 || mass >= 1 {
		return nil, fmt.Errorf("catalog: AddDocuments mass %g out of (0,1)", mass)
	}
	if len(c.Cats) == 0 {
		return nil, fmt.Errorf("catalog: AddDocuments needs at least one category")
	}
	for _, cid := range cats {
		if c.Cat(cid) == nil {
			return nil, fmt.Errorf("catalog: AddDocuments unknown target category %d", cid)
		}
	}
	// Scale down the incumbents.
	scale := 1 - mass
	for i := range c.Docs {
		c.Docs[i].Popularity *= scale
	}
	for i := range c.Cats {
		c.Cats[i].Popularity *= scale
	}
	newPop := zipf.Popularities(n, thetaNew)
	ids := make([]DocID, n)
	size := int64(DefaultDocSize)
	if len(c.Docs) > 0 {
		size = c.Docs[0].Size
	}
	for i := 0; i < n; i++ {
		id := DocID(len(c.Docs))
		var cat CategoryID
		if len(cats) > 0 {
			cat = cats[rng.Intn(len(cats))]
		} else {
			cat = CategoryID(rng.Intn(len(c.Cats)))
		}
		pop := newPop[i] * mass
		c.Docs = append(c.Docs, Document{
			ID:         id,
			Categories: []CategoryID{cat},
			Popularity: pop,
			Size:       size,
		})
		c.Cats[cat].Docs = append(c.Cats[cat].Docs, id)
		c.Cats[cat].Popularity += pop
		ids[i] = id
	}
	return ids, nil
}

// ShiftPopularity re-ranks document popularities in place: a fraction of
// documents chosen at random receive the top popularity ranks under a fresh
// ranked Zipf with the given theta, modelling content popularity drift
// (§6.1). Category popularities are recomputed.
func (c *Catalog) ShiftPopularity(theta float64, rng *rand.Rand) {
	perm := rng.Perm(len(c.Docs))
	pops := zipf.Popularities(len(c.Docs), theta)
	for rank, di := range perm {
		c.Docs[di].Popularity = pops[rank]
	}
	c.RecomputeCategoryPopularities()
}

// SplitCategory refines the document grouping (§7 vi): half of the
// category's single-category documents (alternating by list position, so
// popular and unpopular docs split evenly) move into a fresh category.
// Because category↔cluster assignment is the balancing granularity, a
// category too popular for any single cluster can be split until the
// pieces are placeable — the granularity answer the paper leaves open.
// Multi-category documents stay put (their popularity split already
// spreads them). It returns the new category's id.
func (c *Catalog) SplitCategory(cat CategoryID) (CategoryID, error) {
	src := c.Cat(cat)
	if src == nil {
		return 0, fmt.Errorf("catalog: unknown category %d", cat)
	}
	var movable []DocID
	for _, di := range src.Docs {
		if len(c.Docs[di].Categories) == 1 {
			movable = append(movable, di)
		}
	}
	if len(movable) < 2 {
		return 0, fmt.Errorf("catalog: category %d has %d movable docs, need 2", cat, len(movable))
	}
	newID := CategoryID(len(c.Cats))
	c.Cats = append(c.Cats, Category{
		ID:       newID,
		Name:     fmt.Sprintf("%s/split-%d", src.Name, newID),
		Keywords: append(append([]string(nil), src.Keywords...), fmt.Sprintf("kw%d", newID)),
	})
	src = c.Cat(cat) // re-fetch: the append may have moved the backing array
	dst := c.Cat(newID)
	move := make(map[DocID]bool, len(movable)/2)
	for i, di := range movable {
		if i%2 == 1 {
			move[di] = true
		}
	}
	kept := src.Docs[:0]
	for _, di := range src.Docs {
		if !move[di] {
			kept = append(kept, di)
			continue
		}
		d := &c.Docs[di]
		d.Categories[0] = newID
		dst.Docs = append(dst.Docs, di)
		src.Popularity -= d.Popularity
		dst.Popularity += d.Popularity
	}
	src.Docs = kept
	if src.Popularity < 0 {
		src.Popularity = 0
	}
	return newID, nil
}

// ShiftCategoryPopularity re-ranks popularity at the category level
// (§6.1: "the popularity of the stored content varies with time"): a
// random permutation of categories receives fresh ranked-Zipf(theta)
// popularity targets, and each category's member documents are scaled
// proportionally to hit its target. Unlike ShiftPopularity (document-level
// re-ranking, which large categories average away), this moves demand
// *between* categories and therefore between clusters.
func (c *Catalog) ShiftCategoryPopularity(theta float64, rng *rand.Rand) {
	if len(c.Cats) == 0 {
		return
	}
	targets := zipf.Popularities(len(c.Cats), theta)
	perm := rng.Perm(len(c.Cats))
	// Scale each category's docs by target/current. Empty or zero-pop
	// categories keep their (zero) mass; renormalize at the end so the
	// total stays 1.
	for rank, ci := range perm {
		cat := &c.Cats[ci]
		if cat.Popularity <= 0 {
			continue
		}
		scale := targets[rank] / cat.Popularity
		for _, di := range cat.Docs {
			d := &c.Docs[di]
			// Multi-category documents scale by their share in this
			// category only; single-category documents scale fully.
			d.Popularity *= 1 + (scale-1)/float64(len(d.Categories))
		}
	}
	total := c.TotalPopularity()
	if total > 0 {
		for i := range c.Docs {
			c.Docs[i].Popularity /= total
		}
	}
	c.RecomputeCategoryPopularities()
}

// RecomputeCategoryPopularities rebuilds every category's popularity from
// its member documents.
func (c *Catalog) RecomputeCategoryPopularities() {
	for i := range c.Cats {
		c.Cats[i].Popularity = 0
	}
	for i := range c.Docs {
		d := &c.Docs[i]
		share := d.PopularityShare()
		for _, cid := range d.Categories {
			c.Cats[cid].Popularity += share
		}
	}
}
