package catalog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func genCfg() Config {
	return Config{
		NumDocs:   5000,
		NumCats:   100,
		ThetaDocs: 0.8,
		ThetaCats: 0.7,
		CatAssign: AssignZipf,
	}
}

func TestGenerateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := Generate(genCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 5000 || len(c.Cats) != 100 {
		t.Fatalf("got %d docs, %d cats", len(c.Docs), len(c.Cats))
	}
	for i := range c.Docs {
		d := &c.Docs[i]
		if d.ID != DocID(i) {
			t.Fatalf("doc %d has id %d", i, d.ID)
		}
		if len(d.Categories) != 1 {
			t.Fatalf("doc %d has %d categories, want 1", i, len(d.Categories))
		}
		if d.Popularity <= 0 {
			t.Fatalf("doc %d has popularity %g", i, d.Popularity)
		}
		if d.Size != DefaultDocSize {
			t.Fatalf("doc %d has size %d, want default", i, d.Size)
		}
	}
}

func TestGenerateTotalPopularityIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := Generate(genCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if tp := c.TotalPopularity(); math.Abs(tp-1) > 1e-9 {
		t.Errorf("total doc popularity = %g, want 1", tp)
	}
	var catSum float64
	for i := range c.Cats {
		catSum += c.Cats[i].Popularity
	}
	if math.Abs(catSum-1) > 1e-9 {
		t.Errorf("total category popularity = %g, want 1", catSum)
	}
}

func TestGenerateCategoryConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := Generate(genCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every document appears in exactly the categories it lists, and
	// category popularity equals the sum of member shares.
	for i := range c.Cats {
		cat := &c.Cats[i]
		var sum float64
		for _, di := range cat.Docs {
			d := c.Doc(di)
			found := false
			for _, cid := range d.Categories {
				if cid == cat.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("doc %d in category %d's list but doesn't reference it", di, cat.ID)
			}
			sum += d.PopularityShare()
		}
		if math.Abs(sum-cat.Popularity) > 1e-9 {
			t.Fatalf("category %d popularity %g != member sum %g", cat.ID, cat.Popularity, sum)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(genCfg(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(genCfg(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Docs {
		if a.Docs[i].Categories[0] != b.Docs[i].Categories[0] {
			t.Fatal("same seed produced different catalogs")
		}
	}
}

func TestGenerateZipfAssignIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	zc, err := Generate(genCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	ucfg := genCfg()
	ucfg.CatAssign = AssignUniform
	uc, err := Generate(ucfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	maxCat := func(c *Catalog) float64 {
		m := 0.0
		for i := range c.Cats {
			if c.Cats[i].Popularity > m {
				m = c.Cats[i].Popularity
			}
		}
		return m
	}
	if maxCat(zc) <= maxCat(uc) {
		t.Errorf("zipf assignment should concentrate more popularity: zipf max %g <= uniform max %g",
			maxCat(zc), maxCat(uc))
	}
}

func TestGenerateMultiCategory(t *testing.T) {
	cfg := genCfg()
	cfg.MultiCatFraction = 0.5
	rng := rand.New(rand.NewSource(5))
	c, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for i := range c.Docs {
		if len(c.Docs[i].Categories) == 2 {
			multi++
			// Split evenly: share is half the popularity.
			d := &c.Docs[i]
			if math.Abs(d.PopularityShare()-d.Popularity/2) > 1e-15 {
				t.Fatal("multi-category share not halved")
			}
		}
	}
	if multi == 0 {
		t.Error("no multi-category documents generated at fraction 0.5")
	}
	if tp := c.TotalPopularity(); math.Abs(tp-1) > 1e-9 {
		t.Errorf("total popularity with multi-cat = %g, want 1", tp)
	}
	var catSum float64
	for i := range c.Cats {
		catSum += c.Cats[i].Popularity
	}
	if math.Abs(catSum-1) > 1e-9 {
		t.Errorf("category popularity sum with multi-cat = %g, want 1", catSum)
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []Config{
		{NumDocs: 0, NumCats: 5},
		{NumDocs: 5, NumCats: 0},
		{NumDocs: 5, NumCats: 5, MultiCatFraction: 1.5},
		{NumDocs: 5, NumCats: 5, CatAssign: CatAssignMode(99)},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, rng); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestDocCatAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := Generate(Config{NumDocs: 10, NumCats: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.Doc(5) == nil || c.Doc(-1) != nil || c.Doc(10) != nil {
		t.Error("Doc bounds checks failed")
	}
	if c.Cat(2) == nil || c.Cat(-1) != nil || c.Cat(3) != nil {
		t.Error("Cat bounds checks failed")
	}
	pops := c.CategoryPopularities()
	if len(pops) != 3 {
		t.Fatalf("CategoryPopularities len = %d", len(pops))
	}
}

func TestAddDocuments(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, err := Generate(genCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	nBefore := len(c.Docs)
	ids, err := c.AddDocuments(nBefore/20, 0.30, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != nBefore/20 {
		t.Fatalf("added %d docs, want %d", len(ids), nBefore/20)
	}
	// Total popularity stays normalized.
	if tp := c.TotalPopularity(); math.Abs(tp-1) > 1e-9 {
		t.Errorf("total popularity after AddDocuments = %g, want 1", tp)
	}
	// New docs hold exactly the requested mass.
	var newMass float64
	for _, id := range ids {
		newMass += c.Doc(id).Popularity
	}
	if math.Abs(newMass-0.30) > 1e-9 {
		t.Errorf("new docs hold %g mass, want 0.30", newMass)
	}
	// The new documents are "the new most popular documents" (paper §5):
	// 30% of the mass over 5% of the docs means their average popularity
	// dwarfs the old average (0.30/250 vs 0.70/5000 ≈ 8.6×).
	oldAvg := (1 - newMass) / float64(nBefore)
	newAvg := newMass / float64(len(ids))
	if newAvg < 5*oldAvg {
		t.Errorf("new docs avg popularity %g not ≫ old avg %g", newAvg, oldAvg)
	}
	// Category popularities remain consistent.
	var catSum float64
	for i := range c.Cats {
		catSum += c.Cats[i].Popularity
	}
	if math.Abs(catSum-1) > 1e-9 {
		t.Errorf("category popularity sum after AddDocuments = %g", catSum)
	}
}

func TestAddDocumentsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, _ := Generate(Config{NumDocs: 10, NumCats: 2}, rng)
	if _, err := c.AddDocuments(0, 0.3, 0.8, rng); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := c.AddDocuments(1, 0, 0.8, rng); err == nil {
		t.Error("mass=0 should fail")
	}
	if _, err := c.AddDocuments(1, 1, 0.8, rng); err == nil {
		t.Error("mass=1 should fail")
	}
}

func TestShiftPopularity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, err := Generate(genCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	before := c.CategoryPopularities()
	c.ShiftPopularity(0.8, rng)
	if tp := c.TotalPopularity(); math.Abs(tp-1) > 1e-9 {
		t.Errorf("total popularity after shift = %g, want 1", tp)
	}
	after := c.CategoryPopularities()
	changed := false
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-12 {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("shift did not change any category popularity")
	}
}

func TestShiftCategoryPopularity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c, err := Generate(genCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	before := c.CategoryPopularities()
	c.ShiftCategoryPopularity(0.8, rng)
	after := c.CategoryPopularities()
	if tp := c.TotalPopularity(); math.Abs(tp-1) > 1e-9 {
		t.Errorf("total popularity after category shift = %g, want 1", tp)
	}
	// The ranking must genuinely change: correlate before/after ranks.
	changed := 0
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-9 {
			changed++
		}
	}
	if changed < len(before)/2 {
		t.Errorf("only %d of %d category popularities changed", changed, len(before))
	}
	// Document popularities stay non-negative.
	for i := range c.Docs {
		if c.Docs[i].Popularity < 0 {
			t.Fatalf("doc %d has negative popularity after shift", i)
		}
	}
}

func TestAddDocumentsIn(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c, err := Generate(genCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	targets := []CategoryID{3, 7, 11}
	ids, err := c.AddDocumentsIn(50, 0.2, 0.8, targets, rng)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[CategoryID]bool{3: true, 7: true, 11: true}
	for _, id := range ids {
		if !allowed[c.Doc(id).Categories[0]] {
			t.Fatalf("doc %d landed in category %d, outside targets", id, c.Doc(id).Categories[0])
		}
	}
	if tp := c.TotalPopularity(); math.Abs(tp-1) > 1e-9 {
		t.Errorf("total popularity = %g", tp)
	}
	if _, err := c.AddDocumentsIn(1, 0.1, 0.8, []CategoryID{999}, rng); err == nil {
		t.Error("unknown target category should fail")
	}
}

func TestSplitCategory(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	c, err := Generate(genCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Split the largest category.
	src := CategoryID(0)
	for i := range c.Cats {
		if c.Cats[i].Popularity > c.Cats[src].Popularity {
			src = CategoryID(i)
		}
	}
	beforeDocs := len(c.Cats[src].Docs)
	beforePop := c.Cats[src].Popularity
	newID, err := c.SplitCategory(src)
	if err != nil {
		t.Fatal(err)
	}
	if int(newID) != len(c.Cats)-1 {
		t.Fatalf("new id %d, want last", newID)
	}
	srcCat, dstCat := c.Cat(src), c.Cat(newID)
	if len(srcCat.Docs)+len(dstCat.Docs) != beforeDocs {
		t.Errorf("docs: %d + %d != %d", len(srcCat.Docs), len(dstCat.Docs), beforeDocs)
	}
	if math.Abs(srcCat.Popularity+dstCat.Popularity-beforePop) > 1e-9 {
		t.Errorf("popularity not conserved: %g + %g != %g",
			srcCat.Popularity, dstCat.Popularity, beforePop)
	}
	// Roughly even split (alternating docs).
	if dstCat.Popularity < beforePop*0.2 || dstCat.Popularity > beforePop*0.8 {
		t.Errorf("lopsided split: %g of %g moved", dstCat.Popularity, beforePop)
	}
	// Every moved doc references the new category, every kept doc the old.
	for _, di := range dstCat.Docs {
		if c.Doc(di).Categories[0] != newID {
			t.Fatalf("moved doc %d still references %d", di, c.Doc(di).Categories[0])
		}
	}
	for _, di := range srcCat.Docs {
		if c.Doc(di).Categories[0] != src {
			t.Fatalf("kept doc %d references %d", di, c.Doc(di).Categories[0])
		}
	}
	// Recompute agrees with incremental bookkeeping.
	a := c.CategoryPopularities()
	c.RecomputeCategoryPopularities()
	b := c.CategoryPopularities()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("category %d popularity drifted: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestSplitCategoryErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c, err := Generate(Config{NumDocs: 10, NumCats: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SplitCategory(CategoryID(99)); err == nil {
		t.Error("unknown category should fail")
	}
	// Find (or make) a category with fewer than 2 docs.
	for i := range c.Cats {
		if len(c.Cats[i].Docs) < 2 {
			if _, err := c.SplitCategory(CategoryID(i)); err == nil {
				t.Error("splitting a <2-doc category should fail")
			}
			return
		}
	}
}

func TestRecomputeCategoryPopularitiesIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, err := Generate(genCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	before := c.CategoryPopularities()
	c.RecomputeCategoryPopularities()
	after := c.CategoryPopularities()
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-12 {
			t.Fatalf("category %d popularity changed on recompute: %g -> %g", i, before[i], after[i])
		}
	}
}

func TestGenerateNormalizationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{
			NumDocs:   10 + r.Intn(500),
			NumCats:   1 + r.Intn(50),
			ThetaDocs: r.Float64(),
			ThetaCats: r.Float64(),
			CatAssign: CatAssignMode(r.Intn(2)),
		}
		c, err := Generate(cfg, r)
		if err != nil {
			return false
		}
		var catSum float64
		for i := range c.Cats {
			if c.Cats[i].Popularity < 0 {
				return false
			}
			catSum += c.Cats[i].Popularity
		}
		return math.Abs(c.TotalPopularity()-1) < 1e-9 && math.Abs(catSum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
