// Package simnet is a deterministic discrete-event network simulator.
//
// The paper evaluates its protocols at the level of messages and hops, not
// wall-clock latencies, so the simulator's job is to deliver messages
// between simulated processes in a reproducible order with a plausible
// latency model, count traffic, and let tests inject failures (dead nodes,
// cut links). All randomness flows from a seed; two runs with the same
// seed produce identical event orders.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Message is anything deliverable between processes. Kind groups messages
// for traffic accounting; Size is the simulated payload in bytes.
type Message interface {
	Kind() string
	Size() int64
}

// Process is a simulated node: it receives messages addressed to it.
type Process interface {
	// Deliver handles a message sent by the process at address from.
	Deliver(net *Network, from int, msg Message)
}

// event is a scheduled callback; seq breaks ties so equal-time events run
// in schedule order (determinism).
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Latency produces per-message delays.
type Latency interface {
	// Delay returns the one-way latency from a to b. It may consult rng.
	Delay(a, b int, rng *rand.Rand) time.Duration
}

// UniformLatency draws each delay uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Delay implements Latency.
func (u UniformLatency) Delay(_, _ int, rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// FixedLatency returns a constant delay.
type FixedLatency time.Duration

// Delay implements Latency.
func (f FixedLatency) Delay(_, _ int, _ *rand.Rand) time.Duration { return time.Duration(f) }

// DefaultLatency mimics wide-area RTTs: one-way 10–100 ms.
var DefaultLatency = UniformLatency{Min: 10 * time.Millisecond, Max: 100 * time.Millisecond}

// Stats aggregates network traffic.
type Stats struct {
	// MessagesByKind counts delivered messages per Message.Kind.
	MessagesByKind map[string]int
	// BytesByKind sums Message.Size per kind.
	BytesByKind map[string]int64
	// Delivered is the total delivered message count.
	Delivered int
	// DroppedDead counts messages addressed to dead processes.
	DroppedDead int
	// DroppedLink counts messages lost to cut links.
	DroppedLink int
}

// Observer is notified of every delivered message, in delivery order.
// Observers must not mutate the network; they exist for tracing and
// reproducibility verification (see package trace).
type Observer interface {
	OnDeliver(at time.Duration, from, to int, msg Message)
}

// Network glues processes, the event queue, the latency model, and traffic
// accounting together.
type Network struct {
	rng    *rand.Rand
	lat    Latency
	now    time.Duration
	seq    uint64
	events eventHeap

	procs []Process
	alive []bool
	cut   map[[2]int]bool

	stats    Stats
	observer Observer

	// bytesPerSec, when positive, adds a size-dependent transmission
	// delay to every message on top of the latency model — the knob that
	// makes bulk transfers (document groups) take realistic time while
	// control messages stay cheap.
	bytesPerSec int64
}

// SetObserver installs (or clears, with nil) the delivery observer.
func (n *Network) SetObserver(o Observer) { n.observer = o }

// SetBandwidth sets the per-link transmission rate in bytes/second
// (0 disables size-dependent delay).
func (n *Network) SetBandwidth(bytesPerSec int64) {
	if bytesPerSec < 0 {
		bytesPerSec = 0
	}
	n.bytesPerSec = bytesPerSec
}

// New creates a network with the given latency model and seed.
func New(lat Latency, seed int64) *Network {
	if lat == nil {
		lat = DefaultLatency
	}
	return &Network{
		rng: rand.New(rand.NewSource(seed)),
		lat: lat,
		cut: make(map[[2]int]bool),
		stats: Stats{
			MessagesByKind: make(map[string]int),
			BytesByKind:    make(map[string]int64),
		},
	}
}

// AddProcess registers a process and returns its address.
func (n *Network) AddProcess(p Process) int {
	n.procs = append(n.procs, p)
	n.alive = append(n.alive, true)
	return len(n.procs) - 1
}

// Rng exposes the simulation's random source so processes make
// reproducible random choices (e.g. the query protocol's random target
// node selection).
func (n *Network) Rng() *rand.Rand { return n.rng }

// Now returns the current simulated time.
func (n *Network) Now() time.Duration { return n.now }

// NumProcesses returns how many processes are registered.
func (n *Network) NumProcesses() int { return len(n.procs) }

// Alive reports whether the process at addr is alive.
func (n *Network) Alive(addr int) bool {
	return addr >= 0 && addr < len(n.alive) && n.alive[addr]
}

// Kill marks a process dead; messages to it are dropped. Killing an
// unknown address panics: the caller holds a stale handle.
func (n *Network) Kill(addr int) {
	n.mustKnow(addr)
	n.alive[addr] = false
}

// Revive brings a dead process back.
func (n *Network) Revive(addr int) {
	n.mustKnow(addr)
	n.alive[addr] = true
}

// CutLink drops all future messages between a and b (both directions).
func (n *Network) CutLink(a, b int) {
	n.mustKnow(a)
	n.mustKnow(b)
	n.cut[linkKey(a, b)] = true
}

// HealLink restores the link between a and b.
func (n *Network) HealLink(a, b int) {
	delete(n.cut, linkKey(a, b))
}

func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (n *Network) mustKnow(addr int) {
	if addr < 0 || addr >= len(n.procs) {
		panic(fmt.Sprintf("simnet: unknown process address %d", addr))
	}
}

// Send schedules delivery of msg from -> to after the model latency.
// Sends from dead processes are silently allowed (the caller is driving
// them; tests use Kill for incoming traffic), but messages to dead
// processes or across cut links are counted as dropped.
func (n *Network) Send(from, to int, msg Message) {
	n.mustKnow(from)
	n.mustKnow(to)
	delay := n.lat.Delay(from, to, n.rng)
	if n.bytesPerSec > 0 && msg.Size() > 0 {
		delay += time.Duration(float64(msg.Size()) / float64(n.bytesPerSec) * float64(time.Second))
	}
	n.schedule(delay, func() {
		if !n.alive[to] {
			n.stats.DroppedDead++
			return
		}
		if n.cut[linkKey(from, to)] {
			n.stats.DroppedLink++
			return
		}
		n.stats.Delivered++
		n.stats.MessagesByKind[msg.Kind()]++
		n.stats.BytesByKind[msg.Kind()] += msg.Size()
		if n.observer != nil {
			n.observer.OnDeliver(n.now, from, to, msg)
		}
		n.procs[to].Deliver(n, from, msg)
	})
}

// After schedules fn to run after delay of simulated time (a local timer,
// not a network message).
func (n *Network) After(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	n.schedule(delay, fn)
}

func (n *Network) schedule(delay time.Duration, fn func()) {
	n.seq++
	heap.Push(&n.events, event{at: n.now + delay, seq: n.seq, fn: fn})
}

// Step runs the next event; it reports false when the queue is empty.
func (n *Network) Step() bool {
	if len(n.events) == 0 {
		return false
	}
	e := heap.Pop(&n.events).(event)
	n.now = e.at
	e.fn()
	return true
}

// Run drains the event queue (bounded by maxEvents to catch livelock;
// pass 0 for a generous default). It returns the number of events run and
// an error if the bound was hit with events still pending.
func (n *Network) Run(maxEvents int) (int, error) {
	if maxEvents <= 0 {
		maxEvents = 50_000_000
	}
	ran := 0
	for ran < maxEvents && n.Step() {
		ran++
	}
	if len(n.events) > 0 {
		return ran, fmt.Errorf("simnet: stopped after %d events with %d pending", ran, len(n.events))
	}
	return ran, nil
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to t. Later events stay queued.
func (n *Network) RunUntil(t time.Duration) int {
	ran := 0
	for {
		e, ok := n.events.Peek()
		if !ok || e.at > t {
			break
		}
		n.Step()
		ran++
	}
	if n.now < t {
		n.now = t
	}
	return ran
}

// Pending returns the number of queued events.
func (n *Network) Pending() int { return len(n.events) }

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	out := n.stats
	out.MessagesByKind = make(map[string]int, len(n.stats.MessagesByKind))
	for k, v := range n.stats.MessagesByKind {
		out.MessagesByKind[k] = v
	}
	out.BytesByKind = make(map[string]int64, len(n.stats.BytesByKind))
	for k, v := range n.stats.BytesByKind {
		out.BytesByKind[k] = v
	}
	return out
}

// ResetStats zeroes the traffic counters (the clock keeps running).
func (n *Network) ResetStats() {
	n.stats = Stats{
		MessagesByKind: make(map[string]int),
		BytesByKind:    make(map[string]int64),
	}
}
