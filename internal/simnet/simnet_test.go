package simnet

import (
	"testing"
	"time"
)

type testMsg struct {
	kind string
	size int64
	n    int
}

func (m testMsg) Kind() string { return m.kind }
func (m testMsg) Size() int64  { return m.size }

// recorder collects delivered messages.
type recorder struct {
	got []testMsg
	// onDeliver, when set, runs on every delivery (for chained sends).
	onDeliver func(net *Network, from int, msg Message)
}

func (r *recorder) Deliver(net *Network, from int, msg Message) {
	r.got = append(r.got, msg.(testMsg))
	if r.onDeliver != nil {
		r.onDeliver(net, from, msg)
	}
}

func TestSendDeliver(t *testing.T) {
	net := New(FixedLatency(time.Millisecond), 1)
	a := net.AddProcess(&recorder{})
	rb := &recorder{}
	b := net.AddProcess(rb)
	net.Send(a, b, testMsg{kind: "ping", size: 100})
	if _, err := net.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(rb.got) != 1 || rb.got[0].kind != "ping" {
		t.Fatalf("b received %v", rb.got)
	}
	st := net.Stats()
	if st.Delivered != 1 || st.MessagesByKind["ping"] != 1 || st.BytesByKind["ping"] != 100 {
		t.Errorf("stats = %+v", st)
	}
}

func TestClockAdvancesByLatency(t *testing.T) {
	net := New(FixedLatency(25*time.Millisecond), 1)
	a := net.AddProcess(&recorder{})
	rb := &recorder{}
	b := net.AddProcess(rb)
	net.Send(a, b, testMsg{kind: "m"})
	net.Run(0)
	if net.Now() != 25*time.Millisecond {
		t.Errorf("clock = %v, want 25ms", net.Now())
	}
}

func TestDeterministicOrder(t *testing.T) {
	run := func() []testMsg {
		net := New(DefaultLatency, 42)
		r := &recorder{}
		sink := net.AddProcess(r)
		src := net.AddProcess(&recorder{})
		for i := 0; i < 50; i++ {
			net.Send(src, sink, testMsg{kind: "m", n: i})
		}
		net.Run(0)
		return r.got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i].n != b[i].n {
			t.Fatalf("order differs at %d: %d vs %d", i, a[i].n, b[i].n)
		}
	}
}

func TestTieBreakBySequence(t *testing.T) {
	// Equal-time events run in schedule order.
	net := New(FixedLatency(time.Millisecond), 1)
	r := &recorder{}
	sink := net.AddProcess(r)
	src := net.AddProcess(&recorder{})
	for i := 0; i < 10; i++ {
		net.Send(src, sink, testMsg{kind: "m", n: i})
	}
	net.Run(0)
	for i, m := range r.got {
		if m.n != i {
			t.Fatalf("tie-break violated at %d: got %d", i, m.n)
		}
	}
}

func TestKillDropsMessages(t *testing.T) {
	net := New(FixedLatency(time.Millisecond), 1)
	a := net.AddProcess(&recorder{})
	rb := &recorder{}
	b := net.AddProcess(rb)
	net.Kill(b)
	net.Send(a, b, testMsg{kind: "m"})
	net.Run(0)
	if len(rb.got) != 0 {
		t.Error("dead process received a message")
	}
	if st := net.Stats(); st.DroppedDead != 1 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
	net.Revive(b)
	net.Send(a, b, testMsg{kind: "m"})
	net.Run(0)
	if len(rb.got) != 1 {
		t.Error("revived process did not receive")
	}
}

func TestKillAfterSendStillDrops(t *testing.T) {
	// A message in flight to a node that dies before delivery is dropped:
	// liveness is checked at delivery time.
	net := New(FixedLatency(10*time.Millisecond), 1)
	a := net.AddProcess(&recorder{})
	rb := &recorder{}
	b := net.AddProcess(rb)
	net.Send(a, b, testMsg{kind: "m"})
	net.After(5*time.Millisecond, func() { net.Kill(b) })
	net.Run(0)
	if len(rb.got) != 0 {
		t.Error("message delivered to node that died mid-flight")
	}
}

func TestCutLink(t *testing.T) {
	net := New(FixedLatency(time.Millisecond), 1)
	a := net.AddProcess(&recorder{})
	rb := &recorder{}
	b := net.AddProcess(rb)
	net.CutLink(a, b)
	net.Send(a, b, testMsg{kind: "m"})
	net.Send(b, a, testMsg{kind: "m"})
	net.Run(0)
	if len(rb.got) != 0 {
		t.Error("cut link delivered")
	}
	if st := net.Stats(); st.DroppedLink != 2 {
		t.Errorf("DroppedLink = %d, want 2", st.DroppedLink)
	}
	net.HealLink(b, a) // order-insensitive
	net.Send(a, b, testMsg{kind: "m"})
	net.Run(0)
	if len(rb.got) != 1 {
		t.Error("healed link did not deliver")
	}
}

func TestAfterTimer(t *testing.T) {
	net := New(FixedLatency(time.Millisecond), 1)
	var fired []time.Duration
	net.After(30*time.Millisecond, func() { fired = append(fired, net.Now()) })
	net.After(10*time.Millisecond, func() { fired = append(fired, net.Now()) })
	net.Run(0)
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 30*time.Millisecond {
		t.Errorf("timers fired at %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	net := New(FixedLatency(time.Millisecond), 1)
	var fired int
	net.After(10*time.Millisecond, func() { fired++ })
	net.After(20*time.Millisecond, func() { fired++ })
	net.After(30*time.Millisecond, func() { fired++ })
	ran := net.RunUntil(20 * time.Millisecond)
	if ran != 2 || fired != 2 {
		t.Errorf("ran %d fired %d, want 2 2", ran, fired)
	}
	if net.Now() != 20*time.Millisecond {
		t.Errorf("clock = %v", net.Now())
	}
	if net.Pending() != 1 {
		t.Errorf("pending = %d, want 1", net.Pending())
	}
}

func TestRunBound(t *testing.T) {
	net := New(FixedLatency(time.Millisecond), 1)
	r := &recorder{}
	var addr int
	r.onDeliver = func(n *Network, from int, _ Message) {
		n.Send(addr, addr, testMsg{kind: "loop"}) // infinite self-send
	}
	addr = net.AddProcess(r)
	net.Send(addr, addr, testMsg{kind: "loop"})
	if _, err := net.Run(100); err == nil {
		t.Error("livelock should be reported")
	}
}

func TestChainedSends(t *testing.T) {
	// a -> b -> c relays; the relay latency accumulates.
	net := New(FixedLatency(5*time.Millisecond), 1)
	rc := &recorder{}
	c := net.AddProcess(rc)
	rb := &recorder{}
	rb.onDeliver = func(n *Network, from int, msg Message) {
		n.Send(1, c, msg)
	}
	b := net.AddProcess(rb) // address 1
	a := net.AddProcess(&recorder{})
	_ = b
	net.Send(a, 1, testMsg{kind: "m"})
	net.Run(0)
	if len(rc.got) != 1 {
		t.Fatal("relay failed")
	}
	if net.Now() != 10*time.Millisecond {
		t.Errorf("relay time = %v, want 10ms", net.Now())
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	net := New(nil, 7) // default latency
	for i := 0; i < 1000; i++ {
		d := DefaultLatency.Delay(0, 1, net.Rng())
		if d < 10*time.Millisecond || d >= 100*time.Millisecond {
			t.Fatalf("latency %v out of [10ms,100ms)", d)
		}
	}
	u := UniformLatency{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	if d := u.Delay(0, 1, net.Rng()); d != 5*time.Millisecond {
		t.Errorf("degenerate uniform = %v", d)
	}
}

func TestResetStats(t *testing.T) {
	net := New(FixedLatency(time.Millisecond), 1)
	a := net.AddProcess(&recorder{})
	b := net.AddProcess(&recorder{})
	net.Send(a, b, testMsg{kind: "m"})
	net.Run(0)
	net.ResetStats()
	if st := net.Stats(); st.Delivered != 0 || len(st.MessagesByKind) != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
}

func TestStatsSnapshotIsolation(t *testing.T) {
	net := New(FixedLatency(time.Millisecond), 1)
	a := net.AddProcess(&recorder{})
	b := net.AddProcess(&recorder{})
	net.Send(a, b, testMsg{kind: "m"})
	net.Run(0)
	snap := net.Stats()
	snap.MessagesByKind["m"] = 999
	if net.Stats().MessagesByKind["m"] != 1 {
		t.Error("snapshot mutation leaked into live stats")
	}
}

func TestBandwidthDelay(t *testing.T) {
	net := New(FixedLatency(10*time.Millisecond), 1)
	net.SetBandwidth(1 << 20) // 1 MB/s
	rb := &recorder{}
	a := net.AddProcess(&recorder{})
	b := net.AddProcess(rb)
	net.Send(a, b, testMsg{kind: "bulk", size: 2 << 20}) // 2 MB -> 2 s
	net.Run(0)
	if got, want := net.Now(), 10*time.Millisecond+2*time.Second; got != want {
		t.Errorf("bulk delivery at %v, want %v", got, want)
	}
	// Small messages stay cheap.
	net.Send(a, b, testMsg{kind: "ctl", size: 100})
	net.Run(0)
	if extra := net.Now() - (10*time.Millisecond + 2*time.Second); extra > 15*time.Millisecond {
		t.Errorf("control message took %v", extra)
	}
	// Disabling restores pure latency.
	net.SetBandwidth(0)
	before := net.Now()
	net.Send(a, b, testMsg{kind: "bulk", size: 2 << 20})
	net.Run(0)
	if net.Now()-before != 10*time.Millisecond {
		t.Errorf("disabled bandwidth still delayed: %v", net.Now()-before)
	}
	net.SetBandwidth(-5) // negative clamps to off
	before = net.Now()
	net.Send(a, b, testMsg{kind: "bulk", size: 1 << 20})
	net.Run(0)
	if net.Now()-before != 10*time.Millisecond {
		t.Error("negative bandwidth not clamped")
	}
}

func TestUnknownAddressPanics(t *testing.T) {
	net := New(FixedLatency(time.Millisecond), 1)
	net.AddProcess(&recorder{})
	for _, fn := range []func(){
		func() { net.Send(0, 5, testMsg{kind: "m"}) },
		func() { net.Kill(9) },
		func() { net.CutLink(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
