package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"p2pshare/internal/catalog"

	"p2pshare/internal/chord"
	"p2pshare/internal/core"
	"p2pshare/internal/fairness"
	"p2pshare/internal/gnutella"
	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/replica"
	"p2pshare/internal/trace"
	"p2pshare/internal/workload"
)

// overlayScale shrinks a scale's node count for message-level simulation:
// the paper-scale instance has 20 000 nodes, which the discrete-event
// simulator handles, but hop statistics converge with far fewer queries
// than full scale requires. The content shape is preserved.
func overlayScale(s Scale) model.Config {
	cfg := s.Config()
	if s == ScalePaper {
		// Keep the cluster structure but a tractable message volume.
		cfg.Catalog.NumDocs = 60000
		cfg.NumNodes = 6000
		cfg.Catalog.NumCats = 500
		cfg.NumClusters = 100
	} else {
		cfg.Catalog.NumDocs = 6000
		cfg.NumNodes = 600
		cfg.Catalog.NumCats = 120
		cfg.NumClusters = 24
	}
	return cfg
}

// buildOverlay assembles instance → MaxFair → placement → overlay.
func buildOverlay(cfg model.Config, seed int64) (*overlay.System, *model.Instance, []model.ClusterID, error) {
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		return nil, nil, nil, err
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Seed = seed
	sys, err := overlay.NewSystem(inst, res.Assignment, place, ocfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, inst, res.Assignment, nil
}

// QueryHopsResult reports the §3.3 response-time experiment.
type QueryHopsResult struct {
	Queries   int
	Completed int
	Failed    int
	// Hops statistics over completed queries.
	MeanHops, P95Hops, MaxHops float64
	// ResponseMs statistics over completed queries (simulated
	// wide-area latencies, 10–100 ms per message).
	MeanResponseMs, P95ResponseMs float64
	// LargestCluster is the worst-case §3.3 hop bound.
	LargestCluster int
	// IntraFairness is the mean Jain index of served load within
	// multi-node clusters.
	IntraFairness float64
}

// QueryHops runs a popularity-faithful query workload over the full
// overlay and measures hops, response times, and intra-cluster load
// spread — the paper's §3.3 claims: few hops in the common case, a
// cluster-size worst-case bound, and balanced load via random target
// selection.
func QueryHops(scale Scale, queries int, seed int64) (*QueryHopsResult, error) {
	if queries <= 0 {
		queries = 2000
	}
	sys, inst, assign, err := buildOverlay(overlayScale(scale), seed)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(inst, 3, seed+7)
	if err != nil {
		return nil, err
	}
	type issued struct {
		origin model.NodeID
		id     uint64
	}
	all := make([]issued, 0, queries)
	for i := 0; i < queries; i++ {
		q := gen.Next()
		id := sys.IssueQuery(q.Origin, q.Category, q.M)
		all = append(all, issued{q.Origin, id})
	}
	if err := sys.Run(); err != nil {
		return nil, err
	}
	var hops, resp metrics.Histogram
	completed := 0
	for _, q := range all {
		rep, ok := sys.QueryReport(q.origin, q.id)
		if !ok || !rep.Done {
			continue
		}
		completed++
		hops.Observe(float64(rep.Hops))
		resp.ObserveDuration(rep.ResponseTime)
	}
	// Cluster sizes and intra-cluster fairness from membership truth.
	mem, err := model.NewMembership(inst, assign)
	if err != nil {
		return nil, err
	}
	largest := 0
	var fsum float64
	fn := 0
	served := sys.ServedLoads()
	for c := range mem.ClusterNodes {
		nodes := mem.ClusterNodes[c]
		if len(nodes) > largest {
			largest = len(nodes)
		}
		if len(nodes) < 2 {
			continue
		}
		xs := make([]float64, len(nodes))
		for i, n := range nodes {
			xs[i] = served[n]
		}
		fsum += fairness.Jain(xs)
		fn++
	}
	res := &QueryHopsResult{
		Queries:        queries,
		Completed:      completed,
		Failed:         sys.FailedQueries(),
		MeanHops:       hops.Mean(),
		P95Hops:        hops.Quantile(0.95),
		MaxHops:        hops.Max(),
		MeanResponseMs: resp.Mean(),
		P95ResponseMs:  resp.Quantile(0.95),
		LargestCluster: largest,
	}
	if fn > 0 {
		res.IntraFairness = fsum / float64(fn)
	}
	return res, nil
}

// RoutingRow compares object-location cost across systems.
type RoutingRow struct {
	System string
	// MeanHops to reach a node holding the requested document.
	MeanHops float64
	// MeanMessages per query (flooding cost for Gnutella; hops+1 for the
	// point-to-point systems).
	MeanMessages float64
	// SuccessRate is the fraction of requests that found the document.
	SuccessRate float64
}

// RoutingComparison pits the paper's architecture against Chord lookups
// and Gnutella TTL flooding for locating a popularity-sampled document —
// the quantified form of §2's response-time argument.
func RoutingComparison(scale Scale, queries int, seed int64) ([]RoutingRow, error) {
	if queries <= 0 {
		queries = 1500
	}
	cfg := overlayScale(scale)

	// Ours: hop count of the first completed result per query.
	sys, inst, _, err := buildOverlay(cfg, seed)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(inst, 1, seed+7)
	if err != nil {
		return nil, err
	}
	type issued struct {
		origin model.NodeID
		id     uint64
	}
	all := make([]issued, 0, queries)
	for i := 0; i < queries; i++ {
		q := gen.Next()
		all = append(all, issued{q.Origin, sys.IssueQuery(q.Origin, q.Category, 1)})
	}
	if err := sys.Run(); err != nil {
		return nil, err
	}
	var ours metrics.Histogram
	oursDone := 0
	for _, q := range all {
		if rep, ok := sys.QueryReport(q.origin, q.id); ok && rep.Done {
			oursDone++
			ours.Observe(float64(rep.Hops))
		}
	}
	rows := []RoutingRow{{
		System:       "p2pshare (this paper)",
		MeanHops:     ours.Mean(),
		MeanMessages: ours.Mean() + 1,
		SuccessRate:  float64(oursDone) / float64(queries),
	}}

	// Chord: O(log N) lookup to the single hash-placed owner.
	ring, err := chord.New(cfg.NumNodes)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 13))
	gen2, err := workload.NewGenerator(inst, 1, seed+7)
	if err != nil {
		return nil, err
	}
	var chordHops metrics.Histogram
	for i := 0; i < queries; i++ {
		q := gen2.Next()
		// The query targets a document of the sampled category; pick one
		// of its documents by the same popularity logic.
		docs := inst.Catalog.Cats[q.Category].Docs
		d := docs[rng.Intn(len(docs))]
		_, hops := ring.Lookup(chord.DocKey(int(d)), rng.Intn(ring.N()))
		chordHops.Observe(float64(hops))
	}
	rows = append(rows, RoutingRow{
		System:       "chord (DHT)",
		MeanHops:     chordHops.Mean(),
		MeanMessages: chordHops.Mean() + 1,
		SuccessRate:  1, // structured overlays always locate stored keys
	})

	// Gnutella: TTL-bounded flooding to any contributor of the document.
	over, err := gnutella.New(cfg.NumNodes, 5, rng)
	if err != nil {
		return nil, err
	}
	gen3, err := workload.NewGenerator(inst, 1, seed+7)
	if err != nil {
		return nil, err
	}
	const ttl = 7 // Gnutella's classic default TTL
	var gHops, gMsgs metrics.Histogram
	found := 0
	for i := 0; i < queries; i++ {
		q := gen3.Next()
		docs := inst.Catalog.Cats[q.Category].Docs
		d := docs[rng.Intn(len(docs))]
		holders := map[int]bool{int(inst.Contributors[d]): true}
		res := over.Search(int(q.Origin)%over.N(), ttl, holders)
		gMsgs.Observe(float64(res.Messages))
		if res.Found {
			found++
			gHops.Observe(float64(res.Hops))
		}
	}
	rows = append(rows, RoutingRow{
		System:       "gnutella (flooding, ttl=7)",
		MeanHops:     gHops.Mean(),
		MeanMessages: gMsgs.Mean(),
		SuccessRate:  float64(found) / float64(queries),
	})
	return rows, nil
}

// DynamicEpoch is one epoch of the end-to-end dynamic experiment.
type DynamicEpoch struct {
	Epoch int
	// MeasuredFairness is the fairness of measured normalized loads at
	// the end of the epoch's workload, before any rebalancing.
	MeasuredFairness float64
	// AfterFairness is the (estimated) fairness after adaptation; equal
	// to MeasuredFairness with adaptation off or no rebalance needed.
	AfterFairness float64
	// PlannedFairness is the ground-truth quality of the *current*
	// assignment against the current catalog popularities (the planning
	// formula of §4.3.3), evaluated after any adaptation this epoch.
	PlannedFairness float64
	Moves           int
	TransferMB      float64
}

// DynamicResult is the full §6 end-to-end run.
type DynamicResult struct {
	Adaptive bool
	Epochs   []DynamicEpoch
	// MinMeasured is the worst measured fairness across epochs.
	MinMeasured float64
}

// DynamicAdaptation drives epochs of workload over the live overlay with
// a persistent demand shift: epoch 0 runs the demand MaxFair planned for;
// at epoch 1 content popularity re-ranks at the category level (§6.1's
// "content popularity varies" trigger — the same upheaval Figure 5 uses)
// and STAYS shifted, and a flash crowd of new documents is published live
// through the §6.2 protocol for good measure. Without adaptation the old
// assignment serves the new demand badly for every remaining epoch; with
// adaptation the epoch-1 round rebalances. This demonstrates the §6
// machinery keeping inter-cluster fairness high on the fly.
func DynamicAdaptation(scale Scale, epochs, queriesPerEpoch int, adaptive bool, seed int64) (*DynamicResult, error) {
	if epochs <= 0 {
		epochs = 4
	}
	cfg := overlayScale(scale)
	if queriesPerEpoch <= 0 {
		// Enough samples per cluster that the measured fairness reflects
		// demand, not sampling noise.
		queriesPerEpoch = 50 * cfg.NumClusters
	}
	sys, inst, _, err := buildOverlay(cfg, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 99))
	out := &DynamicResult{Adaptive: adaptive, MinMeasured: 1}
	for e := 0; e < epochs; e++ {
		if e == 1 {
			// The persistent demand upheaval plus a live flash crowd.
			inst.Catalog.ShiftCategoryPopularity(0.8, rng)
			ids, err := workload.FlashCrowd(inst, 0.02, 0.10, rng)
			if err != nil {
				return nil, err
			}
			for _, d := range ids {
				if err := sys.Publish(inst.Contributors[d], d); err != nil {
					return nil, err
				}
			}
			if err := sys.Run(); err != nil {
				return nil, err
			}
		}
		gen, err := workload.NewGenerator(inst, 1, seed+int64(e)*31)
		if err != nil {
			return nil, err
		}
		for i := 0; i < queriesPerEpoch; i++ {
			q := gen.Next()
			sys.IssueQuery(q.Origin, q.Category, q.M)
		}
		if err := sys.Run(); err != nil {
			return nil, err
		}
		ep := DynamicEpoch{Epoch: e}
		ep.MeasuredFairness = fairness.Jain(sys.MeasuredNormalizedLoads())
		ep.AfterFairness = ep.MeasuredFairness
		if adaptive {
			rep, err := sys.RunAdaptation(4)
			if err != nil {
				return nil, err
			}
			if rep.Rebalanced {
				ep.AfterFairness = rep.FairnessAfter
				ep.Moves = len(rep.Moves)
				ep.TransferMB = float64(rep.TransferBytes) / (1 << 20)
			}
		}
		planned, err := assignmentFairness(inst, sys.Assignment())
		if err != nil {
			return nil, err
		}
		ep.PlannedFairness = planned
		if ep.MeasuredFairness < out.MinMeasured {
			out.MinMeasured = ep.MeasuredFairness
		}
		out.Epochs = append(out.Epochs, ep)
		sys.ResetHitCounters()
	}
	return out, nil
}

// assignmentFairness evaluates an assignment's fairness against the
// instance's current popularities using the §4.3.3 planning formula.
func assignmentFairness(inst *model.Instance, assign []model.ClusterID) (float64, error) {
	st, err := core.NewState(inst)
	if err != nil {
		return 0, err
	}
	for c, cl := range assign {
		if cl == model.NoCluster {
			continue
		}
		if err := st.Assign(catalog.CategoryID(c), cl); err != nil {
			return 0, err
		}
	}
	return st.Fairness(), nil
}

// RebalanceCostResult measures the lazy rebalancing protocol's actual
// traffic in the live overlay (the simulated counterpart of the §6.1.3
// example).
type RebalanceCostResult struct {
	// MeasuredFairness is what the chosen leader saw before rebalancing.
	MeasuredFairness float64
	Moves            int
	TransferCount    int
	TransferMB       float64
	MeanTransferMB   float64
	// ActiveFraction is the share of nodes engaged in a transfer.
	ActiveFraction float64
	// CompletionSeconds is the simulated time from the start of the
	// adaptation round until the last bulk transfer lands, under a
	// 10 MB/s per-link bandwidth model — the paper's point that the big
	// rebalancing moves as many parallel "routine-sized" downloads.
	CompletionSeconds float64
}

// RebalanceCost skews the workload onto one cluster, runs an adaptation
// round, and reports the transfer traffic the lazy rebalancing protocol
// generated.
func RebalanceCost(scale Scale, seed int64) (*RebalanceCostResult, error) {
	sys, inst, assign, err := buildOverlay(overlayScale(scale), seed)
	if err != nil {
		return nil, err
	}
	// Skew: all queries target one cluster's categories. Pick the cluster
	// hosting the most categories — a single-category cluster could not
	// be rebalanced at category granularity at all (the §7(vi) open
	// problem), which would make the measurement trivially empty.
	counts := make([]int, inst.NumClusters)
	for _, cl := range assign {
		if cl != model.NoCluster {
			counts[cl]++
		}
	}
	hottest := model.ClusterID(0)
	for c, n := range counts {
		if n > counts[hottest] {
			hottest = model.ClusterID(c)
		}
	}
	var hotCats []int
	for c, cl := range assign {
		if cl == hottest {
			hotCats = append(hotCats, c)
		}
	}
	if len(hotCats) == 0 {
		return nil, fmt.Errorf("experiments: hottest cluster has no categories")
	}
	queries := 30 * sys.NumPeers() / 10
	for i := 0; i < queries; i++ {
		origin := model.NodeID(i % sys.NumPeers())
		sys.IssueQuery(origin, catalog.CategoryID(hotCats[i%len(hotCats)]), 1)
	}
	if err := sys.Run(); err != nil {
		return nil, err
	}
	// Bulk transfers pay transmission time at 10 MB/s per link; the
	// recorder timestamps each one so we can report when the rebalancing
	// data movement actually finished.
	sys.Net().SetBandwidth(10 << 20)
	rec := trace.NewRecorder()
	sys.Net().SetObserver(rec)
	start := sys.Net().Now()
	rep, err := sys.RunAdaptation(4)
	if err != nil {
		return nil, err
	}
	sys.Net().SetObserver(nil)
	sys.Net().SetBandwidth(0)
	res := &RebalanceCostResult{
		MeasuredFairness: rep.MeasuredFairness,
		Moves:            len(rep.Moves),
		TransferCount:    rep.TransferCount,
		TransferMB:       float64(rep.TransferBytes) / (1 << 20),
	}
	if rep.TransferCount > 0 {
		res.MeanTransferMB = res.TransferMB / float64(rep.TransferCount)
	}
	res.ActiveFraction = float64(rep.EngagedNodes) / float64(sys.NumPeers())
	var last time.Duration
	for _, e := range rec.ByKind("transfer") {
		if e.At > last {
			last = e.At
		}
	}
	if last > start {
		res.CompletionSeconds = (last - start).Seconds()
	}
	return res, nil
}
