// Package experiments contains one runner per figure/table of the paper's
// evaluation, plus the in-text claims promoted to experiments (see
// DESIGN.md §4 for the index). Runners are shared by cmd/experiments and
// the repository-root benchmarks; every runner is deterministic for a
// given configuration.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"p2pshare/internal/baseline"
	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
	"p2pshare/internal/replica"
	"p2pshare/internal/workload"
	"p2pshare/internal/zipf"
)

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleSmall is a laptop-friendly configuration with the paper's
	// shape (used by tests).
	ScaleSmall Scale = iota
	// ScalePaper is the full §4.4 configuration: 200 000 documents,
	// 20 000 nodes, 100 clusters, 500 categories.
	ScalePaper
)

// Config returns the model configuration for a scale.
func (s Scale) Config() model.Config {
	switch s {
	case ScalePaper:
		return model.PaperConfig()
	default:
		return model.DefaultConfig()
	}
}

func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "small"
}

// ClusterSeries is the per-cluster normalized popularity series plotted in
// Figures 2 and 3.
type ClusterSeries struct {
	// Name identifies the experiment ("figure2", "figure3").
	Name string
	// Fairness is Jain's index over NormPops (the figure captions report
	// 0.981903 and 0.974958 respectively).
	Fairness float64
	// NormPops is indexed by cluster id.
	NormPops []float64
}

// Figure2 reproduces the paper's Figure 2: MaxFair normalized cluster
// popularities under the "worst case" scenario — documents assigned to
// categories by a Zipf(θ=0.7) category pmf (yielding a spiky Zipf-like
// category popularity distribution), document popularity Zipf(θ=0.8).
func Figure2(scale Scale, seed int64) (*ClusterSeries, error) {
	cfg := scale.Config()
	cfg.Seed = seed
	cfg.Catalog.CatAssign = catalog.AssignZipf
	cfg.Catalog.ThetaCats = 0.7
	cfg.Catalog.ThetaDocs = 0.8
	return clusterSeries("figure2", cfg)
}

// Figure3 reproduces Figure 3: the same system with documents assigned to
// categories uniformly at random (near-uniform category popularities).
func Figure3(scale Scale, seed int64) (*ClusterSeries, error) {
	cfg := scale.Config()
	cfg.Seed = seed
	cfg.Catalog.CatAssign = catalog.AssignUniform
	cfg.Catalog.ThetaDocs = 0.8
	return clusterSeries("figure3", cfg)
}

func clusterSeries(name string, cfg model.Config) (*ClusterSeries, error) {
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, err
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		return nil, err
	}
	return &ClusterSeries{
		Name:     name,
		Fairness: res.Fairness,
		NormPops: res.NormalizedPopularities,
	}, nil
}

// parallelIndexed runs f(0..n-1) on a bounded worker pool and returns
// the first error (by index order none is guaranteed — runners treat any
// error as fatal). Each index must be self-contained: runners that
// parallelize derive every random source from the index and the caller's
// seed, so results are bit-identical to a serial loop regardless of
// scheduling.
func parallelIndexed(n int, f func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := f(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstErr
}

// Figure4Point is one θ of the Figure 4 robustness sweep.
type Figure4Point struct {
	Theta   float64
	Initial float64
	Final   float64
}

// Figure4 reproduces Figure 4: for each category-popularity θ, run
// MaxFair, then add 5% new documents carrying 30% of the total popularity
// mass (randomly assigned to categories, contributed by random nodes) and
// re-evaluate the *old* assignment without re-running MaxFair. The paper
// reports the final fairness staying above ≈0.78 in the worst case.
func Figure4(scale Scale, thetas []float64, seed int64) ([]Figure4Point, error) {
	if len(thetas) == 0 {
		thetas = []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	}
	// Each θ is an independent world (own instance and rng derived only
	// from the caller's seed), so the sweep runs on all cores with
	// bit-identical results to the former serial loop.
	out := make([]Figure4Point, len(thetas))
	err := parallelIndexed(len(thetas), func(i int) error {
		theta := thetas[i]
		cfg := scale.Config()
		cfg.Seed = seed
		cfg.Catalog.CatAssign = catalog.AssignZipf
		cfg.Catalog.ThetaCats = theta
		cfg.Catalog.ThetaDocs = 0.8
		inst, err := model.Generate(cfg)
		if err != nil {
			return err
		}
		res, err := core.MaxFair(inst, core.Options{})
		if err != nil {
			return err
		}
		initial := res.Fairness

		// §5 stress test: +5% documents, 30% of the popularity mass.
		rng := rand.New(rand.NewSource(seed + 1))
		if _, err := workload.FlashCrowd(inst, 0.05, 0.30, rng); err != nil {
			return err
		}
		if err := res.State.Rebuild(inst); err != nil {
			return err
		}
		out[i] = Figure4Point{Theta: theta, Initial: initial, Final: res.State.Fairness()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure5Run is one experiment of Figure 5: the fairness trajectory of
// MaxFair_Reassign, point 0 being the post-perturbation fairness.
type Figure5Run struct {
	Trajectory []float64
	Moves      int
}

// Figure5 reproduces Figure 5: five experiments with Zipf(0.8) document
// AND category popularity; after a content-popularity upheaval,
// MaxFair_Reassign rebalances with upper threshold 0.92. The paper
// observes fairness climbing from ≈0.84 over 7–8 reassignments.
//
// Perturbation note: the paper perturbs by adding documents worth 30% of
// the popularity mass. Under this repository's faithful §4.3.3 model that
// perturbation is partially self-damping — a contributor's compute units
// follow its stored popularity, so new hot documents bring capacity along
// with demand — and fairness rarely falls below the rebalancing
// threshold. We therefore use the paper's other §6.1 trigger, content
// popularity variation: category popularities re-rank under a fresh
// Zipf(0.8), which reproduces the figure's observable shape (initial
// fairness in the 0.75–0.85 range, ≈1% gained per move, target reached
// within a handful of moves).
func Figure5(scale Scale, runs int, seed int64) ([]Figure5Run, error) {
	if runs <= 0 {
		runs = 5
	}
	// Runs are independent experiments (each derives its world and rng
	// from seed + r*101 alone), so they run on all cores with results
	// identical to the former serial loop.
	out := make([]Figure5Run, runs)
	err := parallelIndexed(runs, func(r int) error {
		cfg := scale.Config()
		cfg.Seed = seed + int64(r)*101
		cfg.Catalog.CatAssign = catalog.AssignZipf
		cfg.Catalog.ThetaCats = 0.8
		cfg.Catalog.ThetaDocs = 0.8
		inst, err := model.Generate(cfg)
		if err != nil {
			return err
		}
		res, err := core.MaxFair(inst, core.Options{})
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		inst.Catalog.ShiftCategoryPopularity(0.8, rng)
		if err := res.State.Rebuild(inst); err != nil {
			return err
		}
		traj := []float64{res.State.Fairness()}
		moves, err := core.MaxFairReassign(res.State, core.ReassignOptions{
			TargetFairness: 0.92,
			MaxMoves:       64,
		})
		if err != nil {
			return err
		}
		for _, mv := range moves {
			traj = append(traj, mv.FairnessAfter)
		}
		out[r] = Figure5Run{Trajectory: traj, Moves: len(moves)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScalingRow is one (clusters, categories) cell of the §4.4 scaling
// discussion.
type ScalingRow struct {
	Clusters   int
	Categories int
	Fairness   float64
}

// ScalingTable reproduces the §4.4 in-text scaling claims: fairness
// improves with more categories and clusters, exceeds 0.90 even at the
// small (50 clusters, 200 categories) point, and exceeds 0.95 at the
// paper's operating point.
func ScalingTable(scale Scale, seed int64) ([]ScalingRow, error) {
	type cell struct{ clusters, cats int }
	cells := []cell{
		{50, 200}, {50, 500}, {100, 200}, {100, 500}, {200, 500}, {100, 1000},
	}
	out := make([]ScalingRow, 0, len(cells))
	for _, c := range cells {
		cfg := scale.Config()
		cfg.Seed = seed
		cfg.NumClusters = c.clusters
		cfg.Catalog.NumCats = c.cats
		inst, err := model.Generate(cfg)
		if err != nil {
			return nil, err
		}
		res, err := core.MaxFair(inst, core.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingRow{Clusters: c.clusters, Categories: c.cats, Fairness: res.Fairness})
	}
	return out, nil
}

// StorageExampleResult mirrors the paper's §4.3.3 worked example.
type StorageExampleResult struct {
	// Inputs.
	Docs, Nodes, Categories, Clusters int
	DocsPerCategory, NReps            int
	DocSize                           int64
	NodesPerCluster                   int
	HotFraction                       float64
	// Outputs.
	SizePerCategory    int64 // n_docs × n_reps × size_of_doc
	BaseBytesPerNode   int64 // SizePerCategory / nodes-per-cluster
	HotBytesPerNode    int64 // m hot docs replicated everywhere
	PerCategoryPerNode int64
	CategoriesPerNode  float64
	TotalPerNode       int64
}

// StorageExample recomputes the §4.3.3 example: 2M documents, 200k nodes,
// 2000 categories, 500 clusters, 1000 docs/category, 5 replicas, 4MB
// documents, 200-node clusters, 10% hot documents. The paper arrives at
// 500 MB per node per category and ≈2 GB total per node.
func StorageExample() StorageExampleResult {
	r := StorageExampleResult{
		Docs: 2_000_000, Nodes: 200_000, Categories: 2000, Clusters: 500,
		DocsPerCategory: 1000, NReps: 5, DocSize: 4 << 20,
		NodesPerCluster: 200, HotFraction: 0.10,
	}
	r.SizePerCategory = int64(r.DocsPerCategory) * int64(r.NReps) * r.DocSize
	r.BaseBytesPerNode = r.SizePerCategory / int64(r.NodesPerCluster)
	hotDocs := int64(float64(r.DocsPerCategory) * r.HotFraction)
	r.HotBytesPerNode = hotDocs * r.DocSize
	r.PerCategoryPerNode = r.BaseBytesPerNode + r.HotBytesPerNode
	r.CategoriesPerNode = float64(r.Categories) / float64(r.Clusters)
	r.TotalPerNode = int64(r.CategoriesPerNode * float64(r.PerCategoryPerNode))
	return r
}

// TransferExampleResult mirrors the paper's §6.1.3 rebalancing example.
type TransferExampleResult struct {
	// Inputs.
	Nodes, Clusters, NodesPerCluster int
	ReassignedCategories, DocsPerCat int
	Replicas                         int
	DocSize                          int64
	// Outputs.
	BytesPerCategory int64 // docs × size × replicas
	BytesPerPair     int64 // BytesPerCategory / nodes-per-cluster
	PairsEngaged     int
	ActiveFraction   float64
}

// TransferExample recomputes the §6.1.3 example: 200k nodes in 400
// clusters of 500; 10 categories of 1000 4MB documents, 2 replicas each,
// are reassigned. The paper arrives at 8 GB per category, split into 500
// transfers of 16 MB, with up to 5000 node pairs engaged — 2.5% of the
// population.
func TransferExample() TransferExampleResult {
	r := TransferExampleResult{
		Nodes: 200_000, Clusters: 400, NodesPerCluster: 500,
		ReassignedCategories: 10, DocsPerCat: 1000, Replicas: 2,
		DocSize: 4 << 20,
	}
	r.BytesPerCategory = int64(r.DocsPerCat) * r.DocSize * int64(r.Replicas)
	r.BytesPerPair = r.BytesPerCategory / int64(r.NodesPerCluster)
	r.PairsEngaged = r.ReassignedCategories * r.NodesPerCluster
	r.ActiveFraction = float64(2*r.PairsEngaged) / float64(r.Nodes)
	return r
}

// CoverageRow is one (θ, n) cell of the §4.3.3 mass-coverage claim.
type CoverageRow struct {
	Theta float64
	Docs  int
	// TopFraction is the fraction of documents needed to cover 35% of
	// the probability mass. The paper claims < 10%.
	TopFraction float64
}

// MassCoverage verifies the §4.3.3 claim across realistic Zipf parameters.
func MassCoverage() []CoverageRow {
	var out []CoverageRow
	for _, theta := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		for _, n := range []int{10_000, 200_000, 2_000_000} {
			p := zipf.Popularities(n, theta)
			k := zipf.CoverageCount(p, 0.35)
			out = append(out, CoverageRow{Theta: theta, Docs: n, TopFraction: float64(k) / float64(n)})
		}
	}
	return out
}

// AssignerRow compares one category→cluster assigner.
type AssignerRow struct {
	Name     baseline.Name
	Fairness float64
	// MaxOverMean is the peak normalized popularity over the mean — the
	// hot-spot factor.
	MaxOverMean float64
}

// AssignerComparison runs MaxFair against the baseline assigners on one
// instance — the quantitative form of the paper's §2 argument that
// hash-uniform (DHT-style) placement balances load naively.
func AssignerComparison(scale Scale, seed int64) ([]AssignerRow, error) {
	cfg := scale.Config()
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	names := []baseline.Name{
		baseline.NameMaxFair, baseline.NameLPT, baseline.NameHash,
		baseline.NameRandom, baseline.NameRoundRobin,
	}
	out := make([]AssignerRow, 0, len(names))
	for _, name := range names {
		res, err := baseline.Run(name, inst, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, AssignerRow{
			Name:        name,
			Fairness:    res.Fairness,
			MaxOverMean: maxOverMean(res.NormalizedPopularities),
		})
	}
	return out, nil
}

func maxOverMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, max float64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	return max / mean
}

// ReplicaBalanceRow is one hot-mass setting of the intra-cluster policy
// sweep.
type ReplicaBalanceRow struct {
	HotMass float64
	// MeanIntraFairness averages Jain's index over the stored popularity
	// of each multi-node cluster's members.
	MeanIntraFairness float64
	MinIntraFairness  float64
	// MaxStoredBytes is the heaviest node's storage footprint.
	MaxStoredBytes int64
	CapacityDrops  int
}

// ReplicaBalance sweeps the §4.3.3 replica placement policy's hot-mass
// threshold and reports intra-cluster load fairness and storage cost. The
// paper uses 35%; the sweep is the DESIGN.md ablation.
func ReplicaBalance(scale Scale, hotMasses []float64, seed int64) ([]ReplicaBalanceRow, error) {
	if len(hotMasses) == 0 {
		hotMasses = []float64{0, 0.15, 0.35, 0.5}
	}
	cfg := scale.Config()
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, err
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		return nil, err
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		return nil, err
	}
	out := make([]ReplicaBalanceRow, 0, len(hotMasses))
	for _, hm := range hotMasses {
		rcfg := replica.DefaultConfig()
		rcfg.HotMass = hm
		place, err := replica.Place(inst, res.Assignment, mem, rcfg)
		if err != nil {
			return nil, err
		}
		fs := place.IntraClusterFairness(mem)
		var sum float64
		min := 1.0
		n := 0
		for c, f := range fs {
			if len(mem.ClusterNodes[c]) < 2 {
				continue
			}
			sum += f
			if f < min {
				min = f
			}
			n++
		}
		row := ReplicaBalanceRow{
			HotMass:        hm,
			MaxStoredBytes: place.MaxStoredBytes(),
			CapacityDrops:  place.CapacityDrops,
		}
		if n > 0 {
			row.MeanIntraFairness = sum / float64(n)
			row.MinIntraFairness = min
		}
		out = append(out, row)
	}
	return out, nil
}

// GapRow is one instance of the MaxFair-vs-exact comparison.
type GapRow struct {
	Instance int
	Greedy   float64
	Exact    float64
}

// OptimalityGap compares MaxFair to exhaustive search on tiny instances
// (ICLB is NP-complete, §4.2, so exact solutions exist only at toy scale).
func OptimalityGap(trials int, seed int64) ([]GapRow, error) {
	if trials <= 0 {
		trials = 5
	}
	out := make([]GapRow, 0, trials)
	for i := 0; i < trials; i++ {
		cfg := model.DefaultConfig()
		cfg.Catalog.NumDocs = 80
		cfg.Catalog.NumCats = 9
		cfg.NumNodes = 25
		cfg.NumClusters = 3
		cfg.Seed = seed + int64(i)*17
		inst, err := model.Generate(cfg)
		if err != nil {
			return nil, err
		}
		exact, err := core.ExactMaxFair(inst)
		if err != nil {
			return nil, err
		}
		greedy, err := core.MaxFair(inst, core.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, GapRow{Instance: i, Greedy: greedy.Fairness, Exact: exact.Fairness})
	}
	return out, nil
}

// OrderingRow is one category-consideration-order ablation cell.
type OrderingRow struct {
	Order    core.Order
	Fairness float64
}

// OrderingAblation compares MaxFair's category consideration orders (the
// paper does not fix one; DESIGN.md calls the choice out as an ablation).
func OrderingAblation(scale Scale, seed int64) ([]OrderingRow, error) {
	cfg := scale.Config()
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	orders := []core.Order{core.OrderPopularityDesc, core.OrderPopularityAsc, core.OrderRandom, core.OrderGiven}
	out := make([]OrderingRow, 0, len(orders))
	for _, o := range orders {
		res, err := core.MaxFair(inst, core.Options{Order: o, Rng: rng})
		if err != nil {
			return nil, err
		}
		out = append(out, OrderingRow{Order: o, Fairness: res.Fairness})
	}
	return out, nil
}

// VerifyFairnessConsistency is a harness self-check: the state engine's
// fairness must equal a from-scratch Jain computation over its normalized
// popularities. Returns an error on drift beyond tolerance.
func VerifyFairnessConsistency(res *core.Result) error {
	batch := fairness.Jain(res.NormalizedPopularities)
	if diff := res.Fairness - batch; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("experiments: engine fairness %g != batch %g", res.Fairness, batch)
	}
	return nil
}
