package experiments

import (
	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/model"
)

// GranularityRow is one step of the §7(vi) category-splitting study.
type GranularityRow struct {
	// Pieces the hot category's demand is divided into (1 = unsplit).
	Pieces int
	// Fairness reached by MaxFair_Reassign at this granularity.
	Fairness float64
	// Moves the rebalancer needed.
	Moves int
}

// GranularityStudy addresses the paper's §7(vi) open question ("the
// optimal granularity — whether nodes, documents, or whole categories
// should be moved").
//
// At the *planning* level the §4.3.3 formulation self-balances: a
// category's contributors bring capacity proportional to its content, so
// even a 30%-share category places fine. The granularity limit binds in
// *measured* load states — the ones the §6.1 adaptation actually
// rebalances — where demand (hit counters) is decoupled from stored
// capacity: a flash topic can concentrate most of the demand in one
// category, and no assignment of whole categories can split that demand
// across clusters, capping the achievable fairness well below 1.
//
// Splitting the category (refining the document grouping, which the
// paper's hash-based grouping permits) divides its demand and lets
// MaxFair_Reassign spread the pieces. Each row splits the hot demand into
// more pieces and re-runs the rebalancer on the measured state.
func GranularityStudy(scale Scale, maxPieces int, seed int64) ([]GranularityRow, error) {
	if maxPieces <= 0 {
		maxPieces = 8
	}
	cfg := scale.Config()
	cfg.Seed = seed
	cfg.NumClusters = 12
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, err
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		return nil, err
	}
	planner := res.State

	// The measured demand: the hottest category takes hotShare of all
	// hits (a flash topic); the rest follow their planned popularity.
	const hotShare = 0.6
	hot := largestCategory(inst)
	nCats := inst.CatCount()

	out := make([]GranularityRow, 0, maxPieces)
	for pieces := 1; pieces <= maxPieces; pieces++ {
		// Build the measured state: the hot category's demand and unit
		// mass divided into `pieces` synthetic subcategories (what
		// catalog.SplitCategory produces after the §6.2 republish),
		// everything else as planned.
		catPop := make([]float64, nCats+pieces-1)
		catUnits := make([]float64, nCats+pieces-1)
		assign := make([]model.ClusterID, nCats+pieces-1)
		var coldMass float64
		for c := 0; c < nCats; c++ {
			if catalog.CategoryID(c) != hot {
				coldMass += planner.CategoryPopularity(catalog.CategoryID(c))
			}
		}
		for c := 0; c < nCats; c++ {
			cid := catalog.CategoryID(c)
			assign[c] = res.Assignment[c]
			if cid == hot {
				catPop[c] = hotShare / float64(pieces)
				catUnits[c] = planner.CategoryUnits(cid) / float64(pieces)
				continue
			}
			if coldMass > 0 {
				catPop[c] = (1 - hotShare) * planner.CategoryPopularity(cid) / coldMass
			}
			catUnits[c] = planner.CategoryUnits(cid)
		}
		for piece := 1; piece < pieces; piece++ {
			c := nCats + piece - 1
			catPop[c] = hotShare / float64(pieces)
			catUnits[c] = planner.CategoryUnits(hot) / float64(pieces)
			assign[c] = res.Assignment[hot] // splits start where the parent lives
		}
		st, err := core.NewStateFromMeasurements(cfg.NumClusters, catPop, catUnits, assign)
		if err != nil {
			return nil, err
		}
		moves, err := core.MaxFairReassign(st, core.ReassignOptions{TargetFairness: 0.95, MaxMoves: 64})
		if err != nil {
			return nil, err
		}
		out = append(out, GranularityRow{Pieces: pieces, Fairness: st.Fairness(), Moves: len(moves)})
	}
	return out, nil
}

func largestCategory(inst *model.Instance) catalog.CategoryID {
	best := catalog.CategoryID(0)
	for i := range inst.Catalog.Cats {
		if inst.Catalog.Cats[i].Popularity > inst.Catalog.Cats[best].Popularity {
			best = catalog.CategoryID(i)
		}
	}
	return best
}
