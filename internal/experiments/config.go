package experiments

import (
	"p2pshare/internal/core"
	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/replica"
	"p2pshare/internal/workload"
)

// ConfigRow is one point of the §7(ii) cluster-count sweep.
type ConfigRow struct {
	Clusters int
	// MeanClusterMembers is the average cluster membership (a node in
	// several clusters counts once per membership).
	MeanClusterMembers float64
	// Fairness is MaxFair's inter-cluster result.
	Fairness float64
	// MeanHops and P95Hops over a query workload.
	MeanHops, P95Hops float64
	// MaxStoredMB is the heaviest node's storage after replica placement.
	MaxStoredMB float64
}

// ConfigSweep explores the paper's §7(ii) open question — "optimal system
// configurations, in terms of the number of clusters versus the number of
// nodes per cluster" — by sweeping the cluster count at a fixed
// population. Fewer clusters mean larger worst-case search scope and more
// storage per node (more categories per cluster to replicate); more
// clusters mean a harder balancing problem and more routing state.
func ConfigSweep(scale Scale, clusterCounts []int, seed int64) ([]ConfigRow, error) {
	if len(clusterCounts) == 0 {
		clusterCounts = []int{6, 12, 24, 48, 96}
	}
	base := overlayScale(scale)
	out := make([]ConfigRow, 0, len(clusterCounts))
	for _, nc := range clusterCounts {
		cfg := base
		cfg.NumClusters = nc
		cfg.Seed = seed
		inst, err := model.Generate(cfg)
		if err != nil {
			return nil, err
		}
		res, err := core.MaxFair(inst, core.Options{})
		if err != nil {
			return nil, err
		}
		mem, err := model.NewMembership(inst, res.Assignment)
		if err != nil {
			return nil, err
		}
		place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
		if err != nil {
			return nil, err
		}
		ocfg := overlay.DefaultConfig()
		ocfg.Seed = seed
		sys, err := overlay.NewSystem(inst, res.Assignment, place, ocfg)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(inst, 3, seed+7)
		if err != nil {
			return nil, err
		}
		const queries = 800
		type issued struct {
			origin model.NodeID
			id     uint64
		}
		all := make([]issued, 0, queries)
		for i := 0; i < queries; i++ {
			q := gen.Next()
			all = append(all, issued{q.Origin, sys.IssueQuery(q.Origin, q.Category, q.M)})
		}
		if err := sys.Run(); err != nil {
			return nil, err
		}
		var hops metrics.Histogram
		for _, q := range all {
			if rep, ok := sys.QueryReport(q.origin, q.id); ok && rep.Done {
				hops.Observe(float64(rep.Hops))
			}
		}
		var members int
		for _, nodes := range mem.ClusterNodes {
			members += len(nodes)
		}
		out = append(out, ConfigRow{
			Clusters:           nc,
			MeanClusterMembers: float64(members) / float64(nc),
			Fairness:           res.Fairness,
			MeanHops:           hops.Mean(),
			P95Hops:            hops.Quantile(0.95),
			MaxStoredMB:        float64(place.MaxStoredBytes()) / (1 << 20),
		})
	}
	return out, nil
}

// PlacementRow compares the paper's hot-set policy with the §7(vii)
// proportional alternative.
type PlacementRow struct {
	Policy string
	// MeanIntraFairness over multi-node clusters.
	MeanIntraFairness float64
	MinIntraFairness  float64
	MaxStoredMB       float64
	TotalReplicas     int
	CapacityDrops     int
}

// PlacementComparison runs both intra-cluster placement policies on the
// same balanced instance — the §7(vii) open question ("alternative, more
// space-efficient document placement policies ... that guarantee
// intra-cluster load balancing") made measurable.
func PlacementComparison(scale Scale, seed int64) ([]PlacementRow, error) {
	cfg := scale.Config()
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, err
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		return nil, err
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		return nil, err
	}
	type policy struct {
		name string
		run  func() (*replica.Placement, error)
	}
	rcfg := replica.DefaultConfig()
	policies := []policy{
		{"hot-set 35% (paper)", func() (*replica.Placement, error) {
			return replica.Place(inst, res.Assignment, mem, rcfg)
		}},
		{"proportional (§7 vii)", func() (*replica.Placement, error) {
			return replica.PlaceProportional(inst, res.Assignment, mem, rcfg)
		}},
	}
	out := make([]PlacementRow, 0, len(policies))
	for _, pol := range policies {
		place, err := pol.run()
		if err != nil {
			return nil, err
		}
		fs := place.IntraClusterFairness(mem)
		var sum float64
		min := 1.0
		nMulti := 0
		for c, f := range fs {
			if len(mem.ClusterNodes[c]) < 2 {
				continue
			}
			sum += f
			if f < min {
				min = f
			}
			nMulti++
		}
		total := 0
		for _, r := range place.Replicas {
			total += r
		}
		row := PlacementRow{
			Policy:        pol.name,
			MaxStoredMB:   float64(place.MaxStoredBytes()) / (1 << 20),
			TotalReplicas: total,
			CapacityDrops: place.CapacityDrops,
		}
		if nMulti > 0 {
			row.MeanIntraFairness = sum / float64(nMulti)
			row.MinIntraFairness = min
		}
		out = append(out, row)
	}
	return out, nil
}
