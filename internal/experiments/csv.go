package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters: one per experiment, mirroring the renderers, so figure
// data can feed external plotting. Each writes a header row then data.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
func d(v int) string     { return strconv.Itoa(v) }

// ClusterSeriesCSV writes cluster,normalized_popularity rows (Figures 2/3).
func ClusterSeriesCSV(w io.Writer, s *ClusterSeries) error {
	rows := make([][]string, len(s.NormPops))
	for c, x := range s.NormPops {
		rows[c] = []string{d(c), f(x)}
	}
	return writeCSV(w, []string{"cluster", "normalized_popularity"}, rows)
}

// Figure4CSV writes theta,initial,final rows.
func Figure4CSV(w io.Writer, pts []Figure4Point) error {
	rows := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = []string{f(p.Theta), f(p.Initial), f(p.Final)}
	}
	return writeCSV(w, []string{"theta", "initial_fairness", "final_fairness"}, rows)
}

// Figure5CSV writes run,move,fairness rows (one row per trajectory point).
func Figure5CSV(w io.Writer, runs []Figure5Run) error {
	var rows [][]string
	for r, run := range runs {
		for m, fair := range run.Trajectory {
			rows = append(rows, []string{d(r + 1), d(m), f(fair)})
		}
	}
	return writeCSV(w, []string{"run", "reassigned_categories", "fairness"}, rows)
}

// ScalingCSV writes clusters,categories,fairness rows.
func ScalingCSV(w io.Writer, sr []ScalingRow) error {
	rows := make([][]string, len(sr))
	for i, r := range sr {
		rows[i] = []string{d(r.Clusters), d(r.Categories), f(r.Fairness)}
	}
	return writeCSV(w, []string{"clusters", "categories", "fairness"}, rows)
}

// CoverageCSV writes theta,docs,top_fraction rows.
func CoverageCSV(w io.Writer, cr []CoverageRow) error {
	rows := make([][]string, len(cr))
	for i, r := range cr {
		rows[i] = []string{f(r.Theta), d(r.Docs), f(r.TopFraction)}
	}
	return writeCSV(w, []string{"theta", "docs", "top_fraction_for_35pct"}, rows)
}

// AssignersCSV writes assigner,fairness,max_over_mean rows.
func AssignersCSV(w io.Writer, ar []AssignerRow) error {
	rows := make([][]string, len(ar))
	for i, r := range ar {
		rows[i] = []string{string(r.Name), f(r.Fairness), f(r.MaxOverMean)}
	}
	return writeCSV(w, []string{"assigner", "fairness", "max_over_mean"}, rows)
}

// RoutingCSV writes system,hops,messages,success rows.
func RoutingCSV(w io.Writer, rr []RoutingRow) error {
	rows := make([][]string, len(rr))
	for i, r := range rr {
		rows[i] = []string{r.System, f(r.MeanHops), f(r.MeanMessages), f(r.SuccessRate)}
	}
	return writeCSV(w, []string{"system", "mean_hops", "mean_messages", "success_rate"}, rows)
}

// ReplicaCSV writes the hot-mass sweep.
func ReplicaCSV(w io.Writer, rr []ReplicaBalanceRow) error {
	rows := make([][]string, len(rr))
	for i, r := range rr {
		rows[i] = []string{
			f(r.HotMass), f(r.MeanIntraFairness), f(r.MinIntraFairness),
			strconv.FormatInt(r.MaxStoredBytes, 10), d(r.CapacityDrops),
		}
	}
	return writeCSV(w, []string{"hot_mass", "mean_intra_fairness", "min_intra_fairness", "max_stored_bytes", "capacity_drops"}, rows)
}

// DynamicCSV writes per-epoch rows for both arms.
func DynamicCSV(w io.Writer, with, without *DynamicResult) error {
	var rows [][]string
	emit := func(r *DynamicResult, arm string) {
		for _, e := range r.Epochs {
			rows = append(rows, []string{
				arm, d(e.Epoch), f(e.MeasuredFairness), f(e.PlannedFairness),
				d(e.Moves), f(e.TransferMB),
			})
		}
	}
	emit(without, "static")
	emit(with, "adaptive")
	return writeCSV(w, []string{"arm", "epoch", "measured_fairness", "planned_fairness", "moves", "transfer_mb"}, rows)
}

// ModesCSV writes the intra-cluster design comparison.
func ModesCSV(w io.Writer, mr []ModeRow) error {
	rows := make([][]string, len(mr))
	for i, r := range mr {
		rows[i] = []string{
			r.Mode.String(), f(r.MeanHops), f(r.P95Hops), d(r.QueryMessages),
			f(r.Completed), f(r.ServedFairness), f(r.TopServedShare),
		}
	}
	return writeCSV(w, []string{"mode", "mean_hops", "p95_hops", "query_messages", "completed", "served_fairness", "top_served_share"}, rows)
}

// CacheCSV writes the cache extension study.
func CacheCSV(w io.Writer, cr []CacheRow) error {
	rows := make([][]string, len(cr))
	for i, r := range cr {
		rows[i] = []string{
			r.Policy.String(), strconv.FormatInt(r.CacheMB, 10), f(r.HitRatio),
			f(r.MeanHops), f(r.MeanResponseMs), d(r.NetworkQueries),
		}
	}
	return writeCSV(w, []string{"policy", "cache_mb", "hit_ratio", "mean_hops", "mean_response_ms", "network_queries"}, rows)
}

// GapCSV writes instance,greedy,exact rows.
func GapCSV(w io.Writer, gr []GapRow) error {
	rows := make([][]string, len(gr))
	for i, r := range gr {
		rows[i] = []string{d(r.Instance), f(r.Greedy), f(r.Exact)}
	}
	return writeCSV(w, []string{"instance", "greedy_fairness", "exact_fairness"}, rows)
}

// OrderingCSV writes order,fairness rows.
func OrderingCSV(w io.Writer, or []OrderingRow) error {
	rows := make([][]string, len(or))
	for i, r := range or {
		rows[i] = []string{fmt.Sprint(r.Order), f(r.Fairness)}
	}
	return writeCSV(w, []string{"order", "fairness"}, rows)
}
