package experiments

import (
	"p2pshare/internal/core"
	"p2pshare/internal/fairness"
	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/replica"
	"p2pshare/internal/workload"
)

// ModeRow compares one intra-cluster content-location design (§3.1).
type ModeRow struct {
	Mode overlay.Mode
	// MeanHops and P95Hops over completed queries.
	MeanHops, P95Hops float64
	// QueryMessages is the total in-cluster search traffic (query +
	// index-query + direct-serve messages).
	QueryMessages int
	// Completed is the fraction of queries that gathered m results.
	Completed float64
	// ServedFairness is Jain's index over per-node served counts — how
	// evenly the design spreads the serving work. Super peers
	// concentrate lookups by construction; this quantifies the §3.1
	// trade-off.
	ServedFairness float64
	// TopServedShare is the busiest node's share of all served requests.
	TopServedShare float64
}

// ModeComparison runs the same workload under each intra-cluster design
// and reports hops, traffic, and load concentration — the quantified form
// of the paper's §3.1 pure-P2P vs super-peer discussion.
func ModeComparison(scale Scale, queries int, seed int64) ([]ModeRow, error) {
	if queries <= 0 {
		queries = 1200
	}
	cfg := overlayScale(scale)
	var out []ModeRow
	for _, mode := range []overlay.Mode{overlay.ModeFlood, overlay.ModeSuperPeer, overlay.ModeRoutingIndex} {
		row, err := runMode(cfg, mode, queries, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, *row)
	}
	return out, nil
}

func runMode(cfg model.Config, mode overlay.Mode, queries int, seed int64) (*ModeRow, error) {
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, err
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		return nil, err
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		return nil, err
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Seed = seed
	ocfg.Mode = mode
	sys, err := overlay.NewSystem(inst, res.Assignment, place, ocfg)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(inst, 3, seed+7)
	if err != nil {
		return nil, err
	}
	type issued struct {
		origin model.NodeID
		id     uint64
	}
	all := make([]issued, 0, queries)
	for i := 0; i < queries; i++ {
		q := gen.Next()
		all = append(all, issued{q.Origin, sys.IssueQuery(q.Origin, q.Category, q.M)})
	}
	if err := sys.Run(); err != nil {
		return nil, err
	}
	var hops metrics.Histogram
	done := 0
	for _, q := range all {
		if rep, ok := sys.QueryReport(q.origin, q.id); ok && rep.Done {
			done++
			hops.Observe(float64(rep.Hops))
		}
	}
	stats := sys.Net().Stats()
	served := sys.ServedLoads()
	var total, top float64
	for _, s := range served {
		total += s
		if s > top {
			top = s
		}
	}
	row := &ModeRow{
		Mode:      mode,
		MeanHops:  hops.Mean(),
		P95Hops:   hops.Quantile(0.95),
		Completed: float64(done) / float64(queries),
		QueryMessages: stats.MessagesByKind["query"] +
			stats.MessagesByKind["index-query"] +
			stats.MessagesByKind["direct-serve"],
		ServedFairness: fairness.Jain(served),
	}
	if total > 0 {
		row.TopServedShare = top / total
	}
	return row, nil
}
