package experiments

import (
	"p2pshare/internal/cache"
	"p2pshare/internal/core"
	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/replica"
	"p2pshare/internal/workload"
)

// CacheRow is one cache-size cell of the §7(viii) extension study.
type CacheRow struct {
	Policy cache.Policy
	// CacheMB is the per-peer cache budget (0 = caching off).
	CacheMB int64
	// HitRatio aggregates cache hits across all peers.
	HitRatio float64
	// MeanHops over completed queries (cache answers count as 0 hops).
	MeanHops float64
	// MeanResponseMs over completed queries (cache answers are instant).
	MeanResponseMs float64
	// NetworkQueries is the number of queries that actually left the
	// origin.
	NetworkQueries int
}

// CacheEffect quantifies the §7(viii) future-work item implemented as an
// extension: per-peer LRU/LFU result caches under a Zipf workload. The
// expected shape: hit ratio grows with cache size; mean hops and response
// time fall; network traffic shrinks.
func CacheEffect(scale Scale, queries int, seed int64) ([]CacheRow, error) {
	if queries <= 0 {
		queries = 3000
	}
	cfg := overlayScale(scale)
	cells := []struct {
		policy cache.Policy
		mb     int64
	}{
		{cache.LRU, 0},
		{cache.LRU, 64},
		{cache.LRU, 256},
		{cache.LRU, 1024},
		{cache.LFU, 256},
	}
	out := make([]CacheRow, 0, len(cells))
	for _, cell := range cells {
		row, err := runCacheCell(cfg, cell.policy, cell.mb, queries, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, *row)
	}
	return out, nil
}

func runCacheCell(cfg model.Config, policy cache.Policy, mb int64, queries int, seed int64) (*CacheRow, error) {
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, err
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		return nil, err
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		return nil, err
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Seed = seed
	ocfg.CacheBytes = mb << 20
	ocfg.CachePolicy = policy
	sys, err := overlay.NewSystem(inst, res.Assignment, place, ocfg)
	if err != nil {
		return nil, err
	}
	// A repeat-heavy workload: a modest set of active clients issuing
	// popularity-sampled queries — exactly where per-client caches pay.
	gen, err := workload.NewGenerator(inst, 1, seed+7)
	if err != nil {
		return nil, err
	}
	clients := sys.NumPeers() / 20
	if clients < 1 {
		clients = 1
	}
	type issued struct {
		origin model.NodeID
		id     uint64
	}
	all := make([]issued, 0, queries)
	// Issue in waves with the network draining in between: caches only
	// help queries issued after earlier results arrived.
	for i := 0; i < queries; i++ {
		q := gen.Next()
		origin := model.NodeID(int(q.Origin) % clients)
		all = append(all, issued{origin, sys.IssueQuery(origin, q.Category, 1)})
		if i%clients == clients-1 {
			if err := sys.Run(); err != nil {
				return nil, err
			}
		}
	}
	if err := sys.Run(); err != nil {
		return nil, err
	}
	var hops, resp metrics.Histogram
	for _, q := range all {
		if rep, ok := sys.QueryReport(q.origin, q.id); ok && rep.Done {
			hops.Observe(float64(rep.Hops))
			resp.ObserveDuration(rep.ResponseTime)
		}
	}
	return &CacheRow{
		Policy:         policy,
		CacheMB:        mb,
		HitRatio:       sys.CacheHitRatio(),
		MeanHops:       hops.Mean(),
		MeanResponseMs: resp.Mean(),
		NetworkQueries: sys.Net().Stats().MessagesByKind["query"],
	}, nil
}
