package experiments

import (
	"math/rand"

	"p2pshare/internal/baseline"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
)

// MetricRow scores one assigner under every fairness metric (§7 v).
type MetricRow struct {
	Assigner baseline.Name
	Jain     float64 // 1 = fair
	Gini     float64 // 0 = fair
	Theil    float64 // 0 = fair
	Atkinson float64 // 0 = fair (ε = 0.5)
}

// MetricAgreementResult is the §7(v) study: scores plus whether the
// metrics rank the assigners identically.
type MetricAgreementResult struct {
	Rows []MetricRow
	// Agreement is true when Jain, Gini, Theil, and Atkinson produce the
	// same fairest-to-least-fair ordering of the assigners.
	Agreement bool
	// Orders lists each metric's ordering (indices into Rows).
	Orders map[string][]int
}

// MetricAgreement addresses §7(v) ("alternative definitions/metrics for
// fairness"): score the same five assignments under Jain's index, Gini,
// Theil, and Atkinson(0.5), and check whether the choice of metric would
// change any conclusion. (The CoV is omitted — it is provably equivalent
// to Jain, see internal/core/objective.go.)
func MetricAgreement(scale Scale, seed int64) (*MetricAgreementResult, error) {
	cfg := scale.Config()
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	names := []baseline.Name{
		baseline.NameMaxFair, baseline.NameLPT, baseline.NameHash,
		baseline.NameRandom, baseline.NameRoundRobin,
	}
	res := &MetricAgreementResult{Orders: make(map[string][]int)}
	var negJain, gini, theil, atk []float64
	for _, name := range names {
		r, err := baseline.Run(name, inst, rng)
		if err != nil {
			return nil, err
		}
		xs := r.NormalizedPopularities
		row := MetricRow{
			Assigner: name,
			Jain:     fairness.Jain(xs),
			Gini:     fairness.Gini(xs),
			Theil:    fairness.Theil(xs),
			Atkinson: fairness.Atkinson(xs, 0.5),
		}
		res.Rows = append(res.Rows, row)
		negJain = append(negJain, -row.Jain) // smaller = fairer, like the rest
		gini = append(gini, row.Gini)
		theil = append(theil, row.Theil)
		atk = append(atk, row.Atkinson)
	}
	res.Orders["jain"] = fairness.Rank(negJain)
	res.Orders["gini"] = fairness.Rank(gini)
	res.Orders["theil"] = fairness.Rank(theil)
	res.Orders["atkinson"] = fairness.Rank(atk)
	res.Agreement = true
	ref := res.Orders["jain"]
	for _, order := range res.Orders {
		for i := range ref {
			if order[i] != ref[i] {
				res.Agreement = false
			}
		}
	}
	return res, nil
}
