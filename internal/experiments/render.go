package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderClusterSeries prints a Figure 2/3-style report: the fairness index
// and a bar per cluster.
func RenderClusterSeries(w io.Writer, s *ClusterSeries) {
	fmt.Fprintf(w, "%s — achieved fairness = %.6f\n", s.Name, s.Fairness)
	max := 0.0
	for _, x := range s.NormPops {
		if x > max {
			max = x
		}
	}
	for c, x := range s.NormPops {
		bar := 0
		if max > 0 {
			bar = int(40 * x / max)
		}
		fmt.Fprintf(w, "cluster %3d | %-40s %.3e\n", c, strings.Repeat("▇", bar), x)
	}
}

// RenderFigure4 prints the θ sweep as the paper's initial/final pairs.
func RenderFigure4(w io.Writer, pts []Figure4Point) {
	fmt.Fprintf(w, "figure4 — fairness before/after +30%% popularity mass (no re-run)\n")
	fmt.Fprintf(w, "%-8s %-12s %-12s\n", "theta", "initial", "final")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8.1f %-12.5f %-12.5f\n", p.Theta, p.Initial, p.Final)
	}
}

// RenderFigure5 prints each run's fairness trajectory.
func RenderFigure5(w io.Writer, runs []Figure5Run) {
	fmt.Fprintf(w, "figure5 — MaxFair_Reassign trajectories (target fairness 0.92)\n")
	for i, r := range runs {
		fmt.Fprintf(w, "run %d (%d moves):", i+1, r.Moves)
		for _, f := range r.Trajectory {
			fmt.Fprintf(w, " %.4f", f)
		}
		fmt.Fprintln(w)
	}
}

// RenderScaling prints the fairness-vs-size grid.
func RenderScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintf(w, "scaling — fairness vs clusters × categories\n")
	fmt.Fprintf(w, "%-10s %-12s %-10s\n", "clusters", "categories", "fairness")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-12d %-10.5f\n", r.Clusters, r.Categories, r.Fairness)
	}
}

// RenderStorageExample prints the §4.3.3 worked example.
func RenderStorageExample(w io.Writer, r StorageExampleResult) {
	fmt.Fprintf(w, "storage example (§4.3.3): %d docs, %d nodes, %d categories, %d clusters\n",
		r.Docs, r.Nodes, r.Categories, r.Clusters)
	fmt.Fprintf(w, "  size(s) = %d × %d × %s = %s per category\n",
		r.DocsPerCategory, r.NReps, mb(r.DocSize), mb(r.SizePerCategory))
	fmt.Fprintf(w, "  base per node      = %s\n", mb(r.BaseBytesPerNode))
	fmt.Fprintf(w, "  hot docs per node  = %s\n", mb(r.HotBytesPerNode))
	fmt.Fprintf(w, "  per category/node  = %s (paper: 500 MB)\n", mb(r.PerCategoryPerNode))
	fmt.Fprintf(w, "  categories/cluster = %.1f\n", r.CategoriesPerNode)
	fmt.Fprintf(w, "  total per node     = %s (paper: ~2 GB)\n", mb(r.TotalPerNode))
}

// RenderTransferExample prints the §6.1.3 worked example.
func RenderTransferExample(w io.Writer, r TransferExampleResult) {
	fmt.Fprintf(w, "transfer example (§6.1.3): %d nodes, %d clusters of %d\n",
		r.Nodes, r.Clusters, r.NodesPerCluster)
	fmt.Fprintf(w, "  per category   = %s (paper: 8 GB)\n", mb(r.BytesPerCategory))
	fmt.Fprintf(w, "  per node pair  = %s (paper: 16 MB)\n", mb(r.BytesPerPair))
	fmt.Fprintf(w, "  pairs engaged  = %d (paper: 5000)\n", r.PairsEngaged)
	fmt.Fprintf(w, "  active nodes   = %.1f%% (paper: 2.5%% as transfer increase)\n", r.ActiveFraction*100)
}

// RenderCoverage prints the §4.3.3 mass-coverage verification.
func RenderCoverage(w io.Writer, rows []CoverageRow) {
	fmt.Fprintf(w, "mass coverage — top docs needed for 35%% of probability mass (paper: <10%%)\n")
	fmt.Fprintf(w, "%-8s %-10s %-10s\n", "theta", "docs", "top-frac")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8.1f %-10d %-10.4f\n", r.Theta, r.Docs, r.TopFraction)
	}
}

// RenderAssigners prints the assigner comparison.
func RenderAssigners(w io.Writer, rows []AssignerRow) {
	fmt.Fprintf(w, "assigner comparison — inter-cluster fairness\n")
	fmt.Fprintf(w, "%-14s %-10s %-12s\n", "assigner", "fairness", "max/mean")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-10.5f %-12.2f\n", r.Name, r.Fairness, r.MaxOverMean)
	}
}

// RenderQueryHops prints the §3.3 response-time experiment.
func RenderQueryHops(w io.Writer, r *QueryHopsResult) {
	fmt.Fprintf(w, "query processing (§3.3): %d queries, %d completed, %d failed\n",
		r.Queries, r.Completed, r.Failed)
	fmt.Fprintf(w, "  hops: mean=%.2f p95=%.0f max=%.0f (worst-case bound: cluster size %d)\n",
		r.MeanHops, r.P95Hops, r.MaxHops, r.LargestCluster)
	fmt.Fprintf(w, "  response: mean=%.0f ms p95=%.0f ms\n", r.MeanResponseMs, r.P95ResponseMs)
	fmt.Fprintf(w, "  intra-cluster served-load fairness: %.4f\n", r.IntraFairness)
}

// RenderRouting prints the routing comparison.
func RenderRouting(w io.Writer, rows []RoutingRow) {
	fmt.Fprintf(w, "object location comparison\n")
	fmt.Fprintf(w, "%-28s %-10s %-12s %-10s\n", "system", "hops", "messages", "success")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-10.2f %-12.1f %-10.3f\n", r.System, r.MeanHops, r.MeanMessages, r.SuccessRate)
	}
}

// RenderDynamic prints the end-to-end dynamic run: per epoch, the planned
// (ground truth) assignment fairness of both arms, the adaptive arm's
// measured fairness, and its rebalancing activity.
func RenderDynamic(w io.Writer, with, without *DynamicResult) {
	fmt.Fprintf(w, "dynamic adaptation (§6): flash crowd at epoch 1, persistent\n")
	fmt.Fprintf(w, "%-8s %-16s %-16s %-12s %-8s %-10s\n",
		"epoch", "planned(static)", "planned(adapt)", "measured", "moves", "xfer MB")
	for i := range with.Epochs {
		we := with.Epochs[i]
		var base string
		if i < len(without.Epochs) {
			base = fmt.Sprintf("%.4f", without.Epochs[i].PlannedFairness)
		}
		fmt.Fprintf(w, "%-8d %-16s %-16.4f %-12.4f %-8d %-10.1f\n",
			we.Epoch, base, we.PlannedFairness, we.MeasuredFairness, we.Moves, we.TransferMB)
	}
}

// RenderRebalanceCost prints the live transfer accounting.
func RenderRebalanceCost(w io.Writer, r *RebalanceCostResult) {
	fmt.Fprintf(w, "rebalancing cost (lazy protocol, live overlay)\n")
	fmt.Fprintf(w, "  measured=%.4f moves=%d transfers=%d total=%.1f MB mean=%.2f MB/pair active=%.2f%%\n",
		r.MeasuredFairness, r.Moves, r.TransferCount, r.TransferMB, r.MeanTransferMB, r.ActiveFraction*100)
	fmt.Fprintf(w, "  all transfers completed %.1f s after the round began (10 MB/s links)\n",
		r.CompletionSeconds)
}

// RenderModes prints the intra-cluster design comparison.
func RenderModes(w io.Writer, rows []ModeRow) {
	fmt.Fprintf(w, "intra-cluster designs (§3.1): flood vs super-peer vs routing-index\n")
	fmt.Fprintf(w, "%-15s %-8s %-8s %-10s %-10s %-12s %-10s\n",
		"mode", "hops", "p95", "messages", "completed", "served-fair", "top-share")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %-8.2f %-8.0f %-10d %-10.3f %-12.4f %-10.4f\n",
			r.Mode, r.MeanHops, r.P95Hops, r.QueryMessages, r.Completed,
			r.ServedFairness, r.TopServedShare)
	}
}

// RenderConfigSweep prints the §7(ii) cluster-count sweep.
func RenderConfigSweep(w io.Writer, rows []ConfigRow) {
	fmt.Fprintf(w, "configuration sweep (§7 ii): clusters vs nodes-per-cluster\n")
	fmt.Fprintf(w, "%-10s %-14s %-10s %-8s %-8s %-12s\n",
		"clusters", "mean members", "fairness", "hops", "p95", "max stored")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-14.1f %-10.5f %-8.2f %-8.0f %-12.1f\n",
			r.Clusters, r.MeanClusterMembers, r.Fairness, r.MeanHops, r.P95Hops, r.MaxStoredMB)
	}
}

// RenderPlacement prints the §7(vii) placement-policy comparison.
func RenderPlacement(w io.Writer, rows []PlacementRow) {
	fmt.Fprintf(w, "placement policies (§7 vii): hot-set vs proportional\n")
	fmt.Fprintf(w, "%-24s %-16s %-16s %-12s %-12s %-8s\n",
		"policy", "mean intra-fair", "min intra-fair", "max stored", "replicas", "drops")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %-16.4f %-16.4f %-12.1f %-12d %-8d\n",
			r.Policy, r.MeanIntraFairness, r.MinIntraFairness, r.MaxStoredMB, r.TotalReplicas, r.CapacityDrops)
	}
}

// RenderMetricAgreement prints the §7(v) fairness-metric study.
func RenderMetricAgreement(w io.Writer, r *MetricAgreementResult) {
	fmt.Fprintf(w, "fairness metrics (§7 v): do Jain/Gini/Theil/Atkinson agree?\n")
	fmt.Fprintf(w, "%-14s %-10s %-10s %-10s %-12s\n", "assigner", "jain", "gini", "theil", "atkinson0.5")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-10.5f %-10.5f %-10.5f %-12.5f\n",
			row.Assigner, row.Jain, row.Gini, row.Theil, row.Atkinson)
	}
	fmt.Fprintf(w, "identical fairest-to-least-fair ordering: %v\n", r.Agreement)
}

// RenderGranularity prints the §7(vi) category-splitting study.
func RenderGranularity(w io.Writer, rows []GranularityRow) {
	fmt.Fprintf(w, "rebalancing granularity (§7 vi): splitting a flash-topic category\n")
	fmt.Fprintf(w, "%-8s %-10s %-8s\n", "pieces", "fairness", "moves")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-10.4f %-8d\n", r.Pieces, r.Fairness, r.Moves)
	}
}

// RenderCache prints the §7(viii) cache extension study.
func RenderCache(w io.Writer, rows []CacheRow) {
	fmt.Fprintf(w, "document caching (§7 viii extension) — per-peer result caches\n")
	fmt.Fprintf(w, "%-8s %-10s %-10s %-10s %-12s %-12s\n",
		"policy", "cache MB", "hit ratio", "hops", "resp ms", "net queries")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10d %-10.3f %-10.2f %-12.0f %-12d\n",
			r.Policy, r.CacheMB, r.HitRatio, r.MeanHops, r.MeanResponseMs, r.NetworkQueries)
	}
}

// RenderGap prints the MaxFair-vs-exact table.
func RenderGap(w io.Writer, rows []GapRow) {
	fmt.Fprintf(w, "optimality gap — greedy MaxFair vs exhaustive search (tiny instances)\n")
	fmt.Fprintf(w, "%-10s %-12s %-12s %-8s\n", "instance", "greedy", "exact", "gap")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-12.5f %-12.5f %-8.5f\n", r.Instance, r.Greedy, r.Exact, r.Exact-r.Greedy)
	}
}

// RenderOrdering prints the category-order ablation.
func RenderOrdering(w io.Writer, rows []OrderingRow) {
	fmt.Fprintf(w, "ablation — MaxFair category consideration order\n")
	fmt.Fprintf(w, "%-18s %-10s\n", "order", "fairness")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-10.5f\n", r.Order, r.Fairness)
	}
}

// RenderReplica prints the hot-mass sweep.
func RenderReplica(w io.Writer, rows []ReplicaBalanceRow) {
	fmt.Fprintf(w, "replica placement (§4.3.3) — hot-mass sweep\n")
	fmt.Fprintf(w, "%-10s %-16s %-16s %-14s %-8s\n", "hot-mass", "mean intra-fair", "min intra-fair", "max stored", "drops")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10.2f %-16.4f %-16.4f %-14s %-8d\n",
			r.HotMass, r.MeanIntraFairness, r.MinIntraFairness, mb(r.MaxStoredBytes), r.CapacityDrops)
	}
}

func mb(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
