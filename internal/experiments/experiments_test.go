package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"p2pshare/internal/baseline"
	"p2pshare/internal/core"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
)

// The experiment tests check the *shape* of the paper's results at small
// scale: who wins, roughly by how much, and where the thresholds sit.

func TestFigure2ShapeMatchesPaper(t *testing.T) {
	s, err := Figure2(ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: achieved fairness = 0.981903 at full scale; >0.95 claimed
	// for all tested cases.
	if s.Fairness < 0.95 {
		t.Errorf("figure2 fairness %g < 0.95", s.Fairness)
	}
	if len(s.NormPops) != ScaleSmall.Config().NumClusters {
		t.Errorf("series has %d clusters", len(s.NormPops))
	}
	if err := checkSeriesPositive(s); err != nil {
		t.Error(err)
	}
}

func TestFigure3ShapeMatchesPaper(t *testing.T) {
	s, err := Figure3(ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 0.974958 at full scale.
	if s.Fairness < 0.95 {
		t.Errorf("figure3 fairness %g < 0.95", s.Fairness)
	}
	if err := checkSeriesPositive(s); err != nil {
		t.Error(err)
	}
}

func checkSeriesPositive(s *ClusterSeries) error {
	for c, x := range s.NormPops {
		if x < 0 {
			return &seriesErr{s.Name, c, x}
		}
	}
	return nil
}

type seriesErr struct {
	name string
	c    int
	x    float64
}

func (e *seriesErr) Error() string { return e.name + ": negative normalized popularity" }

func TestFigure4RobustnessShape(t *testing.T) {
	pts, err := Figure4(ScaleSmall, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5", len(pts))
	}
	for _, p := range pts {
		if p.Initial < 0.95 {
			t.Errorf("theta=%.1f initial fairness %g < 0.95", p.Theta, p.Initial)
		}
		if p.Final > p.Initial {
			t.Errorf("theta=%.1f fairness improved under perturbation?! %g -> %g",
				p.Theta, p.Initial, p.Final)
		}
		// Paper: worst case drops to 0.78. Allow slack at small scale but
		// catch collapses.
		if p.Final < 0.60 {
			t.Errorf("theta=%.1f final fairness %g collapsed (paper worst case 0.78)", p.Theta, p.Final)
		}
	}
}

func TestFigure5ConvergesWithinFewMoves(t *testing.T) {
	runs, err := Figure5(ScaleSmall, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 5 {
		t.Fatalf("got %d runs", len(runs))
	}
	for i, r := range runs {
		last := r.Trajectory[len(r.Trajectory)-1]
		// Paper: 7–8 moves reach the 0.92 target. Small scale converges
		// at least as fast; bound generously.
		if last < 0.92 && r.Moves < 64 {
			t.Errorf("run %d stalled at %g after %d moves", i, last, r.Moves)
		}
		// Paper reports 7–8 moves; our category-level upheaval can dig a
		// deeper hole (some runs start below 0.7), so allow the same
		// order of magnitude.
		if r.Moves > 40 {
			t.Errorf("run %d needed %d moves, paper reports 7-8", i, r.Moves)
		}
		// Trajectories are monotone non-decreasing.
		for j := 1; j < len(r.Trajectory); j++ {
			if r.Trajectory[j] < r.Trajectory[j-1]-1e-12 {
				t.Errorf("run %d trajectory decreases at %d", i, j)
			}
		}
	}
}

func TestScalingTableShape(t *testing.T) {
	rows, err := ScalingTable(ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper: >0.90 even for 50 clusters / 200 categories.
		if r.Fairness < 0.90 {
			t.Errorf("clusters=%d cats=%d fairness %g < 0.90", r.Clusters, r.Categories, r.Fairness)
		}
	}
}

func TestStorageExampleMatchesPaperNumbers(t *testing.T) {
	r := StorageExample()
	// Paper: size(s) = 20 GB per category (1000 × 5 × 4 MB = 20 000 MB).
	if got := r.SizePerCategory; got != 20000<<20 {
		t.Errorf("size per category = %d, want 20 000 MB", got)
	}
	// Paper: 100 MB base per node.
	if got := r.BaseBytesPerNode; got != 100<<20 {
		t.Errorf("base per node = %d, want 100 MB", got)
	}
	// Paper: 400 MB of hot replicas, 500 MB per category per node.
	if got := r.HotBytesPerNode; got != 400<<20 {
		t.Errorf("hot per node = %d, want 400 MB", got)
	}
	if got := r.PerCategoryPerNode; got != 500<<20 {
		t.Errorf("per category per node = %d, want 500 MB", got)
	}
	// Paper: 4 categories per cluster on average, ~2 GB per node.
	if r.CategoriesPerNode != 4 {
		t.Errorf("categories per cluster = %g, want 4", r.CategoriesPerNode)
	}
	if got := r.TotalPerNode; got != 2000<<20 {
		t.Errorf("total per node = %d, want 2000 MB", got)
	}
}

func TestTransferExampleMatchesPaperNumbers(t *testing.T) {
	r := TransferExample()
	// Paper: 1000 docs × 4 MB × 2 replicas = 8 GB (8000 MB).
	if got := r.BytesPerCategory; got != 8000<<20 {
		t.Errorf("bytes per category = %d, want 8000 MB", got)
	}
	if got := r.BytesPerPair; got != 16<<20 {
		t.Errorf("bytes per pair = %d, want 16 MB", got)
	}
	if r.PairsEngaged != 5000 {
		t.Errorf("pairs = %d, want 5000", r.PairsEngaged)
	}
	// Paper: "an increase of 2.5% on the active users" (5000 pairs of
	// 200k nodes; both ends of a pair are active).
	if r.ActiveFraction < 0.024 || r.ActiveFraction > 0.051 {
		t.Errorf("active fraction = %g, paper says 2.5%%", r.ActiveFraction)
	}
}

func TestMassCoverageClaim(t *testing.T) {
	for _, row := range MassCoverage() {
		if row.Theta <= 0.85 && row.TopFraction >= 0.10 {
			t.Errorf("theta=%.1f n=%d needs %.1f%% of docs for 35%% mass; paper claims <10%%",
				row.Theta, row.Docs, row.TopFraction*100)
		}
	}
}

func TestAssignerComparisonMaxFairWins(t *testing.T) {
	rows, err := AssignerComparison(ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AssignerRow{}
	for _, r := range rows {
		byName[string(r.Name)] = r
	}
	mf := byName["maxfair"]
	for _, name := range []string{"hash", "random", "round-robin"} {
		if byName[name].Fairness >= mf.Fairness {
			t.Errorf("%s fairness %g >= maxfair %g", name, byName[name].Fairness, mf.Fairness)
		}
	}
	// The naive hash placement should show a pronounced hot spot.
	if byName["hash"].MaxOverMean < 1.5 {
		t.Errorf("hash max/mean %g suspiciously flat", byName["hash"].MaxOverMean)
	}
}

func TestQueryHopsShape(t *testing.T) {
	r, err := QueryHops(ScaleSmall, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed < r.Queries*9/10 {
		t.Errorf("only %d of %d queries completed", r.Completed, r.Queries)
	}
	// "a response time within only a few hops for the common case" —
	// with hot replicas the first contacted node usually answers.
	if r.MeanHops > 3 {
		t.Errorf("mean hops %g, paper promises a few", r.MeanHops)
	}
	if int(r.MaxHops) > r.LargestCluster+1 {
		t.Errorf("max hops %g exceeds the worst-case bound %d", r.MaxHops, r.LargestCluster)
	}
	if r.IntraFairness < 0.4 {
		t.Errorf("intra-cluster fairness %g too low", r.IntraFairness)
	}
}

func TestRoutingComparisonShape(t *testing.T) {
	rows, err := RoutingComparison(ScaleSmall, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	ours, chordRow, gnut := rows[0], rows[1], rows[2]
	// The paper's architecture answers in fewer hops than Chord's
	// O(log N) lookups.
	if ours.MeanHops >= chordRow.MeanHops {
		t.Errorf("ours %.2f hops >= chord %.2f", ours.MeanHops, chordRow.MeanHops)
	}
	// Flooding costs orders of magnitude more messages.
	if gnut.MeanMessages < 10*ours.MeanMessages {
		t.Errorf("gnutella messages %.1f not clearly worse than ours %.1f",
			gnut.MeanMessages, ours.MeanMessages)
	}
	// Our success rate is high; Gnutella's TTL can miss rare content.
	if ours.SuccessRate < 0.9 {
		t.Errorf("our success rate %g < 0.9", ours.SuccessRate)
	}
}

func TestDynamicAdaptationKeepsFairnessHigher(t *testing.T) {
	const epochs = 4
	// queriesPerEpoch 0 = the scale default (50 per cluster): the
	// adaptation needs real signal; starving it makes the comparison
	// about sampling noise, not the mechanism.
	with, err := DynamicAdaptation(ScaleSmall, epochs, 0, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	without, err := DynamicAdaptation(ScaleSmall, epochs, 0, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Epochs) != epochs || len(without.Epochs) != epochs {
		t.Fatal("wrong epoch counts")
	}
	// Epoch 0 workloads are identical (same seeds, adaptation hasn't run
	// yet at measurement time).
	e0w, e0n := with.Epochs[0].MeasuredFairness, without.Epochs[0].MeasuredFairness
	if diff := e0w - e0n; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("epoch 0 should match: %g vs %g", e0w, e0n)
	}
	// The epoch-1 upheaval degrades the unadapted assignment permanently;
	// adaptation must serve the shifted demand with fairer measured load
	// by the final epoch. (Measured — hits over live capacity — is the
	// quantity the adaptation optimizes; the planning formula weighs
	// capacity by contributions, a different denominator.)
	lastWith := with.Epochs[epochs-1].MeasuredFairness
	lastWithout := without.Epochs[epochs-1].MeasuredFairness
	if didAdapt(with) && lastWith <= lastWithout {
		t.Errorf("final epoch measured fairness: adaptive %g <= static %g", lastWith, lastWithout)
	}
}

func didAdapt(r *DynamicResult) bool {
	for _, e := range r.Epochs {
		if e.Moves > 0 {
			return true
		}
	}
	return false
}

func TestRebalanceCostReportsTransfers(t *testing.T) {
	r, err := RebalanceCost(ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Moves == 0 {
		t.Fatal("skewed workload should force moves")
	}
	if r.TransferCount > 0 {
		if r.TransferMB <= 0 {
			t.Error("transfers recorded but zero bytes")
		}
		if r.ActiveFraction <= 0 || r.ActiveFraction > 1 {
			t.Errorf("active fraction %g out of range", r.ActiveFraction)
		}
	}
}

func TestOptimalityGapSmall(t *testing.T) {
	rows, err := OptimalityGap(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Greedy > r.Exact+1e-9 {
			t.Errorf("instance %d: greedy %g beats exact %g", r.Instance, r.Greedy, r.Exact)
		}
		// MaxFair should land close to optimal on easy tiny instances.
		if r.Exact-r.Greedy > 0.10 {
			t.Errorf("instance %d: gap %g unexpectedly large", r.Instance, r.Exact-r.Greedy)
		}
	}
}

func TestOrderingAblation(t *testing.T) {
	rows, err := OrderingAblation(ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Fairness <= 0 || r.Fairness > 1 {
			t.Errorf("order %v fairness %g out of range", r.Order, r.Fairness)
		}
	}
}

func TestReplicaBalanceSweep(t *testing.T) {
	rows, err := ReplicaBalance(ScaleSmall, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// More hot replication must not hurt intra-cluster fairness.
	first, last := rows[0], rows[len(rows)-1]
	if last.MeanIntraFairness < first.MeanIntraFairness-0.05 {
		t.Errorf("hot replication degraded fairness: %g (hm=%.2f) -> %g (hm=%.2f)",
			first.MeanIntraFairness, first.HotMass, last.MeanIntraFairness, last.HotMass)
	}
	// And must cost storage.
	if last.MaxStoredBytes < first.MaxStoredBytes {
		t.Errorf("hot replication reduced storage?!")
	}
}

func TestModeComparisonShape(t *testing.T) {
	rows, err := ModeComparison(ScaleSmall, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	flood, sp, ri := rows[0], rows[1], rows[2]
	// Super peers answer in a constant two hops with full completion...
	if sp.MeanHops != 2 || sp.Completed < 0.99 {
		t.Errorf("super-peer: hops=%g completed=%g", sp.MeanHops, sp.Completed)
	}
	// ...but concentrate load (the §3.1 trade-off).
	if sp.ServedFairness >= flood.ServedFairness {
		t.Errorf("super-peer served fairness %g >= flood %g — concentration missing",
			sp.ServedFairness, flood.ServedFairness)
	}
	if sp.TopServedShare <= flood.TopServedShare {
		t.Errorf("super-peer top share %g <= flood %g", sp.TopServedShare, flood.TopServedShare)
	}
	// Routing indices save messages versus flooding at modest recall cost.
	if ri.QueryMessages >= flood.QueryMessages {
		t.Errorf("routing-index messages %d >= flood %d", ri.QueryMessages, flood.QueryMessages)
	}
	if ri.Completed < 0.6 {
		t.Errorf("routing-index completion %g collapsed", ri.Completed)
	}
	// Super peers also need far fewer messages than flooding.
	if sp.QueryMessages >= flood.QueryMessages/2 {
		t.Errorf("super-peer messages %d not clearly below flood %d", sp.QueryMessages, flood.QueryMessages)
	}
}

func TestConfigSweepShape(t *testing.T) {
	rows, err := ConfigSweep(ScaleSmall, []int{6, 24, 96}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The §7(ii) tension: more clusters → fewer hops but harder balancing.
	if rows[2].MeanHops >= rows[0].MeanHops {
		t.Errorf("hops did not fall with more clusters: %g -> %g",
			rows[0].MeanHops, rows[2].MeanHops)
	}
	if rows[2].Fairness >= rows[0].Fairness {
		t.Errorf("fairness did not fall with more clusters: %g -> %g",
			rows[0].Fairness, rows[2].Fairness)
	}
	for _, r := range rows {
		if r.Fairness < 0.90 {
			t.Errorf("clusters=%d fairness %g collapsed", r.Clusters, r.Fairness)
		}
	}
}

func TestPlacementComparisonShape(t *testing.T) {
	rows, err := PlacementComparison(ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	hot, prop := rows[0], rows[1]
	// The §7(vii) finding: proportional replication achieves at least
	// comparable intra-cluster fairness at a fraction of the storage.
	if prop.TotalReplicas >= hot.TotalReplicas {
		t.Errorf("proportional replicas %d >= hot-set %d", prop.TotalReplicas, hot.TotalReplicas)
	}
	if prop.MeanIntraFairness < hot.MeanIntraFairness-0.05 {
		t.Errorf("proportional fairness %g much worse than hot-set %g",
			prop.MeanIntraFairness, hot.MeanIntraFairness)
	}
	if prop.MaxStoredMB >= hot.MaxStoredMB {
		t.Errorf("proportional max storage %g >= hot-set %g", prop.MaxStoredMB, hot.MaxStoredMB)
	}
}

func TestMaxFairUnderMajorization(t *testing.T) {
	// The paper's §4.2 note: "In our current work we revisit the issue of
	// fairness using majorization that has been shown to be stricter than
	// other fairness metrics such as the fairness index." Under the
	// majorization partial order, a fairer allocation is majorized by a
	// less fair one. MaxFair's allocation must never majorize a
	// baseline's (that would make it strictly less fair); baselines may
	// majorize MaxFair's or be incomparable.
	cfg := ScaleSmall.Config()
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	majorizedBy := 0
	for _, name := range []baseline.Name{baseline.NameHash, baseline.NameRandom, baseline.NameRoundRobin} {
		res, err := baseline.Run(name, inst, rng)
		if err != nil {
			t.Fatal(err)
		}
		if fairness.Majorizes(mf.NormalizedPopularities, res.NormalizedPopularities) {
			t.Errorf("MaxFair majorizes %s — strictly less fair under the strict order", name)
		}
		if fairness.Majorizes(res.NormalizedPopularities, mf.NormalizedPopularities) {
			majorizedBy++
		}
	}
	if majorizedBy == 0 {
		t.Log("all baselines incomparable to MaxFair under majorization (allowed; the order is partial)")
	}
}

func TestMetricAgreementShape(t *testing.T) {
	r, err := MetricAgreement(ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	// MaxFair (row 0) must rank fairest under EVERY metric — the §7(v)
	// conclusion that matters: metric choice may flip adjacent baselines
	// but never the headline result.
	for metric, order := range r.Orders {
		if order[0] != 0 {
			t.Errorf("metric %s ranks %s fairest, not maxfair", metric, r.Rows[order[0]].Assigner)
		}
	}
	for _, row := range r.Rows {
		if row.Gini < 0 || row.Gini >= 1 || row.Theil < 0 || row.Atkinson < 0 || row.Atkinson >= 1 {
			t.Errorf("metric out of range: %+v", row)
		}
	}
}

func TestGranularityStudyShape(t *testing.T) {
	rows, err := GranularityStudy(ScaleSmall, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Unsplit, the flash topic caps fairness well below target.
	if rows[0].Fairness > 0.85 {
		t.Errorf("unsplit fairness %g — the cap is missing", rows[0].Fairness)
	}
	// Splitting recovers substantially.
	last := rows[len(rows)-1]
	if last.Fairness < rows[0].Fairness+0.15 {
		t.Errorf("splitting gained only %g -> %g", rows[0].Fairness, last.Fairness)
	}
}

func TestCacheEffectShape(t *testing.T) {
	rows, err := CacheEffect(ScaleSmall, 1500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	off := rows[0]
	if off.CacheMB != 0 || off.HitRatio != 0 {
		t.Errorf("baseline row wrong: %+v", off)
	}
	// Bigger caches: monotone non-decreasing hit ratio, non-increasing
	// hops and network traffic (within the LRU rows).
	prev := off
	for _, r := range rows[1:4] {
		if r.HitRatio < prev.HitRatio-1e-9 {
			t.Errorf("hit ratio fell: %v -> %v", prev, r)
		}
		if r.MeanHops > prev.MeanHops+1e-9 {
			t.Errorf("hops rose with more cache: %v -> %v", prev, r)
		}
		if r.NetworkQueries > prev.NetworkQueries {
			t.Errorf("traffic rose with more cache: %v -> %v", prev, r)
		}
		prev = r
	}
	// With a Zipf workload a 256MB cache must absorb a meaningful share.
	if rows[2].HitRatio < 0.2 {
		t.Errorf("256MB hit ratio %g < 0.2", rows[2].HitRatio)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var b strings.Builder
	s, err := Figure2(ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	RenderClusterSeries(&b, s)
	if !strings.Contains(b.String(), "achieved fairness") {
		t.Error("cluster series render missing caption")
	}
	b.Reset()
	RenderStorageExample(&b, StorageExample())
	if !strings.Contains(b.String(), "500") {
		t.Error("storage render missing the 500 MB result")
	}
	b.Reset()
	RenderTransferExample(&b, TransferExample())
	if !strings.Contains(b.String(), "16.0 MB") {
		t.Errorf("transfer render missing the 16 MB result: %s", b.String())
	}
	b.Reset()
	RenderCoverage(&b, MassCoverage())
	if !strings.Contains(b.String(), "theta") {
		t.Error("coverage render missing header")
	}
}

func TestVerifyFairnessConsistencyOnFigure2(t *testing.T) {
	cfg := ScaleSmall.Config()
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFairnessConsistency(res); err != nil {
		t.Error(err)
	}
}

// TestParallelFiguresDeterministic runs the parallelized sweeps twice and
// requires bit-identical output: every index derives its world and rng
// from the seed alone, so worker scheduling must not leak into results.
func TestParallelFiguresDeterministic(t *testing.T) {
	a4, err := Figure4(ScaleSmall, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := Figure4(ScaleSmall, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a4) != len(b4) {
		t.Fatalf("Figure4 lengths differ: %d vs %d", len(a4), len(b4))
	}
	for i := range a4 {
		if a4[i] != b4[i] {
			t.Errorf("Figure4[%d] differs across runs: %+v vs %+v", i, a4[i], b4[i])
		}
	}
	a5, err := Figure5(ScaleSmall, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b5, err := Figure5(ScaleSmall, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a5 {
		if a5[r].Moves != b5[r].Moves || len(a5[r].Trajectory) != len(b5[r].Trajectory) {
			t.Fatalf("Figure5 run %d differs across runs: %+v vs %+v", r, a5[r], b5[r])
		}
		for j := range a5[r].Trajectory {
			if a5[r].Trajectory[j] != b5[r].Trajectory[j] {
				t.Errorf("Figure5 run %d point %d: %g vs %g", r, j, a5[r].Trajectory[j], b5[r].Trajectory[j])
			}
		}
	}
}
