package experiments

import (
	"strings"
	"testing"

	"p2pshare/internal/baseline"
	"p2pshare/internal/cache"
	"p2pshare/internal/core"
	"p2pshare/internal/overlay"
)

// Fabricated fixtures exercising every renderer and CSV emitter: the
// harness's reporting layer must never crash or emit malformed tables,
// whatever the data.

func fixtures() (series *ClusterSeries, f4 []Figure4Point, f5 []Figure5Run,
	scal []ScalingRow, cov []CoverageRow, asg []AssignerRow, rout []RoutingRow,
	rep []ReplicaBalanceRow, dyn *DynamicResult, gaps []GapRow, ords []OrderingRow,
	modes []ModeRow, cr []CacheRow, conf []ConfigRow, plc []PlacementRow,
	gran []GranularityRow) {
	series = &ClusterSeries{Name: "fixture", Fairness: 0.98, NormPops: []float64{0.1, 0.2, 0}}
	f4 = []Figure4Point{{Theta: 0.4, Initial: 0.99, Final: 0.85}}
	f5 = []Figure5Run{{Trajectory: []float64{0.8, 0.9, 0.93}, Moves: 2}}
	scal = []ScalingRow{{Clusters: 50, Categories: 200, Fairness: 0.97}}
	cov = []CoverageRow{{Theta: 0.8, Docs: 1000, TopFraction: 0.02}}
	asg = []AssignerRow{{Name: baseline.NameMaxFair, Fairness: 0.99, MaxOverMean: 1.1}}
	rout = []RoutingRow{{System: "x", MeanHops: 1.5, MeanMessages: 2.5, SuccessRate: 1}}
	rep = []ReplicaBalanceRow{{HotMass: 0.35, MeanIntraFairness: 0.9, MinIntraFairness: 0.8,
		MaxStoredBytes: 5 << 20, CapacityDrops: 3}}
	dyn = &DynamicResult{Adaptive: true, Epochs: []DynamicEpoch{
		{Epoch: 0, MeasuredFairness: 0.9, PlannedFairness: 0.95, AfterFairness: 0.9},
		{Epoch: 1, MeasuredFairness: 0.7, PlannedFairness: 0.8, AfterFairness: 0.85, Moves: 3, TransferMB: 12},
	}}
	gaps = []GapRow{{Instance: 0, Greedy: 0.98, Exact: 0.99}}
	ords = []OrderingRow{{Order: core.OrderPopularityDesc, Fairness: 0.99}}
	modes = []ModeRow{{Mode: overlay.ModeFlood, MeanHops: 1.9, P95Hops: 4,
		QueryMessages: 1000, Completed: 0.95, ServedFairness: 0.7, TopServedShare: 0.01}}
	cr = []CacheRow{{Policy: cache.LRU, CacheMB: 256, HitRatio: 0.4, MeanHops: 0.8,
		MeanResponseMs: 60, NetworkQueries: 500}}
	conf = []ConfigRow{{Clusters: 24, MeanClusterMembers: 100, Fairness: 0.99,
		MeanHops: 1.8, P95Hops: 4, MaxStoredMB: 500}}
	plc = []PlacementRow{{Policy: "hot-set", MeanIntraFairness: 0.86, MinIntraFairness: 0.8,
		MaxStoredMB: 700, TotalReplicas: 1000, CapacityDrops: 0}}
	gran = []GranularityRow{{Pieces: 1, Fairness: 0.65, Moves: 10}}
	return
}

func TestAllRenderers(t *testing.T) {
	series, f4, f5, scal, cov, asg, rout, rep, dyn, gaps, ords, modes, cr, conf, plc, gran := fixtures()
	var b strings.Builder
	RenderClusterSeries(&b, series)
	RenderFigure4(&b, f4)
	RenderFigure5(&b, f5)
	RenderScaling(&b, scal)
	RenderStorageExample(&b, StorageExample())
	RenderTransferExample(&b, TransferExample())
	RenderCoverage(&b, cov)
	RenderAssigners(&b, asg)
	RenderQueryHops(&b, &QueryHopsResult{Queries: 10, Completed: 9, MeanHops: 1.5})
	RenderRouting(&b, rout)
	RenderReplica(&b, rep)
	RenderDynamic(&b, dyn, dyn)
	RenderRebalanceCost(&b, &RebalanceCostResult{Moves: 2, TransferCount: 5, TransferMB: 10})
	RenderGap(&b, gaps)
	RenderOrdering(&b, ords)
	RenderModes(&b, modes)
	RenderCache(&b, cr)
	RenderConfigSweep(&b, conf)
	RenderPlacement(&b, plc)
	RenderGranularity(&b, gran)
	RenderMetricAgreement(&b, &MetricAgreementResult{
		Rows:      []MetricRow{{Assigner: baseline.NameMaxFair, Jain: 0.99}},
		Agreement: true,
		Orders:    map[string][]int{"jain": {0}},
	})
	out := b.String()
	for _, want := range []string{
		"fixture", "figure4", "figure5", "scaling", "storage example",
		"transfer example", "mass coverage", "assigner comparison",
		"query processing", "object location", "hot-mass sweep",
		"dynamic adaptation", "rebalancing cost", "optimality gap",
		"consideration order", "intra-cluster designs", "document caching",
		"configuration sweep", "placement policies", "granularity",
		"fairness metrics",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestAllCSVEmitters(t *testing.T) {
	series, f4, f5, scal, cov, asg, rout, rep, dyn, gaps, ords, modes, cr, _, _, _ := fixtures()
	emitters := []struct {
		name string
		run  func(*strings.Builder) error
	}{
		{"series", func(b *strings.Builder) error { return ClusterSeriesCSV(b, series) }},
		{"figure4", func(b *strings.Builder) error { return Figure4CSV(b, f4) }},
		{"figure5", func(b *strings.Builder) error { return Figure5CSV(b, f5) }},
		{"scaling", func(b *strings.Builder) error { return ScalingCSV(b, scal) }},
		{"coverage", func(b *strings.Builder) error { return CoverageCSV(b, cov) }},
		{"assigners", func(b *strings.Builder) error { return AssignersCSV(b, asg) }},
		{"routing", func(b *strings.Builder) error { return RoutingCSV(b, rout) }},
		{"replica", func(b *strings.Builder) error { return ReplicaCSV(b, rep) }},
		{"dynamic", func(b *strings.Builder) error { return DynamicCSV(b, dyn, dyn) }},
		{"gap", func(b *strings.Builder) error { return GapCSV(b, gaps) }},
		{"ordering", func(b *strings.Builder) error { return OrderingCSV(b, ords) }},
		{"modes", func(b *strings.Builder) error { return ModesCSV(b, modes) }},
		{"cache", func(b *strings.Builder) error { return CacheCSV(b, cr) }},
	}
	for _, e := range emitters {
		var b strings.Builder
		if err := e.run(&b); err != nil {
			t.Errorf("%s: %v", e.name, err)
			continue
		}
		lines := strings.Split(strings.TrimSpace(b.String()), "\n")
		if len(lines) < 2 {
			t.Errorf("%s: no data rows", e.name)
			continue
		}
		// Every row has the header's column count.
		cols := strings.Count(lines[0], ",")
		for i, l := range lines[1:] {
			if strings.Count(l, ",") != cols {
				t.Errorf("%s row %d: column count mismatch: %q", e.name, i, l)
			}
		}
	}
}
