package query

import (
	"errors"
	"fmt"
	"testing"
)

func TestSentinelsAreDistinct(t *testing.T) {
	errs := []error{ErrNoRoute, ErrTimeout, ErrClosed, ErrOverloaded}
	for i, a := range errs {
		if a == nil {
			t.Fatalf("sentinel %d is nil", i)
		}
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinels %d and %d are not distinct", i, j)
			}
		}
	}
}

func TestSentinelsSurviveWrapping(t *testing.T) {
	wrapped := fmt.Errorf("query 42: %w", ErrOverloaded)
	if !errors.Is(wrapped, ErrOverloaded) {
		t.Error("wrapped sentinel does not match with errors.Is")
	}
}
