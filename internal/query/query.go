// Package query defines the one result type and the sentinel errors
// shared by every query surface of the system. The simulated facade
// (package p2pshare) and the live TCP engine (internal/livenet) used to
// return near-identical but distinct structs, forcing callers that drive
// both to translate between them; now both return query.Result and fail
// with the same errors, matchable with errors.Is.
package query

import (
	"errors"
	"time"

	"p2pshare/internal/catalog"
)

// Result reports one query's outcome, whether it ran on the simulator or
// over live TCP.
type Result struct {
	// Done is true when the requested number of distinct documents was
	// gathered before the deadline.
	Done bool
	// Results is the number of distinct matching documents returned.
	Results int
	// Hops is the overlay forwarding distance of the farthest
	// contributing result (0 for an answer served from the requester's
	// own cache).
	Hops int
	// ResponseTime is the query latency: simulated clock on the
	// simulator, wall clock on the live engine.
	ResponseTime time.Duration
	// Docs lists the distinct documents received. The live engine always
	// fills it; the simulator facade leaves it nil and reports only the
	// count.
	Docs []catalog.DocID
}

// Sentinel errors returned by both the facade and the live engine.
var (
	// ErrNoRoute reports a category with no DCRT entry or no reachable
	// members in its serving cluster — the caller gets an explicit error
	// instead of the load being silently dumped on cluster 0.
	ErrNoRoute = errors.New("p2pshare: no route to category cluster")
	// ErrTimeout reports a query that did not complete before its
	// deadline; the partial outcome accompanies it.
	ErrTimeout = errors.New("p2pshare: query timed out")
	// ErrClosed reports an API call on a node or system that has shut
	// down.
	ErrClosed = errors.New("p2pshare: node closed")
	// ErrOverloaded reports a query rejected by admission control: the
	// node already has its maximum number of in-flight queries.
	ErrOverloaded = errors.New("p2pshare: too many in-flight queries")
)
