// Package workload generates user request streams and environment dynamics
// for the experiments: queries sampled from document popularities (users
// ask for popular content more often), popularity drift, and churn plans.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
	"p2pshare/internal/zipf"
)

// Query is one user request: the origin node asks for m results matching
// keywords that classify into Category (the §3.3 query form
// [(k1..kn), m, idQ] — the id is assigned by the overlay).
type Query struct {
	Origin   model.NodeID
	Category catalog.CategoryID
	Keywords []string
	M        int
}

// Generator samples queries: a target document is drawn by popularity, the
// query asks for that document's category with the category's keywords.
type Generator struct {
	inst    *model.Instance
	sampler *zipf.Sampler
	rng     *rand.Rand
	// M is the desired result count per query (the paper bounds it by a
	// system-wide default, e.g. 50).
	M int

	// repeatP re-issues a recent query with this probability (temporal
	// locality — the request pattern a requester-side cache absorbs);
	// recent is the sliding window it draws from. Zero disables repeats
	// and leaves the sample sequence bit-identical to older generators.
	repeatP float64
	recent  []Query
	window  int
}

// NewGenerator builds a generator over the instance's current document
// popularities. Rebuild it after catalog perturbations.
func NewGenerator(inst *model.Instance, m int, seed int64) (*Generator, error) {
	if m <= 0 {
		return nil, fmt.Errorf("workload: m must be positive, got %d", m)
	}
	pops := make([]float64, len(inst.Catalog.Docs))
	for i := range inst.Catalog.Docs {
		pops[i] = inst.Catalog.Docs[i].Popularity
	}
	return &Generator{
		inst:    inst,
		sampler: zipf.NewSampler(pops),
		rng:     rand.New(rand.NewSource(seed)),
		M:       m,
	}, nil
}

// NewZipfGenerator builds a generator whose document weights follow a
// rank-based Zipf law of exponent s instead of the catalog's own
// popularity masses: documents are ranked by descending catalog
// popularity and document at rank r (1-based) gets weight r^-s. This is
// the harness's parameterized skew knob — s ≈ 0 is near-uniform demand,
// s ≈ 1 the classic web-trace skew, s > 1.5 a few documents dominating —
// applied over the same popularity ORDER the deployment was placed for,
// so changing s shifts load concentration without inventing a different
// hot set.
func NewZipfGenerator(inst *model.Instance, m int, s float64, seed int64) (*Generator, error) {
	if m <= 0 {
		return nil, fmt.Errorf("workload: m must be positive, got %d", m)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: zipf exponent must be non-negative, got %g", s)
	}
	type ranked struct {
		idx int
		pop float64
	}
	docs := make([]ranked, len(inst.Catalog.Docs))
	for i := range inst.Catalog.Docs {
		docs[i] = ranked{i, inst.Catalog.Docs[i].Popularity}
	}
	sort.SliceStable(docs, func(i, j int) bool { return docs[i].pop > docs[j].pop })
	weights := make([]float64, len(inst.Catalog.Docs))
	for r, d := range docs {
		weights[d.idx] = math.Pow(float64(r+1), -s)
	}
	return &Generator{
		inst:    inst,
		sampler: zipf.NewSampler(weights),
		rng:     rand.New(rand.NewSource(seed)),
		M:       m,
	}, nil
}

// WithRepeat makes the generator re-issue one of its last `window`
// queries with probability p — the temporal locality real request
// streams show (users re-fetching what they just browsed), and the
// pattern that makes requester-side caching pay off. It returns g for
// chaining; p = 0 restores pure popularity sampling.
func (g *Generator) WithRepeat(p float64, window int) *Generator {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if window <= 0 {
		window = 16
	}
	g.repeatP = p
	g.window = window
	return g
}

// Next draws one query.
func (g *Generator) Next() Query {
	if g.repeatP > 0 && len(g.recent) > 0 && g.rng.Float64() < g.repeatP {
		return g.recent[g.rng.Intn(len(g.recent))]
	}
	d := &g.inst.Catalog.Docs[g.sampler.Sample(g.rng)]
	cat := d.Categories[g.rng.Intn(len(d.Categories))]
	q := Query{
		Origin:   model.NodeID(g.rng.Intn(len(g.inst.Nodes))),
		Category: cat,
		Keywords: g.inst.Catalog.Cats[cat].Keywords,
		M:        g.M,
	}
	if g.repeatP > 0 {
		if len(g.recent) == g.window {
			copy(g.recent, g.recent[1:])
			g.recent = g.recent[:g.window-1]
		}
		g.recent = append(g.recent, q)
	}
	return q
}

// Interarrival returns an exponential interarrival time with the given
// mean (Poisson arrivals).
func (g *Generator) Interarrival(mean time.Duration) time.Duration {
	return time.Duration(g.rng.ExpFloat64() * float64(mean))
}

// ChurnPlan is a deterministic sequence of joins and leaves.
type ChurnPlan struct {
	// Leaves lists nodes that will depart, in order.
	Leaves []model.NodeID
	// Joins is how many fresh nodes will arrive.
	Joins int
}

// PlanChurn samples leaveFraction of the existing nodes to depart and
// plans joins fresh arrivals.
func PlanChurn(inst *model.Instance, leaveFraction float64, joins int, rng *rand.Rand) (ChurnPlan, error) {
	if leaveFraction < 0 || leaveFraction >= 1 {
		return ChurnPlan{}, fmt.Errorf("workload: leaveFraction %g out of [0,1)", leaveFraction)
	}
	n := int(leaveFraction * float64(len(inst.Nodes)))
	perm := rng.Perm(len(inst.Nodes))
	plan := ChurnPlan{Joins: joins}
	for _, i := range perm[:n] {
		plan.Leaves = append(plan.Leaves, model.NodeID(i))
	}
	return plan, nil
}

// FlashCrowd perturbs the catalog per the paper's §5 stress test: addFrac
// new documents (relative to the current count) arrive carrying mass of
// the total popularity, randomly spread over categories, contributed by
// random existing nodes. It returns the new document ids.
func FlashCrowd(inst *model.Instance, addFrac, mass float64, rng *rand.Rand) ([]catalog.DocID, error) {
	return FlashCrowdIn(inst, addFrac, mass, 0, rng)
}

// FlashCrowdIn is FlashCrowd with the new documents concentrated in
// `spread` randomly chosen categories (0 means all categories). A small
// spread models a crowd chasing a few hot topics, which is what forces
// multi-move rebalancing (§6.4).
func FlashCrowdIn(inst *model.Instance, addFrac, mass float64, spread int, rng *rand.Rand) ([]catalog.DocID, error) {
	n := int(addFrac * float64(len(inst.Catalog.Docs)))
	if n < 1 {
		n = 1
	}
	var cats []catalog.CategoryID
	if spread > 0 && spread < len(inst.Catalog.Cats) {
		for _, i := range rng.Perm(len(inst.Catalog.Cats))[:spread] {
			cats = append(cats, catalog.CategoryID(i))
		}
	}
	ids, err := inst.Catalog.AddDocumentsIn(n, mass, 0.8, cats, rng)
	if err != nil {
		return nil, err
	}
	for _, d := range ids {
		contributor := model.NodeID(rng.Intn(len(inst.Nodes)))
		if err := inst.AttachDocument(d, contributor); err != nil {
			return nil, err
		}
	}
	return ids, nil
}
