package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"p2pshare/internal/model"
)

func testInstance(t *testing.T) *model.Instance {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 3000
	cfg.Catalog.NumCats = 60
	cfg.NumNodes = 300
	cfg.NumClusters = 12
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestGeneratorValidation(t *testing.T) {
	inst := testInstance(t)
	if _, err := NewGenerator(inst, 0, 1); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewGenerator(inst, -1, 1); err == nil {
		t.Error("m<0 should fail")
	}
}

func TestGeneratorQueriesValid(t *testing.T) {
	inst := testInstance(t)
	g, err := NewGenerator(inst, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		q := g.Next()
		if int(q.Origin) < 0 || int(q.Origin) >= len(inst.Nodes) {
			t.Fatalf("origin %d out of range", q.Origin)
		}
		if inst.Catalog.Cat(q.Category) == nil {
			t.Fatalf("unknown category %d", q.Category)
		}
		if q.M != 3 {
			t.Fatalf("m = %d", q.M)
		}
		if len(q.Keywords) == 0 {
			t.Fatal("query without keywords")
		}
	}
}

func TestGeneratorFollowsPopularity(t *testing.T) {
	inst := testInstance(t)
	g, err := NewGenerator(inst, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const draws = 30000
	for i := 0; i < draws; i++ {
		counts[int(g.Next().Category)]++
	}
	// The empirically hottest category should be among the genuinely
	// popular ones: compare the top category's sampled share with its
	// true popularity.
	pops := inst.Catalog.CategoryPopularities()
	for c, n := range counts {
		got := float64(n) / draws
		want := pops[c]
		tol := 4*math.Sqrt(want*(1-want)/draws) + 2e-3
		if math.Abs(got-want) > tol {
			t.Errorf("category %d: sampled %.4f, popularity %.4f", c, got, want)
		}
	}
}

func TestWithRepeatZeroKeepsSequence(t *testing.T) {
	inst := testInstance(t)
	a, err := NewGenerator(inst, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(inst, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b.WithRepeat(0, 8) // disabled repeats must not perturb the rng stream
	for i := 0; i < 200; i++ {
		qa, qb := a.Next(), b.Next()
		if qa.Origin != qb.Origin || qa.Category != qb.Category {
			t.Fatalf("query %d diverged: %+v vs %+v", i, qa, qb)
		}
	}
}

func TestWithRepeatProducesRepeats(t *testing.T) {
	inst := testInstance(t)
	g, err := NewGenerator(inst, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	g.WithRepeat(0.5, 8)
	type key struct {
		o model.NodeID
		c int
	}
	seen := make(map[key]int)
	repeats := 0
	const n = 2000
	for i := 0; i < n; i++ {
		q := g.Next()
		k := key{q.Origin, int(q.Category)}
		if seen[k] > 0 {
			repeats++
		}
		seen[k]++
	}
	// With p=0.5 roughly half the draws are exact repeats of a recent
	// query; pure Zipf over 300 origins × 60 categories almost never
	// collides on the (origin, category) pair.
	if repeats < n/4 {
		t.Errorf("only %d of %d draws repeated a recent query, want ≥ %d", repeats, n, n/4)
	}
	if len(g.recent) > 8 {
		t.Errorf("recent window grew to %d, want ≤ 8", len(g.recent))
	}
}

func TestInterarrival(t *testing.T) {
	inst := testInstance(t)
	g, _ := NewGenerator(inst, 1, 3)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := g.Interarrival(100 * time.Millisecond)
		if d < 0 {
			t.Fatal("negative interarrival")
		}
		sum += d
	}
	mean := sum / n
	if mean < 90*time.Millisecond || mean > 110*time.Millisecond {
		t.Errorf("mean interarrival %v, want ~100ms", mean)
	}
}

func TestPlanChurn(t *testing.T) {
	inst := testInstance(t)
	rng := rand.New(rand.NewSource(1))
	plan, err := PlanChurn(inst, 0.1, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Leaves) != 30 || plan.Joins != 5 {
		t.Errorf("plan = %d leaves, %d joins", len(plan.Leaves), plan.Joins)
	}
	seen := make(map[model.NodeID]bool)
	for _, n := range plan.Leaves {
		if seen[n] {
			t.Fatal("duplicate leaver")
		}
		seen[n] = true
	}
	if _, err := PlanChurn(inst, 1.0, 0, rng); err == nil {
		t.Error("leaveFraction=1 should fail")
	}
	if _, err := PlanChurn(inst, -0.1, 0, rng); err == nil {
		t.Error("negative leaveFraction should fail")
	}
}

func TestFlashCrowd(t *testing.T) {
	inst := testInstance(t)
	rng := rand.New(rand.NewSource(2))
	before := inst.DocCount()
	ids, err := FlashCrowd(inst, 0.05, 0.30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != before/20 {
		t.Errorf("added %d docs, want %d", len(ids), before/20)
	}
	if inst.DocCount() != before+len(ids) {
		t.Error("doc count mismatch")
	}
	// Every new doc has a contributor and the contributor lists it.
	for _, d := range ids {
		k := inst.Contributors[d]
		if k < 0 {
			t.Fatalf("doc %d has no contributor", d)
		}
		found := false
		for _, di := range inst.Nodes[k].Contributed {
			if di == d {
				found = true
			}
		}
		if !found {
			t.Fatalf("contributor %d does not list doc %d", k, d)
		}
	}
	if math.Abs(inst.Catalog.TotalPopularity()-1) > 1e-9 {
		t.Error("popularity no longer normalized")
	}
}

func TestFlashCrowdIn(t *testing.T) {
	inst := testInstance(t)
	rng := rand.New(rand.NewSource(3))
	ids, err := FlashCrowdIn(inst, 0.05, 0.30, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	cats := make(map[int]bool)
	for _, d := range ids {
		cats[int(inst.Catalog.Doc(d).Categories[0])] = true
	}
	if len(cats) > 4 {
		t.Errorf("flash crowd spread over %d categories, want <= 4", len(cats))
	}
	// spread=0 means unrestricted.
	ids2, err := FlashCrowdIn(inst, 0.02, 0.10, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids2) == 0 {
		t.Error("no docs added")
	}
}

func TestZipfGeneratorValidation(t *testing.T) {
	inst := testInstance(t)
	if _, err := NewZipfGenerator(inst, 0, 1.0, 1); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewZipfGenerator(inst, 3, -0.5, 1); err == nil {
		t.Error("negative exponent should fail")
	}
}

// TestZipfGeneratorSkew: a larger exponent concentrates more of the
// draw mass on the hottest documents, s=0 is uniform, and the ranking
// follows catalog popularity (the hottest docs under Zipf are the
// catalog's most popular ones, just with reweighted mass).
func TestZipfGeneratorSkew(t *testing.T) {
	inst := testInstance(t)
	const draws = 20000
	topShare := func(s float64) float64 {
		g, err := NewZipfGenerator(inst, 1, s, 7)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[int]int)
		for i := 0; i < draws; i++ {
			counts[int(g.Next().Category)]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		return float64(best) / draws
	}
	flat, classic, extreme := topShare(0), topShare(1.0), topShare(1.8)
	if !(flat < classic && classic < extreme) {
		t.Errorf("top-category share must grow with the exponent: s=0 %.3f, s=1 %.3f, s=1.8 %.3f",
			flat, classic, extreme)
	}
	// s=0 is uniform over documents: no category should dominate beyond
	// its share of the catalog (with generous sampling slack).
	maxCatDocs := 0
	perCat := make(map[int]int)
	for _, d := range inst.Catalog.Docs {
		for _, c := range d.Categories {
			perCat[int(c)]++
			if perCat[int(c)] > maxCatDocs {
				maxCatDocs = perCat[int(c)]
			}
		}
	}
	// Each draw picks one of the doc's categories, so an upper bound on
	// any category share under uniform docs is its doc share.
	bound := float64(maxCatDocs)/float64(len(inst.Catalog.Docs)) + 0.05
	if flat > bound {
		t.Errorf("s=0 top-category share %.3f exceeds uniform bound %.3f", flat, bound)
	}
}

// TestZipfGeneratorDeterministic: same (m, s, seed) → identical stream.
func TestZipfGeneratorDeterministic(t *testing.T) {
	inst := testInstance(t)
	a, err := NewZipfGenerator(inst, 2, 1.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewZipfGenerator(inst, 2, 1.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		qa, qb := a.Next(), b.Next()
		if qa.Category != qb.Category || qa.Origin != qb.Origin {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, qa, qb)
		}
	}
}
