package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should read zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %g", h.Mean())
	}
	if h.Max() != 5 {
		t.Errorf("Max = %g", h.Max())
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %g", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("p0 = %g", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Errorf("p100 = %g", q)
	}
}

func TestHistogramQuantileNearestRank(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0.95); q != 95 {
		t.Errorf("p95 = %g, want 95", q)
	}
	if q := h.Quantile(0.01); q != 1 {
		t.Errorf("p1 = %g, want 1", q)
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(5)
	_ = h.Quantile(0.5)
	h.Observe(1) // must re-sort lazily
	if q := h.Quantile(0); q != 1 {
		t.Errorf("quantile after new observation = %g, want 1", q)
	}
}

func TestHistogramDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Millisecond)
	if got := h.Mean(); got != 1500 {
		t.Errorf("duration in ms = %g", got)
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	h.Observe(2)
	if s := h.Summary(); !strings.Contains(s, "n=1") {
		t.Errorf("summary %q missing count", s)
	}
}

func TestHistogramPercentileSummary(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.PercentileSummary()
	for _, want := range []string{"n=100", "p50=50.00", "p95=95.00", "p99=99.00", "max=100.00"} {
		if !strings.Contains(s, want) {
			t.Errorf("percentile summary %q missing %q", s, want)
		}
	}
}

func TestHistogramDistribution(t *testing.T) {
	var h Histogram
	if h.Distribution(10, 40) != "" {
		t.Error("empty histogram should render an empty distribution")
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 10))
	}
	chart := h.Distribution(10, 20)
	if lines := strings.Count(chart, "\n"); lines != 10 {
		t.Errorf("distribution has %d rows, want 10:\n%s", lines, chart)
	}
	if !strings.Contains(chart, "█") {
		t.Errorf("distribution has no bars:\n%s", chart)
	}
	// Uniform samples: every bucket bar is the full width.
	if got := strings.Count(chart, "█"); got != 10*20 {
		t.Errorf("uniform distribution drew %d cells, want %d", got, 10*20)
	}

	var flat Histogram
	flat.Observe(7)
	flat.Observe(7)
	one := flat.Distribution(5, 10)
	if lines := strings.Count(one, "\n"); lines != 1 {
		t.Errorf("zero-span distribution has %d rows, want 1:\n%s", lines, one)
	}
	if !strings.Contains(one, "2") {
		t.Errorf("zero-span distribution missing count:\n%s", one)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			h.Observe(rng.Float64() * 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("a", 2)
	c.Add("b", 1)
	c.Add("a", 3)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("missing") != 0 {
		t.Error("counter arithmetic wrong")
	}
	labels := c.Labels()
	if !sort.StringsAreSorted(labels) || len(labels) != 2 {
		t.Errorf("labels = %v", labels)
	}
}

func TestTimeline(t *testing.T) {
	var tl Timeline
	if tl.Len() != 0 || tl.Min() != 0 || tl.Last() != 0 {
		t.Error("empty timeline should read zeros")
	}
	tl.Record(time.Second, 0.9)
	tl.Record(2*time.Second, 0.7)
	tl.Record(3*time.Second, 0.95)
	if tl.Len() != 3 || tl.Min() != 0.7 || tl.Last() != 0.95 {
		t.Errorf("timeline stats wrong: len=%d min=%g last=%g", tl.Len(), tl.Min(), tl.Last())
	}
	chart := tl.ASCIIChart(0, 1, 20)
	if !strings.Contains(chart, "0.9500") {
		t.Errorf("chart missing value:\n%s", chart)
	}
	if lines := strings.Count(chart, "\n"); lines != 3 {
		t.Errorf("chart has %d lines, want 3", lines)
	}
}

func TestTimelineChartClamps(t *testing.T) {
	var tl Timeline
	tl.Record(0, -5)
	tl.Record(time.Second, 99)
	chart := tl.ASCIIChart(0, 1, 10)
	if strings.Count(chart, "█") != 10 {
		t.Errorf("clamped chart should draw exactly one full bar:\n%s", chart)
	}
}

func TestLoadVector(t *testing.T) {
	lv := NewLoadVector(4)
	lv.Inc(0)
	lv.Inc(0)
	lv.Add(2, 5)
	if lv.Get(0) != 2 || lv.Get(2) != 5 || lv.Get(1) != 0 {
		t.Error("load vector arithmetic wrong")
	}
	if lv.Total() != 7 || lv.Len() != 4 {
		t.Errorf("total=%d len=%d", lv.Total(), lv.Len())
	}
	fs := lv.Floats()
	fs[0] = 99
	if lv.Get(0) != 2 {
		t.Error("Floats should copy")
	}
	sub := lv.Subset([]int{2, 0})
	if sub[0] != 5 || sub[1] != 2 {
		t.Errorf("Subset = %v", sub)
	}
}

func TestSyncCounterConcurrent(t *testing.T) {
	c := NewSyncCounter()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add("dials", 1)
				c.Add("sends", 2)
			}
		}()
	}
	wg.Wait()
	if c.Get("dials") != 8000 || c.Get("sends") != 16000 {
		t.Errorf("dials=%d sends=%d", c.Get("dials"), c.Get("sends"))
	}
	snap := c.Snapshot()
	snap["dials"] = 0
	if c.Get("dials") != 8000 {
		t.Error("Snapshot should copy")
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "dials" || labels[1] != "sends" {
		t.Errorf("Labels = %v", labels)
	}
}

func TestSyncGaugeConcurrent(t *testing.T) {
	g := NewSyncGauge()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add("membership_alive", 1)
				g.Add("membership_alive", -1)
				g.Set("fairness_x1000", 920)
			}
		}()
	}
	wg.Wait()
	if g.Get("membership_alive") != 0 {
		t.Errorf("alive = %d, want 0 after balanced adds", g.Get("membership_alive"))
	}
	if g.Get("fairness_x1000") != 920 {
		t.Errorf("fairness = %d", g.Get("fairness_x1000"))
	}
	g.Set("membership_suspect", 3)
	snap := g.Snapshot()
	snap["membership_suspect"] = 0
	if g.Get("membership_suspect") != 3 {
		t.Error("Snapshot should copy")
	}
	labels := g.Labels()
	if len(labels) != 3 || labels[0] != "fairness_x1000" {
		t.Errorf("Labels = %v", labels)
	}
	if g.Get("never_set") != 0 {
		t.Error("unset label should read 0")
	}
}

func TestSyncHistogramConcurrent(t *testing.T) {
	var h SyncHistogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(g))
				h.ObserveDuration(time.Duration(g) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Max() != 7 {
		t.Errorf("max = %f", h.Max())
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != 7 {
		t.Errorf("quantiles = %f..%f", h.Quantile(0), h.Quantile(1))
	}
	if h.Summary() == "" {
		t.Error("empty summary")
	}
	if m := h.Mean(); m <= 0 || m >= 7 {
		t.Errorf("mean = %f", m)
	}
}

func TestHistogramSum(t *testing.T) {
	var h Histogram
	if h.Sum() != 0 {
		t.Errorf("empty Sum = %g, want 0", h.Sum())
	}
	for _, v := range []float64{1.5, 2, 3.5} {
		h.Observe(v)
	}
	if got := h.Sum(); got != 7 {
		t.Errorf("Sum = %g, want 7", got)
	}
	var sh SyncHistogram
	sh.Observe(4)
	sh.Observe(6)
	if got := sh.Sum(); got != 10 {
		t.Errorf("SyncHistogram Sum = %g, want 10", got)
	}
}
