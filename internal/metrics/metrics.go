// Package metrics provides the counters, histograms, and time series the
// experiment harness reports: per-node load counters, hop/latency
// histograms with quantiles, and fairness timelines.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram collects float64 observations and answers summary queries.
// It keeps raw samples; experiment populations are small enough (≤ a few
// million) that exactness beats sketching.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Sum returns the total of all samples (0 when empty).
func (h *Histogram) Sum() float64 {
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	var max float64
	for i, v := range h.samples {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank; it
// returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Summary renders count/mean/p50/p95/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
}

// PercentileSummary renders count/mean plus the tail percentiles a load
// test reports (p50/p95/p99/max) on one line.
func (h *Histogram) PercentileSummary() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Distribution renders the samples as a fixed-width ASCII bucket chart:
// `buckets` equal-width ranges over [min, max], one row per bucket with a
// bar scaled to the most populated bucket. Empty histograms render "".
func (h *Histogram) Distribution(buckets, width int) string {
	if len(h.samples) == 0 {
		return ""
	}
	if buckets <= 0 {
		buckets = 10
	}
	if width <= 0 {
		width = 40
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	lo, hi := h.samples[0], h.samples[len(h.samples)-1]
	span := hi - lo
	if span == 0 {
		return fmt.Sprintf("%10.2f .. %10.2f | %s %d\n", lo, hi,
			strings.Repeat("█", width), len(h.samples))
	}
	counts := make([]int, buckets)
	for _, v := range h.samples {
		i := int(float64(buckets) * (v - lo) / span)
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		from := lo + span*float64(i)/float64(buckets)
		to := lo + span*float64(i+1)/float64(buckets)
		bar := int(float64(width) * float64(c) / float64(peak))
		fmt.Fprintf(&b, "%10.2f .. %10.2f | %s %d\n", from, to, strings.Repeat("█", bar), c)
	}
	return b.String()
}

// Counter is a labelled monotonically increasing count.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Add increments label by delta.
func (c *Counter) Add(label string, delta int64) { c.counts[label] += delta }

// Get returns the count for label.
func (c *Counter) Get(label string) int64 { return c.counts[label] }

// Labels returns all labels in sorted order.
func (c *Counter) Labels() []string {
	out := make([]string, 0, len(c.counts))
	for l := range c.counts {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// SyncCounter is a labelled monotonically increasing count safe for
// concurrent use — the live transport's writer goroutines and the node
// event loop all increment the same set.
type SyncCounter struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewSyncCounter returns an empty concurrent counter set.
func NewSyncCounter() *SyncCounter {
	return &SyncCounter{counts: make(map[string]int64)}
}

// Add increments label by delta.
func (c *SyncCounter) Add(label string, delta int64) {
	c.mu.Lock()
	c.counts[label] += delta
	c.mu.Unlock()
}

// Get returns the count for label.
func (c *SyncCounter) Get(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[label]
}

// Snapshot returns a copy of all counts.
func (c *SyncCounter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for l, v := range c.counts {
		out[l] = v
	}
	return out
}

// Labels returns all labels in sorted order.
func (c *SyncCounter) Labels() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.counts))
	for l := range c.counts {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// SyncGauge is a labelled point-in-time value safe for concurrent use —
// unlike SyncCounter it can move down as well as up (live member counts,
// the current fairness index). Values are int64 so a snapshot merges
// directly into the same Stats() map as the counters; callers with
// fractional quantities scale them (e.g. fairness ×1000).
type SyncGauge struct {
	mu   sync.Mutex
	vals map[string]int64
}

// NewSyncGauge returns an empty concurrent gauge set.
func NewSyncGauge() *SyncGauge {
	return &SyncGauge{vals: make(map[string]int64)}
}

// Set replaces the value for label.
func (g *SyncGauge) Set(label string, v int64) {
	g.mu.Lock()
	g.vals[label] = v
	g.mu.Unlock()
}

// Add moves the value for label by delta (negative deltas allowed).
func (g *SyncGauge) Add(label string, delta int64) {
	g.mu.Lock()
	g.vals[label] += delta
	g.mu.Unlock()
}

// Get returns the current value for label (0 when never set).
func (g *SyncGauge) Get(label string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.vals[label]
}

// Snapshot returns a copy of all gauge values.
func (g *SyncGauge) Snapshot() map[string]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int64, len(g.vals))
	for l, v := range g.vals {
		out[l] = v
	}
	return out
}

// Labels returns all labels in sorted order.
func (g *SyncGauge) Labels() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.vals))
	for l := range g.vals {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// SyncHistogram is a Histogram safe for concurrent observers (e.g. query
// latency recorded from many caller goroutines).
type SyncHistogram struct {
	mu sync.Mutex
	h  Histogram
}

// Observe records one sample.
func (h *SyncHistogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// ObserveDuration records a duration in milliseconds.
func (h *SyncHistogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of samples.
func (h *SyncHistogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Count()
}

// Mean returns the sample mean (0 when empty).
func (h *SyncHistogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Mean()
}

// Quantile returns the q-quantile by nearest-rank (0 when empty).
func (h *SyncHistogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Quantile(q)
}

// Sum returns the total of all samples (0 when empty).
func (h *SyncHistogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Sum()
}

// Max returns the largest sample (0 when empty).
func (h *SyncHistogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Max()
}

// Summary renders count/mean/p50/p95/max on one line.
func (h *SyncHistogram) Summary() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Summary()
}

// PercentileSummary renders count/mean/p50/p95/p99/max on one line.
func (h *SyncHistogram) PercentileSummary() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.PercentileSummary()
}

// Distribution renders an ASCII bucket chart of the samples.
func (h *SyncHistogram) Distribution(buckets, width int) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Distribution(buckets, width)
}

// Timeline is a time-stamped series of float64 values (e.g. the fairness
// index over a dynamic run).
type Timeline struct {
	Times  []time.Duration
	Values []float64
}

// Record appends a point; times must be non-decreasing.
func (tl *Timeline) Record(at time.Duration, v float64) {
	tl.Times = append(tl.Times, at)
	tl.Values = append(tl.Values, v)
}

// Len returns the number of points.
func (tl *Timeline) Len() int { return len(tl.Values) }

// Min returns the smallest recorded value (0 when empty).
func (tl *Timeline) Min() float64 {
	var min float64
	for i, v := range tl.Values {
		if i == 0 || v < min {
			min = v
		}
	}
	return min
}

// Last returns the most recent value (0 when empty).
func (tl *Timeline) Last() float64 {
	if len(tl.Values) == 0 {
		return 0
	}
	return tl.Values[len(tl.Values)-1]
}

// ASCIIChart renders the timeline as a crude fixed-width chart for CLI
// reports: one row per point, a bar scaled to [lo, hi].
func (tl *Timeline) ASCIIChart(lo, hi float64, width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	for i, v := range tl.Values {
		frac := (v - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		n := int(frac * float64(width))
		fmt.Fprintf(&b, "%10v | %s %.4f\n", tl.Times[i].Truncate(time.Millisecond), strings.Repeat("█", n), v)
	}
	return b.String()
}

// LoadVector accumulates per-index load counts (requests served per node)
// and converts to a float slice for fairness computations.
type LoadVector struct {
	counts []int64
}

// NewLoadVector sizes the vector for n indices.
func NewLoadVector(n int) *LoadVector { return &LoadVector{counts: make([]int64, n)} }

// Inc adds one unit of load to index i.
func (lv *LoadVector) Inc(i int) { lv.counts[i]++ }

// Add adds delta load to index i.
func (lv *LoadVector) Add(i int, delta int64) { lv.counts[i] += delta }

// Get returns the load at index i.
func (lv *LoadVector) Get(i int) int64 { return lv.counts[i] }

// Len returns the vector length.
func (lv *LoadVector) Len() int { return len(lv.counts) }

// Total returns the summed load.
func (lv *LoadVector) Total() int64 {
	var sum int64
	for _, c := range lv.counts {
		sum += c
	}
	return sum
}

// Floats returns the loads as float64s (a copy).
func (lv *LoadVector) Floats() []float64 {
	out := make([]float64, len(lv.counts))
	for i, c := range lv.counts {
		out[i] = float64(c)
	}
	return out
}

// Subset returns the loads at the given indices.
func (lv *LoadVector) Subset(idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = float64(lv.counts[j])
	}
	return out
}
