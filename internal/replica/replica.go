// Package replica implements the paper's intra-cluster document placement
// policy (§4.3.3).
//
// Random target-node selection only balances load within a cluster when
// every node holds (roughly) the same stored popularity. The paper's
// policy achieves that cheaply:
//
//  1. every node keeps the documents it contributed;
//  2. the top-m most popular documents of the cluster — those covering a
//     configurable share of the cluster's probability mass (35% in the
//     paper) — are replicated on *every* node of the cluster;
//  3. the remaining documents receive n_reps replicas each, dealt
//     greedily to the least-popular node with spare capacity, equalizing
//     the per-node stored popularity.
package replica

import (
	"fmt"
	"sort"

	"p2pshare/internal/catalog"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
)

// Config tunes the placement policy.
type Config struct {
	// NReps is the desired number of replicas per non-hot document
	// (paper examples use 2 and 5).
	NReps int
	// HotMass is the share of each cluster's probability mass whose
	// documents are replicated on every node (paper: 0.35).
	HotMass float64
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config { return Config{NReps: 2, HotMass: 0.35} }

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.NReps < 1 {
		return fmt.Errorf("replica: NReps must be >= 1, got %d", c.NReps)
	}
	if c.HotMass < 0 || c.HotMass > 1 {
		return fmt.Errorf("replica: HotMass %g out of [0,1]", c.HotMass)
	}
	return nil
}

// Placement is the result of running the policy over all clusters.
type Placement struct {
	// Stored lists the documents stored by each node (contributions,
	// hot replicas, and dealt replicas), indexed by node id.
	Stored [][]catalog.DocID
	// StoredPopularity is the summed popularity each node stores.
	StoredPopularity []float64
	// StoredBytes is the storage each node uses.
	StoredBytes []int64
	// HotDocs lists, per cluster, the documents replicated on every
	// member node.
	HotDocs [][]catalog.DocID
	// Replicas counts the placed copies of each document system-wide.
	Replicas []int
	// CapacityDrops counts replicas that could not be placed because no
	// member node had spare capacity (reported, never silently ignored).
	CapacityDrops int
}

// Place runs the policy for every cluster under the given assignment and
// membership.
func Place(inst *model.Instance, assign []model.ClusterID, mem *model.Membership, cfg Config) (*Placement, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(inst.Nodes)
	p := &Placement{
		Stored:           make([][]catalog.DocID, n),
		StoredPopularity: make([]float64, n),
		StoredBytes:      make([]int64, n),
		HotDocs:          make([][]catalog.DocID, inst.NumClusters),
		Replicas:         make([]int, len(inst.Catalog.Docs)),
	}
	has := make([]map[catalog.DocID]bool, n)
	for k := range has {
		has[k] = make(map[catalog.DocID]bool)
	}

	store := func(k model.NodeID, di catalog.DocID) {
		d := &inst.Catalog.Docs[di]
		p.Stored[k] = append(p.Stored[k], di)
		p.StoredPopularity[k] += d.Popularity
		p.StoredBytes[k] += d.Size
		p.Replicas[di]++
		has[k][di] = true
	}

	// 1. Contributions stay home.
	for k := range inst.Nodes {
		for _, di := range inst.Nodes[k].Contributed {
			store(model.NodeID(k), di)
		}
	}

	// 2 + 3 per cluster.
	for c := 0; c < inst.NumClusters; c++ {
		cl := model.ClusterID(c)
		nodes := mem.NodesOf(cl)
		if len(nodes) == 0 {
			continue
		}
		docs := model.ClusterDocs(inst, assign, cl)
		if len(docs) == 0 {
			continue
		}
		// Descending popularity; stable for determinism.
		sort.SliceStable(docs, func(i, j int) bool {
			return inst.Catalog.Docs[docs[i]].Popularity > inst.Catalog.Docs[docs[j]].Popularity
		})
		var clusterMass float64
		for _, di := range docs {
			clusterMass += inst.Catalog.Docs[di].Popularity
		}

		// 2. Hot set: smallest prefix covering HotMass of the cluster.
		var hotCut int
		var cum float64
		for hotCut < len(docs) && cum < cfg.HotMass*clusterMass {
			cum += inst.Catalog.Docs[docs[hotCut]].Popularity
			hotCut++
		}
		hot := docs[:hotCut]
		p.HotDocs[cl] = append([]catalog.DocID(nil), hot...)
		for _, di := range hot {
			size := inst.Catalog.Docs[di].Size
			for _, k := range nodes {
				if has[k][di] {
					continue
				}
				if p.StoredBytes[k]+size > inst.Nodes[k].StorageCap {
					p.CapacityDrops++
					continue
				}
				store(k, di)
			}
		}

		// 3. Cold documents: NReps copies each, dealt to the node with the
		// least stored popularity that has room and lacks the doc. A
		// small heap would be asymptotically nicer; clusters are small
		// (hundreds of nodes) so a linear scan keeps the code obvious.
		for _, di := range docs[hotCut:] {
			d := &inst.Catalog.Docs[di]
			for have := p.Replicas[di]; have < cfg.NReps; have++ {
				best := model.NodeID(-1)
				for _, k := range nodes {
					if has[k][di] || p.StoredBytes[k]+d.Size > inst.Nodes[k].StorageCap {
						continue
					}
					if best == -1 || p.StoredPopularity[k] < p.StoredPopularity[best] {
						best = k
					}
				}
				if best == -1 {
					p.CapacityDrops++
					break
				}
				store(best, di)
			}
		}
	}
	return p, nil
}

// PlaceProportional is the §7(vii) alternative placement policy: instead
// of the hot-set rule, each document's replica count is proportional to
// its popularity share within its cluster, spending the same total budget
// the paper's policy would (|docs|·NReps), with at least one copy each.
// Replicas are dealt to the least-popular node with room, like Place.
func PlaceProportional(inst *model.Instance, assign []model.ClusterID, mem *model.Membership, cfg Config) (*Placement, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(inst.Nodes)
	p := &Placement{
		Stored:           make([][]catalog.DocID, n),
		StoredPopularity: make([]float64, n),
		StoredBytes:      make([]int64, n),
		HotDocs:          make([][]catalog.DocID, inst.NumClusters),
		Replicas:         make([]int, len(inst.Catalog.Docs)),
	}
	has := make([]map[catalog.DocID]bool, n)
	for k := range has {
		has[k] = make(map[catalog.DocID]bool)
	}
	store := func(k model.NodeID, di catalog.DocID) {
		d := &inst.Catalog.Docs[di]
		p.Stored[k] = append(p.Stored[k], di)
		p.StoredPopularity[k] += d.Popularity
		p.StoredBytes[k] += d.Size
		p.Replicas[di]++
		has[k][di] = true
	}
	for k := range inst.Nodes {
		for _, di := range inst.Nodes[k].Contributed {
			store(model.NodeID(k), di)
		}
	}
	for c := 0; c < inst.NumClusters; c++ {
		cl := model.ClusterID(c)
		nodes := mem.NodesOf(cl)
		if len(nodes) == 0 {
			continue
		}
		docs := model.ClusterDocs(inst, assign, cl)
		if len(docs) == 0 {
			continue
		}
		sort.SliceStable(docs, func(i, j int) bool {
			return inst.Catalog.Docs[docs[i]].Popularity > inst.Catalog.Docs[docs[j]].Popularity
		})
		var clusterMass float64
		for _, di := range docs {
			clusterMass += inst.Catalog.Docs[di].Popularity
		}
		if clusterMass <= 0 {
			continue
		}
		budget := len(docs) * cfg.NReps
		for _, di := range docs {
			d := &inst.Catalog.Docs[di]
			want := int(float64(budget) * d.Popularity / clusterMass)
			if want < 1 {
				want = 1
			}
			if want > len(nodes) {
				want = len(nodes)
			}
			for have := p.Replicas[di]; have < want; have++ {
				best := model.NodeID(-1)
				for _, k := range nodes {
					if has[k][di] || p.StoredBytes[k]+d.Size > inst.Nodes[k].StorageCap {
						continue
					}
					if best == -1 || p.StoredPopularity[k] < p.StoredPopularity[best] {
						best = k
					}
				}
				if best == -1 {
					p.CapacityDrops++
					break
				}
				store(best, di)
			}
		}
	}
	return p, nil
}

// PlaceCategory re-runs the placement policy for ONE category against an
// explicit member list — the receiving-cluster side of a live category
// move (§6.1.2 lazy rebalancing). Every member of the destination
// cluster can compute the identical map independently (the inputs are
// all part of the shared deterministic model) and store its own share,
// so the move needs no placement coordinator. Unlike Place it does not
// consult storage capacities: the members' current occupancy is not
// globally known, and one category is a small slice of a cluster's
// corpus.
func PlaceCategory(inst *model.Instance, cat catalog.CategoryID, members []model.NodeID, cfg Config) map[model.NodeID][]catalog.DocID {
	if err := cfg.Validate(); err != nil {
		cfg = DefaultConfig()
	}
	out := make(map[model.NodeID][]catalog.DocID)
	if len(members) == 0 {
		return out
	}
	ms := append([]model.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })

	var docs []catalog.DocID
	var mass float64
	for di := range inst.Catalog.Docs {
		d := &inst.Catalog.Docs[di]
		if len(d.Categories) > 0 && d.Categories[0] == cat {
			docs = append(docs, catalog.DocID(di))
			mass += d.Popularity
		}
	}
	sort.SliceStable(docs, func(i, j int) bool {
		return inst.Catalog.Docs[docs[i]].Popularity > inst.Catalog.Docs[docs[j]].Popularity
	})

	load := make(map[model.NodeID]float64, len(ms))
	give := func(k model.NodeID, di catalog.DocID) {
		out[k] = append(out[k], di)
		load[k] += inst.Catalog.Docs[di].Popularity
	}

	// Hot prefix to every member, like Place's step 2.
	var cum float64
	hotCut := 0
	for hotCut < len(docs) && cum < cfg.HotMass*mass {
		cum += inst.Catalog.Docs[docs[hotCut]].Popularity
		hotCut++
	}
	for _, di := range docs[:hotCut] {
		for _, k := range ms {
			give(k, di)
		}
	}
	// Cold documents: NReps copies each, dealt to the member with the
	// least popularity accumulated within this placement (ties to the
	// lowest id via the sorted scan order).
	for _, di := range docs[hotCut:] {
		reps := cfg.NReps
		if reps > len(ms) {
			reps = len(ms)
		}
		taken := make(map[model.NodeID]bool, reps)
		for r := 0; r < reps; r++ {
			best := model.NodeID(-1)
			for _, k := range ms {
				if taken[k] {
					continue
				}
				if best == -1 || load[k] < load[best] {
					best = k
				}
			}
			taken[best] = true
			give(best, di)
		}
	}
	return out
}

// IntraClusterFairness returns, per cluster, Jain's index over the stored
// popularity of its member nodes — the quantity the random-target query
// policy needs near 1 for intra-cluster load balance (§4.3.3).
func (p *Placement) IntraClusterFairness(mem *model.Membership) []float64 {
	out := make([]float64, len(mem.ClusterNodes))
	for c, nodes := range mem.ClusterNodes {
		xs := make([]float64, len(nodes))
		for i, k := range nodes {
			xs[i] = p.StoredPopularity[k]
		}
		out[c] = fairness.Jain(xs)
	}
	return out
}

// MaxStoredBytes returns the largest per-node storage footprint.
func (p *Placement) MaxStoredBytes() int64 {
	var max int64
	for _, b := range p.StoredBytes {
		if b > max {
			max = b
		}
	}
	return max
}

// MinReplicas returns the smallest replica count over documents that exist
// in a cluster with at least one member node; isolated documents are
// skipped because no policy can place them.
func (p *Placement) MinReplicas() int {
	min := -1
	for _, r := range p.Replicas {
		if r == 0 {
			continue
		}
		if min == -1 || r < min {
			min = r
		}
	}
	if min == -1 {
		return 0
	}
	return min
}
