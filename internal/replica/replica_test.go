package replica

import (
	"sort"
	"testing"

	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
)

func setup(t testing.TB) (*model.Instance, []model.ClusterID, *model.Membership) {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 3000
	cfg.Catalog.NumCats = 60
	cfg.NumNodes = 300
	cfg.NumClusters = 12
	cfg.Seed = 50
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	return inst, res.Assignment, mem
}

func TestPlaceRespectsCapacity(t *testing.T) {
	inst, assign, mem := setup(t)
	p, err := Place(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := range inst.Nodes {
		if p.StoredBytes[k] > inst.Nodes[k].StorageCap {
			t.Fatalf("node %d stores %d bytes over capacity %d",
				k, p.StoredBytes[k], inst.Nodes[k].StorageCap)
		}
	}
}

func TestPlaceKeepsContributions(t *testing.T) {
	inst, assign, mem := setup(t)
	p, err := Place(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := range inst.Nodes {
		stored := make(map[catalog.DocID]bool, len(p.Stored[k]))
		for _, di := range p.Stored[k] {
			stored[di] = true
		}
		for _, di := range inst.Nodes[k].Contributed {
			if !stored[di] {
				t.Fatalf("node %d lost contributed doc %d", k, di)
			}
		}
	}
}

func TestPlaceNoDuplicateCopiesPerNode(t *testing.T) {
	inst, assign, mem := setup(t)
	p, err := Place(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := range p.Stored {
		seen := make(map[catalog.DocID]bool)
		for _, di := range p.Stored[k] {
			if seen[di] {
				t.Fatalf("node %d stores doc %d twice", k, di)
			}
			seen[di] = true
		}
	}
}

func TestPlaceReachesReplicationDegree(t *testing.T) {
	inst, assign, mem := setup(t)
	cfg := DefaultConfig()
	p, err := Place(inst, assign, mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With the default generous storage slack every document should reach
	// its replication degree (or have no drops recorded otherwise).
	if p.CapacityDrops > 0 {
		t.Logf("capacity drops: %d", p.CapacityDrops)
	}
	short := 0
	for di, r := range p.Replicas {
		if r == 0 {
			t.Fatalf("doc %d has no copies at all", di)
		}
		if r < cfg.NReps {
			short++
		}
	}
	// A document can stay below NReps only through capacity drops or a
	// single-node cluster.
	if short > 0 && p.CapacityDrops == 0 {
		single := 0
		for _, nodes := range mem.ClusterNodes {
			if len(nodes) == 1 {
				single++
			}
		}
		if single == 0 {
			t.Errorf("%d docs below replication degree without capacity drops", short)
		}
	}
}

func TestPlaceHotDocsOnAllNodes(t *testing.T) {
	inst, assign, mem := setup(t)
	p, err := Place(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.CapacityDrops > 0 {
		t.Skip("capacity drops make full hot replication unverifiable")
	}
	for c, hot := range p.HotDocs {
		nodes := mem.NodesOf(model.ClusterID(c))
		for _, di := range hot {
			if got := p.Replicas[di]; got < len(nodes) {
				t.Fatalf("hot doc %d in cluster %d has %d copies, cluster has %d nodes",
					di, c, got, len(nodes))
			}
		}
	}
}

func TestPlaceImprovesIntraClusterFairness(t *testing.T) {
	inst, assign, mem := setup(t)
	p, err := Place(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: contributions only.
	contribOnly := make([]float64, len(inst.Nodes))
	for k := range inst.Nodes {
		contribOnly[k] = inst.ContributedPopularity(model.NodeID(k))
	}
	var better, worse int
	for c, nodes := range mem.ClusterNodes {
		if len(nodes) < 2 {
			continue
		}
		base := make([]float64, len(nodes))
		placed := make([]float64, len(nodes))
		for i, k := range nodes {
			base[i] = contribOnly[k]
			placed[i] = p.StoredPopularity[k]
		}
		fb, fp := fairness.Jain(base), fairness.Jain(placed)
		if fp >= fb {
			better++
		} else {
			worse++
		}
		_ = c
	}
	if worse > better {
		t.Errorf("placement worsened intra-cluster fairness in %d clusters, improved %d", worse, better)
	}
	// Aggregate per-cluster fairness should be high.
	fs := p.IntraClusterFairness(mem)
	var sum float64
	var n int
	for c, f := range fs {
		if len(mem.ClusterNodes[c]) > 1 {
			sum += f
			n++
		}
	}
	if n > 0 && sum/float64(n) < 0.80 {
		t.Errorf("mean intra-cluster fairness %g < 0.80", sum/float64(n))
	}
}

func TestPlaceDeterministic(t *testing.T) {
	inst, assign, mem := setup(t)
	a, err := Place(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Stored {
		if len(a.Stored[k]) != len(b.Stored[k]) {
			t.Fatal("placement not deterministic")
		}
	}
}

func TestPlaceConfigValidation(t *testing.T) {
	inst, assign, mem := setup(t)
	if _, err := Place(inst, assign, mem, Config{NReps: 0, HotMass: 0.35}); err == nil {
		t.Error("NReps=0 should fail")
	}
	if _, err := Place(inst, assign, mem, Config{NReps: 2, HotMass: 1.5}); err == nil {
		t.Error("HotMass>1 should fail")
	}
	if _, err := Place(inst, assign, mem, Config{NReps: 2, HotMass: -0.1}); err == nil {
		t.Error("HotMass<0 should fail")
	}
}

func TestPlaceZeroHotMass(t *testing.T) {
	inst, assign, mem := setup(t)
	p, err := Place(inst, assign, mem, Config{NReps: 1, HotMass: 0})
	if err != nil {
		t.Fatal(err)
	}
	for c := range p.HotDocs {
		if len(p.HotDocs[c]) != 0 {
			t.Fatalf("cluster %d has hot docs with HotMass=0", c)
		}
	}
	// NReps=1 and contributions already stored: nothing extra placed.
	for di, r := range p.Replicas {
		if r != 1 {
			t.Fatalf("doc %d has %d replicas, want exactly 1", di, r)
		}
	}
}

func TestPlaceProportionalBasics(t *testing.T) {
	inst, assign, mem := setup(t)
	p, err := PlaceProportional(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Capacity respected, contributions kept, every doc has >= 1 copy.
	for k := range inst.Nodes {
		if p.StoredBytes[k] > inst.Nodes[k].StorageCap {
			t.Fatalf("node %d over capacity", k)
		}
	}
	for di, r := range p.Replicas {
		if r == 0 {
			t.Fatalf("doc %d has no copies", di)
		}
	}
	for k := range inst.Nodes {
		stored := make(map[catalog.DocID]bool, len(p.Stored[k]))
		for _, di := range p.Stored[k] {
			stored[di] = true
		}
		for _, di := range inst.Nodes[k].Contributed {
			if !stored[di] {
				t.Fatalf("node %d lost contributed doc %d", k, di)
			}
		}
	}
}

func TestPlaceProportionalPopularDocsGetMoreReplicas(t *testing.T) {
	inst, assign, mem := setup(t)
	p, err := PlaceProportional(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The most popular doc should have strictly more replicas than the
	// median doc.
	top := p.Replicas[0] // doc 0 is popularity rank 0
	counts := append([]int(nil), p.Replicas...)
	sort.Ints(counts)
	median := counts[len(counts)/2]
	if top <= median {
		t.Errorf("top doc has %d replicas, median %d — no proportionality", top, median)
	}
}

func TestPlaceProportionalUsesLessStorageThanHotSet(t *testing.T) {
	inst, assign, mem := setup(t)
	hot, err := Place(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prop, err := PlaceProportional(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	totalOf := func(p *Placement) (n int) {
		for _, r := range p.Replicas {
			n += r
		}
		return
	}
	if totalOf(prop) >= totalOf(hot) {
		t.Errorf("proportional placed %d replicas, hot-set %d — no saving",
			totalOf(prop), totalOf(hot))
	}
}

func TestAccessors(t *testing.T) {
	inst, assign, mem := setup(t)
	p, err := Place(inst, assign, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxStoredBytes() <= 0 {
		t.Error("MaxStoredBytes should be positive")
	}
	if p.MinReplicas() < 1 {
		t.Error("MinReplicas should be >= 1")
	}
}
