package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2pshare/internal/catalog"
)

func smallCfg() Config {
	c := DefaultConfig()
	c.Catalog.NumDocs = 2000
	c.Catalog.NumCats = 50
	c.NumNodes = 200
	c.NumClusters = 10
	return c
}

func TestGenerateBasics(t *testing.T) {
	inst, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if inst.NodeCount() != 200 || inst.DocCount() != 2000 || inst.CatCount() != 50 {
		t.Fatalf("counts: %d nodes %d docs %d cats", inst.NodeCount(), inst.DocCount(), inst.CatCount())
	}
	if inst.NumClusters != 10 {
		t.Fatalf("clusters = %d", inst.NumClusters)
	}
}

func TestGenerateEveryDocHasOneContributor(t *testing.T) {
	inst, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[catalog.DocID]NodeID)
	for i := range inst.Nodes {
		for _, di := range inst.Nodes[i].Contributed {
			if prev, dup := seen[di]; dup {
				t.Fatalf("doc %d contributed by both %d and %d", di, prev, inst.Nodes[i].ID)
			}
			seen[di] = inst.Nodes[i].ID
		}
	}
	if len(seen) != inst.DocCount() {
		t.Fatalf("%d of %d docs have contributors", len(seen), inst.DocCount())
	}
	for di, n := range seen {
		if inst.Contributors[di] != n {
			t.Fatalf("Contributors[%d] = %d, node list says %d", di, inst.Contributors[di], n)
		}
	}
}

func TestGenerateUnitsInRange(t *testing.T) {
	cfg := smallCfg()
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inst.Nodes {
		u := inst.Nodes[i].Units
		if u < float64(cfg.MinUnits) || u > float64(cfg.MaxUnits) {
			t.Fatalf("node %d units %g out of [%d,%d]", i, u, cfg.MinUnits, cfg.MaxUnits)
		}
	}
}

func TestGenerateStorageCoversContributions(t *testing.T) {
	inst, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range inst.Nodes {
		var contributed int64
		for _, di := range inst.Nodes[i].Contributed {
			contributed += inst.Catalog.Docs[di].Size
		}
		if inst.Nodes[i].StorageCap < contributed {
			t.Fatalf("node %d cap %d < contributed %d", i, inst.Nodes[i].StorageCap, contributed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i].Units != b.Nodes[i].Units || len(a.Nodes[i].Contributed) != len(b.Nodes[i].Contributed) {
			t.Fatal("same seed produced different instances")
		}
	}
}

func TestGenerateSeedChangesOutcome(t *testing.T) {
	cfg := smallCfg()
	a, _ := Generate(cfg)
	cfg.Seed = 999
	b, _ := Generate(cfg)
	same := true
	for i := range a.Nodes {
		if a.Nodes[i].Units != b.Nodes[i].Units {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical node units")
	}
}

func TestValidate(t *testing.T) {
	good := smallCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumNodes = 0 },
		func(c *Config) { c.NumClusters = -1 },
		func(c *Config) { c.MinUnits = 0 },
		func(c *Config) { c.MaxUnits = 0 },
		func(c *Config) { c.MinDocsPerNode = 0 },
		func(c *Config) { c.MaxDocsPerNode = 0 },
		func(c *Config) { c.StorageSlackFactor = 0.5 },
	}
	for i, mut := range mutations {
		c := smallCfg()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestContributedPopularity(t *testing.T) {
	inst, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := range inst.Nodes {
		p := inst.ContributedPopularity(inst.Nodes[i].ID)
		if p < 0 {
			t.Fatalf("node %d negative contributed popularity", i)
		}
		total += p
	}
	// Every doc contributed exactly once, so totals match the catalog.
	if math.Abs(total-inst.Catalog.TotalPopularity()) > 1e-9 {
		t.Errorf("summed contributed popularity %g != catalog total %g",
			total, inst.Catalog.TotalPopularity())
	}
}

func TestAttachDocument(t *testing.T) {
	inst, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ids, err := inst.Catalog.AddDocuments(5, 0.1, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := inst.AttachDocument(id, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.AttachDocument(ids[0], 4); err == nil {
		t.Error("re-attaching a document should fail")
	}
	if err := inst.AttachDocument(catalog.DocID(len(inst.Catalog.Docs)+10), 3); err == nil {
		t.Error("unknown doc should fail")
	}
	if err := inst.AttachDocument(ids[1], NodeID(len(inst.Nodes))); err == nil {
		t.Error("unknown node should fail")
	}
	found := 0
	for _, di := range inst.Nodes[3].Contributed {
		for _, id := range ids {
			if di == id {
				found++
			}
		}
	}
	if found != 5 {
		t.Errorf("node 3 lists %d of the 5 new docs", found)
	}
}

func TestGenerateContributionBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := smallCfg()
		cfg.Seed = seed
		inst, err := Generate(cfg)
		if err != nil {
			return false
		}
		// With more docs than nodes×min, every node contributes; counts
		// stay within [min, max] except for round-robin spillover which
		// only adds. Each doc exactly once is checked elsewhere; here
		// verify non-emptiness given the default ratios.
		for i := range inst.Nodes {
			if len(inst.Nodes[i].Contributed) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPaperConfigShape(t *testing.T) {
	c := PaperConfig()
	if c.Catalog.NumDocs != 200000 || c.NumNodes != 20000 ||
		c.NumClusters != 100 || c.Catalog.NumCats != 500 {
		t.Errorf("PaperConfig does not match §4.4: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}
