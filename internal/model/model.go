// Package model describes the peer population and whole-system instances
// of the inter-cluster load-balancing problem (ICLB, paper §4).
//
// A node contributes documents, offers processing capacity measured in
// units relative to a reference machine (paper §4.3.1, u ∈ [1..5] in the
// experiments), and offers storage capacity. An Instance bundles a catalog,
// a node population, and a target cluster count — everything MaxFair needs.
package model

import (
	"fmt"
	"math/rand"

	"p2pshare/internal/catalog"
)

// NodeID identifies a peer node.
type NodeID int32

// ClusterID identifies a peer cluster.
type ClusterID int32

// NoCluster marks an unset cluster reference.
const NoCluster ClusterID = -1

// Node is one peer: a user's computer contributing content and resources.
type Node struct {
	ID NodeID
	// Units is the node's processing capacity relative to a reference
	// point (paper §4.3.1: clock speed, CPU benchmark, ...).
	Units float64
	// StorageCap is the node's storage capacity in bytes offered to the
	// community. Nodes always store at least what they contribute.
	StorageCap int64
	// Contributed lists the documents the node published.
	Contributed []catalog.DocID
}

// Instance is a complete ICLB problem instance.
type Instance struct {
	Catalog     *catalog.Catalog
	Nodes       []Node
	NumClusters int
	// Contributors maps each document to the node that contributed it.
	Contributors []NodeID
}

// Config controls synthetic instance generation. The zero value is not
// valid; use DefaultConfig or PaperConfig as a starting point.
type Config struct {
	Catalog catalog.Config
	// NumNodes is the contributing ("altruistic") peer population; free
	// riders are excluded per the paper (§4.4).
	NumNodes    int
	NumClusters int
	// MinUnits/MaxUnits bound per-node processing units (paper: 1..5).
	MinUnits, MaxUnits int
	// MinDocsPerNode/MaxDocsPerNode bound content contributions
	// (paper: 1..20 documents spanning various categories).
	MinDocsPerNode, MaxDocsPerNode int
	// StorageSlackFactor scales node storage capacity: capacity =
	// factor × (bytes contributed) + StorageSlackBytes, leaving room for
	// replicas (§4.3.3).
	StorageSlackFactor float64
	// StorageSlackBytes is a flat extra capacity per node.
	StorageSlackBytes int64
	// Seed drives all generation randomness.
	Seed int64
}

// DefaultConfig is a laptop-friendly scaled-down configuration preserving
// the paper's shape (|D|:|N|:|S|:|C| ratios of the §4.4 experiments).
func DefaultConfig() Config {
	return Config{
		Catalog: catalog.Config{
			NumDocs:   20000,
			NumCats:   500,
			ThetaDocs: 0.8,
			ThetaCats: 0.7,
			CatAssign: catalog.AssignZipf,
		},
		NumNodes:           2000,
		NumClusters:        100,
		MinUnits:           1,
		MaxUnits:           5,
		MinDocsPerNode:     1,
		MaxDocsPerNode:     20,
		StorageSlackFactor: 8,
		StorageSlackBytes:  512 << 20,
		Seed:               1,
	}
}

// PaperConfig is the full-scale configuration of the paper's §4.4
// experiments: 200 000 documents, 20 000 nodes, 100 clusters, 500
// categories, units in [1..5], 1–20 documents per node.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Catalog.NumDocs = 200000
	c.NumNodes = 20000
	return c
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumNodes <= 0:
		return fmt.Errorf("model: NumNodes must be positive, got %d", c.NumNodes)
	case c.NumClusters <= 0:
		return fmt.Errorf("model: NumClusters must be positive, got %d", c.NumClusters)
	case c.MinUnits <= 0 || c.MaxUnits < c.MinUnits:
		return fmt.Errorf("model: bad units range [%d,%d]", c.MinUnits, c.MaxUnits)
	case c.MinDocsPerNode <= 0 || c.MaxDocsPerNode < c.MinDocsPerNode:
		return fmt.Errorf("model: bad docs-per-node range [%d,%d]", c.MinDocsPerNode, c.MaxDocsPerNode)
	case c.StorageSlackFactor < 1:
		return fmt.Errorf("model: StorageSlackFactor must be >= 1, got %g", c.StorageSlackFactor)
	case c.Catalog.NumDocs < c.NumNodes*c.MinDocsPerNode:
		return fmt.Errorf("model: %d documents cannot give %d nodes at least %d each",
			c.Catalog.NumDocs, c.NumNodes, c.MinDocsPerNode)
	}
	return nil
}

// Generate builds a synthetic instance: a catalog per cfg.Catalog, and
// nodes with random units and contribution counts. Documents are dealt to
// nodes in random order; every document has exactly one contributor, and
// every node contributes between MinDocsPerNode and MaxDocsPerNode
// documents (except possibly the last nodes if documents run out, and
// extra documents are dealt round-robin if nodes run out).
func Generate(cfg Config) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat, err := catalog.Generate(cfg.Catalog, rng)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		Catalog:      cat,
		Nodes:        make([]Node, cfg.NumNodes),
		NumClusters:  cfg.NumClusters,
		Contributors: make([]NodeID, len(cat.Docs)),
	}
	for i := range inst.Contributors {
		inst.Contributors[i] = -1
	}
	for i := range inst.Nodes {
		inst.Nodes[i] = Node{
			ID:    NodeID(i),
			Units: float64(cfg.MinUnits + rng.Intn(cfg.MaxUnits-cfg.MinUnits+1)),
		}
	}

	// Deal documents to nodes in a random order so contribution sets span
	// arbitrary categories and popularity ranks.
	perm := rng.Perm(len(cat.Docs))
	next := 0
	for i := range inst.Nodes {
		want := cfg.MinDocsPerNode + rng.Intn(cfg.MaxDocsPerNode-cfg.MinDocsPerNode+1)
		// Reserve enough documents for the remaining nodes to each get
		// their minimum, so no node ends up a free rider.
		nodesAfter := len(inst.Nodes) - i - 1
		if maxAllowed := len(perm) - next - nodesAfter*cfg.MinDocsPerNode; want > maxAllowed {
			want = maxAllowed
		}
		for j := 0; j < want && next < len(perm); j++ {
			di := catalog.DocID(perm[next])
			next++
			inst.Nodes[i].Contributed = append(inst.Nodes[i].Contributed, di)
			inst.Contributors[di] = inst.Nodes[i].ID
		}
	}
	// Any leftovers go round-robin so every document has a contributor.
	for i := 0; next < len(perm); i = (i + 1) % len(inst.Nodes) {
		di := catalog.DocID(perm[next])
		next++
		inst.Nodes[i].Contributed = append(inst.Nodes[i].Contributed, di)
		inst.Contributors[di] = inst.Nodes[i].ID
	}

	// Storage capacity: room for own contributions plus replica slack.
	for i := range inst.Nodes {
		var contributed int64
		for _, di := range inst.Nodes[i].Contributed {
			contributed += cat.Docs[di].Size
		}
		inst.Nodes[i].StorageCap = int64(float64(contributed)*cfg.StorageSlackFactor) + cfg.StorageSlackBytes
	}
	return inst, nil
}

// AttachDocument registers a newly published document (e.g. from
// catalog.AddDocuments) as contributed by node n, growing Contributors as
// needed. It returns an error if the node or document is unknown.
func (inst *Instance) AttachDocument(d catalog.DocID, n NodeID) error {
	if n < 0 || int(n) >= len(inst.Nodes) {
		return fmt.Errorf("model: unknown node %d", n)
	}
	if inst.Catalog.Doc(d) == nil {
		return fmt.Errorf("model: unknown document %d", d)
	}
	for int(d) >= len(inst.Contributors) {
		inst.Contributors = append(inst.Contributors, -1)
	}
	if inst.Contributors[d] != -1 {
		return fmt.Errorf("model: document %d already contributed by node %d", d, inst.Contributors[d])
	}
	inst.Contributors[d] = n
	inst.Nodes[n].Contributed = append(inst.Nodes[n].Contributed, d)
	return nil
}

// ContributedPopularity returns p(D(k)) for node k: the summed popularity
// of the documents it contributed (and therefore stores).
func (inst *Instance) ContributedPopularity(k NodeID) float64 {
	var sum float64
	for _, di := range inst.Nodes[k].Contributed {
		sum += inst.Catalog.Docs[di].Popularity
	}
	return sum
}

// NodeCount and DocCount are convenience accessors used by reports.
func (inst *Instance) NodeCount() int { return len(inst.Nodes) }

// DocCount returns the number of documents in the instance's catalog.
func (inst *Instance) DocCount() int { return len(inst.Catalog.Docs) }

// CatCount returns the number of categories in the instance's catalog.
func (inst *Instance) CatCount() int { return len(inst.Catalog.Cats) }
