package model

import (
	"testing"

	"p2pshare/internal/catalog"
)

func membershipSetup(t *testing.T) (*Instance, []ClusterID) {
	t.Helper()
	inst, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]ClusterID, inst.CatCount())
	for c := range assign {
		assign[c] = ClusterID(c % inst.NumClusters)
	}
	return inst, assign
}

func TestMembershipNodeJoinsContributedClusters(t *testing.T) {
	inst, assign := membershipSetup(t)
	mem, err := NewMembership(inst, assign)
	if err != nil {
		t.Fatal(err)
	}
	for k := range inst.Nodes {
		want := make(map[ClusterID]bool)
		for _, di := range inst.Nodes[k].Contributed {
			for _, cid := range inst.Catalog.Docs[di].Categories {
				want[assign[cid]] = true
			}
		}
		got := make(map[ClusterID]bool)
		for _, cl := range mem.ClustersOf(NodeID(k)) {
			got[cl] = true
		}
		if len(got) != len(want) {
			t.Fatalf("node %d in %d clusters, want %d", k, len(got), len(want))
		}
		for cl := range want {
			if !got[cl] {
				t.Fatalf("node %d missing cluster %d", k, cl)
			}
		}
	}
}

func TestMembershipSymmetry(t *testing.T) {
	inst, assign := membershipSetup(t)
	mem, err := NewMembership(inst, assign)
	if err != nil {
		t.Fatal(err)
	}
	// NodesOf and ClustersOf describe the same relation.
	for c := range mem.ClusterNodes {
		for _, k := range mem.NodesOf(ClusterID(c)) {
			found := false
			for _, cl := range mem.ClustersOf(k) {
				if cl == ClusterID(c) {
					found = true
				}
			}
			if !found {
				t.Fatalf("cluster %d lists node %d but not vice versa", c, k)
			}
		}
	}
}

func TestMembershipNoDuplicates(t *testing.T) {
	inst, assign := membershipSetup(t)
	mem, _ := NewMembership(inst, assign)
	for c, nodes := range mem.ClusterNodes {
		seen := make(map[NodeID]bool)
		for _, k := range nodes {
			if seen[k] {
				t.Fatalf("cluster %d lists node %d twice", c, k)
			}
			seen[k] = true
		}
	}
}

func TestMembershipIncompleteAssignment(t *testing.T) {
	inst, _ := membershipSetup(t)
	if _, err := NewMembership(inst, make([]ClusterID, 3)); err == nil {
		t.Error("short assignment should fail")
	}
	// NoCluster entries are allowed: those contributors join nothing.
	assign := make([]ClusterID, inst.CatCount())
	for c := range assign {
		assign[c] = NoCluster
	}
	mem, err := NewMembership(inst, assign)
	if err != nil {
		t.Fatal(err)
	}
	for k := range inst.Nodes {
		if len(mem.ClustersOf(NodeID(k))) != 0 {
			t.Fatalf("node %d joined clusters under all-NoCluster assignment", k)
		}
	}
}

func TestClusterDocs(t *testing.T) {
	inst, assign := membershipSetup(t)
	total := 0
	seen := make(map[catalog.DocID]bool)
	for c := 0; c < inst.NumClusters; c++ {
		docs := ClusterDocs(inst, assign, ClusterID(c))
		for _, di := range docs {
			if seen[di] {
				t.Fatalf("doc %d in two clusters", di)
			}
			seen[di] = true
		}
		total += len(docs)
	}
	if total != inst.DocCount() {
		t.Errorf("cluster docs total %d, want %d", total, inst.DocCount())
	}
}
