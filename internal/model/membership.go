package model

import (
	"fmt"

	"p2pshare/internal/catalog"
)

// Membership captures which nodes belong to which clusters under a given
// category→cluster assignment. A node belongs to every cluster that hosts
// a category of a document it contributes (paper §3.1: "a node may belong
// to more than one cluster if it contributes documents associated with
// more than one category").
type Membership struct {
	// ClusterNodes lists the member nodes of each cluster, ascending by id.
	ClusterNodes [][]NodeID
	// NodeClusters lists the clusters of each node, ascending by id.
	NodeClusters [][]ClusterID
}

// NewMembership derives cluster membership from an instance and a complete
// category→cluster assignment (indexed by category id; entries may be
// NoCluster for unassigned categories, whose contributors then join no
// cluster on their account).
func NewMembership(inst *Instance, assign []ClusterID) (*Membership, error) {
	if len(assign) < len(inst.Catalog.Cats) {
		return nil, fmt.Errorf("model: assignment covers %d of %d categories",
			len(assign), len(inst.Catalog.Cats))
	}
	m := &Membership{
		ClusterNodes: make([][]NodeID, inst.NumClusters),
		NodeClusters: make([][]ClusterID, len(inst.Nodes)),
	}
	for k := range inst.Nodes {
		node := &inst.Nodes[k]
		seen := make(map[ClusterID]bool)
		for _, di := range node.Contributed {
			for _, cid := range inst.Catalog.Docs[di].Categories {
				cl := assign[cid]
				if cl == NoCluster || seen[cl] {
					continue
				}
				seen[cl] = true
				m.NodeClusters[k] = append(m.NodeClusters[k], cl)
				m.ClusterNodes[cl] = append(m.ClusterNodes[cl], node.ID)
			}
		}
	}
	return m, nil
}

// ClustersOf returns the clusters node n belongs to.
func (m *Membership) ClustersOf(n NodeID) []ClusterID { return m.NodeClusters[n] }

// NodesOf returns the member nodes of cluster c.
func (m *Membership) NodesOf(c ClusterID) []NodeID { return m.ClusterNodes[c] }

// ClusterDocs returns the documents whose categories live in cluster c,
// each listed once even if several of its categories are in c.
func ClusterDocs(inst *Instance, assign []ClusterID, c ClusterID) []catalog.DocID {
	var out []catalog.DocID
	seen := make(map[catalog.DocID]bool)
	for cid := range inst.Catalog.Cats {
		if assign[cid] != c {
			continue
		}
		for _, di := range inst.Catalog.Cats[cid].Docs {
			if !seen[di] {
				seen[di] = true
				out = append(out, di)
			}
		}
	}
	return out
}
