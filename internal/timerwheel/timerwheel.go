// Package timerwheel is a shared timer service for periodic work: many
// coarse periodic callbacks multiplexed onto ONE goroutine, instead of
// one time.Ticker goroutine per timer.
//
// livenet's per-node housekeeping — membership probe ticks, adaptation
// epoch ticks, per-shard sweeps — used to cost three-plus dedicated
// ticker goroutines per node. At paper scale (a 10k-node in-process
// cluster) that is tens of thousands of goroutines and runtime timers
// doing nothing but sleeping. All of them now register here: the wheel
// keeps a min-heap of (next-fire, period, callback) entries, sleeps
// until the earliest, fires what is due, and reschedules. The goroutine
// itself is lazy — it starts with the first registration and exits when
// the last timer stops, so an idle process pays nothing.
//
// Callbacks run on the wheel goroutine and MUST NOT block: livenet's
// registrations only do non-blocking channel offers into the loops that
// own the real work. A slow callback delays every other timer — that is
// the deal one shared goroutine implies, and the callers here accept it
// because dropped or delayed periodic ticks are harmless by design.
package timerwheel

import (
	"container/heap"
	"sync"
	"time"
)

// Wheel multiplexes periodic callbacks onto one goroutine.
type Wheel struct {
	mu      sync.Mutex
	entries timerHeap
	seq     uint64
	running bool
	// wake nudges the loop after the heap changed under it (earlier
	// deadline registered, or an entry stopped).
	wake chan struct{}
}

// entry is one registered periodic timer.
type entry struct {
	id     uint64
	next   time.Time
	period time.Duration
	fn     func(now time.Time)
	stop   bool // unregistered; dropped when popped
	index  int  // heap bookkeeping
}

// New builds an empty wheel.
func New() *Wheel {
	return &Wheel{wake: make(chan struct{}, 1)}
}

// shared is the process-wide wheel every node registers with.
var shared = New()

// Default returns the process-wide wheel.
func Default() *Wheel { return shared }

// Every registers fn to run every period (first fire one period from
// now) and returns a stop function. Stop is idempotent and safe to call
// from anywhere, including fn itself. fn runs on the wheel goroutine
// and must not block.
func (w *Wheel) Every(period time.Duration, fn func(now time.Time)) (stop func()) {
	if period <= 0 {
		period = time.Millisecond
	}
	w.mu.Lock()
	w.seq++
	e := &entry{id: w.seq, next: time.Now().Add(period), period: period, fn: fn}
	heap.Push(&w.entries, e)
	starting := !w.running
	if starting {
		w.running = true
	}
	w.mu.Unlock()
	if starting {
		go w.loop()
	} else {
		w.nudge()
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			w.mu.Lock()
			e.stop = true
			if e.index >= 0 {
				heap.Remove(&w.entries, e.index)
			}
			w.mu.Unlock()
			w.nudge()
		})
	}
}

// Timers reports how many periodic timers are registered (tests and
// introspection).
func (w *Wheel) Timers() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.entries.Len()
}

func (w *Wheel) nudge() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// loop is the wheel goroutine: sleep until the earliest deadline, fire
// everything due, reschedule, exit when the heap drains.
func (w *Wheel) loop() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		w.mu.Lock()
		now := time.Now()
		// Fire everything due. Callbacks run outside the lock so they
		// can (non-blockingly) interact with code that registers timers.
		var due []*entry
		for w.entries.Len() > 0 {
			e := w.entries[0]
			if e.next.After(now) {
				break
			}
			due = append(due, e)
			e.next = now.Add(e.period)
			heap.Fix(&w.entries, 0)
		}
		if w.entries.Len() == 0 && len(due) == 0 {
			w.running = false
			w.mu.Unlock()
			return
		}
		var wait time.Duration
		if w.entries.Len() > 0 {
			wait = time.Until(w.entries[0].next)
		}
		w.mu.Unlock()

		for _, e := range due {
			// stop() may have raced the pop; honor it without firing.
			w.mu.Lock()
			stopped := e.stop
			w.mu.Unlock()
			if !stopped {
				e.fn(now)
			}
		}
		if len(due) > 0 {
			continue // recompute the wait with post-callback state
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-w.wake:
		}
	}
}

// timerHeap orders entries by next fire time.
type timerHeap []*entry

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].next.Before(h[j].next) }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *timerHeap) Push(x any)        { e := x.(*entry); e.index = len(*h); *h = append(*h, e) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
