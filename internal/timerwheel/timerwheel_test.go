package timerwheel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEveryFiresRepeatedly checks a registered callback keeps firing at
// roughly its period until stopped.
func TestEveryFiresRepeatedly(t *testing.T) {
	w := New()
	var n atomic.Int64
	stop := w.Every(10*time.Millisecond, func(time.Time) { n.Add(1) })
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := n.Load(); got < 5 {
		t.Fatalf("callback fired %d times in 2s, want >= 5", got)
	}
}

// TestStopHalts checks a stopped timer never fires again and that stop
// is idempotent.
func TestStopHalts(t *testing.T) {
	w := New()
	var n atomic.Int64
	stop := w.Every(5*time.Millisecond, func(time.Time) { n.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop()
	at := n.Load()
	time.Sleep(50 * time.Millisecond)
	if got := n.Load(); got != at {
		t.Fatalf("timer fired %d more times after stop", got-at)
	}
}

// TestOneGoroutineManyTimers pins the whole point of the package: a
// thousand timers share one goroutine, and the goroutine exits when the
// last timer stops.
func TestOneGoroutineManyTimers(t *testing.T) {
	w := New()
	before := runtime.NumGoroutine()
	var stops []func()
	var fired atomic.Int64
	for i := 0; i < 1000; i++ {
		stops = append(stops, w.Every(20*time.Millisecond, func(time.Time) { fired.Add(1) }))
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("1000 timers grew goroutines %d -> %d, want one wheel goroutine", before, after)
	}
	deadline := time.Now().Add(2 * time.Second)
	for fired.Load() < 1000 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if fired.Load() < 1000 {
		t.Fatalf("only %d fires across 1000 timers", fired.Load())
	}
	for _, s := range stops {
		s()
	}
	if w.Timers() != 0 {
		t.Fatalf("%d timers left after stopping all", w.Timers())
	}
	// The wheel goroutine drains once the heap is empty.
	deadline = time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		w.mu.Lock()
		running := w.running
		w.mu.Unlock()
		if !running {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("wheel goroutine still running with no timers")
}

// TestConcurrentRegisterStop hammers registration and stop from many
// goroutines (race-detector coverage for the heap bookkeeping).
func TestConcurrentRegisterStop(t *testing.T) {
	w := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				stop := w.Every(time.Millisecond, func(time.Time) {})
				if j%2 == 0 {
					stop()
				} else {
					defer stop()
				}
			}
		}()
	}
	wg.Wait()
}

// TestStopFromCallback checks a callback may stop its own timer.
func TestStopFromCallback(t *testing.T) {
	w := New()
	var n atomic.Int64
	var stop func()
	var mu sync.Mutex
	mu.Lock()
	stop = w.Every(5*time.Millisecond, func(time.Time) {
		mu.Lock()
		defer mu.Unlock()
		if n.Add(1) == 1 {
			stop()
		}
	})
	mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond)
	if got := n.Load(); got != 1 {
		t.Fatalf("self-stopped timer fired %d times, want exactly 1", got)
	}
}
