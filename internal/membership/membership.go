// Package membership implements a SWIM-lite failure detector for the
// live network: periodic round-robin pings, indirect probes through k
// proxies when a direct ping goes unanswered, a suspect→dead state
// machine with timeouts, incarnation numbers so a falsely-suspected node
// can refute the rumor, and update piggybacking on every protocol
// message so state changes spread epidemically without dedicated
// broadcast traffic (Das, Gupta & Motivala, "SWIM: Scalable
// Weakly-consistent Infection-style Process Group Membership Protocol",
// DSN 2002 — the same family of detector Ayyasamy & Sivanandam assume
// for their cluster-based replication architecture).
//
// The Detector is a pure state machine: it owns no goroutines, no
// timers, and no sockets. The caller — in practice one livenet event
// loop — drives it with Tick(now) and the On* handlers, all of which
// return the packets to transmit; state-change events accumulate and
// are drained with Events(). Methods are NOT safe for concurrent use;
// the owning event loop serializes them, exactly like the rest of a
// livenet node's state.
package membership

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"p2pshare/internal/model"
)

// State is a member's liveness state.
type State uint8

const (
	// Alive members are probed and routed to.
	Alive State = iota
	// Suspect members failed a probe round; they are still routed to
	// (the suspicion may be refuted) but a timeout away from Dead.
	Suspect
	// Dead members exhausted the suspect timeout; they are evicted
	// everywhere and remembered by tombstone until they rejoin with a
	// fresh hello.
	Dead
	// Left members announced a graceful departure; treated like Dead but
	// declared instantly, with no suspicion phase.
	Left
)

// String renders the state for logs and stats.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Left:
		return "left"
	}
	return "unknown"
}

// Update is one piggybacked membership rumor: node ID is in State at
// incarnation Inc. Addr rides along so a receiver that never met the
// node can still address it (and so a resurrection can restore the
// address book entry).
type Update struct {
	ID    model.NodeID
	Addr  string
	State State
	Inc   uint64
}

// Ping is a direct liveness probe. Addr is the sender's listen address,
// letting a receiver that had already declared the sender dead restore
// it. Every protocol message carries piggybacked updates.
type Ping struct {
	Seq     uint64
	Addr    string
	Updates []Update
}

// Ack answers a Ping (directly, or relayed by a ping-req proxy). Target
// is the node whose liveness the ack vouches for — the sender itself on
// the direct path, the probed third party on the indirect path.
type Ack struct {
	Seq     uint64
	Target  model.NodeID
	Updates []Update
}

// PingReq asks a proxy to probe Target on the origin's behalf (the SWIM
// indirect probe, which distinguishes "target is down" from "my link to
// the target is down"). Addr is the target's listen address in case the
// proxy cannot resolve the ID itself.
type PingReq struct {
	Seq     uint64
	Target  model.NodeID
	Addr    string
	Updates []Update
}

// Leave is a graceful departure announcement; receivers skip the
// suspicion phase entirely.
type Leave struct {
	ID  model.NodeID
	Inc uint64
}

// Packet is one protocol message the caller must transmit. Addr is a
// fallback listen address for receivers the caller's address book may
// not cover (indirect probe targets).
type Packet struct {
	To   model.NodeID
	Addr string
	Msg  any // Ping, Ack, PingReq, or Leave
}

// Event records one member's state transition, in the order observed.
// Addr is the member's last known listen address (so an Alive
// resurrection can restore the address book entry).
type Event struct {
	ID    model.NodeID
	Addr  string
	State State
	Inc   uint64
}

// Config tunes the detector's timing. The defaults suit a LAN-ish
// deployment; tests shrink them for fast churn.
type Config struct {
	// ProbeInterval is the period between probe rounds (one member
	// probed per round, SWIM round-robin over a shuffled rotation).
	ProbeInterval time.Duration
	// PingTimeout is how long a direct ping waits before the indirect
	// phase (ping-req through IndirectProbes proxies) starts.
	PingTimeout time.Duration
	// ProbeTimeout is the total wait (direct + indirect) before the
	// target is declared Suspect.
	ProbeTimeout time.Duration
	// SuspectTimeout is how long a Suspect member has to refute the
	// rumor before it is declared Dead.
	SuspectTimeout time.Duration
	// IndirectProbes is k, the number of proxies asked to ping an
	// unresponsive target.
	IndirectProbes int
	// MaxPiggyback caps the updates attached to one protocol message.
	MaxPiggyback int
	// TombstoneTTL is how long a dead/left member's tombstone is kept
	// before it is forgotten entirely. It only needs to outlive the
	// death rumor's propagation and stale address-book replays; without
	// a TTL a long-running node accumulates one tombstone per departed
	// peer forever and ships them all in every book reply.
	TombstoneTTL time.Duration
}

// DefaultConfig returns the detector's default timing: ~0.9s to
// suspicion and ~2.5s more to death for an unresponsive peer, scaled by
// its position in the probe rotation.
func DefaultConfig() Config {
	return Config{
		ProbeInterval:  400 * time.Millisecond,
		PingTimeout:    250 * time.Millisecond,
		ProbeTimeout:   900 * time.Millisecond,
		SuspectTimeout: 2500 * time.Millisecond,
		IndirectProbes: 2,
		MaxPiggyback:   8,
		TombstoneTTL:   60 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = d.ProbeInterval
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = d.PingTimeout
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = d.ProbeTimeout
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = d.SuspectTimeout
	}
	if c.IndirectProbes <= 0 {
		c.IndirectProbes = d.IndirectProbes
	}
	if c.MaxPiggyback <= 0 {
		c.MaxPiggyback = d.MaxPiggyback
	}
	if c.TombstoneTTL <= 0 {
		// Scale with the (possibly test-shrunk) suspect timeout, but
		// never below a comfortable multiple of rumor-propagation time.
		c.TombstoneTTL = 24 * c.SuspectTimeout
	}
	return c
}

// Member is one peer's liveness record.
type Member struct {
	ID    model.NodeID
	Addr  string
	State State
	Inc   uint64

	// stateSince timestamps the last transition (drives the
	// suspect→dead timeout).
	stateSince time.Time
}

// probe is one outstanding direct-or-indirect probe cycle.
type probe struct {
	target   model.NodeID
	sentAt   time.Time
	indirect bool // ping-reqs already dispatched
}

// relay is one ping this node performs on another origin's behalf.
type relay struct {
	origin  model.NodeID
	origSeq uint64
	target  model.NodeID
	at      time.Time
}

// queued is one rumor awaiting piggyback dissemination.
type queued struct {
	u     Update
	sends int
}

// Detector is one node's membership view and protocol driver.
type Detector struct {
	self model.NodeID
	addr string
	inc  uint64 // own incarnation; bumped to refute suspicion
	cfg  Config
	rng  *rand.Rand

	members map[model.NodeID]*Member
	// tombs remembers dead/left members' incarnations after eviction so
	// stale address books cannot resurrect them (satellite: book merges
	// carry tombstones).
	tombs map[model.NodeID]uint64
	// tombStates distinguishes a crash (Dead) from a graceful departure
	// (Left) when reporting evicted members; absent means Dead.
	tombStates map[model.NodeID]State
	// tombSince timestamps each tombstone so Tick can age it out after
	// TombstoneTTL, keeping the map (and Book frames) bounded under
	// sustained churn.
	tombSince map[model.NodeID]time.Time

	// rotation is the SWIM probe order: a shuffled pass over the
	// members, reshuffled when exhausted, so every member is probed once
	// per round-robin period.
	rotation []model.NodeID
	rotIdx   int

	lastProbe time.Time
	seq       uint64
	probes    map[uint64]*probe
	relays    map[uint64]*relay

	updates map[model.NodeID]*queued
	events  []Event
}

// New builds a detector for self, which is always considered alive
// (refuting its own suspicion by incarnation bump).
func New(self model.NodeID, addr string, cfg Config, seed int64) *Detector {
	return &Detector{
		self:       self,
		addr:       addr,
		cfg:        cfg.withDefaults(),
		rng:        rand.New(rand.NewSource(seed + int64(self)*31337 + 7)),
		members:    make(map[model.NodeID]*Member),
		tombs:      make(map[model.NodeID]uint64),
		tombStates: make(map[model.NodeID]State),
		tombSince:  make(map[model.NodeID]time.Time),
		probes:     make(map[uint64]*probe),
		relays:     make(map[uint64]*relay),
		updates:    make(map[model.NodeID]*queued),
	}
}

// Self returns this node's id.
func (d *Detector) Self() model.NodeID { return d.self }

// Incarnation returns this node's current incarnation number.
func (d *Detector) Incarnation() uint64 { return d.inc }

// Observe learns a peer's address (typically from an address-book
// merge). A peer already known keeps its state; a tombstoned peer is
// NOT resurrected — only Rejoin (a live hello) clears a tombstone.
func (d *Detector) Observe(id model.NodeID, addr string, now time.Time) {
	if id == d.self {
		return
	}
	if m, ok := d.members[id]; ok {
		if addr != "" {
			m.Addr = addr
		}
		return
	}
	if _, dead := d.tombs[id]; dead {
		return
	}
	d.members[id] = &Member{ID: id, Addr: addr, State: Alive, stateSince: now}
}

// Rejoin restores a peer as alive on firsthand evidence (a hello from a
// live TCP connection, or a ping from a node this view had declared
// dead). The incarnation jumps past the tombstone so the resurrection
// rumor beats any in-flight death rumor.
func (d *Detector) Rejoin(id model.NodeID, addr string, now time.Time) {
	if id == d.self {
		return
	}
	inc := uint64(0)
	if ti, ok := d.tombs[id]; ok {
		inc = ti + 1
		delete(d.tombs, id)
		delete(d.tombStates, id)
		delete(d.tombSince, id)
	}
	m, ok := d.members[id]
	switch {
	case !ok:
		m = &Member{ID: id, Addr: addr, State: Alive, Inc: inc, stateSince: now}
		d.members[id] = m
		if inc > 0 {
			// Came back from a tombstone: spread the resurrection.
			d.setState(m, Alive, inc, now)
		}
	case m.State == Dead || m.State == Left || m.State == Suspect:
		if m.Inc >= inc {
			inc = m.Inc + 1
		}
		if addr != "" {
			m.Addr = addr
		}
		d.setState(m, Alive, inc, now)
	default:
		if addr != "" {
			m.Addr = addr
		}
	}
}

// Member returns a copy of the record for id (self included) and
// whether it exists.
func (d *Detector) Member(id model.NodeID) (Member, bool) {
	if id == d.self {
		return Member{ID: d.self, Addr: d.addr, State: Alive, Inc: d.inc}, true
	}
	if m, ok := d.members[id]; ok {
		return *m, true
	}
	if inc, ok := d.tombs[id]; ok {
		st := Dead
		if s, hasState := d.tombStates[id]; hasState {
			st = s
		}
		return Member{ID: id, State: st, Inc: inc}, true
	}
	return Member{}, false
}

// IsLive reports whether id is usable for routing: self, or a known
// member in Alive or Suspect state (suspects get the benefit of the
// doubt until the timeout confirms them dead).
func (d *Detector) IsLive(id model.NodeID) bool {
	if id == d.self {
		return true
	}
	m, ok := d.members[id]
	return ok && (m.State == Alive || m.State == Suspect)
}

// Counts returns how many members (self included) are alive and how
// many are suspect.
func (d *Detector) Counts() (alive, suspect int) {
	alive = 1 // self
	for _, m := range d.members {
		switch m.State {
		case Alive:
			alive++
		case Suspect:
			suspect++
		}
	}
	return alive, suspect
}

// Snapshot returns all member records (self excluded), sorted by id.
func (d *Detector) Snapshot() []Member {
	out := make([]Member, 0, len(d.members))
	for _, m := range d.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Tombstones returns a copy of the dead/left incarnation map — the
// payload address-book replies carry so a rejoining node does not
// resurrect confirmed-dead peers.
func (d *Detector) Tombstones() map[model.NodeID]uint64 {
	if len(d.tombs) == 0 {
		return nil
	}
	out := make(map[model.NodeID]uint64, len(d.tombs))
	for id, inc := range d.tombs {
		out[id] = inc
	}
	return out
}

// ApplyTombstone merges one tombstone from a peer's address book: the
// member is declared dead unless it has since advertised a newer
// incarnation. A tombstone about self is refuted immediately.
func (d *Detector) ApplyTombstone(id model.NodeID, inc uint64, now time.Time) {
	d.apply(Update{ID: id, State: Dead, Inc: inc}, now)
}

// Events drains the state transitions recorded since the last call.
func (d *Detector) Events() []Event {
	ev := d.events
	d.events = nil
	return ev
}

// Tick advances the timers: starts the next probe when the interval
// elapsed, escalates overdue probes (indirect phase, then suspicion),
// and confirms overdue suspects dead. It returns the packets to send.
func (d *Detector) Tick(now time.Time) []Packet {
	var out []Packet

	// Escalate outstanding probes.
	for seq, p := range d.probes {
		m, ok := d.members[p.target]
		if !ok || m.State == Dead || m.State == Left {
			delete(d.probes, seq)
			continue
		}
		age := now.Sub(p.sentAt)
		switch {
		case age >= d.cfg.ProbeTimeout:
			delete(d.probes, seq)
			if m.State == Alive {
				d.setState(m, Suspect, m.Inc, now)
			}
		case age >= d.cfg.PingTimeout && !p.indirect:
			p.indirect = true
			for _, proxy := range d.pickProxies(p.target) {
				out = append(out, Packet{To: proxy, Msg: PingReq{
					Seq: seq, Target: p.target, Addr: m.Addr,
					Updates: d.piggyback(),
				}})
			}
		}
	}

	// Forget stale relays (the ack never came; the origin's own timeout
	// handles the rest).
	for seq, r := range d.relays {
		if now.Sub(r.at) >= d.cfg.ProbeTimeout {
			delete(d.relays, seq)
		}
	}

	// Confirm overdue suspects dead.
	for _, m := range d.members {
		if m.State == Suspect && now.Sub(m.stateSince) >= d.cfg.SuspectTimeout {
			d.setState(m, Dead, m.Inc, now)
		}
	}

	// Age out old tombstones. A tombstone only has to outlive the death
	// rumor's propagation and the replay window of stale address books;
	// past the TTL the departed peer is forgotten entirely, so the map
	// (and every Book frame carrying it) stays bounded under churn.
	for id, at := range d.tombSince {
		if now.Sub(at) >= d.cfg.TombstoneTTL {
			delete(d.tombs, id)
			delete(d.tombStates, id)
			delete(d.tombSince, id)
		}
	}

	// Start the next probe round.
	if now.Sub(d.lastProbe) >= d.cfg.ProbeInterval {
		if target, ok := d.nextTarget(); ok {
			d.lastProbe = now
			d.seq++
			d.probes[d.seq] = &probe{target: target, sentAt: now}
			out = append(out, Packet{To: target, Msg: Ping{
				Seq: d.seq, Addr: d.addr, Updates: d.piggyback(),
			}})
		}
	}
	return out
}

// OnPing answers a direct probe (or a proxy's relayed probe) and merges
// its piggybacked updates. A ping from a tombstoned member is firsthand
// proof of life: the sender is resurrected.
func (d *Detector) OnPing(from model.NodeID, p Ping, now time.Time) []Packet {
	if _, dead := d.tombs[from]; dead && p.Addr != "" {
		d.Rejoin(from, p.Addr, now)
	} else {
		d.Observe(from, p.Addr, now)
		d.markContact(from, now)
	}
	d.applyAll(p.Updates, now)
	return []Packet{{To: from, Msg: Ack{
		Seq: p.Seq, Target: d.self, Updates: d.piggyback(),
	}}}
}

// OnPingReq performs an indirect probe on the origin's behalf.
func (d *Detector) OnPingReq(from model.NodeID, pr PingReq, now time.Time) []Packet {
	d.Observe(from, "", now)
	d.markContact(from, now)
	d.applyAll(pr.Updates, now)
	d.seq++
	d.relays[d.seq] = &relay{origin: from, origSeq: pr.Seq, target: pr.Target, at: now}
	m, ok := d.members[pr.Target]
	addr := pr.Addr
	if ok && m.Addr != "" {
		addr = m.Addr
	}
	return []Packet{{To: pr.Target, Addr: addr, Msg: Ping{
		Seq: d.seq, Addr: d.addr, Updates: d.piggyback(),
	}}}
}

// OnAck settles the matching probe (clearing suspicion on firsthand
// evidence) or, at a proxy, relays the vouched ack back to the origin.
func (d *Detector) OnAck(from model.NodeID, a Ack, now time.Time) []Packet {
	d.applyAll(a.Updates, now)
	if p, ok := d.probes[a.Seq]; ok && p.target == a.Target {
		delete(d.probes, a.Seq)
		d.markContact(a.Target, now)
		return nil
	}
	if r, ok := d.relays[a.Seq]; ok && r.target == a.Target {
		delete(d.relays, a.Seq)
		d.markContact(a.Target, now)
		return []Packet{{To: r.origin, Msg: Ack{
			Seq: r.origSeq, Target: a.Target, Updates: d.piggyback(),
		}}}
	}
	return nil
}

// OnLeave records a graceful departure: straight to Left, no suspicion.
func (d *Detector) OnLeave(l Leave, now time.Time) {
	d.apply(Update{ID: l.ID, State: Left, Inc: l.Inc}, now)
}

// MakeLeave builds this node's own departure announcement; the caller
// broadcasts it to the live membership before shutting down.
func (d *Detector) MakeLeave() Leave { return Leave{ID: d.self, Inc: d.inc} }

// markContact is firsthand liveness evidence: a suspect that talked to
// us directly is alive again (no incarnation bump needed locally; the
// member refutes the rumor network-wide itself when it hears it).
func (d *Detector) markContact(id model.NodeID, now time.Time) {
	if m, ok := d.members[id]; ok && m.State == Suspect {
		m.State = Alive
		m.stateSince = now
		d.events = append(d.events, Event{ID: m.ID, Addr: m.Addr, State: Alive, Inc: m.Inc})
	}
}

// applyAll merges a batch of piggybacked rumors.
func (d *Detector) applyAll(us []Update, now time.Time) {
	for _, u := range us {
		d.apply(u, now)
	}
}

// apply merges one rumor under SWIM's ordering rules: higher
// incarnations win; at equal incarnation Suspect overrides Alive and
// Dead/Left override everything. Rumors about self that claim Suspect
// or Dead are refuted by bumping our incarnation and spreading Alive.
func (d *Detector) apply(u Update, now time.Time) {
	if u.ID == d.self {
		if (u.State == Suspect || u.State == Dead) && u.Inc >= d.inc {
			d.inc = u.Inc + 1
			d.queueUpdate(Update{ID: d.self, Addr: d.addr, State: Alive, Inc: d.inc})
		}
		return
	}
	m, known := d.members[u.ID]
	if !known {
		if ti, dead := d.tombs[u.ID]; dead {
			if u.State == Alive && u.Inc > ti {
				// Resurrection rumor newer than the tombstone.
				delete(d.tombs, u.ID)
				delete(d.tombStates, u.ID)
				delete(d.tombSince, u.ID)
				m = &Member{ID: u.ID, Addr: u.Addr, State: Alive, Inc: u.Inc, stateSince: now}
				d.members[u.ID] = m
				d.events = append(d.events, Event{ID: u.ID, Addr: u.Addr, State: Alive, Inc: u.Inc})
				d.queueUpdate(u)
			}
			return
		}
		if u.State == Dead || u.State == Left {
			// Never met it; remember only the tombstone.
			d.tombs[u.ID] = u.Inc
			d.tombStates[u.ID] = u.State
			d.tombSince[u.ID] = now
			d.queueUpdate(u)
			return
		}
		m = &Member{ID: u.ID, Addr: u.Addr, State: u.State, Inc: u.Inc, stateSince: now}
		d.members[u.ID] = m
		d.queueUpdate(u)
		return
	}
	if u.Addr != "" {
		m.Addr = u.Addr
	}
	if !supersedes(u, m) {
		return
	}
	d.setState(m, u.State, u.Inc, now)
}

// supersedes decides whether rumor u overrides the current record m.
func supersedes(u Update, m *Member) bool {
	if u.Inc > m.Inc {
		return true
	}
	if u.Inc < m.Inc {
		return false
	}
	// Same incarnation: strictly "worse" states win.
	rank := func(s State) int {
		switch s {
		case Alive:
			return 0
		case Suspect:
			return 1
		default: // Dead, Left
			return 2
		}
	}
	return rank(u.State) > rank(m.State)
}

// setState applies a transition, records the event, and queues the
// rumor for dissemination. Dead/Left members move to the tombstone map.
func (d *Detector) setState(m *Member, s State, inc uint64, now time.Time) {
	m.State = s
	m.Inc = inc
	m.stateSince = now
	d.events = append(d.events, Event{ID: m.ID, Addr: m.Addr, State: s, Inc: inc})
	d.queueUpdate(Update{ID: m.ID, Addr: m.Addr, State: s, Inc: inc})
	if s == Dead || s == Left {
		d.tombs[m.ID] = inc
		d.tombStates[m.ID] = s
		d.tombSince[m.ID] = now
		delete(d.members, m.ID)
	}
}

// queueUpdate stages a rumor for piggybacking; a fresh rumor about a
// member replaces the queue's older one and resets its send budget.
func (d *Detector) queueUpdate(u Update) {
	d.updates[u.ID] = &queued{u: u}
}

// retransmitBudget is how many times each rumor is piggybacked before
// it is dropped: the SWIM λ·log(n) dissemination bound.
func (d *Detector) retransmitBudget() int {
	n := len(d.members) + 2
	return 3 * (int(math.Log2(float64(n))) + 1)
}

// piggyback selects up to MaxPiggyback queued rumors, preferring the
// least-disseminated, and charges their budgets.
func (d *Detector) piggyback() []Update {
	if len(d.updates) == 0 {
		return nil
	}
	ids := make([]model.NodeID, 0, len(d.updates))
	for id := range d.updates {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		qi, qj := d.updates[ids[i]], d.updates[ids[j]]
		if qi.sends != qj.sends {
			return qi.sends < qj.sends
		}
		return ids[i] < ids[j]
	})
	budget := d.retransmitBudget()
	var out []Update
	for _, id := range ids {
		if len(out) == d.cfg.MaxPiggyback {
			break
		}
		q := d.updates[id]
		out = append(out, q.u)
		q.sends++
		if q.sends >= budget {
			delete(d.updates, id)
		}
	}
	return out
}

// nextTarget picks the next probe target from the shuffled rotation,
// skipping members that died since the rotation was built.
func (d *Detector) nextTarget() (model.NodeID, bool) {
	for tries := 0; tries < 2; tries++ {
		for d.rotIdx < len(d.rotation) {
			id := d.rotation[d.rotIdx]
			d.rotIdx++
			if m, ok := d.members[id]; ok && (m.State == Alive || m.State == Suspect) {
				return id, true
			}
		}
		// Rotation exhausted: reshuffle over the current membership.
		d.rotation = d.rotation[:0]
		d.rotIdx = 0
		for id, m := range d.members {
			if m.State == Alive || m.State == Suspect {
				d.rotation = append(d.rotation, id)
			}
		}
		sort.Slice(d.rotation, func(i, j int) bool { return d.rotation[i] < d.rotation[j] })
		d.rng.Shuffle(len(d.rotation), func(i, j int) {
			d.rotation[i], d.rotation[j] = d.rotation[j], d.rotation[i]
		})
	}
	return 0, false
}

// pickProxies samples up to IndirectProbes live members other than the
// target (and self) to carry indirect probes.
func (d *Detector) pickProxies(target model.NodeID) []model.NodeID {
	var pool []model.NodeID
	for id, m := range d.members {
		if id != target && m.State == Alive {
			pool = append(pool, id)
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	d.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > d.cfg.IndirectProbes {
		pool = pool[:d.cfg.IndirectProbes]
	}
	return pool
}
