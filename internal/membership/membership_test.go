package membership

import (
	"fmt"
	"testing"
	"time"

	"p2pshare/internal/model"
)

// net is a virtual-time harness: detectors exchange packets instantly,
// with per-node partitions, driven by Step() ticks.
type net struct {
	t    *testing.T
	cfg  Config
	ds   map[model.NodeID]*Detector
	down map[model.NodeID]bool // partitioned/killed: packets to and from it vanish
	now  time.Time
}

func newNet(t *testing.T, n int) *net {
	cfg := Config{
		ProbeInterval:  10 * time.Millisecond,
		PingTimeout:    5 * time.Millisecond,
		ProbeTimeout:   20 * time.Millisecond,
		SuspectTimeout: 50 * time.Millisecond,
		IndirectProbes: 2,
		MaxPiggyback:   8,
		TombstoneTTL:   400 * time.Millisecond,
	}
	w := &net{
		t: t, cfg: cfg,
		ds:   make(map[model.NodeID]*Detector),
		down: make(map[model.NodeID]bool),
		now:  time.Unix(1000, 0),
	}
	for i := 0; i < n; i++ {
		id := model.NodeID(i)
		w.ds[id] = New(id, fmt.Sprintf("10.0.0.%d:1", i), cfg, int64(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				w.ds[model.NodeID(i)].Observe(model.NodeID(j), fmt.Sprintf("10.0.0.%d:1", j), w.now)
			}
		}
	}
	return w
}

// deliver routes packets (recursively: handlers emit more packets).
func (w *net) deliver(from model.NodeID, pkts []Packet) {
	if w.down[from] {
		return
	}
	for _, p := range pkts {
		if w.down[p.To] {
			continue
		}
		d, ok := w.ds[p.To]
		if !ok {
			continue
		}
		var replies []Packet
		switch m := p.Msg.(type) {
		case Ping:
			replies = d.OnPing(from, m, w.now)
		case Ack:
			replies = d.OnAck(from, m, w.now)
		case PingReq:
			replies = d.OnPingReq(from, m, w.now)
		case Leave:
			d.OnLeave(m, w.now)
		default:
			w.t.Fatalf("unknown packet type %T", p.Msg)
		}
		w.deliver(p.To, replies)
	}
}

// step advances virtual time by one probe interval and ticks everyone.
func (w *net) step() {
	w.now = w.now.Add(w.cfg.ProbeInterval)
	for id, d := range w.ds {
		if w.down[id] {
			continue
		}
		w.deliver(id, d.Tick(w.now))
	}
}

func TestHealthyClusterStaysAlive(t *testing.T) {
	w := newNet(t, 5)
	for i := 0; i < 40; i++ {
		w.step()
	}
	for id, d := range w.ds {
		alive, suspect := d.Counts()
		if alive != 5 || suspect != 0 {
			t.Errorf("node %d: alive=%d suspect=%d, want 5/0", id, alive, suspect)
		}
		for _, ev := range d.Events() {
			if ev.State != Alive {
				t.Errorf("node %d saw spurious transition %+v", id, ev)
			}
		}
	}
}

func TestDeadMemberDetectedAndDisseminated(t *testing.T) {
	w := newNet(t, 5)
	for i := 0; i < 10; i++ {
		w.step()
	}
	victim := model.NodeID(3)
	w.down[victim] = true

	// Worst-case detection: full rotation before the victim is probed,
	// plus probe and suspect timeouts, plus dissemination slack.
	rounds := 4 + int((w.cfg.ProbeTimeout+w.cfg.SuspectTimeout)/w.cfg.ProbeInterval) + 12
	for i := 0; i < rounds; i++ {
		w.step()
	}
	for id, d := range w.ds {
		if id == victim || w.down[id] {
			continue
		}
		m, ok := d.Member(victim)
		if !ok || m.State != Dead {
			t.Errorf("node %d: victim state = %+v (found %v), want Dead", id, m, ok)
		}
		if d.IsLive(victim) {
			t.Errorf("node %d still routes to dead victim", id)
		}
		if tombs := d.Tombstones(); tombs[victim] != m.Inc {
			t.Errorf("node %d: tombstone = %v, want inc %d", id, tombs, m.Inc)
		}
		alive, _ := d.Counts()
		if alive != 4 {
			t.Errorf("node %d: alive=%d, want 4", id, alive)
		}
	}
}

func TestSuspicionRefutedByIncarnationBump(t *testing.T) {
	w := newNet(t, 4)
	for i := 0; i < 8; i++ {
		w.step()
	}
	// Plant a false suspicion of node 2 at node 0 and let it gossip.
	d0, d2 := w.ds[0], w.ds[2]
	d0.apply(Update{ID: 2, State: Suspect, Inc: 0}, w.now)
	if m, _ := d0.Member(2); m.State != Suspect {
		t.Fatalf("planted suspicion did not take: %+v", m)
	}
	// Node 2 is up: within the suspect window it hears the rumor (via
	// piggyback on node 0's pings/acks), refutes with an incarnation
	// bump, and the refutation spreads.
	for i := 0; i < 4; i++ {
		w.step()
	}
	if d2.Incarnation() == 0 {
		t.Fatal("node 2 never refuted the suspicion (incarnation still 0)")
	}
	for i := 0; i < 12; i++ {
		w.step()
	}
	for id, d := range w.ds {
		m, ok := d.Member(2)
		if id == 2 {
			continue
		}
		if !ok || m.State != Alive || m.Inc < d2.Incarnation() {
			t.Errorf("node %d: member 2 = %+v, want Alive at inc >= %d", id, m, d2.Incarnation())
		}
	}
}

func TestGracefulLeaveSkipsSuspicion(t *testing.T) {
	w := newNet(t, 4)
	for i := 0; i < 6; i++ {
		w.step()
	}
	leaver := w.ds[1]
	lv := leaver.MakeLeave()
	w.down[1] = true
	for id, d := range w.ds {
		if id == 1 {
			continue
		}
		d.OnLeave(lv, w.now)
		if m, _ := d.Member(1); m.State != Left {
			t.Errorf("node %d: state after leave = %v, want Left", id, m.State)
		}
		if d.IsLive(1) {
			t.Errorf("node %d still routes to left member", id)
		}
	}
}

func TestTombstoneBlocksObserveButNotRejoin(t *testing.T) {
	w := newNet(t, 3)
	d := w.ds[0]
	d.ApplyTombstone(2, 5, w.now)
	if m, _ := d.Member(2); m.State != Dead {
		t.Fatalf("tombstone did not kill member: %+v", m)
	}
	// A stale book merge must not resurrect it.
	d.Observe(2, "10.0.0.2:1", w.now)
	if d.IsLive(2) {
		t.Fatal("Observe resurrected a tombstoned member")
	}
	// A live hello does, with an incarnation past the tombstone.
	d.Rejoin(2, "10.0.0.2:9", w.now)
	m, _ := d.Member(2)
	if m.State != Alive || m.Inc <= 5 {
		t.Fatalf("Rejoin: %+v, want Alive with inc > 5", m)
	}
	if m.Addr != "10.0.0.2:9" {
		t.Fatalf("Rejoin kept stale addr: %+v", m)
	}
}

func TestTombstonesAgeOut(t *testing.T) {
	w := newNet(t, 4)
	for i := 0; i < 8; i++ {
		w.step()
	}
	victim := model.NodeID(3)
	w.down[victim] = true
	rounds := 4 + int((w.cfg.ProbeTimeout+w.cfg.SuspectTimeout)/w.cfg.ProbeInterval) + 12
	for i := 0; i < rounds; i++ {
		w.step()
	}
	for id, d := range w.ds {
		if id == victim {
			continue
		}
		if _, ok := d.Tombstones()[victim]; !ok {
			t.Fatalf("node %d: no tombstone for the dead victim", id)
		}
	}
	// Step past the TTL: the tombstone (and the member record it backs)
	// must be forgotten, so a long-running node does not grow one entry
	// per departed peer forever.
	ttlRounds := int(w.cfg.TombstoneTTL/w.cfg.ProbeInterval) + 10
	for i := 0; i < ttlRounds; i++ {
		w.step()
	}
	for id, d := range w.ds {
		if id == victim {
			continue
		}
		if ts := d.Tombstones(); len(ts) != 0 {
			t.Errorf("node %d: tombstones %v survived the TTL", id, ts)
		}
		if m, ok := d.Member(victim); ok {
			t.Errorf("node %d: departed member still reported: %+v", id, m)
		}
		alive, suspect := d.Counts()
		if alive != 3 || suspect != 0 {
			t.Errorf("node %d: alive=%d suspect=%d after aging, want 3/0", id, alive, suspect)
		}
	}
}

func TestIndirectProbeSavesOneWayPartition(t *testing.T) {
	// Node 0 cannot reach node 1 directly, but proxies can. The
	// harness models this by dropping only 0→1 pings.
	cfg := Config{
		ProbeInterval:  10 * time.Millisecond,
		PingTimeout:    5 * time.Millisecond,
		ProbeTimeout:   30 * time.Millisecond,
		SuspectTimeout: 50 * time.Millisecond,
		IndirectProbes: 2,
	}
	now := time.Unix(1000, 0)
	ds := map[model.NodeID]*Detector{}
	for i := 0; i < 4; i++ {
		ds[model.NodeID(i)] = New(model.NodeID(i), fmt.Sprintf("10.0.0.%d:1", i), cfg, int64(i))
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				ds[model.NodeID(i)].Observe(model.NodeID(j), fmt.Sprintf("10.0.0.%d:1", j), now)
			}
		}
	}
	var deliver func(from model.NodeID, pkts []Packet)
	deliver = func(from model.NodeID, pkts []Packet) {
		for _, p := range pkts {
			if _, isPing := p.Msg.(Ping); isPing && from == 0 && p.To == 1 {
				continue // the broken direct link
			}
			d := ds[p.To]
			var replies []Packet
			switch m := p.Msg.(type) {
			case Ping:
				replies = d.OnPing(from, m, now)
			case Ack:
				replies = d.OnAck(from, m, now)
			case PingReq:
				replies = d.OnPingReq(from, m, now)
			}
			deliver(p.To, replies)
		}
	}
	for i := 0; i < 60; i++ {
		now = now.Add(cfg.ProbeInterval)
		for id, d := range ds {
			deliver(id, d.Tick(now))
		}
	}
	// Indirect acks through the proxies must have kept node 1 alive at
	// node 0 despite every direct ping being lost.
	if m, _ := ds[0].Member(1); m.State != Alive {
		t.Fatalf("node 0 sees node 1 as %v; indirect probes should have vouched for it", m.State)
	}
}

func TestPiggybackBudgetBoundsQueue(t *testing.T) {
	d := New(0, "a:1", Config{}, 1)
	now := time.Unix(1000, 0)
	for i := 1; i <= 20; i++ {
		d.Observe(model.NodeID(i), "x:1", now)
	}
	d.queueUpdate(Update{ID: 5, State: Suspect, Inc: 1})
	budget := d.retransmitBudget()
	for i := 0; i < budget+5; i++ {
		d.piggyback()
	}
	if len(d.updates) != 0 {
		t.Fatalf("update queue not drained after budget: %d left", len(d.updates))
	}
	if got := d.piggyback(); got != nil {
		t.Fatalf("piggyback after drain = %v, want nil", got)
	}
}

func TestSupersedesRules(t *testing.T) {
	m := &Member{ID: 1, State: Alive, Inc: 3}
	cases := []struct {
		u    Update
		want bool
	}{
		{Update{ID: 1, State: Alive, Inc: 3}, false},   // same state, same inc
		{Update{ID: 1, State: Suspect, Inc: 3}, true},  // worse state wins at same inc
		{Update{ID: 1, State: Suspect, Inc: 2}, false}, // stale inc never wins
		{Update{ID: 1, State: Alive, Inc: 4}, true},    // newer inc always wins
		{Update{ID: 1, State: Dead, Inc: 3}, true},     // dead beats alive at same inc
	}
	for i, c := range cases {
		if got := supersedes(c.u, m); got != c.want {
			t.Errorf("case %d: supersedes(%+v) = %v, want %v", i, c.u, got, c.want)
		}
	}
}
