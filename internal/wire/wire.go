// Package wire implements the livenet v2 wire format: a compact,
// length-prefixed binary encoding for every envelope the live transport
// carries (query, result, publish, publish-ack, hello, address book).
//
// Design goals, in order:
//
//   - No reflection on the hot path. Every message has an explicit,
//     hand-rolled field layout — integers are varints (zigzag for signed
//     values, so NoCluster's -1 stays one byte), strings and lists are
//     length-prefixed. encoding/gob pays per-message reflection plus
//     stream type dictionaries; this codec pays neither.
//   - No steady-state allocations on encode. Frames are built in
//     sync.Pool-backed scratch buffers; Reader reuses one payload buffer
//     across frames, so the decode side allocates only what the message
//     itself must own (doc slices, strings).
//   - Corrupt input never panics. Every read is bounds-checked and list
//     lengths are validated against the remaining payload before any
//     allocation, so a hostile or truncated frame costs at most one
//     bounded error.
//
// Frame layout (after the one-time stream preamble, see stream.go):
//
//	frame   := uvarint(len(payload)) payload
//	payload := tag(1 byte) varint(sender) body
//
// where body is the tag-specific field sequence documented on each
// append function below.
package wire

import (
	"encoding/binary"
	"fmt"
	"sort"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
)

// Version is the codec generation this package speaks. It is carried in
// the stream preamble and echoed in the receiver's ack; a mismatch (or a
// receiver that never acks) makes the sender fall back to gob.
const Version = 2

// MaxFrameBytes bounds one frame's payload. The largest legitimate
// message is an address book; at ~30 bytes per peer this admits over a
// hundred thousand peers while keeping a corrupt length prefix from
// forcing a giant allocation.
const MaxFrameBytes = 4 << 20

// Message type tags.
const (
	tagQuery      = 1
	tagResult     = 2
	tagPublish    = 3
	tagPublishAck = 4
	tagHello      = 5
	tagBook       = 6
)

// Envelope frames every wire message with its sender. Both codecs — v2
// binary and the gob fallback — encode this same type, so the transport
// can switch per stream without translating.
type Envelope struct {
	From model.NodeID
	Msg  any
}

// Hello announces a (re)joining node and its listen address (the livenet
// join handshake).
type Hello struct {
	ID   model.NodeID
	Addr string
}

// Book shares the sender's address book.
type Book struct {
	Book map[model.NodeID]string
}

func appendUint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendInt(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendEnvelope appends env's payload — tag, sender, body, no length
// prefix — to b and returns the extended slice. Unknown message types
// are an error: the codec is explicit by design; there is no reflective
// fallback.
func AppendEnvelope(b []byte, env Envelope) ([]byte, error) {
	switch m := env.Msg.(type) {
	case overlay.QueryMsg:
		// query := ID want category origin hops entry
		b = append(b, tagQuery)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, m.ID)
		b = appendInt(b, int64(m.Category))
		b = appendInt(b, int64(m.Want))
		b = appendInt(b, int64(m.Origin))
		b = appendInt(b, int64(m.Hops))
		b = appendBool(b, m.Entry)
	case overlay.ResultMsg:
		// result := ID hops from count doc*
		b = append(b, tagResult)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, m.ID)
		b = appendInt(b, int64(m.Hops))
		b = appendInt(b, int64(m.From))
		b = appendUint(b, uint64(len(m.Docs)))
		for _, d := range m.Docs {
			b = appendInt(b, int64(d))
		}
	case overlay.PublishMsg:
		// publish := doc category publisher dummy
		b = append(b, tagPublish)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.Doc))
		b = appendInt(b, int64(m.Category))
		b = appendInt(b, int64(m.Publisher))
		b = appendBool(b, m.Dummy)
	case overlay.PublishAckMsg:
		// publish-ack := doc category cluster moveCounter accepted count member*
		b = append(b, tagPublishAck)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.Doc))
		b = appendInt(b, int64(m.Category))
		b = appendInt(b, int64(m.Entry.Cluster))
		b = appendUint(b, m.Entry.MoveCounter)
		b = appendBool(b, m.Accepted)
		b = appendUint(b, uint64(len(m.Members)))
		for _, nb := range m.Members {
			b = appendInt(b, int64(nb))
		}
	case Hello:
		// hello := id addr
		b = append(b, tagHello)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.ID))
		b = appendString(b, m.Addr)
	case Book:
		// book := count (id addr)*   — sorted by id so encoding is
		// deterministic (map iteration order is not).
		b = append(b, tagBook)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, uint64(len(m.Book)))
		ids := make([]model.NodeID, 0, len(m.Book))
		for id := range m.Book {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			b = appendInt(b, int64(id))
			b = appendString(b, m.Book[id])
		}
	default:
		return b, fmt.Errorf("wire: unencodable message type %T", env.Msg)
	}
	return b, nil
}

// dec is a bounds-checked cursor over one frame's payload. Errors are
// sticky: after the first failure every read returns zero and the single
// error surfaces at the end.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated or corrupt %s at offset %d", what, d.off)
	}
}

func (d *dec) uint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) int(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) bool(what string) bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail(what)
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *dec) str(what string) string {
	n := d.uint(what)
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count reads a list length and rejects values that cannot fit in the
// remaining bytes (every element is at least one byte), so a corrupt
// frame can never force a huge allocation.
func (d *dec) count(what string) int {
	n := d.uint(what)
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return 0
	}
	return int(n)
}

// DecodeEnvelope decodes one frame payload. It never panics on corrupt
// input: a malformed frame returns an error and allocates at most the
// bounded intermediate slices validated by count.
func DecodeEnvelope(b []byte) (Envelope, error) {
	if len(b) == 0 {
		return Envelope{}, fmt.Errorf("wire: empty frame")
	}
	d := &dec{b: b, off: 1}
	env := Envelope{From: model.NodeID(d.int("sender"))}
	switch b[0] {
	case tagQuery:
		var m overlay.QueryMsg
		m.ID = d.uint("query id")
		m.Category = catalog.CategoryID(d.int("category"))
		m.Want = int(d.int("want"))
		m.Origin = model.NodeID(d.int("origin"))
		m.Hops = int(d.int("hops"))
		m.Entry = d.bool("entry flag")
		env.Msg = m
	case tagResult:
		var m overlay.ResultMsg
		m.ID = d.uint("result id")
		m.Hops = int(d.int("hops"))
		m.From = model.NodeID(d.int("answering node"))
		if n := d.count("doc count"); n > 0 {
			m.Docs = make([]catalog.DocID, n)
			for i := range m.Docs {
				m.Docs[i] = catalog.DocID(d.int("doc id"))
			}
		}
		env.Msg = m
	case tagPublish:
		var m overlay.PublishMsg
		m.Doc = catalog.DocID(d.int("doc id"))
		m.Category = catalog.CategoryID(d.int("category"))
		m.Publisher = model.NodeID(d.int("publisher"))
		m.Dummy = d.bool("dummy flag")
		env.Msg = m
	case tagPublishAck:
		var m overlay.PublishAckMsg
		m.Doc = catalog.DocID(d.int("doc id"))
		m.Category = catalog.CategoryID(d.int("category"))
		m.Entry.Cluster = model.ClusterID(d.int("cluster"))
		m.Entry.MoveCounter = d.uint("move counter")
		m.Accepted = d.bool("accepted flag")
		if n := d.count("member count"); n > 0 {
			m.Members = make([]model.NodeID, n)
			for i := range m.Members {
				m.Members[i] = model.NodeID(d.int("member id"))
			}
		}
		env.Msg = m
	case tagHello:
		var m Hello
		m.ID = model.NodeID(d.int("hello id"))
		m.Addr = d.str("hello addr")
		env.Msg = m
	case tagBook:
		n := d.count("book size")
		m := Book{Book: make(map[model.NodeID]string, n)}
		for i := 0; i < n && d.err == nil; i++ {
			id := model.NodeID(d.int("book id"))
			m.Book[id] = d.str("book addr")
		}
		env.Msg = m
	default:
		return Envelope{}, fmt.Errorf("wire: unknown message tag %d", b[0])
	}
	if d.err != nil {
		return Envelope{}, d.err
	}
	if d.off != len(b) {
		return Envelope{}, fmt.Errorf("wire: %d trailing bytes after message", len(b)-d.off)
	}
	return env, nil
}
