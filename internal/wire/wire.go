// Package wire implements the livenet binary wire format: a compact,
// length-prefixed encoding for every envelope the live transport
// carries (query, result, publish, publish-ack, hello, address book,
// and — since generation 3 — the membership probes and adaptation
// messages of the live dynamics layer).
//
// Design goals, in order:
//
//   - No reflection on the hot path. Every message has an explicit,
//     hand-rolled field layout — integers are varints (zigzag for signed
//     values, so NoCluster's -1 stays one byte), strings and lists are
//     length-prefixed. encoding/gob pays per-message reflection plus
//     stream type dictionaries; this codec pays neither.
//   - No steady-state allocations on encode. Frames are built in
//     sync.Pool-backed scratch buffers; Reader reuses one payload buffer
//     across frames, so the decode side allocates only what the message
//     itself must own (doc slices, strings).
//   - Corrupt input never panics. Every read is bounds-checked and list
//     lengths are validated against the remaining payload before any
//     allocation, so a hostile or truncated frame costs at most one
//     bounded error.
//
// Frame layout (after the one-time stream preamble, see stream.go):
//
//	frame   := uvarint(len(payload)) payload
//	payload := tag(1 byte) varint(sender) body
//
// where body is the tag-specific field sequence documented on each
// append function below.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"p2pshare/internal/catalog"
	"p2pshare/internal/membership"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
)

// Version is the codec generation this package speaks. It is carried in
// the stream preamble and echoed in the receiver's ack; a mismatch (or a
// receiver that never acks) makes the sender fall back to gob — which is
// exactly how a generation-3 node interoperates with a generation-2
// binary: the old receiver rejects the new preamble, both sides settle
// on gob, and gob's tolerance for unknown struct fields carries the
// extended Book (tombstones) across the version gap.
//
// Generation 3 adds the membership frames (ping, ack, ping-req, leave),
// the adaptation frames (leader-load, move, meta-update), and the Dead
// tombstone section of Book.
//
// Generation 4 adds the content data plane frames: manifest-req,
// manifest, chunk-req (which doubles as the flow-control credit grant),
// and chunk.
//
// Generation 5 adds demand-driven replication: the replicate frame (a
// holder pushing a hot document's manifest at an under-loaded peer) and
// the Served/Lite extensions of LeaderLoad that route serve-load
// measurements up to the leader and under-loaded-member hints back
// down. As with every bump, mixed-version pairs settle on gob, whose
// tolerance for unknown struct fields carries the extended LeaderLoad
// across the gap.
const Version = 5

// MaxFrameBytes bounds one frame's payload. The largest legitimate
// message is an address book; at ~30 bytes per peer this admits over a
// hundred thousand peers while keeping a corrupt length prefix from
// forcing a giant allocation.
const MaxFrameBytes = 4 << 20

// Message type tags.
const (
	tagQuery      = 1
	tagResult     = 2
	tagPublish    = 3
	tagPublishAck = 4
	tagHello      = 5
	tagBook       = 6
	tagPing       = 7
	tagAck        = 8
	tagPingReq    = 9
	tagLeave      = 10
	tagLeaderLoad  = 11
	tagMove        = 12
	tagMetaUpdate  = 13
	tagManifestReq = 14
	tagManifest    = 15
	tagChunkReq    = 16
	tagChunk       = 17
	tagReplicate   = 18
)

// hashSize mirrors content.HashSize (sha256) without importing the
// store package: the codec only needs it to validate that a manifest's
// hash blob is whole hashes.
const hashSize = 32

// Envelope frames every wire message with its sender. Both codecs — v2
// binary and the gob fallback — encode this same type, so the transport
// can switch per stream without translating.
type Envelope struct {
	From model.NodeID
	Msg  any
}

// Hello announces a (re)joining node and its listen address (the livenet
// join handshake).
type Hello struct {
	ID   model.NodeID
	Addr string
}

// Book shares the sender's address book. Dead carries the sender's
// membership tombstones (node → last incarnation), so a merge cannot
// resurrect a peer the network already confirmed dead: the receiver
// drops tombstoned entries instead of re-adding them.
type Book struct {
	Book map[model.NodeID]string
	Dead map[model.NodeID]uint64
}

// LeaderLoad reports measured per-category load for one adaptation
// epoch. Members send it to their cluster leader (Aggregated false);
// leaders exchange cluster-wide sums with each other (Aggregated true).
// Hits are per-category request counts; Units is the per-category unit
// mass u_k·p(D_s(k))/p(D(k)) backing them, so the chosen leader can
// rebuild the ICLB state from live measurements (§6.1.2).
// Since generation 5 the member→leader report also carries Served (the
// member's total chunk/manifest serves this epoch, the content-plane
// load signal), and the leader's reply path reuses the frame to send
// Lite — the cluster members with the lightest serve load — back to
// overloaded members so they know where to push hot replicas.
type LeaderLoad struct {
	Epoch      uint64
	Cluster    model.ClusterID
	Aggregated bool
	Hits       map[catalog.CategoryID]int64
	Units      map[catalog.CategoryID]float64
	Served     int64
	Lite       []model.NodeID
}

// ManifestReq asks a replica holder for a document's manifest. Xfer is
// a requester-chosen transfer id echoed in every reply, so concurrent
// fetches on one node demultiplex without shared state on the server.
// Origin is the fetching node the manifest (from whoever holds the
// document) must be sent to, and TTL bounds intra-cluster forwarding:
// a contacted member that does not hold the document relays the
// request to a few serving-cluster neighbors instead of answering, so
// holder discovery rides the overlay exactly like queries do.
type ManifestReq struct {
	Doc    catalog.DocID
	Xfer   uint64
	Origin model.NodeID
	TTL    int64
}

// Manifest answers a ManifestReq with the document's chunk table (size,
// chunk size, concatenated SHA-256 chunk hashes). Missing true means
// the addressed peer does not hold the document — the fetcher should
// fail over to another replica holder.
type Manifest struct {
	Doc       catalog.DocID
	Xfer      uint64
	Size      int64
	ChunkSize int64
	Hashes    []byte
	Missing   bool
}

// ChunkReq requests chunks [First, First+Count) of a document. It IS
// the credit grant of the sliding-window flow control: a server never
// sends a chunk that was not explicitly granted, so the receiver's
// outstanding window — not the sender's appetite — bounds bulk data in
// flight on the stream.
type ChunkReq struct {
	Doc   catalog.DocID
	Xfer  uint64
	First int64
	Count int64
}

// Chunk carries one verified transfer unit. Missing true means the
// server could not produce the granted chunk (it no longer holds the
// document); Data is the chunk bytes otherwise.
type Chunk struct {
	Doc     catalog.DocID
	Xfer    uint64
	Index   int64
	Data    []byte
	Missing bool
}

// Replicate is a holder-side push trigger: an overloaded replica holder
// hands an under-loaded serving-cluster member the manifest of a hot
// document. The receiver pulls the chunks back over the ordinary
// chunk-req/chunk flow (so the push reuses the credit-based window and
// the bulk lane) and installs the verified bytes as a cached replica.
type Replicate struct {
	Doc       catalog.DocID
	Size      int64
	ChunkSize int64
	Hashes    []byte
}

// Move announces one category reassignment decided by the chosen leader
// (§6.1.2 phase 4). Entry carries the destination cluster and the bumped
// move counter; From is the source cluster, so receivers know whether
// they are shedding or gaining the category.
type Move struct {
	Category catalog.CategoryID
	From     model.ClusterID
	Entry    overlay.DCRTEntry
}

func appendUint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendInt(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendFloat writes a float64 as 8 fixed big-endian bytes (varints buy
// nothing for float bit patterns).
func appendFloat(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

// appendBytes writes a length-prefixed byte blob.
func appendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// appendUpdates writes a piggybacked membership rumor list:
// count (id addr state inc)*.
func appendUpdates(b []byte, us []membership.Update) []byte {
	b = appendUint(b, uint64(len(us)))
	for _, u := range us {
		b = appendInt(b, int64(u.ID))
		b = appendString(b, u.Addr)
		b = append(b, byte(u.State))
		b = appendUint(b, u.Inc)
	}
	return b
}

// appendCatInts writes a category→int64 map sorted by category, so the
// encoding is deterministic.
func appendCatInts(b []byte, m map[catalog.CategoryID]int64) []byte {
	b = appendUint(b, uint64(len(m)))
	cats := make([]catalog.CategoryID, 0, len(m))
	for c := range m {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		b = appendInt(b, int64(c))
		b = appendInt(b, m[c])
	}
	return b
}

// appendCatFloats writes a category→float64 map sorted by category.
func appendCatFloats(b []byte, m map[catalog.CategoryID]float64) []byte {
	b = appendUint(b, uint64(len(m)))
	cats := make([]catalog.CategoryID, 0, len(m))
	for c := range m {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		b = appendInt(b, int64(c))
		b = appendFloat(b, m[c])
	}
	return b
}

// AppendEnvelope appends env's payload — tag, sender, body, no length
// prefix — to b and returns the extended slice. Unknown message types
// are an error: the codec is explicit by design; there is no reflective
// fallback.
func AppendEnvelope(b []byte, env Envelope) ([]byte, error) {
	switch m := env.Msg.(type) {
	case overlay.QueryMsg:
		// query := ID want category origin hops entry
		b = append(b, tagQuery)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, m.ID)
		b = appendInt(b, int64(m.Category))
		b = appendInt(b, int64(m.Want))
		b = appendInt(b, int64(m.Origin))
		b = appendInt(b, int64(m.Hops))
		b = appendBool(b, m.Entry)
	case overlay.ResultMsg:
		// result := ID hops from count doc*
		b = append(b, tagResult)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, m.ID)
		b = appendInt(b, int64(m.Hops))
		b = appendInt(b, int64(m.From))
		b = appendUint(b, uint64(len(m.Docs)))
		for _, d := range m.Docs {
			b = appendInt(b, int64(d))
		}
	case overlay.PublishMsg:
		// publish := doc category publisher dummy
		b = append(b, tagPublish)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.Doc))
		b = appendInt(b, int64(m.Category))
		b = appendInt(b, int64(m.Publisher))
		b = appendBool(b, m.Dummy)
	case overlay.PublishAckMsg:
		// publish-ack := doc category cluster moveCounter accepted count member*
		b = append(b, tagPublishAck)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.Doc))
		b = appendInt(b, int64(m.Category))
		b = appendInt(b, int64(m.Entry.Cluster))
		b = appendUint(b, m.Entry.MoveCounter)
		b = appendBool(b, m.Accepted)
		b = appendUint(b, uint64(len(m.Members)))
		for _, nb := range m.Members {
			b = appendInt(b, int64(nb))
		}
	case Hello:
		// hello := id addr
		b = append(b, tagHello)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.ID))
		b = appendString(b, m.Addr)
	case Book:
		// book := count (id addr)* deadCount (id inc)*   — both sections
		// sorted by id so encoding is deterministic (map iteration order
		// is not).
		b = append(b, tagBook)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, uint64(len(m.Book)))
		ids := make([]model.NodeID, 0, len(m.Book))
		for id := range m.Book {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			b = appendInt(b, int64(id))
			b = appendString(b, m.Book[id])
		}
		b = appendUint(b, uint64(len(m.Dead)))
		dead := make([]model.NodeID, 0, len(m.Dead))
		for id := range m.Dead {
			dead = append(dead, id)
		}
		sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
		for _, id := range dead {
			b = appendInt(b, int64(id))
			b = appendUint(b, m.Dead[id])
		}
	case membership.Ping:
		// ping := seq addr updates
		b = append(b, tagPing)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, m.Seq)
		b = appendString(b, m.Addr)
		b = appendUpdates(b, m.Updates)
	case membership.Ack:
		// ack := seq target updates
		b = append(b, tagAck)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, m.Seq)
		b = appendInt(b, int64(m.Target))
		b = appendUpdates(b, m.Updates)
	case membership.PingReq:
		// ping-req := seq target addr updates
		b = append(b, tagPingReq)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, m.Seq)
		b = appendInt(b, int64(m.Target))
		b = appendString(b, m.Addr)
		b = appendUpdates(b, m.Updates)
	case membership.Leave:
		// leave := id inc
		b = append(b, tagLeave)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.ID))
		b = appendUint(b, m.Inc)
	case LeaderLoad:
		// leader-load := epoch cluster aggregated hits units served count lite*
		b = append(b, tagLeaderLoad)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, m.Epoch)
		b = appendInt(b, int64(m.Cluster))
		b = appendBool(b, m.Aggregated)
		b = appendCatInts(b, m.Hits)
		b = appendCatFloats(b, m.Units)
		b = appendInt(b, m.Served)
		b = appendUint(b, uint64(len(m.Lite)))
		for _, id := range m.Lite {
			b = appendInt(b, int64(id))
		}
	case Move:
		// move := category from cluster moveCounter
		b = append(b, tagMove)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.Category))
		b = appendInt(b, int64(m.From))
		b = appendInt(b, int64(m.Entry.Cluster))
		b = appendUint(b, m.Entry.MoveCounter)
	case ManifestReq:
		// manifest-req := doc xfer origin ttl
		b = append(b, tagManifestReq)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.Doc))
		b = appendUint(b, m.Xfer)
		b = appendInt(b, int64(m.Origin))
		b = appendInt(b, m.TTL)
	case Manifest:
		// manifest := doc xfer missing size chunkSize hashes
		b = append(b, tagManifest)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.Doc))
		b = appendUint(b, m.Xfer)
		b = appendBool(b, m.Missing)
		b = appendInt(b, m.Size)
		b = appendInt(b, m.ChunkSize)
		b = appendBytes(b, m.Hashes)
	case Replicate:
		// replicate := doc size chunkSize hashes
		b = append(b, tagReplicate)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.Doc))
		b = appendInt(b, m.Size)
		b = appendInt(b, m.ChunkSize)
		b = appendBytes(b, m.Hashes)
	case ChunkReq:
		// chunk-req := doc xfer first count
		b = append(b, tagChunkReq)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.Doc))
		b = appendUint(b, m.Xfer)
		b = appendInt(b, m.First)
		b = appendInt(b, m.Count)
	case Chunk:
		// chunk := doc xfer index missing data
		b = append(b, tagChunk)
		b = appendInt(b, int64(env.From))
		b = appendInt(b, int64(m.Doc))
		b = appendUint(b, m.Xfer)
		b = appendInt(b, m.Index)
		b = appendBool(b, m.Missing)
		b = appendBytes(b, m.Data)
	case overlay.MetadataUpdateMsg:
		// meta-update := count (category cluster moveCounter)*   — sorted
		// by category.
		b = append(b, tagMetaUpdate)
		b = appendInt(b, int64(env.From))
		b = appendUint(b, uint64(len(m.Entries)))
		cats := make([]catalog.CategoryID, 0, len(m.Entries))
		for c := range m.Entries {
			cats = append(cats, c)
		}
		sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
		for _, c := range cats {
			e := m.Entries[c]
			b = appendInt(b, int64(c))
			b = appendInt(b, int64(e.Cluster))
			b = appendUint(b, e.MoveCounter)
		}
	default:
		return b, fmt.Errorf("wire: unencodable message type %T", env.Msg)
	}
	return b, nil
}

// dec is a bounds-checked cursor over one frame's payload. Errors are
// sticky: after the first failure every read returns zero and the single
// error surfaces at the end.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated or corrupt %s at offset %d", what, d.off)
	}
}

func (d *dec) uint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) int(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) bool(what string) bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail(what)
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *dec) str(what string) string {
	n := d.uint(what)
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// float reads 8 fixed big-endian bytes. NaN is rejected: no encoder
// produces it, and accepting it would make decode→encode→decode
// non-deterministic (NaN never compares equal to itself).
func (d *dec) float(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b)-d.off < 8 {
		d.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b[d.off:]))
	d.off += 8
	if math.IsNaN(v) {
		d.fail(what)
		return 0
	}
	return v
}

// state reads a membership state byte, rejecting values outside the
// defined enum.
func (d *dec) state(what string) membership.State {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail(what)
		return 0
	}
	v := d.b[d.off]
	d.off++
	if v > byte(membership.Left) {
		d.fail(what)
		return 0
	}
	return membership.State(v)
}

// updates reads a piggybacked membership rumor list.
func (d *dec) updates(what string) []membership.Update {
	n := d.count(what)
	if d.err != nil || n == 0 {
		return nil
	}
	us := make([]membership.Update, n)
	for i := range us {
		us[i].ID = model.NodeID(d.int("update id"))
		us[i].Addr = d.str("update addr")
		us[i].State = d.state("update state")
		us[i].Inc = d.uint("update incarnation")
	}
	return us
}

// catInts reads a category→int64 map.
func (d *dec) catInts(what string) map[catalog.CategoryID]int64 {
	n := d.count(what)
	if d.err != nil {
		return nil
	}
	m := make(map[catalog.CategoryID]int64, n)
	for i := 0; i < n && d.err == nil; i++ {
		c := catalog.CategoryID(d.int("category"))
		m[c] = d.int("hit count")
	}
	return m
}

// catFloats reads a category→float64 map.
func (d *dec) catFloats(what string) map[catalog.CategoryID]float64 {
	n := d.count(what)
	if d.err != nil {
		return nil
	}
	m := make(map[catalog.CategoryID]float64, n)
	for i := 0; i < n && d.err == nil; i++ {
		c := catalog.CategoryID(d.int("category"))
		m[c] = d.float("unit mass")
	}
	return m
}

// bytes reads a length-prefixed byte blob. The payload buffer is
// reused across frames by Reader, so the blob is copied out — the one
// allocation the message must own.
func (d *dec) bytes(what string) []byte {
	n := d.uint(what)
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}

// count reads a list length and rejects values that cannot fit in the
// remaining bytes (every element is at least one byte), so a corrupt
// frame can never force a huge allocation.
func (d *dec) count(what string) int {
	n := d.uint(what)
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return 0
	}
	return int(n)
}

// DecodeEnvelope decodes one frame payload. It never panics on corrupt
// input: a malformed frame returns an error and allocates at most the
// bounded intermediate slices validated by count.
func DecodeEnvelope(b []byte) (Envelope, error) {
	if len(b) == 0 {
		return Envelope{}, fmt.Errorf("wire: empty frame")
	}
	d := &dec{b: b, off: 1}
	env := Envelope{From: model.NodeID(d.int("sender"))}
	switch b[0] {
	case tagQuery:
		var m overlay.QueryMsg
		m.ID = d.uint("query id")
		m.Category = catalog.CategoryID(d.int("category"))
		m.Want = int(d.int("want"))
		m.Origin = model.NodeID(d.int("origin"))
		m.Hops = int(d.int("hops"))
		m.Entry = d.bool("entry flag")
		env.Msg = m
	case tagResult:
		var m overlay.ResultMsg
		m.ID = d.uint("result id")
		m.Hops = int(d.int("hops"))
		m.From = model.NodeID(d.int("answering node"))
		if n := d.count("doc count"); n > 0 {
			m.Docs = make([]catalog.DocID, n)
			for i := range m.Docs {
				m.Docs[i] = catalog.DocID(d.int("doc id"))
			}
		}
		env.Msg = m
	case tagPublish:
		var m overlay.PublishMsg
		m.Doc = catalog.DocID(d.int("doc id"))
		m.Category = catalog.CategoryID(d.int("category"))
		m.Publisher = model.NodeID(d.int("publisher"))
		m.Dummy = d.bool("dummy flag")
		env.Msg = m
	case tagPublishAck:
		var m overlay.PublishAckMsg
		m.Doc = catalog.DocID(d.int("doc id"))
		m.Category = catalog.CategoryID(d.int("category"))
		m.Entry.Cluster = model.ClusterID(d.int("cluster"))
		m.Entry.MoveCounter = d.uint("move counter")
		m.Accepted = d.bool("accepted flag")
		if n := d.count("member count"); n > 0 {
			m.Members = make([]model.NodeID, n)
			for i := range m.Members {
				m.Members[i] = model.NodeID(d.int("member id"))
			}
		}
		env.Msg = m
	case tagHello:
		var m Hello
		m.ID = model.NodeID(d.int("hello id"))
		m.Addr = d.str("hello addr")
		env.Msg = m
	case tagBook:
		n := d.count("book size")
		m := Book{Book: make(map[model.NodeID]string, n)}
		for i := 0; i < n && d.err == nil; i++ {
			id := model.NodeID(d.int("book id"))
			m.Book[id] = d.str("book addr")
		}
		nd := d.count("tombstone count")
		if nd > 0 {
			m.Dead = make(map[model.NodeID]uint64, nd)
			for i := 0; i < nd && d.err == nil; i++ {
				id := model.NodeID(d.int("tombstone id"))
				m.Dead[id] = d.uint("tombstone incarnation")
			}
		}
		env.Msg = m
	case tagPing:
		var m membership.Ping
		m.Seq = d.uint("ping seq")
		m.Addr = d.str("ping addr")
		m.Updates = d.updates("ping updates")
		env.Msg = m
	case tagAck:
		var m membership.Ack
		m.Seq = d.uint("ack seq")
		m.Target = model.NodeID(d.int("ack target"))
		m.Updates = d.updates("ack updates")
		env.Msg = m
	case tagPingReq:
		var m membership.PingReq
		m.Seq = d.uint("ping-req seq")
		m.Target = model.NodeID(d.int("ping-req target"))
		m.Addr = d.str("ping-req addr")
		m.Updates = d.updates("ping-req updates")
		env.Msg = m
	case tagLeave:
		var m membership.Leave
		m.ID = model.NodeID(d.int("leave id"))
		m.Inc = d.uint("leave incarnation")
		env.Msg = m
	case tagLeaderLoad:
		var m LeaderLoad
		m.Epoch = d.uint("load epoch")
		m.Cluster = model.ClusterID(d.int("load cluster"))
		m.Aggregated = d.bool("aggregated flag")
		m.Hits = d.catInts("hit map size")
		m.Units = d.catFloats("unit map size")
		m.Served = d.int("served count")
		if n := d.count("lite count"); n > 0 {
			m.Lite = make([]model.NodeID, n)
			for i := range m.Lite {
				m.Lite[i] = model.NodeID(d.int("lite member"))
			}
		}
		env.Msg = m
	case tagMove:
		var m Move
		m.Category = catalog.CategoryID(d.int("move category"))
		m.From = model.ClusterID(d.int("move source"))
		m.Entry.Cluster = model.ClusterID(d.int("move destination"))
		m.Entry.MoveCounter = d.uint("move counter")
		env.Msg = m
	case tagManifestReq:
		var m ManifestReq
		m.Doc = catalog.DocID(d.int("manifest-req doc"))
		m.Xfer = d.uint("manifest-req xfer")
		m.Origin = model.NodeID(d.int("manifest-req origin"))
		m.TTL = d.int("manifest-req ttl")
		if d.err == nil && (m.Origin < 0 || m.TTL < 0) {
			d.fail("manifest-req routing")
		}
		env.Msg = m
	case tagManifest:
		var m Manifest
		m.Doc = catalog.DocID(d.int("manifest doc"))
		m.Xfer = d.uint("manifest xfer")
		m.Missing = d.bool("manifest missing flag")
		m.Size = d.int("manifest size")
		m.ChunkSize = d.int("manifest chunk size")
		m.Hashes = d.bytes("manifest hashes")
		// A hash blob that is not whole sha256 hashes, or a negative
		// geometry, can only come from corruption or a hostile peer.
		if d.err == nil && (m.Size < 0 || m.ChunkSize < 0 || len(m.Hashes)%hashSize != 0) {
			d.fail("manifest geometry")
		}
		env.Msg = m
	case tagReplicate:
		var m Replicate
		m.Doc = catalog.DocID(d.int("replicate doc"))
		m.Size = d.int("replicate size")
		m.ChunkSize = d.int("replicate chunk size")
		m.Hashes = d.bytes("replicate hashes")
		// Same geometry discipline as a manifest: the hash blob must be
		// whole sha256 hashes with non-negative sizes.
		if d.err == nil && (m.Size < 0 || m.ChunkSize <= 0 || len(m.Hashes)%hashSize != 0) {
			d.fail("replicate geometry")
		}
		env.Msg = m
	case tagChunkReq:
		var m ChunkReq
		m.Doc = catalog.DocID(d.int("chunk-req doc"))
		m.Xfer = d.uint("chunk-req xfer")
		m.First = d.int("chunk-req first")
		m.Count = d.int("chunk-req count")
		if d.err == nil && (m.First < 0 || m.Count < 0) {
			d.fail("chunk-req window")
		}
		env.Msg = m
	case tagChunk:
		var m Chunk
		m.Doc = catalog.DocID(d.int("chunk doc"))
		m.Xfer = d.uint("chunk xfer")
		m.Index = d.int("chunk index")
		m.Missing = d.bool("chunk missing flag")
		m.Data = d.bytes("chunk data")
		if d.err == nil && m.Index < 0 {
			d.fail("chunk index sign")
		}
		env.Msg = m
	case tagMetaUpdate:
		n := d.count("entry count")
		m := overlay.MetadataUpdateMsg{Entries: make(map[catalog.CategoryID]overlay.DCRTEntry, n)}
		for i := 0; i < n && d.err == nil; i++ {
			c := catalog.CategoryID(d.int("entry category"))
			var e overlay.DCRTEntry
			e.Cluster = model.ClusterID(d.int("entry cluster"))
			e.MoveCounter = d.uint("entry move counter")
			m.Entries[c] = e
		}
		env.Msg = m
	default:
		return Envelope{}, fmt.Errorf("wire: unknown message tag %d", b[0])
	}
	if d.err != nil {
		return Envelope{}, d.err
	}
	if d.off != len(b) {
		return Envelope{}, fmt.Errorf("wire: %d trailing bytes after message", len(b)-d.off)
	}
	return env, nil
}
