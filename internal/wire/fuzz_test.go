package wire

import (
	"testing"
)

// FuzzEnvelopeRoundTrip feeds arbitrary bytes to the frame decoder. Two
// properties must hold for every input:
//
//  1. Decoding never panics and never allocates unboundedly — corrupt
//     frames fail with an error (the test harness itself catches panics
//     and out-of-memory aborts).
//  2. Any input that DOES decode re-encodes to an envelope that decodes
//     to the same value: decode(encode(decode(b))) == decode(b). The
//     byte strings may differ (varints accept non-minimal forms) but the
//     value must be stable.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	for _, env := range sampleEnvelopes() {
		b, err := AppendEnvelope(nil, env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{tagResult, 0, 1, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add(Preamble())

	f.Fuzz(func(t *testing.T, b []byte) {
		env, err := DecodeEnvelope(b)
		if err != nil {
			return // corrupt input rejected cleanly — property 1 holds
		}
		reenc, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatalf("decoded envelope %+v does not re-encode: %v", env, err)
		}
		env2, err := DecodeEnvelope(reenc)
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		if env.From != env2.From || !equivalentMsg(env.Msg, env2.Msg) {
			t.Fatalf("round trip unstable:\n first = %+v\nsecond = %+v", env, env2)
		}
	})
}
