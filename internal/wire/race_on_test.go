//go:build race

package wire

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation changes allocation counts —
// AllocsPerRun pins skip themselves under it.
const raceEnabled = true
