package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Stream negotiation. A v2 sender opens every stream with a 5-byte
// preamble ("P2PW" + version); a v2 receiver peeks at the first bytes of
// an inbound stream, and on a preamble match consumes it, writes the
// accepted version back as a one-byte ack, and decodes v2 frames from
// then on. Absent the preamble the receiver falls straight through to
// gob, so old senders keep working unchanged. An old RECEIVER never
// acks: it either closes the stream on the preamble — which the sender
// reads as proof, redialing and speaking gob to that peer from then
// on — or blocks mid-message (the genuine pre-v2 decoder treats 'P' as
// a gob length prefix and waits), which surfaces as an ack timeout.
// The timeout is ambiguous with a transiently stalled v2 peer, so it
// downgrades only the one stream and the sender re-probes v2 on its
// next connect, going sticky after a streak of timeouts. Every
// downgrade is counted as codec_fallback.

// preamble opens every v2 stream.
var preamble = [5]byte{'P', '2', 'P', 'W', Version}

// PreambleLen is the number of bytes IsPreamble needs to inspect.
const PreambleLen = len(preamble)

// Preamble returns the stream-open header a v2 sender writes.
func Preamble() []byte {
	p := preamble
	return p[:]
}

// IsPreamble reports whether b (at least PreambleLen bytes) opens a
// v2 stream this package can decode.
func IsPreamble(b []byte) bool {
	if len(b) < PreambleLen {
		return false
	}
	for i := range preamble {
		if b[i] != preamble[i] {
			return false
		}
	}
	return true
}

// encPool recycles per-envelope encode buffers across all writers; a
// steady-state send allocates nothing.
var encPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// WriteEnvelope frames env (uvarint length prefix + payload) onto w.
// The whole frame — header included — is staged in a pooled scratch
// buffer, so it reaches the buffered writer in ONE Write call and no
// allocations: a stack-local header array passed to w.Write would escape
// (the analyzer cannot see that bufio does not retain it) and cost one
// heap allocation per frame, so the length prefix is instead encoded
// right-aligned into space reserved at the front of the scratch buffer.
func WriteEnvelope(w *bufio.Writer, env Envelope) error {
	const hdrMax = binary.MaxVarintLen64
	bp := encPool.Get().(*[]byte)
	defer encPool.Put(bp)
	scratch := *bp
	if cap(scratch) < hdrMax {
		scratch = make([]byte, hdrMax, 1024)
	}
	b, err := AppendEnvelope(scratch[:hdrMax], env)
	*bp = b[:0] // keep grown capacity for the next borrower
	if err != nil {
		return err
	}
	payload := len(b) - hdrMax
	if payload > MaxFrameBytes {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", payload, MaxFrameBytes)
	}
	// Right-align the uvarint length against the payload.
	n := binary.PutUvarint(b[:hdrMax], uint64(payload))
	start := hdrMax - n
	copy(b[start:hdrMax], b[:n])
	_, err = w.Write(b[start:])
	return err
}

// Reader decodes a stream of length-prefixed frames, reusing one payload
// buffer across messages — the accept path's only per-message
// allocations are the slices the decoded message itself must own.
type Reader struct {
	br  *bufio.Reader
	buf []byte
}

// NewReader wraps a buffered reader positioned just past the preamble.
func NewReader(br *bufio.Reader) *Reader { return &Reader{br: br} }

// Next reads and decodes one envelope. Errors are terminal for the
// stream (a broken length prefix leaves no way to resynchronize).
func (r *Reader) Next() (Envelope, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Envelope{}, err
	}
	if n == 0 || n > MaxFrameBytes {
		return Envelope{}, fmt.Errorf("wire: frame length %d out of range", n)
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	b := r.buf[:n]
	if _, err := io.ReadFull(r.br, b); err != nil {
		return Envelope{}, err
	}
	return DecodeEnvelope(b)
}
