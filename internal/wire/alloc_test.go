package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"p2pshare/internal/catalog"
	"p2pshare/internal/overlay"
)

// TestWriteEnvelopeAllocs pins the encode path at ZERO steady-state
// allocations: frames are staged in pooled scratch buffers and reach the
// writer in two Write calls (the package's headline design goal — keep
// it true).
func TestWriteEnvelopeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	w := bufio.NewWriterSize(io.Discard, 1<<16)
	env := Envelope{From: 7, Msg: overlay.QueryMsg{
		ID: 99, Category: 3, Want: 8, Origin: 7, Hops: 2, Entry: true,
	}}
	avg := testing.AllocsPerRun(5000, func() {
		if err := WriteEnvelope(w, env); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("WriteEnvelope allocates %.1f per run, budget 0", avg)
	}
}

// TestReaderNextQueryAllocs pins the decode path for the hottest frame
// (QueryMsg, no owned slices): the boxed message is the only steady-
// state allocation once the reader's payload buffer has grown.
func TestReaderNextQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	var frame bytes.Buffer
	bw := bufio.NewWriter(&frame)
	if err := WriteEnvelope(bw, Envelope{From: 7, Msg: overlay.QueryMsg{
		ID: 99, Category: 3, Want: 8, Origin: 7, Hops: 2, Entry: true,
	}}); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	raw := frame.Bytes()

	stream := &replayReader{b: raw}
	br := bufio.NewReader(stream)
	r := NewReader(br)
	if _, err := r.Next(); err != nil { // grow the reusable payload buffer
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5000, func() {
		env, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := env.Msg.(overlay.QueryMsg); !ok {
			t.Fatalf("decoded %T", env.Msg)
		}
	})
	// One boxed QueryMsg; the dec struct stays on the stack.
	if avg > 2 {
		t.Fatalf("Reader.Next(query) allocates %.1f per run, budget 2", avg)
	}
}

// TestReaderNextResultAllocs pins the result frame: the boxed message
// plus the Docs slice the decoded message must own.
func TestReaderNextResultAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	var frame bytes.Buffer
	bw := bufio.NewWriter(&frame)
	if err := WriteEnvelope(bw, Envelope{From: 7, Msg: overlay.ResultMsg{
		ID: 99, Docs: []catalog.DocID{1, 2, 3, 4}, Hops: 2, From: 7,
	}}); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	raw := frame.Bytes()

	stream := &replayReader{b: raw}
	br := bufio.NewReader(stream)
	r := NewReader(br)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5000, func() {
		env, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		m, ok := env.Msg.(overlay.ResultMsg)
		if !ok || len(m.Docs) != 4 {
			t.Fatalf("decoded %T", env.Msg)
		}
	})
	if avg > 3 {
		t.Fatalf("Reader.Next(result) allocates %.1f per run, budget 3", avg)
	}
}

// replayReader replays one encoded frame forever — an infinite stream of
// identical frames with no per-read allocation.
type replayReader struct {
	b   []byte
	off int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.off == len(r.b) {
		r.off = 0
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

var _ io.Reader = (*replayReader)(nil)
