package wire

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"net"
	"reflect"
	"strings"
	"testing"

	"p2pshare/internal/catalog"
	"p2pshare/internal/membership"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
)

func init() {
	// The gob registrations the livenet transport performs, repeated here
	// so the codec comparison benchmark can encode the same envelopes.
	gob.Register(overlay.QueryMsg{})
	gob.Register(overlay.ResultMsg{})
	gob.Register(overlay.PublishMsg{})
	gob.Register(overlay.PublishAckMsg{})
	gob.Register(Hello{})
	gob.Register(Book{})
	gob.Register(membership.Ping{})
	gob.Register(membership.Ack{})
	gob.Register(membership.PingReq{})
	gob.Register(membership.Leave{})
	gob.Register(LeaderLoad{})
	gob.Register(Move{})
	gob.Register(overlay.MetadataUpdateMsg{})
	gob.Register(ManifestReq{})
	gob.Register(Manifest{})
	gob.Register(ChunkReq{})
	gob.Register(Chunk{})
	gob.Register(Replicate{})
}

// sampleEnvelopes covers every message type, including negative ids
// (NoCluster) and empty/absent collections.
func sampleEnvelopes() []Envelope {
	return []Envelope{
		{From: 3, Msg: overlay.QueryMsg{ID: 1<<40 + 17, Category: 12, Want: 5, Origin: 3, Hops: 2, Entry: true}},
		{From: 0, Msg: overlay.QueryMsg{}},
		{From: 9, Msg: overlay.ResultMsg{ID: 42, Docs: []catalog.DocID{1, 5, 999999}, Hops: 4, From: 9}},
		{From: 9, Msg: overlay.ResultMsg{ID: 43, Hops: 1, From: 9}},
		{From: 2, Msg: overlay.PublishMsg{Doc: 77, Category: 3, Publisher: 2, Dummy: true}},
		{From: 5, Msg: overlay.PublishAckMsg{
			Doc: 77, Category: 3,
			Entry:    overlay.DCRTEntry{Cluster: model.NoCluster, MoveCounter: 12},
			Accepted: true,
			Members:  []model.NodeID{1, 2, 3, 4, 5, 6, 7, 8},
		}},
		{From: 5, Msg: overlay.PublishAckMsg{Doc: 1, Category: 0, Entry: overlay.DCRTEntry{Cluster: 4}}},
		{From: 11, Msg: Hello{ID: 11, Addr: "127.0.0.1:49321"}},
		{From: 11, Msg: Hello{}},
		{From: 1, Msg: Book{Book: map[model.NodeID]string{
			0: "127.0.0.1:7000", 1: "127.0.0.1:7001", 19: "10.0.0.3:9999",
		}}},
		{From: 1, Msg: Book{Book: map[model.NodeID]string{}}},
		{From: 1, Msg: Book{
			Book: map[model.NodeID]string{0: "127.0.0.1:7000"},
			Dead: map[model.NodeID]uint64{7: 3, 9: 0},
		}},
		{From: 4, Msg: membership.Ping{Seq: 99, Addr: "127.0.0.1:7004", Updates: []membership.Update{
			{ID: 2, Addr: "127.0.0.1:7002", State: membership.Suspect, Inc: 5},
			{ID: 8, State: membership.Dead, Inc: 0},
		}}},
		{From: 4, Msg: membership.Ping{Seq: 1}},
		{From: 2, Msg: membership.Ack{Seq: 99, Target: 4, Updates: []membership.Update{
			{ID: 2, Addr: "127.0.0.1:7002", State: membership.Alive, Inc: 6},
		}}},
		{From: 2, Msg: membership.Ack{Seq: 100, Target: 2}},
		{From: 4, Msg: membership.PingReq{Seq: 7, Target: 3, Addr: "127.0.0.1:7003"}},
		{From: 6, Msg: membership.Leave{ID: 6, Inc: 4}},
		{From: 3, Msg: LeaderLoad{
			Epoch: 12, Cluster: 2, Aggregated: true,
			Hits:  map[catalog.CategoryID]int64{0: 14, 3: 2},
			Units: map[catalog.CategoryID]float64{0: 1.5, 3: 0.25},
		}},
		{From: 3, Msg: LeaderLoad{Epoch: 1, Cluster: model.NoCluster}},
		{From: 4, Msg: LeaderLoad{
			Epoch: 13, Cluster: 1, Served: 512,
			Lite: []model.NodeID{4, 9, 17},
		}},
		{From: 3, Msg: Move{
			Category: 5, From: 2,
			Entry: overlay.DCRTEntry{Cluster: 0, MoveCounter: 3},
		}},
		{From: 3, Msg: overlay.MetadataUpdateMsg{Entries: map[catalog.CategoryID]overlay.DCRTEntry{
			5: {Cluster: 0, MoveCounter: 3},
			9: {Cluster: 1, MoveCounter: 1},
		}}},
		{From: 3, Msg: overlay.MetadataUpdateMsg{}},
		{From: 7, Msg: ManifestReq{Doc: 42, Xfer: 1<<33 + 5, Origin: 7, TTL: 2}},
		{From: 7, Msg: ManifestReq{}},
		{From: 8, Msg: Manifest{
			Doc: 42, Xfer: 9, Size: 130<<10 + 17, ChunkSize: 64 << 10,
			Hashes: bytes.Repeat([]byte{0xAB, 0x12}, 48), // 3 chunks * 32 bytes
		}},
		{From: 8, Msg: Manifest{Doc: 3, Xfer: 1, Missing: true}},
		{From: 7, Msg: ChunkReq{Doc: 42, Xfer: 9, First: 4, Count: 32}},
		{From: 7, Msg: ChunkReq{}},
		{From: 8, Msg: Chunk{Doc: 42, Xfer: 9, Index: 4, Data: []byte{1, 2, 3, 0, 255, 7}}},
		{From: 8, Msg: Chunk{Doc: 42, Xfer: 9, Index: 5, Missing: true}},
		{From: 6, Msg: Replicate{
			Doc: 42, Size: 130<<10 + 17, ChunkSize: 64 << 10,
			Hashes: bytes.Repeat([]byte{0xCD, 0x34}, 48), // 3 chunks * 32 bytes
		}},
		{From: 6, Msg: Replicate{Doc: 3, ChunkSize: 64 << 10}},
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	for i, env := range sampleEnvelopes() {
		b, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatalf("envelope %d (%T): encode: %v", i, env.Msg, err)
		}
		got, err := DecodeEnvelope(b)
		if err != nil {
			t.Fatalf("envelope %d (%T): decode: %v", i, env.Msg, err)
		}
		if got.From != env.From {
			t.Errorf("envelope %d: From = %d, want %d", i, got.From, env.From)
		}
		if !equivalentMsg(got.Msg, env.Msg) {
			t.Errorf("envelope %d (%T): round trip = %+v, want %+v", i, env.Msg, got.Msg, env.Msg)
		}
	}
}

// equivalentMsg compares messages treating nil and empty collections as
// equal (the codec does not preserve that distinction).
func equivalentMsg(a, b any) bool {
	if r, ok := a.(overlay.ResultMsg); ok && len(r.Docs) == 0 {
		r.Docs = nil
		a = r
	}
	if r, ok := b.(overlay.ResultMsg); ok && len(r.Docs) == 0 {
		r.Docs = nil
		b = r
	}
	if p, ok := a.(overlay.PublishAckMsg); ok && len(p.Members) == 0 {
		p.Members = nil
		a = p
	}
	if p, ok := b.(overlay.PublishAckMsg); ok && len(p.Members) == 0 {
		p.Members = nil
		b = p
	}
	a, b = normalizeMsg(a), normalizeMsg(b)
	return reflect.DeepEqual(a, b)
}

// normalizeMsg maps every empty collection to its canonical form.
func normalizeMsg(m any) any {
	switch v := m.(type) {
	case Book:
		if len(v.Book) == 0 {
			v.Book = map[model.NodeID]string{}
		}
		if len(v.Dead) == 0 {
			v.Dead = nil
		}
		return v
	case membership.Ping:
		if len(v.Updates) == 0 {
			v.Updates = nil
		}
		return v
	case membership.Ack:
		if len(v.Updates) == 0 {
			v.Updates = nil
		}
		return v
	case membership.PingReq:
		if len(v.Updates) == 0 {
			v.Updates = nil
		}
		return v
	case LeaderLoad:
		if len(v.Hits) == 0 {
			v.Hits = nil
		}
		if len(v.Units) == 0 {
			v.Units = nil
		}
		if len(v.Lite) == 0 {
			v.Lite = nil
		}
		return v
	case Replicate:
		if len(v.Hashes) == 0 {
			v.Hashes = nil
		}
		return v
	case overlay.MetadataUpdateMsg:
		if len(v.Entries) == 0 {
			v.Entries = nil
		}
		return v
	case Manifest:
		if len(v.Hashes) == 0 {
			v.Hashes = nil
		}
		return v
	case Chunk:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	}
	return m
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	// Every strict prefix of a valid frame must error, never panic.
	for _, env := range sampleEnvelopes() {
		b, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := DecodeEnvelope(b[:cut]); err == nil {
				// A prefix that still parses completely is a corrupt
				// frame the length prefix would normally exclude; the
				// decoder must at least not invent trailing data.
				t.Errorf("%T truncated to %d bytes decoded without error", env.Msg, cut)
			}
		}
		// Trailing garbage is rejected too.
		if _, err := DecodeEnvelope(append(append([]byte{}, b...), 0xAA)); err == nil {
			t.Errorf("%T with trailing byte decoded without error", env.Msg)
		}
	}
	// Unknown tag.
	if _, err := DecodeEnvelope([]byte{99, 0}); err == nil || !strings.Contains(err.Error(), "unknown message tag") {
		t.Errorf("unknown tag: err = %v", err)
	}
	// A list count far beyond the payload must fail before allocating.
	huge := []byte{tagResult, 0 /*from*/, 1 /*id*/, 0 /*hops*/, 0 /*from*/, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	if _, err := DecodeEnvelope(huge); err == nil {
		t.Error("oversized doc count decoded without error")
	}
	if _, err := DecodeEnvelope(nil); err == nil {
		t.Error("empty frame decoded without error")
	}
	// Content-frame specific corruption: a manifest whose hash blob is
	// not whole sha256 hashes, and negative transfer geometry. Both can
	// only come from corruption or a hostile peer.
	badManifest, err := AppendEnvelope(nil, Envelope{From: 1, Msg: Manifest{
		Doc: 7, Xfer: 1, Size: 96, ChunkSize: 32, Hashes: make([]byte, 96),
	}})
	if err != nil {
		t.Fatal(err)
	}
	trunc := append([]byte{}, badManifest...)
	// Shrink the hash blob length prefix from 96 to 95: still inside
	// the payload, no longer a whole number of hashes.
	for i := range trunc {
		if trunc[i] == 96 && i > 4 {
			trunc[i] = 95
			trunc = trunc[:len(trunc)-1]
			break
		}
	}
	if _, err := DecodeEnvelope(trunc); err == nil {
		t.Error("ragged manifest hash blob decoded without error")
	}
	negReq, err := AppendEnvelope(nil, Envelope{From: 1, Msg: ChunkReq{Doc: 7, Xfer: 1, First: -1, Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(negReq); err == nil {
		t.Error("negative chunk-req window decoded without error")
	}
	negChunk, err := AppendEnvelope(nil, Envelope{From: 1, Msg: Chunk{Doc: 7, Xfer: 1, Index: -2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(negChunk); err == nil {
		t.Error("negative chunk index decoded without error")
	}
	negTTL, err := AppendEnvelope(nil, Envelope{From: 1, Msg: ManifestReq{Doc: 7, Xfer: 1, Origin: 1, TTL: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(negTTL); err == nil {
		t.Error("negative manifest-req ttl decoded without error")
	}
	// A replicate push with a zero chunk size could never be pulled
	// against; the decoder refuses it like any other bad geometry.
	badRep, err := AppendEnvelope(nil, Envelope{From: 1, Msg: Replicate{Doc: 7, Size: 96, Hashes: make([]byte, 96)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(badRep); err == nil {
		t.Error("zero-chunk-size replicate decoded without error")
	}
}

func TestStreamWriteRead(t *testing.T) {
	envs := sampleEnvelopes()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, env := range envs {
		if err := WriteEnvelope(w, env); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bufio.NewReader(&buf))
	for i, want := range envs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.From != want.From || !equivalentMsg(got.Msg, want.Msg) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err == nil {
		t.Error("read past end of stream succeeded")
	}
}

func TestReaderRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	var hdr [10]byte
	// A length prefix over the limit must be refused before any read.
	n := putUvarint(hdr[:], MaxFrameBytes+1)
	w.Write(hdr[:n])
	w.Flush()
	if _, err := NewReader(bufio.NewReader(&buf)).Next(); err == nil {
		t.Error("oversized frame length accepted")
	}
}

func putUvarint(b []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		b[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	b[i] = byte(v)
	return i + 1
}

func TestPreamble(t *testing.T) {
	p := Preamble()
	if len(p) != PreambleLen || !IsPreamble(p) {
		t.Fatalf("preamble %v does not recognize itself", p)
	}
	if IsPreamble([]byte("P2PW")) {
		t.Error("short prefix accepted")
	}
	if IsPreamble([]byte{'P', '2', 'P', 'W', Version + 1}) {
		t.Error("future version accepted by a v2 receiver")
	}
	// A gob stream's opening bytes must not look like a preamble.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Envelope{From: 1, Msg: Hello{ID: 1, Addr: "x"}}); err != nil {
		t.Fatal(err)
	}
	if IsPreamble(buf.Bytes()[:PreambleLen]) {
		t.Error("gob stream misidentified as v2")
	}
}

// BenchmarkWireCodec compares the v2 codec against the gob baseline on
// the same envelope mix: encode-only, full round trip, and gob round
// trip (persistent encoder/decoder pair, so gob's one-time type
// dictionary is amortized exactly as it is on a live stream).
func BenchmarkWireCodec(b *testing.B) {
	envs := sampleEnvelopes()

	b.Run("wire-encode", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 1024)
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendEnvelope(buf[:0], envs[i%len(envs)])
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("wire-roundtrip", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 1024)
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendEnvelope(buf[:0], envs[i%len(envs)])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeEnvelope(buf); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("gob-roundtrip", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		dec := gob.NewDecoder(&buf)
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(envs[i%len(envs)]); err != nil {
				b.Fatal(err)
			}
			var env Envelope
			if err := dec.Decode(&env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireStream measures framed throughput over a real socket pair
// in MB/s, isolating the codec + framing cost from the transport's
// batching logic (benchmarked separately in internal/livenet).
func BenchmarkWireStream(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	done := make(chan int)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- 0
			return
		}
		defer conn.Close()
		r := NewReader(bufio.NewReaderSize(conn, 64<<10))
		n := 0
		for {
			if _, err := r.Next(); err != nil {
				done <- n
				return
			}
			n++
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	env := Envelope{From: 1, Msg: overlay.ResultMsg{ID: 9, Docs: []catalog.DocID{1, 2, 3, 4, 5, 6, 7, 8}, Hops: 3, From: 2}}
	frame, err := AppendEnvelope(nil, env)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)) + 1) // payload + length prefix
	w := bufio.NewWriterSize(conn, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteEnvelope(w, env); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	conn.Close()
	if got := <-done; got != b.N {
		b.Fatalf("receiver decoded %d of %d frames", got, b.N)
	}
}
