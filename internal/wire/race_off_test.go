//go:build !race

package wire

// raceEnabled reports whether this test binary carries race-detector
// instrumentation (see race_on_test.go).
const raceEnabled = false
