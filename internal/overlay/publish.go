package overlay

import (
	"fmt"

	"p2pshare/internal/cache"
	"sort"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
)

// publishState tracks one in-flight publish at the publishing node.
type publishState struct {
	category catalog.CategoryID
	attempts int
	dummy    bool
}

// maxPublishAttempts bounds the §6.2 step-5 retry loop ("this procedure
// will be repeated until the correct target cluster has been found"): with
// move counters resolving staleness, a handful of redirects suffices.
const maxPublishAttempts = 8

// Publish runs the §6.2 publish protocol for document d at node n. The
// document must already be attached to n in the instance (its
// contributor); the protocol distributes the metadata.
func (s *System) Publish(n model.NodeID, d catalog.DocID) error {
	doc := s.inst.Catalog.Doc(d)
	if doc == nil {
		return fmt.Errorf("overlay: unknown document %d", d)
	}
	p := s.peers[n]
	p.store(d)
	for _, cat := range doc.Categories {
		// Step 2: an existing DT entry for this category means the node
		// already announced itself to the category's cluster.
		already := false
		for di, c := range p.dt {
			if di != d && c == cat {
				already = true
				break
			}
		}
		if already {
			continue
		}
		p.startPublish(d, cat, false)
	}
	return nil
}

// startPublish sends the publish message to the target cluster (steps 3–4).
func (p *Peer) startPublish(d catalog.DocID, cat catalog.CategoryID, dummy bool) {
	if p.pendingPublish == nil {
		p.pendingPublish = make(map[catalog.DocID]*publishState)
	}
	st := p.pendingPublish[d]
	if st == nil {
		st = &publishState{category: cat, dummy: dummy}
		p.pendingPublish[d] = st
	}
	st.attempts++
	if st.attempts > maxPublishAttempts {
		delete(p.pendingPublish, d)
		return
	}
	// Step 3: zero-document categories route to cluster 0 by default.
	entry := p.routeCategory(cat)
	targets := p.neighbors(entry.Cluster)
	if len(targets) == 0 {
		// Know nobody there: ask any known node, which will redirect us
		// via its ack. Fall back to a random live peer from any cluster.
		if t, ok := p.anyContact(); ok {
			targets = []model.NodeID{t}
		} else {
			delete(p.pendingPublish, d)
			return
		}
	}
	fanout := p.sys.cfg.PublishFanout
	if fanout > len(targets) {
		fanout = len(targets)
	}
	// Step 4: send "publish" to nodes of the target cluster.
	for i := 0; i < fanout; i++ {
		t := targets[p.sys.rng.Intn(len(targets))]
		p.sys.net.Send(p.addr, int(t), PublishMsg{
			Doc:       d,
			Category:  cat,
			Publisher: p.id,
			Dummy:     dummy,
		})
	}
}

// anyContact returns a live node from the peer's NRT, scanning clusters in
// ascending order for determinism.
func (p *Peer) anyContact() (model.NodeID, bool) {
	cls := make([]model.ClusterID, 0, len(p.nrt))
	for cl := range p.nrt {
		cls = append(cls, cl)
	}
	sort.Slice(cls, func(i, j int) bool { return cls[i] < cls[j] })
	for _, cl := range cls {
		for _, n := range p.nrt[cl] {
			if p.sys.net.Alive(int(n)) {
				return n, true
			}
		}
	}
	return 0, false
}

// handlePublish is the receiver side of §6.2 step 5.
func (p *Peer) handlePublish(from int, m PublishMsg) {
	entry, known := p.dcrt[m.Category]
	if !known {
		// A brand-new category is born on the default cluster, which is
		// exactly where the publisher sent us (or we redirect it there).
		entry = DCRTEntry{Cluster: 0}
		if !m.Dummy {
			p.dcrt[m.Category] = entry
		}
	}
	accepted := p.inCluster(entry.Cluster)
	if accepted {
		// Receivers in the serving cluster record the new member.
		p.rememberNode(entry.Cluster, m.Publisher)
	}
	members := p.neighbors(entry.Cluster)
	sample := members
	if len(sample) > 8 {
		sample = sample[:8]
	}
	p.sys.net.Send(p.addr, from, PublishAckMsg{
		Doc:      m.Doc,
		Category: m.Category,
		Entry:    entry,
		Accepted: accepted,
		Members:  append([]model.NodeID(nil), sample...),
	})
}

// handlePublishAck closes the publish loop at the publisher: merge the
// receiver's metadata and retry toward the right cluster if redirected.
func (p *Peer) handlePublishAck(m PublishAckMsg) {
	// Merge the DCRT entry. On a rejection the receiver's entry is
	// adopted even at an equal move counter: the publisher just learned
	// its own view routed the publish to the wrong cluster, and §6.2
	// step 5 says the publisher follows the receivers' metadata.
	if old, ok := p.dcrt[m.Category]; !ok || m.Entry.newer(old) ||
		(!m.Accepted && m.Entry.MoveCounter >= old.MoveCounter) {
		if m.Category != dummyCategory {
			p.dcrt[m.Category] = m.Entry
		}
	}
	for _, n := range m.Members {
		p.rememberNode(m.Entry.Cluster, n)
	}
	st := p.pendingPublish[m.Doc]
	if st == nil {
		return // already settled by an earlier ack
	}
	if m.Accepted {
		delete(p.pendingPublish, m.Doc)
		p.joinCluster(m.Entry.Cluster)
		return
	}
	// Redirected: try again toward the cluster the receiver pointed at.
	p.startPublish(m.Doc, st.category, st.dummy)
}

// Join runs the §6.3 join protocol: node n contacts bootstrap, copies its
// metadata, then publishes its contributed documents (or performs a dummy
// publish if it is a free rider).
func (s *System) Join(n, bootstrap model.NodeID) error {
	if int(n) >= len(s.peers) || int(bootstrap) >= len(s.peers) {
		return fmt.Errorf("overlay: unknown node in join (%d via %d)", n, bootstrap)
	}
	if n == bootstrap {
		return fmt.Errorf("overlay: node %d cannot bootstrap from itself", n)
	}
	s.net.Send(int(n), int(bootstrap), JoinRequestMsg{Joiner: n})
	return nil
}

// AddNode grows the running system with a fresh, empty peer (no
// contributions yet) and returns its id. Attach documents through the
// instance and call Join to bring it into the overlay.
func (s *System) AddNode(units float64, storageCap int64) model.NodeID {
	id := model.NodeID(len(s.inst.Nodes))
	s.inst.Nodes = append(s.inst.Nodes, model.Node{ID: id, Units: units, StorageCap: storageCap})
	p := &Peer{
		sys:          s,
		id:           id,
		units:        units,
		dt:           make(map[catalog.DocID]catalog.CategoryID),
		byCat:        make(map[catalog.CategoryID][]catalog.DocID),
		dcrt:         make(map[catalog.CategoryID]DCRTEntry),
		nrt:          make(map[model.ClusterID][]model.NodeID),
		hits:         make(map[catalog.CategoryID]int64),
		seen:         make(map[uint64]bool),
		queries:      make(map[uint64]*queryState),
		knownCaps:    make(map[model.ClusterID]map[model.NodeID]float64),
		leaders:      make(map[model.ClusterID]model.NodeID),
		agg:          make(map[model.ClusterID]*aggState),
		pendingFetch: make(map[catalog.DocID]model.NodeID),
	}
	if s.cfg.CacheBytes > 0 {
		if dc, err := cache.New(s.cfg.CachePolicy, s.cfg.CacheBytes); err == nil {
			p.docCache = dc
			p.cacheByCat = make(map[catalog.CategoryID][]catalog.DocID)
		}
	}
	p.addr = s.net.AddProcess(p)
	s.peers = append(s.peers, p)
	return id
}

// handleJoinRequest serves a joiner with this peer's metadata tables.
func (p *Peer) handleJoinRequest(from int, m JoinRequestMsg) {
	dcrt := make(map[catalog.CategoryID]DCRTEntry, len(p.dcrt))
	for c, e := range p.dcrt {
		dcrt[c] = e
	}
	nrt := make(map[model.ClusterID][]model.NodeID, len(p.nrt))
	for cl, nodes := range p.nrt {
		nrt[cl] = append([]model.NodeID(nil), nodes...)
	}
	// The bootstrap node also learns about the joiner.
	p.sys.net.Send(p.addr, from, JoinReplyMsg{DCRT: dcrt, NRT: nrt})
}

// handleJoinReply installs the bootstrap metadata and publishes the
// joiner's contributions (step 2 of §6.3).
func (p *Peer) handleJoinReply(m JoinReplyMsg) {
	for c, e := range m.DCRT {
		if old, ok := p.dcrt[c]; !ok || e.newer(old) {
			p.dcrt[c] = e
		}
	}
	for cl, nodes := range m.NRT {
		for _, n := range nodes {
			p.rememberNode(cl, n)
		}
	}
	contributed := p.sys.inst.Nodes[p.id].Contributed
	if len(contributed) == 0 {
		// Free rider: dummy publish to be added to a cluster and keep
		// receiving metadata updates.
		p.startPublish(dummyDocID, dummyCategory, true)
		return
	}
	for _, d := range contributed {
		if err := p.sys.Publish(p.id, d); err != nil {
			// Unknown docs indicate a caller bug; surface loudly.
			panic(err)
		}
	}
}

// Sentinels for the free rider dummy publish: the doc id is never stored,
// and receivers skip DCRT creation for the dummy category.
const (
	dummyDocID    = catalog.DocID(-2)
	dummyCategory = catalog.NoCategory
)

// Leave runs the §6.3 departure path: node n tells its cluster mates which
// documents leave with it, then goes offline.
func (s *System) Leave(n model.NodeID) {
	p := s.peers[n]
	docs := make([]catalog.DocID, 0, len(p.dt))
	for di := range p.dt {
		docs = append(docs, di)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	for _, cl := range p.clusters {
		for _, nb := range p.neighbors(cl) {
			s.net.Send(p.addr, int(nb), LeaveMsg{Node: n, Docs: docs})
		}
	}
	s.net.Kill(p.addr)
}

// handleLeave updates membership metadata and adopts orphaned documents
// when this peer is the leaver's successor in its own view ("additional
// steps ... e.g., to create an additional copy of documents whose
// desirable replication degree is to be violated", §6.3). The message is
// re-flooded once to the peer's own cluster neighbors so the whole
// cluster reorganizes progressively, not just the leaver's direct
// neighbors.
func (p *Peer) handleLeave(m LeaveMsg) {
	if p.seenLeaves == nil {
		p.seenLeaves = make(map[model.NodeID]bool)
	}
	if p.seenLeaves[m.Node] {
		return
	}
	p.seenLeaves[m.Node] = true
	for _, cl := range p.clusters {
		for _, nb := range p.neighbors(cl) {
			if nb != m.Node {
				p.sys.net.Send(p.addr, int(nb), m)
			}
		}
	}
	// A super peer scrubs the departed member from its cluster index.
	if p.index != nil {
		p.index.dropNode(m.Node, func(d catalog.DocID) catalog.CategoryID {
			return p.sys.inst.Catalog.Doc(d).Categories[0]
		})
	}
	for cl, list := range p.nrt {
		out := list[:0]
		for _, n := range list {
			if n != m.Node {
				out = append(out, n)
			}
		}
		p.nrt[cl] = out
	}
	for _, di := range m.Docs {
		doc := p.sys.inst.Catalog.Doc(di)
		if doc == nil || p.Stores(di) {
			continue
		}
		cl := p.routeCategory(doc.Categories[0]).Cluster
		if !p.inCluster(cl) {
			continue
		}
		if p.isSuccessorOf(m.Node, cl) {
			p.store(di)
		}
	}
}

// isSuccessorOf reports whether this peer believes it is the next node
// after leaver (by id, wrapping) among the cluster members it knows.
// Different peers hold different views, so several peers may adopt the
// same orphan — extra replicas are harmless; zero adopters are not.
func (p *Peer) isSuccessorOf(leaver model.NodeID, cl model.ClusterID) bool {
	succ := model.NodeID(-1)
	min := model.NodeID(-1)
	consider := func(n model.NodeID) {
		if n == leaver {
			return
		}
		if min == -1 || n < min {
			min = n
		}
		if n > leaver && (succ == -1 || n < succ) {
			succ = n
		}
	}
	consider(p.id)
	for _, n := range p.neighbors(cl) {
		consider(n)
	}
	if succ == -1 {
		succ = min
	}
	return succ == p.id
}
