package overlay

import (
	"testing"

	"p2pshare/internal/model"
)

// Fault-injection tests for the §6.1 machinery: the paper's protocols must
// tolerate dead nodes and partitioned clusters ("failures and faults may
// result in the physical partitioning of clusters, resulting in ... the
// creation of multiple trees (sub-clusters) per cluster, which will
// participate independently in the adaptation process").

func TestAdaptationSurvivesDeadNodes(t *testing.T) {
	sys, inst, _ := buildSystem(t, 70)
	// Kill 20% of the population before any adaptation runs.
	for i := 0; i < sys.NumPeers(); i += 5 {
		sys.net.Kill(i)
	}
	cat := popularCategory(t, inst, 5)
	for i := 0; i < 300; i++ {
		origin := model.NodeID(i % sys.NumPeers())
		if sys.net.Alive(int(origin)) {
			sys.IssueQuery(origin, cat, 1)
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunAdaptation(3)
	if err != nil {
		t.Fatal(err)
	}
	// Leaders exist and are alive.
	if len(rep.Leaders) == 0 {
		t.Fatal("no leaders with 20% of nodes dead")
	}
	for cl, leader := range rep.Leaders {
		if !sys.net.Alive(int(leader)) {
			t.Errorf("cluster %d elected dead leader %d", cl, leader)
		}
	}
}

func TestAdaptationSurvivesDeadLeader(t *testing.T) {
	sys, inst, _ := buildSystem(t, 71)
	cat := popularCategory(t, inst, 5)
	for i := 0; i < 200; i++ {
		sys.IssueQuery(model.NodeID(i%sys.NumPeers()), cat, 1)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	first, err := sys.RunAdaptation(3)
	if err != nil {
		t.Fatal(err)
	}
	// Kill every elected leader, then adapt again: new (alive) leaders
	// must be elected (§6.1.1: "in the case of a leader failure, another
	// node is selected to be the new leader").
	killed := make(map[model.NodeID]bool)
	for _, leader := range first.Leaders {
		if !killed[leader] {
			killed[leader] = true
			sys.net.Kill(int(leader))
		}
	}
	second, err := sys.RunAdaptation(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Leaders) == 0 {
		t.Fatal("no leaders after killing the previous ones")
	}
	for cl, leader := range second.Leaders {
		if killed[leader] {
			t.Errorf("cluster %d re-elected dead leader %d", cl, leader)
		}
		if !sys.net.Alive(int(leader)) {
			t.Errorf("cluster %d elected dead node %d", cl, leader)
		}
	}
}

func TestAdaptationSurvivesPartition(t *testing.T) {
	sys, inst, assign := buildSystem(t, 72)
	cat := popularCategory(t, inst, 5)
	cl := assign[cat]
	// Partition the category's cluster: cut every link between members
	// with even and odd ids. Both halves keep their ring segments among
	// themselves (ring edges within a half survive only if both ends are
	// in it; the cut is crude on purpose).
	var members []model.NodeID
	for _, p := range sys.peers {
		if p.inCluster(cl) {
			members = append(members, p.id)
		}
	}
	if len(members) < 4 {
		t.Skip("cluster too small to partition")
	}
	for _, a := range members {
		for _, b := range members {
			if a < b && (a%2 != b%2) {
				sys.net.CutLink(int(a), int(b))
			}
		}
	}
	for i := 0; i < 200; i++ {
		sys.IssueQuery(model.NodeID(i%sys.NumPeers()), cat, 1)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// The adaptation must terminate (no deadlock waiting for replies
	// across the cut) and still elect leaders.
	rep, err := sys.RunAdaptation(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Leaders) == 0 {
		t.Fatal("no leaders under partition")
	}
}

func TestQueriesSurvivePartitionedCluster(t *testing.T) {
	sys, inst, assign := buildSystem(t, 73)
	cat := popularCategory(t, inst, 5)
	cl := assign[cat]
	var members []model.NodeID
	for _, p := range sys.peers {
		if p.inCluster(cl) {
			members = append(members, p.id)
		}
	}
	if len(members) < 4 {
		t.Skip("cluster too small")
	}
	for _, a := range members {
		for _, b := range members {
			if a < b && (a%2 != b%2) {
				sys.net.CutLink(int(a), int(b))
			}
		}
	}
	// Queries from outside reach whichever partition their NRT contact
	// sits in. A half may hold no copy of the requested documents, so
	// partial availability is the *correct* outcome under partition (the
	// paper's sub-clusters serve independently until the partition
	// heals); what must not happen is a total outage or a hang.
	done := 0
	const n = 50
	for i := 0; i < n; i++ {
		origin := model.NodeID(i % sys.NumPeers())
		id := sys.IssueQuery(origin, cat, 1)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if rep, _ := sys.QueryReport(origin, id); rep.Done {
			done++
		}
	}
	if done < n/2 {
		t.Errorf("only %d of %d queries completed under partition", done, n)
	}
	// After the partition heals, service fully recovers.
	for _, a := range members {
		for _, b := range members {
			if a < b && (a%2 != b%2) {
				sys.net.HealLink(int(a), int(b))
			}
		}
	}
	healed := 0
	for i := 0; i < n; i++ {
		origin := model.NodeID((i + 7) % sys.NumPeers())
		id := sys.IssueQuery(origin, cat, 1)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if rep, _ := sys.QueryReport(origin, id); rep.Done {
			healed++
		}
	}
	if healed < n*9/10 {
		t.Errorf("only %d of %d queries completed after healing", healed, n)
	}
}

func TestLeaveOfSuperPeerFallsBackToFlood(t *testing.T) {
	sys, inst, assign := buildModeSystem(t, 74, ModeSuperPeer)
	cat := popularCategory(t, inst, 5)
	sp, ok := sys.SuperPeer(assign[cat])
	if !ok {
		t.Skip("no super peer")
	}
	sys.net.Kill(int(sp))
	// IssueQuery detects the dead super peer and uses the flood path.
	var origin model.NodeID = -1
	for _, p := range sys.peers {
		if p.id != sp {
			origin = p.id
			break
		}
	}
	id := sys.IssueQuery(origin, cat, 1)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if rep, _ := sys.QueryReport(origin, id); !rep.Done {
		t.Error("query did not survive super peer death")
	}
}
