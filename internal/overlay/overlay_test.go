package overlay

import (
	"testing"

	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
	"p2pshare/internal/replica"
)

// buildSystem assembles a small but complete system: instance → MaxFair →
// replica placement → overlay.
func buildSystem(t testing.TB, seed int64) (*System, *model.Instance, []model.ClusterID) {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 1500
	cfg.Catalog.NumCats = 40
	cfg.NumNodes = 150
	cfg.NumClusters = 8
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ocfg := DefaultConfig()
	ocfg.Seed = seed
	sys, err := NewSystem(inst, res.Assignment, place, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, inst, res.Assignment
}

// popularCategory returns a category with at least min documents.
func popularCategory(t *testing.T, inst *model.Instance, min int) catalog.CategoryID {
	t.Helper()
	best, bestDocs := catalog.NoCategory, -1
	for i := range inst.Catalog.Cats {
		if n := len(inst.Catalog.Cats[i].Docs); n > bestDocs {
			best, bestDocs = inst.Catalog.Cats[i].ID, n
		}
	}
	if bestDocs < min {
		t.Fatalf("no category with %d docs (max %d)", min, bestDocs)
	}
	return best
}

func TestQueryReturnsRequestedResults(t *testing.T) {
	sys, inst, _ := buildSystem(t, 1)
	cat := popularCategory(t, inst, 10)
	id := sys.IssueQuery(0, cat, 5)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, ok := sys.QueryReport(0, id)
	if !ok {
		t.Fatal("no report")
	}
	if !rep.Done {
		t.Fatalf("query incomplete: %+v", rep)
	}
	if rep.Results < 5 {
		t.Errorf("got %d results, want >= 5", rep.Results)
	}
	if rep.ResponseTime <= 0 {
		t.Error("response time should be positive")
	}
	if rep.Hops < 1 {
		t.Errorf("hops = %d, want >= 1", rep.Hops)
	}
}

func TestQueryFindsAllReachableDocs(t *testing.T) {
	// Ask for far more results than exist: flooding must reach every
	// cluster node, so every stored doc of the category is found (§3.3:
	// "until ... all reachable nodes of the cluster have been queried").
	sys, inst, assign := buildSystem(t, 2)
	cat := popularCategory(t, inst, 5)
	nDocs := len(inst.Catalog.Cats[cat].Docs)
	id := sys.IssueQuery(3, cat, nDocs*10)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, _ := sys.QueryReport(3, id)
	// Count docs of the category actually stored anywhere in the cluster.
	stored := make(map[catalog.DocID]bool)
	for _, p := range sys.peers {
		if !p.inCluster(assign[cat]) {
			continue
		}
		for di, c := range p.dt {
			if c == cat {
				stored[di] = true
			}
		}
	}
	if rep.Results != len(stored) {
		t.Errorf("found %d docs, cluster stores %d", rep.Results, len(stored))
	}
}

func TestQueryHopsBoundedByClusterSize(t *testing.T) {
	sys, inst, assign := buildSystem(t, 3)
	cat := popularCategory(t, inst, 5)
	members := 0
	for _, p := range sys.peers {
		if p.inCluster(assign[cat]) {
			members++
		}
	}
	id := sys.IssueQuery(1, cat, 1000)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, _ := sys.QueryReport(1, id)
	// §3.3: "the response time will be bounded from above by the number
	// of nodes in the larger cluster" (+1 for the initial hop in).
	if rep.Hops > members+1 {
		t.Errorf("hops %d exceeds cluster size %d", rep.Hops, members)
	}
}

func TestQueryLoadSpreadsAcrossCluster(t *testing.T) {
	sys, inst, assign := buildSystem(t, 4)
	cat := popularCategory(t, inst, 10)
	// Many single-result queries from many origins: the random target
	// selection should spread serving load over the cluster (§3.3 step
	// 1c).
	for i := 0; i < 400; i++ {
		origin := model.NodeID(i % sys.NumPeers())
		sys.IssueQuery(origin, cat, 1)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var loads []float64
	for _, p := range sys.peers {
		if p.inCluster(assign[cat]) {
			loads = append(loads, float64(p.served))
		}
	}
	if f := fairness.Jain(loads); f < 0.5 {
		t.Errorf("intra-cluster served-load fairness %g < 0.5 over %d members", f, len(loads))
	}
}

func TestQueryFailsWithDeadCluster(t *testing.T) {
	sys, inst, assign := buildSystem(t, 5)
	cat := popularCategory(t, inst, 3)
	cl := assign[cat]
	for _, p := range sys.peers {
		if p.inCluster(cl) {
			sys.net.Kill(p.addr)
		}
	}
	origin := model.NodeID(-1)
	for _, p := range sys.peers {
		if !p.inCluster(cl) {
			origin = p.id
			break
		}
	}
	if origin == -1 {
		t.Skip("every node is in the target cluster")
	}
	before := sys.FailedQueries()
	sys.IssueQuery(origin, cat, 1)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.FailedQueries() != before+1 {
		t.Errorf("failed = %d, want %d", sys.FailedQueries(), before+1)
	}
}

func TestQueryKeywordsPath(t *testing.T) {
	sys, inst, _ := buildSystem(t, 6)
	cat := popularCategory(t, inst, 5)
	kws := inst.Catalog.Cats[cat].Keywords[:1]
	best := func(keywords []string) (catalog.CategoryID, bool) {
		// Stand-in classifier: exact keyword ownership.
		for i := range inst.Catalog.Cats {
			for _, kw := range inst.Catalog.Cats[i].Keywords {
				if kw == keywords[0] {
					return inst.Catalog.Cats[i].ID, true
				}
			}
		}
		return catalog.NoCategory, false
	}
	id, err := sys.IssueQueryKeywords(2, best, kws, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, _ := sys.QueryReport(2, id)
	if !rep.Done {
		t.Errorf("keyword query incomplete: %+v", rep)
	}
	if _, err := sys.IssueQueryKeywords(2, best, []string{"no-such-keyword"}, 1); err == nil {
		t.Error("unmatched keywords should error")
	}
}

func TestPublishNewDocumentBecomesQueryable(t *testing.T) {
	sys, inst, _ := buildSystem(t, 7)
	// Create a genuinely new document in an existing category.
	ids, err := inst.Catalog.AddDocuments(1, 0.05, 0.8, sys.rng)
	if err != nil {
		t.Fatal(err)
	}
	d := ids[0]
	publisher := model.NodeID(10)
	if err := inst.AttachDocument(d, publisher); err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(publisher, d); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !sys.peers[publisher].Stores(d) {
		t.Fatal("publisher does not store its own document")
	}
	// The publisher must now belong to the category's cluster.
	cat := inst.Catalog.Doc(d).Categories[0]
	cl := sys.peers[publisher].routeCategory(cat).Cluster
	if !sys.peers[publisher].inCluster(cl) {
		t.Errorf("publisher not in cluster %d after publish", cl)
	}
	// And cluster nodes learned about the publisher.
	known := 0
	for _, p := range sys.peers {
		if p.id == publisher || !p.inCluster(cl) {
			continue
		}
		for _, n := range p.neighbors(cl) {
			if n == publisher {
				known++
			}
		}
	}
	if known == 0 {
		t.Error("no cluster node recorded the publisher in its NRT")
	}
}

func TestPublishFollowsRedirect(t *testing.T) {
	sys, inst, assign := buildSystem(t, 8)
	cat := popularCategory(t, inst, 3)
	trueCluster := assign[cat]
	// Find a publisher outside the category's cluster and poison its DCRT
	// to a wrong cluster; the publish acks must redirect it.
	var publisher model.NodeID = -1
	for _, p := range sys.peers {
		if !p.inCluster(trueCluster) {
			publisher = p.id
			break
		}
	}
	if publisher == -1 {
		t.Skip("all nodes in target cluster")
	}
	wrong := model.ClusterID((int(trueCluster) + 1) % inst.NumClusters)
	sys.peers[publisher].dcrt[cat] = DCRTEntry{Cluster: wrong}

	ids, err := inst.Catalog.AddDocuments(1, 0.01, 0.8, sys.rng)
	if err != nil {
		t.Fatal(err)
	}
	d := ids[0]
	// Force the new doc into our chosen category for the test.
	oldCat := inst.Catalog.Doc(d).Categories[0]
	if oldCat != cat {
		inst.Catalog.Doc(d).Categories[0] = cat
	}
	if err := inst.AttachDocument(d, publisher); err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(publisher, d); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sys.peers[publisher].routeCategory(cat).Cluster; got != trueCluster {
		t.Errorf("publisher's DCRT still points to cluster %d, want %d", got, trueCluster)
	}
	if !sys.peers[publisher].inCluster(trueCluster) {
		t.Error("publisher did not join the true cluster after redirect")
	}
}

func TestJoinWithContent(t *testing.T) {
	sys, inst, _ := buildSystem(t, 9)
	n := sys.AddNode(3, 1<<40)
	ids, err := inst.Catalog.AddDocuments(3, 0.02, 0.8, sys.rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ids {
		if err := inst.AttachDocument(d, n); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Join(n, 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	p := sys.peers[n]
	if len(p.dcrt) == 0 {
		t.Fatal("joiner has empty DCRT after join")
	}
	for _, d := range ids {
		if !p.Stores(d) {
			t.Errorf("joiner does not store contributed doc %d", d)
		}
	}
	if len(p.clusters) == 0 {
		t.Error("joiner belongs to no cluster after publishing content")
	}
}

func TestJoinFreeRider(t *testing.T) {
	sys, _, _ := buildSystem(t, 10)
	n := sys.AddNode(1, 1<<30)
	if err := sys.Join(n, 5); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	p := sys.peers[n]
	if len(p.dcrt) == 0 {
		t.Error("free rider has empty DCRT")
	}
	if len(p.clusters) == 0 {
		t.Error("free rider joined no cluster (dummy publish failed)")
	}
	if p.StoredCount() != 0 {
		t.Error("free rider should store nothing")
	}
}

func TestJoinErrors(t *testing.T) {
	sys, _, _ := buildSystem(t, 11)
	if err := sys.Join(0, 0); err == nil {
		t.Error("self-bootstrap should fail")
	}
	if err := sys.Join(model.NodeID(sys.NumPeers()+5), 0); err == nil {
		t.Error("unknown node should fail")
	}
}

func TestLeaveCleansNRTAndAdoptsDocs(t *testing.T) {
	sys, _, _ := buildSystem(t, 12)
	leaver := model.NodeID(20)
	p := sys.peers[leaver]
	var docs []catalog.DocID
	for di := range p.dt {
		docs = append(docs, di)
	}
	if len(docs) == 0 {
		t.Skip("leaver stores nothing")
	}
	leaverClusters := append([]model.ClusterID(nil), p.clusters...)
	sys.Leave(leaver)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// The leave floods through the leaver's clusters: every member of
	// those clusters must have scrubbed the leaver from its NRT. (Remote
	// contacts elsewhere go stale and are skipped lazily at routing
	// time; that is by design.)
	for _, q := range sys.peers {
		if q.id == leaver {
			continue
		}
		member := false
		for _, cl := range leaverClusters {
			if q.inCluster(cl) {
				member = true
			}
		}
		if !member {
			continue
		}
		for cl, list := range q.nrt {
			for _, n := range list {
				if n == leaver {
					t.Fatalf("cluster member %d still lists leaver in NRT[%d]", q.id, cl)
				}
			}
		}
	}
	// Each doc must survive somewhere (successor adoption).
	for _, di := range docs {
		alive := false
		for _, q := range sys.peers {
			if q.id != leaver && q.Stores(di) {
				alive = true
				break
			}
		}
		if !alive {
			t.Errorf("doc %d lost after leave", di)
		}
	}
}

func TestAdaptationElectsLeaders(t *testing.T) {
	sys, _, _ := buildSystem(t, 13)
	rep, err := sys.RunAdaptation(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Leaders) == 0 {
		t.Fatal("no leaders elected")
	}
	// The elected leader of each cluster must be a most-capable member.
	for cl, leader := range rep.Leaders {
		var maxUnits float64
		for _, p := range sys.peers {
			if p.inCluster(cl) && p.units > maxUnits {
				maxUnits = p.units
			}
		}
		if sys.peers[leader].units != maxUnits {
			t.Errorf("cluster %d leader %d has %g units, max is %g",
				cl, leader, sys.peers[leader].units, maxUnits)
		}
		if !sys.peers[leader].inCluster(cl) {
			t.Errorf("cluster %d leader %d is not a member", cl, leader)
		}
	}
	// All members of a cluster agree on the leader.
	for cl, leader := range rep.Leaders {
		for _, p := range sys.peers {
			if !p.inCluster(cl) {
				continue
			}
			if got := p.leaders[cl]; got != leader {
				t.Errorf("cluster %d: node %d believes leader %d, elected %d", cl, p.id, got, leader)
			}
		}
	}
}

func TestAdaptationNoopWhenBalanced(t *testing.T) {
	sys, inst, _ := buildSystem(t, 14)
	// Drive a popularity-faithful workload: loads should be balanced
	// (MaxFair placed the categories), so adaptation must not rebalance.
	sampler := newCatSampler(inst)
	for i := 0; i < 600; i++ {
		origin := model.NodeID(i % sys.NumPeers())
		sys.IssueQuery(origin, sampler(sys), 1)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunAdaptation(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeasuredFairness < sys.cfg.AdaptLowThreshold {
		t.Logf("measured fairness %g below threshold — sampling noise", rep.MeasuredFairness)
	} else if rep.Rebalanced {
		t.Errorf("rebalanced although fairness %g above threshold", rep.MeasuredFairness)
	}
}

// newCatSampler samples categories proportionally to their popularity.
func newCatSampler(inst *model.Instance) func(*System) catalog.CategoryID {
	pops := inst.Catalog.CategoryPopularities()
	cum := make([]float64, len(pops))
	var sum float64
	for i, p := range pops {
		sum += p
		cum[i] = sum
	}
	return func(s *System) catalog.CategoryID {
		x := s.rng.Float64() * sum
		for i, c := range cum {
			if x <= c {
				return catalog.CategoryID(i)
			}
		}
		return catalog.CategoryID(len(cum) - 1)
	}
}

func TestAdaptationRebalancesSkewedLoad(t *testing.T) {
	sys, inst, assign := buildSystem(t, 15)
	// Hammer only the categories of one cluster: measured fairness must
	// crater and phase 4 must move categories away.
	hot := assign[popularCategory(t, inst, 3)]
	var hotCats []catalog.CategoryID
	for c, cl := range assign {
		if cl == hot {
			hotCats = append(hotCats, catalog.CategoryID(c))
		}
	}
	for i := 0; i < 800; i++ {
		origin := model.NodeID(i % sys.NumPeers())
		sys.IssueQuery(origin, hotCats[i%len(hotCats)], 1)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunAdaptation(5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeasuredFairness >= sys.cfg.AdaptLowThreshold {
		t.Fatalf("skewed workload measured fair (%g)", rep.MeasuredFairness)
	}
	if !rep.Rebalanced || len(rep.Moves) == 0 {
		t.Fatal("no rebalancing under heavy skew")
	}
	if rep.FairnessAfter <= rep.MeasuredFairness {
		t.Errorf("fairness did not improve: %g -> %g", rep.MeasuredFairness, rep.FairnessAfter)
	}
	// The moves' metadata must have propagated. A category can move more
	// than once in a round; only its final destination is live truth.
	final := make(map[catalog.CategoryID]model.ClusterID)
	for _, mv := range rep.Moves {
		final[mv.Category] = mv.To
	}
	for cat, to := range final {
		holders, withCounter := 0, 0
		for _, p := range sys.peers {
			if e, ok := p.dcrt[cat]; ok && e.Cluster == to {
				holders++
				if e.MoveCounter > 0 {
					withCounter++
				}
			}
		}
		if holders == 0 {
			t.Errorf("no peer learned category %d moved to %d", cat, to)
		}
		if withCounter == 0 {
			t.Errorf("moved category %d has zero move counter everywhere", cat)
		}
		if sys.assign[cat] != to {
			t.Errorf("system truth for category %d is %d, want %d", cat, sys.assign[cat], to)
		}
	}
	// Queries for moved categories still complete (forwarding + fetch).
	for cat := range final {
		id := sys.IssueQuery(0, cat, 1)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if rep2, _ := sys.QueryReport(0, id); !rep2.Done {
			t.Errorf("query for moved category %d incomplete", cat)
		}
		break
	}
}

func TestMetadataConflictResolution(t *testing.T) {
	sys, _, _ := buildSystem(t, 16)
	p := sys.peers[0]
	cat := catalog.CategoryID(0)
	p.handleMetadataUpdate(MetadataUpdateMsg{Entries: map[catalog.CategoryID]DCRTEntry{
		cat: {Cluster: 3, MoveCounter: 2},
	}})
	if got := p.dcrt[cat]; got.Cluster != 3 || got.MoveCounter != 2 {
		t.Fatalf("update not applied: %+v", got)
	}
	// A stale update (lower counter) must be ignored (§6.1.2: "the
	// metadata information with the highest move counter value is kept").
	p.handleMetadataUpdate(MetadataUpdateMsg{Entries: map[catalog.CategoryID]DCRTEntry{
		cat: {Cluster: 5, MoveCounter: 1},
	}})
	if got := p.dcrt[cat]; got.Cluster != 3 || got.MoveCounter != 2 {
		t.Errorf("stale update overwrote newer entry: %+v", got)
	}
	// An equal counter is also not newer.
	p.handleMetadataUpdate(MetadataUpdateMsg{Entries: map[catalog.CategoryID]DCRTEntry{
		cat: {Cluster: 6, MoveCounter: 2},
	}})
	if got := p.dcrt[cat]; got.Cluster != 3 {
		t.Errorf("equal-counter update overwrote entry: %+v", got)
	}
}

func TestSystemConfigValidation(t *testing.T) {
	sys, inst, assign := buildSystem(t, 17)
	_ = sys
	bad := DefaultConfig()
	bad.NeighborDegree = 1
	if _, err := NewSystem(inst, assign, nil, bad); err == nil {
		t.Error("NeighborDegree=1 should fail")
	}
	bad = DefaultConfig()
	bad.PublishFanout = 0
	if _, err := NewSystem(inst, assign, nil, bad); err == nil {
		t.Error("PublishFanout=0 should fail")
	}
	if _, err := NewSystem(inst, assign[:3], nil, DefaultConfig()); err == nil {
		t.Error("short assignment should fail")
	}
}

func TestSystemWithoutPlacementUsesContributions(t *testing.T) {
	_, inst, assign := buildSystem(t, 18)
	sys, err := NewSystem(inst, assign, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := range inst.Nodes {
		if sys.peers[k].StoredCount() != len(inst.Nodes[k].Contributed) {
			t.Fatalf("node %d stores %d docs, contributed %d",
				k, sys.peers[k].StoredCount(), len(inst.Nodes[k].Contributed))
		}
	}
}

func TestServedAndClusterLoads(t *testing.T) {
	sys, inst, _ := buildSystem(t, 19)
	cat := popularCategory(t, inst, 5)
	for i := 0; i < 50; i++ {
		sys.IssueQuery(model.NodeID(i%sys.NumPeers()), cat, 1)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, l := range sys.ServedLoads() {
		total += l
	}
	if total == 0 {
		t.Error("no served load recorded")
	}
	// Hit counters count each request once per cluster entry: with a
	// static assignment, 50 queries mean exactly 50 cluster entries.
	var clTotal float64
	for _, l := range sys.ClusterLoads() {
		clTotal += l
	}
	if clTotal != 50 {
		t.Errorf("cluster hit total %g, want 50 (one per query)", clTotal)
	}
}
