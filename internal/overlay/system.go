package overlay

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
	"p2pshare/internal/replica"
	"p2pshare/internal/simnet"
)

// Config tunes the overlay runtime.
type Config struct {
	// Mode selects the intra-cluster content-location design (§3.1):
	// flooding (default), super peers, or routing indices.
	Mode Mode
	// NeighborDegree is the number of in-cluster forwarding/gossip
	// neighbors per node (a ring plus random chords keeps every cluster
	// connected).
	NeighborDegree int
	// RemoteContacts is how many nodes of each foreign cluster a peer
	// keeps in its NRT for query routing.
	RemoteContacts int
	// NRTCap bounds NRT entries learned at runtime per cluster
	// (0 = unlimited); the paper suggests LRU replacement (§6.2).
	NRTCap int
	// PublishFanout is how many cluster nodes a publish is sent to.
	PublishFanout int
	// Latency is the network latency model (nil = simnet default).
	Latency simnet.Latency
	// Seed drives all runtime randomness.
	Seed int64

	// AdaptLowThreshold triggers rebalancing when measured fairness
	// falls below it (paper example: 0.83).
	AdaptLowThreshold float64
	// AdaptTarget is the fairness MaxFair_Reassign rebalances back up to
	// (paper example: 0.92).
	AdaptTarget float64
	// AdaptMaxMoves caps category reassignments per adaptation round.
	AdaptMaxMoves int
	// ReplicaConfig sets the replication degree used when moving
	// categories between clusters.
	ReplicaConfig replica.Config

	// CacheBytes enables the §7(viii) extension: each peer keeps a
	// byte-budgeted cache of documents received as query results and
	// answers repeat requests locally (zero hops). 0 disables caching.
	CacheBytes int64
	// CachePolicy selects the replacement algorithm (LRU default).
	CachePolicy cache.Policy
}

// DefaultConfig returns sensible simulation defaults matching the paper's
// examples.
func DefaultConfig() Config {
	return Config{
		NeighborDegree:    4,
		RemoteContacts:    3,
		NRTCap:            64,
		PublishFanout:     3,
		Seed:              1,
		AdaptLowThreshold: 0.83,
		AdaptTarget:       0.92,
		AdaptMaxMoves:     16,
		ReplicaConfig:     replica.DefaultConfig(),
	}
}

// QueryReport summarizes one finished (or drained) query.
type QueryReport struct {
	ID uint64
	// Done is true when the query gathered its m distinct results.
	Done bool
	// Results is the number of distinct documents received.
	Results int
	// ResponseTime is the simulated time from issue to completion
	// (meaningful only when Done).
	ResponseTime time.Duration
	// Hops is the forwarding distance of the result that completed the
	// query (or the max observed if incomplete).
	Hops int
}

// System wires an instance, an initial assignment, and a replica placement
// into a running overlay of peers.
type System struct {
	inst  *model.Instance
	cfg   Config
	net   *simnet.Network
	rng   *rand.Rand
	peers []*Peer

	// assign is the system's record of the current category→cluster
	// truth; peers route by their own (possibly stale) DCRTs.
	assign       []model.ClusterID
	moveCounters []uint64

	nextQuery uint64
	// failed counts queries that could not be routed at all.
	failed int
	// cacheLookups/cacheHits count per-query cache consultations and the
	// ones fully answered locally (§7 viii extension).
	cacheLookups, cacheHits int

	epoch uint64
	// adaptReport collects the in-progress adaptation round's outcome.
	adaptReport *AdaptationReport

	// superPeers designates each cluster's metadata holder in
	// ModeSuperPeer (most capable member, ties to the lowest id).
	superPeers map[model.ClusterID]model.NodeID
}

// NewSystem bootstraps the overlay: one peer per instance node, metadata
// tables primed from the assignment and placement (the paper's bootstrap
// assumes up-to-date metadata, §3.3).
func NewSystem(inst *model.Instance, assign []model.ClusterID, place *replica.Placement, cfg Config) (*System, error) {
	if len(assign) != len(inst.Catalog.Cats) {
		return nil, fmt.Errorf("overlay: assignment covers %d of %d categories",
			len(assign), len(inst.Catalog.Cats))
	}
	if cfg.NeighborDegree < 2 {
		return nil, fmt.Errorf("overlay: NeighborDegree must be >= 2, got %d", cfg.NeighborDegree)
	}
	if cfg.PublishFanout < 1 {
		return nil, fmt.Errorf("overlay: PublishFanout must be >= 1, got %d", cfg.PublishFanout)
	}
	mem, err := model.NewMembership(inst, assign)
	if err != nil {
		return nil, err
	}
	s := &System{
		inst:         inst,
		cfg:          cfg,
		net:          simnet.New(cfg.Latency, cfg.Seed),
		assign:       append([]model.ClusterID(nil), assign...),
		moveCounters: make([]uint64, len(assign)),
	}
	s.rng = s.net.Rng()

	// Create peers; process address == node id by construction.
	for k := range inst.Nodes {
		p := &Peer{
			sys:          s,
			id:           inst.Nodes[k].ID,
			units:        inst.Nodes[k].Units,
			dt:           make(map[catalog.DocID]catalog.CategoryID),
			byCat:        make(map[catalog.CategoryID][]catalog.DocID),
			dcrt:         make(map[catalog.CategoryID]DCRTEntry),
			nrt:          make(map[model.ClusterID][]model.NodeID),
			hits:         make(map[catalog.CategoryID]int64),
			seen:         make(map[uint64]bool),
			queries:      make(map[uint64]*queryState),
			knownCaps:    make(map[model.ClusterID]map[model.NodeID]float64),
			leaders:      make(map[model.ClusterID]model.NodeID),
			agg:          make(map[model.ClusterID]*aggState),
			pendingFetch: make(map[catalog.DocID]model.NodeID),
		}
		if cfg.CacheBytes > 0 {
			dc, err := cache.New(cfg.CachePolicy, cfg.CacheBytes)
			if err != nil {
				return nil, err
			}
			p.docCache = dc
			p.cacheByCat = make(map[catalog.CategoryID][]catalog.DocID)
		}
		p.addr = s.net.AddProcess(p)
		if p.addr != int(p.id) {
			return nil, fmt.Errorf("overlay: address %d != node id %d", p.addr, p.id)
		}
		s.peers = append(s.peers, p)
	}

	// Prime DTs from the placement (or bare contributions without one).
	if place != nil {
		for k := range s.peers {
			for _, di := range place.Stored[k] {
				s.peers[k].store(di)
			}
		}
	} else {
		for k := range s.peers {
			for _, di := range inst.Nodes[k].Contributed {
				s.peers[k].store(di)
			}
		}
	}

	// Prime DCRTs: every peer knows the full category→cluster map.
	for c, cl := range assign {
		if cl == model.NoCluster {
			continue
		}
		for _, p := range s.peers {
			p.dcrt[catalog.CategoryID(c)] = DCRTEntry{Cluster: cl}
		}
	}

	// Cluster membership and NRTs.
	for k := range s.peers {
		s.peers[k].clusters = append([]model.ClusterID(nil), mem.ClustersOf(model.NodeID(k))...)
	}
	for c := 0; c < inst.NumClusters; c++ {
		s.wireCluster(model.ClusterID(c), mem.NodesOf(model.ClusterID(c)))
	}
	// Foreign-cluster contacts for query routing.
	for _, p := range s.peers {
		for c := 0; c < inst.NumClusters; c++ {
			cl := model.ClusterID(c)
			if p.inCluster(cl) {
				continue
			}
			members := mem.NodesOf(cl)
			if len(members) == 0 {
				continue
			}
			for i := 0; i < cfg.RemoteContacts; i++ {
				p.nrt[cl] = appendUnique(p.nrt[cl], members[s.rng.Intn(len(members))], p.id)
			}
		}
	}

	switch cfg.Mode {
	case ModeSuperPeer:
		s.bootstrapSuperPeers(mem)
	case ModeRoutingIndex:
		s.bootstrapRoutingIndices(mem)
	}
	return s, nil
}

// bootstrapSuperPeers designates each cluster's most capable member as its
// super peer and primes its cluster index from the members' DTs (the
// bootstrap assumes up-to-date metadata, as §3.3 does).
func (s *System) bootstrapSuperPeers(mem *model.Membership) {
	s.superPeers = make(map[model.ClusterID]model.NodeID)
	for c := 0; c < s.inst.NumClusters; c++ {
		cl := model.ClusterID(c)
		members := mem.NodesOf(cl)
		if len(members) == 0 {
			continue
		}
		best := members[0]
		for _, n := range members[1:] {
			if s.peers[n].units > s.peers[best].units ||
				(s.peers[n].units == s.peers[best].units && n < best) {
				best = n
			}
		}
		s.superPeers[cl] = best
		sp := s.peers[best]
		if sp.index == nil {
			sp.index = newClusterIndex()
		}
		for _, n := range members {
			for _, cat := range s.peers[n].storedCategories() {
				if s.assign[cat] != cl {
					continue
				}
				for _, d := range s.peers[n].storedIn(cat) {
					sp.index.add(d, cat, n)
				}
			}
		}
	}
}

// bootstrapRoutingIndices primes each peer's per-neighbor reachability
// counts with a horizon of two hops (own documents of the neighbor plus
// its neighbors'), after Crespo/Garcia-Molina's compound routing indices.
func (s *System) bootstrapRoutingIndices(mem *model.Membership) {
	own := make([]map[catalog.CategoryID]int, len(s.peers))
	for k, p := range s.peers {
		own[k] = make(map[catalog.CategoryID]int)
		for _, cat := range p.storedCategories() {
			own[k][cat] = len(p.storedIn(cat))
		}
	}
	for _, p := range s.peers {
		p.ri = make(map[model.NodeID]map[catalog.CategoryID]int)
		for _, cl := range p.clusters {
			for _, nb := range p.neighbors(cl) {
				counts := p.ri[nb]
				if counts == nil {
					counts = make(map[catalog.CategoryID]int)
					p.ri[nb] = counts
				}
				for cat, n := range own[nb] {
					counts[cat] += n
				}
				for _, nn := range s.peers[nb].neighbors(cl) {
					if nn == p.id {
						continue
					}
					for cat, n := range own[nn] {
						counts[cat] += n
					}
				}
			}
		}
	}
}

// SuperPeer returns the designated super peer of a cluster (ModeSuperPeer
// only).
func (s *System) SuperPeer(cl model.ClusterID) (model.NodeID, bool) {
	n, ok := s.superPeers[cl]
	return n, ok
}

// wireCluster builds the in-cluster neighbor graph: a ring over the sorted
// members plus random chords up to NeighborDegree. The ring guarantees
// connectivity, so intra-cluster flooding reaches every member (the §3.3
// worst-case response bound needs exactly this).
func (s *System) wireCluster(cl model.ClusterID, members []model.NodeID) {
	if len(members) < 2 {
		return
	}
	sorted := append([]model.NodeID(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	link := func(a, b model.NodeID) {
		if a == b {
			return
		}
		pa, pb := s.peers[a], s.peers[b]
		pa.nrt[cl] = appendUnique(pa.nrt[cl], b, a)
		pb.nrt[cl] = appendUnique(pb.nrt[cl], a, b)
	}
	for i, a := range sorted {
		link(a, sorted[(i+1)%len(sorted)])
	}
	extra := s.cfg.NeighborDegree - 2
	for _, a := range sorted {
		for e := 0; e < extra; e++ {
			link(a, sorted[s.rng.Intn(len(sorted))])
		}
	}
}

func appendUnique(list []model.NodeID, n, self model.NodeID) []model.NodeID {
	if n == self {
		return list
	}
	for _, m := range list {
		if m == n {
			return list
		}
	}
	return append(list, n)
}

// Net exposes the underlying simulator (for running, killing nodes,
// reading traffic stats).
func (s *System) Net() *simnet.Network { return s.net }

// Peer returns the peer for a node id.
func (s *System) Peer(id model.NodeID) *Peer { return s.peers[id] }

// NumPeers returns the peer count.
func (s *System) NumPeers() int { return len(s.peers) }

// Assignment returns the system's current category→cluster truth.
func (s *System) Assignment() []model.ClusterID {
	return append([]model.ClusterID(nil), s.assign...)
}

// FailedQueries counts queries that could not be routed to any live node.
func (s *System) FailedQueries() int { return s.failed }

// IssueQuery starts the §3.3 two-step query protocol at the origin node
// for a category, seeking m results. It returns the query id; use
// QueryReport after running the network to inspect the outcome.
func (s *System) IssueQuery(origin model.NodeID, cat catalog.CategoryID, m int) uint64 {
	s.nextQuery++
	id := s.nextQuery
	p := s.peers[origin]
	st := &queryState{
		want:     m,
		issuedAt: s.net.Now(),
		docs:     make(map[catalog.DocID]bool),
	}
	p.queries[id] = st

	// §7(viii) cache extension: answer from the origin's own cache first.
	if p.docCache != nil {
		s.cacheLookups++
		for _, d := range p.cachedIn(cat, m) {
			p.docCache.Contains(d) // refresh recency/frequency
			st.docs[d] = true
		}
		if len(st.docs) >= m {
			s.cacheHits++
			st.done = true
			st.doneAt = s.net.Now()
			st.completionHops = 0
			return id
		}
		m -= len(st.docs)
	}

	entry := p.routeCategory(cat)

	// Super-peer mode: the query goes straight to the cluster's metadata
	// holder, which dispatches it to specific members.
	if s.cfg.Mode == ModeSuperPeer {
		if sp, ok := s.superPeers[entry.Cluster]; ok && s.net.Alive(int(sp)) {
			s.net.Send(p.addr, int(sp), IndexQueryMsg{
				ID:       id,
				Category: cat,
				Want:     m,
				Origin:   origin,
				Hops:     1,
			})
			return id
		}
		// Dead or missing super peer: fall through to the flood path.
	}

	target, ok := s.randomLiveNode(p, entry.Cluster)
	if !ok {
		// "If no live node exists, the query will fail." (§3.3)
		s.failed++
		return id
	}
	s.net.Send(p.addr, int(target), QueryMsg{
		ID:       id,
		Category: cat,
		Want:     m,
		Origin:   origin,
		Hops:     1,
		Entry:    true,
	})
	return id
}

// IssueQueryKeywords resolves keywords to a category through the given
// classifier-style function before issuing (step 1a of §3.3); callers
// usually pass classify.Classifier.Best.
func (s *System) IssueQueryKeywords(origin model.NodeID, best func([]string) (catalog.CategoryID, bool), keywords []string, m int) (uint64, error) {
	cat, ok := best(keywords)
	if !ok {
		return 0, fmt.Errorf("overlay: keywords %v match no category", keywords)
	}
	return s.IssueQuery(origin, cat, m), nil
}

// randomLiveNode picks a live node from p's NRT for the cluster.
func (s *System) randomLiveNode(p *Peer, cl model.ClusterID) (model.NodeID, bool) {
	list := p.neighbors(cl)
	if len(list) == 0 {
		return 0, false
	}
	// Up to a few attempts to dodge dead entries.
	for try := 0; try < 4; try++ {
		n := list[s.rng.Intn(len(list))]
		if s.net.Alive(int(n)) {
			return n, true
		}
	}
	for _, n := range list {
		if s.net.Alive(int(n)) {
			return n, true
		}
	}
	return 0, false
}

// QueryReport returns the state of a query originated at node origin.
func (s *System) QueryReport(origin model.NodeID, id uint64) (QueryReport, bool) {
	st, ok := s.peers[origin].queries[id]
	if !ok {
		return QueryReport{}, false
	}
	r := QueryReport{
		ID:      id,
		Done:    st.done,
		Results: len(st.docs),
		Hops:    st.maxHops,
	}
	if st.done {
		r.ResponseTime = st.doneAt - st.issuedAt
		r.Hops = st.completionHops
	}
	return r, true
}

// Run drains the network.
func (s *System) Run() error {
	_, err := s.net.Run(0)
	return err
}

// ServedLoads returns the per-node served-request counts — the paper's
// load metric.
func (s *System) ServedLoads() []float64 {
	out := make([]float64, len(s.peers))
	for i, p := range s.peers {
		out[i] = float64(p.served)
	}
	return out
}

// ClusterLoads sums served requests per cluster under the current truth
// assignment.
func (s *System) ClusterLoads() []float64 {
	out := make([]float64, s.inst.NumClusters)
	for _, p := range s.peers {
		for cat, n := range p.hits {
			if cl := s.assign[cat]; cl != model.NoCluster {
				out[cl] += float64(n)
			}
		}
	}
	return out
}

// MeasuredNormalizedLoads returns per-cluster hits divided by the
// cluster's effective units (aggregated from the live peers' stored
// documents) — the same quantity the adaptation's phase 3 computes, but
// evaluated omnisciently for experiments that need it without running an
// adaptation round.
func (s *System) MeasuredNormalizedLoads() []float64 {
	hits := s.ClusterLoads()
	units := make([]float64, s.inst.NumClusters)
	for _, p := range s.peers {
		if !s.net.Alive(p.addr) {
			continue
		}
		for c := 0; c < s.inst.NumClusters; c++ {
			for _, u := range p.ownUnits(model.ClusterID(c)) {
				units[c] += u
			}
		}
	}
	out := make([]float64, s.inst.NumClusters)
	for c := range out {
		switch {
		case units[c] == 0 && hits[c] == 0:
			out[c] = 0
		case units[c] == 0:
			out[c] = hits[c] // no capacity behind the load; report raw
		default:
			out[c] = hits[c] / units[c]
		}
	}
	return out
}

// ResetHitCounters zeroes every peer's per-category hit counters (epoch
// boundaries in dynamic experiments).
func (s *System) ResetHitCounters() {
	for _, p := range s.peers {
		p.hits = make(map[catalog.CategoryID]int64)
		p.served = 0
	}
}

// CacheHitRatio is the fraction of issued queries answered entirely from
// the origin's document cache (0 when caching is disabled or before any
// query).
func (s *System) CacheHitRatio() float64 {
	if s.cacheLookups == 0 {
		return 0
	}
	return float64(s.cacheHits) / float64(s.cacheLookups)
}
