package overlay

import (
	"math"
	"math/rand"
	"testing"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
)

// TestProtocolFuzz drives random interleavings of every protocol the
// overlay speaks — queries, publishes, joins, leaves, popularity drift,
// adaptation rounds — and checks global invariants after each step. The
// goal is not a specific outcome but the absence of divergence: no
// livelock, no lost contributions, no corrupted metadata, bookkeeping
// that stays consistent with first-principles recomputation.
func TestProtocolFuzz(t *testing.T) {
	for _, seed := range []int64{101, 202, 303} {
		seed := seed
		t.Run("", func(t *testing.T) {
			fuzzRun(t, seed)
		})
	}
}

func fuzzRun(t *testing.T, seed int64) {
	sys, inst, _ := buildSystem(t, seed)
	rng := rand.New(rand.NewSource(seed))
	dead := make(map[model.NodeID]bool)

	alive := func() model.NodeID {
		for tries := 0; tries < 50; tries++ {
			n := model.NodeID(rng.Intn(sys.NumPeers()))
			if !dead[n] {
				return n
			}
		}
		t.Fatal("no alive node found")
		return 0
	}

	for step := 0; step < 60; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // queries dominate, like real systems
			cat := catalog.CategoryID(rng.Intn(inst.CatCount()))
			sys.IssueQuery(alive(), cat, 1+rng.Intn(5))
		case 5: // publish a new document
			ids, err := inst.Catalog.AddDocuments(1, 0.01, 0.8, rng)
			if err != nil {
				t.Fatal(err)
			}
			n := alive()
			if err := inst.AttachDocument(ids[0], n); err != nil {
				t.Fatal(err)
			}
			if err := sys.Publish(n, ids[0]); err != nil {
				t.Fatal(err)
			}
		case 6: // a newcomer joins (free rider)
			id := sys.AddNode(float64(1+rng.Intn(5)), 1<<40)
			if err := sys.Join(id, alive()); err != nil {
				t.Fatal(err)
			}
		case 7: // somebody leaves (keep a healthy majority)
			if len(dead) < sys.NumPeers()/5 {
				n := alive()
				sys.Leave(n)
				dead[n] = true
			}
		case 8: // content popularity drifts
			inst.Catalog.ShiftPopularity(0.8, rng)
		case 9: // an adaptation round
			if _, err := sys.RunAdaptation(2); err != nil {
				t.Fatalf("step %d adaptation: %v", step, err)
			}
		}
		// The network must always drain (loop detection, bounded retries).
		if err := sys.Run(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkInvariants(t, sys, inst, dead, step)
	}
}

func checkInvariants(t *testing.T, sys *System, inst *model.Instance, dead map[model.NodeID]bool, step int) {
	t.Helper()
	for _, p := range sys.peers {
		if dead[p.id] {
			continue
		}
		// 1. Contributors store their contributions (the §4.3.3 baseline
		// assumption: "each node will be able to store locally at least
		// the documents it contributes") — unless the serving category
		// moved away and the node neither contributes it anymore... it
		// always contributes; contributors keep their docs in our
		// reactToMove. Verify.
		for _, di := range inst.Nodes[p.id].Contributed {
			if !p.Stores(di) {
				t.Fatalf("step %d: node %d lost contributed doc %d", step, p.id, di)
			}
		}
		// 2. DCRT entries reference valid clusters.
		for cat, e := range p.dcrt {
			if int(e.Cluster) < 0 || int(e.Cluster) >= inst.NumClusters {
				t.Fatalf("step %d: node %d DCRT[%d] -> invalid cluster %d", step, p.id, cat, e.Cluster)
			}
		}
		// 3. The on-demand stored popularity matches a recomputation from
		// the DT (guards against the helper and the DT diverging).
		var want float64
		for di := range p.dt {
			want += inst.Catalog.Doc(di).Popularity
		}
		if math.Abs(p.storedPopularity()-want) > 1e-9 {
			t.Fatalf("step %d: node %d storedPopularity %g != recomputed %g",
				step, p.id, p.storedPopularity(), want)
		}
		// 4. byCat index consistent with the DT.
		count := 0
		for cat, docs := range p.byCat {
			for _, di := range docs {
				if p.dt[di] != cat {
					t.Fatalf("step %d: node %d byCat[%d] lists doc %d with dt cat %d",
						step, p.id, cat, di, p.dt[di])
				}
				count++
			}
		}
		if count != len(p.dt) {
			t.Fatalf("step %d: node %d byCat holds %d docs, dt %d", step, p.id, count, len(p.dt))
		}
		// 5. No peer lists itself in its NRT.
		for cl, list := range p.nrt {
			for _, n := range list {
				if n == p.id {
					t.Fatalf("step %d: node %d lists itself in NRT[%d]", step, p.id, cl)
				}
			}
		}
	}
}
