package overlay

import (
	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
)

// Wire-size model: every message pays a fixed header; payloads are
// estimated per field. The simulator only uses sizes for traffic
// accounting (e.g. the rebalancing-transfer experiment), so rough byte
// costs suffice.
const (
	headerBytes   = 64
	perIDBytes    = 8
	perEntryBytes = 16
)

// QueryMsg implements the paper's §3.3 query: the requesting node resolved
// keywords to a category, looked up the cluster in its DCRT, and sent the
// query to a random cluster node from its NRT. Nodes forward it within the
// cluster while Want results are missing.
type QueryMsg struct {
	ID       uint64
	Category catalog.CategoryID
	// Want is m: how many results this branch still seeks.
	Want int
	// Origin is the requesting node, which results flow back to.
	Origin model.NodeID
	// Hops counts forwarding steps so far.
	Hops int
	// Entry marks the first delivery into the serving cluster (set by
	// the origin and by cross-cluster forwarding, cleared on in-cluster
	// neighbor forwarding). The receiving node counts the request in its
	// per-category hit counter exactly once per cluster entry, so the
	// §6.1.2 monitoring counters estimate category demand rather than
	// flood width.
	Entry bool
}

// Kind implements simnet.Message.
func (QueryMsg) Kind() string { return "query" }

// Size implements simnet.Message.
func (QueryMsg) Size() int64 { return headerBytes + 4*perIDBytes }

// ResultMsg returns matching document ids straight to the query origin.
type ResultMsg struct {
	ID   uint64
	Docs []catalog.DocID
	// Hops is the forwarding distance of the answering node.
	Hops int
	// From is the answering node (for load accounting at the origin).
	From model.NodeID
}

// Kind implements simnet.Message.
func (ResultMsg) Kind() string { return "result" }

// Size implements simnet.Message.
func (m ResultMsg) Size() int64 { return headerBytes + int64(len(m.Docs))*perIDBytes }

// PublishMsg announces a new document to the cluster believed to host its
// category (§6.2 publish protocol).
type PublishMsg struct {
	Doc       catalog.DocID
	Category  catalog.CategoryID
	Publisher model.NodeID
	// Dummy marks a free rider's no-content publish (§6.3 join protocol),
	// which only subscribes the node to metadata updates.
	Dummy bool
}

// Kind implements simnet.Message.
func (PublishMsg) Kind() string { return "publish" }

// Size implements simnet.Message.
func (PublishMsg) Size() int64 { return headerBytes + 3*perIDBytes }

// PublishAckMsg is the receiver's reply: its DCRT entry for the category
// (so a stale publisher learns about moves) and an NRT sample.
type PublishAckMsg struct {
	Doc      catalog.DocID
	Category catalog.CategoryID
	// Entry is the receiver's current DCRT entry for Category.
	Entry DCRTEntry
	// Accepted is true when the receiver serves the category's cluster.
	Accepted bool
	// Members samples the receiver's NRT for the category's cluster.
	Members []model.NodeID
}

// Kind implements simnet.Message.
func (PublishAckMsg) Kind() string { return "publish-ack" }

// Size implements simnet.Message.
func (m PublishAckMsg) Size() int64 {
	return headerBytes + 3*perIDBytes + int64(len(m.Members))*perIDBytes
}

// JoinRequestMsg asks a bootstrap node for its metadata (§6.3 join).
type JoinRequestMsg struct {
	Joiner model.NodeID
}

// Kind implements simnet.Message.
func (JoinRequestMsg) Kind() string { return "join-request" }

// Size implements simnet.Message.
func (JoinRequestMsg) Size() int64 { return headerBytes + perIDBytes }

// JoinReplyMsg carries the bootstrap node's DCRT and NRT.
type JoinReplyMsg struct {
	DCRT map[catalog.CategoryID]DCRTEntry
	NRT  map[model.ClusterID][]model.NodeID
}

// Kind implements simnet.Message.
func (JoinReplyMsg) Kind() string { return "join-reply" }

// Size implements simnet.Message.
func (m JoinReplyMsg) Size() int64 {
	n := int64(len(m.DCRT)) * perEntryBytes
	for _, nodes := range m.NRT {
		n += int64(len(nodes)) * perIDBytes
	}
	return headerBytes + n
}

// LeaveMsg tells cluster mates which documents disappear with the leaving
// node (§6.3).
type LeaveMsg struct {
	Node model.NodeID
	Docs []catalog.DocID
}

// Kind implements simnet.Message.
func (LeaveMsg) Kind() string { return "leave" }

// Size implements simnet.Message.
func (m LeaveMsg) Size() int64 { return headerBytes + int64(1+len(m.Docs))*perIDBytes }

// CapabilityMsg gossips node capabilities ahead of leader election
// (§6.1.1). Known aggregates the sender's current view so information
// spreads epidemically.
type CapabilityMsg struct {
	Cluster model.ClusterID
	Known   map[model.NodeID]float64
}

// Kind implements simnet.Message.
func (CapabilityMsg) Kind() string { return "capability" }

// Size implements simnet.Message.
func (m CapabilityMsg) Size() int64 { return headerBytes + int64(len(m.Known))*perEntryBytes }

// HitRequestMsg floods from the leader through the cluster, building the
// §6.1.2 phase-1 aggregation tree on the fly.
type HitRequestMsg struct {
	Epoch   uint64
	Cluster model.ClusterID
}

// Kind implements simnet.Message.
func (HitRequestMsg) Kind() string { return "hit-request" }

// Size implements simnet.Message.
func (HitRequestMsg) Size() int64 { return headerBytes + 2*perIDBytes }

// HitReplyMsg flows back up the aggregation tree. Dup marks a reply from a
// node that was already claimed by another parent (it contributes
// nothing; the parent just stops waiting for it).
type HitReplyMsg struct {
	Epoch   uint64
	Cluster model.ClusterID
	Dup     bool
	// Hits aggregates per-category request counts in the subtree.
	Hits map[catalog.CategoryID]int64
	// Units aggregates the subtree's per-category unit mass
	// u_k·p(D_s(k))/p(D(k)), so the chosen leader can rebuild the ICLB
	// state from live measurements.
	Units map[catalog.CategoryID]float64
}

// Kind implements simnet.Message.
func (HitReplyMsg) Kind() string { return "hit-reply" }

// Size implements simnet.Message.
func (m HitReplyMsg) Size() int64 {
	return headerBytes + int64(len(m.Hits)+len(m.Units))*perEntryBytes
}

// LeaderLoadMsg is the §6.1.2 phase-2 exchange: a cluster leader shares
// its cluster's measured load with the other leaders. The sender contacts
// one random node of the target cluster, which relays to its believed
// leader ("a cluster leader needs only contact one random node in every
// cluster to discover the cluster's leader").
type LeaderLoadMsg struct {
	Epoch uint64
	// Cluster is the cluster whose load this reports.
	Cluster model.ClusterID
	// Target is the cluster whose leader should receive the report.
	Target model.ClusterID
	// Relays bounds forwarding (leader views can briefly disagree).
	Relays int
	Leader model.NodeID
	// Hits and Units are the cluster-wide aggregates from phase 1.
	Hits  map[catalog.CategoryID]int64
	Units map[catalog.CategoryID]float64
}

// Kind implements simnet.Message.
func (LeaderLoadMsg) Kind() string { return "leader-load" }

// Size implements simnet.Message.
func (m LeaderLoadMsg) Size() int64 {
	return headerBytes + int64(len(m.Hits)+len(m.Units))*perEntryBytes
}

// MetadataUpdateMsg propagates DCRT changes epidemically (§6.1.2 lazy
// rebalancing, step 5). Receivers keep the entry with the highest
// move counter per category.
type MetadataUpdateMsg struct {
	Entries map[catalog.CategoryID]DCRTEntry
}

// Kind implements simnet.Message.
func (MetadataUpdateMsg) Kind() string { return "metadata-update" }

// Size implements simnet.Message.
func (m MetadataUpdateMsg) Size() int64 { return headerBytes + int64(len(m.Entries))*perEntryBytes }

// TransferMsg is one paired source→destination document-group transfer of
// the lazy rebalancing protocol (step 2). Its Size reflects the actual
// document bytes, which is what the §6.1.3 transfer-cost experiment
// measures.
type TransferMsg struct {
	Category catalog.CategoryID
	Docs     []catalog.DocID
	Bytes    int64
}

// Kind implements simnet.Message.
func (TransferMsg) Kind() string { return "transfer" }

// Size implements simnet.Message.
func (m TransferMsg) Size() int64 { return headerBytes + m.Bytes }

// ManifestMsg announces a paired transfer (lazy rebalancing step 2): the
// source node tells its destination node which documents are coming, so
// the destination can serve queries in the meantime by fetching on demand
// (step 4). The manifest itself is tiny; the bulk bytes travel in
// TransferMsg.
type ManifestMsg struct {
	Category catalog.CategoryID
	Docs     []catalog.DocID
	Source   model.NodeID
}

// Kind implements simnet.Message.
func (ManifestMsg) Kind() string { return "manifest" }

// Size implements simnet.Message.
func (m ManifestMsg) Size() int64 { return headerBytes + int64(len(m.Docs))*perIDBytes }

// FetchMsg asks the coupling node in the source cluster for documents the
// destination node should already serve (lazy rebalancing step 4).
type FetchMsg struct {
	Category catalog.CategoryID
	Docs     []catalog.DocID
	// ForQuery, when non-zero, resumes a forwarded query after the fetch.
	ForQuery uint64
	Origin   model.NodeID
	Want     int
	Hops     int
}

// Kind implements simnet.Message.
func (FetchMsg) Kind() string { return "fetch" }

// Size implements simnet.Message.
func (m FetchMsg) Size() int64 { return headerBytes + int64(len(m.Docs))*perIDBytes }

// FetchReplyMsg returns the fetched documents (paying their byte cost).
type FetchReplyMsg struct {
	Category catalog.CategoryID
	Docs     []catalog.DocID
	Bytes    int64
	ForQuery uint64
	Origin   model.NodeID
	Want     int
	Hops     int
}

// Kind implements simnet.Message.
func (FetchReplyMsg) Kind() string { return "fetch-reply" }

// Size implements simnet.Message.
func (m FetchReplyMsg) Size() int64 { return headerBytes + m.Bytes }
