package overlay

import (
	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
	"sort"
)

// handleQuery implements step 2 of the §3.3 query protocol at a target
// node: match local documents against the query category, return results
// straight to the origin, and recursively forward the remainder to the
// cluster neighbors, with loops broken by query id.
func (p *Peer) handleQuery(m QueryMsg) {
	if p.seen[m.ID] {
		return // loop detected and broken (§3.3 step 2b)
	}
	p.seen[m.ID] = true

	entry := p.routeCategory(m.Category)

	// Lazy rebalancing step 3: if this peer's DCRT says the category has
	// moved to a cluster it does not belong to, forward the request to a
	// random node of the destination cluster.
	if !p.inCluster(entry.Cluster) {
		if target, ok := p.sys.randomLiveNode(p, entry.Cluster); ok {
			p.sys.net.Send(p.addr, int(target), QueryMsg{
				ID:       m.ID,
				Category: m.Category,
				Want:     m.Want,
				Origin:   m.Origin,
				Hops:     m.Hops + 1,
				Entry:    true, // re-enters the (new) serving cluster
			})
		}
		return
	}

	// Count the request once per cluster entry: the hit counters are the
	// adaptation's demand estimate for the category (§6.1.2 phase 1).
	if m.Entry {
		p.hits[m.Category]++
	}

	// a. Match local documents.
	var matches []catalog.DocID
	for _, di := range p.storedIn(m.Category) {
		matches = append(matches, di)
		if len(matches) == m.Want {
			break
		}
	}
	if len(matches) > 0 {
		// Load is "the number of requests served by a data store node"
		// (§4): nodes that return documents did the serving; nodes that
		// merely relayed a flooded copy performed a cheap index lookup.
		p.served++
		p.sys.net.Send(p.addr, int(m.Origin), ResultMsg{
			ID:   m.ID,
			Docs: matches,
			Hops: m.Hops,
			From: p.id,
		})
	}

	remaining := m.Want - len(matches)

	// Lazy rebalancing step 4: this peer is in the right cluster but may
	// still be waiting for some of the category's documents from its
	// coupling node in the source cluster. Fetch them now and answer the
	// query when they arrive.
	if remaining > 0 {
		if pending := p.pendingDocsFor(m.Category, remaining); len(pending) > 0 {
			byPeer := make(map[model.NodeID][]catalog.DocID)
			for _, di := range pending {
				byPeer[p.pendingFetch[di]] = append(byPeer[p.pendingFetch[di]], di)
				delete(p.pendingFetch, di)
			}
			for peer, docs := range byPeer {
				p.sys.net.Send(p.addr, int(peer), FetchMsg{
					Category: m.Category,
					Docs:     docs,
					ForQuery: m.ID,
					Origin:   m.Origin,
					Want:     len(docs),
					Hops:     m.Hops,
				})
			}
			remaining -= len(pending)
		}
	}

	// b. Forward the remainder. Flooding sends to all known cluster
	// neighbors; routing-index mode sends only to the most promising
	// ones ([1]: "forward queries to their neighbors that are more
	// likely to have answers").
	if remaining > 0 {
		targets := p.neighbors(entry.Cluster)
		if p.sys.cfg.Mode == ModeRoutingIndex {
			targets = p.bestNeighborsFor(m.Category, targets, 2)
		}
		for _, n := range targets {
			p.sys.net.Send(p.addr, int(n), QueryMsg{
				ID:       m.ID,
				Category: m.Category,
				Want:     remaining,
				Origin:   m.Origin,
				Hops:     m.Hops + 1,
				// Entry stays false: in-cluster forwarding of the same
				// request.
			})
		}
	}
}

// bestNeighborsFor ranks candidate neighbors by their routing-index score
// for the category and keeps the top k (score ties and unscored neighbors
// rank by id for determinism). With no positive scores at all it falls
// back to the first k candidates, so a query never dead-ends solely for
// lack of index data.
func (p *Peer) bestNeighborsFor(cat catalog.CategoryID, candidates []model.NodeID, k int) []model.NodeID {
	if len(candidates) <= k {
		return candidates
	}
	ranked := append([]model.NodeID(nil), candidates...)
	score := func(n model.NodeID) int {
		if counts, ok := p.ri[n]; ok {
			return counts[cat]
		}
		return 0
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := score(ranked[i]), score(ranked[j])
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked[:k]
}

// pendingDocsFor returns up to max pending-fetch documents of a category,
// in ascending id order for determinism.
func (p *Peer) pendingDocsFor(cat catalog.CategoryID, max int) []catalog.DocID {
	var all []catalog.DocID
	for di := range p.pendingFetch {
		if p.sys.inst.Catalog.Doc(di).Categories[0] == cat {
			all = append(all, di)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > max {
		all = all[:max]
	}
	return all
}

// handleResult accumulates results at the query origin (§3.3 step 2c).
func (p *Peer) handleResult(m ResultMsg) {
	st, ok := p.queries[m.ID]
	if !ok || st.done {
		return
	}
	p.cacheDocs(m.Docs)
	for _, di := range m.Docs {
		st.docs[di] = true
	}
	if m.Hops > st.maxHops {
		st.maxHops = m.Hops
	}
	if len(st.docs) >= st.want {
		st.done = true
		st.doneAt = p.sys.net.Now()
		st.completionHops = m.Hops
	}
}
