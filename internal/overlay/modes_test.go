package overlay

import (
	"testing"

	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/model"
	"p2pshare/internal/replica"
)

// buildModeSystem is buildSystem with a selectable intra-cluster mode.
func buildModeSystem(t testing.TB, seed int64, mode Mode) (*System, *model.Instance, []model.ClusterID) {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 1500
	cfg.Catalog.NumCats = 40
	cfg.NumNodes = 150
	cfg.NumClusters = 8
	cfg.Seed = seed
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ocfg := DefaultConfig()
	ocfg.Seed = seed
	ocfg.Mode = mode
	sys, err := NewSystem(inst, res.Assignment, place, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, inst, res.Assignment
}

func TestSuperPeerQueryCompletes(t *testing.T) {
	sys, inst, _ := buildModeSystem(t, 40, ModeSuperPeer)
	cat := popularCategory(t, inst, 10)
	id := sys.IssueQuery(0, cat, 5)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, _ := sys.QueryReport(0, id)
	if !rep.Done {
		t.Fatalf("super-peer query incomplete: %+v", rep)
	}
	// Constant path: origin → super peer → holder → origin: 2 hops.
	if rep.Hops != 2 {
		t.Errorf("super-peer hops = %d, want 2", rep.Hops)
	}
}

func TestSuperPeerDesignation(t *testing.T) {
	sys, _, assign := buildModeSystem(t, 41, ModeSuperPeer)
	seen := false
	for c := 0; c < sys.inst.NumClusters; c++ {
		cl := model.ClusterID(c)
		sp, ok := sys.SuperPeer(cl)
		if !ok {
			continue
		}
		seen = true
		// The super peer is a most-capable member of its cluster.
		if !sys.peers[sp].inCluster(cl) {
			t.Fatalf("super peer %d not in cluster %d", sp, cl)
		}
		for _, p := range sys.peers {
			if p.inCluster(cl) && p.units > sys.peers[sp].units {
				t.Fatalf("cluster %d: member %d (%g units) beats super peer %d (%g)",
					cl, p.id, p.units, sp, sys.peers[sp].units)
			}
		}
		if sys.peers[sp].index == nil {
			t.Fatalf("super peer %d has no index", sp)
		}
	}
	if !seen {
		t.Fatal("no super peers designated")
	}
	_ = assign
}

func TestSuperPeerIndexMatchesStorage(t *testing.T) {
	sys, inst, assign := buildModeSystem(t, 42, ModeSuperPeer)
	for c := 0; c < inst.NumClusters; c++ {
		cl := model.ClusterID(c)
		sp, ok := sys.SuperPeer(cl)
		if !ok {
			continue
		}
		ix := sys.peers[sp].index
		// Every indexed holder really stores the document.
		for d, holders := range ix.holders {
			for _, h := range holders {
				if !sys.peers[h].Stores(d) {
					t.Fatalf("index lists %d holding doc %d, but it doesn't", h, d)
				}
			}
		}
		// Every stored document of the cluster's categories is indexed.
		for _, p := range sys.peers {
			if !p.inCluster(cl) {
				continue
			}
			for _, cat := range p.storedCategories() {
				if assign[cat] != cl {
					continue
				}
				for _, d := range p.storedIn(cat) {
					found := false
					for _, h := range ix.holders[d] {
						if h == p.id {
							found = true
						}
					}
					if !found {
						t.Fatalf("doc %d stored by %d missing from cluster %d index", d, p.id, cl)
					}
				}
			}
		}
	}
}

func TestSuperPeerSpreadsServingLoad(t *testing.T) {
	sys, inst, assign := buildModeSystem(t, 43, ModeSuperPeer)
	cat := popularCategory(t, inst, 10)
	for i := 0; i < 300; i++ {
		sys.IssueQuery(model.NodeID(i%sys.NumPeers()), cat, 1)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// The super peer handles every lookup (that is the §3.1 trade-off),
	// but serving is dispatched across holders.
	sp, _ := sys.SuperPeer(assign[cat])
	servers := 0
	for _, p := range sys.peers {
		if p.id != sp && p.served > 0 {
			servers++
		}
	}
	if servers < 2 {
		t.Errorf("only %d non-super-peer nodes served; dispatch not spreading", servers)
	}
	if sys.peers[sp].served == 0 {
		t.Error("super peer recorded no lookups")
	}
}

func TestSuperPeerIndexTracksLeave(t *testing.T) {
	sys, inst, assign := buildModeSystem(t, 44, ModeSuperPeer)
	cat := popularCategory(t, inst, 5)
	cl := assign[cat]
	sp, ok := sys.SuperPeer(cl)
	if !ok {
		t.Skip("no super peer for the category's cluster")
	}
	// Pick a member (not the super peer) that stores a doc of the
	// category and make it leave.
	var leaver model.NodeID = -1
	for _, p := range sys.peers {
		if p.id != sp && p.inCluster(cl) && len(p.storedIn(cat)) > 0 {
			leaver = p.id
			break
		}
	}
	if leaver == -1 {
		t.Skip("no suitable leaver")
	}
	sys.Leave(leaver)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for d, holders := range sys.peers[sp].index.holders {
		for _, h := range holders {
			if h == leaver {
				t.Fatalf("index still lists leaver %d for doc %d", leaver, d)
			}
		}
	}
	// Queries still complete.
	id := sys.IssueQuery(0, cat, 1)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if rep, _ := sys.QueryReport(0, id); !rep.Done {
		t.Error("query after leave incomplete")
	}
}

func TestRoutingIndexQueryCompletes(t *testing.T) {
	sys, inst, _ := buildModeSystem(t, 45, ModeRoutingIndex)
	cat := popularCategory(t, inst, 10)
	id := sys.IssueQuery(0, cat, 3)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, _ := sys.QueryReport(0, id)
	if !rep.Done {
		t.Fatalf("routing-index query incomplete: %+v", rep)
	}
}

func TestRoutingIndexUsesFewerMessages(t *testing.T) {
	// [1]'s claim: routing indices answer queries at a fraction of
	// flooding's message cost. Directed search gives up some recall on
	// deep searches (it visits the most promising nodes, not all of
	// them); the trade to verify is results-per-message efficiency with
	// bounded recall loss.
	run := func(mode Mode) (msgs, results int) {
		sys, inst, _ := buildModeSystem(t, 46, mode)
		cat := popularCategory(t, inst, 30)
		// Ask for more results than any single node stores (hot replicas
		// cover ~35% of the mass, cold docs have 2 copies spread around),
		// so in-cluster forwarding genuinely happens.
		want := len(inst.Catalog.Cats[cat].Docs) * 3 / 4
		const n = 100
		ids := make([]uint64, n)
		for i := 0; i < n; i++ {
			ids[i] = sys.IssueQuery(model.NodeID(i%sys.NumPeers()), cat, want)
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			rep, _ := sys.QueryReport(model.NodeID(i%sys.NumPeers()), id)
			results += rep.Results
		}
		return sys.Net().Stats().MessagesByKind["query"], results
	}
	floodMsgs, floodResults := run(ModeFlood)
	riMsgs, riResults := run(ModeRoutingIndex)
	if riMsgs >= floodMsgs/2 {
		t.Errorf("routing index used %d query messages, flooding %d — expected a big saving", riMsgs, floodMsgs)
	}
	if riResults < floodResults/3 {
		t.Errorf("routing index recall collapsed: %d results vs flooding's %d", riResults, floodResults)
	}
	effFlood := float64(floodResults) / float64(floodMsgs)
	effRI := float64(riResults) / float64(riMsgs)
	if effRI <= effFlood {
		t.Errorf("routing index efficiency %.3f results/msg <= flooding %.3f", effRI, effFlood)
	}
}

func TestBestNeighborsForRanking(t *testing.T) {
	sys, _, _ := buildModeSystem(t, 47, ModeRoutingIndex)
	p := sys.peers[0]
	// Fabricate a routing index and check the ranking.
	cands := []model.NodeID{10, 20, 30, 40}
	p.ri = map[model.NodeID]map[catalog.CategoryID]int{
		20: {5: 7},
		40: {5: 9},
		10: {5: 1},
	}
	got := p.bestNeighborsFor(5, cands, 2)
	if len(got) != 2 || got[0] != 40 || got[1] != 20 {
		t.Errorf("bestNeighborsFor = %v, want [40 20]", got)
	}
	// k >= len keeps everything.
	if got := p.bestNeighborsFor(5, cands, 10); len(got) != 4 {
		t.Errorf("k>=len should keep all, got %v", got)
	}
	// All-zero scores fall back to id order prefix.
	got = p.bestNeighborsFor(9, cands, 2)
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("zero-score fallback = %v, want [10 20]", got)
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeFlood:        "flood",
		ModeSuperPeer:    "super-peer",
		ModeRoutingIndex: "routing-index",
		Mode(9):          "unknown",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}
