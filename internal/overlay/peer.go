// Package overlay is the peer runtime of the paper's architecture: every
// node keeps the three metadata tables of Figure 1 (DT, DCRT, NRT) and
// speaks the protocols of §3.3 (query processing), §6.2 (publish), §6.3
// (join/leave), and §6.1 (leader election, the four-phase adaptation, and
// the lazy rebalancing protocol), over the deterministic simulator in
// package simnet.
package overlay

import (
	"sort"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
	"p2pshare/internal/simnet"
)

// DCRTEntry is one Document Category Routing Table row: the cluster
// currently serving a category, versioned by a move counter so concurrent
// metadata updates resolve to the newest move (§6.1.2 conflict
// resolution).
type DCRTEntry struct {
	Cluster model.ClusterID
	// MoveCounter increments every time the category is reassigned; the
	// entry with the highest counter wins a merge.
	MoveCounter uint64
}

// newer reports whether e should replace old in a metadata merge.
func (e DCRTEntry) newer(old DCRTEntry) bool { return e.MoveCounter > old.MoveCounter }

// queryState tracks a query this peer originated.
type queryState struct {
	want     int
	issuedAt time.Duration
	docs     map[catalog.DocID]bool
	done     bool
	doneAt   time.Duration
	// maxHops is the largest forwarding distance among received results.
	maxHops int
	// completionHops is the hop count of the result that satisfied the
	// query.
	completionHops int
}

// Peer is one simulated node.
type Peer struct {
	sys   *System
	id    model.NodeID
	addr  int
	units float64

	// dt is the Document Table: stored documents and their category
	// (Figure 1; multi-category documents record their first category,
	// matching the figure's single-category rows).
	dt map[catalog.DocID]catalog.CategoryID
	// byCat indexes stored documents by category in insertion order.
	// Protocol handlers iterate it instead of the dt map so behaviour is
	// deterministic for a fixed seed.
	byCat map[catalog.CategoryID][]catalog.DocID
	// dcrt maps categories to serving clusters.
	dcrt map[catalog.CategoryID]DCRTEntry
	// nrt lists known nodes per cluster. For the peer's own clusters the
	// entries double as the in-cluster forwarding/gossip neighbors.
	nrt map[model.ClusterID][]model.NodeID
	// clusters this peer belongs to.
	clusters []model.ClusterID

	// hits counts requests served per category (the §6.1.2 monitoring
	// counters); served is their total.
	hits   map[catalog.CategoryID]int64
	served int64

	// seen provides query-loop detection by query id (§3.3).
	seen map[uint64]bool
	// queries tracks queries this peer originated.
	queries map[uint64]*queryState

	// Leader election and adaptation state, per cluster.
	knownCaps map[model.ClusterID]map[model.NodeID]float64
	leaders   map[model.ClusterID]model.NodeID

	// Aggregation-tree state for the current epoch, per cluster.
	agg map[model.ClusterID]*aggState

	// pendingFetch parks docs this peer should serve but has not yet
	// received from its coupling node (lazy rebalancing step 4).
	pendingFetch map[catalog.DocID]model.NodeID

	// pendingPublish tracks in-flight publishes awaiting acks.
	pendingPublish map[catalog.DocID]*publishState

	// leaderLoads collects phase-2 load reports (leaders only).
	leaderLoads map[model.ClusterID]*clusterLoad
	// recentMeta queues DCRT changes for epidemic propagation.
	recentMeta map[catalog.CategoryID]DCRTEntry
	// seenLeaves dedupes re-flooded leave announcements.
	seenLeaves map[model.NodeID]bool

	// index is the cluster metadata held by super peers (ModeSuperPeer).
	index *clusterIndex
	// ri is the per-neighbor per-category reachability count
	// (ModeRoutingIndex).
	ri map[model.NodeID]map[catalog.CategoryID]int

	// docCache holds documents received as query results (§7 viii
	// extension); nil when caching is disabled.
	docCache *cache.Cache
	// cacheByCat indexes cached docs per category; entries may be stale
	// after eviction and are pruned on read.
	cacheByCat map[catalog.CategoryID][]catalog.DocID
}

// cachedIn returns up to max currently-cached documents of a category,
// pruning evicted ids from the index as it goes.
func (p *Peer) cachedIn(cat catalog.CategoryID, max int) []catalog.DocID {
	if p.docCache == nil {
		return nil
	}
	list := p.cacheByCat[cat]
	live := list[:0]
	var out []catalog.DocID
	for _, d := range list {
		if !p.docCache.Peek(d) {
			continue // evicted; prune
		}
		live = append(live, d)
		if len(out) < max {
			out = append(out, d)
		}
	}
	p.cacheByCat[cat] = live
	return out
}

// cacheDocs inserts received result documents into the peer's cache.
func (p *Peer) cacheDocs(docs []catalog.DocID) {
	if p.docCache == nil {
		return
	}
	for _, d := range docs {
		doc := p.sys.inst.Catalog.Doc(d)
		if doc == nil || p.docCache.Peek(d) {
			continue
		}
		p.docCache.Insert(d, doc.Size)
		if p.docCache.Peek(d) {
			cat := doc.Categories[0]
			p.cacheByCat[cat] = append(p.cacheByCat[cat], d)
		}
	}
}

// aggState is a node's view of one cluster's phase-1 aggregation tree.
type aggState struct {
	epoch    uint64
	parent   model.NodeID
	isRoot   bool
	waiting  int
	hits     map[catalog.CategoryID]int64
	units    map[catalog.CategoryID]float64
	reported bool
}

// ID returns the peer's node id.
func (p *Peer) ID() model.NodeID { return p.id }

// Served returns the total requests this peer has served.
func (p *Peer) Served() int64 { return p.served }

// Hits returns the per-category hit counters (live map; callers must not
// mutate).
func (p *Peer) Hits() map[catalog.CategoryID]int64 { return p.hits }

// DCRT returns the peer's current category→cluster view (live map;
// callers must not mutate).
func (p *Peer) DCRT() map[catalog.CategoryID]DCRTEntry { return p.dcrt }

// Stores reports whether the peer currently stores the document.
func (p *Peer) Stores(d catalog.DocID) bool {
	_, ok := p.dt[d]
	return ok
}

// StoredCount returns how many documents the peer stores.
func (p *Peer) StoredCount() int { return len(p.dt) }

// Clusters returns the clusters the peer belongs to.
func (p *Peer) Clusters() []model.ClusterID { return p.clusters }

// Leader returns the peer's believed leader for a cluster.
func (p *Peer) Leader(cl model.ClusterID) (model.NodeID, bool) {
	l, ok := p.leaders[cl]
	return l, ok
}

// routeCategory resolves a category through the peer's DCRT. Categories
// with no published documents default to cluster 0, mirroring the publish
// protocol's bootstrap rule (§6.2 step 3).
func (p *Peer) routeCategory(c catalog.CategoryID) DCRTEntry {
	if e, ok := p.dcrt[c]; ok {
		return e
	}
	return DCRTEntry{Cluster: 0}
}

// store inserts a document into the peer's DT.
func (p *Peer) store(d catalog.DocID) {
	if _, ok := p.dt[d]; ok {
		return
	}
	cat := p.sys.inst.Catalog.Doc(d).Categories[0]
	p.dt[d] = cat
	p.byCat[cat] = append(p.byCat[cat], d)
	p.notifySuperPeer(d, true)
}

// drop removes a document from the peer's DT.
func (p *Peer) drop(d catalog.DocID) {
	cat, ok := p.dt[d]
	if !ok {
		return
	}
	delete(p.dt, d)
	list := p.byCat[cat]
	for i, di := range list {
		if di == d {
			p.byCat[cat] = append(list[:i], list[i+1:]...)
			break
		}
	}
	p.notifySuperPeer(d, false)
}

// storedIn returns the stored documents of one category (live slice; do
// not mutate).
func (p *Peer) storedIn(cat catalog.CategoryID) []catalog.DocID { return p.byCat[cat] }

// storedCategories returns the categories this peer stores documents of,
// in ascending order.
func (p *Peer) storedCategories() []catalog.CategoryID {
	out := make([]catalog.CategoryID, 0, len(p.byCat))
	for c, docs := range p.byCat {
		if len(docs) > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// storedPopularity recomputes p(D(k)) — the summed popularity of the
// peer's stored documents — from the catalog at call time. It is computed
// on demand (not cached) because catalog perturbations re-scale document
// popularities underneath every peer.
func (p *Peer) storedPopularity() float64 {
	var sum float64
	for di := range p.dt {
		sum += p.sys.inst.Catalog.Doc(di).Popularity
	}
	return sum
}

// inCluster reports whether the peer currently belongs to cluster cl.
func (p *Peer) inCluster(cl model.ClusterID) bool {
	for _, c := range p.clusters {
		if c == cl {
			return true
		}
	}
	return false
}

// joinCluster records membership (idempotent).
func (p *Peer) joinCluster(cl model.ClusterID) {
	if !p.inCluster(cl) {
		p.clusters = append(p.clusters, cl)
	}
}

// neighbors returns the peer's known nodes in a cluster.
func (p *Peer) neighbors(cl model.ClusterID) []model.NodeID { return p.nrt[cl] }

// rememberNode adds a node to the NRT entry for a cluster, evicting the
// oldest entry beyond the configured cap (the paper suggests LRU
// replacement for fast-growing NRTs, §6.2 step 5).
func (p *Peer) rememberNode(cl model.ClusterID, n model.NodeID) {
	if n == p.id {
		return
	}
	list := p.nrt[cl]
	for _, m := range list {
		if m == n {
			return
		}
	}
	list = append(list, n)
	if cap := p.sys.cfg.NRTCap; cap > 0 && len(list) > cap {
		list = list[len(list)-cap:]
	}
	p.nrt[cl] = list
}

// Deliver dispatches incoming messages to the protocol handlers.
func (p *Peer) Deliver(net *simnet.Network, from int, msg simnet.Message) {
	switch m := msg.(type) {
	case QueryMsg:
		p.handleQuery(m)
	case ResultMsg:
		p.handleResult(m)
	case PublishMsg:
		p.handlePublish(from, m)
	case PublishAckMsg:
		p.handlePublishAck(m)
	case JoinRequestMsg:
		p.handleJoinRequest(from, m)
	case JoinReplyMsg:
		p.handleJoinReply(m)
	case LeaveMsg:
		p.handleLeave(m)
	case CapabilityMsg:
		p.handleCapability(m)
	case HitRequestMsg:
		p.handleHitRequest(from, m)
	case HitReplyMsg:
		p.handleHitReply(from, m)
	case LeaderLoadMsg:
		p.handleLeaderLoad(m)
	case MetadataUpdateMsg:
		p.handleMetadataUpdate(m)
	case ManifestMsg:
		p.handleManifest(m)
	case TransferMsg:
		p.handleTransfer(m)
	case FetchMsg:
		p.handleFetch(from, m)
	case FetchReplyMsg:
		p.handleFetchReply(m)
	case IndexQueryMsg:
		p.handleIndexQuery(m)
	case DirectServeMsg:
		p.handleDirectServe(m)
	case IndexUpdateMsg:
		p.handleIndexUpdate(m)
	}
}
