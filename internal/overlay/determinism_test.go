package overlay

import (
	"testing"

	"p2pshare/internal/model"
	"p2pshare/internal/trace"
)

// TestFullRunDeterminism fingerprints an entire protocol-heavy run — a
// workload, churn, and an adaptation round — and requires two identically
// seeded executions to produce bit-identical message traces. This is the
// repository's reproducibility guarantee in one assertion.
func TestFullRunDeterminism(t *testing.T) {
	run := func() (uint64, int) {
		sys, inst, _ := buildSystem(t, 90)
		rec := trace.NewDigestOnly()
		sys.Net().SetObserver(rec)

		cat := popularCategory(t, inst, 5)
		for i := 0; i < 200; i++ {
			sys.IssueQuery(model.NodeID(i%sys.NumPeers()), cat, 2)
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		sys.Leave(17)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunAdaptation(3); err != nil {
			t.Fatal(err)
		}
		return rec.Digest(), rec.Count()
	}
	d1, c1 := run()
	d2, c2 := run()
	if c1 == 0 {
		t.Fatal("no messages recorded")
	}
	if d1 != d2 || c1 != c2 {
		t.Fatalf("two identically seeded runs diverged: digest %x/%x, count %d/%d", d1, d2, c1, c2)
	}
}
