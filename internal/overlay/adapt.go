package overlay

import (
	"fmt"
	"math"
	"sort"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
)

// AdaptationReport summarizes one §6.1 adaptation round.
type AdaptationReport struct {
	Epoch uint64
	// Leaders maps clusters to their elected leader.
	Leaders map[model.ClusterID]model.NodeID
	// MeasuredFairness is the fairness index the chosen leader computed
	// from live hit counters in phase 3.
	MeasuredFairness float64
	// Rebalanced is true when phase 4 ran.
	Rebalanced bool
	// Moves lists the category reassignments of phase 4.
	Moves []core.Move
	// FairnessAfter is the chosen leader's fairness estimate after the
	// moves (equal to MeasuredFairness when no rebalancing happened).
	FairnessAfter float64
	// TransferBytes and TransferCount account the bulk data movement of
	// the lazy rebalancing protocol.
	TransferBytes int64
	// TransferCount is the number of paired source→destination transfers.
	TransferCount int
	// EngagedNodes counts the distinct nodes that took part in a
	// transfer (either end).
	EngagedNodes int

	engaged map[model.NodeID]bool
}

// engage records a node's participation in a transfer.
func (r *AdaptationReport) engage(n model.NodeID) {
	if r.engaged == nil {
		r.engaged = make(map[model.NodeID]bool)
	}
	if !r.engaged[n] {
		r.engaged[n] = true
		r.EngagedNodes++
	}
}

// RunAdaptation executes one complete adaptation epoch: leader election
// (§6.1.1), the four phases of §6.1.2, and metadata gossip. The driver
// plays the role of the paper's period timers ("leaders are elected
// periodically, e.g., every day"); everything else happens through
// messages between peers.
func (s *System) RunAdaptation(gossipRounds int) (*AdaptationReport, error) {
	s.epoch++
	rep := &AdaptationReport{Epoch: s.epoch, Leaders: make(map[model.ClusterID]model.NodeID)}
	s.adaptReport = rep

	// Leader election: capability gossip for ~diameter rounds, then every
	// node picks the most capable node it heard of.
	rounds := s.electionRounds()
	for r := 0; r < rounds; r++ {
		for _, p := range s.peers {
			if !s.net.Alive(p.addr) {
				continue
			}
			p.gossipCapabilities()
		}
		if _, err := s.net.Run(0); err != nil {
			return nil, fmt.Errorf("overlay: election round %d: %w", r, err)
		}
	}
	for _, p := range s.peers {
		if s.net.Alive(p.addr) {
			p.electLeaders()
		}
	}
	for _, p := range s.peers {
		for _, cl := range p.clusters {
			if l, ok := p.leaders[cl]; ok {
				if _, seen := rep.Leaders[cl]; !seen {
					rep.Leaders[cl] = l
				}
			}
		}
	}

	// Phase 1: every self-believed leader floods a hit-counter request,
	// building the aggregation tree; phase 2 (leader load exchange) fires
	// from the message handlers as roots complete.
	for _, p := range s.peers {
		if !s.net.Alive(p.addr) {
			continue
		}
		for _, cl := range p.clusters {
			if p.leaders[cl] == p.id {
				p.startAggregation(cl)
			}
		}
	}
	if _, err := s.net.Run(0); err != nil {
		return nil, fmt.Errorf("overlay: monitoring phase: %w", err)
	}

	// Phase 3 + 4: the chosen leader (highest normalized cluster
	// popularity among the loads it collected) evaluates fairness and
	// rebalances if needed. Handlers recorded results into rep. Partial
	// load exchange can leave every leader believing some other cluster
	// is hotter; in that case the leader with the hottest *own* cluster
	// proceeds (the paper only requires "a chosen leader, e.g., the
	// leader of the cluster with the highest normalized popularity").
	var fallback *Peer
	fallbackX := math.Inf(-1)
	chosenRan := false
	for _, p := range s.peers {
		if !s.net.Alive(p.addr) || len(p.leaderLoads) == 0 {
			continue
		}
		if p.isChosenLeader() {
			p.evaluateAndRebalance()
			chosenRan = true
			break
		}
		if x := p.ownLedNormPop(); x > fallbackX {
			fallback, fallbackX = p, x
		}
	}
	if !chosenRan && fallback != nil {
		fallback.evaluateAndRebalance()
	}
	if _, err := s.net.Run(0); err != nil {
		return nil, fmt.Errorf("overlay: rebalancing phase: %w", err)
	}

	// Step 5 of the lazy rebalancing protocol: epidemic propagation of
	// metadata updates.
	if gossipRounds <= 0 {
		gossipRounds = 4
	}
	for g := 0; g < gossipRounds; g++ {
		for _, p := range s.peers {
			if s.net.Alive(p.addr) {
				p.gossipMetadata()
			}
		}
		if _, err := s.net.Run(0); err != nil {
			return nil, fmt.Errorf("overlay: gossip round %d: %w", g, err)
		}
	}

	s.adaptReport = nil
	return rep, nil
}

// electionRounds sizes capability gossip to cover the largest cluster's
// gossip diameter with slack.
func (s *System) electionRounds() int {
	max := 2
	counts := make(map[model.ClusterID]int)
	for _, p := range s.peers {
		for _, cl := range p.clusters {
			counts[cl]++
		}
	}
	for _, n := range counts {
		if r := int(math.Ceil(math.Log2(float64(n+1)))) + 3; r > max {
			max = r
		}
	}
	return max
}

// capViewSize bounds each capability view to the few strongest candidates.
// The election only needs the maximum to converge; gossiping full views
// would make message sizes (and memory) quadratic in the cluster size.
// Keeping a handful of runners-up gives the failure path (§6.1.1: "the
// next more capable node") somewhere to go.
const capViewSize = 4

// gossipCapabilities pushes this node's capability view to its cluster
// neighbors (§6.1.1: "nodes inform their cluster neighbors of their
// computing, storage, and bandwidth capabilities, while also forwarding
// relevant information received by other nodes").
func (p *Peer) gossipCapabilities() {
	for _, cl := range p.clusters {
		view := p.knownCaps[cl]
		if view == nil {
			view = make(map[model.NodeID]float64)
			p.knownCaps[cl] = view
		}
		view[p.id] = p.units
		trimCapView(view, capViewSize)
		known := make(map[model.NodeID]float64, len(view))
		for n, u := range view {
			known[n] = u
		}
		for _, nb := range p.neighbors(cl) {
			p.sys.net.Send(p.addr, int(nb), CapabilityMsg{Cluster: cl, Known: known})
		}
	}
}

// handleCapability merges a capability rumor, keeping only the strongest
// candidates.
func (p *Peer) handleCapability(m CapabilityMsg) {
	view := p.knownCaps[m.Cluster]
	if view == nil {
		view = make(map[model.NodeID]float64)
		p.knownCaps[m.Cluster] = view
	}
	for n, u := range m.Known {
		view[n] = u
	}
	trimCapView(view, capViewSize)
}

// trimCapView drops all but the k most capable candidates (ties keep the
// lowest ids, matching the election's tie-break).
func trimCapView(view map[model.NodeID]float64, k int) {
	for len(view) > k {
		worst := model.NodeID(-1)
		for n, u := range view {
			if worst == -1 {
				worst = n
				continue
			}
			if u < view[worst] || (u == view[worst] && n > worst) {
				worst = n
			}
		}
		delete(view, worst)
	}
}

// electLeaders picks, per cluster, the most powerful known node (ties to
// the lowest id, so all correctly-informed nodes agree).
func (p *Peer) electLeaders() {
	for _, cl := range p.clusters {
		view := p.knownCaps[cl]
		best := p.id
		bestU := p.units
		for n, u := range view {
			if !p.sys.net.Alive(int(n)) {
				continue
			}
			if u > bestU || (u == bestU && n < best) {
				best, bestU = n, u
			}
		}
		p.leaders[cl] = best
	}
}

// startAggregation begins phase 1 at the cluster leader: flood a hit
// request through the cluster, forming a spanning tree on the fly.
func (p *Peer) startAggregation(cl model.ClusterID) {
	st := &aggState{
		epoch:   p.sys.epoch,
		isRoot:  true,
		waiting: len(p.neighbors(cl)),
		hits:    p.ownHits(cl),
		units:   p.ownUnits(cl),
	}
	p.agg[cl] = st
	for _, nb := range p.neighbors(cl) {
		p.sys.net.Send(p.addr, int(nb), HitRequestMsg{Epoch: p.sys.epoch, Cluster: cl})
	}
	if st.waiting == 0 {
		p.finishAggregation(cl, st)
	}
}

// ownHits snapshots this node's hit counters for the categories served by
// the aggregating cluster. A node in several clusters participates in one
// aggregation tree per cluster; without the filter its foreign-category
// hits would pollute every cluster's measured load.
func (p *Peer) ownHits(cl model.ClusterID) map[catalog.CategoryID]int64 {
	out := make(map[catalog.CategoryID]int64, len(p.hits))
	for c, n := range p.hits {
		if p.routeCategory(c).Cluster == cl {
			out[c] = n
		}
	}
	return out
}

// ownUnits computes this node's per-category unit mass over its stored
// documents — u_k·p(D_s(k))/p(D(k)) (§4.3.3) — restricted to the
// aggregating cluster's categories.
func (p *Peer) ownUnits(cl model.ClusterID) map[catalog.CategoryID]float64 {
	out := make(map[catalog.CategoryID]float64)
	pDk := p.storedPopularity()
	if pDk <= 0 {
		return out
	}
	for _, cat := range p.storedCategories() {
		if p.routeCategory(cat).Cluster != cl {
			continue
		}
		var sum float64
		for _, di := range p.storedIn(cat) {
			sum += p.sys.inst.Catalog.Doc(di).Popularity
		}
		out[cat] = p.units * sum / pDk
	}
	return out
}

// handleHitRequest joins the aggregation tree (phase 1): the first request
// seen this epoch makes the sender our parent; later ones get a Dup reply
// so the other parent stops waiting.
func (p *Peer) handleHitRequest(from int, m HitRequestMsg) {
	if st, ok := p.agg[m.Cluster]; ok && st.epoch == m.Epoch {
		p.sys.net.Send(p.addr, from, HitReplyMsg{Epoch: m.Epoch, Cluster: m.Cluster, Dup: true})
		return
	}
	nbs := p.neighbors(m.Cluster)
	st := &aggState{
		epoch:  m.Epoch,
		parent: model.NodeID(from),
		hits:   p.ownHits(m.Cluster),
		units:  p.ownUnits(m.Cluster),
	}
	p.agg[m.Cluster] = st
	for _, nb := range nbs {
		if int(nb) == from {
			continue
		}
		st.waiting++
		p.sys.net.Send(p.addr, int(nb), HitRequestMsg{Epoch: m.Epoch, Cluster: m.Cluster})
	}
	if st.waiting == 0 {
		p.finishAggregation(m.Cluster, st)
	}
}

// handleHitReply merges a child's subtree aggregate; when the last child
// reports, the aggregate flows up (or completes phase 1 at the root).
func (p *Peer) handleHitReply(_ int, m HitReplyMsg) {
	st, ok := p.agg[m.Cluster]
	if !ok || st.epoch != m.Epoch || st.reported {
		return
	}
	if !m.Dup {
		for c, n := range m.Hits {
			st.hits[c] += n
		}
		for c, u := range m.Units {
			st.units[c] += u
		}
	}
	st.waiting--
	if st.waiting <= 0 {
		p.finishAggregation(m.Cluster, st)
	}
}

// finishAggregation reports the subtree aggregate to the parent, or — at
// the root — stores the cluster-wide result and starts phase 2.
func (p *Peer) finishAggregation(cl model.ClusterID, st *aggState) {
	if st.reported {
		return
	}
	st.reported = true
	if !st.isRoot {
		p.sys.net.Send(p.addr, int(st.parent), HitReplyMsg{
			Epoch:   st.epoch,
			Cluster: cl,
			Hits:    st.hits,
			Units:   st.units,
		})
		return
	}
	// Root: record our own cluster's load and share it with the other
	// leaders (phase 2). The leader contacts one random known node per
	// cluster; that node forwards to its believed leader.
	if p.leaderLoads == nil {
		p.leaderLoads = make(map[model.ClusterID]*clusterLoad)
	}
	p.leaderLoads[cl] = &clusterLoad{epoch: st.epoch, hits: st.hits, units: st.units}
	for c := 0; c < p.sys.inst.NumClusters; c++ {
		target := model.ClusterID(c)
		if target == cl {
			continue
		}
		if n, ok := p.sys.randomLiveNode(p, target); ok {
			p.sys.net.Send(p.addr, int(n), LeaderLoadMsg{
				Epoch:   st.epoch,
				Cluster: cl,
				Target:  target,
				Leader:  p.id,
				Hits:    st.hits,
				Units:   st.units,
			})
		}
	}
}

// clusterLoad is a leader's record of one cluster's measured load for one
// adaptation epoch.
type clusterLoad struct {
	epoch uint64
	hits  map[catalog.CategoryID]int64
	units map[catalog.CategoryID]float64
}

// normPop returns the cluster's measured normalized popularity.
func (cl *clusterLoad) normPop() float64 {
	var hits int64
	var units float64
	for _, n := range cl.hits {
		hits += n
	}
	for _, u := range cl.units {
		units += u
	}
	if units == 0 {
		if hits == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(hits) / units
}

// handleLeaderLoad relays a phase-2 load report to this node's believed
// leader of the target cluster, or records it if this node is that leader.
func (p *Peer) handleLeaderLoad(m LeaderLoadMsg) {
	leader, ok := p.leaders[m.Target]
	if !ok {
		// Not a member of (or uninformed about) the target cluster —
		// happens when a stale NRT entry routed the report here. If we
		// are a leader of anything, keep the data; otherwise drop it.
		leader = p.id
		for _, cl := range p.clusters {
			if p.leaders[cl] == p.id {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
	}
	if leader == p.id {
		if p.leaderLoads == nil {
			p.leaderLoads = make(map[model.ClusterID]*clusterLoad)
		}
		// Newer epochs replace stale loads; duplicates within an epoch
		// keep the first report.
		if have, ok := p.leaderLoads[m.Cluster]; !ok || m.Epoch > have.epoch {
			p.leaderLoads[m.Cluster] = &clusterLoad{epoch: m.Epoch, hits: m.Hits, units: m.Units}
		}
		return
	}
	if m.Relays >= 3 {
		return // leader views disagree; drop rather than ping-pong
	}
	m.Relays++
	p.sys.net.Send(p.addr, int(leader), m)
}

// ownLedNormPop returns the highest measured normalized popularity among
// the clusters this peer leads and has collected loads for, or -Inf.
func (p *Peer) ownLedNormPop() float64 {
	best := math.Inf(-1)
	for _, cl := range p.clusters {
		if p.leaders[cl] != p.id {
			continue
		}
		if load, ok := p.leaderLoads[cl]; ok && load.epoch == p.sys.epoch {
			if x := load.normPop(); x > best {
				best = x
			}
		}
	}
	return best
}

// isChosenLeader reports whether this leader's own cluster has the highest
// measured normalized popularity among the loads it has collected (§6.1.2
// phase 3: "a chosen leader, e.g., the leader of the cluster with the
// highest normalized popularity").
func (p *Peer) isChosenLeader() bool {
	ownBest := math.Inf(-1)
	own := false
	for _, cl := range p.clusters {
		if p.leaders[cl] != p.id {
			continue
		}
		if load, ok := p.leaderLoads[cl]; ok && load.epoch == p.sys.epoch {
			own = true
			if x := load.normPop(); x > ownBest {
				ownBest = x
			}
		}
	}
	if !own {
		return false
	}
	for _, load := range p.leaderLoads {
		if load.epoch == p.sys.epoch && load.normPop() > ownBest+1e-15 {
			return false
		}
	}
	return true
}

// evaluateAndRebalance is phases 3 and 4 at the chosen leader: compute the
// fairness index over measured normalized popularities; if it is below
// the low threshold, run MaxFair_Reassign on the measured state and drive
// the lazy rebalancing protocol for each move.
func (p *Peer) evaluateAndRebalance() {
	rep := p.sys.adaptReport

	// Work over the clusters this leader actually heard from: unheard
	// clusters are unknown, not empty — counting them as zero load would
	// both misstate fairness and attract every category in phase 4.
	loadClusters := make([]model.ClusterID, 0, len(p.leaderLoads))
	for cl, load := range p.leaderLoads {
		if load.epoch == p.sys.epoch {
			loadClusters = append(loadClusters, cl)
		}
	}
	sort.Slice(loadClusters, func(i, j int) bool { return loadClusters[i] < loadClusters[j] })

	xs := make([]float64, len(loadClusters))
	for i, cl := range loadClusters {
		xs[i] = p.leaderLoads[cl].normPop()
	}
	measured := fairness.Jain(xs)
	if rep != nil {
		rep.MeasuredFairness = measured
		rep.FairnessAfter = measured
	}
	if measured >= p.sys.cfg.AdaptLowThreshold {
		return // phase 3: above the low threshold, nothing to do
	}
	if len(loadClusters) < (p.sys.inst.NumClusters+1)/2 {
		return // heard from under half the clusters; not enough signal
	}

	// Phase 4: rebuild the ICLB state from measurements — over the heard
	// clusters, remapped to compact ids — and rebalance.
	toCompact := make(map[model.ClusterID]model.ClusterID, len(loadClusters))
	for i, cl := range loadClusters {
		toCompact[cl] = model.ClusterID(i)
	}
	nCats := len(p.sys.inst.Catalog.Cats)
	catPop := make([]float64, nCats)
	catUnits := make([]float64, nCats)
	assign := make([]model.ClusterID, nCats)
	for c := range assign {
		assign[c] = model.NoCluster
	}
	var totalHits int64
	for _, cl := range loadClusters {
		for _, n := range p.leaderLoads[cl].hits {
			totalHits += n
		}
	}
	if totalHits == 0 {
		return
	}
	for _, cl := range loadClusters {
		load := p.leaderLoads[cl]
		for c, n := range load.hits {
			catPop[c] += float64(n) / float64(totalHits)
			assign[c] = toCompact[cl]
		}
		for c, u := range load.units {
			catUnits[c] += u
			assign[c] = toCompact[cl]
		}
	}
	st, err := core.NewStateFromMeasurements(len(loadClusters), catPop, catUnits, assign)
	if err != nil {
		panic(fmt.Sprintf("overlay: measured state: %v", err))
	}
	moves, err := core.MaxFairReassign(st, core.ReassignOptions{
		TargetFairness: p.sys.cfg.AdaptTarget,
		MaxMoves:       p.sys.cfg.AdaptMaxMoves,
	})
	if err != nil {
		panic(fmt.Sprintf("overlay: reassign: %v", err))
	}
	if rep != nil {
		rep.Rebalanced = len(moves) > 0
		rep.FairnessAfter = st.Fairness()
	}
	for _, mv := range moves {
		from, to := loadClusters[mv.From], loadClusters[mv.To]
		if rep != nil {
			rep.Moves = append(rep.Moves, core.Move{
				Category:      mv.Category,
				From:          from,
				To:            to,
				FairnessAfter: mv.FairnessAfter,
			})
		}
		p.announceMove(mv.Category, from, to)
	}
}

// announceMove drives steps 1–2 of the lazy rebalancing protocol for one
// reassigned category: bump the move counter, notify both clusters'
// nodes (who then pair up for the bulk transfers).
func (p *Peer) announceMove(cat catalog.CategoryID, from, to model.ClusterID) {
	old := p.routeCategory(cat)
	entry := DCRTEntry{Cluster: to, MoveCounter: old.MoveCounter + 1}
	p.dcrt[cat] = entry
	p.markMetaDirty(cat, entry)

	// System truth bookkeeping (routing still flows through DCRTs).
	p.sys.assign[cat] = to
	p.sys.moveCounters[cat] = entry.MoveCounter

	update := MetadataUpdateMsg{Entries: map[catalog.CategoryID]DCRTEntry{cat: entry}}
	for _, target := range []model.ClusterID{from, to} {
		for _, n := range p.neighbors(target) {
			p.sys.net.Send(p.addr, int(n), update)
		}
	}
}

// markMetaDirty queues a DCRT entry for epidemic propagation.
func (p *Peer) markMetaDirty(cat catalog.CategoryID, e DCRTEntry) {
	if p.recentMeta == nil {
		p.recentMeta = make(map[catalog.CategoryID]DCRTEntry)
	}
	p.recentMeta[cat] = e
}

// gossipMetadata pushes recently-changed DCRT entries to a few random
// neighbors (lazy rebalancing step 5). Targets are drawn at random each
// round — a fixed target set would confine the epidemic to one subgraph.
func (p *Peer) gossipMetadata() {
	if len(p.recentMeta) == 0 {
		return
	}
	entries := make(map[catalog.CategoryID]DCRTEntry, len(p.recentMeta))
	for c, e := range p.recentMeta {
		entries[c] = e
	}
	var pool []model.NodeID
	for _, cl := range p.clusters {
		pool = append(pool, p.neighbors(cl)...)
	}
	if len(pool) == 0 {
		return
	}
	for i := 0; i < 3; i++ {
		nb := pool[p.sys.rng.Intn(len(pool))]
		p.sys.net.Send(p.addr, int(nb), MetadataUpdateMsg{Entries: entries})
	}
}

// handleMetadataUpdate merges DCRT entries, keeping the highest move
// counter per category (the §6.1.2 conflict resolution rule), and reacts
// to moves that affect this node: source-cluster members pair up and
// transfer their document groups; contributors follow their category.
func (p *Peer) handleMetadataUpdate(m MetadataUpdateMsg) {
	cats := make([]catalog.CategoryID, 0, len(m.Entries))
	for cat := range m.Entries {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, cat := range cats {
		e := m.Entries[cat]
		old, known := p.dcrt[cat]
		if known && !e.newer(old) {
			continue
		}
		p.dcrt[cat] = e
		p.markMetaDirty(cat, e)
		p.reactToMove(cat, e)
	}
}

// reactToMove handles the storage side of a category move at this node.
func (p *Peer) reactToMove(cat catalog.CategoryID, e DCRTEntry) {
	// Documents of the moved category this node stores.
	mine := append([]catalog.DocID(nil), p.storedIn(cat)...)
	if len(mine) == 0 {
		return
	}
	if p.inCluster(e.Cluster) {
		return // already in the destination; nothing to ship
	}
	contributes := false
	for _, di := range p.sys.inst.Nodes[p.id].Contributed {
		if p.sys.inst.Catalog.Doc(di).Categories[0] == cat {
			contributes = true
			break
		}
	}
	if contributes {
		// Contributors follow their category into the destination
		// cluster (§3.1: nodes belong to the clusters of the categories
		// they contribute). Announce membership via a publish.
		p.joinCluster(e.Cluster)
		if len(mine) > 0 {
			p.startPublish(mine[0], cat, false)
		}
		return
	}
	// Replica holder in the source cluster: pair with a destination node,
	// send the manifest now and the bulk transfer at the first opportune
	// time (step 2: "transfers ... can be scheduled for the first
	// opportune time").
	dest, ok := p.sys.randomLiveNode(p, e.Cluster)
	if !ok {
		return
	}
	var bytes int64
	for _, di := range mine {
		bytes += p.sys.inst.Catalog.Doc(di).Size
	}
	docs := append([]catalog.DocID(nil), mine...)
	p.sys.net.Send(p.addr, int(dest), ManifestMsg{Category: cat, Docs: docs, Source: p.id})
	delay := time.Duration(p.sys.rng.Intn(1000)) * time.Millisecond
	p.sys.net.After(delay, func() {
		if !p.sys.net.Alive(p.addr) {
			return
		}
		p.sys.net.Send(p.addr, int(dest), TransferMsg{Category: cat, Docs: docs, Bytes: bytes})
		if rep := p.sys.adaptReport; rep != nil {
			rep.TransferBytes += bytes
			rep.TransferCount++
			rep.engage(p.id)
			rep.engage(dest)
		}
		// The group now lives in the destination cluster; free our copy.
		for _, di := range docs {
			p.drop(di)
		}
	})
}

// handleManifest registers on-demand fetchable documents at a destination
// node (step 4 preparation).
func (p *Peer) handleManifest(m ManifestMsg) {
	for _, di := range m.Docs {
		if !p.Stores(di) {
			p.pendingFetch[di] = m.Source
		}
	}
	entry := p.routeCategory(m.Category)
	p.joinCluster(entry.Cluster)
}

// handleTransfer stores a transferred document group at the destination.
func (p *Peer) handleTransfer(m TransferMsg) {
	for _, di := range m.Docs {
		delete(p.pendingFetch, di)
		p.store(di)
	}
	p.joinCluster(p.routeCategory(m.Category).Cluster)
}

// handleFetch serves an explicit document request from a destination node
// that needs documents before its scheduled transfer arrived (step 4).
func (p *Peer) handleFetch(from int, m FetchMsg) {
	var docs []catalog.DocID
	var bytes int64
	for _, di := range m.Docs {
		if p.Stores(di) {
			docs = append(docs, di)
			bytes += p.sys.inst.Catalog.Doc(di).Size
		}
	}
	p.sys.net.Send(p.addr, from, FetchReplyMsg{
		Category: m.Category,
		Docs:     docs,
		Bytes:    bytes,
		ForQuery: m.ForQuery,
		Origin:   m.Origin,
		Want:     m.Want,
		Hops:     m.Hops,
	})
}

// handleFetchReply stores fetched documents and, if the fetch was on
// behalf of a forwarded query, answers the origin with the piggybacked
// results (step 4: "it will also piggyback onto the reply the update in
// the metadata information").
func (p *Peer) handleFetchReply(m FetchReplyMsg) {
	for _, di := range m.Docs {
		p.store(di)
	}
	if m.ForQuery != 0 && len(m.Docs) > 0 {
		p.sys.net.Send(p.addr, int(m.Origin), ResultMsg{
			ID:   m.ForQuery,
			Docs: m.Docs,
			Hops: m.Hops,
			From: p.id,
		})
	}
}
