package overlay

import (
	"sort"

	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
)

// Mode selects the intra-cluster content-location design (§3.1): the
// paper discusses pure flooding over cluster neighbors, a distinct set of
// super peers holding cluster metadata, and routing indices at the
// cluster's nodes (citing Crespo/Garcia-Molina [1]).
type Mode int

const (
	// ModeFlood floods queries to all known cluster neighbors until
	// enough results arrive (the default of §3.3).
	ModeFlood Mode = iota
	// ModeSuperPeer sends queries to the cluster's super peer, which
	// holds a full document→holders index and dispatches the request to
	// specific nodes ("a distinct set of super peer nodes, storing
	// cluster metadata, describing which documents are stored by which
	// cluster nodes", §3.1).
	ModeSuperPeer
	// ModeRoutingIndex forwards queries to the most promising neighbors
	// according to per-neighbor per-category reachability counts instead
	// of flooding (§3.1's pure-P2P alternative, after [1]).
	ModeRoutingIndex
)

func (m Mode) String() string {
	switch m {
	case ModeFlood:
		return "flood"
	case ModeSuperPeer:
		return "super-peer"
	case ModeRoutingIndex:
		return "routing-index"
	default:
		return "unknown"
	}
}

// IndexQueryMsg asks a super peer to resolve a query against its cluster
// index.
type IndexQueryMsg struct {
	ID       uint64
	Category catalog.CategoryID
	Want     int
	Origin   model.NodeID
	Hops     int
}

// Kind implements simnet.Message.
func (IndexQueryMsg) Kind() string { return "index-query" }

// Size implements simnet.Message.
func (IndexQueryMsg) Size() int64 { return headerBytes + 4*perIDBytes }

// DirectServeMsg is the super peer's dispatch: the target node should
// return exactly these documents to the query origin.
type DirectServeMsg struct {
	ID     uint64
	Docs   []catalog.DocID
	Origin model.NodeID
	Hops   int
}

// Kind implements simnet.Message.
func (DirectServeMsg) Kind() string { return "direct-serve" }

// Size implements simnet.Message.
func (m DirectServeMsg) Size() int64 { return headerBytes + int64(len(m.Docs))*perIDBytes }

// IndexUpdateMsg keeps a super peer's cluster index current: the sender
// now stores Adds and no longer stores Removes.
type IndexUpdateMsg struct {
	Node    model.NodeID
	Adds    []catalog.DocID
	Removes []catalog.DocID
}

// Kind implements simnet.Message.
func (IndexUpdateMsg) Kind() string { return "index-update" }

// Size implements simnet.Message.
func (m IndexUpdateMsg) Size() int64 {
	return headerBytes + int64(1+len(m.Adds)+len(m.Removes))*perIDBytes
}

// clusterIndex is the super peer's metadata: which members hold which
// documents, grouped by category for query resolution.
type clusterIndex struct {
	// holders maps each document to the members storing it (ascending).
	holders map[catalog.DocID][]model.NodeID
	// byCat lists a cluster's documents per category (ascending ids).
	byCat map[catalog.CategoryID][]catalog.DocID
}

func newClusterIndex() *clusterIndex {
	return &clusterIndex{
		holders: make(map[catalog.DocID][]model.NodeID),
		byCat:   make(map[catalog.CategoryID][]catalog.DocID),
	}
}

// add registers node as a holder of doc.
func (ix *clusterIndex) add(d catalog.DocID, cat catalog.CategoryID, n model.NodeID) {
	hs := ix.holders[d]
	for _, h := range hs {
		if h == n {
			return
		}
	}
	if len(hs) == 0 {
		// First holder: the document enters the category listing, kept
		// sorted for deterministic iteration.
		list := ix.byCat[cat]
		pos := sort.Search(len(list), func(i int) bool { return list[i] >= d })
		list = append(list, 0)
		copy(list[pos+1:], list[pos:])
		list[pos] = d
		ix.byCat[cat] = list
	}
	pos := sort.Search(len(hs), func(i int) bool { return hs[i] >= n })
	hs = append(hs, 0)
	copy(hs[pos+1:], hs[pos:])
	hs[pos] = n
	ix.holders[d] = hs
}

// remove unregisters node as a holder of doc.
func (ix *clusterIndex) remove(d catalog.DocID, cat catalog.CategoryID, n model.NodeID) {
	hs := ix.holders[d]
	for i, h := range hs {
		if h == n {
			hs = append(hs[:i], hs[i+1:]...)
			break
		}
	}
	if len(hs) == 0 {
		delete(ix.holders, d)
		list := ix.byCat[cat]
		for i, di := range list {
			if di == d {
				ix.byCat[cat] = append(list[:i], list[i+1:]...)
				break
			}
		}
		return
	}
	ix.holders[d] = hs
}

// dropNode removes every trace of a departed member.
func (ix *clusterIndex) dropNode(n model.NodeID, docCat func(catalog.DocID) catalog.CategoryID) {
	var orphaned []catalog.DocID
	for d, hs := range ix.holders {
		out := hs[:0]
		for _, h := range hs {
			if h != n {
				out = append(out, h)
			}
		}
		if len(out) == 0 {
			orphaned = append(orphaned, d)
		} else {
			ix.holders[d] = out
		}
	}
	for _, d := range orphaned {
		delete(ix.holders, d)
		cat := docCat(d)
		list := ix.byCat[cat]
		for i, di := range list {
			if di == d {
				ix.byCat[cat] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}

// handleIndexQuery resolves a query at the super peer: walk the category's
// documents, pick a random live holder for each, and dispatch grouped
// serve requests. The index lookup is the super peer's load.
func (p *Peer) handleIndexQuery(m IndexQueryMsg) {
	if p.index == nil {
		// Not (or no longer) a super peer: fall back to the flood path
		// so the query is not lost.
		p.handleQuery(QueryMsg{
			ID: m.ID, Category: m.Category, Want: m.Want,
			Origin: m.Origin, Hops: m.Hops, Entry: true,
		})
		return
	}
	p.served++
	p.hits[m.Category]++

	byHolder := make(map[model.NodeID][]catalog.DocID)
	var order []model.NodeID
	picked := 0
	for _, d := range p.index.byCat[m.Category] {
		if picked == m.Want {
			break
		}
		hs := p.index.holders[d]
		if len(hs) == 0 {
			continue
		}
		// Random live holder — the same load-spreading idea as §3.3's
		// random target selection.
		var h model.NodeID = -1
		for try := 0; try < 4; try++ {
			cand := hs[p.sys.rng.Intn(len(hs))]
			if p.sys.net.Alive(int(cand)) {
				h = cand
				break
			}
		}
		if h == -1 {
			continue
		}
		if _, seen := byHolder[h]; !seen {
			order = append(order, h)
		}
		byHolder[h] = append(byHolder[h], d)
		picked++
	}
	for _, h := range order {
		p.sys.net.Send(p.addr, int(h), DirectServeMsg{
			ID:     m.ID,
			Docs:   byHolder[h],
			Origin: m.Origin,
			Hops:   m.Hops + 1,
		})
	}
}

// handleDirectServe returns the requested documents to the origin.
func (p *Peer) handleDirectServe(m DirectServeMsg) {
	var have []catalog.DocID
	for _, d := range m.Docs {
		if p.Stores(d) {
			have = append(have, d)
		}
	}
	if len(have) == 0 {
		return
	}
	p.served++
	p.sys.net.Send(p.addr, int(m.Origin), ResultMsg{
		ID:   m.ID,
		Docs: have,
		Hops: m.Hops,
		From: p.id,
	})
}

// handleIndexUpdate maintains the super peer's index.
func (p *Peer) handleIndexUpdate(m IndexUpdateMsg) {
	if p.index == nil {
		return
	}
	for _, d := range m.Adds {
		if doc := p.sys.inst.Catalog.Doc(d); doc != nil {
			p.index.add(d, doc.Categories[0], m.Node)
		}
	}
	for _, d := range m.Removes {
		if doc := p.sys.inst.Catalog.Doc(d); doc != nil {
			p.index.remove(d, doc.Categories[0], m.Node)
		}
	}
}

// notifySuperPeer tells the super peer of a document's serving cluster
// about a storage change at this peer (no-op outside super-peer mode or
// before the super peers exist).
func (p *Peer) notifySuperPeer(d catalog.DocID, added bool) {
	if p.sys.cfg.Mode != ModeSuperPeer || p.sys.superPeers == nil {
		return
	}
	doc := p.sys.inst.Catalog.Doc(d)
	if doc == nil {
		return
	}
	cl := p.routeCategory(doc.Categories[0]).Cluster
	sp, ok := p.sys.superPeers[cl]
	if !ok {
		return
	}
	msg := IndexUpdateMsg{Node: p.id}
	if added {
		msg.Adds = []catalog.DocID{d}
	} else {
		msg.Removes = []catalog.DocID{d}
	}
	if sp == p.id {
		p.handleIndexUpdate(msg)
		return
	}
	p.sys.net.Send(p.addr, int(sp), msg)
}
