package cache

import (
	"sync"

	"p2pshare/internal/catalog"
)

// Striped is a byte-budgeted document cache safe for concurrent use: the
// key space is partitioned over independently locked Cache stripes, so
// goroutines touching different documents proceed in parallel (the
// sharded livenet engine reads and fills the requester cache from every
// shard and from caller goroutines at once). Each stripe gets an equal
// share of the byte budget; eviction is per-stripe, which approximates
// the single-cache policy the way a set-associative cache approximates
// full associativity.
//
// Stripe count scales with capacity — one stripe per stripeBudget bytes,
// capped at maxStripes — so a small cache degenerates to a single stripe
// with exactly the sequential Cache's eviction behaviour.
const (
	stripeBudget = 4 << 20 // one stripe per 4 MB of capacity
	maxStripes   = 16
)

// Striped is the concurrent counterpart of Cache.
type Striped struct {
	stripes []stripe
}

type stripe struct {
	mu sync.Mutex
	c  *Cache
}

// NewStriped creates a concurrent cache with the given byte capacity,
// split evenly across stripes. Capacity 0 disables caching.
func NewStriped(policy Policy, capacity int64) (*Striped, error) {
	n := int(capacity / stripeBudget)
	if n < 1 {
		n = 1
	}
	if n > maxStripes {
		n = maxStripes
	}
	s := &Striped{stripes: make([]stripe, n)}
	per := capacity / int64(n)
	for i := range s.stripes {
		c, err := New(policy, per)
		if err != nil {
			return nil, err
		}
		s.stripes[i].c = c
	}
	return s, nil
}

// stripeFor hashes a document id to its owning stripe (splitmix64
// finalizer — document ids are often sequential, so raw modulo would
// imbalance the stripes badly under range-local workloads).
func (s *Striped) stripeFor(d catalog.DocID) *stripe {
	x := uint64(d)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return &s.stripes[x%uint64(len(s.stripes))]
}

// Contains looks a document up, updating recency/frequency and hit
// statistics on its stripe.
func (s *Striped) Contains(d catalog.DocID) bool {
	st := s.stripeFor(d)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.c.Contains(d)
}

// Peek reports presence without touching statistics or ordering.
func (s *Striped) Peek(d catalog.DocID) bool {
	st := s.stripeFor(d)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.c.Peek(d)
}

// Insert adds a document of the given size, evicting within the owning
// stripe until it fits. Documents larger than a stripe's share of the
// capacity are not cached.
func (s *Striped) Insert(d catalog.DocID, size int64) {
	st := s.stripeFor(d)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.c.Insert(d, size)
}

// Len returns the number of cached documents across all stripes.
func (s *Striped) Len() int {
	total := 0
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		total += s.stripes[i].c.Len()
		s.stripes[i].mu.Unlock()
	}
	return total
}

// UsedBytes returns the cached byte total across all stripes.
func (s *Striped) UsedBytes() int64 {
	var total int64
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		total += s.stripes[i].c.UsedBytes()
		s.stripes[i].mu.Unlock()
	}
	return total
}

// Stats returns summed raw hit/miss counters.
func (s *Striped) Stats() (hits, misses int64) {
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		h, m := s.stripes[i].c.Stats()
		s.stripes[i].mu.Unlock()
		hits += h
		misses += m
	}
	return hits, misses
}

// HitRatio returns hits/(hits+misses) over all stripes, 0 before any
// lookup.
func (s *Striped) HitRatio() float64 {
	h, m := s.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
