package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"p2pshare/internal/catalog"
	"p2pshare/internal/zipf"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(LRU, -1); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := New(Policy(9), 100); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestBasicHitMiss(t *testing.T) {
	c, _ := New(LRU, 100)
	if c.Contains(1) {
		t.Error("empty cache hit")
	}
	c.Insert(1, 10)
	if !c.Contains(1) {
		t.Error("inserted doc missing")
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Errorf("stats = %d/%d, want 1/1", h, m)
	}
	if c.HitRatio() != 0.5 {
		t.Errorf("hit ratio %g, want 0.5", c.HitRatio())
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(LRU, 30)
	c.Insert(1, 10)
	c.Insert(2, 10)
	c.Insert(3, 10)
	// Touch 1 so 2 becomes the LRU victim.
	c.Contains(1)
	c.Insert(4, 10)
	if c.Peek(2) {
		t.Error("LRU victim 2 not evicted")
	}
	for _, d := range []catalog.DocID{1, 3, 4} {
		if !c.Peek(d) {
			t.Errorf("doc %d should be cached", d)
		}
	}
}

func TestLFUEviction(t *testing.T) {
	c, _ := New(LFU, 30)
	c.Insert(1, 10)
	c.Insert(2, 10)
	c.Insert(3, 10)
	// Make 1 and 3 popular; 2 stays at one use.
	c.Contains(1)
	c.Contains(1)
	c.Contains(3)
	c.Insert(4, 10)
	if c.Peek(2) {
		t.Error("LFU victim 2 not evicted")
	}
	if !c.Peek(1) || !c.Peek(3) || !c.Peek(4) {
		t.Error("frequently used docs evicted")
	}
}

func TestCapacityRespected(t *testing.T) {
	c, _ := New(LRU, 100)
	for d := 0; d < 50; d++ {
		c.Insert(catalog.DocID(d), 9)
	}
	if c.UsedBytes() > 100 {
		t.Errorf("used %d > capacity 100", c.UsedBytes())
	}
	if c.Len() > 11 {
		t.Errorf("len %d too large", c.Len())
	}
}

func TestOversizeAndZeroCapacity(t *testing.T) {
	c, _ := New(LRU, 100)
	c.Insert(1, 200) // bigger than capacity: ignored
	if c.Peek(1) {
		t.Error("oversize doc cached")
	}
	z, _ := New(LRU, 0)
	z.Insert(1, 1)
	if z.Peek(1) || z.Contains(1) {
		t.Error("zero-capacity cache stored something")
	}
}

func TestReinsertRefreshes(t *testing.T) {
	c, _ := New(LRU, 20)
	c.Insert(1, 10)
	c.Insert(2, 10)
	c.Insert(1, 10) // refresh recency of 1; must not double-count bytes
	if c.UsedBytes() != 20 {
		t.Errorf("used %d, want 20", c.UsedBytes())
	}
	c.Insert(3, 10) // evicts 2 (LRU), not 1
	if c.Peek(2) || !c.Peek(1) {
		t.Error("refresh did not update recency")
	}
}

func TestCapacityInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int64(50 + rng.Intn(200))
		c, err := New(Policy(rng.Intn(2)), capacity)
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			d := catalog.DocID(rng.Intn(60))
			if rng.Intn(2) == 0 {
				c.Contains(d)
			} else {
				c.Insert(d, int64(1+rng.Intn(40)))
			}
			if c.UsedBytes() > capacity || c.UsedBytes() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestZipfWorkloadHitRatio(t *testing.T) {
	// The §7(viii) rationale: under Zipf demand a cache holding ~5% of
	// the corpus absorbs a large share of requests.
	const nDocs = 2000
	pops := zipf.Popularities(nDocs, 0.8)
	sampler := zipf.NewSampler(pops)
	rng := rand.New(rand.NewSource(42))
	c, _ := New(LRU, 100) // 100 unit-size docs = 5% of corpus
	for i := 0; i < 50000; i++ {
		d := catalog.DocID(sampler.Sample(rng))
		if !c.Contains(d) {
			c.Insert(d, 1)
		}
	}
	if r := c.HitRatio(); r < 0.25 {
		t.Errorf("Zipf hit ratio %g < 0.25 with a 5%% cache", r)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || LFU.String() != "lfu" || Policy(7).String() != "Policy(7)" {
		t.Error("policy strings wrong")
	}
}
