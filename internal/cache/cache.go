// Package cache implements the document caching the paper leaves as
// future work (§7 viii: "cache placement and replacement algorithms that
// can complement our architecture").
//
// The cache sits at the requesting node: documents fetched by earlier
// queries are kept (LRU or LFU over a byte budget) and served locally,
// turning repeat requests for popular content into zero-hop answers.
// Because document popularity is Zipf, even a small cache absorbs a large
// request share — the experiment in internal/experiments quantifies it.
package cache

import (
	"container/list"
	"fmt"

	"p2pshare/internal/catalog"
)

// Policy selects the replacement algorithm.
type Policy int

const (
	// LRU evicts the least recently used document.
	LRU Policy = iota
	// LFU evicts the least frequently used document (ties: least
	// recently used).
	LFU
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LFU:
		return "lfu"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// entry is one cached document.
type entry struct {
	id   catalog.DocID
	size int64
	uses int64
	elem *list.Element
}

// Cache is a byte-budgeted document cache. Not safe for concurrent use;
// each peer owns one.
type Cache struct {
	policy   Policy
	capacity int64
	used     int64
	entries  map[catalog.DocID]*entry
	// order is recency order for LRU (front = most recent); for LFU it
	// is only used to break frequency ties by recency.
	order *list.List

	hits, misses int64
}

// New creates a cache with the given byte capacity. Capacity 0 disables
// caching (every lookup misses, every insert is ignored).
func New(policy Policy, capacity int64) (*Cache, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	if policy != LRU && policy != LFU {
		return nil, fmt.Errorf("cache: unknown policy %d", policy)
	}
	return &Cache{
		policy:   policy,
		capacity: capacity,
		entries:  make(map[catalog.DocID]*entry),
		order:    list.New(),
	}, nil
}

// Contains looks a document up, updating recency/frequency and hit
// statistics.
func (c *Cache) Contains(d catalog.DocID) bool {
	e, ok := c.entries[d]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	e.uses++
	c.order.MoveToFront(e.elem)
	return true
}

// Peek reports presence without touching statistics or ordering.
func (c *Cache) Peek(d catalog.DocID) bool {
	_, ok := c.entries[d]
	return ok
}

// Insert adds a document of the given size, evicting per policy until it
// fits. Documents larger than the whole capacity are not cached. Inserting
// a present document only refreshes its recency.
func (c *Cache) Insert(d catalog.DocID, size int64) {
	if size <= 0 || size > c.capacity {
		return
	}
	if e, ok := c.entries[d]; ok {
		e.uses++
		c.order.MoveToFront(e.elem)
		return
	}
	for c.used+size > c.capacity {
		c.evict()
	}
	e := &entry{id: d, size: size, uses: 1}
	e.elem = c.order.PushFront(e)
	c.entries[d] = e
	c.used += size
}

// evict removes one document per policy.
func (c *Cache) evict() {
	if c.order.Len() == 0 {
		return
	}
	var victim *entry
	switch c.policy {
	case LRU:
		victim = c.order.Back().Value.(*entry)
	case LFU:
		// Scan for the lowest use count; walk back-to-front so recency
		// breaks ties toward the least recently used.
		for el := c.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if victim == nil || e.uses < victim.uses {
				victim = e
			}
		}
	}
	c.order.Remove(victim.elem)
	delete(c.entries, victim.id)
	c.used -= victim.size
}

// Len returns the number of cached documents.
func (c *Cache) Len() int { return len(c.entries) }

// UsedBytes returns the cached byte total.
func (c *Cache) UsedBytes() int64 { return c.used }

// HitRatio returns hits/(hits+misses), 0 before any lookup.
func (c *Cache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Stats returns raw hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }
