package cache

import (
	"sync"
	"testing"

	"p2pshare/internal/catalog"
)

// TestStripedSmallCapacitySingleStripe pins the degenerate case: a cache
// under one stripe budget behaves exactly like the sequential Cache
// (single stripe, same eviction order).
func TestStripedSmallCapacitySingleStripe(t *testing.T) {
	s, err := NewStriped(LRU, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.stripes) != 1 {
		t.Fatalf("capacity 30 built %d stripes, want 1", len(s.stripes))
	}
	for d := catalog.DocID(0); d < 4; d++ {
		s.Insert(d, 10)
	}
	// Capacity 30, four 10-byte docs: doc 0 (least recent) evicted.
	if s.Peek(0) {
		t.Error("LRU victim still present")
	}
	for d := catalog.DocID(1); d < 4; d++ {
		if !s.Peek(d) {
			t.Errorf("doc %d missing", d)
		}
	}
	if s.Len() != 3 || s.UsedBytes() != 30 {
		t.Errorf("len=%d used=%d, want 3/30", s.Len(), s.UsedBytes())
	}
}

// TestStripedConcurrentUse hammers one Striped cache from many
// goroutines — the race detector is the assertion; the bounds check that
// the budget held.
func TestStripedConcurrentUse(t *testing.T) {
	const capacity = 64 << 20
	s, err := NewStriped(LRU, capacity)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				d := catalog.DocID(g*1000 + i%1500)
				s.Insert(d, 4<<10)
				s.Contains(d)             // hit
				s.Contains(d + (1 << 20)) // miss (never inserted)
				s.Peek(d + 1)
			}
		}(g)
	}
	wg.Wait()
	if s.UsedBytes() > capacity {
		t.Errorf("used %d bytes over the %d budget", s.UsedBytes(), capacity)
	}
	if h, m := s.Stats(); h == 0 || m == 0 {
		t.Errorf("stats not accumulating: hits=%d misses=%d", h, m)
	}
}

// TestStripedZeroCapacity checks a disabled cache misses everything and
// ignores inserts, like the sequential Cache.
func TestStripedZeroCapacity(t *testing.T) {
	s, err := NewStriped(LFU, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(1, 100)
	if s.Peek(1) || s.Contains(1) || s.Len() != 0 {
		t.Error("zero-capacity cache retained a document")
	}
	if s.HitRatio() != 0 {
		t.Error("hit ratio non-zero after only misses")
	}
}

// TestStripedBadPolicy propagates the constructor error.
func TestStripedBadPolicy(t *testing.T) {
	if _, err := NewStriped(Policy(99), 1<<20); err == nil {
		t.Error("unknown policy accepted")
	}
}
