// Package trace records simulated network activity: an ordered message
// log with filtering for protocol debugging, and a running digest that
// fingerprints an entire run so reproducibility ("same seed, same
// execution") is checkable with a single comparison instead of a
// field-by-field diff.
package trace

import (
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"p2pshare/internal/simnet"
)

// Event is one delivered message.
type Event struct {
	Seq  int
	At   time.Duration
	From int
	To   int
	Kind string
	Size int64
}

// Recorder implements simnet.Observer: install it with
// Network.SetObserver before running.
type Recorder struct {
	// Keep controls whether full events are retained (the digest always
	// updates). Disable for long runs where only the fingerprint matters.
	Keep   bool
	events []Event
	digest uint64
	count  int
}

// NewRecorder returns a recorder that retains full events.
func NewRecorder() *Recorder { return &Recorder{Keep: true} }

// NewDigestOnly returns a recorder that only fingerprints the run.
func NewDigestOnly() *Recorder { return &Recorder{} }

var _ simnet.Observer = (*Recorder)(nil)

// OnDeliver implements simnet.Observer.
func (r *Recorder) OnDeliver(at time.Duration, from, to int, msg simnet.Message) {
	r.count++
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%s|%d", r.count, at, from, to, msg.Kind(), msg.Size())
	// Chain the digest so ordering matters.
	r.digest = r.digest*1099511628211 ^ h.Sum64()
	if r.Keep {
		r.events = append(r.events, Event{
			Seq: r.count, At: at, From: from, To: to,
			Kind: msg.Kind(), Size: msg.Size(),
		})
	}
}

// Count returns the number of recorded deliveries.
func (r *Recorder) Count() int { return r.count }

// Digest returns the run fingerprint (order-sensitive).
func (r *Recorder) Digest() uint64 { return r.digest }

// Events returns the retained events (nil when Keep is false).
func (r *Recorder) Events() []Event { return r.events }

// Filter returns the retained events matching the predicate.
func (r *Recorder) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range r.events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns the retained events of one message kind.
func (r *Recorder) ByKind(kind string) []Event {
	return r.Filter(func(e Event) bool { return e.Kind == kind })
}

// Between returns the retained events exchanged between two addresses (in
// either direction).
func (r *Recorder) Between(a, b int) []Event {
	return r.Filter(func(e Event) bool {
		return (e.From == a && e.To == b) || (e.From == b && e.To == a)
	})
}

// Dump writes a human-readable log (optionally only the first max events;
// max <= 0 means all).
func (r *Recorder) Dump(w io.Writer, max int) {
	n := len(r.events)
	if max > 0 && max < n {
		n = max
	}
	for _, e := range r.events[:n] {
		fmt.Fprintf(w, "%6d %12v %4d -> %-4d %-16s %d B\n",
			e.Seq, e.At, e.From, e.To, e.Kind, e.Size)
	}
	if n < len(r.events) {
		fmt.Fprintf(w, "... %d more\n", len(r.events)-n)
	}
}
