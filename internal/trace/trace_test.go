package trace

import (
	"strings"
	"testing"
	"time"

	"p2pshare/internal/simnet"
)

type msg struct {
	kind string
	size int64
}

func (m msg) Kind() string { return m.kind }
func (m msg) Size() int64  { return m.size }

type sink struct{}

func (sink) Deliver(*simnet.Network, int, simnet.Message) {}

func runScenario(r *Recorder, seed int64) {
	net := simnet.New(simnet.DefaultLatency, seed)
	net.SetObserver(r)
	a := net.AddProcess(sink{})
	b := net.AddProcess(sink{})
	c := net.AddProcess(sink{})
	for i := 0; i < 20; i++ {
		net.Send(a, b, msg{"ping", 10})
		net.Send(b, c, msg{"pong", 20})
	}
	net.Run(0)
}

func TestRecorderCountsAndEvents(t *testing.T) {
	r := NewRecorder()
	runScenario(r, 1)
	if r.Count() != 40 {
		t.Fatalf("count = %d, want 40", r.Count())
	}
	if len(r.Events()) != 40 {
		t.Fatalf("events = %d", len(r.Events()))
	}
	if len(r.ByKind("ping")) != 20 || len(r.ByKind("pong")) != 20 {
		t.Error("kind filter wrong")
	}
	if len(r.Between(0, 1)) != 20 || len(r.Between(2, 1)) != 20 {
		t.Error("pair filter wrong")
	}
	// Events are ordered by sequence and non-decreasing time.
	var prev time.Duration
	for i, e := range r.Events() {
		if e.Seq != i+1 {
			t.Fatalf("seq gap at %d", i)
		}
		if e.At < prev {
			t.Fatalf("time went backwards at %d", i)
		}
		prev = e.At
	}
}

func TestDigestDeterminism(t *testing.T) {
	a, b := NewDigestOnly(), NewDigestOnly()
	runScenario(a, 42)
	runScenario(b, 42)
	if a.Digest() != b.Digest() {
		t.Fatal("same seed produced different digests")
	}
	c := NewDigestOnly()
	runScenario(c, 43)
	if a.Digest() == c.Digest() {
		t.Fatal("different seeds produced identical digests")
	}
	if a.Events() != nil {
		t.Error("digest-only recorder retained events")
	}
}

func TestDigestOrderSensitive(t *testing.T) {
	// Two runs with the same multiset of messages but different order
	// must differ.
	run := func(swap bool) uint64 {
		r := NewDigestOnly()
		net := simnet.New(simnet.FixedLatency(time.Millisecond), 1)
		net.SetObserver(r)
		a := net.AddProcess(sink{})
		b := net.AddProcess(sink{})
		if swap {
			net.Send(a, b, msg{"y", 1})
			net.Send(a, b, msg{"x", 1})
		} else {
			net.Send(a, b, msg{"x", 1})
			net.Send(a, b, msg{"y", 1})
		}
		net.Run(0)
		return r.Digest()
	}
	if run(false) == run(true) {
		t.Fatal("digest insensitive to ordering")
	}
}

func TestDump(t *testing.T) {
	r := NewRecorder()
	runScenario(r, 1)
	var b strings.Builder
	r.Dump(&b, 5)
	out := b.String()
	if !strings.Contains(out, "ping") {
		t.Error("dump missing message kind")
	}
	if !strings.Contains(out, "35 more") {
		t.Errorf("dump missing truncation note:\n%s", out)
	}
	b.Reset()
	r.Dump(&b, 0)
	if strings.Contains(b.String(), "more") {
		t.Error("full dump should not truncate")
	}
}
