package gnutella

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(1, 4, rng); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := New(10, 1, rng); err == nil {
		t.Error("degree=1 should fail")
	}
}

func TestOverlayConnectedAndDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	o, err := New(500, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum degree met.
	for i := 0; i < o.N(); i++ {
		if len(o.Neighbors(i)) < 6 {
			t.Fatalf("node %d has degree %d", i, len(o.Neighbors(i)))
		}
	}
	// Connected: BFS from 0 reaches everyone.
	visited := make([]bool, o.N())
	queue := []int{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range o.Neighbors(u) {
			if !visited[v] {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	if count != o.N() {
		t.Errorf("BFS reached %d of %d nodes", count, o.N())
	}
}

func TestSearchFindsHolder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	o, err := New(300, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	holders := map[int]bool{250: true}
	res := o.Search(0, 20, holders)
	if !res.Found {
		t.Fatal("large TTL should find the holder in a connected overlay")
	}
	if res.Hops < 1 || res.Hops > 20 {
		t.Errorf("hops = %d", res.Hops)
	}
	if res.Messages == 0 {
		t.Error("flooding should cost messages")
	}
}

func TestSearchHolderIsStart(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	o, _ := New(50, 4, rng)
	res := o.Search(7, 5, map[int]bool{7: true})
	if !res.Found || res.Hops != 0 || res.Messages != 0 {
		t.Errorf("self-hit result = %+v", res)
	}
}

func TestSearchTTLGivesUp(t *testing.T) {
	// Paper §2: "a user-determined 'number-of-hops' count is reached and
	// the system gives up." A rare doc behind the TTL horizon is missed.
	rng := rand.New(rand.NewSource(5))
	o, err := New(2000, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Find a node far from 0 with a short BFS: anything not reached
	// within 2 hops.
	res2 := o.Search(0, 2, map[int]bool{})
	far := -1
	visited := make(map[int]bool)
	_ = res2
	// Recompute reachability within 2 hops.
	frontier := []int{0}
	visited[0] = true
	for d := 0; d < 2; d++ {
		var next []int
		for _, u := range frontier {
			for _, v := range o.Neighbors(u) {
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	for i := 0; i < o.N(); i++ {
		if !visited[i] {
			far = i
			break
		}
	}
	if far == -1 {
		t.Skip("overlay too dense for a 2-hop horizon")
	}
	if res := o.Search(0, 2, map[int]bool{far: true}); res.Found {
		t.Error("TTL-bounded search should miss a holder beyond the horizon")
	}
	if res := o.Search(0, o.N(), map[int]bool{far: true}); !res.Found {
		t.Error("unbounded search should find it")
	}
}

func TestSearchMessageBlowup(t *testing.T) {
	// Flooding cost grows with TTL even for misses.
	rng := rand.New(rand.NewSource(6))
	o, _ := New(1000, 5, rng)
	none := map[int]bool{}
	m2 := o.Search(0, 2, none).Messages
	m6 := o.Search(0, 6, none).Messages
	if m6 <= m2 {
		t.Errorf("messages: ttl2=%d ttl6=%d — should grow", m2, m6)
	}
}

func TestSearchDeterministic(t *testing.T) {
	o1, _ := New(200, 4, rand.New(rand.NewSource(7)))
	o2, _ := New(200, 4, rand.New(rand.NewSource(7)))
	h := map[int]bool{150: true}
	a := o1.Search(3, 10, h)
	b := o2.Search(3, 10, h)
	if a != b {
		t.Errorf("same seed produced %+v vs %+v", a, b)
	}
}
