// Package gnutella models an unstructured Gnutella-style overlay with
// TTL-bounded flooding search — the response-time comparison point of the
// paper (§2): "requests are passed from peer to peer, until either one is
// found that stores the desired document(s), or a user-determined
// 'number-of-hops' count is reached and the system gives up."
package gnutella

import (
	"fmt"
	"math/rand"
)

// Overlay is a random connected overlay of n nodes with average degree d.
type Overlay struct {
	adj [][]int
}

// New builds a connected random overlay: a ring (connectivity) plus random
// chords up to the requested degree, mirroring measured Gnutella
// topologies' low diameter.
func New(n, degree int, rng *rand.Rand) (*Overlay, error) {
	if n < 2 {
		return nil, fmt.Errorf("gnutella: need at least 2 nodes, got %d", n)
	}
	if degree < 2 {
		return nil, fmt.Errorf("gnutella: degree must be >= 2, got %d", degree)
	}
	o := &Overlay{adj: make([][]int, n)}
	link := func(a, b int) {
		if a == b {
			return
		}
		for _, x := range o.adj[a] {
			if x == b {
				return
			}
		}
		o.adj[a] = append(o.adj[a], b)
		o.adj[b] = append(o.adj[b], a)
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		for len(o.adj[i]) < degree {
			link(i, rng.Intn(n))
		}
	}
	return o, nil
}

// N returns the node count.
func (o *Overlay) N() int { return len(o.adj) }

// Neighbors returns a node's adjacency list (live slice; do not mutate).
func (o *Overlay) Neighbors(n int) []int { return o.adj[n] }

// SearchResult reports one flooding search.
type SearchResult struct {
	// Found is true if any holder was reached within the TTL.
	Found bool
	// Hops is the hop count at which the first holder was reached
	// (meaningful only when Found).
	Hops int
	// Messages is the total number of query messages sent — the
	// flooding cost.
	Messages int
	// Reached is the number of distinct nodes that processed the query.
	Reached int
}

// Search floods a query from start with the given TTL, looking for any
// node in holders. It performs a breadth-first traversal, which is exactly
// what synchronized flooding with duplicate suppression delivers.
func (o *Overlay) Search(start, ttl int, holders map[int]bool) SearchResult {
	res := SearchResult{}
	if holders[start] {
		return SearchResult{Found: true, Hops: 0, Messages: 0, Reached: 1}
	}
	visited := make([]bool, len(o.adj))
	visited[start] = true
	res.Reached = 1
	frontier := []int{start}
	for depth := 1; depth <= ttl && len(frontier) > 0; depth++ {
		var next []int
		for _, u := range frontier {
			for _, v := range o.adj[u] {
				res.Messages++ // every forwarded copy costs a message
				if visited[v] {
					continue
				}
				visited[v] = true
				res.Reached++
				if holders[v] && !res.Found {
					res.Found = true
					res.Hops = depth
					// Keep flooding this depth: Gnutella has no
					// early-termination broadcast; the remaining copies
					// of this wave were already sent.
				}
				next = append(next, v)
			}
		}
		if res.Found {
			return res
		}
		frontier = next
	}
	return res
}
