// Package baseline implements comparison category→cluster assigners.
//
// The paper argues (§2) that DHT-based systems address load balancing
// "in a rather naive way simply by resorting to the uniformity of the hash
// function utilized". HashAssign reproduces that policy; Random,
// RoundRobin, and LPT are the standard partitioning strawmen a load
// balancer must beat.
package baseline

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math/rand"

	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/model"
)

// run assigns each category per pick and evaluates the result with the
// same ICLB state machinery MaxFair uses, so fairness numbers are directly
// comparable.
func run(inst *model.Instance, pick func(cat catalog.CategoryID) model.ClusterID) (*core.Result, error) {
	st, err := core.NewState(inst)
	if err != nil {
		return nil, err
	}
	for c := 0; c < st.NumCategories(); c++ {
		if err := st.Assign(catalog.CategoryID(c), pick(catalog.CategoryID(c))); err != nil {
			return nil, err
		}
	}
	return &core.Result{
		Assignment:             st.Assignment(),
		Fairness:               st.Fairness(),
		NormalizedPopularities: st.NormalizedPopularities(),
		State:                  st,
	}, nil
}

// HashAssign maps each category to cluster SHA1(category id) mod |C| —
// the uniform-hash placement of DHT overlays (Chord/CAN/Pastry/Tapestry).
func HashAssign(inst *model.Instance) (*core.Result, error) {
	n := inst.NumClusters
	return run(inst, func(cat catalog.CategoryID) model.ClusterID {
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(cat))
		sum := sha1.Sum(buf[:])
		return model.ClusterID(binary.BigEndian.Uint32(sum[:4]) % uint32(n))
	})
}

// RandomAssign places each category on a uniformly random cluster.
func RandomAssign(inst *model.Instance, rng *rand.Rand) (*core.Result, error) {
	n := inst.NumClusters
	return run(inst, func(catalog.CategoryID) model.ClusterID {
		return model.ClusterID(rng.Intn(n))
	})
}

// RoundRobinAssign deals categories to clusters in id order.
func RoundRobinAssign(inst *model.Instance) (*core.Result, error) {
	n := inst.NumClusters
	return run(inst, func(cat catalog.CategoryID) model.ClusterID {
		return model.ClusterID(int(cat) % n)
	})
}

// LPTAssign is the classic longest-processing-time-first heuristic for
// makespan minimization, adapted to ICLB: categories in descending
// popularity order, each placed on the cluster with the lowest current
// normalized popularity. It differs from MaxFair in its objective (min
// load, not max fairness index).
func LPTAssign(inst *model.Instance) (*core.Result, error) {
	st, err := core.NewState(inst)
	if err != nil {
		return nil, err
	}
	order := make([]catalog.CategoryID, st.NumCategories())
	for i := range order {
		order[i] = catalog.CategoryID(i)
	}
	// Descending popularity, stable on ties for determinism.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && st.CategoryPopularity(order[j]) > st.CategoryPopularity(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, cat := range order {
		xs := st.NormalizedPopularities()
		best := 0
		for c := 1; c < len(xs); c++ {
			if xs[c] < xs[best] {
				best = c
			}
		}
		if err := st.Assign(cat, model.ClusterID(best)); err != nil {
			return nil, err
		}
	}
	return &core.Result{
		Assignment:             st.Assignment(),
		Fairness:               st.Fairness(),
		NormalizedPopularities: st.NormalizedPopularities(),
		State:                  st,
	}, nil
}

// Name identifies a baseline for reports.
type Name string

// Baseline assigner names as used in experiment reports.
const (
	NameMaxFair    Name = "maxfair"
	NameHash       Name = "hash"
	NameRandom     Name = "random"
	NameRoundRobin Name = "round-robin"
	NameLPT        Name = "lpt"
)

// Run dispatches a baseline by name; rng is only used by NameRandom.
// NameMaxFair runs core.MaxFair with default options so comparisons share
// one entry point.
func Run(name Name, inst *model.Instance, rng *rand.Rand) (*core.Result, error) {
	switch name {
	case NameMaxFair:
		return core.MaxFair(inst, core.Options{})
	case NameHash:
		return HashAssign(inst)
	case NameRandom:
		if rng == nil {
			return nil, fmt.Errorf("baseline: %q requires an rng", name)
		}
		return RandomAssign(inst, rng)
	case NameRoundRobin:
		return RoundRobinAssign(inst)
	case NameLPT:
		return LPTAssign(inst)
	default:
		return nil, fmt.Errorf("baseline: unknown assigner %q", name)
	}
}
