package baseline

import (
	"math/rand"
	"testing"

	"p2pshare/internal/model"
)

func testInstance(t testing.TB) *model.Instance {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 3000
	cfg.Catalog.NumCats = 60
	cfg.NumNodes = 300
	cfg.NumClusters = 12
	cfg.Seed = 100
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func assertComplete(t *testing.T, inst *model.Instance, assign []model.ClusterID) {
	t.Helper()
	if len(assign) != inst.CatCount() {
		t.Fatalf("assignment covers %d of %d categories", len(assign), inst.CatCount())
	}
	for c, cl := range assign {
		if cl == model.NoCluster || int(cl) >= inst.NumClusters {
			t.Fatalf("category %d on cluster %d", c, cl)
		}
	}
}

func TestHashAssign(t *testing.T) {
	inst := testInstance(t)
	res, err := HashAssign(inst)
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, inst, res.Assignment)
	// Hash placement is deterministic.
	res2, _ := HashAssign(inst)
	for c := range res.Assignment {
		if res.Assignment[c] != res2.Assignment[c] {
			t.Fatal("hash assignment not deterministic")
		}
	}
}

func TestRandomAssign(t *testing.T) {
	inst := testInstance(t)
	res, err := RandomAssign(inst, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, inst, res.Assignment)
}

func TestRoundRobinAssign(t *testing.T) {
	inst := testInstance(t)
	res, err := RoundRobinAssign(inst)
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, inst, res.Assignment)
	for c, cl := range res.Assignment {
		if int(cl) != c%inst.NumClusters {
			t.Fatalf("round robin put category %d on %d", c, cl)
		}
	}
}

func TestLPTAssign(t *testing.T) {
	inst := testInstance(t)
	res, err := LPTAssign(inst)
	if err != nil {
		t.Fatal(err)
	}
	assertComplete(t, inst, res.Assignment)
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Errorf("LPT fairness %g out of range", res.Fairness)
	}
}

func TestMaxFairBeatsNaiveBaselines(t *testing.T) {
	// The paper's core claim vs DHT-style systems (§2): hash-uniform
	// placement balances load naively; MaxFair does strictly better on
	// skewed category popularities.
	inst := testInstance(t)
	rng := rand.New(rand.NewSource(2))
	mf, err := Run(NameMaxFair, inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []Name{NameHash, NameRandom, NameRoundRobin} {
		res, err := Run(name, inst, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fairness >= mf.Fairness {
			t.Errorf("%s fairness %g >= MaxFair %g", name, res.Fairness, mf.Fairness)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	inst := testInstance(t)
	rng := rand.New(rand.NewSource(3))
	for _, name := range []Name{NameMaxFair, NameHash, NameRandom, NameRoundRobin, NameLPT} {
		res, err := Run(name, inst, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertComplete(t, inst, res.Assignment)
	}
	if _, err := Run("bogus", inst, rng); err == nil {
		t.Error("unknown baseline should fail")
	}
	if _, err := Run(NameRandom, inst, nil); err == nil {
		t.Error("random without rng should fail")
	}
}
