package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPopularitiesNormalized(t *testing.T) {
	for _, n := range []int{1, 2, 100, 10000} {
		for _, theta := range []float64{0, 0.4, 0.7, 0.8, 1, 1.5} {
			p := Popularities(n, theta)
			var sum float64
			for _, x := range p {
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("Popularities(%d, %g) sums to %g", n, theta, sum)
			}
		}
	}
}

func TestPopularitiesMonotone(t *testing.T) {
	p := Popularities(1000, 0.8)
	for i := 1; i < len(p); i++ {
		if p[i] > p[i-1] {
			t.Fatalf("pmf not non-increasing at %d: %g > %g", i, p[i], p[i-1])
		}
	}
}

func TestPopularitiesUniform(t *testing.T) {
	p := Popularities(10, 0)
	for i, x := range p {
		if math.Abs(x-0.1) > 1e-12 {
			t.Errorf("uniform pmf[%d] = %g, want 0.1", i, x)
		}
	}
	u := Uniform(10)
	for i := range u {
		if u[i] != p[i] {
			t.Errorf("Uniform != Popularities(theta=0) at %d", i)
		}
	}
}

func TestPopularitiesKnownRatios(t *testing.T) {
	// With theta=1, p(rank0)/p(rank1) should be exactly 2.
	p := Popularities(10, 1)
	if r := p[0] / p[1]; math.Abs(r-2) > 1e-12 {
		t.Errorf("theta=1 rank ratio = %g, want 2", r)
	}
}

func TestPopularitiesPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Popularities(0, 0.5) },
		func() { Popularities(-3, 0.5) },
		func() { Popularities(5, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPopularitiesNormalizedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		theta := r.Float64() * 2
		p := Popularities(n, theta)
		var sum float64
		prev := math.Inf(1)
		for _, x := range p {
			if x <= 0 || x > prev {
				return false
			}
			prev = x
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoverageCount(t *testing.T) {
	p := []float64{0.5, 0.3, 0.2}
	cases := []struct {
		mass float64
		want int
	}{
		{0.4, 1},
		{0.5, 1},
		{0.6, 2},
		{0.8, 2},
		{0.9, 3},
		{1.0, 3},
	}
	for _, c := range cases {
		if got := CoverageCount(p, c.mass); got != c.want {
			t.Errorf("CoverageCount(%g) = %d, want %d", c.mass, got, c.want)
		}
	}
}

func TestCoverageCountPaperClaim(t *testing.T) {
	// Paper §4.3.3: "less than 10% of all documents typically total more
	// than 35% of the document probability mass for practically all
	// realistic different Zipf distributions."
	for _, theta := range []float64{0.6, 0.7, 0.8} {
		for _, n := range []int{1000, 10000, 200000} {
			p := Popularities(n, theta)
			k := CoverageCount(p, 0.35)
			if frac := float64(k) / float64(n); frac >= 0.10 {
				t.Errorf("theta=%g n=%d: %.1f%% of docs needed for 35%% mass, paper claims <10%%",
					theta, n, frac*100)
			}
		}
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := Popularities(50, 0.8)
	s := NewSampler(w)
	const draws = 500000
	counts := make([]int, 50)
	for i := 0; i < draws; i++ {
		counts[s.Sample(rng)]++
	}
	for i, want := range w {
		got := float64(counts[i]) / draws
		// 3-sigma-ish tolerance on a binomial proportion.
		tol := 4*math.Sqrt(want*(1-want)/draws) + 1e-4
		if math.Abs(got-want) > tol {
			t.Errorf("item %d: empirical %g, want %g (tol %g)", i, got, want, tol)
		}
	}
}

func TestSamplerUnnormalizedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSampler([]float64{2, 6}) // 25% / 75%
	const draws = 200000
	var ones int
	for i := 0; i < draws; i++ {
		if s.Sample(rng) == 1 {
			ones++
		}
	}
	got := float64(ones) / draws
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("P(1) = %g, want 0.75", got)
	}
}

func TestSamplerZeroWeightNeverDrawn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSampler([]float64{1, 0, 1})
	for i := 0; i < 10000; i++ {
		if s.Sample(rng) == 1 {
			t.Fatal("zero-weight item sampled")
		}
	}
}

func TestSamplerSingleItem(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSampler([]float64{3})
	if s.N() != 1 {
		t.Fatalf("N = %d, want 1", s.N())
	}
	for i := 0; i < 100; i++ {
		if got := s.Sample(rng); got != 0 {
			t.Fatalf("Sample = %d, want 0", got)
		}
	}
}

func TestSamplerPanics(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for weights %v", w)
				}
			}()
			NewSampler(w)
		}()
	}
}

func TestSamplerAlwaysInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64()
		}
		w[r.Intn(n)] += 0.5
		s := NewSampler(w)
		for i := 0; i < 200; i++ {
			k := s.Sample(r)
			if k < 0 || k >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSampler(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewSampler(Popularities(200000, 0.8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng)
	}
}
