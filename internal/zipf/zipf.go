// Package zipf provides ranked Zipf popularity distributions and samplers.
//
// The paper assumes document popularities follow a Zipf distribution, as
// observed for web objects [19, 31] and P2P content [17]: the i-th most
// popular of n items has probability proportional to 1/i^θ, with realistic
// θ between 0.6 and 0.8 (paper §4.4 uses θ_doc = 0.8 and θ_cat = 0.7).
//
// All randomness is driven by caller-supplied *rand.Rand so experiments are
// reproducible.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
)

// Popularities returns the ranked Zipf probability mass function over n
// items with parameter theta: p(i) ∝ 1/(i+1)^theta, normalized to sum to 1.
// theta = 0 yields the uniform distribution. It panics if n <= 0 or
// theta < 0; popularity ranks are 0-indexed (rank 0 is the most popular).
func Popularities(n int, theta float64) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("zipf: n must be positive, got %d", n))
	}
	if theta < 0 {
		panic(fmt.Sprintf("zipf: theta must be non-negative, got %g", theta))
	}
	p := make([]float64, n)
	var sum float64
	for i := range p {
		p[i] = 1 / math.Pow(float64(i+1), theta)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// Uniform returns the uniform pmf over n items. It panics if n <= 0.
func Uniform(n int) []float64 {
	return Popularities(n, 0)
}

// CoverageCount returns the smallest number of top-ranked items whose
// cumulative probability reaches at least mass (0 < mass <= 1) under pmf p,
// assuming p is sorted in descending order (as Popularities returns).
// The paper (§4.3.3) observes that for realistic Zipf distributions fewer
// than 10% of documents cover more than 35% of the probability mass; this
// helper verifies that claim.
func CoverageCount(p []float64, mass float64) int {
	var cum float64
	for i, x := range p {
		cum += x
		if cum >= mass {
			return i + 1
		}
	}
	return len(p)
}

// Sampler draws item indices from an arbitrary discrete distribution in
// O(1) per sample using Walker's alias method. It is safe for sequential
// use only; guard with your own lock or use per-goroutine samplers.
type Sampler struct {
	prob  []float64
	alias []int
}

// NewSampler builds an alias-method sampler over the weights w (need not be
// normalized). It panics if w is empty, contains a negative weight, or sums
// to zero.
func NewSampler(w []float64) *Sampler {
	n := len(w)
	if n == 0 {
		panic("zipf: NewSampler needs at least one weight")
	}
	var sum float64
	for i, x := range w {
		if x < 0 {
			panic(fmt.Sprintf("zipf: negative weight %g at index %d", x, i))
		}
		sum += x
	}
	if sum == 0 {
		panic("zipf: weights sum to zero")
	}
	s := &Sampler{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scale weights so the average bucket holds probability exactly 1.
	scaled := make([]float64, n)
	for i, x := range w {
		scaled[i] = x * float64(n) / sum
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, x := range scaled {
		if x < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] -= 1 - scaled[l]
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
		s.alias[i] = i
	}
	for _, i := range small {
		// Only reachable through fp round-off; these buckets are ~1.
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s
}

// N returns the number of items the sampler draws from.
func (s *Sampler) N() int { return len(s.prob) }

// Sample draws one item index using rng.
func (s *Sampler) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}
