package fairness

import (
	"math"
	"sort"
)

// Alternative fairness/inequality metrics for the paper's §7(v) open
// question ("alternative definitions/metrics for fairness and related
// algorithms"). All follow the economics conventions: 0 = perfect
// equality; larger = more unequal. Jain's index runs the other way
// (1 = fair), so comparisons in the experiments convert as needed.

// Gini returns the Gini coefficient of xs (0 = equality, →1 = one holder
// takes all). Negative values are not meaningful for loads; inputs are
// assumed non-negative. Empty or zero-total input returns 0.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var total, weighted float64
	for i, x := range sorted {
		total += x
		weighted += float64(i+1) * x
	}
	if total == 0 {
		return 0
	}
	// G = (2·Σ i·x_(i))/(n·Σx) − (n+1)/n
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

// Theil returns the Theil T index (0 = equality, ln(n) = one holder takes
// all). Zero entries contribute zero (lim x→0 of x·ln x = 0).
func Theil(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	var total float64
	for _, x := range xs {
		total += x
	}
	if total == 0 {
		return 0
	}
	mean := total / float64(n)
	var t float64
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		r := x / mean
		t += r * math.Log(r)
	}
	return t / float64(n)
}

// Atkinson returns the Atkinson index with inequality aversion epsilon
// (commonly 0.5 or 1). 0 = equality; →1 = maximal inequality. epsilon
// must be positive; epsilon = 1 uses the geometric-mean form. Zero
// entries with epsilon >= 1 drive the index to 1 (a zero allocation is
// maximally unequal under strong aversion).
func Atkinson(xs []float64, epsilon float64) float64 {
	n := len(xs)
	if n == 0 || epsilon <= 0 {
		return 0
	}
	var total float64
	for _, x := range xs {
		total += x
	}
	if total == 0 {
		return 0
	}
	mean := total / float64(n)
	if epsilon == 1 {
		// 1 − (Π x_i)^(1/n) / mean
		var logSum float64
		for _, x := range xs {
			if x <= 0 {
				return 1
			}
			logSum += math.Log(x)
		}
		return 1 - math.Exp(logSum/float64(n))/mean
	}
	var s float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		s += math.Pow(x, 1-epsilon)
	}
	ede := math.Pow(s/float64(n), 1/(1-epsilon))
	return 1 - ede/mean
}

// Rank orders allocation indices from fairest to least fair under a
// metric where SMALLER is fairer (Gini/Theil/Atkinson) — pass negated
// Jain values to rank by Jain. Ties keep input order.
func Rank(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	return idx
}
