package fairness

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGiniKnownValues(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); !almostEqual(g, 0, 1e-12) {
		t.Errorf("Gini(uniform) = %g", g)
	}
	// One of n holds all: G = (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 8}); !almostEqual(g, 0.75, 1e-12) {
		t.Errorf("Gini(single holder of 4) = %g, want 0.75", g)
	}
	if g := Gini(nil); g != 0 {
		t.Errorf("Gini(nil) = %g", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Errorf("Gini(zeros) = %g", g)
	}
}

func TestTheilKnownValues(t *testing.T) {
	if th := Theil([]float64{2, 2, 2}); !almostEqual(th, 0, 1e-12) {
		t.Errorf("Theil(uniform) = %g", th)
	}
	// One of n holds all: T = ln(n).
	if th := Theil([]float64{0, 0, 0, 4}); !almostEqual(th, math.Log(4), 1e-12) {
		t.Errorf("Theil(single of 4) = %g, want ln4=%g", th, math.Log(4))
	}
}

func TestAtkinsonKnownValues(t *testing.T) {
	if a := Atkinson([]float64{3, 3, 3}, 0.5); !almostEqual(a, 0, 1e-12) {
		t.Errorf("Atkinson(uniform) = %g", a)
	}
	if a := Atkinson([]float64{3, 3, 3}, 1); !almostEqual(a, 0, 1e-12) {
		t.Errorf("Atkinson eps=1 (uniform) = %g", a)
	}
	// A zero entry under eps=1 drives the index to 1.
	if a := Atkinson([]float64{0, 5}, 1); a != 1 {
		t.Errorf("Atkinson eps=1 with zero = %g, want 1", a)
	}
	if a := Atkinson([]float64{1, 2}, 0); a != 0 {
		t.Errorf("Atkinson eps=0 = %g, want 0 (invalid aversion)", a)
	}
}

func TestMetricsBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		g := Gini(xs)
		th := Theil(xs)
		a := Atkinson(xs, 0.5)
		return g >= -1e-12 && g < 1 &&
			th >= -1e-12 && th <= math.Log(float64(n))+1e-9 &&
			a >= -1e-12 && a < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMetricsScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		c := 0.1 + rng.Float64()*50
		for i := range xs {
			xs[i] = rng.Float64() + 0.01
			ys[i] = xs[i] * c
		}
		return almostEqual(Gini(xs), Gini(ys), 1e-9) &&
			almostEqual(Theil(xs), Theil(ys), 1e-9) &&
			almostEqual(Atkinson(xs, 0.5), Atkinson(ys, 0.5), 1e-9) &&
			almostEqual(Atkinson(xs, 1), Atkinson(ys, 1), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransferPrincipleProperty(t *testing.T) {
	// Pigou–Dalton: moving load from a lighter to a heavier holder must
	// not decrease any inequality metric (and must not increase Jain).
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(15)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() + 0.05
		}
		lo, hi := 0, 0
		for i := range xs {
			if xs[i] < xs[lo] {
				lo = i
			}
			if xs[i] > xs[hi] {
				hi = i
			}
		}
		if lo == hi {
			continue
		}
		ys := append([]float64(nil), xs...)
		d := ys[lo] * rng.Float64() * 0.9
		ys[lo] -= d
		ys[hi] += d
		if Gini(ys) < Gini(xs)-1e-9 {
			t.Fatalf("Gini fell after regressive transfer")
		}
		if Theil(ys) < Theil(xs)-1e-9 {
			t.Fatalf("Theil fell after regressive transfer")
		}
		if Atkinson(ys, 0.5) < Atkinson(xs, 0.5)-1e-9 {
			t.Fatalf("Atkinson fell after regressive transfer")
		}
		if Jain(ys) > Jain(xs)+1e-9 {
			t.Fatalf("Jain rose after regressive transfer")
		}
	}
}

func TestRank(t *testing.T) {
	// Smaller is fairer: scores 0.3, 0.1, 0.2 rank as 1, 2, 0.
	got := Rank([]float64{0.3, 0.1, 0.2})
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
	if len(Rank(nil)) != 0 {
		t.Error("Rank(nil) should be empty")
	}
}
