package fairness

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// sanitize maps an arbitrary quick-generated float into a well-behaved
// non-negative load value (no NaN/Inf, bounded magnitude so x² can't
// overflow and swamp the summations).
func sanitize(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 1
	}
	return math.Mod(math.Abs(v), 1e6)
}

func TestJainUniformIsOne(t *testing.T) {
	for _, n := range []int{1, 2, 10, 1000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 3.7
		}
		if f := Jain(xs); !almostEqual(f, 1, 1e-12) {
			t.Errorf("Jain(uniform %d) = %g, want 1", n, f)
		}
	}
}

func TestJainSingleHolder(t *testing.T) {
	// One individual holds everything: index should be 1/n.
	xs := make([]float64, 10)
	xs[3] = 42
	if f := Jain(xs); !almostEqual(f, 0.1, 1e-12) {
		t.Errorf("Jain(single holder of 10) = %g, want 0.1", f)
	}
}

func TestJainEdgeCases(t *testing.T) {
	if f := Jain(nil); f != 1 {
		t.Errorf("Jain(nil) = %g, want 1", f)
	}
	if f := Jain([]float64{0, 0, 0}); f != 1 {
		t.Errorf("Jain(zeros) = %g, want 1", f)
	}
	if f := Jain([]float64{5}); f != 1 {
		t.Errorf("Jain(one element) = %g, want 1", f)
	}
}

func TestJainKnownValue(t *testing.T) {
	// Classic example from Jain/Chiu/Hawe: x = (1,1,1,0,...) over n.
	// f = k/n when k of n individuals share equally and the rest get 0.
	xs := []float64{1, 1, 1, 0, 0}
	if f := Jain(xs); !almostEqual(f, 0.6, 1e-12) {
		t.Errorf("Jain(3 of 5 equal) = %g, want 0.6", f)
	}
}

func TestJainBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = sanitize(v)
		}
		j := Jain(xs)
		return j >= 0 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJainScaleInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		c := 0.1 + r.Float64()*100
		for i := range xs {
			xs[i] = r.Float64() * 10
			ys[i] = xs[i] * c
		}
		return almostEqual(Jain(xs), Jain(ys), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestJainLowerBoundIsOneOverN(t *testing.T) {
	// For non-negative allocations with positive total, Jain >= 1/n.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		xs[rng.Intn(n)] += 0.5 // ensure positive total
		if f := Jain(xs); f < 1/float64(n)-1e-12 {
			t.Fatalf("Jain = %g < 1/n = %g for %v", f, 1/float64(n), xs)
		}
	}
}

func TestCoV(t *testing.T) {
	if c := CoV([]float64{5, 5, 5}); !almostEqual(c, 0, 1e-12) {
		t.Errorf("CoV(uniform) = %g, want 0", c)
	}
	// x = {0, 2}: mean 1, stddev 1 -> CoV 1.
	if c := CoV([]float64{0, 2}); !almostEqual(c, 1, 1e-12) {
		t.Errorf("CoV({0,2}) = %g, want 1", c)
	}
	if c := CoV(nil); c != 0 {
		t.Errorf("CoV(nil) = %g, want 0", c)
	}
}

func TestMinMaxRatio(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 4}, 0.25},
		{[]float64{3, 3}, 1},
		{[]float64{0, 0}, 1},
		{nil, 1},
		{[]float64{0, 5}, 0},
	}
	for _, c := range cases {
		if got := MinMaxRatio(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("MinMaxRatio(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestLorenz(t *testing.T) {
	l := Lorenz([]float64{1, 1, 2})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if !almostEqual(l[i], want[i], 1e-12) {
			t.Errorf("Lorenz[%d] = %g, want %g", i, l[i], want[i])
		}
	}
	if Lorenz(nil) != nil {
		t.Error("Lorenz(nil) should be nil")
	}
	zero := Lorenz([]float64{0, 0})
	if !almostEqual(zero[0], 0.5, 1e-12) || !almostEqual(zero[1], 1, 1e-12) {
		t.Errorf("Lorenz(zeros) = %v, want diagonal", zero)
	}
}

func TestLorenzMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = sanitize(v)
		}
		l := Lorenz(xs)
		for i := 1; i < len(l); i++ {
			if l[i] < l[i-1]-1e-12 {
				return false
			}
		}
		if n := len(l); n > 0 && !almostEqual(l[n-1], 1, 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMajorizes(t *testing.T) {
	// (1,0) majorizes (0.5,0.5): the concentrated allocation dominates.
	if !Majorizes([]float64{1, 0}, []float64{0.5, 0.5}) {
		t.Error("concentrated should majorize uniform")
	}
	if Majorizes([]float64{0.5, 0.5}, []float64{1, 0}) {
		t.Error("uniform should not majorize concentrated")
	}
	// Every allocation majorizes itself.
	if !Majorizes([]float64{3, 1, 2}, []float64{1, 2, 3}) {
		t.Error("permutations should majorize each other")
	}
	if Majorizes([]float64{1}, []float64{1, 0}) {
		t.Error("length mismatch should be false")
	}
	if Majorizes([]float64{0, 0}, []float64{0, 0}) {
		t.Error("zero totals cannot be compared")
	}
}

func TestMajorizesImpliesLowerJain(t *testing.T) {
	// If a majorizes b (and they're not permutations), Jain(a) <= Jain(b):
	// Jain is Schur-concave. Verify on random pairs built by transfers.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64() + 0.01
		}
		// Robin Hood in reverse: move mass from a poorer to a richer index
		// to construct a that majorizes b.
		a := append([]float64(nil), b...)
		lo, hi := 0, 0
		for i := range a {
			if a[i] < a[lo] {
				lo = i
			}
			if a[i] > a[hi] {
				hi = i
			}
		}
		if lo == hi {
			continue
		}
		d := a[lo] * rng.Float64()
		a[lo] -= d
		a[hi] += d
		if !Majorizes(a, b) {
			t.Fatalf("constructed a should majorize b: a=%v b=%v", a, b)
		}
		if Jain(a) > Jain(b)+1e-9 {
			t.Fatalf("majorizing allocation should have lower Jain: %g > %g", Jain(a), Jain(b))
		}
	}
}

func TestTrackerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		tr := NewTracker(n)
		for step := 0; step < 50; step++ {
			i := rng.Intn(n)
			nv := rng.Float64() * 10
			tr.Update(xs[i], nv)
			xs[i] = nv
			if got, want := tr.Index(), Jain(xs); !almostEqual(got, want, 1e-9) {
				t.Fatalf("tracker index %g != batch %g after %d steps", got, want, step)
			}
		}
	}
}

func TestTrackerFrom(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tr := NewTrackerFrom(xs)
	if got, want := tr.Index(), Jain(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("NewTrackerFrom index = %g, want %g", got, want)
	}
	if tr.N() != 4 {
		t.Errorf("N = %d, want 4", tr.N())
	}
}

func TestTrackerProbeDoesNotMutate(t *testing.T) {
	xs := []float64{1, 2, 3}
	tr := NewTrackerFrom(xs)
	before := tr.Index()
	got := tr.Probe(2, 9)
	xs2 := []float64{1, 9, 3}
	if want := Jain(xs2); !almostEqual(got, want, 1e-12) {
		t.Errorf("Probe = %g, want %g", got, want)
	}
	if after := tr.Index(); !almostEqual(before, after, 1e-15) {
		t.Errorf("Probe mutated tracker: %g -> %g", before, after)
	}
}

func TestTrackerProbe2(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tr := NewTrackerFrom(xs)
	got := tr.Probe2(2, 5, 4, 1)
	want := Jain([]float64{1, 5, 3, 1})
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("Probe2 = %g, want %g", got, want)
	}
}

func TestTrackerProbeEqualsUpdateProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		tr := NewTrackerFrom(xs)
		i := r.Intn(n)
		nv := r.Float64() * 5
		probed := tr.Probe(xs[i], nv)
		tr.Update(xs[i], nv)
		return almostEqual(probed, tr.Index(), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
