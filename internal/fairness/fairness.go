// Package fairness implements fairness metrics for load distributions.
//
// The central metric is the fairness index of Jain, Chiu and Hawe
// (DEC-TR-301, 1984), which the paper adopts as its load-balancing
// objective (paper §4.2):
//
//	fairness(x) = (Σ x_i)² / (n · Σ x_i²)
//
// The index is always in [0, 1]; 1 means a perfectly even allocation and a
// value of f roughly means the allocation is fair for a fraction f of the
// individuals. The package also provides the incremental Tracker used by
// the MaxFair algorithms to evaluate candidate assignments in O(1), plus
// auxiliary metrics (coefficient of variation, min/max ratio, Lorenz curve,
// majorization) referenced by the paper's discussion of fairness [24, 25].
package fairness

import (
	"math"
	"sort"
)

// Jain returns the Jain/Chiu/Hawe fairness index of xs.
//
// By convention an empty or all-zero allocation is perfectly fair: every
// individual holds the same (zero) amount, so Jain returns 1.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sum2 float64
	for _, x := range xs {
		sum += x
		sum2 += x * x
	}
	if sum2 == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sum2)
}

// CoV returns the coefficient of variation (stddev/mean) of xs, a common
// alternative dispersion metric. It returns 0 for empty or zero-mean input.
func CoV(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// MinMaxRatio returns min(xs)/max(xs), the crudest balance indicator.
// It returns 1 for empty input and 0 when max is 0 but some... max==0 implies
// all zero (loads are non-negative), which reports 1.
func MinMaxRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max == 0 {
		return 1
	}
	return min / max
}

// Lorenz returns the Lorenz curve of xs: point i (1-indexed fractions) is
// the cumulative share of the total held by the smallest i values. The
// result has len(xs) points and is non-decreasing with Lorenz[n-1] == 1
// (for a non-zero total). A perfectly fair allocation yields the diagonal.
func Lorenz(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var total float64
	for _, x := range sorted {
		total += x
	}
	out := make([]float64, len(sorted))
	if total == 0 {
		// Degenerate: report the diagonal (perfect equality of zeros).
		for i := range out {
			out[i] = float64(i+1) / float64(len(sorted))
		}
		return out
	}
	var cum float64
	for i, x := range sorted {
		cum += x
		out[i] = cum / total
	}
	return out
}

// Majorizes reports whether allocation a majorizes allocation b: both are
// normalized to unit total and compared by descending prefix sums. If a
// majorizes b, then b is at least as fair as a under every Schur-convex
// unfairness measure — the stricter comparison the paper's follow-up work
// adopts from Bhargava/Goel/Meyerson [24]. Slices must have equal length;
// mismatched lengths report false.
func Majorizes(a, b []float64) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	pa := descendingNormalized(a)
	pb := descendingNormalized(b)
	if pa == nil || pb == nil {
		return false
	}
	var ca, cb float64
	for i := range pa {
		ca += pa[i]
		cb += pb[i]
		// Prefix sums of a must dominate those of b (within fp slack).
		if ca < cb-1e-12 {
			return false
		}
	}
	return true
}

func descendingNormalized(xs []float64) []float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	if total == 0 {
		return nil
	}
	out := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	for i := range out {
		out[i] /= total
	}
	return out
}

// Tracker maintains the Jain fairness index of a fixed-size allocation
// under point updates in O(1). It is the workhorse behind MaxFair's
// candidate evaluation: Probe answers "what would the index become if
// element i changed from old to new" without mutating state.
type Tracker struct {
	n    int
	sum  float64
	sum2 float64
}

// NewTracker returns a tracker over n individuals all starting at 0.
func NewTracker(n int) *Tracker {
	return &Tracker{n: n}
}

// NewTrackerFrom returns a tracker primed with the given allocation.
func NewTrackerFrom(xs []float64) *Tracker {
	t := &Tracker{n: len(xs)}
	for _, x := range xs {
		t.sum += x
		t.sum2 += x * x
	}
	return t
}

// N returns the number of individuals tracked.
func (t *Tracker) N() int { return t.n }

// Update records that one individual's value changed from old to new.
func (t *Tracker) Update(old, new float64) {
	t.sum += new - old
	t.sum2 += new*new - old*old
}

// Index returns the current fairness index.
func (t *Tracker) Index() float64 {
	return jainFromSums(t.n, t.sum, t.sum2)
}

// Probe returns the fairness index that would result if one individual's
// value changed from old to new, without applying the change.
func (t *Tracker) Probe(old, new float64) float64 {
	return jainFromSums(t.n, t.sum+new-old, t.sum2+new*new-old*old)
}

// Probe2 returns the fairness index that would result from two simultaneous
// point changes (used when moving a category between two clusters).
func (t *Tracker) Probe2(old1, new1, old2, new2 float64) float64 {
	sum := t.sum + new1 - old1 + new2 - old2
	sum2 := t.sum2 + new1*new1 - old1*old1 + new2*new2 - old2*old2
	return jainFromSums(t.n, sum, sum2)
}

func jainFromSums(n int, sum, sum2 float64) float64 {
	if n == 0 || sum2 <= 0 {
		return 1
	}
	f := sum * sum / (float64(n) * sum2)
	// Guard against fp drift pushing the index a hair outside [0, 1].
	if f > 1 {
		f = 1
	}
	if f < 0 {
		f = 0
	}
	return f
}
