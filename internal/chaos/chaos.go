// Package chaos is a seeded, deterministic fault-injection layer for the
// live network: middleware that wraps the dial side of every directed
// peer link and applies per-link drop, delay, duplication, reordering,
// bandwidth caps, asymmetric partitions, and byte-level frame
// corruption. It is the repro tooling the livenet protocols are tested
// against — Jepsen-style scripted faults, but in-process and replayable.
//
// Determinism. Every fault decision is a pure function of
// (seed, link, write index): the Nth write on link A→B draws its
// randomness from a counter-based splitmix64 stream keyed by the seed
// and the link, independent of wall clock, goroutine scheduling, and of
// which faults were active for earlier writes. Re-running a scenario
// with the same seed therefore replays the identical fault pattern —
// the same writes dropped, the same bytes flipped at the same offsets
// (TestChaosDeterministicReplay pins this byte-for-byte). Residual
// nondeterminism comes only from the system under test (goroutine and
// socket timing), never from the fault layer.
//
// Granularity. The layer sits under net.Conn, so one Write call is the
// unit of loss: livenet's transport flushes one coalesced batch of
// frames per Write, which makes a dropped write behave like burst
// message loss (whole frames disappear, the stream stays parseable) and
// a corrupted write behave like a poisoned frame (the receiver's codec
// rejects it and closes the stream, forcing a reconnect). Both are
// exactly the failure modes the protocols must absorb.
package chaos

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"p2pshare/internal/model"
)

// Link is one directed sender→receiver pair. Faults are per-direction:
// cutting A→B while leaving B→A intact is an asymmetric partition.
type Link struct {
	From, To model.NodeID
}

// Faults is the declarative fault set applied to one link (or, via
// SetDefault, to every link without an explicit override). The zero
// value is a perfect link.
type Faults struct {
	// Drop is the probability one write (≈ one coalesced batch of
	// frames) is silently discarded.
	Drop float64
	// Corrupt is the probability one write has 1–3 bytes flipped before
	// reaching the socket — byte-level frame corruption the receiving
	// codec must reject without panicking.
	Corrupt float64
	// Duplicate is the probability one write is delivered twice.
	Duplicate float64
	// Reorder is the probability one write is held back and delivered
	// after the next write on the same connection.
	Reorder float64
	// Delay is added before every write; Jitter adds a deterministic
	// uniform extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
	// BytesPerSec caps the link's write bandwidth (0 = unlimited).
	BytesPerSec int
	// Cut blackholes the link: dials fail and established streams error
	// on their next IO — the partition primitive.
	Cut bool
}

// active reports whether any fault is set.
func (f Faults) active() bool { return f != Faults{} }

// linkState is the per-link mutable state: the explicit override (if
// any) and the write counter driving the deterministic decision stream.
type linkState struct {
	faults   Faults
	explicit bool   // faults overrides the Net default
	writes   uint64 // writes decided so far (the PRF counter)
}

// Net is one scenario's fault controller. All methods are safe for
// concurrent use; conns consult it on every IO, the schedule mutates it
// as steps fire.
type Net struct {
	seed int64

	mu    sync.Mutex
	def   Faults
	links map[Link]*linkState
	addrs map[string]model.NodeID // listen addr → node id
	// dial opens the underlying connection (swappable in tests).
	dial func(addr string) (net.Conn, error)
}

// New builds a fault controller. The seed fully determines every fault
// decision the controller will ever make; print it with any failure so
// the run can be replayed.
func New(seed int64) *Net {
	return &Net{
		seed:  seed,
		links: make(map[Link]*linkState),
		addrs: make(map[string]model.NodeID),
		dial: func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		},
	}
}

// Seed returns the controller's seed (for failure messages).
func (c *Net) Seed() int64 { return c.seed }

// Register maps a node's listen address to its id so dials can be
// attributed to a link. Call it from the listener hook, before traffic
// flows.
func (c *Net) Register(id model.NodeID, addr string) {
	c.mu.Lock()
	c.addrs[addr] = id
	c.mu.Unlock()
}

// SetDial replaces the function that opens the underlying connection a
// link's fault middleware wraps — the seam that layers chaos over an
// alternative fabric such as internal/memnet. The default dials
// loopback TCP.
func (c *Net) SetDial(dial func(addr string) (net.Conn, error)) {
	c.mu.Lock()
	c.dial = dial
	c.mu.Unlock()
}

// SetDefault applies a fault set to every link without an explicit
// override (the "weather": e.g. 5% drop everywhere).
func (c *Net) SetDefault(f Faults) {
	c.mu.Lock()
	c.def = f
	c.mu.Unlock()
}

// SetLink overrides one directed link's faults.
func (c *Net) SetLink(from, to model.NodeID, f Faults) {
	c.mu.Lock()
	c.state(Link{from, to}).faults = f
	c.state(Link{from, to}).explicit = true
	c.mu.Unlock()
}

// SetLinkBoth overrides both directions between two nodes.
func (c *Net) SetLinkBoth(a, b model.NodeID, f Faults) {
	c.mu.Lock()
	for _, l := range []Link{{a, b}, {b, a}} {
		st := c.state(l)
		st.faults = f
		st.explicit = true
	}
	c.mu.Unlock()
}

// Cut blackholes one direction (asymmetric partition primitive): dials
// from→to fail, established from→to streams error on the next write.
func (c *Net) Cut(from, to model.NodeID) {
	c.mu.Lock()
	st := c.state(Link{from, to})
	st.faults.Cut = true
	st.explicit = true
	c.mu.Unlock()
}

// Partition cuts every link between the two groups, both directions —
// a full bidirectional split. Links inside each group are untouched.
func (c *Net) Partition(a, b []model.NodeID) {
	c.mu.Lock()
	for _, x := range a {
		for _, y := range b {
			for _, l := range []Link{{x, y}, {y, x}} {
				st := c.state(l)
				st.faults.Cut = true
				st.explicit = true
			}
		}
	}
	c.mu.Unlock()
}

// PartitionOneWay cuts only a→b links: a's messages to b vanish while
// b still reaches a — the asymmetric split that wedges naive protocols.
func (c *Net) PartitionOneWay(a, b []model.NodeID) {
	c.mu.Lock()
	for _, x := range a {
		for _, y := range b {
			st := c.state(Link{x, y})
			st.faults.Cut = true
			st.explicit = true
		}
	}
	c.mu.Unlock()
}

// Heal clears Cut on every link (explicit overrides keep their other
// faults) and clears Cut from the default.
func (c *Net) Heal() {
	c.mu.Lock()
	c.def.Cut = false
	for _, st := range c.links {
		st.faults.Cut = false
	}
	c.mu.Unlock()
}

// Clear removes every fault: explicit overrides are dropped and the
// default reset. Write counters are kept so the decision stream never
// rewinds.
func (c *Net) Clear() {
	c.mu.Lock()
	c.def = Faults{}
	for _, st := range c.links {
		st.faults = Faults{}
		st.explicit = false
	}
	c.mu.Unlock()
}

// state returns (creating if needed) the link's state. Caller holds mu.
func (c *Net) state(l Link) *linkState {
	st, ok := c.links[l]
	if !ok {
		st = &linkState{}
		c.links[l] = st
	}
	return st
}

// faultsFor resolves the effective faults on a link. Caller holds mu.
func (c *Net) faultsFor(l Link) Faults {
	if st, ok := c.links[l]; ok && st.explicit {
		return st.faults
	}
	return c.def
}

// Snapshot describes the current fault map (for logging).
func (c *Net) Snapshot() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := fmt.Sprintf("default=%+v", c.def)
	keys := make([]Link, 0, len(c.links))
	for l, st := range c.links {
		if st.explicit {
			keys = append(keys, l)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	for _, l := range keys {
		out += fmt.Sprintf(" %d->%d=%+v", l.From, l.To, c.links[l].faults)
	}
	return out
}

// DialFrom is the livenet dial hook: it resolves the destination node
// from the registry, refuses the dial when the link is cut, and wraps
// the established connection with the link's fault middleware. An
// unregistered address passes through unwrapped (no link to attribute
// faults to).
func (c *Net) DialFrom(from model.NodeID, addr string) (net.Conn, error) {
	c.mu.Lock()
	to, known := c.addrs[addr]
	var f Faults
	if known {
		f = c.faultsFor(Link{from, to})
	}
	dial := c.dial
	c.mu.Unlock()
	if known && f.Cut {
		return nil, fmt.Errorf("chaos: link %d->%d cut", from, to)
	}
	raw, err := dial(addr)
	if err != nil || !known {
		return raw, err
	}
	return c.Wrap(raw, from, to), nil
}

// Dialer curries DialFrom for one sender — the shape livenet's
// Node.SetDialer wants.
func (c *Net) Dialer(from model.NodeID) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) { return c.DialFrom(from, addr) }
}

// Wrap applies the from→to link's fault middleware to an established
// connection (exported for tests that build their own pipes).
func (c *Net) Wrap(raw net.Conn, from, to model.NodeID) net.Conn {
	return &conn{Conn: raw, net: c, link: Link{from, to}}
}

// decision is one write's resolved fault plan.
type decision struct {
	faults  Faults
	drop    bool
	corrupt bool
	dup     bool
	reorder bool
	delay   time.Duration
	// rnd seeds corruption byte positions for this write.
	rnd uint64
}

// decide resolves the next write's fault plan on a link, advancing the
// link's write counter. The randomness is PRF(seed, link, index) — see
// the package comment for why that makes replays exact.
func (c *Net) decide(l Link, size int) decision {
	c.mu.Lock()
	st := c.state(l)
	idx := st.writes
	st.writes++
	f := c.faultsFor(l)
	c.mu.Unlock()

	base := mix64(uint64(c.seed) ^ mix64(uint64(l.From)*0x9e3779b97f4a7c15+uint64(l.To)+0x7f4a7c15))
	draw := func(k uint64) float64 {
		return float64(mix64(base^mix64(idx*8+k))>>11) / float64(1<<53)
	}
	d := decision{faults: f, rnd: mix64(base ^ mix64(idx*8+5))}
	if f.Cut {
		return d
	}
	d.drop = draw(0) < f.Drop
	d.corrupt = draw(1) < f.Corrupt
	d.dup = draw(2) < f.Duplicate
	d.reorder = draw(3) < f.Reorder
	d.delay = f.Delay
	if f.Jitter > 0 {
		d.delay += time.Duration(draw(4) * float64(f.Jitter))
	}
	if f.BytesPerSec > 0 {
		d.delay += time.Duration(float64(size) / float64(f.BytesPerSec) * float64(time.Second))
	}
	return d
}

// mix64 is the splitmix64 finalizer — a bijective 64-bit mixer used as
// the counter-based PRF behind every fault decision.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// conn is the per-connection middleware. Writes travel the link
// From→To and carry its faults; reads (the negotiation ack on a dialed
// stream) only honor the reverse link's Cut.
type conn struct {
	net.Conn
	net  *Net
	link Link
	// held is a reordered write waiting to be delivered after the next
	// one (dropped if the conn closes first — which is loss, i.e. fine).
	held []byte
}

// errCut reports IO on a cut link.
type errCut struct{ l Link }

func (e errCut) Error() string   { return fmt.Sprintf("chaos: link %d->%d cut", e.l.From, e.l.To) }
func (e errCut) Timeout() bool   { return false }
func (e errCut) Temporary() bool { return false }

func (cn *conn) Write(p []byte) (int, error) {
	d := cn.net.decide(cn.link, len(p))
	if d.faults.Cut {
		cn.Conn.Close()
		return 0, errCut{cn.link}
	}
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.drop {
		// Silent loss: the sender believes the batch reached the kernel,
		// exactly like bytes that died in a peer's socket buffer.
		cn.dropHeld()
		return len(p), nil
	}
	out := p
	if d.corrupt {
		out = corruptCopy(p, d.rnd)
	}
	if d.reorder && cn.held == nil {
		cn.held = append([]byte(nil), out...)
		return len(p), nil
	}
	if _, err := cn.Conn.Write(out); err != nil {
		return 0, err
	}
	if d.dup {
		cn.Conn.Write(out)
	}
	if h := cn.held; h != nil {
		cn.held = nil
		cn.Conn.Write(h)
	}
	return len(p), nil
}

func (cn *conn) dropHeld() { cn.held = nil }

func (cn *conn) Read(p []byte) (int, error) {
	cn.net.mu.Lock()
	cut := cn.net.faultsFor(Link{cn.link.To, cn.link.From}).Cut
	cn.net.mu.Unlock()
	if cut {
		cn.Conn.Close()
		return 0, errCut{Link{cn.link.To, cn.link.From}}
	}
	return cn.Conn.Read(p)
}

// corruptCopy flips 1–3 bytes of a copy of p at PRF-derived offsets.
func corruptCopy(p []byte, rnd uint64) []byte {
	out := append([]byte(nil), p...)
	if len(out) == 0 {
		return out
	}
	flips := 1 + int(rnd%3)
	for i := 0; i < flips; i++ {
		r := mix64(rnd + uint64(i))
		out[int(r%uint64(len(out)))] ^= byte(r>>8) | 1
	}
	return out
}
