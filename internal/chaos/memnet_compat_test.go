package chaos

import (
	"bytes"
	"io"
	"testing"

	"p2pshare/internal/memnet"
	"p2pshare/internal/model"
)

// memnetScript is script()'s twin over the in-process memnet fabric:
// the chaos controller's dialer is rehomed onto a memnet Network with
// SetDial, a fixed frame sequence is written through the fault-wrapped
// conn, and the bytes that surface at the accept side are returned.
func memnetScript(t *testing.T, seed int64, f Faults, writes int) []byte {
	t.Helper()
	nw := memnet.New()
	ln, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c := New(seed)
	c.SetDial(nw.Dial)
	c.Register(model.NodeID(2), ln.Addr().String())
	c.SetLink(1, 2, f)

	got := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			t.Error(err)
			got <- nil
			return
		}
		b, err := io.ReadAll(conn)
		if err != nil {
			t.Error(err)
		}
		got <- b
	}()

	wrapped, err := c.DialFrom(1, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes; i++ {
		frame := make([]byte, 24)
		for j := range frame {
			frame[j] = byte(i + j*7)
		}
		if _, err := wrapped.Write(frame); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	wrapped.Close()
	return <-got
}

// TestChaosOverMemnetDeterministicReplay pins the compat property the
// paper-scale cluster benchmark relies on: chaos faults layered over
// memnet conns replay byte-identically under the same seed — moving the
// fabric off kernel sockets must not perturb the seeded decision
// stream.
func TestChaosOverMemnetDeterministicReplay(t *testing.T) {
	f := Faults{Drop: 0.2, Corrupt: 0.2, Duplicate: 0.2, Reorder: 0.2}
	const writes = 300
	first := memnetScript(t, 42, f, writes)
	second := memnetScript(t, 42, f, writes)
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed diverged over memnet: run1 %d bytes, run2 %d bytes",
			len(first), len(second))
	}
	clean := memnetScript(t, 42, Faults{}, writes)
	if bytes.Equal(first, clean) {
		t.Fatal("faulted run identical to clean run; faults never fired")
	}
	if want := writes * 24; len(clean) != want {
		t.Fatalf("clean run carried %d bytes, want %d", len(clean), want)
	}
	other := memnetScript(t, 43, f, writes)
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical fault patterns over memnet")
	}

	// The decision stream is a PRF of (seed, link, index), so the SAME
	// seed must fault the SAME writes regardless of fabric: a run over
	// memnet matches the pipe-backed run byte for byte.
	pipe := script(t, 42, f, writes)
	if !bytes.Equal(first, pipe) {
		t.Fatalf("fabric changed the seeded fault pattern: memnet %d bytes, pipe %d bytes",
			len(first), len(pipe))
	}
}
