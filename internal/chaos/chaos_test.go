package chaos

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"p2pshare/internal/model"
)

// script writes a fixed sequence of frames through a fault-wrapped pipe
// and returns exactly what came out the far end.
func script(t *testing.T, seed int64, f Faults, writes int) []byte {
	t.Helper()
	c := New(seed)
	c.SetLink(1, 2, f)
	a, b := net.Pipe()
	wrapped := c.Wrap(a, 1, 2)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer a.Close()
		for i := 0; i < writes; i++ {
			frame := make([]byte, 24)
			for j := range frame {
				frame[j] = byte(i + j*7)
			}
			if _, err := wrapped.Write(frame); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	wg.Wait()
	return got
}

// TestChaosDeterministicReplay pins the acceptance property: the same
// seed replays the same fault pattern byte-identically — same writes
// dropped, same duplicates, same reorders, same bytes flipped at the
// same offsets.
func TestChaosDeterministicReplay(t *testing.T) {
	f := Faults{Drop: 0.2, Corrupt: 0.2, Duplicate: 0.2, Reorder: 0.2}
	const writes = 300
	first := script(t, 42, f, writes)
	second := script(t, 42, f, writes)
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed diverged: run1 %d bytes, run2 %d bytes", len(first), len(second))
	}
	clean := script(t, 42, Faults{}, writes)
	if bytes.Equal(first, clean) {
		t.Fatal("faulted run identical to clean run; faults never fired")
	}
	other := script(t, 43, f, writes)
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical fault patterns")
	}
	if want := writes * 24; len(clean) != want {
		t.Fatalf("clean run carried %d bytes, want %d", len(clean), want)
	}
}

// TestChaosDropLosesWholeWrites checks Drop=1 silently discards every
// write while reporting success to the sender (message-loss semantics).
func TestChaosDropLosesWholeWrites(t *testing.T) {
	got := script(t, 7, Faults{Drop: 1}, 50)
	if len(got) != 0 {
		t.Fatalf("Drop=1 still delivered %d bytes", len(got))
	}
}

// TestChaosCorruptFlipsBytes checks corruption changes payload bytes
// without changing stream length (frame-poisoning, not truncation).
func TestChaosCorruptFlipsBytes(t *testing.T) {
	const writes = 40
	clean := script(t, 11, Faults{}, writes)
	dirty := script(t, 11, Faults{Corrupt: 1}, writes)
	if len(clean) != len(dirty) {
		t.Fatalf("corruption changed stream length: %d vs %d", len(clean), len(dirty))
	}
	if bytes.Equal(clean, dirty) {
		t.Fatal("Corrupt=1 flipped nothing")
	}
}

// TestChaosCutRefusesDialsAndKillsStreams checks the partition
// primitive end to end over real TCP: established streams error, dials
// are refused, and Heal restores both.
func TestChaosCutRefusesDialsAndKillsStreams(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()

	c := New(99)
	c.Register(model.NodeID(2), ln.Addr().String())

	conn, err := c.DialFrom(1, ln.Addr().String())
	if err != nil {
		t.Fatalf("pre-cut dial: %v", err)
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatalf("pre-cut write: %v", err)
	}

	c.Cut(1, 2)
	if _, err := conn.Write([]byte("into the void")); err == nil {
		t.Fatal("write on a cut link succeeded")
	}
	if _, err := c.DialFrom(1, ln.Addr().String()); err == nil {
		t.Fatal("dial across a cut link succeeded")
	}

	c.Heal()
	conn2, err := c.DialFrom(1, ln.Addr().String())
	if err != nil {
		t.Fatalf("post-heal dial: %v", err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("back")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
}

// TestChaosPartitionIsAsymmetric checks PartitionOneWay cuts only the
// named direction.
func TestChaosPartitionIsAsymmetric(t *testing.T) {
	c := New(5)
	c.PartitionOneWay([]model.NodeID{1}, []model.NodeID{2})
	if !c.faultsForTest(Link{1, 2}).Cut {
		t.Error("1->2 not cut")
	}
	if c.faultsForTest(Link{2, 1}).Cut {
		t.Error("2->1 cut by a one-way partition")
	}
	c.Partition([]model.NodeID{1}, []model.NodeID{2, 3})
	for _, l := range []Link{{1, 2}, {2, 1}, {1, 3}, {3, 1}} {
		if !c.faultsForTest(l).Cut {
			t.Errorf("%d->%d not cut by Partition", l.From, l.To)
		}
	}
	c.Heal()
	for _, l := range []Link{{1, 2}, {2, 1}, {1, 3}, {3, 1}} {
		if c.faultsForTest(l).Cut {
			t.Errorf("%d->%d still cut after Heal", l.From, l.To)
		}
	}
}

// faultsForTest exposes effective link faults to tests.
func (c *Net) faultsForTest(l Link) Faults {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faultsFor(l)
}

// TestScheduleAppliesStepsInOrder checks steps fire in offset order and
// that a closed done channel stops the run early.
func TestScheduleAppliesStepsInOrder(t *testing.T) {
	c := New(1)
	var mu sync.Mutex
	var fired []string
	s := NewSchedule().
		AddStep(20*time.Millisecond, "second", func(*Net) { mu.Lock(); fired = append(fired, "b"); mu.Unlock() }).
		AddStep(0, "first", func(*Net) { mu.Lock(); fired = append(fired, "a"); mu.Unlock() })
	done := make(chan struct{})
	s.Run(done, c, nil)
	mu.Lock()
	got := append([]string(nil), fired...)
	mu.Unlock()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("steps fired as %v, want [a b]", got)
	}

	stopped := NewSchedule().AddStep(time.Hour, "never", func(*Net) { t.Error("step fired past done") })
	close(done)
	start := time.Now()
	stopped.Run(done, c, nil)
	if time.Since(start) > time.Second {
		t.Fatal("Run did not return promptly on done")
	}
}
