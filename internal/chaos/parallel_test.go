package chaos

import (
	"bytes"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"p2pshare/internal/model"
)

// runParallel drives W writes over each of L links from L concurrent
// goroutines (one writer per link — the shape of livenet's sharded
// engine, where per-peer writer goroutines never share a link) and
// returns the bytes each link delivered. stagger perturbs goroutine
// scheduling so two runs interleave differently across links.
func runParallel(t *testing.T, seed int64, f Faults, links, writes int, stagger bool) map[Link][]byte {
	t.Helper()
	c := New(seed)
	c.SetDefault(f)

	out := make(map[Link][]byte, links)
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < links; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := Link{From: 1, To: model.NodeID(2 + i)}
			a, b := net.Pipe()
			wrapped := c.Wrap(a, l.From, l.To)
			var rd sync.WaitGroup
			rd.Add(1)
			var got []byte
			go func() {
				defer rd.Done()
				got, _ = io.ReadAll(b)
			}()
			for w := 0; w < writes; w++ {
				if stagger && w%7 == i%7 {
					// Perturb cross-link interleaving without touching the
					// per-link write order.
					time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
				}
				frame := make([]byte, 24)
				for j := range frame {
					frame[j] = byte(int(l.To)*31 + w + j*7)
				}
				if _, err := wrapped.Write(frame); err != nil {
					t.Errorf("link %v write %d: %v", l, w, err)
					break
				}
			}
			a.Close()
			rd.Wait()
			outMu.Lock()
			out[l] = got
			outMu.Unlock()
		}(i)
	}
	wg.Wait()
	return out
}

// TestChaosReplayParallelShards pins the determinism contract the
// sharded engine depends on: fault decisions are PRF(seed, link,
// write-index), so replaying a scenario with many writer goroutines
// running truly in parallel (GOMAXPROCS > 1) delivers byte-identical
// per-link streams even when the cross-link interleaving differs
// between runs. Before trusting any chaos repro from a sharded run,
// this is the property that must hold.
func TestChaosReplayParallelShards(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	f := Faults{Drop: 0.15, Corrupt: 0.15, Duplicate: 0.15, Reorder: 0.15}
	const links, writes = 8, 200

	first := runParallel(t, 42, f, links, writes, false)
	second := runParallel(t, 42, f, links, writes, true)
	if len(first) != links || len(second) != links {
		t.Fatalf("runs covered %d/%d links, want %d", len(first), len(second), links)
	}
	faulted := 0
	for l, b1 := range first {
		b2, ok := second[l]
		if !ok {
			t.Fatalf("link %v missing from second run", l)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("link %v diverged across parallel replays: %d vs %d bytes",
				l, len(b1), len(b2))
		}
		if len(b1) != writes*24 {
			faulted++ // drop/dup changed the byte count — faults fired here
		}
	}
	if faulted == 0 {
		t.Error("no link's stream was altered by faults; the replay proved nothing")
	}

	// A different seed must not reproduce the same streams.
	other := runParallel(t, 43, f, links, writes, false)
	same := 0
	for l, b1 := range first {
		if bytes.Equal(b1, other[l]) {
			same++
		}
	}
	if same == links {
		t.Error("different seeds produced identical fault patterns on every link")
	}
}

// TestChaosDecideIndexMonotonic checks concurrent decide() calls on ONE
// link hand out each write index exactly once (no duplicates, no gaps) —
// the counter is the PRF input, so a racy counter would silently break
// replay. Run under -race this also proves the counter path is properly
// locked.
func TestChaosDecideIndexMonotonic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	c := New(7)
	c.SetDefault(Faults{Drop: 0.5})
	l := Link{From: 3, To: 4}
	const goroutines, per = 8, 500

	// decide() doesn't return its index, but the decision stream is a
	// pure function of it: collect every drawn decision and check the
	// multiset matches a serial replay of the same count.
	type verdict struct{ drop bool }
	var mu sync.Mutex
	got := make([]verdict, 0, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]verdict, 0, per)
			for i := 0; i < per; i++ {
				d := c.decide(l, 24)
				local = append(local, verdict{d.drop})
			}
			mu.Lock()
			got = append(got, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()

	serial := New(7)
	serial.SetDefault(Faults{Drop: 0.5})
	drops := 0
	for i := 0; i < goroutines*per; i++ {
		if serial.decide(l, 24).drop {
			drops++
		}
	}
	gotDrops := 0
	for _, v := range got {
		if v.drop {
			gotDrops++
		}
	}
	if gotDrops != drops {
		t.Errorf("parallel run drew %d drops over %d decisions, serial replay drew %d — "+
			"write indices were lost or duplicated", gotDrops, goroutines*per, drops)
	}
	if drops == 0 || drops == goroutines*per {
		t.Errorf("degenerate drop count %d/%d; PRF draw looks broken", drops, goroutines*per)
	}
}
