// Package soak drives a live loopback cluster through scripted chaos
// scenarios while checking the invariants a healthy livenet must hold
// under faults: the event loop stays responsive, no pending query
// outlives its deadline, every long-lived state table stays bounded,
// and query service recovers after the network heals.
//
// A soak run is seeded end to end: the fault pattern is a pure function
// of the chaos seed (see internal/chaos), the synthetic workload and
// instance derive from the same seed, and every failure report carries
// the seed plus a copy-paste replay command. Residual nondeterminism is
// limited to goroutine and socket scheduling of the system under test.
package soak

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"net"
	"p2pshare/internal/catalog"
	"p2pshare/internal/chaos"
	"p2pshare/internal/core"
	"p2pshare/internal/livenet"
	"p2pshare/internal/membership"
	"p2pshare/internal/model"
	"p2pshare/internal/replica"
	"sync"
)

// Config sizes a soak run. The zero value is completed by withDefaults.
type Config struct {
	// Seed drives the instance, the workload, and the chaos fault
	// pattern. Replaying with the same seed reproduces the same faults.
	Seed int64
	// Nodes / Clusters / Docs / Cats size the synthetic instance.
	Nodes, Clusters, Docs, Cats int
	// Out receives progress lines; nil discards them.
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 12
	}
	if c.Clusters <= 0 {
		c.Clusters = 3
	}
	if c.Docs <= 0 {
		c.Docs = 360
	}
	if c.Cats <= 0 {
		c.Cats = 9
	}
	return c
}

// Action is one scripted fault-injection step, applied At after the
// scenario starts. Do receives the live Run and may manipulate the
// chaos layer (r.Net), kill nodes (r.Kill), or toggle subsystems.
type Action struct {
	At   time.Duration
	Name string
	Do   func(*Run)
}

// Scenario scripts one soak: a fault timeline over Length, after which
// the run heals everything, lets the cluster settle, and probes for
// recovery.
type Scenario struct {
	Name, Desc string
	// Length is how long the fault timeline runs before the heal.
	Length time.Duration
	// Adapt enables the §6.1 adaptation loop (short epochs) so
	// scenarios can interleave faults with rebalancing.
	Adapt   bool
	Actions []Action
}

// Report summarizes a finished soak run.
type Report struct {
	Scenario   string
	Seed       int64
	Elapsed    time.Duration
	Queries    int // workload queries issued during the fault timeline
	Succeeded  int // of those, completed Done
	ProbeOK    int // recovery probes that succeeded after heal
	ProbeTotal int
	Violations []string
}

// Run is the live state handed to scenario actions.
type Run struct {
	Cluster *livenet.Cluster
	Net     *chaos.Net
	Inst    *model.Instance
	Assign  []model.ClusterID

	cfg  Config
	rng  *rand.Rand
	logf func(string, ...any)

	mu         sync.Mutex
	dead       map[model.NodeID]bool
	violations []string
}

// Logf writes a progress line to the run's output.
func (r *Run) Logf(format string, args ...any) { r.logf(format, args...) }

// Kill shuts a node down permanently (process death, not a link fault):
// its listener closes, dials to it fail, and the failure detector
// eventually declares it dead.
func (r *Run) Kill(id model.NodeID) {
	r.mu.Lock()
	already := r.dead[id]
	r.dead[id] = true
	r.mu.Unlock()
	if already {
		return
	}
	r.logf("  kill node %d", id)
	r.Cluster.Nodes[id].Close()
}

// Alive returns the nodes not killed by the scenario, in id order.
func (r *Run) Alive() []*livenet.Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*livenet.Node
	for _, n := range r.Cluster.Nodes {
		if n != nil && !r.dead[n.ID()] {
			out = append(out, n)
		}
	}
	return out
}

// Members returns the ids assigned to a node cluster, in id order.
func (r *Run) Members(cl model.ClusterID) []model.NodeID {
	var out []model.NodeID
	for id, c := range r.Assign {
		if c == cl {
			out = append(out, model.NodeID(id))
		}
	}
	return out
}

// LeaderOf returns the deterministic leader of a cluster under the
// static capability view: the most capable member, ties to the lowest
// id — mirroring livenet's election so scenarios can target it.
func (r *Run) LeaderOf(cl model.ClusterID) model.NodeID {
	best, bestU := model.NodeID(-1), -1.0
	for _, id := range r.Members(cl) {
		r.mu.Lock()
		dead := r.dead[id]
		r.mu.Unlock()
		if dead {
			continue
		}
		if u := r.Inst.Nodes[id].Units; u > bestU {
			best, bestU = id, u
		}
	}
	return best
}

// Halves splits the node population into two groups by id parity —
// cutting across clusters, so a partition degrades every cluster
// instead of isolating one.
func (r *Run) Halves() (a, b []model.NodeID) {
	for id := range r.Cluster.Nodes {
		if id%2 == 0 {
			a = append(a, model.NodeID(id))
		} else {
			b = append(b, model.NodeID(id))
		}
	}
	return a, b
}

func (r *Run) violate(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	r.mu.Lock()
	r.violations = append(r.violations, msg)
	r.mu.Unlock()
	r.logf("  INVARIANT VIOLATION: %s", msg)
}

// bigCategory picks the most populated category — the workload target,
// guaranteed to have servable documents.
func bigCategory(inst *model.Instance) catalog.CategoryID {
	best, docs := catalog.CategoryID(0), -1
	for i := range inst.Catalog.Cats {
		if n := len(inst.Catalog.Cats[i].Docs); n > docs {
			best, docs = inst.Catalog.Cats[i].ID, n
		}
	}
	return best
}

// tableSizesWithin reads a node's table sizes, bounding the wait: a
// node whose event loop is wedged cannot answer, which is itself the
// invariant violation the timeout detects.
func tableSizesWithin(n *livenet.Node, d time.Duration) (map[string]int, bool) {
	ch := make(chan map[string]int, 1)
	go func() { ch <- n.TableSizes() }()
	select {
	case s := <-ch:
		return s, true
	case <-time.After(d):
		return nil, false
	}
}

// checkInvariants sweeps every live node once. overdueSlack allows for
// sweep latency: an entry is only "stuck" once it outlived its deadline
// by more than a sweep period plus grace.
func (r *Run) checkInvariants(overdueSlack time.Duration) {
	nNodes := len(r.Cluster.Nodes)
	for _, n := range r.Alive() {
		sizes, ok := tableSizesWithin(n, 3*time.Second)
		if !ok {
			r.violate("node %d event loop unresponsive for 3s", n.ID())
			continue
		}
		if sizes == nil { // node shut down between Alive() and here
			continue
		}
		bounds := []struct {
			key string
			max int
		}{
			{"pending", livenet.DefaultMaxInFlight},
			{"book", nNodes},
			{"tombstones", nNodes},
			{"nrt", nNodes * r.cfg.Clusters},
			{"seen", 1 << 17},
			{"cache_index", 1 << 17},
		}
		for _, b := range bounds {
			if v := sizes[b.key]; v > b.max {
				r.violate("node %d table %q grew to %d (bound %d)",
					n.ID(), b.key, v, b.max)
			}
		}
		if overdue := n.OverduePending(overdueSlack); overdue > 0 {
			r.violate("node %d has %d pending queries stuck past deadline+%s",
				n.ID(), overdue, overdueSlack)
		}
	}
}

// RunScenario executes one scenario at the given config and reports.
// The returned error is non-nil when any invariant was violated or
// recovery failed; its message includes the seed and a replay command.
func RunScenario(sc Scenario, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	logf := func(format string, args ...any) {
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, format+"\n", args...)
		}
	}
	start := time.Now()
	logf("scenario %q seed=%d nodes=%d clusters=%d", sc.Name, cfg.Seed, cfg.Nodes, cfg.Clusters)

	mcfg := model.DefaultConfig()
	mcfg.Catalog.NumDocs = cfg.Docs
	mcfg.Catalog.NumCats = cfg.Cats
	mcfg.NumNodes = cfg.Nodes
	mcfg.NumClusters = cfg.Clusters
	mcfg.Seed = cfg.Seed
	inst, err := model.Generate(mcfg)
	if err != nil {
		return Report{}, fmt.Errorf("generate: %w", err)
	}
	res, err := core.MaxFair(inst, core.Options{})
	if err != nil {
		return Report{}, fmt.Errorf("assign: %w", err)
	}
	mem, err := model.NewMembership(inst, res.Assignment)
	if err != nil {
		return Report{}, fmt.Errorf("membership: %w", err)
	}
	place, err := replica.Place(inst, res.Assignment, mem, replica.DefaultConfig())
	if err != nil {
		return Report{}, fmt.Errorf("placement: %w", err)
	}

	cn := chaos.New(cfg.Seed)
	hooks := livenet.NetHooks{
		Listen: func(id model.NodeID, addr string) (net.Listener, error) {
			ln, err := net.Listen("tcp", addr)
			if err == nil {
				cn.Register(id, ln.Addr().String())
			}
			return ln, err
		},
		Dial: cn.DialFrom,
	}
	opts := livenet.Options{
		Seed:       cfg.Seed,
		Hooks:      hooks,
		Membership: &membership.Config{},
	}
	if sc.Adapt {
		opts.Adaptation = &livenet.AdaptConfig{
			Interval:       900 * time.Millisecond,
			LowThreshold:   0.9,
			TargetFairness: 0.95,
			MaxMoves:       8,
		}
	}
	c, err := livenet.Launch(inst, res.Assignment, place, opts)
	if err != nil {
		return Report{}, fmt.Errorf("launch: %w", err)
	}
	defer c.Close()

	r := &Run{
		Cluster: c,
		Net:     cn,
		Inst:    inst,
		Assign:  res.Assignment,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x50a4)),
		logf:    logf,
		dead:    map[model.NodeID]bool{},
	}
	cat := bigCategory(inst)

	// Background workload: queries from random live nodes throughout
	// the fault timeline. Failures during faults are expected and only
	// counted; the recovery probe after heal is the pass/fail signal.
	stop := make(chan struct{})
	var wl sync.WaitGroup
	var wlMu sync.Mutex
	issued, succeeded := 0, 0
	wl.Add(1)
	go func() {
		defer wl.Done()
		tick := time.NewTicker(120 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			alive := r.Alive()
			if len(alive) == 0 {
				continue
			}
			r.mu.Lock()
			n := alive[r.rng.Intn(len(alive))]
			r.mu.Unlock()
			wl.Add(1)
			go func() {
				defer wl.Done()
				out, err := n.Query(cat, 1, 3*time.Second)
				wlMu.Lock()
				issued++
				if err == nil && out.Done {
					succeeded++
				}
				wlMu.Unlock()
			}()
		}
	}()

	// Fault timeline: apply actions at their offsets, sweeping
	// invariants between steps.
	actions := append([]Action(nil), sc.Actions...)
	sort.SliceStable(actions, func(i, j int) bool { return actions[i].At < actions[j].At })
	timeline := time.NewTimer(sc.Length)
	defer timeline.Stop()
	sweep := time.NewTicker(500 * time.Millisecond)
	defer sweep.Stop()
	next := 0
	const overdueSlack = 8 * time.Second
	for done := false; !done; {
		var step *time.Timer
		if next < len(actions) {
			wait := time.Until(start.Add(actions[next].At))
			if wait < 0 {
				wait = 0
			}
			step = time.NewTimer(wait)
		} else {
			step = time.NewTimer(time.Hour)
		}
		select {
		case <-timeline.C:
			done = true
		case <-step.C:
			a := actions[next]
			next++
			logf("t=%s action %q", time.Since(start).Round(time.Millisecond), a.Name)
			a.Do(r)
		case <-sweep.C:
			r.checkInvariants(overdueSlack)
		}
		step.Stop()
	}
	close(stop)

	// Heal everything, let membership re-admit and the sweep drain,
	// then probe: a healed cluster must answer queries again.
	logf("t=%s heal + settle", time.Since(start).Round(time.Millisecond))
	cn.Clear()
	time.Sleep(3 * time.Second)
	wl.Wait()

	probeOK, probeTotal := 0, 0
	alive := r.Alive()
	if len(alive) == 0 {
		r.violate("no nodes survived the scenario")
	}
	for i := 0; i < 20 && len(alive) > 0; i++ {
		n := alive[i%len(alive)]
		probeTotal++
		if out, err := n.Query(cat, 1, 4*time.Second); err == nil && out.Done {
			probeOK++
		}
	}
	if probeTotal > 0 && probeOK*5 < probeTotal*4 { // < 80%
		r.violate("post-heal recovery: only %d/%d probe queries succeeded", probeOK, probeTotal)
	}

	// Final invariant sweep on the settled cluster: nothing stuck,
	// nothing leaked.
	r.checkInvariants(overdueSlack)

	r.mu.Lock()
	violations := append([]string(nil), r.violations...)
	r.mu.Unlock()
	wlMu.Lock()
	rep := Report{
		Scenario:   sc.Name,
		Seed:       cfg.Seed,
		Elapsed:    time.Since(start),
		Queries:    issued,
		Succeeded:  succeeded,
		ProbeOK:    probeOK,
		ProbeTotal: probeTotal,
		Violations: violations,
	}
	wlMu.Unlock()
	logf("done in %s: %d/%d workload queries ok, %d/%d probes ok, %d violations",
		rep.Elapsed.Round(time.Millisecond), rep.Succeeded, rep.Queries,
		rep.ProbeOK, rep.ProbeTotal, len(rep.Violations))

	if len(violations) > 0 {
		return rep, fmt.Errorf(
			"scenario %q failed with %d invariant violations (first: %s)\nreplay: go run ./cmd/p2pchaos -scenario %s -seed %d",
			sc.Name, len(violations), violations[0], sc.Name, cfg.Seed)
	}
	return rep, nil
}
