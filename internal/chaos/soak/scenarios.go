package soak

import (
	"fmt"
	"time"

	"p2pshare/internal/chaos"
	"p2pshare/internal/model"
)

// The built-in scenario library: the four fault shapes the ISSUE's
// harness runs against livenet. Each is short enough for CI smoke
// (seconds of timeline plus settle) yet long enough to cross several
// sweep intervals, membership probe rounds, and — where enabled —
// adaptation epochs.

// PartitionAdapt partitions the cluster down the middle while the
// adaptation loop is mid-epoch, holds the split across an epoch
// boundary, then heals. Leaders must not wedge aggregating loads from
// unreachable members, and fairness measurement must resume after heal.
func PartitionAdapt() Scenario {
	var a, b []model.NodeID
	return Scenario{
		Name:   "partition-adapt",
		Desc:   "asymmetric partition held across an adaptation epoch, then healed",
		Length: 5 * time.Second,
		Adapt:  true,
		Actions: []Action{
			{At: 1200 * time.Millisecond, Name: "partition halves", Do: func(r *Run) {
				a, b = r.Halves()
				r.Net.Partition(a, b)
			}},
			{At: 3800 * time.Millisecond, Name: "heal partition", Do: func(r *Run) {
				r.Net.Heal()
			}},
		},
	}
}

// LeaderKill kills the deterministic leader of node-cluster 0 right
// around an epoch boundary, while its members are sending LeaderLoad
// reports. The cluster must elect the next-most-capable member and
// queries must keep flowing; the dead node's tombstone must not leak.
func LeaderKill() Scenario {
	return Scenario{
		Name:   "leader-kill",
		Desc:   "kill the cluster-0 leader mid-aggregate; election must move on",
		Length: 5 * time.Second,
		Adapt:  true,
		Actions: []Action{
			{At: 1400 * time.Millisecond, Name: "kill cluster-0 leader", Do: func(r *Run) {
				if leader := r.LeaderOf(0); leader >= 0 {
					r.Kill(leader)
				}
			}},
		},
	}
}

// CorruptStorm poisons a fraction of every frame on every link for a
// window: the codec must reject the frames and reconnect rather than
// deliver garbage, and once the storm passes service must recover with
// no stuck queries left behind.
func CorruptStorm() Scenario {
	return Scenario{
		Name:   "corrupt-storm",
		Desc:   "byte-corrupt 30% of all writes for 2.5s, then clear",
		Length: 4500 * time.Millisecond,
		Actions: []Action{
			{At: 800 * time.Millisecond, Name: "begin corrupt storm", Do: func(r *Run) {
				r.Net.SetDefault(chaos.Faults{Corrupt: 0.3})
			}},
			{At: 3300 * time.Millisecond, Name: "end corrupt storm", Do: func(r *Run) {
				r.Net.Clear()
			}},
		},
	}
}

// Flappy flaps the same partition open and closed every 700ms on top of
// a lossy baseline — the reconnect/backoff path must absorb the flaps
// without unbounded state or a wedged writer.
func Flappy() Scenario {
	sc := Scenario{
		Name:   "flappy",
		Desc:   "partition flapping every 700ms over a 5% lossy baseline",
		Length: 5 * time.Second,
		Actions: []Action{
			{At: 400 * time.Millisecond, Name: "lossy baseline", Do: func(r *Run) {
				r.Net.SetDefault(chaos.Faults{Drop: 0.05})
			}},
		},
	}
	cut := true
	for at := 700 * time.Millisecond; at < 4200*time.Millisecond; at += 700 * time.Millisecond {
		doCut := cut
		name := "flap: heal"
		if doCut {
			name = "flap: cut"
		}
		sc.Actions = append(sc.Actions, Action{At: at, Name: name, Do: func(r *Run) {
			if doCut {
				a, b := r.Halves()
				r.Net.Partition(a, b)
			} else {
				r.Net.Heal()
			}
		}})
		cut = !cut
	}
	return sc
}

// Scenarios returns the built-in library in a stable order.
func Scenarios() []Scenario {
	return []Scenario{PartitionAdapt(), LeaderKill(), CorruptStorm(), Flappy()}
}

// Lookup finds a built-in scenario by name.
func Lookup(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("unknown scenario %q", name)
}
