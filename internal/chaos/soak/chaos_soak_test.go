package soak

import (
	"testing"

	"p2pshare/internal/model"
)

// Each soak scenario is a self-contained integration test: boot a live
// loopback cluster behind the chaos layer, run the scripted fault
// timeline under background query load with continuous invariant
// sweeps, heal, and require recovery. A failure message carries the
// seed; replaying it reproduces the same fault pattern.

func runScenario(t *testing.T, name string, seed int64) Report {
	t.Helper()
	sc, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: seed, Nodes: 10, Clusters: 2, Docs: 300, Cats: 8}
	if testing.Verbose() {
		cfg.Out = testWriter{t}
	}
	rep, err := RunScenario(sc, cfg)
	if err != nil {
		t.Fatalf("%v\nall violations: %v", err, rep.Violations)
	}
	return rep
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

func TestSoakPartitionAdapt(t *testing.T) {
	if testing.Short() {
		t.Skip("soak scenario")
	}
	runScenario(t, "partition-adapt", 101)
}

func TestSoakLeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("soak scenario")
	}
	rep := runScenario(t, "leader-kill", 202)
	if rep.ProbeOK == 0 {
		t.Fatal("no probe query succeeded after the leader was killed")
	}
}

func TestSoakCorruptStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("soak scenario")
	}
	runScenario(t, "corrupt-storm", 303)
}

func TestSoakFlappy(t *testing.T) {
	if testing.Short() {
		t.Skip("soak scenario")
	}
	runScenario(t, "flappy", 404)
}

// TestLeaderOfTargetsMostCapable pins the scenario library's leader
// mirror to livenet's election rule (most units, ties to lowest id) so
// leader-kill keeps killing the actual leader if either side changes.
func TestLeaderOfTargetsMostCapable(t *testing.T) {
	r := &Run{
		Inst: &model.Instance{Nodes: []model.Node{
			{ID: 0, Units: 2}, {ID: 1, Units: 5}, {ID: 2, Units: 5}, {ID: 3, Units: 1},
		}},
		Assign: []model.ClusterID{0, 0, 0, 1},
		dead:   map[model.NodeID]bool{},
	}
	if got := r.LeaderOf(0); got != 1 {
		t.Fatalf("LeaderOf(0) = %d, want 1 (most capable, lowest id)", got)
	}
	r.dead[1] = true
	if got := r.LeaderOf(0); got != 2 {
		t.Fatalf("LeaderOf(0) with 1 dead = %d, want 2", got)
	}
	if got := r.LeaderOf(1); got != 3 {
		t.Fatalf("LeaderOf(1) = %d, want 3", got)
	}
}
