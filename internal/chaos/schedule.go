package chaos

import (
	"fmt"
	"sort"
	"time"
)

// A Schedule is a declarative fault script: named steps applied to the
// Net at fixed offsets from scenario start. Together with the seed it
// IS the scenario — replaying the same schedule with the same seed
// reproduces the same fault pattern.
type Step struct {
	At   time.Duration
	Name string
	Do   func(*Net)
}

type Schedule struct {
	steps []Step
}

// NewSchedule builds an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// AddStep appends a step (chainable).
func (s *Schedule) AddStep(at time.Duration, name string, do func(*Net)) *Schedule {
	s.steps = append(s.steps, Step{At: at, Name: name, Do: do})
	return s
}

// Len reports how many steps the schedule holds.
func (s *Schedule) Len() int { return len(s.steps) }

// String lists the steps (for logs and failure reports).
func (s *Schedule) String() string {
	out := ""
	for i, st := range s.sorted() {
		if i > 0 {
			out += "; "
		}
		out += fmt.Sprintf("t=%v %s", st.At, st.Name)
	}
	return out
}

func (s *Schedule) sorted() []Step {
	steps := append([]Step(nil), s.steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	return steps
}

// Run applies the steps in offset order against the controller,
// blocking between them; it returns early if done closes. logf (may be
// nil) narrates each step as it fires.
func (s *Schedule) Run(done <-chan struct{}, n *Net, logf func(format string, args ...any)) {
	start := time.Now()
	for _, st := range s.sorted() {
		wait := st.At - time.Since(start)
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				return
			}
		}
		select {
		case <-done:
			return
		default:
		}
		st.Do(n)
		if logf != nil {
			logf("chaos t=%v: %s", st.At, st.Name)
		}
	}
}
