// Package content is the data plane's storage layer: fixed-size
// content-addressed chunks, per-document manifests listing SHA-256
// chunk hashes, and a verifying reassembly buffer that supports
// resume-from-last-verified-chunk.
//
// The store holds two kinds of documents. Put installs explicit bytes
// (a node that published or downloaded real content). Register marks a
// document synthetic: its bytes are generated deterministically from
// (doc id, byte offset), so every replica holder serves an identical,
// verifiable stream with zero resident memory — the stand-in for "the
// file is on this peer's disk" at simulation scale.
package content

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"p2pshare/internal/catalog"
)

// DefaultChunkSize is the transfer unit. 64 KB sits well under the wire
// codec's 4 MB frame cap while keeping per-chunk overhead (one frame
// header + 32-byte hash) below 0.1%.
const DefaultChunkSize = 64 << 10

// HashSize is the size of a chunk id in the manifest hash blob.
const HashSize = sha256.Size

var (
	// ErrBadIndex reports a chunk index outside the manifest.
	ErrBadIndex = errors.New("content: chunk index out of range")
	// ErrHashMismatch reports chunk bytes that fail verification
	// against the manifest — corruption or a hostile sender.
	ErrHashMismatch = errors.New("content: chunk hash mismatch")
	// ErrIncomplete reports an assembly read before every chunk landed.
	ErrIncomplete = errors.New("content: assembly incomplete")
)

// Manifest is the per-document chunk table: document size, chunk size,
// and the SHA-256 of every chunk concatenated into one blob (the wire
// representation). A fetcher that holds the manifest can verify each
// arriving chunk independently and resume from any prefix.
type Manifest struct {
	Doc       catalog.DocID
	Size      int64
	ChunkSize int
	Hashes    []byte // NumChunks * HashSize bytes
}

// NumChunks is ceil(Size / ChunkSize).
func (m *Manifest) NumChunks() int {
	if m.Size <= 0 || m.ChunkSize <= 0 {
		return 0
	}
	return int((m.Size + int64(m.ChunkSize) - 1) / int64(m.ChunkSize))
}

// ChunkLen is the byte length of chunk i (the tail chunk may be short).
func (m *Manifest) ChunkLen(i int) int {
	n := m.NumChunks()
	if i < 0 || i >= n {
		return 0
	}
	if i == n-1 {
		if rem := m.Size % int64(m.ChunkSize); rem != 0 {
			return int(rem)
		}
	}
	return m.ChunkSize
}

// Hash returns the stored hash of chunk i (nil if out of range).
func (m *Manifest) Hash(i int) []byte {
	if i < 0 || (i+1)*HashSize > len(m.Hashes) {
		return nil
	}
	return m.Hashes[i*HashSize : (i+1)*HashSize]
}

// Verify checks chunk i's bytes against the manifest.
func (m *Manifest) Verify(i int, data []byte) bool {
	want := m.Hash(i)
	if want == nil || len(data) != m.ChunkLen(i) {
		return false
	}
	got := sha256.Sum256(data)
	return string(got[:]) == string(want)
}

// Valid reports whether the manifest is internally consistent — the
// hash blob covers exactly NumChunks chunks and sizes are sane. Wire
// handlers call this before trusting a received manifest.
func (m *Manifest) Valid() bool {
	if m.Size < 0 || m.ChunkSize <= 0 {
		return false
	}
	return len(m.Hashes) == m.NumChunks()*HashSize
}

// Root is a single hash pinning the whole manifest (doc id, size,
// chunk size, every chunk hash) — what tests and callers compare to
// assert byte-identical transfers.
func (m *Manifest) Root() [HashSize]byte {
	h := sha256.New()
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(m.Doc))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.Size))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(m.ChunkSize))
	h.Write(hdr[:])
	h.Write(m.Hashes)
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// BuildManifest chunks data and hashes every chunk.
func BuildManifest(doc catalog.DocID, data []byte, chunkSize int) *Manifest {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	m := &Manifest{Doc: doc, Size: int64(len(data)), ChunkSize: chunkSize}
	m.Hashes = make([]byte, 0, m.NumChunks()*HashSize)
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		h := sha256.Sum256(data[off:end])
		m.Hashes = append(m.Hashes, h[:]...)
	}
	return m
}

// splitmix64 is the synthetic byte generator's word function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// syntheticFill writes doc's bytes for [off, off+len(dst)) into dst.
// Byte content is a pure function of (doc, absolute offset), so chunk
// boundaries — and therefore chunk size — never change the stream.
func syntheticFill(doc catalog.DocID, off int64, dst []byte) {
	seed := splitmix64(uint64(doc)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
	i := 0
	for i < len(dst) {
		word := uint64(off+int64(i)) >> 3
		v := splitmix64(seed ^ word*0xd1342543de82ef95)
		// Position within the 8-byte word this offset falls in.
		for b := int((off + int64(i)) & 7); b < 8 && i < len(dst); b++ {
			dst[i] = byte(v >> (8 * b))
			i++
		}
	}
}

// SyntheticChunk materializes chunk idx of a synthetic document.
func SyntheticChunk(doc catalog.DocID, size int64, chunkSize, idx int) []byte {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	off := int64(idx) * int64(chunkSize)
	if idx < 0 || off >= size {
		return nil
	}
	n := int64(chunkSize)
	if off+n > size {
		n = size - off
	}
	dst := make([]byte, n)
	syntheticFill(doc, off, dst)
	return dst
}

// SyntheticDoc materializes a whole synthetic document — the oracle
// tests compare fetched bytes against.
func SyntheticDoc(doc catalog.DocID, size int64) []byte {
	dst := make([]byte, size)
	syntheticFill(doc, 0, dst)
	return dst
}

// docEntry is one held document: explicit bytes, or synthetic (data
// nil) where only the size is recorded. Cached entries (demand-driven
// replicas installed by PutCached) additionally carry a last-hit stamp
// so the budget eviction and decay passes can order them; base entries
// (Put/Register) are never evicted or decayed.
type docEntry struct {
	data   []byte
	size   int64
	cached bool
	// last is the store clock value of the most recent serve; a pointer
	// so touch-on-serve works under the read lock shared by concurrent
	// chunk streams.
	last *atomic.Int64
}

// Store is a node's chunk store: the set of documents it can serve,
// with cached manifests. Safe for concurrent use; reads (Chunk,
// Manifest on a cached doc) take only an RLock, so many transfer
// streams can be served in parallel.
type Store struct {
	mu        sync.RWMutex
	chunkSize int
	docs      map[catalog.DocID]docEntry
	manifests map[catalog.DocID]*Manifest

	// clock is a logical tick advanced on every cached-entry serve;
	// LRU ordering compares these stamps, so eviction and decay are
	// deterministic under test (no wall-clock reads).
	clock atomic.Int64
	// cacheBudget caps the total bytes held by cached entries
	// (0 = caching disabled); cacheBytes is the current total.
	cacheBudget int64
	cacheBytes  int64
	// decayMark is the clock value at the previous Decay call: cached
	// entries not served since then are dropped by the next Decay.
	decayMark int64
}

// NewStore creates a store serving chunks of the given size
// (0 → DefaultChunkSize).
func NewStore(chunkSize int) *Store {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &Store{
		chunkSize: chunkSize,
		docs:      make(map[catalog.DocID]docEntry),
		manifests: make(map[catalog.DocID]*Manifest),
	}
}

// ChunkSize returns the store's transfer unit.
func (s *Store) ChunkSize() int { return s.chunkSize }

// Register marks doc as held with synthetic backing of the given size.
// An existing explicit blob is left in place (real bytes win).
func (s *Store) Register(doc catalog.DocID, size int64) {
	if size < 0 {
		return
	}
	s.mu.Lock()
	if e, ok := s.docs[doc]; !ok || e.data == nil {
		if !ok || e.size != size {
			s.docs[doc] = docEntry{size: size}
			delete(s.manifests, doc)
		}
	}
	s.mu.Unlock()
}

// Put installs explicit bytes for doc (replacing any synthetic
// registration or cached copy) and returns its manifest.
func (s *Store) Put(doc catalog.DocID, data []byte) *Manifest {
	m := BuildManifest(doc, data, s.chunkSize)
	s.mu.Lock()
	s.uncacheLocked(doc)
	s.docs[doc] = docEntry{data: data, size: int64(len(data))}
	s.manifests[doc] = m
	s.mu.Unlock()
	return m
}

// SetCacheBudget sets the byte budget for cached (demand-driven)
// replicas. Shrinking the budget evicts least-recently-hit cached
// entries until the remainder fits; 0 disables caching and drops every
// cached entry.
func (s *Store) SetCacheBudget(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	s.mu.Lock()
	s.cacheBudget = bytes
	s.evictLocked(0)
	s.mu.Unlock()
}

// CacheBudget returns the cached-replica byte budget.
func (s *Store) CacheBudget() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cacheBudget
}

// CacheBytes returns the bytes currently held by cached replicas.
func (s *Store) CacheBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cacheBytes
}

// CachedLen is the number of cached (evictable) documents held.
func (s *Store) CachedLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range s.docs {
		if e.cached {
			n++
		}
	}
	return n
}

// PutCached installs doc as a demand-driven replica under the cache
// budget, evicting least-recently-hit cached entries to make room.
// It reports whether the copy was installed: false when caching is
// disabled, the document alone exceeds the budget, or the store
// already holds the document (a base copy always wins).
func (s *Store) PutCached(doc catalog.DocID, data []byte) bool {
	size := int64(len(data))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cacheBudget <= 0 || size > s.cacheBudget {
		return false
	}
	if _, ok := s.docs[doc]; ok {
		return false
	}
	s.evictLocked(size)
	last := new(atomic.Int64)
	last.Store(s.clock.Add(1))
	s.docs[doc] = docEntry{data: data, size: size, cached: true, last: last}
	s.manifests[doc] = BuildManifest(doc, data, s.chunkSize)
	s.cacheBytes += size
	return true
}

// evictLocked drops least-recently-hit cached entries until cached
// bytes plus the incoming size fit the budget. Caller holds mu.
func (s *Store) evictLocked(incoming int64) {
	for s.cacheBytes+incoming > s.cacheBudget && s.cacheBytes > 0 {
		victim := catalog.DocID(0)
		oldest := int64(0)
		found := false
		for d, e := range s.docs {
			if !e.cached {
				continue
			}
			if hit := e.last.Load(); !found || hit < oldest {
				victim, oldest, found = d, hit, true
			}
		}
		if !found {
			return
		}
		s.uncacheLocked(victim)
		delete(s.docs, victim)
		delete(s.manifests, victim)
	}
}

// uncacheLocked credits back the byte accounting if doc is a cached
// entry (without removing it). Caller holds mu.
func (s *Store) uncacheLocked(doc catalog.DocID) {
	if e, ok := s.docs[doc]; ok && e.cached {
		s.cacheBytes -= e.size
	}
}

// Decay drops cached replicas that have not served a chunk or manifest
// since the previous Decay call, returning the dropped doc ids — the
// aging half of demand-driven replication: pushed and fetched copies
// disappear once the crowd moves on, base copies never do.
func (s *Store) Decay() []catalog.DocID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var dropped []catalog.DocID
	for d, e := range s.docs {
		if e.cached && e.last.Load() <= s.decayMark {
			dropped = append(dropped, d)
		}
	}
	for _, d := range dropped {
		s.uncacheLocked(d)
		delete(s.docs, d)
		delete(s.manifests, d)
	}
	s.decayMark = s.clock.Load()
	return dropped
}

// touch stamps a cached entry's last-hit clock; called under RLock
// from the serve paths (the pointer makes that safe).
func (s *Store) touch(e docEntry) {
	if e.cached {
		e.last.Store(s.clock.Add(1))
	}
}

// Drop forgets doc entirely.
func (s *Store) Drop(doc catalog.DocID) {
	s.mu.Lock()
	s.uncacheLocked(doc)
	delete(s.docs, doc)
	delete(s.manifests, doc)
	s.mu.Unlock()
}

// Has reports whether this store can serve doc.
func (s *Store) Has(doc catalog.DocID) bool {
	s.mu.RLock()
	_, ok := s.docs[doc]
	s.mu.RUnlock()
	return ok
}

// Len is the number of held documents.
func (s *Store) Len() int {
	s.mu.RLock()
	n := len(s.docs)
	s.mu.RUnlock()
	return n
}

// Manifest returns doc's manifest, computing and caching it on first
// use (synthetic documents hash their generated chunks once).
func (s *Store) Manifest(doc catalog.DocID) (*Manifest, bool) {
	s.mu.RLock()
	m, ok := s.manifests[doc]
	e, held := s.docs[doc]
	if held {
		s.touch(e)
	}
	s.mu.RUnlock()
	if ok {
		return m, true
	}
	if !held {
		return nil, false
	}
	if e.data != nil {
		m = BuildManifest(doc, e.data, s.chunkSize)
	} else {
		m = syntheticManifest(doc, e.size, s.chunkSize)
	}
	s.mu.Lock()
	// Another goroutine may have raced us here; either result is
	// identical, so last-write-wins is fine.
	s.manifests[doc] = m
	s.mu.Unlock()
	return m, true
}

func syntheticManifest(doc catalog.DocID, size int64, chunkSize int) *Manifest {
	m := &Manifest{Doc: doc, Size: size, ChunkSize: chunkSize}
	n := m.NumChunks()
	m.Hashes = make([]byte, 0, n*HashSize)
	buf := make([]byte, chunkSize)
	for i := 0; i < n; i++ {
		c := buf[:m.ChunkLen(i)]
		syntheticFill(doc, int64(i)*int64(chunkSize), c)
		h := sha256.Sum256(c)
		m.Hashes = append(m.Hashes, h[:]...)
	}
	return m
}

// Chunk returns the bytes of chunk idx, or false if the doc is not
// held or the index is out of range. Synthetic chunks are generated on
// the fly; explicit chunks alias the stored blob (callers must not
// mutate the returned slice).
func (s *Store) Chunk(doc catalog.DocID, idx int) ([]byte, bool) {
	s.mu.RLock()
	e, ok := s.docs[doc]
	if ok {
		s.touch(e)
	}
	s.mu.RUnlock()
	if !ok || idx < 0 {
		return nil, false
	}
	off := int64(idx) * int64(s.chunkSize)
	if off >= e.size {
		return nil, false
	}
	end := off + int64(s.chunkSize)
	if end > e.size {
		end = e.size
	}
	if e.data != nil {
		return e.data[off:end], true
	}
	dst := make([]byte, end-off)
	syntheticFill(doc, off, dst)
	return dst, true
}

// Bytes materializes the full document (for local hits in Fetch).
func (s *Store) Bytes(doc catalog.DocID) ([]byte, bool) {
	s.mu.RLock()
	e, ok := s.docs[doc]
	if ok {
		s.touch(e)
	}
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if e.data != nil {
		out := make([]byte, len(e.data))
		copy(out, e.data)
		return out, true
	}
	return SyntheticDoc(doc, e.size), true
}

// Assembly reassembles a document from chunks, verifying each against
// the manifest as it lands. It is the resume point: after a source
// dies, Missing lists exactly the chunks still owed and every verified
// chunk is kept.
type Assembly struct {
	man  *Manifest
	buf  []byte
	have []bool
	got  int
}

// NewAssembly allocates the reassembly buffer for m.
func NewAssembly(m *Manifest) *Assembly {
	return &Assembly{
		man:  m,
		buf:  make([]byte, m.Size),
		have: make([]bool, m.NumChunks()),
	}
}

// Manifest returns the manifest being assembled against.
func (a *Assembly) Manifest() *Manifest { return a.man }

// Add verifies and installs chunk idx. It returns (true, nil) when the
// chunk was new and verified, (false, nil) for a duplicate of an
// already-verified chunk, and (false, err) for a bad index or hash
// mismatch.
func (a *Assembly) Add(idx int, data []byte) (bool, error) {
	if idx < 0 || idx >= len(a.have) {
		return false, fmt.Errorf("%w: %d of %d", ErrBadIndex, idx, len(a.have))
	}
	if a.have[idx] {
		return false, nil
	}
	if !a.man.Verify(idx, data) {
		return false, fmt.Errorf("%w: chunk %d", ErrHashMismatch, idx)
	}
	copy(a.buf[int64(idx)*int64(a.man.ChunkSize):], data)
	a.have[idx] = true
	a.got++
	return true, nil
}

// Complete reports whether every chunk has been verified.
func (a *Assembly) Complete() bool { return a.got == len(a.have) }

// Got is the number of verified chunks so far.
func (a *Assembly) Got() int { return a.got }

// Missing returns up to limit indexes of chunks not yet verified
// (limit <= 0 means all), in ascending order.
func (a *Assembly) Missing(limit int) []int {
	if limit <= 0 {
		limit = len(a.have)
	}
	var out []int
	for i, ok := range a.have {
		if !ok {
			out = append(out, i)
			if len(out) == limit {
				break
			}
		}
	}
	return out
}

// Bytes returns the assembled document; ErrIncomplete until every
// chunk verified.
func (a *Assembly) Bytes() ([]byte, error) {
	if !a.Complete() {
		return nil, fmt.Errorf("%w: %d/%d chunks", ErrIncomplete, a.got, len(a.have))
	}
	return a.buf, nil
}
