package livenet

import (
	"testing"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
)

// Regression tests for the bug crop the chaos harness surfaced: query-id
// collisions across nodes, refillEntry duplicating resend targets, and
// the requester cache indexing multi-category documents under only
// their first category.

// TestQueryIDNoCollisionAcrossNodes pins the id-collision fix. The
// pre-fix scheme (`nextQuery<<16 | id&0xffff`) minted identical ids on
// any two nodes whose ids agree mod 65536 — node 1 and node 65537
// collided at every sequence number, so the flood-dedup `seen` set on
// intermediate nodes silently suppressed one of the two queries. The
// fixed scheme must keep ids distinct across such node pairs and across
// sequence numbers on one node.
func TestQueryIDNoCollisionAcrossNodes(t *testing.T) {
	pairs := [][2]model.NodeID{
		{1, 1 + 1<<16},         // agree mod 2^16 — the reported collision
		{0, 1 << 16},           // zero vs 65536
		{12345, 12345 + 3<<16}, // agree mod 2^16, larger ids
		{7, 7 + (1 << 20)},     // agree mod 2^20
	}
	for _, pr := range pairs {
		saltA, saltB := querySaltFor(pr[0]), querySaltFor(pr[1])
		if saltA == saltB {
			t.Fatalf("nodes %d and %d derived the same salt", pr[0], pr[1])
		}
		for seq := uint64(1); seq <= 2000; seq++ {
			if queryID(saltA, seq) == queryID(saltB, seq) {
				t.Fatalf("nodes %d and %d mint the same query id at seq %d",
					pr[0], pr[1], seq)
			}
		}
	}
	// Same node, distinct sequences: ids never repeat (mixQ is bijective,
	// but pin it — a regression here re-opens the seen-set suppression).
	seen := make(map[uint64]struct{}, 5000)
	salt := querySaltFor(9)
	for seq := uint64(1); seq <= 5000; seq++ {
		id := queryID(salt, seq)
		if _, dup := seen[id]; dup {
			t.Fatalf("node 9 repeated query id %#x at seq %d", id, seq)
		}
		seen[id] = struct{}{}
	}
}

// TestRefillEntryDeduplicates pins the refill fix: sweeping a pending
// query must not append targets already in its entry list, and repeated
// refills must not grow the list.
func TestRefillEntryDeduplicates(t *testing.T) {
	n := &Node{
		dcrt: map[catalog.CategoryID]overlay.DCRTEntry{
			3: {Cluster: 1},
		},
		nrt: map[model.ClusterID][]model.NodeID{
			1: {2, 3, 4},
		},
		book: newAddrBook(),
	}
	n.book.set(2, "a")
	n.book.set(3, "b")
	n.book.set(4, "c")
	pq := &pendingQuery{cat: 3, entry: []model.NodeID{2}}

	n.refillEntry(pq)
	want := map[model.NodeID]int{2: 1, 3: 1, 4: 1}
	got := map[model.NodeID]int{}
	for _, m := range pq.entry {
		got[m]++
	}
	if len(pq.entry) != 3 {
		t.Fatalf("after refill entry = %v, want exactly {2,3,4}", pq.entry)
	}
	for id, c := range want {
		if got[id] != c {
			t.Fatalf("after refill entry = %v: target %d appears %d times, want %d",
				pq.entry, id, got[id], c)
		}
	}

	// A second sweep pass over a still-pending query must be a no-op,
	// not another append of the full NRT list.
	n.refillEntry(pq)
	n.refillEntry(pq)
	if len(pq.entry) != 3 {
		t.Fatalf("repeated refills grew entry to %v (len %d), want stable 3",
			pq.entry, len(pq.entry))
	}

	// Unaddressable members (not in the book) stay out.
	n.nrt[1] = append(n.nrt[1], 9)
	n.refillEntry(pq)
	for _, m := range pq.entry {
		if m == 9 {
			t.Fatal("refill added a target with no address-book entry")
		}
	}
}

// multiCatInstance generates a model whose catalog is guaranteed to
// contain two-category documents.
func multiCatInstance(t *testing.T) (*model.Instance, *catalog.Document) {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 200
	cfg.Catalog.NumCats = 10
	cfg.Catalog.MultiCatFraction = 1.0
	cfg.NumNodes = 4
	cfg.NumClusters = 2
	cfg.Seed = 77
	inst, err := model.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inst.Catalog.Docs {
		if len(inst.Catalog.Docs[i].Categories) >= 2 {
			return inst, &inst.Catalog.Docs[i]
		}
	}
	t.Fatal("no multi-category document generated")
	return nil, nil
}

// TestCacheDocsIndexesAllCategories pins the cache-index fix: a cached
// multi-category document must be found by lookup under EVERY one of
// its categories, not only Categories[0] — the pre-fix behavior made
// repeat queries in the doc's other categories permanent cache misses.
// The fix now lives in cacheState.add (cachestate.go).
func TestCacheDocsIndexesAllCategories(t *testing.T) {
	inst, doc := multiCatInstance(t)
	cs, err := newCacheState(cache.LRU, 10*doc.Size)
	if err != nil {
		t.Fatal(err)
	}

	cs.add(inst, map[catalog.DocID]bool{doc.ID: true})
	for _, cat := range doc.Categories {
		got := cs.lookup(cat, 1)
		if len(got) != 1 || got[0] != doc.ID {
			t.Errorf("cached doc %d invisible under its category %d (got %v)",
				doc.ID, cat, got)
		}
	}

	// Consistent pruning: evict the doc by flooding the cache, then
	// every category's index must drop it on the next read.
	for i := range inst.Catalog.Docs {
		d := &inst.Catalog.Docs[i]
		if d.ID != doc.ID {
			cs.add(inst, map[catalog.DocID]bool{d.ID: true})
		}
	}
	if cs.docs.Peek(doc.ID) {
		t.Skip("flooding did not evict the doc; cache larger than expected")
	}
	for _, cat := range doc.Categories {
		for _, d := range cs.lookup(cat, 100) {
			if d == doc.ID {
				t.Errorf("evicted doc %d still served from category %d index", doc.ID, cat)
			}
		}
		for _, d := range cs.catIndex(cat) {
			if d == doc.ID {
				t.Errorf("evicted doc %d not pruned from category %d index", doc.ID, cat)
			}
		}
	}
}

// TestCachedInDropsDuplicateIndexEntries pins the dedup half of the
// pruning fix: a doc listed twice in one category index (evict + re-add
// histories) is returned once and the index collapses to one entry.
func TestCachedInDropsDuplicateIndexEntries(t *testing.T) {
	inst, doc := multiCatInstance(t)
	cs, err := newCacheState(cache.LRU, 10*doc.Size)
	if err != nil {
		t.Fatal(err)
	}
	_ = inst
	cat := doc.Categories[0]
	cs.seedCatIndex(cat, []catalog.DocID{doc.ID, doc.ID, doc.ID})
	cs.docs.Insert(doc.ID, doc.Size)
	if got := cs.lookup(cat, 10); len(got) != 1 || got[0] != doc.ID {
		t.Fatalf("lookup over a duplicated index returned %v, want [%d]", got, doc.ID)
	}
	if idx := cs.catIndex(cat); len(idx) != 1 {
		t.Fatalf("index not collapsed after read: %v", idx)
	}
}
