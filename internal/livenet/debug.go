package livenet

import (
	"net"
	"time"
)

// Introspection and injection seams for the chaos harness
// (internal/chaos, cmd/p2pchaos): a replaceable dialer, and snapshot
// accessors for the bounded-table invariants the soak runner checks
// between fault injections.

// SetDialer replaces the node's outbound dial function — the injection
// point for fault middleware and tests. Streams already established
// keep their connection; new dials (including reconnects) go through
// the replacement. Safe to call at any time.
func (n *Node) SetDialer(dial func(addr string) (net.Conn, error)) {
	n.tr.setDial(dial)
}

// TableSizes snapshots, through the event loop, the sizes of every
// state table that must stay bounded on a long-lived node: the pending
// query table, address book, NRT entries (across clusters), seen-set
// generations, membership tombstones, and the requester-cache category
// index. The soak runner asserts bounds on these under churn and
// partitions; a blocked call (the event loop wedged) is itself an
// invariant violation the caller detects by timeout.
func (n *Node) TableSizes() map[string]int {
	ch := make(chan map[string]int, 1)
	select {
	case n.cmds <- func(n *Node) {
		sizes := map[string]int{
			"pending": len(n.pending),
			"book":    len(n.book),
			"seen":    len(n.seenCur) + len(n.seenPrev),
		}
		nrt := 0
		for _, members := range n.nrt {
			nrt += len(members)
		}
		sizes["nrt"] = nrt
		cached := 0
		for _, docs := range n.cacheByCat {
			cached += len(docs)
		}
		sizes["cache_index"] = cached
		if n.det != nil {
			sizes["tombstones"] = len(n.det.Tombstones())
		}
		ch <- sizes
	}:
		select {
		case s := <-ch:
			return s
		case <-n.done:
			return nil
		}
	case <-n.done:
		return nil
	}
}

// OverduePending counts pending queries that outlived their deadline by
// more than slack — entries the sweep should have reaped. Anything
// non-zero means a query slot leaked past its expiry (a stuck query),
// one of the chaos harness's core invariants.
func (n *Node) OverduePending(slack time.Duration) int {
	ch := make(chan int, 1)
	select {
	case n.cmds <- func(n *Node) {
		now := time.Now()
		overdue := 0
		for _, pq := range n.pending {
			if now.After(pq.deadline.Add(slack)) {
				overdue++
			}
		}
		ch <- overdue
	}:
		select {
		case v := <-ch:
			return v
		case <-n.done:
			return 0
		}
	case <-n.done:
		return 0
	}
}
