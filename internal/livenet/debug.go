package livenet

import (
	"net"
	"time"
)

// Introspection and injection seams for the chaos harness
// (internal/chaos, cmd/p2pchaos): a replaceable dialer, and snapshot
// accessors for the bounded-table invariants the soak runner checks
// between fault injections.

// SetDialer replaces the node's outbound dial function — the injection
// point for fault middleware and tests. Streams already established
// keep their connection; new dials (including reconnects) go through
// the replacement. Safe to call at any time.
func (n *Node) SetDialer(dial func(addr string) (net.Conn, error)) {
	n.tr.setDial(dial)
}

// shardTables is one engine shard's contribution to TableSizes /
// OverduePending, collected inside the shard's loop.
type shardTables struct {
	pending int
	seen    int
	overdue int
}

// askShard runs a snapshot command inside one shard's loop. The zero
// value comes back when the node shuts down first (with the usual
// run-before-shutdown preference).
func (s *engineShard) askShard(slack time.Duration) (shardTables, bool) {
	ch := make(chan shardTables, 1)
	select {
	case s.cmds <- func(s *engineShard) {
		t := shardTables{
			pending: len(s.pending),
			seen:    len(s.seenCur) + len(s.seenPrev),
		}
		now := time.Now()
		for _, pq := range s.pending {
			if now.After(pq.deadline.Add(slack)) {
				t.overdue++
			}
		}
		ch <- t
	}:
	case <-s.n.done:
		return shardTables{}, false
	}
	select {
	case t := <-ch:
		return t, true
	case <-s.n.done:
		select {
		case t := <-ch:
			return t, true
		default:
			return shardTables{}, false
		}
	}
}

// TableSizes snapshots the sizes of every state table that must stay
// bounded on a long-lived node: the pending query table and seen-set
// generations (summed across every engine shard), address book, NRT
// entries (across clusters), membership tombstones, and the
// requester-cache category index. The soak runner asserts bounds on
// these under churn and partitions; a blocked call (a wedged loop) is
// itself an invariant violation the caller detects by timeout. The
// sweep visits each shard's loop in turn, so the snapshot probes every
// loop's liveness, not just the control loop's.
func (n *Node) TableSizes() map[string]int {
	sizes := map[string]int{"pending": 0, "seen": 0}
	for _, s := range n.shards {
		t, ok := s.askShard(0)
		if !ok {
			return nil
		}
		sizes["pending"] += t.pending
		sizes["seen"] += t.seen
	}
	ch := make(chan map[string]int, 1)
	select {
	case n.cmds <- func(n *Node) {
		ctrl := map[string]int{"book": n.book.len()}
		nrt := 0
		for _, members := range n.nrt {
			nrt += len(members)
		}
		ctrl["nrt"] = nrt
		if n.det != nil {
			ctrl["tombstones"] = len(n.det.Tombstones())
		}
		ch <- ctrl
	}:
	case <-n.done:
		return nil
	}
	var ctrl map[string]int
	select {
	case ctrl = <-ch:
	case <-n.done:
		select {
		case ctrl = <-ch:
		default:
			return nil
		}
	}
	for k, v := range ctrl {
		sizes[k] = v
	}
	if cs := n.cacheSt.Load(); cs != nil {
		sizes["cache_index"] = cs.indexSize()
	} else {
		sizes["cache_index"] = 0
	}
	return sizes
}

// OverduePending counts pending queries, across all shards, that
// outlived their deadline by more than slack — entries the sweeps
// should have reaped. Anything non-zero means a query slot leaked past
// its expiry (a stuck query), one of the chaos harness's core
// invariants.
func (n *Node) OverduePending(slack time.Duration) int {
	overdue := 0
	for _, s := range n.shards {
		t, ok := s.askShard(slack)
		if !ok {
			return 0
		}
		overdue += t.overdue
	}
	return overdue
}
