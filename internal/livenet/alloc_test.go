package livenet

import (
	"testing"

	"p2pshare/internal/catalog"
	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
)

// allocTestNode builds a minimal node whose query hot path can run
// without any network: the transport is pre-closed, so send() resolves
// the address and enqueue() no-ops deterministically — what's measured
// is exactly the in-process handler work (decode-side handling, shard
// dispatch state, reply/forward construction).
func allocTestNode() (*Node, *engineShard) {
	stats := metrics.NewSyncCounter()
	n := &Node{
		stats: stats,
		tr:    newTransport(1, 1, stats),
		book:  newAddrBook(),
		dcrt:  map[catalog.CategoryID]overlay.DCRTEntry{3: {Cluster: 1}},
		byCat: map[catalog.CategoryID][]catalog.DocID{3: {10, 11, 12, 13}},
		nrt:   map[model.ClusterID][]model.NodeID{1: {2, 3, 4}},
	}
	n.tr.close()
	for _, id := range []model.NodeID{2, 3, 4, 9} {
		n.book.set(id, "mem:0")
	}
	sh := newShards(n, 1, 1)[0]
	return n, sh
}

// TestHandleQueryAllocs pins the query hot path's allocation budget:
// one exact-capacity matches slice, one boxed ResultMsg reply, and ONE
// boxed QueryMsg shared by every forward edge. The seed code re-boxed
// the forward message per neighbor and grew matches through an append
// chain, so this pin is what keeps the hunt's wins from silently
// regressing.
func TestHandleQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	_, sh := allocTestNode()
	const runs = 2000
	// Pre-size the dedup set so map growth doesn't alias handler allocs.
	sh.seenCur = make(map[uint64]struct{}, 4*runs)
	var id uint64
	avg := testing.AllocsPerRun(runs, func() {
		id++
		sh.handleQuery(overlay.QueryMsg{
			ID: id, Category: 3, Want: 8, Origin: 9, Hops: 1, Entry: true,
		})
	})
	// matches slice + ResultMsg box + one shared forward box = 3.
	if avg > 3 {
		t.Fatalf("handleQuery allocates %.1f per run, budget 3", avg)
	}
}

// TestHandleQueryForwardOnlyAllocs pins the pure-relay path (no local
// matches): the only allocation is the one boxed forward message,
// regardless of fan-out width.
func TestHandleQueryForwardOnlyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	n, sh := allocTestNode()
	delete(n.byCat, 3) // nothing stored: every query only forwards
	const runs = 2000
	sh.seenCur = make(map[uint64]struct{}, 4*runs)
	var id uint64
	avg := testing.AllocsPerRun(runs, func() {
		id++
		sh.handleQuery(overlay.QueryMsg{
			ID: id, Category: 3, Want: 8, Origin: 9, Hops: 1,
		})
	})
	if avg > 1 {
		t.Fatalf("forward-only handleQuery allocates %.1f per run, budget 1 (one shared box)", avg)
	}
}

// TestHandleResultAllocs pins result folding: recording docs into the
// pending set must not allocate once the doc map has its size.
func TestHandleResultAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	_, sh := allocTestNode()
	pq := &pendingQuery{id: 42, want: 1 << 30, docs: make(map[catalog.DocID]bool, 8)}
	sh.pending[42] = pq
	docs := []catalog.DocID{10, 11, 12}
	avg := testing.AllocsPerRun(2000, func() {
		sh.handleResult(overlay.ResultMsg{ID: 42, Docs: docs, Hops: 2, From: 2})
	})
	if avg > 0 {
		t.Fatalf("handleResult allocates %.1f per run, budget 0", avg)
	}
}

// TestPendingResultAllocs pins the outcome snapshot: one exact-capacity
// Docs slice (plus the map-range loop's zero).
func TestPendingResultAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	pq := &pendingQuery{docs: map[catalog.DocID]bool{1: true, 2: true, 3: true}, hops: 2}
	avg := testing.AllocsPerRun(2000, func() {
		out := pq.result(true)
		if len(out.Docs) != 3 {
			t.Fatal("bad snapshot")
		}
	})
	if avg > 1 {
		t.Fatalf("pendingQuery.result allocates %.1f per run, budget 1", avg)
	}
}
