package livenet

import (
	"testing"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/overlay"
	"p2pshare/internal/wire"
)

// TestCorruptAdaptationFramesFailSafe injects adaptation messages a
// corrupt frame or a peer with a different catalog shape could produce —
// out-of-range category ids inside load maps, an out-of-range cluster
// id, moves to nonexistent clusters, and a move counter near max-uint64
// — and checks the node drops them all (counted), keeps its DCRT
// intact, keeps its event loop alive, and still accepts a legitimate
// move afterwards (the huge counter must not wedge the category).
func TestCorruptAdaptationFramesFailSafe(t *testing.T) {
	sh := churnShape()
	inst, assign, place, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Launch(inst, assign, place, Options{Seed: sh.Seed})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// An hour-long epoch: the clock never fires during the test, so the
	// only adaptation traffic is what the test injects.
	c.EnableAdaptation(AdaptConfig{Interval: time.Hour})

	n := c.Nodes[0]
	victim := catalog.CategoryID(-1)
	for cat, cl := range assign {
		if cl == 0 {
			victim = catalog.CategoryID(cat)
			break
		}
	}
	if victim == -1 {
		t.Fatal("no category assigned to cluster 0 in this shape")
	}

	inject := func(msg any) {
		select {
		case n.inbox <- envelope{From: 1, Msg: msg}:
		case <-time.After(time.Second):
			t.Fatal("inbox blocked")
		}
	}

	// Out-of-range categories inside a load frame (two in Hits, one in
	// Units), an out-of-range cluster id, moves with a bad category, a
	// bad cluster, and an implausible counter jump, and a gossiped
	// metadata update for a category outside the catalog.
	inject(wire.LeaderLoad{Epoch: 1, Cluster: 0, Aggregated: true,
		Hits:  map[catalog.CategoryID]int64{-4: 10, 9999: 3, victim: 1},
		Units: map[catalog.CategoryID]float64{-1: 2},
	})
	inject(wire.LeaderLoad{Epoch: 1, Cluster: 99})
	inject(wire.Move{Category: -3, Entry: overlay.DCRTEntry{Cluster: 1, MoveCounter: 1}})
	inject(wire.Move{Category: victim, Entry: overlay.DCRTEntry{Cluster: 99, MoveCounter: 1}})
	inject(wire.Move{Category: victim, Entry: overlay.DCRTEntry{Cluster: 1, MoveCounter: ^uint64(0)}})
	inject(overlay.MetadataUpdateMsg{Entries: map[catalog.CategoryID]overlay.DCRTEntry{
		7777: {Cluster: 1, MoveCounter: 2},
	}})

	waitFor(t, 5*time.Second, "bad frames counted", func() bool {
		s := n.Stats()
		return s["adapt_bad_categories"] == 3 &&
			s["adapt_bad_moves"] == 4 &&
			s["adapt_dropped_loads"] == 1
	})

	// The event loop survived and the DCRT is untouched.
	readEntry := func() overlay.DCRTEntry {
		ch := make(chan overlay.DCRTEntry, 1)
		n.cmds <- func(n *Node) { ch <- n.dcrt[victim] }
		return <-ch
	}
	if e := readEntry(); e.Cluster != 0 || e.MoveCounter != 0 {
		t.Fatalf("corrupt frames changed the DCRT: %+v", e)
	}

	// A legitimate move still applies afterwards.
	inject(wire.Move{Category: victim, Entry: overlay.DCRTEntry{Cluster: 1, MoveCounter: 1}})
	waitFor(t, 5*time.Second, "legitimate move applied", func() bool {
		e := readEntry()
		return e.Cluster == 1 && e.MoveCounter == 1
	})
}
