package livenet

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/content"
	"p2pshare/internal/memnet"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/wire"
)

// prevClusterLenForTest reads the shedding-cluster fallback map's size
// under the routing lock.
func (n *Node) prevClusterLenForTest() int {
	n.routeMu.RLock()
	defer n.routeMu.RUnlock()
	return len(n.prevCluster)
}

// waitMoveCounter polls until the node's DCRT entry for cat reaches
// counter — the injected move has been applied by the control loop.
func waitMoveCounter(t *testing.T, n *Node, cat catalog.CategoryID, counter uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for n.dcrtEntryForTest(cat).MoveCounter < counter {
		if time.Now().After(deadline) {
			t.Fatalf("move for category %d never reached counter %d", cat, counter)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPrevClusterBounded is the regression test for the shedding-cluster
// fallback leak: applyMoveEntry recorded every moved category's previous
// cluster and nothing ever deleted the entries, so a long-lived node
// accumulated one stale record per category ever moved — and fetchSources
// kept routing transfers at clusters that had long since dropped the
// bytes. Records now expire; any landing move prunes the stale remainder.
func TestPrevClusterBounded(t *testing.T) {
	sh := contentShape(31)
	c := launchOverMemnet(t, sh, nil, memnet.New(), Options{
		Shards:     1,
		CacheBytes: -1,
		Content:    &ContentConfig{},
	})
	n := c.Nodes[0]
	n.prevClusterTTLOverride = 50 * time.Millisecond

	inst, assign, _, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Reassign every served category to the next cluster over.
	var moved []catalog.CategoryID
	for _, cc := range inst.Catalog.Cats {
		cl := assign[cc.ID]
		if cl == model.NoCluster {
			continue
		}
		to := (cl + 1) % model.ClusterID(inst.NumClusters)
		if to == cl {
			continue
		}
		mv := wire.Move{Category: cc.ID, From: cl, Entry: overlay.DCRTEntry{
			Cluster:     to,
			MoveCounter: n.dcrtEntryForTest(cc.ID).MoveCounter + 1,
		}}
		if !n.routeInbound(envelope{From: n.id, Msg: mv}) {
			t.Fatal("move injection rejected")
		}
		moved = append(moved, cc.ID)
	}
	if len(moved) < 2 {
		t.Fatalf("shape yields %d movable categories, need >= 2", len(moved))
	}
	for _, cat := range moved {
		waitMoveCounter(t, n, cat, 1)
	}
	if got := n.prevClusterLenForTest(); got == 0 {
		t.Fatal("no shedding-cluster records after reassignments")
	}

	// Let every record expire, then land one more move: the prune that
	// rides on it must drop all the stale entries, leaving only the
	// fresh one. The pre-fix map kept every record forever.
	time.Sleep(120 * time.Millisecond)
	back := wire.Move{Category: moved[0], From: assign[moved[0]], Entry: overlay.DCRTEntry{
		Cluster:     assign[moved[0]],
		MoveCounter: n.dcrtEntryForTest(moved[0]).MoveCounter + 1,
	}}
	if !n.routeInbound(envelope{From: n.id, Msg: back}) {
		t.Fatal("move injection rejected")
	}
	waitMoveCounter(t, n, moved[0], 2)
	if got := n.prevClusterLenForTest(); got != 1 {
		t.Fatalf("prevCluster holds %d records after TTL expiry, want 1 (the leak is back)", got)
	}
}

// TestMovePendingQueueDrains is the regression test for move-shipping
// starvation: with every fetcher slot busy, shipMovedDocs used to count
// the batch as skipped and never retry it, leaving the move-acquired
// holder permanently byteless. Owed documents are now queued, and the
// next worker drains the whole queue.
func TestMovePendingQueueDrains(t *testing.T) {
	sh := contentShape(32)
	c := launchOverMemnet(t, sh, nil, memnet.New(), Options{
		Shards:     1,
		CacheBytes: -1,
		Content:    &ContentConfig{},
	})
	inst, _, _, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	n := c.Nodes[0]
	var owed []catalog.DocID
	for _, doc := range inst.Catalog.Docs {
		if !n.store.Has(doc.ID) {
			owed = append(owed, doc.ID)
		}
		if len(owed) == 4 {
			break
		}
	}
	if len(owed) < 4 {
		t.Fatalf("node 0 holds too much of the catalog: only %d fetchable docs", len(owed))
	}
	first, last := owed[:3], owed[3:]

	// Saturate the worker budget, then hand over a batch: it must queue,
	// not ship — and not be dropped.
	n.moveFetchers.Add(maxMoveFetchers)
	n.shipMovedDocs(first)
	if got := n.Stats()["transfer_move_queued"]; got != int64(len(first)) {
		t.Fatalf("transfer_move_queued = %d, want %d", got, len(first))
	}
	time.Sleep(50 * time.Millisecond)
	if got := n.Stats()["transfer_move_docs"]; got != 0 {
		t.Fatalf("docs shipped while every fetcher slot was busy (%d)", got)
	}

	// Free the slots and land the next batch: its worker must drain the
	// queued backlog too, not just its own docs.
	n.moveFetchers.Add(-maxMoveFetchers)
	n.shipMovedDocs(last)
	deadline := time.Now().Add(30 * time.Second)
	for n.Stats()["transfer_move_docs"] < int64(len(owed)) {
		if time.Now().After(deadline) {
			t.Fatalf("shipped %d/%d owed docs; queued batch was dropped",
				n.Stats()["transfer_move_docs"], len(owed))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, d := range owed {
		if !n.store.Has(d) {
			t.Fatalf("doc %d never installed", d)
		}
	}
	b, _ := n.store.Bytes(owed[0])
	if !bytes.Equal(b, content.SyntheticDoc(owed[0], sh.DocBytes)) {
		t.Fatal("shipped doc bytes differ from the synthetic oracle")
	}
}

// TestFetchAccountingConservation drives one node through every Fetch
// exit path — remote success, local hit, unknown document, timeout,
// pre-cancelled context, no-route, source exhaustion, and fetch on a
// closed node — and asserts the counters balance exactly:
//
//	fetches_total == fetches_ok + fetch_bad_doc + fetch_closed +
//	                 fetch_cancelled + fetch_timeouts + fetch_no_route +
//	                 fetch_exhausted
//
// mirroring the query engine's conservation discipline, with the
// throughput histogram observing exactly the transfers that moved bytes.
func TestFetchAccountingConservation(t *testing.T) {
	sh := contentShape(34)
	c := launchOverMemnet(t, sh, nil, memnet.New(), Options{
		Shards:     1,
		CacheBytes: -1,
		Content:    &ContentConfig{},
	})
	fid, docOK, catOK, _ := pickRemoteDoc(t, sh)
	n := c.Nodes[fid]
	inst, assign, _, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Remote success.
	if _, err := n.Fetch(ctx, docOK); err != nil {
		t.Fatalf("remote fetch: %v", err)
	}
	// Local hit: any doc this node holds from birth.
	var held catalog.DocID = -1
	for _, doc := range inst.Catalog.Docs {
		if n.store.Has(doc.ID) {
			held = doc.ID
			break
		}
	}
	if held < 0 {
		t.Fatal("node holds nothing")
	}
	if _, err := n.Fetch(ctx, held); err != nil {
		t.Fatalf("local fetch: %v", err)
	}
	// Unknown document.
	if _, err := n.Fetch(ctx, catalog.DocID(1<<30)); err == nil {
		t.Fatal("unknown doc fetch succeeded")
	}
	// Pre-cancelled context.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if _, err := n.Fetch(dead, docOK); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled fetch returned %v, want context.Canceled", err)
	}

	// A document nobody holds (dropped everywhere): discovery floods go
	// unanswered. With a short deadline that is a timeout; with a long
	// one the flood budget runs out and the fetch is exhausted.
	var gone catalog.DocID = -1
	for _, doc := range inst.Catalog.Docs {
		if doc.ID != docOK && assign[doc.Categories[0]] != model.NoCluster && !n.store.Has(doc.ID) {
			gone = doc.ID
			break
		}
	}
	if gone < 0 {
		t.Fatal("no droppable doc")
	}
	for _, m := range c.Nodes {
		m.store.Drop(gone)
	}
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	if _, err := n.Fetch(shortCtx, gone); !errors.Is(err, ErrTimeout) {
		t.Fatalf("unanswered fetch returned %v, want ErrTimeout", err)
	}
	shortCancel()
	if _, err := n.Fetch(ctx, gone); !errors.Is(err, ErrNoContent) {
		t.Fatalf("exhausted fetch returned %v, want ErrNoContent", err)
	}

	// No route: forget the category's cluster; with no fallback record
	// the source snapshot is empty.
	n.routeMu.Lock()
	delete(n.dcrt, catOK)
	n.routeMu.Unlock()
	if _, err := n.Fetch(ctx, docOK); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("routeless fetch returned %v, want ErrNoRoute", err)
	}

	// Closed node.
	n.Close()
	if _, err := n.Fetch(ctx, docOK); !errors.Is(err, ErrClosed) {
		t.Fatalf("fetch on closed node returned %v, want ErrClosed", err)
	}

	s := n.Stats()
	exits := s["fetches_ok"] + s["fetch_bad_doc"] + s["fetch_closed"] +
		s["fetch_cancelled"] + s["fetch_timeouts"] + s["fetch_no_route"] +
		s["fetch_exhausted"]
	if s["fetches_total"] != exits {
		t.Errorf("conservation broken: fetches_total=%d but exits sum to %d (%+v)",
			s["fetches_total"], exits, s)
	}
	// Spot-check each path actually fired — a conservation equation over
	// all-zero counters proves nothing.
	for _, k := range []string{"fetches_ok", "fetch_bad_doc", "fetch_closed",
		"fetch_cancelled", "fetch_timeouts", "fetch_no_route", "fetch_exhausted",
		"fetch_local_hits"} {
		if s[k] == 0 {
			t.Errorf("%s never incremented — test lost coverage of that exit path", k)
		}
	}
	// The histogram saw exactly the fetches that moved bytes: the one
	// remote success. Local hits and failures observe nothing.
	if got := n.TransferThroughput().Count(); got != 1 {
		t.Errorf("throughput histogram observed %d transfers, want 1", got)
	}
}

// TestCachedFetchBecomesReplica pins the requester side of demand-driven
// replication: under the admission threshold a fetch stays a plain
// fetch, at the threshold the verified bytes are installed as a cached
// replica, the next fetch is a local hit that moves zero network bytes,
// and the node now answers manifest requests for the document — a real
// replica holder grown from demand.
func TestCachedFetchBecomesReplica(t *testing.T) {
	sh := contentShape(35)
	c := launchOverMemnet(t, sh, nil, memnet.New(), Options{
		Shards:     1,
		CacheBytes: -1,
		Content:    &ContentConfig{CacheBytes: 64 << 20, CacheAdmitHits: 2},
	})
	fid, doc, _, _ := pickRemoteDoc(t, sh)
	n := c.Nodes[fid]
	want := content.SyntheticDoc(doc, sh.DocBytes)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// First fetch: one observation of demand — under the threshold, so
	// no cache install.
	got, err := n.Fetch(ctx, doc)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("first fetch: err=%v equal=%v", err, bytes.Equal(got, want))
	}
	st := n.Stats()
	if st["content_cache_installs"] != 0 || n.store.Has(doc) {
		t.Fatalf("single-shot fetch was cached (installs=%d, has=%v) — admission threshold ignored",
			st["content_cache_installs"], n.store.Has(doc))
	}
	if st["transfer_bytes_in"] != sh.DocBytes {
		t.Fatalf("transfer_bytes_in = %d after first fetch, want %d", st["transfer_bytes_in"], sh.DocBytes)
	}

	// Second fetch clears the threshold: still a remote fetch, but the
	// bytes earn a cache slot on completion.
	if got, err = n.Fetch(ctx, doc); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("second fetch: err=%v equal=%v", err, bytes.Equal(got, want))
	}
	st = n.Stats()
	if st["content_cache_installs"] != 1 || !n.store.Has(doc) {
		t.Fatalf("threshold fetch not cached (installs=%d, has=%v)",
			st["content_cache_installs"], n.store.Has(doc))
	}
	if st["content_cache_docs"] != 1 || st["content_cache_bytes"] != sh.DocBytes {
		t.Fatalf("cache gauges: docs=%d bytes=%d, want 1/%d",
			st["content_cache_docs"], st["content_cache_bytes"], sh.DocBytes)
	}

	// Third fetch: local hit, zero new network bytes.
	before := st["transfer_bytes_in"]
	if got, err = n.Fetch(ctx, doc); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("cached fetch: err=%v equal=%v", err, bytes.Equal(got, want))
	}
	st = n.Stats()
	if st["fetch_local_hits"] != 1 {
		t.Fatalf("fetch_local_hits = %d, want 1", st["fetch_local_hits"])
	}
	if st["transfer_bytes_in"] != before {
		t.Fatalf("cached fetch moved %d network bytes, want 0", st["transfer_bytes_in"]-before)
	}

	// The cached copy answers the crowd: a manifest request against this
	// node is now served, not forwarded.
	n.serveManifestReq(n.id, wire.ManifestReq{Doc: doc, Xfer: 99, Origin: n.id, TTL: discoverTTL})
	if got := n.Stats()["transfer_manifests_served"]; got != 1 {
		t.Fatalf("cached holder served %d manifests, want 1", got)
	}
}

// TestPushReplicateInstallsCachedCopy pins the holder side: a leader's
// Lite hint (wire.LeaderLoad naming under-loaded members) makes the
// overloaded holder push its hottest document's manifest, and the target
// pulls the chunks over the wire and installs a verified cached replica.
func TestPushReplicateInstallsCachedCopy(t *testing.T) {
	sh := contentShape(36)
	c := launchOverMemnet(t, sh, nil, memnet.New(), Options{
		Shards:     1,
		CacheBytes: -1,
		Content:    &ContentConfig{CacheBytes: 64 << 20, CacheAdmitHits: 1},
	})
	// Adaptation on but with an epoch too long to fire: the hint below is
	// injected, not measured.
	c.EnableAdaptation(AdaptConfig{Interval: time.Hour})

	fid, doc, cat, members := pickRemoteDoc(t, sh)
	inst, assign, _, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	cl := assign[cat]
	// The hint is only honored when it comes from the believed cluster
	// leader: the most capable member (ties to the lowest id).
	leader := model.NodeID(-1)
	var bestU float64
	for _, id := range members {
		u := inst.Nodes[id].Units
		if leader == -1 || u > bestU || (u == bestU && id < leader) {
			leader, bestU = id, u
		}
	}
	holder := members[0]
	if holder == leader {
		holder = members[1]
	}
	h, b := c.Nodes[holder], c.Nodes[fid]

	// Seed the holder's last serve window (written before the control
	// loop reads it via the injected envelope, so the handoff is ordered).
	h.lastServed = map[catalog.DocID]int64{doc: 50}
	hint := wire.LeaderLoad{Epoch: 1, Cluster: cl, Lite: []model.NodeID{fid}}
	deadline := time.Now().Add(30 * time.Second)
	for b.Stats()["replicate_installs"] == 0 {
		if !h.routeInbound(envelope{From: leader, Msg: hint}) {
			t.Fatal("hint injection rejected")
		}
		if time.Now().After(deadline) {
			t.Fatalf("push never installed a replica (holder %+v, target %+v)",
				h.Stats(), b.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h.Stats()["replicate_pushes"] == 0 {
		t.Fatal("holder pushed nothing")
	}
	if !b.store.Has(doc) {
		t.Fatal("target does not hold the pushed doc")
	}
	got, _ := b.store.Bytes(doc)
	if !bytes.Equal(got, content.SyntheticDoc(doc, sh.DocBytes)) {
		t.Fatal("pushed replica bytes differ from the synthetic oracle")
	}
	if b.Stats()["content_cache_docs"] != 1 {
		t.Fatalf("target cache gauges: %+v", b.Stats())
	}
	// The replica is a real holder now: it answers manifest requests.
	b.serveManifestReq(b.id, wire.ManifestReq{Doc: doc, Xfer: 99, Origin: b.id, TTL: discoverTTL})
	if b.Stats()["transfer_manifests_served"] == 0 {
		t.Fatal("pushed replica does not serve manifests")
	}
}
