package livenet

// The requester-side document cache (§7 viii), restructured for the
// sharded engine: one node-global concurrent cache instead of per-shard
// caches. Per-shard caches would re-open the multi-category index bug
// fixed in PR 5 — a document cached by a query on shard A must be a hit
// for a repeat query in ANY of its categories, which round-robin shard
// selection may register on shard B. The document store is a
// lock-striped cache (internal/cache.Striped); the per-category index
// is striped by category. Cache lookups happen in the caller goroutine
// (engine.go), so a cache hit never touches any loop at all.

import (
	"sync"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
)

// cacheIdxStripes stripes the per-category index; category ids hash
// across stripes so concurrent queries in different categories do not
// contend.
const cacheIdxStripes = 8

// cacheState is one immutable-identity cache generation: SetCacheCapacity
// swaps the whole state atomically (Node.cacheSt), so readers never see
// a half-replaced cache.
type cacheState struct {
	docs *cache.Striped
	idx  [cacheIdxStripes]cacheIdx
	// capBytes remembers the configured byte capacity (surfaced as the
	// cache_capacity_bytes stat; the striped cache splits it internally).
	capBytes int64
}

type cacheIdx struct {
	mu    sync.Mutex
	byCat map[catalog.CategoryID][]catalog.DocID
}

// newCacheState builds a cache generation; nil (no caching) is
// represented by a nil *cacheState, not a zero-capacity one.
func newCacheState(policy cache.Policy, bytes int64) (*cacheState, error) {
	docs, err := cache.NewStriped(policy, bytes)
	if err != nil {
		return nil, err
	}
	cs := &cacheState{docs: docs, capBytes: bytes}
	for i := range cs.idx {
		cs.idx[i].byCat = make(map[catalog.CategoryID][]catalog.DocID)
	}
	return cs, nil
}

func (cs *cacheState) idxFor(cat catalog.CategoryID) *cacheIdx {
	return &cs.idx[mixQ(uint64(cat))%cacheIdxStripes]
}

// lookup returns up to max currently-cached documents of a category,
// pruning evicted and duplicate ids from the per-category index as it
// goes (a doc evicted and re-cached can appear twice in one list; the
// dedup keeps the index and the returned set consistent).
func (cs *cacheState) lookup(cat catalog.CategoryID, max int) []catalog.DocID {
	ix := cs.idxFor(cat)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	list := ix.byCat[cat]
	live := list[:0]
	seen := make(map[catalog.DocID]struct{}, len(list))
	var out []catalog.DocID
	for _, d := range list {
		if _, dup := seen[d]; dup {
			continue // duplicate index entry; prune
		}
		if !cs.docs.Peek(d) {
			continue // evicted; prune
		}
		seen[d] = struct{}{}
		live = append(live, d)
		if len(out) < max {
			out = append(out, d)
		}
	}
	if len(live) == 0 && list != nil {
		delete(ix.byCat, cat)
		return out
	}
	ix.byCat[cat] = live
	return out
}

// add inserts received result documents, indexing each under EVERY
// category it belongs to. Indexing only under Categories[0] (the
// pre-fix behavior) made repeat queries in a multi-category doc's other
// categories permanent cache misses — the doc was resident but
// invisible to lookup. Stale index entries left by eviction are pruned
// by lookup on the next read of each list.
func (cs *cacheState) add(inst *model.Instance, docs map[catalog.DocID]bool) {
	for d := range docs {
		doc := inst.Catalog.Doc(d)
		if doc == nil || cs.docs.Peek(d) {
			continue
		}
		cs.docs.Insert(d, doc.Size)
		if cs.docs.Peek(d) {
			for _, cat := range doc.Categories {
				ix := cs.idxFor(cat)
				ix.mu.Lock()
				ix.byCat[cat] = append(ix.byCat[cat], d)
				ix.mu.Unlock()
			}
		}
	}
}

// indexSize counts index entries across all stripes (the bounded-table
// invariant the soak harness checks as cache_index).
func (cs *cacheState) indexSize() int {
	total := 0
	for i := range cs.idx {
		cs.idx[i].mu.Lock()
		for _, docs := range cs.idx[i].byCat {
			total += len(docs)
		}
		cs.idx[i].mu.Unlock()
	}
	return total
}

// catIndex snapshots one category's raw index list (tests).
func (cs *cacheState) catIndex(cat catalog.CategoryID) []catalog.DocID {
	ix := cs.idxFor(cat)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return append([]catalog.DocID(nil), ix.byCat[cat]...)
}

// seedCatIndex overwrites one category's raw index list (tests).
func (cs *cacheState) seedCatIndex(cat catalog.CategoryID, docs []catalog.DocID) {
	ix := cs.idxFor(cat)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.byCat[cat] = docs
}

// cacheDocs folds completed-query documents into the current cache
// generation (no-op when caching is disabled). Safe from any goroutine.
func (n *Node) cacheDocs(docs map[catalog.DocID]bool) {
	if cs := n.cacheSt.Load(); cs != nil && len(docs) > 0 {
		cs.add(n.inst, docs)
	}
}
