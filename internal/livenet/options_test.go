package livenet

// Equivalence tests for the unified construction API: every deprecated
// wrapper (LaunchWithHooks, LaunchWithOptions, StartNodeWithOptions)
// must produce a node behaviorally identical to the canonical
// Options-driven path, and birth-time configuration through Options
// must match the equivalent post-construction setter calls. The
// zero-value Options must reproduce each path's historical defaults.

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/membership"
	"p2pshare/internal/model"
)

func optionsShape() Shape {
	return Shape{Documents: 160, Categories: 6, Nodes: 8, Clusters: 2, Seed: 33}
}

// nodeFingerprint gathers every Options-governed observable of one node.
type nodeFingerprint struct {
	shards    int
	maxFlight int64
	cacheCap  int64
	hasCache  bool
	adaptOn   bool
	memberOn  bool
}

func fingerprint(n *Node) nodeFingerprint {
	s := n.Stats()
	cap, hasCache := s["cache_capacity_bytes"]
	alive := s["membership_alive"]
	return nodeFingerprint{
		shards:    n.Shards(),
		maxFlight: s["max_inflight"],
		cacheCap:  cap,
		hasCache:  hasCache,
		adaptOn:   s["adapt_enabled"] == 1,
		memberOn:  alive > 0,
	}
}

func checkFingerprintsEqual(t *testing.T, name string, a, b nodeFingerprint) {
	t.Helper()
	if a != b {
		t.Fatalf("%s: fingerprints differ:\n  wrapper path: %+v\n  options path: %+v", name, a, b)
	}
}

// TestZeroValueOptionsMatchesLaunchDefaults pins the historical Launch
// defaults against the zero-value Options: default shard count, default
// admission bound, default LRU cache, membership and adaptation off.
func TestZeroValueOptionsMatchesLaunchDefaults(t *testing.T) {
	sh := optionsShape()
	inst, assign, place, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Launch(inst, assign, place, Options{Seed: sh.Seed})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, n := range c.Nodes {
		fp := fingerprint(n)
		want := nodeFingerprint{
			shards:    DefaultShards(),
			maxFlight: DefaultMaxInFlight,
			cacheCap:  DefaultCacheBytes,
			hasCache:  true,
		}
		if fp != want {
			t.Fatalf("node %d zero-value Options: got %+v, want %+v", n.ID(), fp, want)
		}
	}
}

// TestLaunchWrapperEquivalence builds one cluster through the deprecated
// wrapper + post-construction setters and one through birth Options, and
// requires identical configuration observables plus working query
// service and dial-hook injection on both.
func TestLaunchWrapperEquivalence(t *testing.T) {
	sh := optionsShape()
	inst, assign, place, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	mcfg := membership.Config{}
	acfg := AdaptConfig{Interval: time.Hour} // never fires during the test
	const maxFlight, cacheBytes = 37, int64(2 << 20)

	var dialsA, dialsB atomic.Int64
	hook := func(ctr *atomic.Int64) NetHooks {
		return NetHooks{Dial: func(_ model.NodeID, addr string) (net.Conn, error) {
			ctr.Add(1)
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}}
	}

	// Old world: wrapper, then four setter calls per node.
	a, err := LaunchWithOptions(inst, assign, place, sh.Seed, hook(&dialsA), Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for _, n := range a.Nodes {
		n.SetMaxInFlight(maxFlight)
		if err := n.SetCacheCapacity(cache.LFU, cacheBytes); err != nil {
			t.Fatal(err)
		}
	}
	a.StartMembership(mcfg)
	a.EnableAdaptation(acfg)

	// New world: one call.
	b, err := Launch(inst, assign, place, Options{
		Seed:        sh.Seed,
		Shards:      3,
		Hooks:       hook(&dialsB),
		MaxInFlight: maxFlight,
		CacheBytes:  cacheBytes,
		CachePolicy: cache.LFU,
		Membership:  &mcfg,
		Adaptation:  &acfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := range a.Nodes {
		fa, fb := fingerprint(a.Nodes[i]), fingerprint(b.Nodes[i])
		checkFingerprintsEqual(t, "launch", fa, fb)
		if !fa.memberOn || !fa.adaptOn {
			t.Fatalf("node %d: membership/adaptation not enabled on wrapper path: %+v", i, fa)
		}
	}

	// Both clusters serve queries through their injected dialers.
	cat := bigCategory(inst)
	for name, c := range map[string]*Cluster{"wrapper": a, "options": b} {
		out, err := c.Nodes[0].Query(cat, 2, 5*time.Second)
		if err != nil || !out.Done {
			t.Fatalf("%s cluster query: %v (done=%v)", name, err, out.Done)
		}
	}
	if dialsA.Load() == 0 || dialsB.Load() == 0 {
		t.Fatalf("dial hooks not exercised: wrapper=%d options=%d", dialsA.Load(), dialsB.Load())
	}
}

// TestLaunchCacheDisabledEquivalence: CacheBytes < 0 at birth must equal
// the historical SetCacheCapacity(_, 0) disable — no cache generation at
// all, and repeat queries never count cache lookups.
func TestLaunchCacheDisabledEquivalence(t *testing.T) {
	sh := optionsShape()
	inst, assign, place, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := LaunchWithHooks(inst, assign, place, sh.Seed, NetHooks{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for _, n := range a.Nodes {
		if err := n.SetCacheCapacity(cache.LRU, 0); err != nil {
			t.Fatal(err)
		}
	}
	b, err := Launch(inst, assign, place, Options{Seed: sh.Seed, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	cat := bigCategory(inst)
	for name, c := range map[string]*Cluster{"wrapper": a, "options": b} {
		for i := 0; i < 2; i++ {
			if _, err := c.Nodes[0].Query(cat, 1, 5*time.Second); err != nil {
				t.Fatalf("%s query %d: %v", name, i, err)
			}
		}
		s := c.Nodes[0].Stats()
		if _, ok := s["cache_capacity_bytes"]; ok {
			t.Fatalf("%s: cache still present after disable: %v", name, s["cache_capacity_bytes"])
		}
		if s["cache_hit"]+s["cache_miss"] != 0 {
			t.Fatalf("%s: disabled cache recorded lookups: hit=%d miss=%d",
				name, s["cache_hit"], s["cache_miss"])
		}
	}
}

// TestStartNodeWrapperEquivalence: the deprecated StartNodeWithOptions
// and birth Options vs post-construction setters must agree, and the
// StartNode zero value must keep membership ON (its historical default).
func TestStartNodeWrapperEquivalence(t *testing.T) {
	sh := optionsShape()
	acfg := AdaptConfig{Interval: time.Hour}
	const maxFlight, cacheBytes = 19, int64(1 << 20)

	a, err := StartNodeWithOptions(sh, 0, "127.0.0.1:0", "", Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetMaxInFlight(maxFlight)
	if err := a.SetCacheCapacity(cache.LFU, cacheBytes); err != nil {
		t.Fatal(err)
	}
	a.EnableAdaptation(acfg)

	b, err := StartNode(sh, 1, "127.0.0.1:0", "", Options{
		Shards:      2,
		MaxInFlight: maxFlight,
		CacheBytes:  cacheBytes,
		CachePolicy: cache.LFU,
		Adaptation:  &acfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	fa, fb := fingerprint(a), fingerprint(b)
	checkFingerprintsEqual(t, "startnode", fa, fb)
	if !fa.memberOn {
		t.Fatalf("StartNode must keep membership on by default: %+v", fa)
	}
	if !fa.adaptOn || !fb.adaptOn {
		t.Fatalf("adaptation not enabled: wrapper=%v options=%v", fa.adaptOn, fb.adaptOn)
	}

	// Zero-value Options on the StartNode path: defaults, membership on.
	z, err := StartNode(sh, 2, "127.0.0.1:0", "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer z.Close()
	fz := fingerprint(z)
	want := nodeFingerprint{
		shards:    DefaultShards(),
		maxFlight: DefaultMaxInFlight,
		cacheCap:  DefaultCacheBytes,
		hasCache:  true,
		memberOn:  true,
	}
	if fz != want {
		t.Fatalf("StartNode zero-value Options: got %+v, want %+v", fz, want)
	}
}

// TestStartNodeHooksInjected: StartNode accepts the same NetHooks seam
// Launch does (the harness runs chaos middleware under standalone
// nodes), and the hooks carry real traffic during a join.
func TestStartNodeHooksInjected(t *testing.T) {
	sh := optionsShape()
	var listens, dials atomic.Int64
	hooks := NetHooks{
		Listen: func(_ model.NodeID, addr string) (net.Listener, error) {
			listens.Add(1)
			return net.Listen("tcp", addr)
		},
		Dial: func(_ model.NodeID, addr string) (net.Conn, error) {
			dials.Add(1)
			return net.DialTimeout("tcp", addr, 2*time.Second)
		},
	}
	seed, err := StartNode(sh, 0, "127.0.0.1:0", "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	n, err := StartNode(sh, 1, "127.0.0.1:0", seed.Addr(), Options{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if listens.Load() != 1 {
		t.Fatalf("listen hook called %d times, want 1", listens.Load())
	}
	// The persistent transport dials through the hook as soon as the
	// join's book reply goes out (membership probes keep it busy too).
	deadline := time.Now().Add(5 * time.Second)
	for dials.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if dials.Load() == 0 {
		t.Fatal("dial hook never exercised by the joined node")
	}
}
