package livenet

import (
	"context"
	"sync"
	"testing"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/membership"
	"p2pshare/internal/model"
)

// churnShape is a small all-nodes-running deployment: every shape node
// is started, so every cluster has live members.
func churnShape() Shape {
	return Shape{Documents: 200, Categories: 8, Nodes: 5, Clusters: 2, Seed: 91}
}

// TestChurnHardKillDetectedAndQueriesSurvive boots a 5-node
// StartNode-style deployment, hard-kills one member (no Leave — a
// crash), and checks the tentpole behaviors: survivors detect the death
// and evict the peer from book and NRT, in-flight queries that may have
// targeted the victim still complete via resend-on-silence, and a
// graceful Leave is folded in without the suspicion delay.
func TestChurnHardKillDetectedAndQueriesSurvive(t *testing.T) {
	sh := churnShape()
	inst, _, place, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}

	seed, err := StartNode(sh, 0, "127.0.0.1:0", "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := []*Node{seed}
	closed := make([]bool, sh.Nodes)
	defer func() {
		for i, n := range nodes {
			if !closed[i] {
				n.Close()
			}
		}
	}()
	for id := model.NodeID(1); int(id) < sh.Nodes; id++ {
		n, err := StartNode(sh, id, "127.0.0.1:0", seed.Addr(), Options{})
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		nodes = append(nodes, n)
	}

	// Wait for the book to fully gossip.
	waitFor(t, 10*time.Second, "full address books", func() bool {
		for _, n := range nodes {
			if n.KnownPeers() != sh.Nodes {
				return false
			}
		}
		return true
	})

	// Pick a category with several live holders, and a victim (not the
	// querying node 0) that holds it — killing a holder exercises the
	// resend path rather than an untouched branch.
	holders := make(map[catalog.CategoryID]map[model.NodeID]bool)
	for k := range place.Stored {
		for _, d := range place.Stored[k] {
			cat := inst.Catalog.Doc(d).Categories[0]
			if holders[cat] == nil {
				holders[cat] = make(map[model.NodeID]bool)
			}
			holders[cat][model.NodeID(k)] = true
		}
	}
	var testCat catalog.CategoryID
	victim := model.NodeID(-1)
	for cat, hs := range holders {
		if len(hs) < 3 {
			continue
		}
		for h := range hs {
			if h != 0 {
				testCat, victim = cat, h
				break
			}
		}
		if victim != -1 {
			break
		}
	}
	if victim == -1 {
		t.Fatal("no category with enough holders in this shape")
	}

	// Disable the requester cache: repeat queries for the same category
	// must hit the network every time, or the kill-survival assertions
	// would be answered locally in zero hops and prove nothing.
	if err := nodes[0].SetCacheCapacity(cache.LRU, 0); err != nil {
		t.Fatal(err)
	}

	if out, err := nodes[0].Query(testCat, 1, 5*time.Second); err != nil || !out.Done {
		t.Fatalf("pre-kill query failed: %+v, %v", out, err)
	}

	// Launch queries, then hard-kill the victim while they are in
	// flight: any query whose entry target was the victim must recover
	// by re-sending to another serving-cluster member.
	const inFlight = 8
	var wg sync.WaitGroup
	errs := make([]error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			out, err := nodes[0].QueryContext(ctx, testCat, 1)
			if err == nil && !out.Done {
				err = ErrTimeout
			}
			errs[i] = err
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let some queries reach the wire
	killed := time.Now()
	nodes[victim].Close()
	closed[victim] = true
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("in-flight query %d failed across the kill: %v", i, err)
		}
	}

	// Survivors detect the death (suspect timeout + probing slack) and
	// evict the victim everywhere.
	survivors := make([]*Node, 0, sh.Nodes-1)
	for id, n := range nodes {
		if model.NodeID(id) != victim {
			survivors = append(survivors, n)
		}
	}
	waitFor(t, 15*time.Second, "death detected on all survivors", func() bool {
		for _, n := range survivors {
			if alive, _ := n.MembershipCounts(); alive != sh.Nodes-1 {
				return false
			}
		}
		return true
	})
	t.Logf("death detected in %v", time.Since(killed))
	waitFor(t, 5*time.Second, "book eviction on all survivors", func() bool {
		for _, n := range survivors {
			if n.KnownPeers() != sh.Nodes-1 {
				return false
			}
		}
		return true
	})
	evictions := int64(0)
	for _, n := range survivors {
		s := n.Stats()
		evictions += s["membership_evictions"]
		if s["membership_alive"] != int64(sh.Nodes-1) {
			t.Errorf("node %d alive gauge = %d, want %d", n.ID(), s["membership_alive"], sh.Nodes-1)
		}
	}
	if evictions == 0 {
		t.Error("no membership evictions counted on any survivor")
	}

	// Queries keep succeeding after the eviction settled.
	for i := 0; i < 5; i++ {
		if out, err := nodes[0].Query(testCat, 1, 5*time.Second); err != nil || !out.Done {
			t.Fatalf("post-detection query %d failed: %+v, %v", i, out, err)
		}
	}

	// Graceful departure: Leave announces the exit, so survivors evict
	// without waiting out a suspicion.
	leaver := survivors[len(survivors)-1]
	for i, n := range nodes {
		if n == leaver {
			closed[i] = true
		}
	}
	left := time.Now()
	leaver.Leave()
	remaining := survivors[:len(survivors)-1]
	waitFor(t, 5*time.Second, "leave detected", func() bool {
		for _, n := range remaining {
			if alive, _ := n.MembershipCounts(); alive != sh.Nodes-2 {
				return false
			}
		}
		return true
	})
	if d := time.Since(left); d > 4*time.Second {
		t.Errorf("leave took %v to propagate; should not need a suspicion timeout", d)
	}
}

// TestAdaptationRebalancesSkewedLoad drives a heavily skewed workload —
// every query targets categories served by one cluster — and checks the
// §6.1 live dynamics: leaders measure the skew (fairness below the low
// threshold), the chosen leader reassigns categories, the moves
// propagate under the move-counter rule, the receiving cluster re-places
// the moved categories' documents, and the measured fairness rises.
func TestAdaptationRebalancesSkewedLoad(t *testing.T) {
	sh := Shape{Documents: 240, Categories: 8, Nodes: 12, Clusters: 2, Seed: 17}
	inst, assign, place, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Launch(inst, assign, place, Options{Seed: sh.Seed})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.StartMembership(membership.Config{})
	c.EnableAdaptation(AdaptConfig{
		Interval:       700 * time.Millisecond,
		LowThreshold:   0.9,
		TargetFairness: 0.95,
		MaxMoves:       8,
	})

	// The skewed demand: every category initially assigned to cluster 0.
	var hotCats []catalog.CategoryID
	for cat, cl := range assign {
		if cl == 0 {
			hotCats = append(hotCats, catalog.CategoryID(cat))
		}
	}
	if len(hotCats) < 2 {
		t.Skipf("shape put %d categories on cluster 0; need >= 2 to rebalance", len(hotCats))
	}
	origin := c.Nodes[0]
	// The requester cache would absorb every repeat query after the
	// first round — zero network traffic, zero hits, and every idle
	// epoch measuring as perfectly fair. The skew must stay live.
	if err := origin.SetCacheCapacity(cache.LRU, 0); err != nil {
		t.Fatal(err)
	}
	driveRound := func() {
		for _, cat := range hotCats {
			origin.Query(cat, 1, 2*time.Second)
		}
	}

	// Phase 1: drive the skew until a leader measures it. An epoch that
	// closed before any hits landed measures as perfectly fair (all
	// zeros), so wait specifically for a below-threshold reading.
	initial := int64(-1)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && initial < 0 {
		driveRound()
		for _, n := range c.Nodes {
			if f := n.Fairness(); f >= 0 && f < 900 {
				initial = f
				break
			}
		}
	}
	if initial < 0 {
		t.Fatal("skew never registered: no leader measured fairness below 0.9 within 20s")
	}

	// Phase 2: keep driving until the chosen leader moves categories.
	waitMoves := time.Now().Add(20 * time.Second)
	for time.Now().Before(waitMoves) && c.Stats()["adapt_moves"] == 0 {
		driveRound()
	}
	if c.Stats()["adapt_moves"] == 0 {
		t.Fatal("no category moves despite sustained skew")
	}
	if c.Stats()["dcrt_moves"] == 0 {
		t.Fatal("moves announced but no DCRT entries applied")
	}

	// Phase 3: same workload after rebalancing — measured fairness must
	// rise, and every hot category (including moved ones, now served by
	// the receiving cluster's re-placed replicas) stays answerable.
	final := initial
	waitRise := time.Now().Add(25 * time.Second)
	for time.Now().Before(waitRise) && final < 750 {
		driveRound()
		for _, n := range c.Nodes {
			if f := n.Fairness(); f > final {
				final = f
			}
		}
	}
	if final <= initial || final < 750 {
		t.Fatalf("fairness did not rise after rebalancing: initial %d/1000, final %d/1000", initial, final)
	}
	t.Logf("fairness rose %d/1000 -> %d/1000 after %d moves",
		initial, final, c.Stats()["adapt_moves"])
	for _, cat := range hotCats {
		ok := false
		for try := 0; try < 3 && !ok; try++ {
			out, err := origin.Query(cat, 1, 3*time.Second)
			ok = err == nil && out.Done
		}
		if !ok {
			t.Errorf("category %d unanswerable after rebalancing", cat)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(40 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
