package livenet

// Online adaptation: the §6.1 dynamics ported from the simulated overlay
// to the live network. Time is divided into wall-clock epochs (all
// processes of a deployment share the machine clock, or clocks close
// enough for multi-second epochs). Within each epoch:
//
//	step 0 (epoch start)  every node reports its per-category hit counts
//	                      and unit mass to the leader of each cluster it
//	                      belongs to, then resets its counters — each
//	                      report is one epoch's measurement;
//	step 1 (half epoch)   each leader folds the reports into its
//	                      cluster's load and shares the aggregate with
//	                      the other clusters' leaders;
//	step 2 (3/4 epoch)    the chosen leader — the leader of the cluster
//	                      with the highest measured normalized
//	                      popularity — computes Jain's fairness index
//	                      over the heard loads and, below the low
//	                      threshold, runs MaxFair_Reassign on the
//	                      measured state and announces the category
//	                      moves.
//
// Leader election is deterministic rather than gossiped: node
// capabilities (Units) are part of the shared deterministic model, so
// the leader of a cluster is simply its most capable LIVE member (ties
// to the lowest id), computed locally by everyone against the failure
// detector's view. Nodes whose liveness views briefly disagree send
// reports to different believed leaders; mis-routed reports are dropped
// and the next epoch converges.
//
// Category moves carry a move counter (§6.1.2 conflict resolution: the
// higher counter wins) and propagate both by direct announcement to the
// affected clusters and by epidemic metadata gossip. Members of the
// receiving cluster re-run the intra-cluster placement policy for the
// moved category (replica.PlaceCategory) and store their deterministic
// share, so the category is servable at its new home without a
// coordinator.

import (
	"sort"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/core"
	"p2pshare/internal/fairness"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/replica"
	"p2pshare/internal/timerwheel"
	"p2pshare/internal/wire"
)

// AdaptConfig tunes the live adaptation loop. Zero fields take the
// defaults (the simulated overlay's thresholds, a 3s epoch).
type AdaptConfig struct {
	// Interval is the epoch length (the paper's "periodically, e.g.,
	// every day", compressed for testability).
	Interval time.Duration
	// LowThreshold triggers rebalancing when the measured fairness
	// index falls below it.
	LowThreshold float64
	// TargetFairness is the reassignment's stopping criterion.
	TargetFairness float64
	// MaxMoves bounds category moves per epoch.
	MaxMoves int
}

func (c AdaptConfig) withDefaults() AdaptConfig {
	if c.Interval <= 0 {
		c.Interval = 3 * time.Second
	}
	if c.LowThreshold <= 0 {
		c.LowThreshold = 0.83
	}
	if c.TargetFairness <= 0 {
		c.TargetFairness = 0.92
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 16
	}
	return c
}

// adaptState is the adaptation layer's event-loop-owned state.
type adaptState struct {
	cfg AdaptConfig
	// members is the deterministic cluster membership snapshot taken at
	// enable time (identical in every process of the deployment, since
	// it derives from the shared model and initial assignment); mine
	// lists the clusters this node belongs to.
	members map[model.ClusterID][]model.NodeID
	mine    []model.ClusterID
	// epoch/step track progress through the current wall-clock epoch.
	epoch uint64
	step  int
	// agg accumulates member reports at a leader; loads holds the
	// finalized per-cluster aggregates this leader has heard.
	agg   map[model.ClusterID]*clusterLoad
	loads map[model.ClusterID]*clusterLoad
	// serves accumulates per-member content-serve loads at a leader
	// (LeaderLoad.Served), feeding the demand-driven replication hints.
	serves map[model.ClusterID]*serveLoad
}

// serveLoad is one cluster's per-member serve-load measurements for one
// epoch — the content-plane analogue of clusterLoad, kept per member
// because the leader's job is to pair overloaded holders with
// under-loaded push targets, not to aggregate.
type serveLoad struct {
	epoch  uint64
	byNode map[model.NodeID]int64
}

// clusterLoad is one cluster's measured load for one epoch.
type clusterLoad struct {
	epoch uint64
	hits  map[catalog.CategoryID]int64
	units map[catalog.CategoryID]float64
}

// normPop is the cluster's measured normalized popularity (hits per
// unit of serving capacity). A cluster with hits but no measured units
// reports the largest load, mirroring the overlay's convention.
func (cl *clusterLoad) normPop() float64 {
	var hits int64
	var units float64
	for _, h := range cl.hits {
		hits += h
	}
	for _, u := range cl.units {
		units += u
	}
	if units == 0 {
		if hits == 0 {
			return 0
		}
		return 1e18 // effectively infinite, but finite for Jain
	}
	return float64(hits) / units
}

// EnableAdaptation turns on the adaptation loop. Idempotent; safe any
// time after the node's loops are running. Works best with membership
// enabled (leader election then excludes dead nodes); without it, every
// static cluster member is considered electable.
func (n *Node) EnableAdaptation(cfg AdaptConfig) {
	enabled := make(chan struct{})
	select {
	case n.cmds <- func(n *Node) {
		n.enableAdaptation(cfg)
		close(enabled)
	}:
		select {
		case <-enabled:
		case <-n.done:
			// Either the control loop enabled it just before shutdown or
			// it never will; nothing left to wait for.
		}
	case <-n.done:
	}
}

// EnableAdaptation turns on adaptation on every node of a launched
// cluster.
func (c *Cluster) EnableAdaptation(cfg AdaptConfig) {
	for _, n := range c.Nodes {
		if n != nil {
			n.EnableAdaptation(cfg)
		}
	}
}

// enableAdaptation builds the membership snapshot and starts the epoch
// clock. Runs in the event loop.
func (n *Node) enableAdaptation(cfg AdaptConfig) {
	if n.adapt != nil {
		return
	}
	cfg = cfg.withDefaults()
	assign := make([]model.ClusterID, len(n.inst.Catalog.Cats))
	for i := range assign {
		assign[i] = model.NoCluster
	}
	for cat, e := range n.dcrt {
		if int(cat) < len(assign) {
			assign[cat] = e.Cluster
		}
	}
	mem, err := model.NewMembership(n.inst, assign)
	if err != nil {
		n.stats.Add("adapt_enable_errors", 1)
		return
	}
	members := make(map[model.ClusterID][]model.NodeID, n.inst.NumClusters)
	var mine []model.ClusterID
	for c := 0; c < n.inst.NumClusters; c++ {
		cl := model.ClusterID(c)
		ms := append([]model.NodeID(nil), mem.NodesOf(cl)...)
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		members[cl] = ms
		if containsNode(ms, n.id) {
			mine = append(mine, cl)
		}
	}
	n.adapt = &adaptState{
		cfg:     cfg,
		members: members,
		mine:    mine,
		agg:     make(map[model.ClusterID]*clusterLoad),
		loads:   make(map[model.ClusterID]*clusterLoad),
		serves:  make(map[model.ClusterID]*serveLoad),
	}
	n.gauges.Set("adapt_enabled", 1)
	tick := cfg.Interval / 8
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	// The epoch clock rides the shared timerwheel (membership's probe
	// clock also ticks the adaptation layer; both paths are idempotent per
	// step, so double or dropped ticks are harmless — the next tick
	// catches the state machine up).
	n.addTimer(timerwheel.Default().Every(tick, func(now time.Time) {
		select {
		case n.cmds <- func(n *Node) { n.adaptTick(now) }:
		default:
			n.stats.Add("adapt_tick_skips", 1)
		}
	}))
}

// adaptTick advances the epoch state machine. Runs in the event loop.
func (n *Node) adaptTick(now time.Time) {
	ad := n.adapt
	if ad == nil {
		return
	}
	e := uint64(now.UnixNano()) / uint64(ad.cfg.Interval)
	if e != ad.epoch {
		ad.epoch = e
		ad.step = 0
	}
	frac := time.Duration(now.UnixNano()) % ad.cfg.Interval
	switch {
	case ad.step == 0:
		n.adaptReport(e)
		if e%cacheDecayEpochs == 0 {
			n.contentDecay()
		}
		ad.step = 1
	case ad.step == 1 && frac >= ad.cfg.Interval/2:
		n.adaptAggregate(e)
		ad.step = 2
	case ad.step == 2 && frac >= 3*ad.cfg.Interval/4:
		n.adaptEvaluate(e)
		ad.step = 3
	}
}

// leaderOf returns the cluster's leader under the current liveness
// view: the most capable live member, ties to the lowest id. With no
// detector every static member is electable; with one, only members the
// detector considers usable (self included).
func (n *Node) leaderOf(cl model.ClusterID) (model.NodeID, bool) {
	best := model.NodeID(-1)
	var bestU float64
	for _, id := range n.adapt.members[cl] {
		if id != n.id && n.det != nil && !n.det.IsLive(id) {
			continue
		}
		u := n.inst.Nodes[id].Units
		if best == -1 || u > bestU || (u == bestU && id < best) {
			best, bestU = id, u
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}

// adaptReport is step 0: drain every engine shard's hit counters into
// one epoch measurement and report it to each of this node's clusters'
// leaders. The drain itself resets the shard counters, so each report
// covers exactly one epoch.
func (n *Node) adaptReport(e uint64) {
	ad := n.adapt
	measured := n.drainHits()
	// The content plane reports alongside the query plane: the drained
	// per-doc serve window feeds this node's own hot-doc ranking
	// (lastServed, read when a push hint arrives) and its total rides
	// the same LeaderLoad frame to the leader.
	servedDocs, servedTotal := n.drainServed()
	if len(servedDocs) > 0 {
		n.lastServed = servedDocs
	}
	for _, cl := range ad.mine {
		hits, units := n.ownLoad(cl, measured)
		leader, ok := n.leaderOf(cl)
		if !ok {
			continue
		}
		if leader == n.id {
			ad.mergeReport(cl, e, hits, units)
			ad.mergeServe(cl, e, n.id, servedTotal)
			continue
		}
		if len(hits) == 0 && len(units) == 0 && servedTotal == 0 {
			continue
		}
		n.send(leader, wire.LeaderLoad{Epoch: e, Cluster: cl, Hits: hits, Units: units, Served: servedTotal})
	}
}

// contentDecay ages the replica cache one decay interval: cached copies
// not served since the previous pass are dropped, and the demand window
// gating cache admission resets — so "recent demand" means within the
// last few epochs on both sides.
func (n *Node) contentDecay() {
	if n.store == nil || n.cacheAdmit <= 0 {
		return
	}
	if dropped := n.store.Decay(); len(dropped) > 0 {
		n.stats.Add("content_cache_decayed", int64(len(dropped)))
	}
	n.resetDemand()
}

// ownLoad snapshots this node's measurement for one of its clusters:
// hit counts (drained from the shards by the caller) of the categories
// currently routed there, and its per-category unit mass
// u_k·p(D_s(k))/p(D(k)) (§4.3.3) over its stored documents.
func (n *Node) ownLoad(cl model.ClusterID, measured map[catalog.CategoryID]int64) (map[catalog.CategoryID]int64, map[catalog.CategoryID]float64) {
	hits := make(map[catalog.CategoryID]int64)
	for c, h := range measured {
		if h > 0 && n.dcrt[c].Cluster == cl {
			hits[c] = h
		}
	}
	units := make(map[catalog.CategoryID]float64)
	var pDk float64
	for d := range n.dt {
		pDk += n.inst.Catalog.Doc(d).Popularity
	}
	if pDk > 0 {
		u := n.inst.Nodes[n.id].Units
		for cat, docs := range n.byCat {
			if n.dcrt[cat].Cluster != cl || len(docs) == 0 {
				continue
			}
			var sum float64
			for _, d := range docs {
				sum += n.inst.Catalog.Doc(d).Popularity
			}
			units[cat] = u * sum / pDk
		}
	}
	return hits, units
}

// mergeReport folds one member report into a leader's aggregation
// state; a report from a newer epoch resets the accumulator.
func (ad *adaptState) mergeReport(cl model.ClusterID, e uint64, hits map[catalog.CategoryID]int64, units map[catalog.CategoryID]float64) {
	st := ad.agg[cl]
	if st == nil || st.epoch != e {
		st = &clusterLoad{
			epoch: e,
			hits:  make(map[catalog.CategoryID]int64),
			units: make(map[catalog.CategoryID]float64),
		}
		ad.agg[cl] = st
	}
	for c, h := range hits {
		st.hits[c] += h
	}
	for c, u := range units {
		st.units[c] += u
	}
}

// mergeServe records one member's serve-load report at a leader; a
// report from a newer epoch resets the accumulator.
func (ad *adaptState) mergeServe(cl model.ClusterID, e uint64, from model.NodeID, served int64) {
	sv := ad.serves[cl]
	if sv == nil || sv.epoch != e {
		sv = &serveLoad{epoch: e, byNode: make(map[model.NodeID]int64)}
		ad.serves[cl] = sv
	}
	sv.byNode[from] = served
}

const (
	// pushHintMinServes is the absolute serve-load floor below which a
	// member is never flagged overloaded — trivial load needs no
	// replication however skewed it is.
	pushHintMinServes = 16
	// maxLiteTargets caps how many under-loaded members one hint names.
	maxLiteTargets = 4
)

// pushHints is the leader half of demand-driven replication, run at
// aggregation time: pair members whose measured serve load is far above
// the cluster mean with the lightest-loaded live members, and tell each
// overloaded holder who to push at (LeaderLoad.Lite). Members that
// reported nothing count as zero load — they are exactly the idle
// capacity a flash crowd should spread onto.
func (n *Node) pushHints(cl model.ClusterID, e uint64) {
	ad := n.adapt
	sv := ad.serves[cl]
	if sv == nil || sv.epoch != e || len(sv.byNode) == 0 {
		return
	}
	members := ad.members[cl]
	if len(members) < 2 {
		return
	}
	var total int64
	for _, w := range sv.byNode {
		total += w
	}
	if total < pushHintMinServes {
		return
	}
	mean := float64(total) / float64(len(members))
	var lite []model.NodeID
	for _, id := range members {
		if id != n.id && n.det != nil && !n.det.IsLive(id) {
			continue
		}
		if float64(sv.byNode[id]) <= mean {
			lite = append(lite, id)
		}
	}
	sort.Slice(lite, func(i, j int) bool {
		if sv.byNode[lite[i]] != sv.byNode[lite[j]] {
			return sv.byNode[lite[i]] < sv.byNode[lite[j]]
		}
		return lite[i] < lite[j]
	})
	if len(lite) > maxLiteTargets {
		lite = lite[:maxLiteTargets]
	}
	if len(lite) == 0 {
		return
	}
	hint := wire.LeaderLoad{Epoch: e, Cluster: cl, Lite: lite}
	for _, id := range members {
		w, reported := sv.byNode[id]
		if !reported || w < pushHintMinServes || float64(w) <= 2*mean {
			continue
		}
		n.stats.Add("replicate_hints", 1)
		if id == n.id {
			n.pushReplicas(lite)
			continue
		}
		n.send(id, hint)
	}
}

// adaptAggregate is step 1 at each leader: finalize the cluster's load
// and share it with every other cluster's leader.
func (n *Node) adaptAggregate(e uint64) {
	ad := n.adapt
	for _, cl := range ad.mine {
		if leader, ok := n.leaderOf(cl); !ok || leader != n.id {
			continue
		}
		n.pushHints(cl, e)
		st := ad.agg[cl]
		if st == nil || st.epoch != e {
			st = &clusterLoad{
				epoch: e,
				hits:  make(map[catalog.CategoryID]int64),
				units: make(map[catalog.CategoryID]float64),
			}
		}
		// Finalize: the accumulator is retired (a late member report for
		// this epoch starts a fresh one that is never read) and the wire
		// message carries deep copies — the transport writers encode the
		// maps off the event loop, so they must never be the live ones
		// mergeReport mutates.
		delete(ad.agg, cl)
		ad.loads[cl] = st
		msg := wire.LeaderLoad{Epoch: e, Cluster: cl, Aggregated: true,
			Hits: copyHitMap(st.hits), Units: copyUnitMap(st.units)}
		for c := 0; c < n.inst.NumClusters; c++ {
			target := model.ClusterID(c)
			if target == cl {
				continue
			}
			if l, ok := n.leaderOf(target); ok && l != n.id {
				n.send(l, msg)
			}
		}
	}
}

// copyHitMap deep-copies a per-category hit map for handoff to the
// transport writers, which encode off the event loop.
func copyHitMap(src map[catalog.CategoryID]int64) map[catalog.CategoryID]int64 {
	out := make(map[catalog.CategoryID]int64, len(src))
	for c, h := range src {
		out[c] = h
	}
	return out
}

// copyUnitMap deep-copies a per-category unit-mass map (see copyHitMap).
func copyUnitMap(src map[catalog.CategoryID]float64) map[catalog.CategoryID]float64 {
	out := make(map[catalog.CategoryID]float64, len(src))
	for c, u := range src {
		out[c] = u
	}
	return out
}

// sanitizeLoad strips category ids outside the local catalog from a
// remote load message: adaptEvaluate indexes catalog-sized slices with
// these ids, so a corrupt frame or a peer with a different catalog
// shape must fail safe here rather than panic the event loop.
func (n *Node) sanitizeLoad(m *wire.LeaderLoad) {
	nCats := catalog.CategoryID(len(n.inst.Catalog.Cats))
	for c := range m.Hits {
		if c < 0 || c >= nCats {
			delete(m.Hits, c)
			n.stats.Add("adapt_bad_categories", 1)
		}
	}
	for c := range m.Units {
		if c < 0 || c >= nCats {
			delete(m.Units, c)
			n.stats.Add("adapt_bad_categories", 1)
		}
	}
}

// handleLeaderLoad processes both kinds of load message: a member
// report (accepted only by the believed leader of the reporting
// cluster) and a leader-to-leader aggregate.
func (n *Node) handleLeaderLoad(from model.NodeID, m wire.LeaderLoad) {
	ad := n.adapt
	if ad == nil {
		n.stats.Add("adapt_dropped_loads", 1)
		return
	}
	if m.Cluster < 0 || int(m.Cluster) >= n.inst.NumClusters {
		n.stats.Add("adapt_dropped_loads", 1)
		return
	}
	n.sanitizeLoad(&m)
	if m.Aggregated {
		if have, ok := ad.loads[m.Cluster]; !ok || m.Epoch > have.epoch {
			ad.loads[m.Cluster] = &clusterLoad{epoch: m.Epoch, hits: m.Hits, units: m.Units}
		}
		return
	}
	if len(m.Lite) > 0 {
		// A leader's replication hint: this node's serve load stood out
		// and Lite names the under-loaded members to push hot replicas
		// at. Accepted only from the believed leader of the named
		// cluster, so a hostile frame cannot direct pushes.
		if leader, ok := n.leaderOf(m.Cluster); ok && leader == from {
			n.pushReplicas(m.Lite)
		} else {
			n.stats.Add("adapt_dropped_loads", 1)
		}
		return
	}
	if leader, ok := n.leaderOf(m.Cluster); !ok || leader != n.id {
		// Liveness views briefly disagree on the leader; drop and let
		// the next epoch converge.
		n.stats.Add("adapt_dropped_loads", 1)
		return
	}
	ad.mergeReport(m.Cluster, m.Epoch, m.Hits, m.Units)
	ad.mergeServe(m.Cluster, m.Epoch, from, m.Served)
}

// adaptEvaluate is steps 2–4 at the chosen leader: fairness over the
// heard loads, then — below the low threshold — MaxFair_Reassign on the
// measured state and move announcements.
func (n *Node) adaptEvaluate(e uint64) {
	ad := n.adapt
	loadClusters := make([]model.ClusterID, 0, len(ad.loads))
	for cl, load := range ad.loads {
		if load.epoch == e {
			loadClusters = append(loadClusters, cl)
		}
	}
	if len(loadClusters) == 0 {
		return
	}
	sort.Slice(loadClusters, func(i, j int) bool { return loadClusters[i] < loadClusters[j] })
	xs := make([]float64, len(loadClusters))
	for i, cl := range loadClusters {
		xs[i] = ad.loads[cl].normPop()
	}
	measured := fairness.Jain(xs)
	n.gauges.Set("fairness_x1000", int64(measured*1000))
	n.stats.Add("adapt_evaluations", 1)

	// The chosen leader is the leader of the hottest measured cluster
	// (ties to the lowest cluster id) — a deterministic choice every
	// leader that heard the same loads agrees on.
	hottest := loadClusters[0]
	for _, cl := range loadClusters[1:] {
		if ad.loads[cl].normPop() > ad.loads[hottest].normPop() {
			hottest = cl
		}
	}
	if l, ok := n.leaderOf(hottest); !ok || l != n.id {
		return
	}
	if measured >= ad.cfg.LowThreshold {
		return // above the low threshold, nothing to do
	}
	if len(loadClusters) < (n.inst.NumClusters+1)/2 {
		return // heard from under half the clusters; not enough signal
	}
	var totalHits int64
	for _, cl := range loadClusters {
		for _, h := range ad.loads[cl].hits {
			totalHits += h
		}
	}
	if totalHits == 0 {
		return
	}

	// Rebuild the ICLB state from measurements, over the heard clusters
	// remapped to compact ids.
	toCompact := make(map[model.ClusterID]model.ClusterID, len(loadClusters))
	for i, cl := range loadClusters {
		toCompact[cl] = model.ClusterID(i)
	}
	nCats := len(n.inst.Catalog.Cats)
	catPop := make([]float64, nCats)
	catUnits := make([]float64, nCats)
	assign := make([]model.ClusterID, nCats)
	for c := range assign {
		assign[c] = model.NoCluster
	}
	for _, cl := range loadClusters {
		load := ad.loads[cl]
		for c, h := range load.hits {
			catPop[c] += float64(h) / float64(totalHits)
			assign[c] = toCompact[cl]
		}
		for c, u := range load.units {
			catUnits[c] += u
			assign[c] = toCompact[cl]
		}
	}
	st, err := core.NewStateFromMeasurements(len(loadClusters), catPop, catUnits, assign)
	if err != nil {
		n.stats.Add("adapt_state_errors", 1)
		return
	}
	moves, err := core.MaxFairReassign(st, core.ReassignOptions{
		TargetFairness: ad.cfg.TargetFairness,
		MaxMoves:       ad.cfg.MaxMoves,
	})
	if err != nil {
		n.stats.Add("adapt_state_errors", 1)
		return
	}
	for _, mv := range moves {
		from, to := loadClusters[mv.From], loadClusters[mv.To]
		entry := overlay.DCRTEntry{Cluster: to, MoveCounter: n.dcrt[mv.Category].MoveCounter + 1}
		n.stats.Add("adapt_moves", 1)
		n.applyMoveEntry(mv.Category, entry)
		// Direct announcement to both affected clusters (steps 1–2 of
		// the lazy rebalancing protocol); gossip covers everyone else.
		announce := wire.Move{Category: mv.Category, From: from, Entry: entry}
		seen := map[model.NodeID]bool{n.id: true}
		for _, cl := range []model.ClusterID{from, to} {
			for _, id := range ad.members[cl] {
				if seen[id] {
					continue
				}
				seen[id] = true
				if n.book.has(id) {
					n.send(id, announce)
				}
			}
		}
	}
}

// handleMove applies a direct category-move announcement.
func (n *Node) handleMove(m wire.Move) {
	n.applyMoveEntry(m.Category, m.Entry)
}

// handleMetaUpdate merges epidemically propagated DCRT entries, keeping
// the highest move counter per category (§6.1.2 conflict resolution).
func (n *Node) handleMetaUpdate(m overlay.MetadataUpdateMsg) {
	cats := make([]catalog.CategoryID, 0, len(m.Entries))
	for cat := range m.Entries {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, cat := range cats {
		n.applyMoveEntry(cat, m.Entries[cat])
	}
}

// maxMoveCounterJump bounds how far ahead of the local view a gossiped
// move counter may be. Counters advance by one per executed move, so a
// legitimate gap is at most the moves this node missed; a counter near
// max-uint64 from a corrupt or hostile frame would otherwise wedge the
// category forever (no legitimate move could ever exceed it again).
const maxMoveCounterJump = 1 << 20

// applyMoveEntry folds one DCRT entry in under the move-counter rule.
// On change: members of the receiving cluster re-run the intra-cluster
// placement for the moved category and store their deterministic share
// (every member computes the same map, so no coordinator is needed),
// and the entry is re-gossiped — forwarding only on change keeps the
// epidemic bounded.
func (n *Node) applyMoveEntry(cat catalog.CategoryID, e overlay.DCRTEntry) bool {
	if cat < 0 || int(cat) >= len(n.inst.Catalog.Cats) ||
		e.Cluster < 0 || int(e.Cluster) >= n.inst.NumClusters {
		n.stats.Add("adapt_bad_moves", 1)
		return false
	}
	old, known := n.dcrt[cat]
	if known && e.MoveCounter <= old.MoveCounter {
		return false
	}
	if e.MoveCounter > old.MoveCounter+maxMoveCounterJump {
		// old is the zero value for an unknown category, bounding a
		// first-contact entry to the same window.
		n.stats.Add("adapt_bad_moves", 1)
		return false
	}
	n.dcrt[cat] = e
	n.stats.Add("dcrt_moves", 1)
	if known && old.Cluster != e.Cluster && n.store != nil {
		// Remember the shedding cluster: until the gaining holders
		// finish pulling bytes, it holds the only copies, and
		// fetchSources keeps routing transfers there as a fallback
		// (the paper's lazy rebalancing, made real for the data plane).
		// The record expires — long enough to cover the background
		// shipping, short enough that repeated reassignments cannot grow
		// the map without bound — and every landing move prunes the
		// stale remainder.
		now := time.Now()
		ttl := n.prevClusterTTLOverride
		if ttl <= 0 {
			ttl = prevClusterTTL
		}
		n.prevCluster[cat] = prevClusterRecord{cluster: old.Cluster, expires: now.Add(ttl)}
		n.prunePrevClusters(now)
	}
	if ad := n.adapt; ad != nil {
		if ms := ad.members[e.Cluster]; containsNode(ms, n.id) {
			share := replica.PlaceCategory(n.inst, cat, ms, replica.DefaultConfig())
			var need []catalog.DocID
			for _, d := range share[n.id] {
				n.storeDoc(d)
				if n.store != nil && !n.store.Has(d) {
					need = append(need, d)
				}
			}
			// The metadata flips immediately (queries route here now);
			// the bytes arrive asynchronously — a move is not done until
			// the gaining holder has fetched its share from the shedding
			// cluster and Put the real bytes.
			n.shipMovedDocs(need)
		}
	}
	n.gossipEntry(cat, e)
	return true
}

// gossipEntry pushes one changed DCRT entry to a few random addressable
// peers (lazy rebalancing step 5).
func (n *Node) gossipEntry(cat catalog.CategoryID, e overlay.DCRTEntry) {
	peers := make([]model.NodeID, 0, n.book.len())
	n.book.forEach(func(id model.NodeID, _ string) bool {
		if id != n.id {
			peers = append(peers, id)
		}
		return true
	})
	if len(peers) == 0 {
		return
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	update := overlay.MetadataUpdateMsg{Entries: map[catalog.CategoryID]overlay.DCRTEntry{cat: e}}
	for i := 0; i < 3; i++ {
		n.send(peers[n.rng.Intn(len(peers))], update)
	}
}

// containsNode reports membership of id in a sorted member list.
func containsNode(ms []model.NodeID, id model.NodeID) bool {
	i := sort.Search(len(ms), func(i int) bool { return ms[i] >= id })
	return i < len(ms) && ms[i] == id
}

// Fairness returns the node's last measured fairness index in
// thousandths (the fairness_x1000 gauge), or -1 when this node has not
// evaluated an epoch (only leaders do).
func (n *Node) Fairness() int64 {
	if v, ok := n.gauges.Snapshot()["fairness_x1000"]; ok {
		return v
	}
	return -1
}
