package livenet

import (
	"testing"
	"time"

	"p2pshare/internal/model"
)

func testShape() Shape {
	return Shape{Documents: 400, Categories: 12, Nodes: 24, Clusters: 4, Seed: 77}
}

func TestShapeBuildDeterministic(t *testing.T) {
	sh := testShape()
	instA, assignA, placeA, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	instB, assignB, placeB, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	if instA.DocCount() != instB.DocCount() {
		t.Fatal("instances differ")
	}
	for c := range assignA {
		if assignA[c] != assignB[c] {
			t.Fatalf("assignment differs at category %d", c)
		}
	}
	for k := range placeA.Stored {
		if len(placeA.Stored[k]) != len(placeB.Stored[k]) {
			t.Fatalf("placement differs at node %d", k)
		}
	}
}

// TestMultiProcessStyleJoin boots independent StartNode peers — each with
// its own model reconstruction and private address book, exactly the
// cross-process semantics of cmd/p2pnode — and checks that a late joiner
// discovers the deployment through one bootstrap address and can query it.
func TestMultiProcessStyleJoin(t *testing.T) {
	sh := testShape()
	// Seed node.
	seedNode, err := StartNode(sh, 0, "127.0.0.1:0", "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer seedNode.Close()

	// A handful of peers join through the seed.
	var nodes []*Node
	for id := model.NodeID(1); id <= 6; id++ {
		n, err := StartNode(sh, id, "127.0.0.1:0", seedNode.Addr(), Options{})
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}

	// The book gossips outward; every member should learn every address.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if seedNode.KnownPeers() == 7 && nodes[len(nodes)-1].KnownPeers() == 7 {
			break
		}
		time.Sleep(30 * time.Millisecond)
	}
	if got := seedNode.KnownPeers(); got != 7 {
		t.Fatalf("seed knows %d peers, want 7", got)
	}
	if got := nodes[len(nodes)-1].KnownPeers(); got != 7 {
		t.Fatalf("last joiner knows %d peers, want 7", got)
	}

	// A fresh joiner can query the deployment. Pick a category whose
	// serving cluster has running members among ids 0..6; with only a
	// fraction of the shape's 24 nodes running, some clusters are dark —
	// exactly like a partially-deployed real system — so probe until a
	// live category answers.
	inst, _, _, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	answered := false
	for c := 0; c < inst.CatCount() && !answered; c++ {
		out, err := nodes[0].Query(inst.Catalog.Cats[c].ID, 1, 2*time.Second)
		if err == nil && out.Done {
			answered = true
		}
	}
	if !answered {
		t.Fatal("no category answerable across the running subset")
	}
}

func TestStartNodeValidation(t *testing.T) {
	sh := testShape()
	if _, err := StartNode(sh, model.NodeID(999), "127.0.0.1:0", "", Options{}); err == nil {
		t.Error("out-of-shape id should fail")
	}
	if _, err := StartNode(sh, 0, "127.0.0.1:0", "127.0.0.1:1", Options{}); err == nil {
		t.Error("unreachable bootstrap should fail")
	}
}
