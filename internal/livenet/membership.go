package livenet

// Live membership: the SWIM-lite failure detector (internal/membership)
// wired into the control loop. The detector is a pure state machine —
// this file owns its clock (a probe goroutine funneling ticks through
// the command channel, so all detector access is control-loop
// serialized), its network (packets ride the persistent transport like
// every other envelope), and the consequences of its verdicts: a peer
// confirmed Dead or Left is evicted from the address book and every NRT
// entry, and remembered by tombstone so a stale address-book merge
// cannot resurrect it. In-flight queries' resend-target lists are NOT
// chased here — they live on the engine shards, which reconcile against
// the book lazily in their sweep (refillEntry) just before resending.
// Tombstones travel inside book messages (wire.Book.Dead), closing the
// loop for nodes that were partitioned while the death was gossiped.

import (
	"time"

	"p2pshare/internal/membership"
	"p2pshare/internal/model"
	"p2pshare/internal/timerwheel"
)

// leaveFlushGrace is how long Leave waits after queueing its departure
// announcements before tearing the node down — enough for the transport
// writers to batch and flush the frames on loopback or LAN.
const leaveFlushGrace = 150 * time.Millisecond

// StartMembership turns on the failure detector with the given timing
// (zero fields take membership.DefaultConfig values). Every peer already
// in the address book is observed immediately; later peers join the
// view as hellos and book merges arrive. Idempotent: a second call is a
// no-op. Safe to call any time after the node's loops are running.
func (n *Node) StartMembership(cfg membership.Config) {
	started := make(chan struct{})
	select {
	case n.cmds <- func(n *Node) {
		n.enableMembership(cfg)
		close(started)
	}:
		select {
		case <-started:
		case <-n.done:
			// The control loop may have run the command just before
			// shutting down; either way there is nothing left to wait for.
		}
	case <-n.done:
	}
}

// StartMembership turns on the failure detector on every node of a
// launched cluster.
func (c *Cluster) StartMembership(cfg membership.Config) {
	for _, n := range c.Nodes {
		if n != nil {
			n.StartMembership(cfg)
		}
	}
}

// enableMembership builds the detector and starts its clock. Runs in the
// event loop.
func (n *Node) enableMembership(cfg membership.Config) {
	if n.det != nil {
		return
	}
	n.det = membership.New(n.id, n.Addr(), cfg, n.rng.Int63())
	now := time.Now()
	n.book.forEach(func(id model.NodeID, addr string) bool {
		if id != n.id {
			n.det.Observe(id, addr, now)
		}
		return true
	})
	n.drainMembership()

	interval := cfg.ProbeInterval
	if interval <= 0 {
		interval = membership.DefaultConfig().ProbeInterval
	}
	// Tick faster than the probe interval so ping/probe timeouts are
	// checked with reasonable granularity (Tick rate-limits the probes
	// themselves). The clock rides the shared timerwheel instead of a
	// dedicated ticker goroutine; the offer into the command channel is
	// non-blocking (wheel callbacks must not block), and a dropped tick
	// just means the next one ≤ interval later advances the detector.
	if interval /= 4; interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	n.addTimer(timerwheel.Default().Every(interval, func(now time.Time) {
		select {
		case n.cmds <- func(n *Node) { n.membershipTick(now) }:
		default:
			n.stats.Add("membership_tick_skips", 1)
		}
	}))
}

// membershipTick advances the detector's timers and the adaptation
// layer's epoch clock. Runs in the event loop.
func (n *Node) membershipTick(now time.Time) {
	n.sendPackets(n.det.Tick(now))
	n.drainMembership()
	n.adaptTick(now)
}

// sendPackets transmits detector protocol messages. The packet's own
// address hint covers targets the book does not (an indirect-probe
// target evicted from the book but still carried in a ping-req).
func (n *Node) sendPackets(pkts []membership.Packet) {
	for _, p := range pkts {
		addr, ok := n.book.get(p.To)
		if !ok {
			addr = p.Addr
		}
		if addr == "" {
			n.stats.Add("send_no_addr", 1)
			continue
		}
		n.tr.enqueue(p.To, addr, envelope{From: n.id, Msg: p.Msg})
	}
}

// drainMembership folds the detector's state transitions into the
// node's routing state and refreshes the membership gauges. Runs in the
// event loop after every detector interaction.
func (n *Node) drainMembership() {
	for _, ev := range n.det.Events() {
		switch ev.State {
		case membership.Alive:
			// New or resurrected member: (re)learn its address.
			if ev.Addr != "" {
				n.book.set(ev.ID, ev.Addr)
			}
		case membership.Suspect:
			n.stats.Add("membership_suspicions", 1)
		case membership.Dead, membership.Left:
			n.evictDeadPeer(ev.ID)
		}
	}
	alive, suspect := n.det.Counts()
	n.gauges.Set("membership_alive", int64(alive))
	n.gauges.Set("membership_suspect", int64(suspect))
}

// evictDeadPeer removes a confirmed-dead (or gracefully departed) peer
// from the routing structures the control loop owns: address book and
// NRTs. In-flight queries' resend-target lists are pruned lazily by the
// owning shard's sweep (refillEntry drops book-absent members before a
// resend), so no cross-shard broadcast is needed here. The tombstone
// stays behind in the detector so book merges cannot resurrect the
// entry.
func (n *Node) evictDeadPeer(peer model.NodeID) {
	if n.book.del(peer) {
		n.stats.Add("book_evictions", 1)
	}
	n.evictPeer(peer)
	n.stats.Add("membership_evictions", 1)
}

// MembershipCounts reports the node's live view: members alive
// (including itself) and members under suspicion. Zeros when membership
// is not running.
func (n *Node) MembershipCounts() (alive, suspect int) {
	type counts struct{ a, s int }
	ch := make(chan counts, 1)
	select {
	case n.cmds <- func(n *Node) {
		if n.det == nil {
			ch <- counts{}
			return
		}
		a, s := n.det.Counts()
		ch <- counts{a, s}
	}:
		select {
		case c := <-ch:
			return c.a, c.s
		case <-n.done:
			// The control loop may have answered just before shutting
			// down; prefer the real counts when present.
			select {
			case c := <-ch:
				return c.a, c.s
			default:
				return 0, 0
			}
		}
	case <-n.done:
		return 0, 0
	}
}

// Leave announces a graceful departure to every addressable peer (so
// receivers skip the suspicion phase and evict immediately), waits a
// moment for the transport to flush, and shuts the node down. Without a
// running detector it is just Close.
func (n *Node) Leave() {
	queued := make(chan bool, 1)
	select {
	case n.cmds <- func(n *Node) {
		if n.det == nil {
			queued <- false
			return
		}
		lv := n.det.MakeLeave()
		n.book.forEach(func(id model.NodeID, _ string) bool {
			if id != n.id {
				n.send(id, lv)
			}
			return true
		})
		queued <- true
	}:
		select {
		case sent := <-queued:
			if sent {
				time.Sleep(leaveFlushGrace)
			}
		case <-n.done:
			select {
			case sent := <-queued:
				if sent {
					time.Sleep(leaveFlushGrace)
				}
			default:
			}
		}
	case <-n.done:
	}
	n.Close()
}
