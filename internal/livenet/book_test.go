package livenet

import (
	"testing"

	"p2pshare/internal/model"
)

// TestAddrBookCopyOnWrite pins the divergence semantics: a shared base,
// node-private overlays and deletions, and an O(1) count that stays
// consistent through every transition.
func TestAddrBookCopyOnWrite(t *testing.T) {
	base := map[model.NodeID]string{1: "a", 2: "b", 3: "c"}
	b := newAddrBook()
	b.set(1, "a") // self entry pre-base, also present in base
	b.setBase(base)

	if b.len() != 3 {
		t.Fatalf("len after setBase = %d, want 3", b.len())
	}
	if addr, ok := b.get(2); !ok || addr != "b" {
		t.Fatalf("get(2) = %q, %v", addr, ok)
	}

	// Update diverges from base without touching it.
	b.set(2, "b2")
	if addr, _ := b.get(2); addr != "b2" {
		t.Fatalf("after update get(2) = %q, want b2", addr)
	}
	if base[2] != "b" {
		t.Fatal("update leaked into the shared base")
	}
	if b.len() != 3 {
		t.Fatalf("len after update = %d, want 3", b.len())
	}

	// New entry beyond the base.
	b.set(4, "d")
	if b.len() != 4 {
		t.Fatalf("len after add = %d, want 4", b.len())
	}

	// Delete a base entry: tombstoned locally, base untouched.
	if !b.del(3) {
		t.Fatal("del(3) reported absent")
	}
	if _, ok := b.get(3); ok {
		t.Fatal("deleted base entry still visible")
	}
	if base[3] != "c" {
		t.Fatal("delete leaked into the shared base")
	}
	if b.del(3) {
		t.Fatal("double delete reported present")
	}
	if b.len() != 3 {
		t.Fatalf("len after delete = %d, want 3", b.len())
	}

	// Resurrect the deleted entry.
	b.set(3, "c9")
	if addr, ok := b.get(3); !ok || addr != "c9" {
		t.Fatalf("resurrected get(3) = %q, %v", addr, ok)
	}
	if b.len() != 4 {
		t.Fatalf("len after resurrect = %d, want 4", b.len())
	}

	// Re-converging an overlay entry with the base drops the divergence.
	b.set(2, "b")
	if _, shadowed := b.over[2]; shadowed {
		t.Fatal("overlay kept an entry identical to base")
	}
	if addr, _ := b.get(2); addr != "b" {
		t.Fatalf("reconverged get(2) = %q", addr)
	}

	// forEach visits each live entry exactly once; snapshot agrees.
	seen := map[model.NodeID]string{}
	b.forEach(func(id model.NodeID, addr string) bool {
		if _, dup := seen[id]; dup {
			t.Fatalf("forEach visited %d twice", id)
		}
		seen[id] = addr
		return true
	})
	want := map[model.NodeID]string{1: "a", 2: "b", 3: "c9", 4: "d"}
	if len(seen) != len(want) {
		t.Fatalf("forEach saw %v, want %v", seen, want)
	}
	for id, addr := range want {
		if seen[id] != addr {
			t.Fatalf("forEach saw %d=%q, want %q", id, seen[id], addr)
		}
	}
	snap := b.snapshot()
	for id, addr := range want {
		if snap[id] != addr {
			t.Fatalf("snapshot[%d] = %q, want %q", id, snap[id], addr)
		}
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), len(want))
	}
}

// TestAddrBookNoBase covers StartNode-style books that never get a
// shared base.
func TestAddrBookNoBase(t *testing.T) {
	b := newAddrBook()
	if b.len() != 0 {
		t.Fatalf("fresh book len = %d", b.len())
	}
	b.set(7, "x")
	b.set(7, "y")
	if b.len() != 1 {
		t.Fatalf("len = %d, want 1", b.len())
	}
	if !b.del(7) || b.len() != 0 {
		t.Fatalf("delete failed, len = %d", b.len())
	}
	if b.del(7) {
		t.Fatal("double delete reported present")
	}
}
