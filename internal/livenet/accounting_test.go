package livenet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"p2pshare/internal/catalog"
)

// TestQueryAccountingConservation drives one node through every
// QueryContext exit path — successes (network and cache hit), timeouts,
// mid-flight cancellations, admission rejections, no-route failures, and
// pre-cancelled contexts — and asserts the counters balance exactly:
//
//	queries_total == queries_ok + query_rejected + query_no_route +
//	                 query_timeouts + query_cancelled + query_closed
//
// and the latency histogram observed every query a caller actually
// waited on (ok + timeouts + cancelled), no more, no fewer. The
// pre-shard engine violated both: abandoned queries skipped the
// histogram, and some exits double-counted.
func TestQueryAccountingConservation(t *testing.T) {
	c, inst := launchShards(t, 63, 4)
	n := c.Nodes[0]
	cat := bigCategory(inst)
	impossible := impossibleWant(len(inst.Catalog.Docs))

	// Successes, including a repeat that must be served from the
	// requester cache (still exactly one queries_ok each).
	for i := 0; i < 6; i++ {
		if _, err := n.Query(cat, 1, 5*time.Second); err != nil {
			t.Fatalf("satisfiable query %d: %v", i, err)
		}
	}

	// Timeouts: unsatisfiable demand with a short deadline.
	for i := 0; i < 3; i++ {
		if _, err := n.Query(cat, impossible, 150*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("impossible query returned %v, want ErrTimeout", err)
		}
	}

	// Cancellations: abandon queries mid-flight.
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := n.QueryContext(ctx, cat, impossible); !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled query returned %v, want context.Canceled", err)
			}
		}()
	}
	waitInFlight(t, n, 3, 2*time.Second)
	cancel()
	wg.Wait()

	// Rejections: clamp admission to 2 slots, fill them, overflow twice.
	n.SetMaxInFlight(2)
	hold, holdCancel := context.WithCancel(context.Background())
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.QueryContext(hold, cat, impossible)
		}()
	}
	waitInFlight(t, n, 2, 2*time.Second)
	// Demand more than the cache holds so the fast path can't satisfy the
	// overflow queries before admission sees them.
	for i := 0; i < 2; i++ {
		if _, err := n.QueryContext(context.Background(), cat, impossible); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("query over the limit returned %v, want ErrOverloaded", err)
		}
	}
	holdCancel()
	wg.Wait()
	n.SetMaxInFlight(1024)

	// No-route: a category no cluster serves fails fast.
	bogus := catalog.CategoryID(len(inst.Catalog.Cats) + 50)
	if _, err := n.QueryContext(context.Background(), bogus, 1); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("unroutable category returned %v, want ErrNoRoute", err)
	}

	// Pre-cancelled context: counted as a cancellation, never registered.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if _, err := n.QueryContext(dead, cat, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx returned %v, want context.Canceled", err)
	}

	s := n.Stats()
	exits := s["queries_ok"] + s["query_rejected"] + s["query_no_route"] +
		s["query_timeouts"] + s["query_cancelled"] + s["query_closed"]
	if s["queries_total"] != exits {
		t.Errorf("conservation broken: queries_total=%d but exits sum to %d (%+v)",
			s["queries_total"], exits, s)
	}
	if s["query_closed"] != 0 {
		t.Errorf("query_closed=%d on a live node, want 0", s["query_closed"])
	}
	// Spot-check each path actually fired — a conservation equation over
	// all-zero counters proves nothing.
	for _, k := range []string{"queries_ok", "query_timeouts", "query_cancelled",
		"query_rejected", "query_no_route", "cache_hit"} {
		if s[k] == 0 {
			t.Errorf("%s never incremented — test lost coverage of that exit path", k)
		}
	}

	// The histogram saw exactly the queries a caller waited on. Timed-out
	// and cancelled queries DO observe (their wait is response time too);
	// rejections and no-route exits (which never wait) do not.
	waited := s["queries_ok"] + s["query_timeouts"] + s["query_cancelled"]
	if got := int64(n.QueryLatency().Count()); got != waited {
		t.Errorf("latency histogram counted %d observations, want %d (ok+timeouts+cancelled)",
			got, waited)
	}
}
