package livenet

import (
	"context"
	"errors"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
	"p2pshare/internal/query"
)

// The concurrent query engine, caller side. A node carries many in-flight
// queries at once: each is an independent state machine (a pendingQuery)
// owned by one engine shard (shard.go), while the issuing goroutine only
// waits on its private result channel. The caller goroutine does all the
// work that needs no loop at all — the requester-cache lookup, admission
// (an atomic CAS reservation against inflightMax), and the routing-table
// snapshot — and only then registers the query on a shard. Admission
// control bounds the pending table across all shards: a node under
// overload rejects new queries with ErrOverloaded instead of piling up
// goroutines, and the requester-side document cache (internal/cache, the
// paper's §7 viii extension) answers repeat queries in zero hops before
// any message is sent.
//
// Outcome accounting is conservative — every QueryContext call counts
// queries_total exactly once at entry and exactly one of
//
//	queries_ok + query_rejected + query_no_route +
//	query_timeouts + query_cancelled + query_closed
//
// on exit, and the latency histogram observes every completed, timed-out,
// and cancelled query (not just successes — an abandoned query's wait is
// response-time the caller experienced too). The pre-shard engine counted
// some exits twice (cache hits also recorded ok) and dropped others
// (cancellations before registration vanished); the conservation equation
// above is pinned by TestQueryAccountingConservation.
const (
	// DefaultMaxInFlight bounds concurrently pending queries per node;
	// queries beyond it are rejected with ErrOverloaded (admission
	// control, counted as query_rejected).
	DefaultMaxInFlight = 1024
	// DefaultCacheBytes sizes the requester-side document cache a node
	// starts with (16 of the paper's 4 MB example documents); use
	// SetCacheCapacity to resize or disable it.
	DefaultCacheBytes = 64 << 20
	// resendAfter is how long a pending query waits with nothing received
	// before re-sending to another member of the serving cluster — the
	// entry message was probably lost, and because the query id was never
	// flooded, a re-send under the same id is not suppressed by dedup.
	resendAfter = 1200 * time.Millisecond
	// maxResends bounds per-query re-sends; a cancelled query leaves the
	// pending table and stops counting toward this budget.
	maxResends = 2
	// maxPendingAge backstops a pending query whose context carries no
	// deadline, so an abandoned slot is always reclaimed by the sweep.
	maxPendingAge = time.Minute
)

// QueryContext runs the §3.3 protocol for a category over the live
// network, seeking m distinct documents. It is safe to call from many
// goroutines at once — each call occupies one in-flight slot until it
// completes, times out, or ctx is cancelled. A context deadline maps to
// ErrTimeout (with the partial outcome); a cancellation returns
// ctx.Err() and frees the slot immediately.
func (n *Node) QueryContext(ctx context.Context, cat catalog.CategoryID, m int) (query.Result, error) {
	start := time.Now()
	n.stats.Add("queries_total", 1)
	if err := ctx.Err(); err != nil {
		reason, qerr := ctxReason(err)
		n.stats.Add(reason, 1)
		n.latency.ObserveDuration(time.Since(start))
		return query.Result{}, qerr
	}
	select {
	case <-n.done:
		// Fail fast on a closed node — without this, a query could reach
		// admission and bounce off slots that died with the engine.
		n.stats.Add("query_closed", 1)
		return query.Result{}, ErrClosed
	default:
	}

	// Requester-cache lookup, entirely in this goroutine: a full cache
	// hit never touches a loop, a channel, or the network.
	docs := make(map[catalog.DocID]bool, m)
	if cs := n.cacheSt.Load(); cs != nil {
		for _, d := range cs.lookup(cat, m) {
			cs.docs.Contains(d) // refresh recency/frequency and hit stats
			docs[d] = true
		}
		if len(docs) >= m {
			n.stats.Add("cache_hit", 1)
			out := query.Result{Done: true, Results: len(docs)}
			for d := range docs {
				out.Docs = append(out.Docs, d)
			}
			out.ResponseTime = time.Since(start)
			n.latency.ObserveDuration(out.ResponseTime)
			n.stats.Add("queries_ok", 1)
			return out, nil
		}
		n.stats.Add("cache_miss", 1)
	}

	// Admission: CAS-reserve a slot so the bound stays exact with every
	// shard and caller admitting at once (a plain load-then-increment
	// overshoots under contention). The slot is released by the owning
	// shard when the query leaves its pending table, or right here on
	// the paths below that never reach a shard.
	for {
		cur := n.inflight.Load()
		if cur >= n.inflightMax.Load() {
			n.stats.Add("query_rejected", 1)
			return query.Result{}, ErrOverloaded
		}
		if n.inflight.CompareAndSwap(cur, cur+1) {
			break
		}
	}

	// Route snapshot under the read lock. Prefer members this node can
	// actually address: the static NRT priming lists peers that may
	// never have joined this deployment, and a query sent to one of
	// those is a guaranteed timeout.
	n.routeMu.RLock()
	var members []model.NodeID
	if entry, ok := n.dcrt[cat]; ok {
		all := n.nrt[entry.Cluster]
		if len(all) > 0 {
			members = make([]model.NodeID, 0, len(all))
		}
		for _, mb := range all {
			if n.book.has(mb) {
				members = append(members, mb)
			}
		}
		if len(members) == 0 {
			members = nil
		}
		if members == nil {
			members = append([]model.NodeID(nil), all...)
		}
	}
	n.routeMu.RUnlock()
	if len(members) == 0 {
		n.inflight.Add(-1)
		n.stats.Add("query_no_route", 1)
		return query.Result{}, ErrNoRoute
	}

	// Register on a shard (round-robin). From here on the shard owns the
	// pending entry and the in-flight slot.
	sh := n.pickShard()
	ich := make(chan uint64, 1)
	ch := make(chan query.Result, 1)
	deadline, hasDeadline := ctx.Deadline()
	select {
	case sh.cmds <- func(s *engineShard) {
		ich <- s.register(cat, m, docs, ch, deadline, hasDeadline, members)
	}:
	case <-ctx.Done():
		n.inflight.Add(-1)
		reason, qerr := ctxReason(ctx.Err())
		n.stats.Add(reason, 1)
		n.latency.ObserveDuration(time.Since(start))
		return query.Result{}, qerr
	case <-n.done:
		n.inflight.Add(-1)
		n.stats.Add("query_closed", 1)
		return query.Result{}, ErrClosed
	}
	var id uint64
	select {
	case id = <-ich:
	case <-n.done:
		// The shard may have run the command just before shutting down;
		// prefer its answer when present. If it never ran, the slot is
		// still ours to release.
		select {
		case id = <-ich:
		default:
			n.inflight.Add(-1)
			n.stats.Add("query_closed", 1)
			return query.Result{}, ErrClosed
		}
	}

	select {
	case out := <-ch:
		out.ResponseTime = time.Since(start)
		n.latency.ObserveDuration(out.ResponseTime)
		n.stats.Add("queries_ok", 1)
		return out, nil
	case <-ctx.Done():
		reason, qerr := ctxReason(ctx.Err())
		out, completed := n.abandonQuery(id, ch)
		out.ResponseTime = time.Since(start)
		n.latency.ObserveDuration(out.ResponseTime)
		if completed {
			// The query finished in the race window between ctx firing
			// and the slot being released; report the success.
			n.stats.Add("queries_ok", 1)
			return out, nil
		}
		n.stats.Add(reason, 1)
		return out, qerr
	case <-n.done:
		// Same preference on shutdown: a result delivered just before
		// close still counts as a success.
		select {
		case out := <-ch:
			out.ResponseTime = time.Since(start)
			n.latency.ObserveDuration(out.ResponseTime)
			n.stats.Add("queries_ok", 1)
			return out, nil
		default:
			n.stats.Add("query_closed", 1)
			return query.Result{}, ErrClosed
		}
	}
}

// Query blocks until m distinct documents arrive or the timeout expires
// (in which case the partial outcome and ErrTimeout are returned).
//
// Deprecated: Query is a thin wrapper kept for existing callers; new
// code should use QueryContext.
func (n *Node) Query(cat catalog.CategoryID, m int, timeout time.Duration) (QueryOutcome, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return n.QueryContext(ctx, cat, m)
}

// ctxReason maps a context error to its stats counter and the engine's
// sentinel: a deadline is a query timeout; an explicit cancellation stays
// ctx.Err() so callers can tell the two apart.
func ctxReason(err error) (string, error) {
	if errors.Is(err, context.DeadlineExceeded) {
		return "query_timeouts", ErrTimeout
	}
	return "query_cancelled", err
}

// queryID builds a globally unique query id from the node's 64-bit salt
// and a per-shard sequence number. The pre-fix scheme kept only the low
// 16 bits of the node id (`nextQuery<<16 | id&0xffff`), so two nodes
// whose ids agree mod 65536 minted IDENTICAL ids at the same sequence
// point — and the flood-dedup `seen` set then suppressed one node's
// query as a duplicate of the other's. Mixing the full node id through a
// bijective 64-bit finalizer makes same-node ids distinct by
// construction (mixQ is a bijection over the sequence) and cross-node
// collisions need a full-width match instead of a low-16-bit one. The
// sharded engine overwrites the low shardIDBits bits with the minting
// shard's index (see engineShard.mintID), leaving 58 bits of cross-node
// entropy.
func queryID(salt, seq uint64) uint64 {
	return mixQ(salt ^ mixQ(seq))
}

// querySaltFor derives a node's id-mixing salt from its full node id.
func querySaltFor(id model.NodeID) uint64 {
	return mixQ(uint64(id)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909)
}

// mixQ is the splitmix64 finalizer (bijective over uint64).
func mixQ(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// refillEntry reconciles a pending query's resend-target list with the
// current routing tables: members the failure detector has evicted since
// the query was issued are pruned, and current serving-cluster members
// are added. The owning shard calls this from its sweep under
// routeMu.RLock — membership changes are not broadcast into shards;
// shards catch up lazily here, just before they would resend. Targets
// already in the list are not re-added: a blind append would insert
// duplicates on every sweep pass, growing the slice without bound and
// biasing the uniform resend pick toward whichever members were appended
// most often.
func (n *Node) refillEntry(pq *pendingQuery) {
	entry, ok := n.dcrt[pq.cat]
	if !ok {
		return
	}
	live := pq.entry[:0]
	have := make(map[model.NodeID]struct{}, len(pq.entry))
	for _, m := range pq.entry {
		if !n.book.has(m) {
			continue // evicted by membership; resending there is wasted
		}
		if _, dup := have[m]; dup {
			continue
		}
		have[m] = struct{}{}
		live = append(live, m)
	}
	pq.entry = live
	for _, mb := range n.nrt[entry.Cluster] {
		if _, dup := have[mb]; dup {
			continue
		}
		if n.book.has(mb) {
			have[mb] = struct{}{}
			pq.entry = append(pq.entry, mb)
		}
	}
}

// abandonQuery releases a cancelled or deadline-expired query's slot via
// its owning shard and returns whatever partial outcome accumulated
// (caching the partial docs — they were fetched either way). If the
// shard completed the query in the race window the completed outcome is
// recovered from ch instead; the second return reports that case. The
// caller owns the stats accounting for whichever outcome this returns.
func (n *Node) abandonQuery(id uint64, ch chan query.Result) (query.Result, bool) {
	sh := n.shardFor(id)
	type taken struct {
		out     query.Result
		dropped bool
	}
	res := make(chan taken, 1)
	select {
	case sh.cmds <- func(s *engineShard) {
		pq, ok := s.pending[id]
		if !ok {
			res <- taken{}
			return
		}
		s.n.cacheDocs(pq.docs)
		out := pq.result(false)
		delete(s.pending, id)
		s.n.inflight.Add(-1)
		res <- taken{out: out, dropped: true}
	}:
	case <-n.done:
		return query.Result{}, false
	}
	var tk taken
	select {
	case tk = <-res:
	case <-n.done:
		select {
		case tk = <-res:
		default:
			return query.Result{}, false
		}
	}
	if tk.dropped {
		return tk.out, false
	}
	// Already completed (or swept): its outcome is buffered in ch.
	select {
	case out := <-ch:
		return out, out.Done
	default:
		return query.Result{}, false
	}
}

// InFlight reports how many queries this node currently has pending (a
// point-in-time gauge; also exported as queries_inflight in Stats).
func (n *Node) InFlight() int { return int(n.inflight.Load()) }

// SetMaxInFlight resizes the admission-control bound (k <= 0 restores
// DefaultMaxInFlight). Queries already pending are unaffected. Lock-free
// and safe concurrently with Close — the pre-shard version enqueued a
// command on the event loop and could deadlock against shutdown.
func (n *Node) SetMaxInFlight(k int) {
	if k <= 0 {
		k = DefaultMaxInFlight
	}
	n.inflightMax.Store(int64(k))
}

// SetCacheCapacity replaces the requester-side document cache with a
// fresh one of the given policy and byte capacity; 0 bytes disables
// caching. Previously cached contents are discarded. The swap is a
// single atomic pointer store: in-progress lookups finish against the
// generation they loaded, and like SetMaxInFlight this no longer rides
// the event loop, so it cannot deadlock against Close.
func (n *Node) SetCacheCapacity(policy cache.Policy, bytes int64) error {
	if bytes == 0 {
		n.cacheSt.Store(nil)
		return nil
	}
	cs, err := newCacheState(policy, bytes)
	if err != nil {
		return err
	}
	n.cacheSt.Store(cs)
	return nil
}

// Instance exposes the deployment's content model (for workload
// generation against a live node; treat it as read-only).
func (n *Node) Instance() *model.Instance { return n.inst }
