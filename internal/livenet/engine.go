package livenet

import (
	"context"
	"errors"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/query"
)

// The concurrent query engine. A node carries many in-flight queries at
// once: each is an independent state machine (a pendingQuery) owned by
// the event loop, while the issuing goroutine only waits on its private
// result channel. Admission control bounds the pending table — a node
// under overload rejects new queries with ErrOverloaded instead of piling
// up goroutines — and the requester-side document cache (internal/cache,
// the paper's §7 viii extension) answers repeat queries in zero hops
// before any message is sent.
const (
	// DefaultMaxInFlight bounds concurrently pending queries per node;
	// queries beyond it are rejected with ErrOverloaded (admission
	// control, counted as query_rejected).
	DefaultMaxInFlight = 1024
	// DefaultCacheBytes sizes the requester-side document cache a node
	// starts with (16 of the paper's 4 MB example documents); use
	// SetCacheCapacity to resize or disable it.
	DefaultCacheBytes = 64 << 20
	// resendAfter is how long a pending query waits with nothing received
	// before re-sending to another member of the serving cluster — the
	// entry message was probably lost, and because the query id was never
	// flooded, a re-send under the same id is not suppressed by dedup.
	resendAfter = 1200 * time.Millisecond
	// maxResends bounds per-query re-sends; a cancelled query leaves the
	// pending table and stops counting toward this budget.
	maxResends = 2
	// maxPendingAge backstops a pending query whose context carries no
	// deadline, so an abandoned slot is always reclaimed by the sweep.
	maxPendingAge = time.Minute
)

// QueryContext runs the §3.3 protocol for a category over the live
// network, seeking m distinct documents. It is safe to call from many
// goroutines at once — each call occupies one in-flight slot until it
// completes, times out, or ctx is cancelled. A context deadline maps to
// ErrTimeout (with the partial outcome); a cancellation returns
// ctx.Err() and frees the slot immediately.
func (n *Node) QueryContext(ctx context.Context, cat catalog.CategoryID, m int) (query.Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return query.Result{}, ctxQueryErr(err)
	}
	type issued struct {
		id  uint64
		out *query.Result // set when answered from the requester cache
		err error
	}
	ich := make(chan issued, 1)
	ch := make(chan query.Result, 1)
	deadline, hasDeadline := ctx.Deadline()
	select {
	case n.cmds <- func(n *Node) {
		id, out, err := n.startQuery(cat, m, ch, deadline, hasDeadline)
		ich <- issued{id: id, out: out, err: err}
	}:
	case <-ctx.Done():
		return query.Result{}, ctxQueryErr(ctx.Err())
	case <-n.done:
		return query.Result{}, ErrClosed
	}
	var is issued
	select {
	case is = <-ich:
	case <-n.done:
		// The event loop may have run the command just before shutting
		// down; prefer its answer when present.
		select {
		case is = <-ich:
		default:
			return query.Result{}, ErrClosed
		}
	}
	switch {
	case is.err != nil:
		return query.Result{}, is.err
	case is.out != nil: // answered from the cache in zero hops
		out := *is.out
		out.ResponseTime = time.Since(start)
		n.latency.ObserveDuration(out.ResponseTime)
		n.stats.Add("queries_ok", 1)
		return out, nil
	}
	select {
	case out := <-ch:
		out.ResponseTime = time.Since(start)
		n.latency.ObserveDuration(out.ResponseTime)
		n.stats.Add("queries_ok", 1)
		return out, nil
	case <-ctx.Done():
		reason := "query_cancelled"
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			reason = "query_timeouts"
		}
		out, completed := n.abandonQuery(is.id, ch, reason)
		out.ResponseTime = time.Since(start)
		if completed {
			// The query finished in the race window between ctx firing
			// and the slot being released; report the success.
			n.latency.ObserveDuration(out.ResponseTime)
			n.stats.Add("queries_ok", 1)
			return out, nil
		}
		return out, ctxQueryErr(ctx.Err())
	case <-n.done:
		return query.Result{}, ErrClosed
	}
}

// Query blocks until m distinct documents arrive or the timeout expires
// (in which case the partial outcome and ErrTimeout are returned).
//
// Deprecated: Query is a thin wrapper kept for existing callers; new
// code should use QueryContext.
func (n *Node) Query(cat catalog.CategoryID, m int, timeout time.Duration) (QueryOutcome, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return n.QueryContext(ctx, cat, m)
}

// ctxQueryErr maps a context error to the engine's sentinel: a deadline
// is a query timeout; an explicit cancellation stays ctx.Err() so callers
// can tell the two apart.
func ctxQueryErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrTimeout
	}
	return err
}

// startQuery admits, registers, and issues one query. Runs in the event
// loop. It returns either a pending id, a complete cache-served result,
// or an admission/routing error.
func (n *Node) startQuery(cat catalog.CategoryID, m int, ch chan query.Result, deadline time.Time, hasDeadline bool) (uint64, *query.Result, error) {
	if len(n.pending) >= n.inflightMax {
		n.stats.Add("query_rejected", 1)
		return 0, nil, ErrOverloaded
	}
	docs := make(map[catalog.DocID]bool, m)
	if n.docCache != nil {
		for _, d := range n.cachedIn(cat, m) {
			n.docCache.Contains(d) // refresh recency/frequency
			docs[d] = true
		}
		if len(docs) >= m {
			n.stats.Add("cache_hit", 1)
			out := query.Result{Done: true, Results: len(docs)}
			for d := range docs {
				out.Docs = append(out.Docs, d)
			}
			return 0, &out, nil
		}
		n.stats.Add("cache_miss", 1)
	}
	entry, ok := n.dcrt[cat]
	if !ok {
		n.stats.Add("query_no_route", 1)
		return 0, nil, ErrNoRoute
	}
	members := n.nrt[entry.Cluster]
	// Prefer members this node can actually address: the static NRT
	// priming lists peers that may never have joined this deployment,
	// and a query sent to one of those is a guaranteed timeout.
	var reachable []model.NodeID
	for _, mb := range members {
		if _, ok := n.book[mb]; ok {
			reachable = append(reachable, mb)
		}
	}
	if len(reachable) > 0 {
		members = reachable
	}
	if len(members) == 0 {
		n.stats.Add("query_no_route", 1)
		return 0, nil, ErrNoRoute
	}
	n.nextQuery++
	id := queryID(n.querySalt, n.nextQuery)
	now := time.Now()
	pq := &pendingQuery{
		id:       id,
		cat:      cat,
		want:     m,
		docs:     docs,
		ch:       ch,
		deadline: now.Add(maxPendingAge),
		lastSend: now,
		entry:    append([]model.NodeID(nil), members...),
	}
	if hasDeadline {
		pq.deadline = deadline.Add(pendingGrace)
	}
	n.pending[id] = pq
	n.inflight.Store(int64(len(n.pending)))
	n.sendQuery(pq)
	return id, nil, nil
}

// queryID builds a globally unique query id from the node's 64-bit salt
// and its per-node sequence number. The pre-fix scheme kept only the low
// 16 bits of the node id (`nextQuery<<16 | id&0xffff`), so two nodes
// whose ids agree mod 65536 minted IDENTICAL ids at the same sequence
// point — and the flood-dedup `seen` set then suppressed one node's
// query as a duplicate of the other's. Mixing the full node id through a
// bijective 64-bit finalizer makes same-node ids distinct by
// construction (mixQ is a bijection over the sequence) and cross-node
// collisions need a full 64-bit match (~2^-64 per pair) instead of a
// low-16-bit one.
func queryID(salt, seq uint64) uint64 {
	return mixQ(salt ^ mixQ(seq))
}

// querySaltFor derives a node's id-mixing salt from its full node id.
func querySaltFor(id model.NodeID) uint64 {
	return mixQ(uint64(id)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909)
}

// mixQ is the splitmix64 finalizer (bijective over uint64).
func mixQ(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sendQuery (re)issues the query to a random reachable member of the
// serving cluster. The full demand goes out even when the cache primed a
// partial answer: intermediate nodes subtract their own matches from Want
// before forwarding, so a reduced demand would degenerate the flood and
// could strand the query one hop in.
func (n *Node) sendQuery(pq *pendingQuery) {
	if len(pq.entry) == 0 {
		return // all targets evicted; the sweep refills or expires
	}
	target := pq.entry[n.rng.Intn(len(pq.entry))]
	n.send(target, overlay.QueryMsg{
		ID: pq.id, Category: pq.cat, Want: pq.want, Origin: n.id, Hops: 1, Entry: true,
	})
}

// refillEntry rebuilds a pending query's resend-target list from the
// current routing tables — the original targets may all have been
// evicted by membership while the query was in flight. Targets already
// in the list are not re-added: a blind append would insert duplicates
// on every sweep pass, growing the slice without bound and biasing the
// uniform resend pick toward whichever members were appended most often.
func (n *Node) refillEntry(pq *pendingQuery) {
	entry, ok := n.dcrt[pq.cat]
	if !ok {
		return
	}
	have := make(map[model.NodeID]struct{}, len(pq.entry))
	for _, m := range pq.entry {
		have[m] = struct{}{}
	}
	for _, mb := range n.nrt[entry.Cluster] {
		if _, dup := have[mb]; dup {
			continue
		}
		if _, known := n.book[mb]; known {
			have[mb] = struct{}{}
			pq.entry = append(pq.entry, mb)
		}
	}
}

// abandonQuery releases a cancelled or deadline-expired query's slot and
// returns whatever partial outcome accumulated (caching the partial docs
// — they were fetched either way). If the event loop completed the query
// in the race window the completed outcome is recovered from ch instead;
// the second return reports that case.
func (n *Node) abandonQuery(id uint64, ch chan query.Result, reason string) (query.Result, bool) {
	type taken struct {
		out     query.Result
		dropped bool
	}
	res := make(chan taken, 1)
	select {
	case n.cmds <- func(n *Node) {
		pq, ok := n.pending[id]
		if !ok {
			res <- taken{}
			return
		}
		n.cacheDocs(pq.docs)
		out := pq.result(false)
		delete(n.pending, id)
		n.inflight.Store(int64(len(n.pending)))
		n.stats.Add(reason, 1)
		res <- taken{out: out, dropped: true}
	}:
	case <-n.done:
		return query.Result{}, false
	}
	var tk taken
	select {
	case tk = <-res:
	case <-n.done:
		return query.Result{}, false
	}
	if tk.dropped {
		return tk.out, false
	}
	// Already completed (or swept): its outcome is buffered in ch.
	select {
	case out := <-ch:
		return out, out.Done
	default:
		return query.Result{}, false
	}
}

// finishPending delivers a query's outcome exactly once and releases its
// slot. Runs in the event loop.
func (n *Node) finishPending(pq *pendingQuery, done bool) {
	n.cacheDocs(pq.docs)
	out := pq.result(done)
	select {
	case pq.ch <- out:
	default: // caller abandoned; the slot still frees
	}
	delete(n.pending, pq.id)
	n.inflight.Store(int64(len(n.pending)))
}

// cachedIn returns up to max currently-cached documents of a category,
// pruning evicted and duplicate ids from the per-category index as it
// goes (a doc evicted and re-cached can appear twice in one list; the
// dedup keeps the index and the returned set consistent).
func (n *Node) cachedIn(cat catalog.CategoryID, max int) []catalog.DocID {
	list := n.cacheByCat[cat]
	live := list[:0]
	seen := make(map[catalog.DocID]struct{}, len(list))
	var out []catalog.DocID
	for _, d := range list {
		if _, dup := seen[d]; dup {
			continue // duplicate index entry; prune
		}
		if !n.docCache.Peek(d) {
			continue // evicted; prune
		}
		seen[d] = struct{}{}
		live = append(live, d)
		if len(out) < max {
			out = append(out, d)
		}
	}
	if len(live) == 0 && list != nil {
		delete(n.cacheByCat, cat)
		return out
	}
	n.cacheByCat[cat] = live
	return out
}

// cacheDocs inserts received result documents into the requester cache,
// indexing each under EVERY category it belongs to. Indexing only under
// Categories[0] (the pre-fix behavior) made repeat queries in a
// multi-category doc's other categories permanent cache misses — the
// doc was resident but invisible to cachedIn. Stale index entries left
// by eviction are pruned by cachedIn on the next read of each list.
func (n *Node) cacheDocs(docs map[catalog.DocID]bool) {
	if n.docCache == nil {
		return
	}
	for d := range docs {
		doc := n.inst.Catalog.Doc(d)
		if doc == nil || n.docCache.Peek(d) {
			continue
		}
		n.docCache.Insert(d, doc.Size)
		if n.docCache.Peek(d) {
			for _, cat := range doc.Categories {
				n.cacheByCat[cat] = append(n.cacheByCat[cat], d)
			}
		}
	}
}

// InFlight reports how many queries this node currently has pending (a
// point-in-time gauge; also exported as queries_inflight in Stats).
func (n *Node) InFlight() int { return int(n.inflight.Load()) }

// SetMaxInFlight resizes the admission-control bound (k <= 0 restores
// DefaultMaxInFlight). Queries already pending are unaffected.
func (n *Node) SetMaxInFlight(k int) {
	if k <= 0 {
		k = DefaultMaxInFlight
	}
	applied := make(chan struct{})
	select {
	case n.cmds <- func(n *Node) { n.inflightMax = k; close(applied) }:
		select {
		case <-applied:
		case <-n.done:
		}
	case <-n.done:
	}
}

// SetCacheCapacity replaces the requester-side document cache with a
// fresh one of the given policy and byte capacity; 0 bytes disables
// caching. Previously cached contents are discarded.
func (n *Node) SetCacheCapacity(policy cache.Policy, bytes int64) error {
	errc := make(chan error, 1)
	select {
	case n.cmds <- func(n *Node) {
		if bytes == 0 {
			n.docCache, n.cacheByCat = nil, nil
			errc <- nil
			return
		}
		dc, err := cache.New(policy, bytes)
		if err == nil {
			n.docCache = dc
			n.cacheByCat = make(map[catalog.CategoryID][]catalog.DocID)
		}
		errc <- err
	}:
		select {
		case err := <-errc:
			return err
		case <-n.done:
			return ErrClosed
		}
	case <-n.done:
		return ErrClosed
	}
}

// Instance exposes the deployment's content model (for workload
// generation against a live node; treat it as read-only).
func (n *Node) Instance() *model.Instance { return n.inst }
