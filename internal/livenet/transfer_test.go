package livenet

import (
	"bytes"
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"p2pshare/internal/catalog"
	"p2pshare/internal/chaos"
	"p2pshare/internal/content"
	"p2pshare/internal/memnet"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
	"p2pshare/internal/wire"
)

// contentShape is the small standard geometry the transfer tests share:
// 256 KB documents so a fetch spans several chunks without dominating
// test wall clock.
func contentShape(seed int64) Shape {
	return Shape{Documents: 48, Categories: 6, Nodes: 8, Clusters: 2, Seed: seed, DocBytes: 256 << 10}
}

// pickRemoteDoc returns a (fetcher, document, category, serving-cluster
// members) tuple where the fetcher is NOT a member of the serving
// cluster — nodes donate capacity to several clusters in this model, so
// the pair must be searched for, not assumed.
func pickRemoteDoc(t *testing.T, sh Shape) (model.NodeID, catalog.DocID, catalog.CategoryID, []model.NodeID) {
	t.Helper()
	inst, assign, _, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem, err := model.NewMembership(inst, assign)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range inst.Catalog.Docs {
		cat := doc.Categories[0]
		cl := assign[cat]
		if cl == model.NoCluster {
			continue
		}
		members := mem.NodesOf(cl)
		if len(members) < 2 {
			continue
		}
		for k := range inst.Nodes {
			fetcher := inst.Nodes[k].ID
			mine := false
			for _, m := range members {
				if m == fetcher {
					mine = true
					break
				}
			}
			if !mine {
				return fetcher, doc.ID, cat, members
			}
		}
	}
	t.Fatal("no (fetcher, doc) pair with the fetcher outside the serving cluster")
	return 0, 0, 0, nil
}

// TestFetchRemoteAndLocal is the data plane's basic contract: a fetch
// from a non-holder streams the document over the wire, verified
// against the manifest and byte-identical to the synthetic oracle; a
// fetch on a holder is a local hit that never touches the network.
func TestFetchRemoteAndLocal(t *testing.T) {
	sh := contentShape(21)
	c := launchOverMemnet(t, sh, nil, memnet.New(), Options{
		Shards:     1,
		CacheBytes: -1,
		Content:    &ContentConfig{},
	})
	fid, doc, _, members := pickRemoteDoc(t, sh)
	fetcher := c.Nodes[fid]
	want := content.SyntheticDoc(doc, sh.DocBytes)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := fetcher.Fetch(ctx, doc)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fetched bytes differ from the synthetic oracle")
	}
	st := fetcher.Stats()
	if st["transfer_bytes_in"] != sh.DocBytes {
		t.Fatalf("transfer_bytes_in = %d, want %d", st["transfer_bytes_in"], sh.DocBytes)
	}
	if st["fetches_ok"] != 1 || st["fetch_local_hits"] != 0 {
		t.Fatalf("fetch accounting: ok=%d local=%d", st["fetches_ok"], st["fetch_local_hits"])
	}
	if fetcher.TransferThroughput().Count() != 1 {
		t.Fatalf("throughput histogram observed %d transfers, want 1", fetcher.TransferThroughput().Count())
	}
	var out int64
	for _, m := range members {
		out += c.Nodes[m].Stats()["transfer_bytes_out"]
	}
	if out < sh.DocBytes {
		t.Fatalf("holders served %d bytes, want >= %d", out, sh.DocBytes)
	}

	// A holder's fetch is a local hit: same bytes, zero new wire bytes.
	holder := c.Nodes[members[0]]
	before := holder.Stats()["transfer_bytes_in"]
	got, err = holder.Fetch(ctx, doc)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("local fetch: err=%v equal=%v", err, bytes.Equal(got, want))
	}
	st = holder.Stats()
	if st["fetch_local_hits"] != 1 || st["transfer_bytes_in"] != before {
		t.Fatalf("local hit accounting: hits=%d bytes_in=%d (was %d)",
			st["fetch_local_hits"], st["transfer_bytes_in"], before)
	}
}

// TestFetchSurvivesCorruptSource: the fastest source serves one
// persistently corrupt chunk (bit rot after its manifest was built).
// The fetcher must fail the hash check (counted, never panicking or
// wedging), give up on the liar after a bounded number of retries, and
// finish byte-identical from the next holder — keeping every verified
// chunk. Also pins stray-frame handling: content frames for unknown
// transfer ids are dropped and counted, not crashed on.
func TestFetchSurvivesCorruptSource(t *testing.T) {
	sh := contentShape(22)
	cn := chaos.New(22)
	c := launchOverMemnet(t, sh, cn, memnet.New(), Options{
		Shards:     1,
		CacheBytes: -1,
		Content:    &ContentConfig{ChunkSize: 32 << 10},
	})
	fid, doc, cat, _ := pickRemoteDoc(t, sh)
	fetcher := c.Nodes[fid]
	want := content.SyntheticDoc(doc, sh.DocBytes)

	sources := fetcher.fetchSources(cat)
	if len(sources) < 2 {
		t.Fatalf("need >= 2 sources, have %v", sources)
	}
	// Discovery streams from whichever holder answers first, so the liar
	// is made the fastest: every other source's link to the fetcher is
	// delayed. The liar's blob rots AFTER its manifest is computed; every
	// other source holds good bytes.
	liar := c.Nodes[sources[0]]
	for _, s := range sources[1:] {
		cn.SetLinkBoth(s, fid, chaos.Faults{Delay: 10 * time.Millisecond})
	}
	blob := append([]byte(nil), want...)
	liar.store.Put(doc, blob)
	if _, ok := liar.store.Manifest(doc); !ok {
		t.Fatal("manifest not cached")
	}
	blob[2*(32<<10)+5] ^= 0xFF // chunk 2 now fails its hash
	for _, s := range sources[1:] {
		c.Nodes[s].store.Put(doc, append([]byte(nil), want...))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := fetcher.Fetch(ctx, doc)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fetched bytes differ from oracle despite corrupt source")
	}
	st := fetcher.Stats()
	if st["chunk_hash_fail"] == 0 {
		t.Fatal("corrupt chunk never failed a hash check")
	}
	if st["transfer_resumes"] == 0 {
		t.Fatal("failover from the corrupt source did not count as a resume")
	}
	if st["fetches_ok"] != 1 {
		t.Fatalf("fetches_ok = %d", st["fetches_ok"])
	}

	// Stray and corrupt frames for unknown transfers must be inert.
	for _, msg := range []any{
		wire_Chunk(doc, 0xdead, 0, []byte("garbage")),
		wire_Manifest(doc, 0xbeef),
	} {
		if !fetcher.routeInbound(envelope{From: sources[0], Msg: msg}) {
			t.Fatal("routeInbound reported shutdown on a stray content frame")
		}
	}
	if fetcher.Stats()["transfer_stray_frames"] < 2 {
		t.Fatal("stray content frames not counted")
	}
	// The node still serves queries after all of the above.
	if _, err := fetcher.Query(cat, 1, 5*time.Second); err != nil {
		t.Fatalf("query after corrupt transfer: %v", err)
	}
}

// TestFetchResumesAfterSourceDeath is the chaos-seeded regression the
// data plane exists to survive: mid-stream, the serving peer is
// partitioned away AND killed; the fetcher must fail over to another
// replica holder and resume from the last verified chunk — the final
// byte count proves no verified chunk was fetched twice — and the
// result is byte-identical, pinned against the manifest root hash.
func TestFetchResumesAfterSourceDeath(t *testing.T) {
	sh := Shape{Documents: 24, Categories: 4, Nodes: 8, Clusters: 2, Seed: 23, DocBytes: 2 << 20}
	cn := chaos.New(23)
	c := launchOverMemnet(t, sh, cn, memnet.New(), Options{
		Shards:     1,
		CacheBytes: -1,
		Content:    &ContentConfig{ChunkSize: 16 << 10}, // 128 chunks
	})
	fid, doc, cat, members := pickRemoteDoc(t, sh)
	fetcher := c.Nodes[fid]
	// Every serving-cluster member holds the document, so a second
	// holder is always there to resume from.
	for _, m := range members {
		c.Nodes[m].store.Register(doc, sh.DocBytes)
	}
	root := content.BuildManifest(doc, content.SyntheticDoc(doc, sh.DocBytes), 16<<10).Root()

	sources := fetcher.fetchSources(cat)
	if len(sources) < 2 {
		t.Fatalf("need >= 2 sources, have %v", sources)
	}
	// Pace every source link so the transfer is reliably mid-stream when
	// the kill lands. Discovery picks the streamer (first holder to
	// answer), so the victim is identified from the byte counters once
	// streaming starts, not chosen up front.
	for _, s := range sources {
		cn.SetLinkBoth(s, fid, chaos.Faults{Delay: 5 * time.Millisecond})
	}

	type outcome struct {
		data []byte
		err  error
	}
	res := make(chan outcome, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		data, err := fetcher.Fetch(ctx, doc)
		res <- outcome{data, err}
	}()

	// Wait for partial progress, then partition the victim from the
	// whole deployment and kill it.
	deadline := time.Now().Add(20 * time.Second)
	for {
		in := fetcher.Stats()["transfer_bytes_in"]
		if in >= sh.DocBytes/8 && in <= sh.DocBytes/2 {
			break
		}
		if in > sh.DocBytes/2 {
			t.Log("transfer outran the kill window; killing anyway")
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no transfer progress to interrupt (bytes_in=%d)", in)
		}
		time.Sleep(200 * time.Microsecond)
	}
	killedAt := fetcher.Stats()["transfer_bytes_in"]
	// The active streamer is the source with the most bytes served; the
	// others have answered at most a manifest.
	victim := sources[0]
	var most int64 = -1
	for _, s := range sources {
		if out := c.Nodes[s].Stats()["transfer_bytes_out"]; out > most {
			most, victim = out, s
		}
	}
	rest := make([]model.NodeID, 0, len(c.Nodes)-1)
	for _, n := range c.Nodes {
		if n.id != victim {
			rest = append(rest, n.id)
		}
	}
	cn.Partition([]model.NodeID{victim}, rest)
	c.Nodes[victim].shutdown()

	out := <-res
	if out.err != nil {
		t.Fatalf("fetch after source death: %v", out.err)
	}
	if got := content.BuildManifest(doc, out.data, 16<<10).Root(); got != root {
		t.Fatal("resumed fetch is not byte-identical (manifest root differs)")
	}
	st := fetcher.Stats()
	if killedAt < sh.DocBytes && st["transfer_resumes"] == 0 {
		t.Fatalf("no resume counted (killed at %d of %d bytes)", killedAt, sh.DocBytes)
	}
	// Every verified chunk was fetched exactly once: resume continued
	// from progress instead of restarting.
	if st["transfer_bytes_in"] != sh.DocBytes {
		t.Fatalf("transfer_bytes_in = %d, want exactly %d (verified chunks must not be refetched)",
			st["transfer_bytes_in"], sh.DocBytes)
	}
}

// TestMoveShipsBytes pins the rebalancing data plane: when a §6.1 move
// reassigns a category, the gaining members don't just flip metadata —
// they pull their placement share's actual bytes from the shedding
// cluster (which fetchSources keeps as a fallback) and install them as
// real blobs.
func TestMoveShipsBytes(t *testing.T) {
	sh := contentShape(24)
	c := launchOverMemnet(t, sh, nil, memnet.New(), Options{
		Shards:     1,
		CacheBytes: -1,
		Content:    &ContentConfig{},
	})
	// Adaptation enabled with an epoch too long to ever fire: the move
	// below is injected, not measured, so the test is deterministic.
	c.EnableAdaptation(AdaptConfig{Interval: time.Hour})

	inst, assign, _, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem, err := model.NewMembership(inst, assign)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a category and a destination cluster it is not served by.
	var cat catalog.CategoryID = -1
	var from, to model.ClusterID
	for _, cc := range inst.Catalog.Cats {
		if cl := assign[cc.ID]; cl != model.NoCluster {
			cat, from = cc.ID, cl
			to = (cl + 1) % model.ClusterID(inst.NumClusters)
			break
		}
	}
	if cat < 0 || from == to {
		t.Fatalf("no movable category (cat=%d from=%d to=%d)", cat, from, to)
	}
	// Nodes donate capacity to several clusters, so a member of the
	// gaining cluster may already hold the docs as a shedding-cluster
	// member; the shipping assertion only holds for nodes unique to the
	// gaining side.
	var gaining []model.NodeID
	for _, g := range mem.NodesOf(to) {
		also := false
		for _, s := range mem.NodesOf(from) {
			if s == g {
				also = true
				break
			}
		}
		if !also {
			gaining = append(gaining, g)
		}
	}
	if len(gaining) == 0 {
		t.Fatal("no node unique to the destination cluster")
	}
	docs := inst.Catalog.Cats[cat].Docs
	if len(docs) == 0 {
		t.Fatal("category has no documents")
	}
	for _, g := range gaining {
		for _, d := range docs {
			if c.Nodes[g].store.Has(d) {
				t.Fatalf("node %d already holds doc %d before the move", g, d)
			}
		}
	}

	move := wire.Move{Category: cat, From: from, Entry: overlay.DCRTEntry{
		Cluster:     to,
		MoveCounter: c.Nodes[gaining[0]].dcrtEntryForTest(cat).MoveCounter + 1,
	}}
	// Every member of the receiving cluster hears the move (the share
	// placement spans all of them; which ones owe docs is its choice).
	receivers := mem.NodesOf(to)
	for _, g := range receivers {
		if !c.Nodes[g].routeInbound(envelope{From: c.Nodes[g].id, Msg: move}) {
			t.Fatal("move announcement rejected")
		}
	}

	// Some receiving member must acquire real bytes over the network —
	// transfer_move_docs only advances on a completed Fetch+Put.
	deadline := time.Now().Add(30 * time.Second)
	for {
		shipped := int64(0)
		for _, g := range receivers {
			shipped += c.Nodes[g].Stats()["transfer_move_docs"]
		}
		if shipped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no move transfer completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Find one shipped doc and verify its bytes against the oracle.
	verified := false
	for _, g := range receivers {
		if c.Nodes[g].Stats()["transfer_move_docs"] == 0 {
			continue
		}
		for _, d := range docs {
			if !c.Nodes[g].store.Has(d) {
				continue
			}
			b, _ := c.Nodes[g].store.Bytes(d)
			if !bytes.Equal(b, content.SyntheticDoc(d, sh.DocBytes)) {
				t.Fatalf("node %d holds wrong bytes for shipped doc %d", g, d)
			}
			verified = true
		}
	}
	if !verified {
		t.Fatal("move counters advanced but no shipping node holds a doc")
	}
	// And the bytes crossed the wire from the shedding cluster.
	var out int64
	for _, m := range mem.NodesOf(from) {
		out += c.Nodes[m].Stats()["transfer_bytes_out"]
	}
	if out == 0 {
		t.Fatal("shedding cluster never served transfer bytes")
	}
}

// TestBulkFetchUnderQueryLoad is the PR's acceptance bar at cluster
// scale: nodes publish real (synthetic-backed, manifest-verified)
// document bytes, 100+ concurrent fetches all complete verified, and
// the concurrent query p95 stays within 3x of the no-bulk baseline —
// the transport's priority lanes keeping the control plane responsive
// under bulk load.
func TestBulkFetchUnderQueryLoad(t *testing.T) {
	nodes := 48
	sh := Shape{Documents: 96, Categories: 12, Nodes: nodes, Clusters: 4, Seed: 25, DocBytes: 256 << 10}
	c := launchOverMemnet(t, sh, nil, memnet.NewSized(512<<10), Options{
		Shards:     1,
		CacheBytes: -1,
		Content:    &ContentConfig{},
	})
	cats := c.inst.Catalog.Cats

	p95 := func(d []time.Duration) time.Duration {
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		return d[(len(d)*95)/100]
	}
	query := func(i int) (time.Duration, error) {
		origin := c.Nodes[(i*31)%nodes]
		cat := cats[(i*7)%len(cats)].ID
		t0 := time.Now()
		_, err := origin.Query(cat, 1, 10*time.Second)
		return time.Since(t0), err
	}

	// Phase 1: no-bulk query baseline.
	const baselineQueries = 60
	base := make([]time.Duration, 0, baselineQueries)
	for i := 0; i < baselineQueries; i++ {
		d, err := query(i)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		base = append(base, d)
	}
	baseP95 := p95(base)

	// Phase 2: 120 concurrent fetches with queries riding alongside.
	const fetchers, perFetcher = 40, 3
	var wg sync.WaitGroup
	fetchErrs := make(chan error, fetchers*perFetcher)
	for g := 0; g < fetchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perFetcher; k++ {
				node := c.Nodes[(g*13+k*29)%nodes]
				doc := c.inst.Catalog.Docs[(g*perFetcher+k)%len(c.inst.Catalog.Docs)].ID
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				data, err := node.Fetch(ctx, doc)
				cancel()
				if err != nil {
					fetchErrs <- err
					continue
				}
				if !bytes.Equal(data, content.SyntheticDoc(doc, sh.DocBytes)) {
					fetchErrs <- content.ErrHashMismatch
					continue
				}
				fetchErrs <- nil
			}
		}(g)
	}
	loadedMu := sync.Mutex{}
	loaded := make([]time.Duration, 0, 120)
	var qwg sync.WaitGroup
	qErrs := make(chan error, 3*40)
	for w := 0; w < 3; w++ {
		qwg.Add(1)
		go func(w int) {
			defer qwg.Done()
			for i := 0; i < 40; i++ {
				d, err := query(w*1000 + i)
				qErrs <- err
				loadedMu.Lock()
				loaded = append(loaded, d)
				loadedMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	qwg.Wait()
	close(fetchErrs)
	close(qErrs)

	fetched, failed := 0, 0
	for err := range fetchErrs {
		if err != nil {
			failed++
			t.Errorf("fetch failed: %v", err)
		} else {
			fetched++
		}
	}
	if fetched < 100 {
		t.Fatalf("only %d verified fetches completed (want >= 100, %d failed)", fetched, failed)
	}
	qFailed := 0
	for err := range qErrs {
		if err != nil {
			qFailed++
		}
	}
	if qFailed > 6 { // 5% of 120
		t.Fatalf("%d queries failed under bulk load", qFailed)
	}
	loadedP95 := p95(loaded)

	// The priority split's promise: bulk must not starve the protocol.
	// Floor the baseline at 50ms: the idle baseline is sub-millisecond,
	// and on a small host 120 concurrent hash-verified transfers cost
	// real CPU, so tail latency has a contention floor that has nothing
	// to do with queueing. Without the priority lanes, queries stuck
	// behind megabytes of bulk frames fail by seconds, not milliseconds
	// — the bound still catches the regression it exists for.
	floor := baseP95
	if floor < 50*time.Millisecond {
		floor = 50 * time.Millisecond
	}
	t.Logf("query p95: baseline %v, under bulk %v (bound %v); %d fetches verified",
		baseP95, loadedP95, 3*floor, fetched)
	if raceEnabled {
		// The race detector multiplies CPU cost ~10x; the latency bound
		// is only meaningful without it. Correctness (every fetch
		// verified, queries succeeding) was still asserted above.
		t.Log("race detector enabled; skipping the latency-bound assertion")
		return
	}
	if loadedP95 > 3*floor {
		t.Fatalf("query p95 under bulk = %v, exceeds 3x baseline bound %v", loadedP95, 3*floor)
	}
}

// dcrtEntryForTest reads a node's DCRT entry under the routing lock.
func (n *Node) dcrtEntryForTest(cat catalog.CategoryID) overlay.DCRTEntry {
	n.routeMu.RLock()
	defer n.routeMu.RUnlock()
	return n.dcrt[cat]
}

// Small constructors keeping the stray-frame table readable.
func wire_Chunk(doc catalog.DocID, xfer uint64, idx int64, data []byte) wire.Chunk {
	return wire.Chunk{Doc: doc, Xfer: xfer, Index: idx, Data: data}
}
func wire_Manifest(doc catalog.DocID, xfer uint64) wire.Manifest {
	return wire.Manifest{Doc: doc, Xfer: xfer, Missing: true}
}
