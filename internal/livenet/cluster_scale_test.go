package livenet

import (
	"net"
	"runtime"
	"testing"
	"time"

	"p2pshare/internal/chaos"
	"p2pshare/internal/memnet"
	"p2pshare/internal/model"
)

// memnetHooks wires a cluster onto an in-process memnet fabric,
// optionally threading every dial through a chaos controller.
func memnetHooks(nw *memnet.Network, cn *chaos.Net) NetHooks {
	h := NetHooks{
		Listen: func(id model.NodeID, addr string) (net.Listener, error) {
			ln, err := nw.Listen(addr)
			if err == nil && cn != nil {
				cn.Register(id, ln.Addr().String())
			}
			return ln, err
		},
		Dial: func(_ model.NodeID, addr string) (net.Conn, error) { return nw.Dial(addr) },
	}
	if cn != nil {
		cn.SetDial(nw.Dial)
		h.Dial = cn.DialFrom
	}
	return h
}

// launchOverMemnet builds and boots a cluster of the given geometry on a
// fresh fabric.
func launchOverMemnet(t *testing.T, sh Shape, cn *chaos.Net, nw *memnet.Network, opts Options) *Cluster {
	t.Helper()
	inst, assign, place, err := sh.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = sh.Seed
	opts.Hooks = memnetHooks(nw, cn)
	c, err := Launch(inst, assign, place, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// queryAllCategories pushes one query per category through origin,
// returning how many succeeded.
func queryAllCategories(t *testing.T, c *Cluster, origin *Node) int {
	t.Helper()
	ok := 0
	for _, cat := range c.inst.Catalog.Cats {
		if _, err := origin.Query(cat.ID, 1, 5*time.Second); err == nil {
			ok++
		}
	}
	return ok
}

// waitParked blocks until every transport writer across the cluster has
// parked (or the deadline passes).
func waitParked(t *testing.T, c *Cluster, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		active := int64(0)
		for _, n := range c.Nodes {
			active += n.tr.writers()
		}
		if active == 0 {
			return
		}
		if time.Now().After(end) {
			t.Fatalf("%d transport writers still active after %v", active, deadline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestParkedWriterSurvivesAddressChange is the parking regression pin:
// traffic flows, every writer parks (dropping its conn), every node then
// MOVES to a new listen address (what a membership refresh delivers as
// an updated address book), and resumed traffic must still deliver —
// the respawned writers have to pick up the refreshed address, re-dial,
// and re-run stream negotiation from scratch. Chaos middleware with
// seeded delay/jitter rides every link to keep the fault layer in the
// loop.
func TestParkedWriterSurvivesAddressChange(t *testing.T) {
	nw := memnet.New()
	cn := chaos.New(7)
	cn.SetDefault(chaos.Faults{Delay: time.Millisecond, Jitter: 2 * time.Millisecond})
	sh := Shape{Documents: 240, Categories: 8, Nodes: 12, Clusters: 3, Seed: 7}
	c := launchOverMemnet(t, sh, cn, nw, Options{
		Shards:     1,
		CacheBytes: -1, // phase-2 queries must hit the network, not a cache
		WriterIdle: 120 * time.Millisecond,
	})
	origin := c.Nodes[0]

	if got := queryAllCategories(t, c, origin); got != len(c.inst.Catalog.Cats) {
		t.Fatalf("pre-park queries: %d/%d delivered", got, len(c.inst.Catalog.Cats))
	}
	waitParked(t, c, 10*time.Second)
	if parks := origin.Stats()["transport_writer_parks"]; parks == 0 {
		t.Fatal("no writer ever parked despite a 120ms idle bound")
	}
	dialsAfterPark := origin.Stats()["transport_dials"]

	// Move every node: new listener on the fabric, old one closed so the
	// stale address genuinely refuses dials, and every address book
	// refreshed the way a membership Alive round would.
	newAddrs := make(map[model.NodeID]string, len(c.Nodes))
	for _, n := range c.Nodes {
		ln2, err := nw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln2.Close() })
		cn.Register(n.id, ln2.Addr().String())
		newAddrs[n.id] = ln2.Addr().String()
		n.ln.Close()
		go func(n *Node, ln net.Listener) { // acceptLoop's twin on the new address
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				n.connsMu.Lock()
				n.conns[conn] = struct{}{}
				n.connsMu.Unlock()
				n.wg.Add(1)
				go n.readLoop(conn)
			}
		}(n, ln2)
	}
	for _, n := range c.Nodes {
		for id, addr := range newAddrs {
			if id != n.id {
				n.book.set(id, addr)
			}
		}
	}

	if got := queryAllCategories(t, c, origin); got != len(c.inst.Catalog.Cats) {
		t.Fatalf("post-move queries: %d/%d delivered", got, len(c.inst.Catalog.Cats))
	}
	if dials := origin.Stats()["transport_dials"]; dials <= dialsAfterPark {
		t.Fatalf("no fresh dials after the move (before %d, after %d) — parked writers must re-dial",
			dialsAfterPark, dials)
	}
	// A peerConn's addr refreshes on the next enqueue to it, so only the
	// peers phase 2 actually touched move — but at least one must have.
	refreshed := 0
	origin.tr.mu.Lock()
	for to, p := range origin.tr.peers {
		if p.currentAddr() == newAddrs[to] {
			refreshed++
		}
	}
	origin.tr.mu.Unlock()
	if refreshed == 0 {
		t.Fatal("no peer conn picked up its refreshed address")
	}
}

// TestIdleClusterGoroutineBudget pins the idle-resource property the
// 10k-node benchmark rests on: a booted node costs a FIXED number of
// goroutines (accept + control + shards) regardless of peer count, and
// after traffic the cluster returns to that budget — writers park,
// their conns drop, and the remote read loops drain away.
func TestIdleClusterGoroutineBudget(t *testing.T) {
	nodes := 500
	if raceEnabled {
		nodes = 150 // race-instrumented goroutines are heavy; the property is scale-free
	}
	nw := memnet.New()
	sh := Shape{Documents: 2 * nodes, Categories: 20, Nodes: nodes, Clusters: 5, Seed: 51}
	g0 := runtime.NumGoroutine()
	c := launchOverMemnet(t, sh, nil, nw, Options{
		Shards:     1,
		CacheBytes: -1,
		WriterIdle: 150 * time.Millisecond,
	})

	// accept + control + one shard loop = 3 per node; one more per node
	// of slack covers the shared timer wheel, test runtime goroutines,
	// and GC workers without masking a per-peer leak (which would scale
	// with peers, not nodes).
	budget := nodes*4 + 64
	if g := runtime.NumGoroutine() - g0; g > budget {
		t.Fatalf("idle %d-node cluster costs %d goroutines, budget %d", nodes, g, budget)
	}

	// Drive traffic from a handful of origins, then require the cluster
	// to fall back under the idle budget once writers park.
	for i := 0; i < 10; i++ {
		origin := c.Nodes[(i*97)%len(c.Nodes)]
		cat := c.inst.Catalog.Cats[(i*13)%len(c.inst.Catalog.Cats)]
		if _, err := origin.Query(cat.ID, 1, 5*time.Second); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	waitParked(t, c, 10*time.Second)
	end := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine() - g0; g <= budget {
			return
		}
		if time.Now().After(end) {
			t.Fatalf("cluster did not return to idle budget: %d goroutines over baseline, budget %d",
				runtime.NumGoroutine()-g0, budget)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestThousandNodeClusterOverMemnet boots the CI-scale live cluster —
// every node a real Node with listeners, shards, and transports on the
// memnet fabric — and serves queries across it. This is the -short
// smoke for the paper-scale path benchcluster measures.
func TestThousandNodeClusterOverMemnet(t *testing.T) {
	nodes := 1000
	if raceEnabled {
		nodes = 250
	}
	nw := memnet.New()
	sh := Shape{Documents: 2 * nodes, Categories: 30, Nodes: nodes, Clusters: 10, Seed: 31}
	start := time.Now()
	c := launchOverMemnet(t, sh, nil, nw, Options{
		Shards:     1,
		CacheBytes: -1,
		WriterIdle: 200 * time.Millisecond,
	})
	t.Logf("booted %d nodes in %v", nodes, time.Since(start))

	for i := 0; i < 30; i++ {
		origin := c.Nodes[(i*131)%len(c.Nodes)]
		cat := c.inst.Catalog.Cats[(i*7)%len(c.inst.Catalog.Cats)]
		if _, err := origin.Query(cat.ID, 1, 10*time.Second); err != nil {
			t.Fatalf("query %d from node %d: %v", i, origin.id, err)
		}
	}
	if w := c.Nodes[0].Stats()["transport_writers_active"]; w < 0 {
		t.Fatalf("writers gauge went negative: %d", w)
	}
}
