package livenet

import (
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"p2pshare/internal/cache"
	"p2pshare/internal/catalog"
	"p2pshare/internal/metrics"
	"p2pshare/internal/model"
	"p2pshare/internal/overlay"
)

// runCmd executes f inside the node's control loop and waits for it.
func runCmd(t *testing.T, n *Node, f func(*Node)) {
	t.Helper()
	done := make(chan struct{})
	select {
	case n.cmds <- func(n *Node) { f(n); close(done) }:
		<-done
	case <-n.done:
		t.Fatal("node closed before command ran")
	}
}

// runShard executes f inside one engine shard's loop and waits for it.
func runShard(t *testing.T, s *engineShard, f func(*engineShard)) {
	t.Helper()
	done := make(chan struct{})
	select {
	case s.cmds <- func(s *engineShard) { f(s); close(done) }:
		<-done
	case <-s.n.done:
		t.Fatal("node closed before shard command ran")
	}
}

// TestTransportReusesConnections is the acceptance check: under a
// multi-query workload, messages reuse persistent streams — dials per
// sent message come out well below one.
func TestTransportReusesConnections(t *testing.T) {
	c, inst := launchSmall(t, 11)
	cat := bigCategory(inst)
	// Disable the requester cache so every query exercises the transport;
	// with caching on, repeat queries are answered locally and the
	// handful of networked ones make stream reuse a coin flip of random
	// target picks.
	for _, n := range c.Nodes {
		if err := n.SetCacheCapacity(cache.LRU, 0); err != nil {
			t.Fatal(err)
		}
	}
	const queries = 60
	start := time.Now()
	for i := 0; i < queries; i++ {
		origin := c.Nodes[i%6]
		if _, err := origin.Query(cat, 3, 5*time.Second); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)

	s := c.Stats()
	dials, sends, reuses := s["transport_dials"], s["transport_sends"], s["transport_reuses"]
	t.Logf("%d queries in %v (%.2f ms/query)", queries, elapsed,
		float64(elapsed.Milliseconds())/queries)
	t.Logf("transport: dials=%d sends=%d reuses=%d reconnects=%d send_failures=%d queue_depth=%d",
		dials, sends, reuses, s["transport_reconnects"], s["transport_send_failures"], s["queue_depth"])
	t.Logf("node 0 query latency: %s", c.Nodes[0].QueryLatency().Summary())

	if sends == 0 {
		t.Fatal("no messages sent")
	}
	if reuses == 0 {
		t.Error("no connection reuse observed")
	}
	if dials >= sends {
		t.Errorf("dials (%d) not amortized over sends (%d): want dials per message < 1", dials, sends)
	}
}

// TestCloseDuringInflightQuery shuts the cluster down while a query that
// can never complete is waiting, and requires the blocked caller to
// return promptly (no goroutine stuck on a dead node; -race in CI guards
// the teardown ordering).
func TestCloseDuringInflightQuery(t *testing.T) {
	c, inst := launchSmall(t, 12)
	cat := bigCategory(inst)
	type res struct {
		err error
	}
	got := make(chan res, 1)
	go func() {
		_, err := c.Nodes[0].Query(cat, len(inst.Catalog.Docs)+100, 30*time.Second)
		got <- res{err}
	}()
	time.Sleep(150 * time.Millisecond) // let the flood start
	closed := make(chan struct{})
	go func() { c.Close(); close(closed) }()
	select {
	case r := <-got:
		if r.err == nil {
			t.Error("query against impossible demand succeeded during close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Query did not return after Close")
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not finish")
	}
}

// TestPartialOutcomesUnderDialFailures injects a flaky dialer into every
// node and checks the system degrades gracefully: no panic, failures are
// counted, retried sends still let queries produce (at least partial)
// outcomes.
func TestPartialOutcomesUnderDialFailures(t *testing.T) {
	c, inst := launchSmall(t, 13)
	for _, n := range c.Nodes {
		var mu sync.Mutex
		calls := 0
		n.tr.setDial(func(addr string) (net.Conn, error) {
			mu.Lock()
			calls++
			fail := calls%3 == 0
			mu.Unlock()
			if fail {
				return nil, errors.New("injected dial failure")
			}
			return net.DialTimeout("tcp", addr, dialTimeout)
		})
	}
	cat := bigCategory(inst)
	docs := 0
	for i := 0; i < 8; i++ {
		out, err := c.Nodes[i%len(c.Nodes)].Query(cat, 2, 3*time.Second)
		if err != nil && err != ErrTimeout {
			t.Fatalf("query %d: unexpected error %v", i, err)
		}
		docs += len(out.Docs)
	}
	if docs == 0 {
		t.Error("no documents at all under 1/3 dial failures")
	}
	s := c.Stats()
	if s["transport_dial_failures"] == 0 {
		t.Error("injected dial failures not counted")
	}
	t.Logf("under injected failures: dial_failures=%d retries=%d send_failures=%d docs=%d",
		s["transport_dial_failures"], s["transport_retries"], s["transport_send_failures"], docs)
}

// TestTransportReconnectAfterPeerRestart drives the transport directly:
// messages flow to a listener, the listener dies and is restarted on the
// same address, and the writer's backoff/reconnect loop resumes delivery
// on the same peerConn.
func TestTransportReconnectAfterPeerRestart(t *testing.T) {
	received := make(chan uint64, 256)
	var connMu sync.Mutex
	var accepted []net.Conn
	serve := func(ln net.Listener) {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connMu.Lock()
			accepted = append(accepted, conn)
			connMu.Unlock()
			go func(conn net.Conn) {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				for {
					var env envelope
					if err := dec.Decode(&env); err != nil {
						return
					}
					if q, ok := env.Msg.(overlay.QueryMsg); ok {
						received <- q.ID
					}
				}
			}(conn)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go serve(ln)

	stats := metrics.NewSyncCounter()
	tr := newTransport(1, 99, stats)
	defer tr.close()

	tr.enqueue(2, addr, envelope{From: 1, Msg: overlay.QueryMsg{ID: 1}})
	select {
	case <-received:
	case <-time.After(5 * time.Second):
		t.Fatal("first message never arrived")
	}

	// Kill the peer (listener AND its accepted connections), then bring
	// it back on the same address.
	ln.Close()
	connMu.Lock()
	for _, conn := range accepted {
		conn.Close()
	}
	connMu.Unlock()
	time.Sleep(50 * time.Millisecond)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	defer ln2.Close()
	go serve(ln2)

	// The first write after the peer died may vanish into the old socket
	// buffer (best-effort transport); keep sending fresh ids until one
	// lands through a reconnected stream.
	deadline := time.Now().Add(10 * time.Second)
	next := uint64(100)
	for {
		tr.enqueue(2, addr, envelope{From: 1, Msg: overlay.QueryMsg{ID: next}})
		select {
		case id := <-received:
			if id >= 100 {
				if stats.Get("transport_reconnects") == 0 && stats.Get("transport_dials") < 2 {
					t.Errorf("delivery resumed without a reconnect or redial: %v", stats.Snapshot())
				}
				return
			}
		case <-time.After(200 * time.Millisecond):
		}
		next++
		if time.Now().After(deadline) {
			t.Fatalf("no delivery after peer restart: %v", stats.Snapshot())
		}
	}
}

// TestTransportEvictsDeadPeer checks that repeated dial failures trigger
// the onPeerDown callback and that the node removes the peer from every
// NRT entry.
func TestTransportEvictsDeadPeer(t *testing.T) {
	stats := metrics.NewSyncCounter()
	tr := newTransport(1, 7, stats)
	defer tr.close()
	tr.setDial(func(addr string) (net.Conn, error) {
		return nil, errors.New("always down")
	})
	downs := make(chan model.NodeID, 4)
	tr.onPeerDown = func(id model.NodeID) { downs <- id }

	// Each batch burns up to maxSendAttempts dial attempts; steady
	// traffic pushes the consecutive-failure count past evictAfterFails.
	// (Queued messages coalesce into one batch, so a single burst is not
	// enough — which is correct: eviction is for peers that stay down
	// while traffic keeps flowing.)
	deadline := time.After(15 * time.Second)
	for i := uint64(0); ; i++ {
		tr.enqueue(9, "127.0.0.1:1", envelope{From: 1, Msg: overlay.QueryMsg{ID: i}})
		select {
		case id := <-downs:
			if id != 9 {
				t.Errorf("evicted peer %d, want 9", id)
			}
		case <-time.After(100 * time.Millisecond):
			continue
		case <-deadline:
			t.Fatalf("onPeerDown never fired: %v", stats.Snapshot())
		}
		break
	}
	if stats.Get("transport_peer_evictions") == 0 {
		t.Error("eviction not counted")
	}
}

func TestEvictPeerRemovesNRTEntries(t *testing.T) {
	c, _ := launchSmall(t, 14)
	n := c.Nodes[0]
	var victim model.NodeID
	runCmd(t, n, func(n *Node) {
		for _, members := range n.nrt {
			if len(members) > 0 {
				victim = members[0]
				return
			}
		}
	})
	runCmd(t, n, func(n *Node) { n.evictPeer(victim) })
	runCmd(t, n, func(n *Node) {
		for cl, members := range n.nrt {
			for _, m := range members {
				if m == victim {
					t.Errorf("peer %d still in NRT cluster %d after eviction", victim, cl)
				}
			}
		}
	})
}

// TestSeenMapBounded floods a node with unique query ids and checks the
// generation sweep keeps the loop-detection state bounded instead of
// growing forever.
func TestSeenMapBounded(t *testing.T) {
	c, _ := launchSmall(t, 15)
	n := c.Nodes[0]
	const ids = 5000
	sh := n.shards[0]
	runShard(t, sh, func(s *engineShard) {
		for i := 0; i < ids; i++ {
			s.markSeen(uint64(1_000_000 + i))
		}
	})
	runShard(t, sh, func(s *engineShard) {
		if len(s.seenCur)+len(s.seenPrev) < ids {
			t.Errorf("seen set lost fresh entries: %d", len(s.seenCur)+len(s.seenPrev))
		}
		s.sweep(time.Now())
		// One generation old: still deduplicating.
		if !s.seenBefore(1_000_000) {
			t.Error("entry forgotten after one sweep")
		}
		s.sweep(time.Now())
		if got := len(s.seenCur) + len(s.seenPrev); got != 0 {
			t.Errorf("seen set holds %d entries after two sweeps, want 0", got)
		}
	})
}

// TestPendingExpirySweep checks an orphaned pending query is reaped once
// its deadline passes, delivering the partial outcome.
func TestPendingExpirySweep(t *testing.T) {
	c, _ := launchSmall(t, 16)
	n := c.Nodes[0]
	ch := make(chan QueryOutcome, 1)
	runShard(t, n.shardFor(42), func(s *engineShard) {
		s.n.inflight.Add(1)
		s.pending[42] = &pendingQuery{
			id:       42,
			want:     5,
			docs:     map[catalog.DocID]bool{7: true},
			hops:     3,
			ch:       ch,
			deadline: time.Now().Add(-time.Second),
		}
		s.sweep(time.Now())
		if _, still := s.pending[42]; still {
			t.Error("expired pending query not removed")
		}
	})
	select {
	case out := <-ch:
		if out.Done || len(out.Docs) != 1 || out.Hops != 3 {
			t.Errorf("partial outcome = %+v", out)
		}
	default:
		t.Error("expired pending query delivered nothing")
	}
	if n.stats.Get("pending_expired") == 0 {
		t.Error("expiry not counted")
	}
}

// TestQueryNoRouteExplicit checks the API paths fail fast with ErrNoRoute
// instead of silently misrouting to cluster 0, and the handler path drops
// with a counter.
func TestQueryNoRouteExplicit(t *testing.T) {
	c, inst := launchSmall(t, 17)
	n := c.Nodes[0]
	cat := bigCategory(inst)
	runCmd(t, n, func(n *Node) { delete(n.dcrt, cat) })

	if _, err := n.Query(cat, 1, time.Second); !errors.Is(err, ErrNoRoute) {
		t.Errorf("Query without DCRT entry: err = %v, want ErrNoRoute", err)
	}
	if n.stats.Get("query_no_route") == 0 {
		t.Error("query_no_route not counted")
	}

	// Handler path: an inbound query for the unroutable category is
	// dropped and counted, not forwarded to cluster 0.
	runShard(t, n.shardFor(1<<40), func(s *engineShard) {
		s.handleQuery(overlay.QueryMsg{ID: 1 << 40, Category: cat, Want: 1, Origin: 5, Hops: 1})
	})
	if n.stats.Get("drop_no_route") == 0 {
		t.Error("drop_no_route not counted on handler path")
	}

	// Publish path: a document whose category has no route errors out.
	var doc catalog.DocID
	found := false
	runCmd(t, n, func(n *Node) {
		for d := range n.dt {
			if n.dt[d] == cat {
				doc, found = d, true
				return
			}
		}
	})
	if found {
		if err := n.Publish(doc); !errors.Is(err, ErrNoRoute) {
			t.Errorf("Publish without DCRT entry: err = %v, want ErrNoRoute", err)
		}
	}
}

// TestHandleResultMaxHops checks the outcome reports the farthest
// contributing result, not the hop count of whichever message completed
// the set.
func TestHandleResultMaxHops(t *testing.T) {
	c, _ := launchSmall(t, 18)
	n := c.Nodes[0]
	ch := make(chan QueryOutcome, 1)
	runShard(t, n.shardFor(77), func(s *engineShard) {
		s.n.inflight.Add(1)
		s.pending[77] = &pendingQuery{
			id:       77,
			want:     2,
			docs:     make(map[catalog.DocID]bool),
			ch:       ch,
			deadline: time.Now().Add(time.Minute),
		}
		s.handleResult(overlay.ResultMsg{ID: 77, Docs: []catalog.DocID{1}, Hops: 5, From: 2})
		s.handleResult(overlay.ResultMsg{ID: 77, Docs: []catalog.DocID{2}, Hops: 2, From: 3})
	})
	select {
	case out := <-ch:
		if !out.Done {
			t.Fatal("query did not complete")
		}
		if out.Hops != 5 {
			t.Errorf("Hops = %d, want max over contributing results (5)", out.Hops)
		}
	case <-time.After(time.Second):
		t.Fatal("no outcome delivered")
	}
}

// BenchmarkLiveQuery times end-to-end queries over the persistent
// transport (the pre-transport implementation paid a TCP handshake per
// message).
func BenchmarkLiveQuery(b *testing.B) {
	cfg := model.DefaultConfig()
	cfg.Catalog.NumDocs = 400
	cfg.Catalog.NumCats = 12
	cfg.NumNodes = 24
	cfg.NumClusters = 4
	cfg.Seed = 21
	inst, err := model.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Launch(inst, assignAll(inst), nil, Options{Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	cat := bigCategory(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Nodes[i%len(c.Nodes)].Query(cat, 2, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := c.Stats()
	b.ReportMetric(float64(s["transport_dials"])/float64(s["transport_sends"]+1), "dials/msg")
}

// assignAll assigns categories round-robin for the benchmark (MaxFair is
// irrelevant to transport timing).
func assignAll(inst *model.Instance) []model.ClusterID {
	assign := make([]model.ClusterID, len(inst.Catalog.Cats))
	for i := range assign {
		assign[i] = model.ClusterID(i % inst.NumClusters)
	}
	return assign
}
