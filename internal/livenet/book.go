package livenet

// addrBook is a node's view of peer listen addresses with copy-on-write
// sharing. Launch used to hand every node a PRIVATE full copy of the
// deployment book — O(N²) map entries across a cluster, which alone is
// gigabytes at the paper's 10k-node scale. Instead every node now
// aliases one immutable base map built once at Launch and keeps its own
// divergence privately: an overlay of adds/updates and a deletion set,
// plus an incrementally maintained live-entry count so len() stays O(1).
//
// Concurrency contract: identical to the plain map it replaces — the
// control loop is the sole writer and holds routeMu.Lock; shards and API
// accessors read under routeMu.RLock. The base map is frozen before any
// loop starts, so aliasing it across nodes is safe.

import "p2pshare/internal/model"

type addrBook struct {
	base map[model.NodeID]string   // shared, immutable after Launch
	over map[model.NodeID]string   // node-private adds and updates
	dead map[model.NodeID]struct{} // node-private deletions of base entries
	n    int                       // live entries (base ∪ over) \ dead
}

func newAddrBook() *addrBook {
	return &addrBook{
		over: make(map[model.NodeID]string),
		dead: make(map[model.NodeID]struct{}),
	}
}

// setBase installs the shared Launch-time book under the node's private
// divergence (normally empty but for the node's own entry).
func (b *addrBook) setBase(base map[model.NodeID]string) {
	b.base = base
	b.n = len(base)
	for id := range b.over {
		if _, inBase := base[id]; !inBase {
			b.n++
		}
	}
	for id := range b.dead {
		if _, inBase := base[id]; inBase {
			b.n--
		}
	}
}

func (b *addrBook) get(id model.NodeID) (string, bool) {
	if _, gone := b.dead[id]; gone {
		return "", false
	}
	if addr, ok := b.over[id]; ok {
		return addr, true
	}
	addr, ok := b.base[id]
	return addr, ok
}

// has reports presence without materializing the address.
func (b *addrBook) has(id model.NodeID) bool {
	_, ok := b.get(id)
	return ok
}

func (b *addrBook) set(id model.NodeID, addr string) {
	if !b.has(id) {
		b.n++
	}
	delete(b.dead, id)
	if base, ok := b.base[id]; ok && base == addr {
		// Re-converged with the shared base: drop the divergence.
		delete(b.over, id)
		return
	}
	b.over[id] = addr
}

// del removes an entry, reporting whether it was present.
func (b *addrBook) del(id model.NodeID) bool {
	if !b.has(id) {
		return false
	}
	b.n--
	delete(b.over, id)
	if _, inBase := b.base[id]; inBase {
		b.dead[id] = struct{}{}
	}
	return true
}

func (b *addrBook) len() int { return b.n }

// forEach visits every live entry; return false from fn to stop early.
// Iteration order is unspecified, like the map it replaced.
func (b *addrBook) forEach(fn func(id model.NodeID, addr string) bool) {
	for id, addr := range b.over {
		if _, gone := b.dead[id]; gone {
			continue
		}
		if !fn(id, addr) {
			return
		}
	}
	for id, addr := range b.base {
		if _, gone := b.dead[id]; gone {
			continue
		}
		if _, shadowed := b.over[id]; shadowed {
			continue
		}
		if !fn(id, addr) {
			return
		}
	}
}

// snapshot copies the live entries into a fresh map (wire messages, the
// Peers accessor).
func (b *addrBook) snapshot() map[model.NodeID]string {
	out := make(map[model.NodeID]string, b.n)
	b.forEach(func(id model.NodeID, addr string) bool {
		out[id] = addr
		return true
	})
	return out
}
